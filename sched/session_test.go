package sched

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/graph"
	"cellstream/internal/heuristics"
	"cellstream/internal/lp"
	"cellstream/internal/platform"
)

// testSession builds a session on the small Cell(1,3) with quick
// deterministic seeding, suitable for unit tests.
func testSession(t *testing.T, opts ...Option) *Session {
	t.Helper()
	all := append([]Option{
		WithPlatform(platform.Cell(1, 3)),
		WithRelGap(0.05),
		WithTimeLimit(10 * time.Second),
		WithSeeding(1500, 1),
	}, opts...)
	s, err := NewSession(all...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func testGraph(tasks int, seed int64) *graph.Graph {
	return daggen.Generate(daggen.Params{Tasks: tasks, Seed: seed, CCR: 1})
}

func TestNewSessionValidates(t *testing.T) {
	for name, opts := range map[string][]Option{
		"bad-gap":     {WithRelGap(1.5)},
		"neg-gap":     {WithRelGap(-0.1)},
		"neg-limit":   {WithTimeLimit(-time.Second)},
		"neg-workers": {WithWorkers(-2)},
		"bad-solver":  {WithSolver(SolverKind(99))},
	} {
		if _, err := NewSession(opts...); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := s.Config()
	if cfg.Platform == nil || cfg.RelGap != 0.05 || cfg.Workers < 1 {
		t.Errorf("defaults not filled: %+v", cfg)
	}
}

func TestBadRequests(t *testing.T) {
	s := testSession(t)
	g := testGraph(6, 1)
	ctx := context.Background()
	cases := map[string]Request{
		"unknown-op":  {Op: Op(42), Graph: g},
		"nil-graph":   {Op: OpMap},
		"bad-mapping": {Op: OpEvaluate, Graph: g, Mapping: core.Mapping{0}},
		"oob-mapping": {Op: OpEvaluate, Graph: g, Mapping: make(core.Mapping, g.NumTasks()+2)},
		"bad-count":   {Op: OpSweep, Graph: g, SPECounts: []int{99}},
		"neg-count":   {Op: OpSweep, Graph: g, SPECounts: []int{-1}},
		"bad-seed":    {Op: OpMap, Graph: g, Seed: core.Mapping{0, 0}},
		"bad-gap":     {Op: OpMap, Graph: g, RelGap: 2},
		"neg-limit":   {Op: OpMap, Graph: g, TimeLimit: -time.Second},
	}
	for name, req := range cases {
		if _, err := s.Do(ctx, req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", name, err)
		}
	}
	if _, err := s.Stream(ctx, Request{Op: OpMap, Graph: g}, 0); !errors.Is(err, ErrBadRequest) {
		t.Errorf("zero stream interval: err = %v, want ErrBadRequest", err)
	}
}

func TestMapAndEvaluate(t *testing.T) {
	s := testSession(t)
	g := testGraph(10, 2)
	ctx := context.Background()
	res, err := s.Map(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Op != OpMap || res.Report == nil || !res.Report.Feasible {
		t.Fatalf("bad map result: %+v", res)
	}
	if err := res.Mapping.Validate(g, s.Config().Platform); err != nil {
		t.Fatal(err)
	}
	if res.PeriodBound <= 0 || res.PeriodBound > res.Report.Period*(1+1e-9) {
		t.Errorf("bound %g vs period %g", res.PeriodBound, res.Report.Period)
	}
	if res.RootLPBound <= 0 {
		t.Errorf("no root LP bound: %+v", res)
	}

	ev, err := s.Evaluate(ctx, g, res.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Evaluate(g, s.Config().Platform, res.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Report.Period != want.Period || ev.Report.Bottleneck != want.Bottleneck {
		t.Errorf("evaluate drifted from core.Evaluate: %+v vs %+v", ev.Report, want)
	}
}

// TestSweepWarmBounds is the dual-warm-start acceptance test: an
// SPE-count sweep must serve every point after the first from a warm
// basis (dual pivots > 0 overall, zero cold fallbacks), and each warm
// bound must agree with a cold solve of the reduced platform's own
// relaxation.
func TestSweepWarmBounds(t *testing.T) {
	s := testSession(t)
	g := testGraph(12, 5)
	counts := []int{3, 2, 1, 0}
	pts, err := s.RootBounds(context.Background(), g, counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(counts) {
		t.Fatalf("%d points, want %d", len(pts), len(counts))
	}
	dual := 0
	for i, pt := range pts {
		if pt.Stats.WarmFellBack {
			t.Errorf("point %d (nSPE=%d) fell back cold: %+v", i, pt.NumSPE, pt.Stats)
		}
		if !pt.Warm {
			t.Errorf("point %d (nSPE=%d) not warm", i, pt.NumSPE)
		}
		dual += pt.Stats.DualIterations
		// Cold reference: the reduced platform's own formulation.
		plat := s.Config().Platform.WithSPEs(pt.NumSPE)
		f := core.FormulateCompact(g, plat)
		ref, err := lp.SolveOpts(f.Problem.LP, lp.Options{MaxIter: 20000, Presolve: true})
		if err != nil || ref.Status != lp.Optimal {
			t.Fatalf("cold reference nSPE=%d: %v %+v", pt.NumSPE, err, ref)
		}
		if math.Abs(pt.Bound-ref.Objective) > 1e-6*(1+math.Abs(ref.Objective)) {
			t.Errorf("nSPE=%d: warm bound %g vs cold %g", pt.NumSPE, pt.Bound, ref.Objective)
		}
	}
	if dual == 0 {
		t.Error("sweep took zero dual pivots — warm starts not exercised")
	}

	// The full sweep (search on top) must report consistent points in
	// request order.
	res, err := s.Sweep(context.Background(), g, 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweep) != 3 {
		t.Fatalf("%d sweep points, want 3", len(res.Sweep))
	}
	for i, want := range []int{0, 2, 3} {
		pt := res.Sweep[i]
		if pt.NumSPE != want {
			t.Fatalf("point %d is nSPE=%d, want %d", i, pt.NumSPE, want)
		}
		if pt.Report == nil || !pt.Report.Feasible {
			t.Errorf("point nSPE=%d infeasible: %+v", want, pt.Report)
		}
		if pt.PeriodBound > pt.Report.Period*(1+1e-9) {
			t.Errorf("point nSPE=%d: bound %g above period %g", want, pt.PeriodBound, pt.Report.Period)
		}
	}
	// More SPEs can only help (periods non-increasing in SPE count).
	if res.Sweep[2].Report.Period > res.Sweep[0].Report.Period*(1+1e-9) {
		t.Errorf("period grew with SPEs: %g (3 SPEs) vs %g (0 SPEs)",
			res.Sweep[2].Report.Period, res.Sweep[0].Report.Period)
	}
}

func TestMapMILPSolver(t *testing.T) {
	s := testSession(t, WithSolver(SolverMILP), WithSolverWorkers(1))
	g := testGraph(10, 3)
	res, err := s.Map(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved || res.Report == nil || !res.Report.Feasible {
		t.Fatalf("MILP map: %+v", res)
	}
	if res.Stats.LPIterations == 0 {
		t.Errorf("no LP iterations recorded: %+v", res.Stats)
	}
	// The search solver must agree on the achieved period within the
	// combined gaps.
	s2 := testSession(t)
	res2, err := s2.Map(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report.Period > res.Report.Period*(1+0.05+1e-9) ||
		res.Report.Period > res2.Report.Period*(1+0.05+1e-9) {
		t.Errorf("solvers disagree beyond gaps: milp %g vs search %g",
			res.Report.Period, res2.Report.Period)
	}
}

// TestMILPTruncatedNotProved pins the Proved contract: a limit-
// truncated MILP solve (milp.Feasible) must not report a proven gap.
func TestMILPTruncatedNotProved(t *testing.T) {
	s := testSession(t, WithSolver(SolverMILP), WithSolverWorkers(1), WithMaxNodes(1))
	res, err := s.Map(context.Background(), testGraph(12, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Proved {
		t.Fatalf("1-node MILP reported Proved=true: %+v", res)
	}
}

// TestCancelledRequest pins cancellation semantics: a cancelled
// context fails the request with the context error — never a partial
// result with nil reports.
func TestCancelledRequest(t *testing.T) {
	s := testSession(t)
	g := testGraph(8, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := s.Sweep(ctx, g, 3, 2); !errors.Is(err, context.Canceled) || res != nil {
		t.Errorf("cancelled sweep: res=%v err=%v, want nil, context.Canceled", res, err)
	}
	if res, err := s.Map(ctx, g); !errors.Is(err, context.Canceled) || res != nil {
		t.Errorf("cancelled map: res=%v err=%v, want nil, context.Canceled", res, err)
	}
}

func TestStream(t *testing.T) {
	s := testSession(t)
	g := testGraph(8, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := s.Stream(ctx, Request{Op: OpMap, Graph: g}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var got []*Result
	for res := range ch {
		if res.Err != nil {
			t.Fatalf("stream solve failed: %v", res.Err)
		}
		got = append(got, res)
		if len(got) == 3 {
			cancel()
		}
	}
	if len(got) < 3 {
		t.Fatalf("stream delivered %d results before close, want ≥ 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Report.Period != got[0].Report.Period {
			t.Errorf("re-solve %d drifted: %g vs %g", i, got[i].Report.Period, got[0].Report.Period)
		}
	}
}

func TestClosedSession(t *testing.T) {
	s := testSession(t)
	g := testGraph(6, 6)
	s.Close()
	if _, err := s.Map(context.Background(), g); !errors.Is(err, ErrClosed) {
		t.Errorf("Map after Close: %v, want ErrClosed", err)
	}
	if _, err := s.Stream(context.Background(), Request{Op: OpMap, Graph: g}, time.Second); !errors.Is(err, ErrClosed) {
		t.Errorf("Stream after Close: %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestSeedHonored(t *testing.T) {
	s := testSession(t, WithoutSeeding())
	g := testGraph(10, 7)
	seed := heuristics.GreedyCPU(g, s.Config().Platform)
	res, err := s.Do(context.Background(), Request{Op: OpMap, Graph: g, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Evaluate(g, s.Config().Platform, seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Period > want.Period*(1+1e-9) {
		t.Errorf("result %g worse than its seed %g", res.Report.Period, want.Period)
	}
}
