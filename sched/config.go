package sched

import (
	"fmt"
	"runtime"
	"time"

	"cellstream/internal/platform"
)

// SolverKind selects the engine behind OpMap/OpSweep solves.
type SolverKind int

const (
	// SolverAuto lets the session choose; it currently always selects
	// SolverSearch, the production path that scales to the paper's
	// 50–94-task graphs.
	SolverAuto SolverKind = iota
	// SolverSearch is the combinatorial branch-and-bound in assignment
	// space (internal/assign), seeded by the greedy + local-search
	// heuristics and bounded below by the warm root-LP relaxation —
	// the paper's "Linear Programming" strategy. Deterministic: the
	// same request always returns the identical mapping.
	SolverSearch
	// SolverMILP solves the mixed linear program (1a)–(1k) directly by
	// LP-based branch-and-bound (internal/milp) on the compact (or
	// literal, see WithLiteralFormulation) formulation. Exact but only
	// practical on small graphs.
	SolverMILP
)

// String implements fmt.Stringer.
func (k SolverKind) String() string {
	switch k {
	case SolverAuto:
		return "auto"
	case SolverSearch:
		return "search"
	case SolverMILP:
		return "milp"
	default:
		return "unknown"
	}
}

// Config is the one coherent knob set of a Session, replacing direct
// use of lp.Options, milp.Options, core.SolveOptions and
// assign.Options. Build one through NewSession's functional options;
// the zero value of every field selects a sane default.
type Config struct {
	// Platform is the target platform (default platform.QS22).
	Platform *platform.Platform
	// RelGap is the relative optimality gap solves stop at (default
	// 0.05, the paper's CPLEX setting). Exact forces 0.
	RelGap float64
	// Exact forces proven optimality (RelGap 0).
	Exact bool
	// TimeLimit bounds each solve (default 20s); contexts passed to
	// Do/Map/Sweep can end a solve earlier.
	TimeLimit time.Duration
	// MaxNodes bounds branch-and-bound nodes per solve (0 = engine
	// default).
	MaxNodes int
	// Workers bounds the number of requests the session serves
	// concurrently (default min(GOMAXPROCS, 8)); excess requests queue
	// on the worker pool.
	Workers int
	// SolverWorkers is the worker count inside one MILP
	// branch-and-bound solve (0 = engine default). Set 1 for
	// deterministic MILP results.
	SolverWorkers int
	// Solver selects the engine (default SolverAuto).
	Solver SolverKind
	// Literal selects the paper-literal β formulation for SolverMILP.
	Literal bool
	// ColdStart disables warm starts and presolve inside the solvers
	// (ablations and benchmarks).
	ColdStart bool
	// DisableCuts turns off Gomory/cover cut separation inside the
	// MILP branch-and-bound (ablations and benchmarks).
	DisableCuts bool
	// BranchMostFractional restores most-fractional branching instead
	// of pseudocost branching with reliability strong branching inside
	// the MILP branch-and-bound (ablations and benchmarks).
	BranchMostFractional bool
	// SeedIters / SeedRestarts tune the local-search seeding of
	// OpMap/OpSweep (defaults 20000 / 4); DisableSeeding skips it.
	SeedIters      int
	SeedRestarts   int
	DisableSeeding bool
}

// Option mutates a Config inside NewSession.
type Option func(*Config)

// WithPlatform sets the target platform.
func WithPlatform(p *platform.Platform) Option { return func(c *Config) { c.Platform = p } }

// WithRelGap sets the relative optimality gap (e.g. 0.05 for the
// paper's 5%).
func WithRelGap(gap float64) Option { return func(c *Config) { c.RelGap = gap } }

// WithExact forces proven optimality (gap 0).
func WithExact() Option { return func(c *Config) { c.Exact = true } }

// WithTimeLimit bounds each solve's wall-clock budget.
func WithTimeLimit(d time.Duration) Option { return func(c *Config) { c.TimeLimit = d } }

// WithMaxNodes bounds branch-and-bound nodes per solve.
func WithMaxNodes(n int) Option { return func(c *Config) { c.MaxNodes = n } }

// WithWorkers bounds concurrently served requests.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithSolverWorkers sets the worker count inside one MILP solve
// (1 makes MILP results deterministic).
func WithSolverWorkers(n int) Option { return func(c *Config) { c.SolverWorkers = n } }

// WithSolver selects the solving engine.
func WithSolver(k SolverKind) Option { return func(c *Config) { c.Solver = k } }

// WithLiteralFormulation selects the paper-literal β formulation for
// SolverMILP.
func WithLiteralFormulation() Option { return func(c *Config) { c.Literal = true } }

// WithColdStart disables warm starts and presolve (ablations).
func WithColdStart() Option { return func(c *Config) { c.ColdStart = true } }

// WithoutCuts turns off Gomory/cover cut separation in the MILP
// branch-and-bound (ablations).
func WithoutCuts() Option { return func(c *Config) { c.DisableCuts = true } }

// WithMostFractionalBranching restores the most-fractional branching
// rule in the MILP branch-and-bound (ablations).
func WithMostFractionalBranching() Option {
	return func(c *Config) { c.BranchMostFractional = true }
}

// WithSeeding tunes the heuristic seeding (iters, restarts); pass
// (0, 0) to keep the defaults.
func WithSeeding(iters, restarts int) Option {
	return func(c *Config) { c.SeedIters, c.SeedRestarts = iters, restarts }
}

// WithoutSeeding skips the greedy/local-search seeding entirely.
func WithoutSeeding() Option { return func(c *Config) { c.DisableSeeding = true } }

// fill applies defaults to unset fields.
func (c *Config) fill() {
	if c.Platform == nil {
		c.Platform = platform.QS22()
	}
	if c.Exact {
		c.RelGap = 0
	} else if c.RelGap == 0 {
		c.RelGap = 0.05
	}
	if c.TimeLimit == 0 {
		c.TimeLimit = 20 * time.Second
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.SeedIters == 0 {
		c.SeedIters = 20000
	}
	if c.SeedRestarts == 0 {
		c.SeedRestarts = 4
	}
}

// validate rejects nonsensical configurations after fill.
func (c *Config) validate() error {
	if err := c.Platform.Validate(); err != nil {
		return fmt.Errorf("sched: invalid platform: %w", err)
	}
	if c.RelGap < 0 || c.RelGap >= 1 {
		return fmt.Errorf("sched: relative gap %g outside [0,1)", c.RelGap)
	}
	if c.TimeLimit < 0 {
		return fmt.Errorf("sched: negative time limit %v", c.TimeLimit)
	}
	if c.Workers < 1 {
		return fmt.Errorf("sched: %d workers", c.Workers)
	}
	if c.SolverWorkers < 0 || c.MaxNodes < 0 {
		return fmt.Errorf("sched: negative solver workers or node limit")
	}
	switch c.Solver {
	case SolverAuto, SolverSearch, SolverMILP:
	default:
		return fmt.Errorf("sched: unknown solver kind %d", int(c.Solver))
	}
	return nil
}
