// Package sched is the public, session-oriented facade of the
// scheduling framework: one coherent configuration and one long-lived
// Session in front of the solver stack (internal/lp, internal/milp,
// internal/assign, internal/core), replacing direct use of their four
// uncoordinated option structs.
//
// A Session owns the cached formulations, a worker pool bounding
// concurrent solves, and per-graph warm-start state (a mutable lp.Model
// over the compact formulation whose dual-simplex warm starts carry
// across SPE-count sweep points). It serves concurrent,
// context-cancellable Request→Result solves:
//
//   - OpMap computes a throughput-optimal mapping of a task graph,
//   - OpSweep maps the graph at a series of SPE counts (the Fig. 7
//     axis), each point's root LP warm-started from the previous,
//   - OpEvaluate analytically evaluates a fixed mapping,
//   - Stream re-solves a request periodically (online re-planning).
//
// Requests are validated up front (ErrBadRequest) and solver failures
// carry the lp sentinel errors (lp.ErrInfeasible, lp.ErrIterLimit, ...)
// for errors.Is classification.
//
//	sess, err := sched.NewSession(
//		sched.WithPlatform(platform.QS22()),
//		sched.WithRelGap(0.05),
//		sched.WithTimeLimit(10*time.Second),
//	)
//	defer sess.Close()
//	res, err := sess.Map(ctx, g)
package sched

import (
	"errors"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/lp"
	"cellstream/internal/milp"
)

var (
	// ErrBadRequest reports a structurally invalid Request: nil or
	// invalid graph, unknown op, an out-of-range SPE count, a malformed
	// mapping, or a nonsensical stream interval. Classify with
	// errors.Is(err, sched.ErrBadRequest).
	ErrBadRequest = errors.New("sched: bad request")
	// ErrClosed reports a request issued to a closed Session.
	ErrClosed = errors.New("sched: session closed")
)

// Op selects what a Request asks the Session to do.
type Op int

const (
	// OpMap computes a throughput-optimal mapping of Request.Graph on
	// the session platform (within the configured gap).
	OpMap Op = iota + 1
	// OpSweep maps Request.Graph once per SPE count in
	// Request.SPECounts (default: every count from the full platform
	// down to 0). Root LP bounds are dual-warm-started across points.
	OpSweep
	// OpEvaluate analytically evaluates the fixed Request.Mapping:
	// period, bottleneck, capacity feasibility.
	OpEvaluate
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpMap:
		return "map"
	case OpSweep:
		return "sweep"
	case OpEvaluate:
		return "evaluate"
	default:
		return "unknown"
	}
}

// Request describes one unit of work for Session.Do. Zero-valued
// optional fields take the session defaults.
type Request struct {
	// Op selects the operation; required.
	Op Op
	// Graph is the streaming task graph; required, must Validate.
	Graph *graph.Graph
	// Mapping is the fixed mapping to evaluate (OpEvaluate only).
	Mapping core.Mapping
	// SPECounts is the sweep axis for OpSweep. Defaults to
	// NumSPE..0 (descending). Points are solved in descending order so
	// each root LP warm-starts from the previous one; results are
	// reported in the order given here.
	SPECounts []int
	// Seed optionally provides an initial incumbent mapping for
	// OpMap/OpSweep (checked for feasibility, ignored when infeasible).
	Seed core.Mapping
	// RelGap overrides the session's relative optimality gap when > 0.
	RelGap float64
	// TimeLimit overrides the session's per-solve budget when > 0.
	// For OpSweep it applies per point.
	TimeLimit time.Duration
}

// Result is the outcome of one Request.
type Result struct {
	// Op echoes the request's operation.
	Op Op
	// Mapping is the computed (OpMap) or evaluated (OpEvaluate)
	// mapping; for OpSweep it is the full-configuration point's when
	// present (see Sweep for every point).
	Mapping core.Mapping
	// Report is the analytical steady-state evaluation of Mapping.
	Report *core.Report
	// PeriodBound is a proven lower bound on the optimal period
	// (OpMap); the achieved period is within Gap of it.
	PeriodBound float64
	// RootLPBound is the LP-relaxation root bound used by the search
	// (0 when unavailable).
	RootLPBound float64
	// Gap is the relative optimality gap actually proven (OpMap).
	Gap float64
	// Nodes counts branch-and-bound nodes explored (OpMap).
	Nodes int
	// Proved is true when the gap is proven rather than truncated by a
	// limit.
	Proved bool
	// SolveTime is the wall-clock time of the solve.
	SolveTime time.Duration
	// Stats aggregates LP-solver counters for MILP-backed solves.
	Stats milp.Stats
	// LP aggregates the warm root-LP counters this request consumed
	// (the dual-warm-start sweep path).
	LP lp.Stats
	// Sweep holds the per-SPE-count points of an OpSweep result, in
	// the order requested.
	Sweep []SweepPoint
	// Err carries a per-solve failure on streamed results, where there
	// is no error return path per tick. Always nil on Do results.
	Err error
}

// SweepPoint is one SPE count of an OpSweep result.
type SweepPoint struct {
	// NumSPE is the SPE count of this point.
	NumSPE int
	// Mapping and Report describe the best mapping found at this count.
	Mapping core.Mapping
	Report  *core.Report
	// PeriodBound and RootLPBound are the proven and root-LP lower
	// bounds on the period at this count.
	PeriodBound float64
	RootLPBound float64
	// Gap and Proved qualify PeriodBound like on Result.
	Gap    float64
	Proved bool
	// Nodes counts search nodes at this point.
	Nodes int
	// Warm is true when the point's root LP was served from a restored
	// warm basis — every chain point restarts from the session's
	// canonical baseline, so false means the warm start fell back cold
	// or the relaxation was unavailable.
	Warm bool
	// LP reports the root LP's solver counters for this point.
	LP lp.Stats
}

// RootPoint is one SPE count of a RootBounds sweep: the LP-relaxation
// lower bound alone, without the combinatorial search on top.
type RootPoint struct {
	// NumSPE is the SPE count of this point.
	NumSPE int
	// Bound is the root-LP lower bound on the optimal period at this
	// count (0 when the relaxation was unavailable).
	Bound float64
	// Warm is true when the bound was served from a restored warm
	// basis (the previous point's, or the canonical baseline for the
	// chain's first point); false means a cold fallback or an
	// unavailable relaxation.
	Warm bool
	// Stats reports the LP solver counters of this point's solve.
	Stats lp.Stats
}
