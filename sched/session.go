package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cellstream/internal/assign"
	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/heuristics"
	"cellstream/internal/lp"
	"cellstream/internal/platform"
)

// rootCacheCap bounds the per-graph warm-start states a session keeps
// (FIFO eviction, like core's formulation cache).
const rootCacheCap = 64

// Session is a long-lived scheduling service: it owns the cached
// formulations, a worker pool bounding concurrent solves, and
// per-graph warm-basis state, and serves concurrent,
// context-cancellable Request→Result solves. A Session is safe for
// concurrent use; create one per platform configuration and share it.
//
// Results are deterministic for the default (search) solver: the same
// request returns the byte-identical mapping whether issued serially or
// under concurrent load, because every warm root-LP chain restarts from
// the session's canonical baseline basis.
type Session struct {
	cfg  Config
	sem  chan struct{} // worker-pool slots
	quit chan struct{}
	once sync.Once
	wg   sync.WaitGroup // stream goroutines

	mu    sync.Mutex
	roots map[*graph.Graph]*rootState
	order []*graph.Graph // FIFO eviction order
}

// NewSession validates the configuration assembled from opts and
// returns a ready Session. Close it when done.
func NewSession(opts ...Option) (*Session, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Session{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.Workers),
		quit:  make(chan struct{}),
		roots: map[*graph.Graph]*rootState{},
	}, nil
}

// Config returns a copy of the session's effective configuration
// (defaults filled in).
func (s *Session) Config() Config { return s.cfg }

// Close shuts the session down: streams stop, and subsequent requests
// return ErrClosed. In-flight solves finish (cancel their contexts to
// stop them early). Close is idempotent.
func (s *Session) Close() {
	// The mutex orders Close against Stream's check-quit-then-register
	// sequence: a stream either registers with the WaitGroup strictly
	// before quit closes (and Wait waits for it) or observes the closed
	// quit and never starts — wg.Add can never race wg.Wait at zero.
	s.once.Do(func() {
		s.mu.Lock()
		close(s.quit)
		s.mu.Unlock()
	})
	s.wg.Wait()
}

// register adds a stream goroutine to the session's WaitGroup unless
// the session is already closed (see Close for the ordering argument).
func (s *Session) register() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.quit:
		return ErrClosed
	default:
	}
	s.wg.Add(1)
	return nil
}

// acquire takes a worker-pool slot, honoring cancellation and shutdown.
func (s *Session) acquire(ctx context.Context) error {
	select {
	case <-s.quit:
		return ErrClosed
	default:
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-s.quit:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Session) release() { <-s.sem }

// root returns the per-graph warm-start state, creating it on first use
// and evicting oldest-first past rootCacheCap.
func (s *Session) root(g *graph.Graph) *rootState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rs, ok := s.roots[g]; ok {
		return rs
	}
	if len(s.order) >= rootCacheCap {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.roots, oldest)
	}
	rs := &rootState{}
	s.roots[g] = rs
	s.order = append(s.order, g)
	return rs
}

// checkRequest validates a request up front; every failure wraps
// ErrBadRequest.
func (s *Session) checkRequest(req *Request) error {
	switch req.Op {
	case OpMap, OpSweep, OpEvaluate:
	default:
		return fmt.Errorf("%w: unknown op %d", ErrBadRequest, int(req.Op))
	}
	if req.Graph == nil {
		return fmt.Errorf("%w: nil graph", ErrBadRequest)
	}
	if err := req.Graph.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.Op == OpEvaluate {
		if err := req.Mapping.Validate(req.Graph, s.cfg.Platform); err != nil {
			return fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	if req.Seed != nil && len(req.Seed) != req.Graph.NumTasks() {
		return fmt.Errorf("%w: seed has %d entries for %d tasks",
			ErrBadRequest, len(req.Seed), req.Graph.NumTasks())
	}
	for _, k := range req.SPECounts {
		if k < 0 || k > s.cfg.Platform.NumSPE {
			return fmt.Errorf("%w: SPE count %d outside [0,%d]", ErrBadRequest, k, s.cfg.Platform.NumSPE)
		}
	}
	if req.RelGap < 0 || req.RelGap >= 1 {
		return fmt.Errorf("%w: relative gap %g outside [0,1)", ErrBadRequest, req.RelGap)
	}
	if req.TimeLimit < 0 {
		return fmt.Errorf("%w: negative time limit %v", ErrBadRequest, req.TimeLimit)
	}
	return nil
}

// Do serves one request: it validates, waits for a worker-pool slot
// (honoring ctx), dispatches on req.Op and returns the Result.
func (s *Session) Do(ctx context.Context, req Request) (*Result, error) {
	if err := s.checkRequest(&req); err != nil {
		return nil, err
	}
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch req.Op {
	case OpMap:
		return s.doMap(ctx, req)
	case OpSweep:
		return s.doSweep(ctx, req)
	default: // OpEvaluate, checkRequest rejected everything else
		return s.doEvaluate(req)
	}
}

// Map computes a throughput-optimal mapping of g on the session
// platform (Request{Op: OpMap} shorthand).
func (s *Session) Map(ctx context.Context, g *graph.Graph) (*Result, error) {
	return s.Do(ctx, Request{Op: OpMap, Graph: g})
}

// Sweep maps g once per SPE count (Request{Op: OpSweep} shorthand);
// counts defaults to NumSPE..0 when empty.
func (s *Session) Sweep(ctx context.Context, g *graph.Graph, counts ...int) (*Result, error) {
	return s.Do(ctx, Request{Op: OpSweep, Graph: g, SPECounts: counts})
}

// Evaluate analytically evaluates the fixed mapping m of g
// (Request{Op: OpEvaluate} shorthand).
func (s *Session) Evaluate(ctx context.Context, g *graph.Graph, m core.Mapping) (*Result, error) {
	return s.Do(ctx, Request{Op: OpEvaluate, Graph: g, Mapping: m})
}

// RootBounds solves the LP-relaxation lower bound at each SPE count of
// counts, in the order given — pass descending counts so each point
// dual-warm-starts from the previous one — without the combinatorial
// search on top. It is the bound-only sweep the Fig. 7 harness and the
// warm-vs-cold benchmarks use.
func (s *Session) RootBounds(ctx context.Context, g *graph.Graph, counts []int) ([]RootPoint, error) {
	req := Request{Op: OpSweep, Graph: g, SPECounts: counts}
	if err := s.checkRequest(&req); err != nil {
		return nil, err
	}
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pts := s.root(g).bounds(ctx, g, s.cfg.Platform, counts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}

// gapOf / limitOf resolve per-request overrides against the config.
func (s *Session) gapOf(req Request) float64 {
	if req.RelGap > 0 {
		return req.RelGap
	}
	return s.cfg.RelGap
}

func (s *Session) limitOf(req Request) time.Duration {
	if req.TimeLimit > 0 {
		return req.TimeLimit
	}
	return s.cfg.TimeLimit
}

// solverOf resolves SolverAuto: the assignment-space search is the
// production default — it scales to the paper's graph sizes and its
// results are deterministic.
func (s *Session) solverOf() SolverKind {
	if s.cfg.Solver == SolverAuto {
		return SolverSearch
	}
	return s.cfg.Solver
}

// seedFor builds the deterministic heuristic seed for a search on plat:
// the better of the two greedies, improved by seeded local search, and
// the caller's seed when it beats them all.
func (s *Session) seedFor(req Request, plat *platform.Platform) core.Mapping {
	if s.cfg.DisableSeeding {
		return req.Seed
	}
	g := req.Graph
	best := heuristics.GreedyCPU(g, plat)
	if alt := heuristics.GreedyMem(g, plat); betterMapping(g, plat, alt, best) {
		best = alt
	}
	if improved, _, err := heuristics.Improve(g, plat, best.Clone(), heuristics.LocalSearchOptions{
		MaxIters: s.cfg.SeedIters, Restarts: s.cfg.SeedRestarts,
	}); err == nil && betterMapping(g, plat, improved, best) {
		best = improved
	}
	if req.Seed != nil && betterMapping(g, plat, req.Seed, best) {
		best = req.Seed
	}
	return best
}

func betterMapping(g *graph.Graph, plat *platform.Platform, a, b core.Mapping) bool {
	ra, errA := core.Evaluate(g, plat, a)
	if errA != nil || !ra.Feasible {
		return false
	}
	rb, errB := core.Evaluate(g, plat, b)
	if errB != nil || !rb.Feasible {
		return true
	}
	return ra.Period < rb.Period
}

// solvePoint runs one mapping solve on plat with an externally supplied
// root bound (0 = let the engine bound itself).
func (s *Session) solvePoint(ctx context.Context, req Request, plat *platform.Platform, rootLB float64) (*assign.Result, error) {
	return assign.SolveCtx(ctx, req.Graph, plat, assign.Options{
		RelGap:        s.gapOf(req),
		Exact:         s.cfg.Exact,
		TimeLimit:     s.limitOf(req),
		MaxNodes:      s.cfg.MaxNodes,
		Seed:          s.seedFor(req, plat),
		RootBound:     rootLB,
		DisableRootLP: s.cfg.ColdStart,
	})
}

// doMap serves OpMap.
func (s *Session) doMap(ctx context.Context, req Request) (*Result, error) {
	start := time.Now()
	if s.solverOf() == SolverMILP {
		sres, err := core.SolveMILPCtx(ctx, req.Graph, s.cfg.Platform, core.SolveOptions{
			RelGap:               s.gapOf(req),
			Exact:                s.cfg.Exact,
			TimeLimit:            s.limitOf(req),
			MaxNodes:             s.cfg.MaxNodes,
			Literal:              s.cfg.Literal,
			Seed:                 req.Seed,
			ColdStart:            s.cfg.ColdStart,
			Workers:              s.cfg.SolverWorkers,
			DisableCuts:          s.cfg.DisableCuts,
			BranchMostFractional: s.cfg.BranchMostFractional,
		})
		if err != nil {
			return nil, err
		}
		return &Result{
			Op:          OpMap,
			Mapping:     sres.Mapping,
			Report:      sres.Report,
			PeriodBound: sres.PeriodBound,
			Gap:         sres.Gap,
			Nodes:       sres.Nodes,
			// Only Optimal proves the gap; Feasible means a limit
			// truncated the search with an unproven incumbent.
			Proved:    sres.Status.Proved(),
			SolveTime: time.Since(start),
			Stats:     sres.LPStats,
		}, nil
	}

	var rootLB float64
	var lpStats lp.Stats
	if !s.cfg.ColdStart {
		pts := s.root(req.Graph).bounds(ctx, req.Graph, s.cfg.Platform, []int{s.cfg.Platform.NumSPE})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rootLB = pts[0].Bound
		lpStats = pts[0].Stats
	}
	ares, err := s.solvePoint(ctx, req, s.cfg.Platform, rootLB)
	if err != nil {
		return nil, err
	}
	return &Result{
		Op:          OpMap,
		Mapping:     ares.Mapping,
		Report:      ares.Report,
		PeriodBound: ares.PeriodBound,
		RootLPBound: ares.RootLPBound,
		Gap:         ares.Gap,
		Nodes:       ares.Nodes,
		Proved:      ares.Proved,
		SolveTime:   time.Since(start),
		LP:          lpStats,
	}, nil
}

// doSweep serves OpSweep: the root LP chain runs in descending SPE
// order (each point warm from the previous), the per-point searches
// follow the same order, and the result reports points in the order
// requested.
func (s *Session) doSweep(ctx context.Context, req Request) (*Result, error) {
	start := time.Now()
	counts := req.SPECounts
	if len(counts) == 0 {
		for k := s.cfg.Platform.NumSPE; k >= 0; k-- {
			counts = append(counts, k)
		}
	}
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	sorted := make([]int, len(counts))
	for i, idx := range order {
		sorted[i] = counts[idx]
	}

	useMILP := s.solverOf() == SolverMILP
	var bounds []RootPoint
	if !s.cfg.ColdStart && !useMILP {
		bounds = s.root(req.Graph).bounds(ctx, req.Graph, s.cfg.Platform, sorted)
	}

	res := &Result{Op: OpSweep, Sweep: make([]SweepPoint, len(counts))}
	for i, idx := range order {
		if err := ctx.Err(); err != nil {
			// Cancelled mid-sweep: a partial result with nil-Report
			// points would be a trap for callers that only check the
			// error, so the whole request fails. Issue per-point OpMap
			// requests when partial progress must survive cancellation.
			return nil, err
		}
		k := counts[idx]
		plat := s.cfg.Platform.WithSPEs(k)
		pt := SweepPoint{NumSPE: k}
		if bounds != nil {
			pt.RootLPBound = bounds[i].Bound
			pt.Warm = bounds[i].Warm
			pt.LP = bounds[i].Stats
			res.LP.Add(bounds[i].Stats)
		}
		if useMILP {
			sres, err := core.SolveMILPCtx(ctx, req.Graph, plat, core.SolveOptions{
				RelGap:               s.gapOf(req),
				Exact:                s.cfg.Exact,
				TimeLimit:            s.limitOf(req),
				MaxNodes:             s.cfg.MaxNodes,
				Literal:              s.cfg.Literal,
				Seed:                 req.Seed, // unusable at reduced counts → core drops it
				ColdStart:            s.cfg.ColdStart,
				Workers:              s.cfg.SolverWorkers,
				DisableCuts:          s.cfg.DisableCuts,
				BranchMostFractional: s.cfg.BranchMostFractional,
			})
			if err != nil {
				return nil, err
			}
			pt.Mapping = sres.Mapping
			pt.Report = sres.Report
			pt.PeriodBound = sres.PeriodBound
			pt.Gap = sres.Gap
			pt.Nodes = sres.Nodes
			pt.Proved = sres.Status.Proved()
			res.Stats.Merge(sres.LPStats)
		} else {
			ares, err := s.solvePoint(ctx, req, plat, pt.RootLPBound)
			if err != nil {
				return nil, err
			}
			pt.Mapping = ares.Mapping
			pt.Report = ares.Report
			pt.PeriodBound = ares.PeriodBound
			pt.RootLPBound = ares.RootLPBound
			pt.Gap = ares.Gap
			pt.Nodes = ares.Nodes
			pt.Proved = ares.Proved
		}
		res.Sweep[idx] = pt
		res.Nodes += pt.Nodes
		if i == 0 { // largest SPE count: the headline configuration
			res.Mapping = pt.Mapping
			res.Report = pt.Report
			res.PeriodBound = pt.PeriodBound
			res.RootLPBound = pt.RootLPBound
			res.Gap = pt.Gap
			res.Proved = pt.Proved
		}
	}
	res.SolveTime = time.Since(start)
	return res, nil
}

// doEvaluate serves OpEvaluate.
func (s *Session) doEvaluate(req Request) (*Result, error) {
	start := time.Now()
	rep, err := core.Evaluate(req.Graph, s.cfg.Platform, req.Mapping)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return &Result{
		Op:        OpEvaluate,
		Mapping:   rep.Mapping,
		Report:    rep,
		SolveTime: time.Since(start),
	}, nil
}

// Stream serves periodic re-solves of req: one solve immediately, then
// one per interval tick, each delivered on the returned channel. The
// stream ends — and the channel closes — when ctx is done or the
// session closes. Per-solve failures arrive as Results with Err set
// (the stream survives them); delivery blocks on a slow consumer, so
// drain the channel.
func (s *Session) Stream(ctx context.Context, req Request, every time.Duration) (<-chan *Result, error) {
	if every <= 0 {
		return nil, fmt.Errorf("%w: stream interval %v", ErrBadRequest, every)
	}
	if err := s.checkRequest(&req); err != nil {
		return nil, err
	}
	if err := s.register(); err != nil {
		return nil, err
	}
	ch := make(chan *Result, 1)
	go func() {
		defer s.wg.Done()
		defer close(ch)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			res, err := s.Do(ctx, req)
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
					errors.Is(err, ErrClosed) {
					return
				}
				res = &Result{Op: req.Op, Err: err}
			}
			select {
			case ch <- res:
			case <-ctx.Done():
				return
			case <-s.quit:
				return
			}
			select {
			case <-tick.C:
			case <-ctx.Done():
				return
			case <-s.quit:
				return
			}
		}
	}()
	return ch, nil
}
