package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCloseRacingDo hammers Do from several goroutines while Close
// fires concurrently: every call must either complete with a valid
// result or fail with ErrClosed — never hang, panic, or surface an
// unclassified error. Run under -race this also proves the
// close/acquire ordering is data-race free.
func TestCloseRacingDo(t *testing.T) {
	for round := 0; round < 5; round++ {
		s := testSession(t, WithWorkers(2))
		g := testGraph(8, 4)
		// Warm the caches so racing solves are fast and the Close lands
		// mid-traffic rather than mid-first-formulation.
		if _, err := s.Map(context.Background(), g); err != nil {
			t.Fatal(err)
		}

		var completed, closed atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					res, err := s.Map(context.Background(), g)
					switch {
					case err == nil:
						if res == nil || res.Report == nil || !res.Report.Feasible {
							t.Errorf("successful Map with bad result: %+v", res)
							return
						}
						completed.Add(1)
					case errors.Is(err, ErrClosed):
						closed.Add(1)
						return
					default:
						t.Errorf("Map during Close: unclassified error %v", err)
						return
					}
				}
			}()
		}
		closer := make(chan struct{})
		go func() {
			defer close(closer)
			<-start
			time.Sleep(time.Duration(round) * 500 * time.Microsecond)
			s.Close()
		}()
		close(start)
		wg.Wait()
		<-closer

		if got := closed.Load(); got != 4 {
			t.Fatalf("round %d: %d workers saw ErrClosed, want 4", round, got)
		}
		// After Close everything keeps returning ErrClosed.
		if _, err := s.Do(context.Background(), Request{Op: OpMap, Graph: g}); !errors.Is(err, ErrClosed) {
			t.Fatalf("Do after Close: %v, want ErrClosed", err)
		}
		t.Logf("round %d: %d completions before close", round, completed.Load())
	}
}

// TestCloseRacingStream closes the session while streams are live:
// every stream channel must close promptly (no leaked goroutine keeps
// feeding it), and new streams must be refused with ErrClosed.
func TestCloseRacingStream(t *testing.T) {
	s := testSession(t, WithWorkers(2))
	g := testGraph(8, 4)
	if _, err := s.Map(context.Background(), g); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const streams = 3
	chans := make([]<-chan *Result, streams)
	for i := range chans {
		ch, err := s.Stream(ctx, Request{Op: OpMap, Graph: g}, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	// Every stream must deliver at least one result before the close.
	for i, ch := range chans {
		select {
		case res, ok := <-ch:
			if !ok || res == nil || res.Err != nil {
				t.Fatalf("stream %d: bad first result (ok=%v)", i, ok)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("stream %d delivered nothing", i)
		}
	}

	// Close concurrently with one more racing stream registration.
	raceDone := make(chan error, 1)
	go func() {
		_, err := s.Stream(ctx, Request{Op: OpMap, Graph: g}, time.Millisecond)
		raceDone <- err
	}()
	s.Close() // returns only after every stream goroutine exited

	// Drain: every channel must be closed already or close without
	// further sends — Close has waited for the goroutines.
	for _, ch := range chans {
		for range ch {
		}
	}
	if err := <-raceDone; err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("racing Stream: %v, want nil or ErrClosed", err)
	}
	if _, err := s.Stream(ctx, Request{Op: OpMap, Graph: g}, time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("Stream after Close: %v, want ErrClosed", err)
	}
}

// TestConcurrentClose: simultaneous Close calls are safe and all
// return (the sync.Once + WaitGroup contract).
func TestConcurrentClose(t *testing.T) {
	s := testSession(t)
	g := testGraph(6, 6)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := s.Stream(ctx, Request{Op: OpMap, Graph: g}, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	wg.Wait()
}
