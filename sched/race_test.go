package sched

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"cellstream/internal/heuristics"
	"cellstream/internal/platform"
)

// fingerprint reduces a Result to the fields the determinism contract
// covers, with exact float equality — "byte-identical" means identical
// mappings AND bit-identical periods/bounds, not just agreement within
// tolerance.
type fingerprint struct {
	Op          Op
	Mapping     []int
	Period      float64
	PeriodBound float64
	RootLPBound float64
	Gap         float64
	Nodes       int
	Proved      bool
	Sweep       []pointPrint
}

type pointPrint struct {
	NumSPE      int
	Mapping     []int
	Period      float64
	PeriodBound float64
	RootLPBound float64
	Proved      bool
}

func printOf(res *Result) fingerprint {
	fp := fingerprint{
		Op:          res.Op,
		Mapping:     append([]int(nil), res.Mapping...),
		PeriodBound: res.PeriodBound,
		RootLPBound: res.RootLPBound,
		Gap:         res.Gap,
		Nodes:       res.Nodes,
		Proved:      res.Proved,
	}
	if res.Report != nil {
		fp.Period = res.Report.Period
	}
	for _, pt := range res.Sweep {
		pp := pointPrint{
			NumSPE:      pt.NumSPE,
			Mapping:     append([]int(nil), pt.Mapping...),
			PeriodBound: pt.PeriodBound,
			RootLPBound: pt.RootLPBound,
			Proved:      pt.Proved,
		}
		if pt.Report != nil {
			pp.Period = pt.Report.Period
		}
		fp.Sweep = append(fp.Sweep, pp)
	}
	return fp
}

// TestSessionConcurrentByteIdentical hammers one Session with parallel
// mixed requests — map, sweep, evaluate — and asserts every result is
// byte-identical to a serial baseline run, under -race. This pins the
// facade's determinism contract: the worker pool and the shared warm
// root-LP state must not let request interleaving leak into results.
func TestSessionConcurrentByteIdentical(t *testing.T) {
	plat := platform.Cell(1, 3)
	newSession := func() *Session {
		s, err := NewSession(
			WithPlatform(plat),
			WithRelGap(0.05),
			WithTimeLimit(30*time.Second),
			WithSeeding(1000, 1),
			WithWorkers(8),
		)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	g1 := testGraph(10, 11)
	g2 := testGraph(12, 12)
	g3 := testGraph(9, 13)
	requests := []Request{
		{Op: OpMap, Graph: g1},
		{Op: OpSweep, Graph: g2, SPECounts: []int{3, 2, 1, 0}},
		{Op: OpEvaluate, Graph: g3, Mapping: heuristics.GreedyCPU(g3, plat)},
		{Op: OpMap, Graph: g2},
		{Op: OpSweep, Graph: g1, SPECounts: []int{3, 1}},
		{Op: OpEvaluate, Graph: g1, Mapping: heuristics.GreedyMem(g1, plat)},
	}

	// Serial baseline: every request once, sequentially, fresh session.
	serial := newSession()
	want := make([]fingerprint, len(requests))
	for i, req := range requests {
		res, err := serial.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("serial request %d: %v", i, err)
		}
		want[i] = printOf(res)
	}
	// Serial repeat on the SAME session: the warm state must not drift
	// results between the first and the n-th identical request.
	for i, req := range requests {
		res, err := serial.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("serial repeat %d: %v", i, err)
		}
		if got := printOf(res); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("serial repeat %d drifted:\ngot  %+v\nwant %+v", i, got, want[i])
		}
	}
	serial.Close()

	// Concurrent hammer: rounds × requests goroutines against one
	// fresh session, all in flight at once.
	rounds := 3
	if testing.Short() {
		rounds = 2
	}
	hammered := newSession()
	defer hammered.Close()
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(requests))
	for r := 0; r < rounds; r++ {
		for i, req := range requests {
			wg.Add(1)
			go func(r, i int, req Request) {
				defer wg.Done()
				res, err := hammered.Do(context.Background(), req)
				if err != nil {
					errs <- fmt.Errorf("round %d request %d: %v", r, i, err)
					return
				}
				if got := printOf(res); !reflect.DeepEqual(got, want[i]) {
					errs <- fmt.Errorf("round %d request %d diverged from serial:\ngot  %+v\nwant %+v", r, i, got, want[i])
				}
			}(r, i, req)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentMixedWithStreams adds streams and cancellations to the
// mix — no determinism assertion, just freedom from races, deadlocks
// and leaked goroutines under load.
func TestConcurrentMixedWithStreams(t *testing.T) {
	s := testSession(t, WithWorkers(4))
	g := testGraph(10, 21)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, err := s.Stream(ctx, Request{Op: OpMap, Graph: g}, 5*time.Millisecond)
			if err != nil {
				t.Error(err)
				return
			}
			n := 0
			for range ch {
				if n++; n == 2 {
					cancel()
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Sweep(context.Background(), g, 3, 0); err != nil {
				t.Errorf("sweep %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}
