package sched

// The wire encoding of the serving layer (internal/serve, cmd/schedd):
// a stable JSON form for Result, SweepPoint and RootPoint, plus the
// graph digest that keys request coalescing. "Stable" means two
// properties the traffic benchmark and the coalescing cache rely on:
//
//   - deterministic bytes: encoding the same value always produces the
//     identical byte sequence (encoding/json already guarantees this
//     for struct-only values — field order is declaration order);
//   - no wall-clock leakage by accident: SolveTime is part of the
//     encoding (solve_ms), so servers that promise byte-identical
//     responses for identical requests must zero it and report timing
//     out of band (schedd moves it to a response header).
//
// Solver counters (Result.Stats, Result.LP, the per-point stats) keep
// their Go field names as JSON keys: lp.Stats and milp.Stats evolve
// with the solver, and mirroring every counter here would silently
// drop newly added ones. Everything else uses snake_case tags.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/lp"
	"cellstream/internal/milp"
)

// Digest returns the content digest of g: lowercase-hex SHA-256 over
// its compact (un-indented) canonical JSON encoding. It is the graph
// half of the serving layer's coalescing key — two requests whose
// graphs digest identically are the same workload regardless of how
// the original payloads were formatted. Encoding fails only on
// non-finite float costs, which graph.Validate rejects.
func Digest(g *graph.Graph) (string, error) {
	b, err := json.Marshal(g)
	if err != nil {
		return "", fmt.Errorf("sched: digesting graph: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// reportWire is the stable JSON form of core.Report.
type reportWire struct {
	Mapping     core.Mapping `json:"mapping"`
	Period      float64      `json:"period"`
	Feasible    bool         `json:"feasible"`
	Violations  []string     `json:"violations,omitempty"`
	ComputeLoad []float64    `json:"compute_load,omitempty"`
	InBytes     []float64    `json:"in_bytes,omitempty"`
	OutBytes    []float64    `json:"out_bytes,omitempty"`
	BufferBytes []int64      `json:"buffer_bytes,omitempty"`
	DMAIn       []int        `json:"dma_in,omitempty"`
	DMAToPPE    []int        `json:"dma_to_ppe,omitempty"`
	Bottleneck  string       `json:"bottleneck,omitempty"`
}

func reportToWire(r *core.Report) *reportWire {
	if r == nil {
		return nil
	}
	return &reportWire{
		Mapping:     r.Mapping,
		Period:      r.Period,
		Feasible:    r.Feasible,
		Violations:  r.Violations,
		ComputeLoad: r.ComputeLoad,
		InBytes:     r.InBytes,
		OutBytes:    r.OutBytes,
		BufferBytes: r.BufferBytes,
		DMAIn:       r.DMAIn,
		DMAToPPE:    r.DMAToPPE,
		Bottleneck:  r.Bottleneck,
	}
}

func (w *reportWire) toReport() *core.Report {
	if w == nil {
		return nil
	}
	return &core.Report{
		Mapping:     w.Mapping,
		Period:      w.Period,
		Feasible:    w.Feasible,
		Violations:  w.Violations,
		ComputeLoad: w.ComputeLoad,
		InBytes:     w.InBytes,
		OutBytes:    w.OutBytes,
		BufferBytes: w.BufferBytes,
		DMAIn:       w.DMAIn,
		DMAToPPE:    w.DMAToPPE,
		Bottleneck:  w.Bottleneck,
	}
}

// milliseconds renders a duration as fractional milliseconds (the wire
// unit of every latency field).
func milliseconds(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

func fromMilliseconds(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// statsOrNil returns a pointer to st unless it is the zero aggregate,
// so empty counter blocks stay out of the encoding.
func statsOrNil(st milp.Stats) *milp.Stats {
	if st == (milp.Stats{}) {
		return nil
	}
	return &st
}

func lpStatsOrNil(st lp.Stats) *lp.Stats {
	if st == (lp.Stats{}) {
		return nil
	}
	return &st
}

// resultWire is the stable JSON form of Result.
type resultWire struct {
	Op          string           `json:"op"`
	Mapping     core.Mapping     `json:"mapping,omitempty"`
	Report      *reportWire      `json:"report,omitempty"`
	PeriodBound float64          `json:"period_bound,omitempty"`
	RootLPBound float64          `json:"root_lp_bound,omitempty"`
	Gap         float64          `json:"gap,omitempty"`
	Nodes       int              `json:"nodes,omitempty"`
	Proved      bool             `json:"proved,omitempty"`
	SolveMS     float64          `json:"solve_ms,omitempty"`
	Stats       *milp.Stats      `json:"stats,omitempty"`
	LP          *lp.Stats        `json:"lp,omitempty"`
	Sweep       []sweepPointWire `json:"sweep,omitempty"`
	Err         string           `json:"error,omitempty"`
}

// sweepPointWire is the stable JSON form of SweepPoint.
type sweepPointWire struct {
	NumSPE      int          `json:"num_spe"`
	Mapping     core.Mapping `json:"mapping,omitempty"`
	Report      *reportWire  `json:"report,omitempty"`
	PeriodBound float64      `json:"period_bound,omitempty"`
	RootLPBound float64      `json:"root_lp_bound,omitempty"`
	Gap         float64      `json:"gap,omitempty"`
	Proved      bool         `json:"proved,omitempty"`
	Nodes       int          `json:"nodes,omitempty"`
	Warm        bool         `json:"warm,omitempty"`
	LP          *lp.Stats    `json:"lp,omitempty"`
}

// rootPointWire is the stable JSON form of RootPoint.
type rootPointWire struct {
	NumSPE int       `json:"num_spe"`
	Bound  float64   `json:"bound"`
	Warm   bool      `json:"warm,omitempty"`
	Stats  *lp.Stats `json:"stats,omitempty"`
}

// parseOp inverts Op.String.
func parseOp(s string) (Op, error) {
	switch s {
	case "map":
		return OpMap, nil
	case "sweep":
		return OpSweep, nil
	case "evaluate":
		return OpEvaluate, nil
	default:
		return 0, fmt.Errorf("sched: unknown op %q", s)
	}
}

// MarshalJSON implements the stable wire encoding (see the package
// comment of this file). The zero Op encodes as "unknown" and does not
// round-trip; every Result produced by a Session carries a real Op.
func (r Result) MarshalJSON() ([]byte, error) {
	w := resultWire{
		Op:          r.Op.String(),
		Mapping:     r.Mapping,
		Report:      reportToWire(r.Report),
		PeriodBound: r.PeriodBound,
		RootLPBound: r.RootLPBound,
		Gap:         r.Gap,
		Nodes:       r.Nodes,
		Proved:      r.Proved,
		SolveMS:     milliseconds(r.SolveTime),
		Stats:       statsOrNil(r.Stats),
		LP:          lpStatsOrNil(r.LP),
	}
	if r.Err != nil {
		w.Err = r.Err.Error()
	}
	for _, pt := range r.Sweep {
		w.Sweep = append(w.Sweep, sweepPointWire{
			NumSPE:      pt.NumSPE,
			Mapping:     pt.Mapping,
			Report:      reportToWire(pt.Report),
			PeriodBound: pt.PeriodBound,
			RootLPBound: pt.RootLPBound,
			Gap:         pt.Gap,
			Proved:      pt.Proved,
			Nodes:       pt.Nodes,
			Warm:        pt.Warm,
			LP:          lpStatsOrNil(pt.LP),
		})
	}
	return json.Marshal(w)
}

// UnmarshalJSON inverts MarshalJSON. A wire error comes back as an
// opaque error value (the sentinel identity does not survive the
// trip); clients classify failures by the transport's status code
// instead.
func (r *Result) UnmarshalJSON(b []byte) error {
	var w resultWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	op, err := parseOp(w.Op)
	if err != nil {
		return err
	}
	*r = Result{
		Op:          op,
		Mapping:     w.Mapping,
		Report:      w.Report.toReport(),
		PeriodBound: w.PeriodBound,
		RootLPBound: w.RootLPBound,
		Gap:         w.Gap,
		Nodes:       w.Nodes,
		Proved:      w.Proved,
		SolveTime:   fromMilliseconds(w.SolveMS),
	}
	if w.Stats != nil {
		r.Stats = *w.Stats
	}
	if w.LP != nil {
		r.LP = *w.LP
	}
	if w.Err != "" {
		r.Err = errors.New(w.Err)
	}
	for _, pw := range w.Sweep {
		pt := SweepPoint{
			NumSPE:      pw.NumSPE,
			Mapping:     pw.Mapping,
			Report:      pw.Report.toReport(),
			PeriodBound: pw.PeriodBound,
			RootLPBound: pw.RootLPBound,
			Gap:         pw.Gap,
			Proved:      pw.Proved,
			Nodes:       pw.Nodes,
			Warm:        pw.Warm,
		}
		if pw.LP != nil {
			pt.LP = *pw.LP
		}
		r.Sweep = append(r.Sweep, pt)
	}
	return nil
}

// MarshalJSON implements the stable wire encoding of a RootPoint.
func (p RootPoint) MarshalJSON() ([]byte, error) {
	return json.Marshal(rootPointWire{
		NumSPE: p.NumSPE,
		Bound:  p.Bound,
		Warm:   p.Warm,
		Stats:  lpStatsOrNil(p.Stats),
	})
}

// UnmarshalJSON inverts MarshalJSON.
func (p *RootPoint) UnmarshalJSON(b []byte) error {
	var w rootPointWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*p = RootPoint{NumSPE: w.NumSPE, Bound: w.Bound, Warm: w.Warm}
	if w.Stats != nil {
		p.Stats = *w.Stats
	}
	return nil
}
