package sched

import (
	"context"
	"sync"

	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/lp"
	"cellstream/internal/platform"
)

// rootLPMaxIter bounds each root-LP solve, matching the budget the
// assignment search historically gave its own (cold) root relaxation.
const rootLPMaxIter = 20000

// rootState is a Session's per-graph warm-start state: one mutable
// lp.Model over the compact formulation at the session's FULL platform.
// Sweeping SPE counts never rebuilds it — a sweep point with k SPEs is
// expressed by fixing the placement columns α^t_pe of every disabled
// SPE (pe ≥ k) to zero, which leaves the row structure (and therefore
// the warm-start basis) shared across all points, so consecutive points
// re-solve through the dual simplex instead of from scratch. The
// reduced relaxation's optimum equals the reduced platform's own root
// LP: disabled PEs contribute nothing to the load rows once their α
// columns are zero, and the communication indicators of disabled PEs
// rest at zero in any optimum.
//
// Every request chain restarts from the canonical baseline basis (the
// unrestricted relaxation's optimum), so a given counts sequence takes
// an identical pivot path no matter how requests interleave — the
// byte-identical-under-concurrency guarantee the facade tests pin.
type rootState struct {
	mu     sync.Mutex
	ready  bool
	failed bool

	f     *core.Formulation
	model *lp.Model
	base  *lp.Basis // canonical basis: optimum of the unrestricted relaxation
}

// init builds the model and solves the unrestricted (full-platform)
// relaxation once, cold with presolve; its basis anchors every later
// warm chain.
func (rs *rootState) init(g *graph.Graph, plat *platform.Platform) {
	rs.f = core.CachedFormulation(g, plat, false)
	// Clone: the cached formulation is shared and immutable; the model
	// mutates bounds per sweep point.
	rs.model = lp.ModelFor(rs.f.Problem.LP.Clone())
	sol, err := rs.model.Solve(lp.Options{MaxIter: rootLPMaxIter, Presolve: true})
	if err != nil || sol.Status.Err() != nil || sol.Basis == nil {
		rs.failed = true
		return
	}
	rs.base = sol.Basis
}

// bounds solves the root LP at each SPE count of the chain, IN THE
// ORDER GIVEN (callers pass descending counts so each point
// warm-starts from the previous one). A failed point leaves Bound 0 —
// callers fall back to their own bounding — and the chain continues.
// Cancellation is honored between chain points (a single LP solve has
// no mid-solve cancellation): remaining points keep Bound 0 and the
// caller surfaces ctx.Err().
func (rs *rootState) bounds(ctx context.Context, g *graph.Graph, plat *platform.Platform, counts []int) []RootPoint {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.ready {
		rs.init(g, plat)
		rs.ready = true
	}
	pts := make([]RootPoint, len(counts))
	for i, k := range counts {
		pts[i].NumSPE = k
	}
	if rs.failed {
		return pts
	}
	rs.model.SetBasis(rs.base)
	for i, k := range counts {
		if ctx.Err() != nil {
			break
		}
		for spe := 0; spe < plat.NumSPE; spe++ {
			up := 1.0
			if spe >= k {
				up = 0 // SPE disabled at this sweep point
			}
			for t := 0; t < rs.f.NumTasks(); t++ {
				rs.model.SetBounds(rs.f.AlphaVar(t, plat.NumPPE+spe), 0, up)
			}
		}
		sol, err := rs.model.Solve(lp.Options{MaxIter: rootLPMaxIter})
		if err != nil || sol.Status.Err() != nil {
			continue
		}
		pts[i].Bound = sol.Objective
		pts[i].Warm = sol.Stats.Warm && !sol.Stats.WarmFellBack
		pts[i].Stats = sol.Stats
	}
	return pts
}
