package sched

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// TestDigestStable pins the digest contract: identical graph content
// digests identically regardless of payload formatting, and any
// content change moves the digest.
func TestDigestStable(t *testing.T) {
	g := testGraph(8, 1)
	d1, err := Digest(g)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Digest(g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || len(d1) != 64 {
		t.Fatalf("clone digests differ or wrong length: %q vs %q", d1, d2)
	}
	mut := g.Clone()
	mut.Tasks[0].WPPE *= 2
	d3, err := Digest(mut)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("content change did not move the digest")
	}
}

// TestResultWireRoundTrip serializes a real Map result and a real
// Sweep result through the wire encoding and back; everything except
// the error identity must survive.
func TestResultWireRoundTrip(t *testing.T) {
	s := testSession(t)
	g := testGraph(8, 2)
	ctx := context.Background()

	for name, req := range map[string]Request{
		"map":   {Op: OpMap, Graph: g},
		"sweep": {Op: OpSweep, Graph: g, SPECounts: []int{3, 1}},
	} {
		res, err := s.Do(ctx, req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b1, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Result
		if err := json.Unmarshal(b1, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		b2, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: encoding not stable under round trip:\n%s\n%s", name, b1, b2)
		}
		if !reflect.DeepEqual(res.Mapping, back.Mapping) {
			t.Errorf("%s: mapping changed: %v vs %v", name, res.Mapping, back.Mapping)
		}
		if res.Report != nil && (back.Report == nil || back.Report.Period != res.Report.Period) {
			t.Errorf("%s: report period lost", name)
		}
		if back.Op != res.Op || back.Nodes != res.Nodes || back.Proved != res.Proved {
			t.Errorf("%s: scalar fields changed", name)
		}
		if back.Stats != res.Stats || back.LP != res.LP {
			t.Errorf("%s: solver counters changed", name)
		}
		if len(back.Sweep) != len(res.Sweep) {
			t.Fatalf("%s: sweep arity %d vs %d", name, len(back.Sweep), len(res.Sweep))
		}
		for i := range res.Sweep {
			if res.Sweep[i].NumSPE != back.Sweep[i].NumSPE ||
				res.Sweep[i].PeriodBound != back.Sweep[i].PeriodBound ||
				res.Sweep[i].Warm != back.Sweep[i].Warm {
				t.Errorf("%s: sweep point %d changed", name, i)
			}
		}
	}
}

// TestRootPointWireRoundTrip does the same for the bound-only sweep.
func TestRootPointWireRoundTrip(t *testing.T) {
	s := testSession(t)
	g := testGraph(8, 3)
	pts, err := s.RootBounds(context.Background(), g, []int{3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(pts)
	if err != nil {
		t.Fatal(err)
	}
	var back []RootPoint
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, back) {
		t.Fatalf("root points changed over the wire:\n%+v\n%+v", pts, back)
	}
}

// TestResultWireError: streamed per-tick failures carry Err; the wire
// form keeps the message (identity is transport-level).
func TestResultWireError(t *testing.T) {
	res := Result{Op: OpMap, Err: errors.New("boom")}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"error":"boom"`)) {
		t.Fatalf("error missing from wire form: %s", b)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Err == nil || back.Err.Error() != "boom" {
		t.Fatalf("error message lost: %v", back.Err)
	}
	// Unknown ops are rejected, not zero-filled.
	if err := json.Unmarshal([]byte(`{"op":"frobnicate"}`), &back); err == nil {
		t.Fatal("unknown op accepted")
	}
}
