package platform

import (
	"strings"
	"testing"
)

func TestPresets(t *testing.T) {
	ps3 := PlayStation3()
	if ps3.NumPPE != 1 || ps3.NumSPE != 6 {
		t.Errorf("PS3 = %d PPE + %d SPE, want 1+6", ps3.NumPPE, ps3.NumSPE)
	}
	qs := QS22()
	if qs.NumPPE != 1 || qs.NumSPE != 8 {
		t.Errorf("QS22 = %d PPE + %d SPE, want 1+8", qs.NumPPE, qs.NumSPE)
	}
	for _, p := range []*Platform{ps3, qs, Cell(1, 0), Cell(2, 8)} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestConstantsMatchPaper(t *testing.T) {
	p := QS22()
	if p.LocalStore != 256*1024 {
		t.Errorf("local store = %d, want 256 kB", p.LocalStore)
	}
	if p.BW != 25e9 {
		t.Errorf("bw = %v, want 25 GB/s", p.BW)
	}
	if p.EIB != 200e9 {
		t.Errorf("EIB = %v, want 200 GB/s", p.EIB)
	}
	if p.MaxDMAIn != 16 || p.MaxDMAFromPPE != 8 {
		t.Errorf("DMA limits = %d/%d, want 16/8", p.MaxDMAIn, p.MaxDMAFromPPE)
	}
}

func TestIndexingAndKinds(t *testing.T) {
	p := Cell(2, 3)
	if p.NumPE() != 5 {
		t.Fatalf("NumPE = %d", p.NumPE())
	}
	wantKinds := []PEKind{PPE, PPE, SPE, SPE, SPE}
	wantNames := []string{"PPE0", "PPE1", "SPE0", "SPE1", "SPE2"}
	for i := 0; i < p.NumPE(); i++ {
		if p.Kind(i) != wantKinds[i] {
			t.Errorf("Kind(%d) = %v, want %v", i, p.Kind(i), wantKinds[i])
		}
		if p.PEName(i) != wantNames[i] {
			t.Errorf("PEName(%d) = %q, want %q", i, p.PEName(i), wantNames[i])
		}
		if p.IsSPE(i) != (wantKinds[i] == SPE) {
			t.Errorf("IsSPE(%d) wrong", i)
		}
	}
	if PPE.String() != "PPE" || SPE.String() != "SPE" {
		t.Error("PEKind.String broken")
	}
}

func TestBufferCapacity(t *testing.T) {
	p := Cell(1, 1)
	if got := p.BufferCapacity(); got != int64(256*1024-48*1024) {
		t.Errorf("BufferCapacity = %d", got)
	}
}

func TestWithSPEs(t *testing.T) {
	p := QS22()
	q := p.WithSPEs(3)
	if q.NumSPE != 3 || p.NumSPE != 8 {
		t.Errorf("WithSPEs mutated original or failed: %d, %d", q.NumSPE, p.NumSPE)
	}
	if q.BW != p.BW || q.LocalStore != p.LocalStore {
		t.Error("WithSPEs lost parameters")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []func(*Platform){
		func(p *Platform) { p.NumPPE = -1 },
		func(p *Platform) { p.NumPPE, p.NumSPE = 0, 0 },
		func(p *Platform) { p.NumPPE = 0 }, // SPE-only platform
		func(p *Platform) { p.LocalStore = 0 },
		func(p *Platform) { p.CodeSize = p.LocalStore },
		func(p *Platform) { p.BW = 0 },
		func(p *Platform) { p.MaxDMAIn = 0 },
		func(p *Platform) { p.MaxDMAFromPPE = -1 },
	}
	for i, mutate := range cases {
		p := QS22()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid platform accepted", i)
		}
	}
}

func TestStringAndJSON(t *testing.T) {
	p := QS22()
	s := p.String()
	if !strings.Contains(s, "8 SPE") || !strings.Contains(s, "25 GB/s") {
		t.Errorf("String() = %q", s)
	}
	b, err := p.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"num_spe": 8`) {
		t.Errorf("JSON = %s", b)
	}
}

func TestQS22Dual(t *testing.T) {
	p := QS22Dual()
	if p.NumPPE != 2 || p.NumSPE != 16 {
		t.Errorf("dual = %d PPE + %d SPE, want 2+16", p.NumPPE, p.NumSPE)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.PEName(1) != "PPE1" || p.PEName(2) != "SPE0" {
		t.Errorf("indexing wrong: %s %s", p.PEName(1), p.PEName(2))
	}
}
