// Package platform models the STI Cell Broadband Engine of §2.1 of the
// paper: one or more PPE (Power) cores, up to eight SPE (Synergistic)
// cores each with a 256 kB local store, and the Element Interconnect Bus
// through which every component owns a bidirectional interface of
// bandwidth bw in each direction.
//
// The theoretical model (Fig. 1(b)) abstracts the machine as a set of
// processing elements, each with an input interface and an output
// interface of capacity bw, communications overlappable with computation,
// and unrelated-machine compute costs. Two platform-specific limits
// constrain mappings: SPE local-store capacity and the DMA-call stacks
// (at most 16 concurrent incoming DMA calls per SPE, at most 8 concurrent
// PPE-issued calls per SPE).
package platform

import (
	"encoding/json"
	"fmt"
)

// PEKind distinguishes the two classes of processing elements.
type PEKind int

const (
	// PPE is the Power Processing Element: general purpose, transparent
	// access to main memory, runs the OS.
	PPE PEKind = iota
	// SPE is the Synergistic Processing Element: 128-bit SIMD RISC core
	// with a private 256 kB local store, reachable only by explicit DMA.
	SPE
)

// String implements fmt.Stringer.
func (k PEKind) String() string {
	switch k {
	case PPE:
		return "PPE"
	case SPE:
		return "SPE"
	default:
		return fmt.Sprintf("PEKind(%d)", int(k))
	}
}

// Default hardware constants of the Cell BE, from §2.1.
const (
	// DefaultLocalStore is the size of one SPE local store (256 kB).
	DefaultLocalStore = 256 * 1024
	// DefaultBW is the per-interface bandwidth in bytes/second
	// (25 GB/s in each direction).
	DefaultBW = 25e9
	// DefaultEIB is the aggregated EIB ring bandwidth (200 GB/s).
	DefaultEIB = 200e9
	// DefaultMaxDMAIn is the maximum number of simultaneous DMA calls an
	// SPE can issue (incoming data per period, constraint (1j)).
	DefaultMaxDMAIn = 16
	// DefaultMaxDMAFromPPE is the maximum number of simultaneous DMA
	// calls issued by PPEs and handled by one SPE (constraint (1k)).
	DefaultMaxDMAFromPPE = 8
	// DefaultCodeSize is the footprint of the replicated application code
	// in every local store; buffers must fit in LS - code. 48 kB is a
	// typical footprint for the paper's scheduling framework plus task
	// code.
	DefaultCodeSize = 48 * 1024
)

// Platform describes one scheduling target.
type Platform struct {
	Name string `json:"name"`

	// NumPPE and NumSPE are the processing-element counts (nP and nS).
	NumPPE int `json:"num_ppe"`
	NumSPE int `json:"num_spe"`

	// LocalStore is the SPE local-store size in bytes and CodeSize the
	// part of it consumed by replicated application code. Buffers of a
	// mapping must fit into LocalStore - CodeSize (constraint (1i)).
	LocalStore int64 `json:"local_store"`
	CodeSize   int64 `json:"code_size"`

	// BW is the per-interface bandwidth (bytes/second, each direction);
	// EIB the aggregate ring bandwidth. The bounded-multiport model uses
	// only BW; the simulator can optionally enforce EIB.
	BW  float64 `json:"bw"`
	EIB float64 `json:"eib"`

	// MaxDMAIn bounds simultaneous incoming DMA calls per SPE;
	// MaxDMAFromPPE bounds simultaneous PPE-issued calls per SPE.
	MaxDMAIn      int `json:"max_dma_in"`
	MaxDMAFromPPE int `json:"max_dma_from_ppe"`
}

// Cell returns a platform with nP PPEs and nS SPEs and default Cell BE
// constants.
func Cell(nP, nS int) *Platform {
	return &Platform{
		Name:          fmt.Sprintf("cell-%dppe-%dspe", nP, nS),
		NumPPE:        nP,
		NumSPE:        nS,
		LocalStore:    DefaultLocalStore,
		CodeSize:      DefaultCodeSize,
		BW:            DefaultBW,
		EIB:           DefaultEIB,
		MaxDMAIn:      DefaultMaxDMAIn,
		MaxDMAFromPPE: DefaultMaxDMAFromPPE,
	}
}

// PlayStation3 returns the PS3 configuration: a single Cell with one PPE
// and six usable SPEs.
func PlayStation3() *Platform {
	p := Cell(1, 6)
	p.Name = "ps3"
	return p
}

// QS22 returns the configuration used in the paper's experiments: a
// single Cell processor of an IBM QS22 blade, one PPE and eight SPEs.
// (The paper restricts itself to one of the two Cell chips.)
func QS22() *Platform {
	p := Cell(1, 8)
	p.Name = "qs22"
	return p
}

// QS22Dual returns both Cell processors of an IBM QS22 blade as one
// platform: two PPEs and sixteen SPEs sharing main memory. The paper
// leaves multi-Cell deployment as future work (§7) because of
// inter-Cell contention; this preset models the optimistic
// no-contention case (every interface still bounded by bw), which is
// the natural first extension of the §2.1 model.
func QS22Dual() *Platform {
	p := Cell(2, 16)
	p.Name = "qs22-dual"
	return p
}

// NumPE returns the total number of processing elements n = nP + nS.
// Processing elements are indexed 0..n-1 with PPEs first (0..nP-1) and
// SPEs after (nP..n-1), as in the paper.
func (p *Platform) NumPE() int { return p.NumPPE + p.NumSPE }

// Kind returns the kind of processing element pe (by global index).
func (p *Platform) Kind(pe int) PEKind {
	if pe < p.NumPPE {
		return PPE
	}
	return SPE
}

// IsSPE reports whether PE index pe is an SPE.
func (p *Platform) IsSPE(pe int) bool { return pe >= p.NumPPE }

// PEName returns a human-readable name such as "PPE0" or "SPE3".
func (p *Platform) PEName(pe int) string {
	if pe < p.NumPPE {
		return fmt.Sprintf("PPE%d", pe)
	}
	return fmt.Sprintf("SPE%d", pe-p.NumPPE)
}

// BufferCapacity returns the local-store bytes available for stream
// buffers on one SPE: LS - code.
func (p *Platform) BufferCapacity() int64 { return p.LocalStore - p.CodeSize }

// Validate checks that the platform parameters are usable.
func (p *Platform) Validate() error {
	switch {
	case p.NumPPE < 0 || p.NumSPE < 0:
		return fmt.Errorf("platform %q: negative PE count", p.Name)
	case p.NumPE() == 0:
		return fmt.Errorf("platform %q: no processing elements", p.Name)
	case p.NumPPE == 0:
		// Main memory is reachable only through PPE-side controllers in
		// our model; SPE-only platforms cannot source the stream.
		return fmt.Errorf("platform %q: at least one PPE is required", p.Name)
	case p.LocalStore <= 0 && p.NumSPE > 0:
		return fmt.Errorf("platform %q: non-positive local store", p.Name)
	case p.CodeSize < 0 || (p.NumSPE > 0 && p.CodeSize >= p.LocalStore):
		return fmt.Errorf("platform %q: code size %d leaves no buffer space in %d-byte local store",
			p.Name, p.CodeSize, p.LocalStore)
	case p.BW <= 0:
		return fmt.Errorf("platform %q: non-positive interface bandwidth", p.Name)
	case p.MaxDMAIn <= 0 || p.MaxDMAFromPPE <= 0:
		return fmt.Errorf("platform %q: non-positive DMA limits", p.Name)
	}
	return nil
}

// WithSPEs returns a copy of the platform with the SPE count replaced;
// used by the speed-up sweeps of Fig. 7.
func (p *Platform) WithSPEs(nS int) *Platform {
	q := *p
	q.NumSPE = nS
	q.Name = fmt.Sprintf("%s-%dspe", p.Name, nS)
	return &q
}

// String summarizes the platform.
func (p *Platform) String() string {
	return fmt.Sprintf("%s: %d PPE + %d SPE, LS=%d kB (code %d kB), bw=%.3g GB/s",
		p.Name, p.NumPPE, p.NumSPE, p.LocalStore/1024, p.CodeSize/1024, p.BW/1e9)
}

// MarshalIndent returns the platform as indented JSON.
func (p *Platform) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}
