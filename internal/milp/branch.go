// Pseudocost branching with reliability initialization, replacing the
// most-fractional rule. Each integer variable carries per-direction
// average objective gains per unit of fractionality, learned from the
// child LP solves the search performs anyway. Until a variable's
// pseudocosts are reliable (seen at least reliabilityK times per
// direction) the worker strong-branches it: both child LPs are solved
// on a separate lp.Solver context sharing the worker's problem — the
// main solver's pointer-identity warm hot path stays undisturbed — with
// a pivot cap, warm-started from the node basis. Strong branching that
// proves a child infeasible prunes that child outright.
package milp

import (
	"math"
	"sort"
	"sync"

	"cellstream/internal/lp"
	"cellstream/internal/num"
)

const (
	// defReliabilityK is how many observations per direction make a
	// variable's pseudocosts trusted. Kept at one probe per direction
	// because the table also learns from every real child solve; on
	// the 12-task instance K=4 doubled strong-branch solves for no
	// node reduction.
	defReliabilityK = 1
	// sbPerNode caps strong-branch candidates examined at one node.
	sbPerNode = 2
	// sbIterCap bounds pivots per strong-branch child solve.
	sbIterCap = 40
	// sbMaxTotal caps strong-branch LP solves per search; after the
	// budget is spent the table's estimates stand on their own.
	sbMaxTotal = 1000
	// sbDepth restricts strong branching to nodes at most this deep.
	// Shallow decisions shape the whole tree and deserve probes; deep
	// nodes ride on the pseudocosts those probes initialized.
	sbDepth = 8
	// pcEps floors pseudocost estimates in the product score so a
	// zero-gain direction cannot erase the other direction's signal.
	pcEps = 1e-6
)

// pcEntry is one variable's learned branching statistics.
type pcEntry struct {
	downSum, upSum float64 // objective gain per unit fractionality
	downCnt, upCnt int
}

// pcTable is the pseudocost table shared by all workers.
type pcTable struct {
	mu sync.Mutex
	e  []pcEntry
	// global running averages, the estimate for unseen variables
	gDownSum, gUpSum float64
	gDownCnt, gUpCnt int
	sbSolves         int // strong-branch budget spent
}

func newPCTable(n int) *pcTable { return &pcTable{e: make([]pcEntry, n)} }

// update records an observed per-unit gain for branching v in the
// given direction (down = toward floor).
func (t *pcTable) update(v int, down bool, gain float64) {
	if gain < 0 {
		gain = 0
	}
	t.mu.Lock()
	if down {
		t.e[v].downSum += gain
		t.e[v].downCnt++
		t.gDownSum += gain
		t.gDownCnt++
	} else {
		t.e[v].upSum += gain
		t.e[v].upCnt++
		t.gUpSum += gain
		t.gUpCnt++
	}
	t.mu.Unlock()
}

// estimates returns the per-unit gain estimates for v, falling back to
// the global averages (then 1) for unseen directions, plus how many
// times the scarcer direction has been observed.
func (t *pcTable) estimates(v int) (down, up float64, minCnt int) {
	t.mu.Lock()
	e := t.e[v]
	down, up = 1.0, 1.0
	if e.downCnt > 0 {
		down = e.downSum / float64(e.downCnt)
	} else if t.gDownCnt > 0 {
		down = t.gDownSum / float64(t.gDownCnt)
	}
	if e.upCnt > 0 {
		up = e.upSum / float64(e.upCnt)
	} else if t.gUpCnt > 0 {
		up = t.gUpSum / float64(t.gUpCnt)
	}
	minCnt = e.downCnt
	if e.upCnt < minCnt {
		minCnt = e.upCnt
	}
	t.mu.Unlock()
	return down, up, minCnt
}

// takeSB reserves n strong-branch solves from the global budget,
// returning how many were granted.
func (t *pcTable) takeSB(n int) int {
	t.mu.Lock()
	if left := sbMaxTotal - t.sbSolves; left < n {
		n = left
	}
	if n < 0 {
		n = 0
	}
	t.sbSolves += n
	t.mu.Unlock()
	return n
}

// fractionalCands returns the integer variables fractional at x beyond
// tol, in variable order.
func fractionalCands(x []float64, ints []int, tol float64) []int {
	var out []int
	for _, v := range ints {
		f := x[v] - math.Floor(x[v])
		if math.Min(f, 1-f) > tol {
			out = append(out, v)
		}
	}
	return out
}

// sbChild solves one strong-branch child (v restricted to one side) on
// the worker's side solver and reports the child objective.
// feasible=false means the child LP is infeasible — a proof, usable
// for pruning. known=false means the solve told us nothing (pivot cap,
// numerical trouble). The returned basis, when non-nil, is the probe's
// final basis: passing it as the next probe's warm start keeps the
// side solver's pointer-identity hot path alive, so a node's whole
// probe sequence shares one factorization instead of reinverting per
// probe (every probe is a small bound perturbation of the same LP).
func (w *worker) sbChild(v int, lo, up float64, basis *lp.Basis, opt Options) (obj float64, feasible, known bool, next *lp.Basis) {
	oldLo, oldUp := w.prob.Bounds(v)
	w.prob.SetBounds(v, lo, up)
	sol, err := w.sb.Solve(lp.Options{
		Factorization: opt.Factorization, Pricing: opt.Pricing,
		DualPricing: lp.DualPricingMaxViolation,
		WarmStart:   basis, MaxIter: sbIterCap,
	})
	w.prob.SetBounds(v, oldLo, oldUp)
	if err != nil {
		return 0, true, false, nil
	}
	w.s.mu.Lock()
	w.s.stats.add(sol.Stats)
	w.s.stats.noteStrongBranch()
	w.s.mu.Unlock()
	switch sol.Status {
	case lp.Optimal:
		return sol.Objective, true, true, sol.Basis
	case lp.Infeasible:
		return 0, false, true, sol.Basis
	default:
		return 0, true, false, nil
	}
}

// chooseBranch picks the branching variable for a node whose
// relaxation solved to sol with fractional candidates cands (nonempty).
// It returns the variable and whether either child is already proven
// infeasible by strong branching (such children are not pushed; both
// proven infeasible prunes the node).
func (w *worker) chooseBranch(nd *node, sol *lp.Solution, cands []int, opt Options) (v int, downInf, upInf bool) {
	s := w.s
	if len(cands) == 1 {
		return cands[0], false, false
	}
	if opt.BranchMostFractional || opt.ColdStart {
		return mostFractional(sol.X, s.p.Integer, s.intTol), false, false
	}

	relK := opt.ReliabilityK
	if relK == 0 {
		relK = defReliabilityK
	}

	// Reliability pass: strong-branch the most fractional not-yet-
	// reliable candidates (deterministic order: fractionality desc,
	// variable index asc).
	type sbInfo struct{ downInf, upInf bool }
	proven := map[int]sbInfo{}
	if relK > 0 && sol.Basis != nil && len(nd.changes) <= sbDepth {
		// w.prob still holds the exact bounds sol.Basis was solved
		// under (node bounds plus any lp.TightenBounds implications —
		// the worker runs branching before the rounding heuristic,
		// which would fix every integer). Probing on them is valid:
		// tightening removes no feasible point, so a child infeasible
		// here is infeasible for the node's child too.
		order := append([]int(nil), cands...)
		dist := func(v int) float64 {
			f := sol.X[v] - math.Floor(sol.X[v])
			return math.Min(f, 1-f)
		}
		sort.Slice(order, func(i, j int) bool {
			di, dj := dist(order[i]), dist(order[j])
			//lint:allow floatcmp exact sort tie-break; ties fall through to the variable index
			if di != dj {
				return di > dj
			}
			return order[i] < order[j]
		})
		tried := 0
		probeBasis := sol.Basis // chained: each probe warms from the last
		for _, c := range order {
			if tried >= sbPerNode {
				break
			}
			if _, _, cnt := s.pc.estimates(c); cnt >= relK {
				continue
			}
			if s.pc.takeSB(2) < 2 {
				break
			}
			tried++
			val := sol.X[c]
			f := val - math.Floor(val)
			lo, up := w.prob.Bounds(c)
			var info sbInfo
			if obj, feas, known, next := w.sbChild(c, lo, math.Floor(val), probeBasis, opt); known {
				if next != nil {
					probeBasis = next
				}
				if !feas {
					info.downInf = true
				} else if f > num.DenomFloor {
					s.pc.update(c, true, (obj-sol.Objective)/f)
				}
			}
			if obj, feas, known, next := w.sbChild(c, math.Ceil(val), up, probeBasis, opt); known {
				if next != nil {
					probeBasis = next
				}
				if !feas {
					info.upInf = true
				} else if 1-f > num.DenomFloor {
					s.pc.update(c, false, (obj-sol.Objective)/(1-f))
				}
			}
			if info.downInf || info.upInf {
				proven[c] = info
			}
		}
	}

	// Product-rule pseudocost scoring; ties break to the lowest
	// variable index (cands is already in variable order).
	best, bestScore := -1, math.Inf(-1)
	for _, c := range cands {
		// A child proven infeasible is the strongest outcome there
		// is: branching on c instantly halves the subtree.
		if info, ok := proven[c]; ok && (info.downInf || info.upInf) {
			best = c
			break
		}
		f := sol.X[c] - math.Floor(sol.X[c])
		dEst, uEst, _ := s.pc.estimates(c)
		score := math.Max(dEst*f, pcEps) * math.Max(uEst*(1-f), pcEps)
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	v = best
	s.mu.Lock()
	s.stats.notePseudocostBranch()
	s.mu.Unlock()
	info := proven[v]
	return v, info.downInf, info.upInf
}
