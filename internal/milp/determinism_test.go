package milp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cellstream/internal/lp"
)

// randomMILP builds a seeded random bounded mixed 0/1-ish program:
// boxed integer and continuous variables, mixed-sense rows. Bounded by
// construction, but not necessarily (integer-)feasible — agreement on
// Infeasible is part of the contract.
func randomMILP(rng *rand.Rand) *Problem {
	n := 3 + rng.Intn(6)
	p := lp.New(n)
	var ints []int
	for j := 0; j < n; j++ {
		p.SetObj(j, math.Round(rng.NormFloat64()*5))
		lo := -float64(rng.Intn(3))
		p.SetBounds(j, lo, lo+float64(1+rng.Intn(5)))
		if rng.Intn(2) == 0 {
			ints = append(ints, j)
		}
	}
	if ints == nil {
		ints = []int{0}
	}
	m := 2 + rng.Intn(5)
	for i := 0; i < m; i++ {
		var coefs []lp.Coef
		for j := 0; j < n; j++ {
			if rng.Intn(3) > 0 {
				coefs = append(coefs, lp.Coef{Var: j, Value: math.Round(rng.NormFloat64() * 3)})
			}
		}
		if len(coefs) == 0 {
			coefs = []lp.Coef{{Var: rng.Intn(n), Value: 1}}
		}
		sense := []lp.Sense{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
		// Half-integer right-hand sides make the relaxation optimum
		// land on fractional vertices, so the search actually branches.
		p.AddRow(coefs, sense, math.Round(rng.NormFloat64()*14)/2)
	}
	return &Problem{LP: p, Integer: ints}
}

// TestDeterminismWarmColdSerialParallel requires that serial and
// parallel branch-and-bound, warm-started and cold, all agree on the
// status and (to 1e-6) on the optimal objective across 50 seeded
// random instances. Node counts and solution vectors may differ — the
// search order is timing-dependent in parallel mode and degenerate
// optima are not unique — but the optimum itself must be invariant.
func TestDeterminismWarmColdSerialParallel(t *testing.T) {
	const instances = 50
	rng := rand.New(rand.NewSource(99))
	variants := []struct {
		name string
		opt  Options
	}{
		{"serial-warm", Options{Workers: 1}},
		{"serial-cold", Options{Workers: 1, ColdStart: true}},
		{"parallel-warm", Options{Workers: 4}},
		{"parallel-cold", Options{Workers: 4, ColdStart: true}},
	}
	statuses := map[Status]int{}
	for inst := 0; inst < instances; inst++ {
		p := randomMILP(rng)
		var refStatus Status
		var refObj float64
		for vi, v := range variants {
			res, err := Solve(p, v.opt)
			if err != nil {
				t.Fatalf("instance %d %s: %v", inst, v.name, err)
			}
			if res.Status != Optimal && res.Status != Infeasible {
				t.Fatalf("instance %d %s: unexpected status %v (limits should not bind)",
					inst, v.name, res.Status)
			}
			if vi == 0 {
				refStatus, refObj = res.Status, res.Objective
				statuses[res.Status]++
				continue
			}
			if res.Status != refStatus {
				t.Fatalf("instance %d: %s status %v, %s status %v",
					inst, variants[0].name, refStatus, v.name, res.Status)
			}
			if res.Status == Optimal {
				scale := 1 + math.Abs(refObj)
				if diff := math.Abs(res.Objective - refObj); diff > 1e-6*scale {
					t.Fatalf("instance %d: %s objective %.12g, %s objective %.12g (diff %g)",
						inst, variants[0].name, refObj, v.name, res.Objective, diff)
				}
			}
		}
	}
	if statuses[Optimal] == 0 || statuses[Infeasible] == 0 {
		t.Errorf("instance pool lacks coverage: %v", statuses)
	}
	t.Logf("statuses over %d instances: %v", instances, statuses)
}

// TestWarmStatsReported sanity-checks that warm-started search actually
// reuses bases (the mechanism the BenchmarkMILPWarmVsCold speedup
// rests on).
func TestWarmStatsReported(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	warm := 0
	for inst := 0; inst < 20; inst++ {
		p := randomMILP(rng)
		res, err := Solve(p, Options{Workers: 1, DisableRounding: true})
		if err != nil {
			t.Fatal(err)
		}
		warm += res.Stats.WarmSolves
	}
	if warm == 0 {
		t.Fatal("no node re-solve ever accepted a warm basis")
	}
	t.Logf("warm node re-solves across instances: %d", warm)
}

// TestCutSearchByteForByteDeterminism runs the cut-enabled serial
// search (root cutting-plane loop forced on, node-level separation
// enabled) twice per instance and requires the entire Result —
// solution vector, bound, node count, every counter — to match
// byte-for-byte. Cut separation iterates the pool in insertion order
// and pseudocost ties break on variable index, so two runs of the same
// instance must replay the identical search; any hidden map-order or
// timing dependence in the cut/branching machinery shows up here.
func TestCutSearchByteForByteDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	opt := Options{Workers: 1, CutRounds: 4, NodeCutRounds: 1}
	cutsSeen, sbSeen := 0, 0
	for inst := 0; inst < 30; inst++ {
		p := randomMILP(rng)
		a, err := Solve(p, opt)
		if err != nil {
			t.Fatalf("instance %d: %v", inst, err)
		}
		b, err := Solve(p, opt)
		if err != nil {
			t.Fatalf("instance %d re-run: %v", inst, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("instance %d: cut-enabled serial search is not reproducible:\n  %+v\n  %+v", inst, a, b)
		}
		cutsSeen += a.Stats.CutsSeparated
		sbSeen += a.Stats.StrongBranchSolves
	}
	if cutsSeen == 0 {
		t.Error("instance pool never separated a cut — the test exercises nothing")
	}
	if sbSeen == 0 {
		t.Error("instance pool never strong-branched — the test exercises nothing")
	}
	t.Logf("cuts separated: %d, strong-branch solves: %d", cutsSeen, sbSeen)
}
