package milp

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"cellstream/internal/lp"
)

// chainStep is one observation of the shared-solver re-solve chain.
type chainStep struct {
	status lp.Status
	obj    float64
	warm   bool
}

// runSolverChain hammers one lp.Solver with a fixed, seeded sequence of
// bound-change re-solves (the branch-and-bound access pattern) and
// records each outcome.
func runSolverChain(p *lp.Problem, seed int64, steps int) []chainStep {
	rng := rand.New(rand.NewSource(seed))
	prob := p.Clone()
	sv := lp.NewSolver(prob)
	n := prob.NumVars()
	origLo := make([]float64, n)
	origUp := make([]float64, n)
	for j := 0; j < n; j++ {
		origLo[j], origUp[j] = prob.Bounds(j)
	}
	var basis *lp.Basis
	out := make([]chainStep, 0, steps)
	for step := 0; step < steps; step++ {
		j := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			prob.SetBounds(j, origLo[j], origUp[j])
		case 1:
			lo := origLo[j]
			prob.SetBounds(j, lo, math.Max(lo, math.Floor(origUp[j]/2)))
		default:
			up := origUp[j]
			prob.SetBounds(j, math.Min(up, math.Ceil(origLo[j]+1)), up)
		}
		sol, err := sv.Solve(lp.Options{WarmStart: basis})
		if err != nil {
			panic(err)
		}
		st := chainStep{status: sol.Status, obj: sol.Objective,
			warm: sol.Stats.Warm && !sol.Stats.WarmFellBack}
		out = append(out, st)
		if sol.Status == lp.Optimal {
			basis = sol.Basis
		} else {
			basis = nil
		}
	}
	return out
}

// TestSharedSolverChainUnderParallelSearch runs (under -race in CI) a
// shared lp.Solver bound-change re-solve chain interleaved with
// parallel branch-and-bound workers aggregating their stats under the
// search mutex. The chain's per-step results must be byte-identical to
// the same chain run with nothing else on the machine, the parallel
// searches must agree with the serial optimum, and the serial run's
// aggregated counters must be exactly reproducible — any
// cross-contamination between worker-local solver contexts or a racy
// stats.add shows up as a diff or a race report.
func TestSharedSolverChainUnderParallelSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	var prob *Problem
	var serial *Result
	for {
		prob = randomMILP(rng)
		var err error
		serial, err = Solve(prob, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if serial.Status == Optimal {
			break
		}
	}

	// Serial counters must be exactly reproducible: same node order,
	// same warm chain, same pivot counts.
	serial2, err := Solve(prob, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Stats, serial2.Stats) || serial.Nodes != serial2.Nodes {
		t.Fatalf("serial runs disagree on counters:\n  %+v (%d nodes)\n  %+v (%d nodes)",
			serial.Stats, serial.Nodes, serial2.Stats, serial2.Nodes)
	}

	const chainSteps = 60
	baseline := runSolverChain(prob.LP, 7, chainSteps)

	var wg sync.WaitGroup
	parallel := make([]*Result, 3)
	for i := range parallel {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Solve(prob, Options{Workers: 4})
			if err != nil {
				t.Errorf("parallel solve %d: %v", i, err)
				return
			}
			parallel[i] = res
		}(i)
	}
	// Interleave: replay the same chain while the workers hammer their
	// own solvers and the shared stats aggregation.
	interleaved := runSolverChain(prob.LP, 7, chainSteps)
	wg.Wait()

	if !reflect.DeepEqual(baseline, interleaved) {
		t.Fatal("shared-solver chain results changed while parallel searches ran")
	}
	warmSeen := 0
	for _, st := range baseline {
		if st.warm {
			warmSeen++
		}
	}
	if warmSeen == 0 {
		t.Fatal("chain never exercised a warm re-solve")
	}
	for i, res := range parallel {
		if res == nil {
			continue // already reported
		}
		if res.Status != Optimal {
			t.Fatalf("parallel solve %d: status %v", i, res.Status)
		}
		if d := math.Abs(res.Objective - serial.Objective); d > 1e-6*(1+math.Abs(serial.Objective)) {
			t.Fatalf("parallel solve %d: objective %g, serial %g", i, res.Objective, serial.Objective)
		}
		// Every warm attempt is a node re-solve, a cut-loop re-solve,
		// or a strong-branch probe.
		warmCap := res.Nodes + res.Stats.CutResolves + res.Stats.StrongBranchSolves
		if res.Stats.LPIterations <= 0 || res.Stats.WarmSolves+res.Stats.WarmFallbacks > warmCap {
			t.Fatalf("parallel solve %d: implausible counters %+v over %d nodes", i, res.Stats, res.Nodes)
		}
	}
}
