package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestParallelMatchesSerial proves that the worker-pool search finds the
// same optimum as the serial search on a batch of random knapsacks.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := 6 + rng.Intn(8)
		values := make([]float64, n)
		weights := make([]float64, n)
		for j := range values {
			values[j] = float64(1 + rng.Intn(50))
			weights[j] = float64(1 + rng.Intn(30))
		}
		p := knapsack(values, weights, float64(20+rng.Intn(100)))
		serial, err := Solve(p, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			par, err := Solve(p, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if par.Status != serial.Status {
				t.Fatalf("trial %d workers=%d: status %v, serial %v",
					trial, workers, par.Status, serial.Status)
			}
			if serial.Status == Optimal && math.Abs(par.Objective-serial.Objective) > 1e-6 {
				t.Fatalf("trial %d workers=%d: objective %v, serial %v",
					trial, workers, par.Objective, serial.Objective)
			}
		}
	}
}

// TestSolveCtxCancel verifies that cancellation stops the search quickly
// and that a pre-cancelled context still returns a valid (if unproven)
// result instead of hanging.
func TestSolveCtxCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 26
	values := make([]float64, n)
	weights := make([]float64, n)
	for j := range values {
		values[j] = float64(1 + rng.Intn(1000))
		weights[j] = float64(1 + rng.Intn(1000))
	}
	p := knapsack(values, weights, 6000)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already done before the solve starts
	start := time.Now()
	res, err := SolveCtx(ctx, p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled solve took %v", elapsed)
	}
	if res.Status == Optimal && res.Gap > 1e-9 {
		t.Errorf("cancelled solve claimed optimality with gap %v", res.Gap)
	}

	// A short deadline must also interrupt an in-flight search.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	start = time.Now()
	if _, err := SolveCtx(ctx2, p, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline solve took %v", elapsed)
	}
}

// TestParallelNodeLimit pins the reservation semantics: the number of LP
// relaxations never exceeds MaxNodes, no matter how many workers race.
func TestParallelNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 18
	values := make([]float64, n)
	weights := make([]float64, n)
	for j := range values {
		values[j] = float64(1 + rng.Intn(1000))
		weights[j] = float64(1 + rng.Intn(1000))
	}
	p := knapsack(values, weights, 3000)
	for _, workers := range []int{2, 8} {
		res, err := Solve(p, Options{MaxNodes: 5, Workers: workers, DisableRounding: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Nodes > 5 {
			t.Errorf("workers=%d: nodes = %d, want ≤ 5", workers, res.Nodes)
		}
	}
}

// TestSolveDoesNotMutateProblem replaces the old restore-bounds contract:
// the parallel solver works on clones, so the caller's LP must be
// untouched even while solves run concurrently.
func TestSolveDoesNotMutateProblem(t *testing.T) {
	p := knapsack([]float64{3, 5, 7, 9}, []float64{2, 3, 4, 5}, 9)
	type b struct{ lo, up float64 }
	before := make([]b, p.LP.NumVars())
	for j := range before {
		before[j].lo, before[j].up = p.LP.Bounds(j)
	}
	if _, err := Solve(p, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for j := range before {
		lo, up := p.LP.Bounds(j)
		if lo != before[j].lo || up != before[j].up {
			t.Errorf("bounds of var %d mutated: (%v,%v) -> (%v,%v)",
				j, before[j].lo, before[j].up, lo, up)
		}
	}
}
