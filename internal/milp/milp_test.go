package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"cellstream/internal/lp"
)

// knapsack builds max Σ v_i x_i s.t. Σ w_i x_i ≤ C, x binary
// as a minimization problem (objective negated).
func knapsack(values, weights []float64, capacity float64) *Problem {
	n := len(values)
	p := lp.New(n)
	var ints []int
	var coefs []lp.Coef
	for j := 0; j < n; j++ {
		p.SetObj(j, -values[j])
		p.SetBounds(j, 0, 1)
		coefs = append(coefs, lp.Coef{Var: j, Value: weights[j]})
		ints = append(ints, j)
	}
	p.AddRow(coefs, lp.LE, capacity)
	return &Problem{LP: p, Integer: ints}
}

func bruteKnapsack(values, weights []float64, capacity float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var v, w float64
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				v += values[j]
				w += weights[j]
			}
		}
		if w <= capacity && v > best {
			best = v
		}
	}
	return best
}

func TestKnapsackSmall(t *testing.T) {
	values := []float64{60, 100, 120}
	weights := []float64{10, 20, 30}
	p := knapsack(values, weights, 50)
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if got := -res.Objective; math.Abs(got-220) > 1e-6 {
		t.Errorf("value = %v, want 220", got)
	}
}

func TestKnapsackRandomVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(8)
		values := make([]float64, n)
		weights := make([]float64, n)
		for j := range values {
			values[j] = float64(1 + rng.Intn(50))
			weights[j] = float64(1 + rng.Intn(30))
		}
		cap := float64(10 + rng.Intn(80))
		p := knapsack(values, weights, cap)
		res, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKnapsack(values, weights, cap)
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		if got := -res.Objective; math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: value %v, want %v", trial, got, want)
		}
	}
}

func TestRelGapStopsEarly(t *testing.T) {
	// With a 50% gap the solver may stop at any solution within 50% of
	// the bound; verify the reported gap is within the request.
	rng := rand.New(rand.NewSource(11))
	n := 14
	values := make([]float64, n)
	weights := make([]float64, n)
	for j := range values {
		values[j] = float64(1 + rng.Intn(50))
		weights[j] = float64(1 + rng.Intn(30))
	}
	p := knapsack(values, weights, 70)
	res, err := Solve(p, Options{RelGap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal-within-gap", res.Status)
	}
	if res.Gap > 0.5+1e-9 {
		t.Errorf("gap = %v, want ≤ 0.5", res.Gap)
	}
	// And the solution must still be genuinely feasible/integral.
	for _, v := range p.Integer {
		if math.Abs(res.X[v]-math.Round(res.X[v])) > 1e-6 {
			t.Errorf("x[%d] = %v not integral", v, res.X[v])
		}
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := lp.New(2)
	p.SetBounds(0, 0, 1)
	p.SetBounds(1, 0, 1)
	// x + y = 1.5 has fractional solutions only.
	p.AddRow([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, lp.EQ, 1.5)
	res, err := Solve(&Problem{LP: p, Integer: []int{0, 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -x - 10 y, x continuous in [0, 3.7], y binary,
	// s.t. x + 5y ≤ 6 → y=1, x=1, obj -11.
	p := lp.New(2)
	p.SetObj(0, -1)
	p.SetObj(1, -10)
	p.SetBounds(0, 0, 3.7)
	p.SetBounds(1, 0, 1)
	p.AddRow([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 5}}, lp.LE, 6)
	res, err := Solve(&Problem{LP: p, Integer: []int{1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-(-11)) > 1e-6 {
		t.Errorf("objective = %v, want -11", res.Objective)
	}
}

func TestWarmStartIncumbent(t *testing.T) {
	values := []float64{60, 100, 120}
	weights := []float64{10, 20, 30}
	p := knapsack(values, weights, 50)
	// Warm start with the optimal selection {1,2}: x = (0,1,1).
	res, err := Solve(p, Options{Incumbent: []float64{0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(-res.Objective-220) > 1e-6 {
		t.Errorf("status=%v obj=%v, want optimal 220", res.Status, -res.Objective)
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 18
	values := make([]float64, n)
	weights := make([]float64, n)
	for j := range values {
		values[j] = float64(1 + rng.Intn(1000))
		weights[j] = float64(1 + rng.Intn(1000))
	}
	p := knapsack(values, weights, 3000)
	res, err := Solve(p, Options{MaxNodes: 3, DisableRounding: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes > 3 {
		t.Errorf("nodes = %d, want ≤ 3", res.Nodes)
	}
	// Status must be NoSolution or Feasible, never claim Optimal
	// unless the gap is really closed.
	if res.Status == Optimal && res.Gap > 1e-9 {
		t.Errorf("claimed optimal with gap %v", res.Gap)
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 24
	values := make([]float64, n)
	weights := make([]float64, n)
	for j := range values {
		values[j] = float64(1 + rng.Intn(1000))
		weights[j] = float64(1 + rng.Intn(1000))
	}
	p := knapsack(values, weights, 5000)
	start := time.Now()
	_, err := Solve(p, Options{TimeLimit: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("time limit not honored")
	}
}

func TestBoundsRestoredAfterSolve(t *testing.T) {
	p := knapsack([]float64{1, 2}, []float64{1, 1}, 1)
	lo0, up0 := p.LP.Bounds(0)
	if _, err := Solve(p, Options{}); err != nil {
		t.Fatal(err)
	}
	lo1, up1 := p.LP.Bounds(0)
	if lo0 != lo1 || up0 != up1 {
		t.Errorf("bounds changed by solve: (%v,%v) -> (%v,%v)", lo0, up0, lo1, up1)
	}
}

// TestNodeTighteningAgreesAndPrunes: node bound tightening must not
// change any answer (implied bounds cut no feasible point) while its
// counters show it is actually running; the DisableTightening ablation
// must agree too.
func TestNodeTighteningAgreesAndPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sawTighten := false
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(4)
		values := make([]float64, n)
		weights := make([]float64, n)
		for j := range values {
			values[j] = 1 + float64(rng.Intn(9))
			weights[j] = 1 + float64(rng.Intn(9))
		}
		cap := 2 + float64(rng.Intn(20))
		p := knapsack(values, weights, cap)
		tight, err := Solve(p, Options{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		off, err := Solve(p, Options{Workers: 1, DisableTightening: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tight.Status != off.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, tight.Status, off.Status)
		}
		if tight.Status == Optimal && math.Abs(tight.Objective-off.Objective) > 1e-6*(1+math.Abs(off.Objective)) {
			t.Fatalf("trial %d: objective %g vs %g", trial, tight.Objective, off.Objective)
		}
		if tight.Stats.NodeTightenedBounds > 0 || tight.Stats.NodeTightenPrunes > 0 {
			sawTighten = true
		}
		if off.Stats.NodeTightenedBounds != 0 || off.Stats.NodeTightenPrunes != 0 {
			t.Fatalf("trial %d: ablation still tightened: %+v", trial, off.Stats)
		}
	}
	if !sawTighten {
		t.Fatal("node tightening never fired across 30 knapsack searches")
	}
}
