// Cut-and-branch: Gomory mixed-integer and knapsack-cover cut
// separation wired into the branch-and-bound search.
//
// Cuts are separated at the root from the optimal LP basis (a cutting-
// plane loop batching each round's violated cuts into one lp.Model
// AddRow group per re-solve) and, on serial searches, at node LPs. A
// shared pool records every distinct cut with its age and activity;
// cuts that go slack at the root optimum are retired from the search
// problem at the loop's final refactorization boundary but stay in the
// pool, so a later node whose relaxation violates them again can
// re-adopt them. Every cut is globally valid — derived from the
// original rows and the root integrality/bound data only — so adopted
// rows may stay in a worker's model for the rest of the search and
// node bases transfer onto them with Basis.GrownBy.
package milp

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cellstream/internal/lp"
	"cellstream/internal/num"
)

const (
	// cutAutoCols is the column count above which cut separation is on
	// by default (Options.CutRounds > 0 forces it below). See the
	// Options.CutRounds comment for the measurements behind the gate.
	cutAutoCols = 2000
	// defCutRounds is the default number of root cutting-plane rounds.
	defCutRounds = 8
	// rootGomoryMax/rootCoverMax cap each root round's batch per family.
	rootGomoryMax = 12
	rootCoverMax  = 12
	// nodeGomoryMax/nodeCoverMax cap node-level separation (serial only).
	nodeGomoryMax = 4
	nodeCoverMax  = 4
	// nodeCutDepth disables Gomory separation below this tree depth —
	// deep-node tableau cuts are dense and rarely pay for themselves.
	nodeCutDepth = 6
	// maxWorkerCuts caps the cut rows a worker's model accumulates.
	maxWorkerCuts = 150
	// maxPoolCuts caps the pool; offers beyond it are dropped.
	maxPoolCuts = 256
	// poolMissLimit retires a pooled cut after this many adoption scans
	// found it satisfied (it never pulled its weight).
	poolMissLimit = 8
	// cutTailOff stops the root loop after two rounds whose bound
	// improvement falls below this relative threshold.
	cutTailOff = num.LooseFeasTol
	// cutViolTol is the minimum relative violation for adopting a
	// pooled cut at a node.
	cutViolTol = num.IntegralityTol
)

// pooledCut is one distinct cut with its bookkeeping.
type pooledCut struct {
	id      int
	row     lp.CutRow
	gomory  bool
	inBase  bool // baked into the search base problem (root keeps)
	adopted bool // added to the serial worker's model
	misses  int  // adoption scans that found it satisfied
	hits    int  // times it was violated and adopted
	retired bool
}

// cutPool holds every distinct cut separated during a run, in
// insertion order. The index map is used for duplicate lookup only and
// is never iterated, keeping the pool's behavior seed-stable. The pool
// is touched by the root loop (before workers start) and by node-level
// separation, which runs only on serial searches — so no mutex.
type cutPool struct {
	cuts  []*pooledCut
	index map[string]int
}

func newCutPool() *cutPool {
	return &cutPool{index: make(map[string]int)}
}

// cutKey canonicalizes a cut for duplicate detection: coefficients
// sorted by variable, values and RHS rounded to 9 significant digits.
func cutKey(c lp.CutRow) string {
	coefs := append([]lp.Coef(nil), c.Coefs...)
	sort.Slice(coefs, func(i, j int) bool { return coefs[i].Var < coefs[j].Var })
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%.9g", c.Sense, c.RHS)
	for _, cf := range coefs {
		fmt.Fprintf(&b, "|%d:%.9g", cf.Var, cf.Value)
	}
	return b.String()
}

// offer adds a cut to the pool unless it is a duplicate or the pool is
// full. It returns the pool entry and whether it was newly added.
func (cp *cutPool) offer(c lp.CutRow, gomory bool) (*pooledCut, bool) {
	key := cutKey(c)
	if i, ok := cp.index[key]; ok {
		return cp.cuts[i], false
	}
	if len(cp.cuts) >= maxPoolCuts {
		return nil, false
	}
	e := &pooledCut{id: len(cp.cuts), row: c, gomory: gomory}
	cp.index[key] = len(cp.cuts)
	cp.cuts = append(cp.cuts, e)
	return e, true
}

// adoptScan walks the pool in id order and returns up to max entries
// that are live, not yet in the model, and violated at x, marking them
// adopted. When countMiss is set (once per node), satisfied entries
// age; entries that miss poolMissLimit times retire. It returns the
// batch and the number of entries retired by this scan.
func (cp *cutPool) adoptScan(x []float64, max int, countMiss bool) (batch []*pooledCut, retired int) {
	for _, e := range cp.cuts {
		if e.retired || e.adopted || e.inBase {
			continue
		}
		scale := 1 + math.Abs(e.row.RHS)
		if len(batch) < max && e.row.Violation(x) > cutViolTol*scale {
			e.adopted = true
			e.hits++
			batch = append(batch, e)
		} else if countMiss {
			e.misses++
			if e.misses > poolMissLimit {
				e.retired = true
				retired++
			}
		}
	}
	return batch, retired
}

// integralAt reports whether every integer variable is integral at x.
func integralAt(x []float64, ints []int, tol float64) bool {
	for _, v := range ints {
		if math.Abs(x[v]-math.Round(x[v])) > tol {
			return false
		}
	}
	return true
}

// rebuildKept returns a copy of p containing only the rows marked in
// keep (bounds and objective unchanged).
func rebuildKept(p *lp.Problem, keep []bool) *lp.Problem {
	n := p.NumVars()
	out := lp.New(n)
	for j := 0; j < n; j++ {
		out.SetObj(j, p.ObjCoef(j))
		lo, up := p.Bounds(j)
		out.SetBounds(j, lo, up)
	}
	for i := 0; i < p.NumRows(); i++ {
		if keep[i] {
			coefs, sense, rhs := p.Row(i)
			out.AddRow(coefs, sense, rhs)
		}
	}
	return out
}

// rowSlack returns the slack of row i of p at x (≥ 0 when satisfied;
// 0 for EQ rows, which are never trimmed).
func rowSlack(p *lp.Problem, i int, x []float64) float64 {
	coefs, sense, rhs := p.Row(i)
	act := 0.0
	for _, c := range coefs {
		act += c.Value * x[c.Var]
	}
	switch sense {
	case lp.GE:
		return act - rhs
	case lp.LE:
		return rhs - act
	default:
		return 0
	}
}

// rootCuts runs the root cutting-plane loop and returns the root node
// for the search. It may replace s.base with a cut-augmented (and
// re-trimmed) problem, seed the root node with the final bound and
// basis, and populate the cut pool. On any trouble it falls back to
// the plain root, which the search then solves itself.
func (s *search) rootCuts(opt Options) *node {
	root := &node{bound: math.Inf(-1), rows: s.baseRows, pcV: -1}
	rounds := opt.CutRounds
	if rounds == 0 {
		rounds = defCutRounds
	}
	if rounds < 0 {
		return root
	}

	work := s.p.LP.Clone()
	model := lp.ModelFor(work)
	o := lp.Options{Factorization: opt.Factorization, Pricing: opt.Pricing, DualPricing: lp.DualPricingMaxViolation}

	// First solve: cold, through presolve. Presolve kills the live
	// factorization, so the loop's warm re-solves run un-presolved —
	// that is what leaves a live basis inverse for the Gomory BTRAN.
	first := o
	first.Presolve = true
	sol, err := model.Solve(first)
	if err != nil || sol.Status != lp.Optimal {
		return root // let the search rediscover the root status
	}
	s.stats.add(sol.Stats)

	// rowEntry[i-baseRows] is the pool entry behind appended row i.
	var rowEntry []*pooledCut
	var final *lp.Solution // optimum consistent with ALL current rows
	prev := math.Inf(-1)
	stall := 0
	for r := 0; ; r++ {
		sol, err = model.Solve(o)
		if err != nil || sol.Status != lp.Optimal {
			final = nil
			break
		}
		s.stats.add(sol.Stats)
		s.stats.noteCutResolve()
		final = sol
		imp := sol.Objective - prev
		prev = sol.Objective
		if r >= rounds {
			break
		}
		if r > 0 {
			if imp <= cutTailOff*(1+math.Abs(sol.Objective)) {
				stall++
				if stall >= 2 {
					break
				}
			} else {
				stall = 0
			}
		}
		if integralAt(sol.X, s.p.Integer, s.intTol) {
			break
		}

		gspec := s.gomSpec
		gspec.MaxCuts = rootGomoryMax
		gom := model.GomoryCuts(gspec)
		cov := lp.CoverCuts(work, lp.CoverSpec{
			IsBinary: s.isBin, MaxRows: s.baseRows, MaxCuts: rootCoverMax,
		}, sol.X)

		var batch []*pooledCut
		for _, c := range gom {
			if e, fresh := s.pool.offer(c, true); fresh {
				s.stats.noteCutSeparated(true)
				batch = append(batch, e)
			}
		}
		for _, c := range cov {
			if e, fresh := s.pool.offer(c, false); fresh {
				s.stats.noteCutSeparated(false)
				batch = append(batch, e)
			}
		}
		if len(batch) == 0 {
			break
		}
		for _, e := range batch {
			model.AddRow(e.row.Coefs, e.row.Sense, e.row.RHS)
			e.inBase = true
			rowEntry = append(rowEntry, e)
		}
		s.stats.noteCutRound()
		final = nil // rows changed; re-solve before trusting
	}

	if len(rowEntry) == 0 {
		if final != nil {
			root.bound = final.Objective
			root.basis = final.Basis
		}
		return root
	}
	if final == nil {
		// A re-solve failed after rows were added. The added rows are
		// valid, so keep them baked, but there is no basis or bound.
		s.base = work
		s.baseRows = work.NumRows()
		root.rows = s.baseRows
		s.stats.noteCutsActive(len(rowEntry))
		return root
	}

	// Retirement at the loop's final refactorization boundary: drop
	// appended rows whose slack is basic and loose at the optimum —
	// they are inactive there, and deleting a (row, basic slack) pair
	// keeps the remaining basis square. Dropped cuts return to the
	// pool for possible re-adoption at nodes.
	base := s.p.LP.NumRows()
	keep := make([]bool, work.NumRows())
	dropped := 0
	for i := range keep {
		keep[i] = true
		if i < base {
			continue
		}
		_, _, rhs := work.Row(i)
		if final.Basis.RowSlackBasic(i) && rowSlack(work, i, final.X) > num.LooseFeasTol*(1+math.Abs(rhs)) {
			keep[i] = false
			dropped++
		}
	}
	if dropped > 0 {
		if nb := final.Basis.DropRows(keep); nb != nil {
			trimmed := rebuildKept(work, keep)
			for i, e := range rowEntry {
				if !keep[base+i] {
					e.inBase = false // back to the pool, re-adoptable
				}
			}
			s.stats.noteCutsRetired(dropped)
			s.base = trimmed
			s.baseRows = trimmed.NumRows()
			root.rows = s.baseRows
			root.bound = final.Objective // still valid: cuts cut no integer point
			root.basis = nb
			s.stats.noteCutsActive(s.baseRows - base)
			return root
		}
	}
	s.base = work
	s.baseRows = work.NumRows()
	root.rows = s.baseRows
	root.bound = final.Objective
	root.basis = final.Basis
	s.stats.noteCutsActive(len(rowEntry))
	return root
}

// nodeCuts runs up to Options.NodeCutRounds separate→adopt→re-solve rounds at
// a node of a serial search. It returns the latest solution (whose
// status the caller re-dispatches on) or an error from the LP layer.
// Fresh cuts are offered to the pool first, then the whole pool is
// scanned so cuts separated elsewhere in the tree get re-adopted; the
// adopted batch lands in this worker's model as one AddRow group with
// the node basis grown across it.
func (w *worker) nodeCuts(nd *node, sol *lp.Solution) (*lp.Solution, error) {
	s := w.s
	for round := 0; round < w.opt.NodeCutRounds; round++ {
		if w.rows-s.baseRows >= maxWorkerCuts {
			return sol, nil
		}
		if integralAt(sol.X, s.p.Integer, s.intTol) {
			return sol, nil
		}

		// Fresh separation: covers always (cheap, original rows only);
		// Gomory only near the top of the tree.
		var gom, cov []lp.CutRow
		if len(nd.changes) <= nodeCutDepth {
			gspec := s.gomSpec
			gspec.MaxCuts = nodeGomoryMax
			gom = w.solver.GomoryCuts(gspec)
		}
		cov = lp.CoverCuts(w.prob, lp.CoverSpec{
			IsBinary: s.isBin, MaxRows: s.p.LP.NumRows(), MaxCuts: nodeCoverMax,
		}, sol.X)

		gomN, covN := 0, 0
		for _, c := range gom {
			if _, fresh := s.pool.offer(c, true); fresh {
				gomN++
			}
		}
		for _, c := range cov {
			if _, fresh := s.pool.offer(c, false); fresh {
				covN++
			}
		}

		room := maxWorkerCuts - (w.rows - s.baseRows)
		batch, retired := s.pool.adoptScan(sol.X, room, round == 0)

		s.mu.Lock()
		s.stats.noteNodeCutRound(gomN, covN, retired, len(batch))
		s.mu.Unlock()

		if len(batch) == 0 {
			return sol, nil
		}
		for _, e := range batch {
			w.prob.AddRow(e.row.Coefs, e.row.Sense, e.row.RHS)
		}
		basis := sol.Basis.GrownBy(len(batch))
		w.rows += len(batch)

		nsol, err := w.solveNode(nd.changes, basis)
		if err != nil || nsol.Status != lp.Optimal {
			return nsol, err
		}
		sol = nsol
	}
	return sol, nil
}
