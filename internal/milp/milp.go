// Package milp solves mixed 0/1 integer linear programs by LP-based
// branch-and-bound on top of package lp. Together they replace the role
// of ILOG CPLEX in §6 of the paper, including its "stop within 5 % of
// the optimum" mode that the authors used to keep resolution times under
// a minute.
//
// The solver minimizes the LP objective subject to integrality of the
// declared variables. The search runs on a pool of goroutine workers
// sharing one best-first node heap (smallest parent bound first, so the
// global lower bound is always near the top) and one incumbent guarded
// by a mutex; each worker re-solves LP relaxations on its own clone of
// the problem, so bound tightening never races. Branching selects the
// most fractional integer variable. A rounding heuristic (fix integers
// to the nearest integral point, re-solve the LP for the continuous
// variables) finds incumbents early. Cancellation and deadlines arrive
// through a context.Context; SolveCtx returns the best incumbent and a
// proven global bound when interrupted.
package milp

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sync"
	"time"

	"cellstream/internal/lp"
)

// Status reports the outcome of a MILP solve.
type Status int

const (
	// Optimal means the incumbent is within the requested gap of the
	// best bound (with RelGap == 0 this is proven optimality).
	Optimal Status = iota
	// Feasible means an integral solution exists but the search stopped
	// (node or time limit, or cancellation) before proving the gap.
	Feasible
	// Infeasible means no integral assignment satisfies the constraints.
	Infeasible
	// NoSolution means limits were hit before any integral solution was
	// found.
	NoSolution
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case NoSolution:
		return "no-solution"
	default:
		return "unknown"
	}
}

// Err maps a terminal Status to the lp sentinel errors, so callers that
// must fail on an unusable outcome classify it with errors.Is instead
// of matching status strings: Infeasible → lp.ErrInfeasible, NoSolution
// (limits hit before any incumbent) → lp.ErrIterLimit, nil otherwise —
// Optimal and Feasible both carry a usable incumbent.
func (s Status) Err() error {
	switch s {
	case Infeasible:
		return lp.ErrInfeasible
	case NoSolution:
		return lp.ErrIterLimit
	default:
		return nil
	}
}

// Problem couples an LP with the list of integer-constrained variables.
type Problem struct {
	LP      *lp.Problem
	Integer []int // variable indices required to be integral
}

// Options tunes the search.
type Options struct {
	// RelGap is the relative optimality gap at which the search stops,
	// e.g. 0.05 reproduces the paper's CPLEX setting. 0 means prove
	// optimality (up to tolerance).
	RelGap float64
	// MaxNodes bounds the number of explored nodes (0 = 1e6).
	MaxNodes int
	// TimeLimit bounds wall-clock time (0 = none). It is implemented as
	// a context deadline; prefer passing a context to SolveCtx.
	TimeLimit time.Duration
	// IntTol is the integrality tolerance (0 = 1e-6).
	IntTol float64
	// Incumbent optionally warm-starts the search with a known feasible
	// point (checked; ignored if not feasible/integral).
	Incumbent []float64
	// DisableRounding turns off the rounding heuristic (for tests and
	// ablations).
	DisableRounding bool
	// Workers is the number of concurrent branch-and-bound workers.
	// 0 picks min(GOMAXPROCS, 8); 1 forces the serial search.
	Workers int
	// ColdStart disables basis reuse, presolve and node bound
	// tightening, cold-solving every node from scratch — the
	// pre-warm-start behavior, kept for the warm-vs-cold benchmarks
	// and ablations.
	ColdStart bool
	// DisableTightening turns off the constraint-driven bound
	// tightening pass warm node re-solves run after applying their
	// branching bound changes (lp.TightenBounds). Tightening never
	// changes an LP optimum — implied bounds cut no feasible point —
	// but it prunes provably empty subproblems without an LP solve and
	// hands the dual simplex tighter resting bounds; disable it for
	// ablations.
	DisableTightening bool
	// Factorization selects the LP basis-inverse representation for
	// every node re-solve (default lp.FactorLU; lp.FactorEta keeps the
	// PR 2 eta file for ablations).
	Factorization lp.Factorization
	// Pricing selects the LP phase-2 pricing rule for every node
	// re-solve (default lp.PricingDevex).
	Pricing lp.Pricing
}

// Stats aggregates LP-solver counters across every node re-solve of a
// branch-and-bound run.
type Stats struct {
	// LPIterations is the total simplex pivots over all node solves.
	LPIterations int
	// DualIterations counts pivots taken by the warm-start dual
	// simplex (a subset of LPIterations).
	DualIterations int
	// BoundFlips counts nonbasic columns flipped by the long-step dual
	// ratio test across node solves.
	BoundFlips int
	// Refactorizations counts basis reinversions; the RefactorXxx
	// counters split the total by cause (scheduled, numerical trouble,
	// warm-basis restore).
	Refactorizations int
	// RefactorPeriodic/RefactorUnstable/RefactorRestore split
	// Refactorizations by cause.
	RefactorPeriodic, RefactorUnstable, RefactorRestore int
	// FTUpdates counts Forrest–Tomlin updates folded into the LU
	// factors (0 when running on the eta file).
	FTUpdates int
	// MaxSpikeGrowth is the worst Forrest–Tomlin spike growth factor
	// observed across all node solves.
	MaxSpikeGrowth float64
	// WarmSolves counts node re-solves that accepted a parent basis.
	WarmSolves int
	// WarmFallbacks counts warm attempts that fell back to a cold
	// primal solve (stale/singular basis or a cycling dual phase).
	WarmFallbacks int
	// PresolvedCols/PresolvedRows total the columns and rows
	// eliminated by presolve across node solves.
	PresolvedCols, PresolvedRows int
	// PresolvePasses totals pipeline passes across presolved node
	// solves; the per-reduction counters below split presolve's work
	// by kind (singleton rows converted to bounds, column singletons
	// substituted, duplicate columns merged/dominated, bounds
	// tightened inside presolve).
	PresolvePasses        int
	PresolveSingletonRows int
	PresolveSingletonCols int
	PresolveDupCols       int
	PresolveTightened     int
	// NodeTightenedBounds counts bounds tightened by the cheap
	// lp.TightenBounds pass warm node re-solves run after branching
	// bound changes (outside lp presolve).
	NodeTightenedBounds int
	// NodeTightenPrunes counts nodes proven infeasible by that pass
	// alone — pruned without an LP solve.
	NodeTightenPrunes int
}

// Merge accumulates another aggregate o into st — the cross-solve
// aggregation the sched facade's sweeps use (add folds ONE lp solve's
// counters in, Merge folds a whole run's). Counters sum,
// MaxSpikeGrowth takes the maximum.
func (st *Stats) Merge(o Stats) {
	st.LPIterations += o.LPIterations
	st.DualIterations += o.DualIterations
	st.BoundFlips += o.BoundFlips
	st.Refactorizations += o.Refactorizations
	st.RefactorPeriodic += o.RefactorPeriodic
	st.RefactorUnstable += o.RefactorUnstable
	st.RefactorRestore += o.RefactorRestore
	st.FTUpdates += o.FTUpdates
	if o.MaxSpikeGrowth > st.MaxSpikeGrowth {
		st.MaxSpikeGrowth = o.MaxSpikeGrowth
	}
	st.WarmSolves += o.WarmSolves
	st.WarmFallbacks += o.WarmFallbacks
	st.PresolvedCols += o.PresolvedCols
	st.PresolvedRows += o.PresolvedRows
	st.PresolvePasses += o.PresolvePasses
	st.PresolveSingletonRows += o.PresolveSingletonRows
	st.PresolveSingletonCols += o.PresolveSingletonCols
	st.PresolveDupCols += o.PresolveDupCols
	st.PresolveTightened += o.PresolveTightened
	st.NodeTightenedBounds += o.NodeTightenedBounds
	st.NodeTightenPrunes += o.NodeTightenPrunes
}

func (st *Stats) add(s lp.Stats) {
	st.LPIterations += s.Iterations
	st.DualIterations += s.DualIterations
	st.BoundFlips += s.BoundFlips
	st.Refactorizations += s.Refactorizations
	st.RefactorPeriodic += s.RefactorPeriodic
	st.RefactorUnstable += s.RefactorUnstable
	st.RefactorRestore += s.RefactorRestore
	st.FTUpdates += s.FTUpdates
	if s.MaxSpikeGrowth > st.MaxSpikeGrowth {
		st.MaxSpikeGrowth = s.MaxSpikeGrowth
	}
	if s.Warm && !s.WarmFellBack {
		st.WarmSolves++
	}
	if s.WarmFellBack {
		st.WarmFallbacks++
	}
	st.PresolvedCols += s.PresolvedCols
	st.PresolvedRows += s.PresolvedRows
	st.PresolvePasses += s.PresolvePasses
	st.PresolveSingletonRows += s.PresolveSingletonRows
	st.PresolveSingletonCols += s.PresolveSingletonCols
	st.PresolveDupCols += s.PresolveDupCols
	st.PresolveTightened += s.PresolveTightened
}

// Result is the outcome of Solve.
type Result struct {
	Status    Status
	X         []float64
	Objective float64 // objective of X
	Bound     float64 // global lower bound on the optimum
	Nodes     int     // LP relaxations solved
	Gap       float64 // (Objective - Bound) / max(|Objective|, eps)
	Stats     Stats   // aggregated LP-solver counters
}

type boundChange struct {
	v      int
	lo, up float64
}

type node struct {
	bound   float64 // parent LP objective (lower bound for the subtree)
	changes []boundChange
	basis   *lp.Basis // parent's optimal basis for a warm dual re-solve
	id      int
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].id > h[j].id // prefer deeper/newer nodes on ties (DFS-ish)
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs branch-and-bound with a background context. Unlike older
// revisions it does not mutate p.LP: every worker operates on a clone.
func Solve(p *Problem, opt Options) (*Result, error) {
	return SolveCtx(context.Background(), p, opt)
}

// search is the state shared by the branch-and-bound workers.
type search struct {
	p      *Problem
	n      int
	intTol float64
	relGap float64

	rootLo, rootUp []float64

	mu       sync.Mutex
	cond     *sync.Cond
	heap     nodeHeap
	inflight int // nodes popped but not yet fully processed
	nodes    int // LP relaxations solved in the main loop
	nextID   int
	maxNodes int

	incObj    float64 // +Inf until an incumbent exists
	incX      []float64
	haveInc   bool
	prunedMin float64 // min bound among nodes discarded without branching
	stopped   bool
	err       error
	stats     Stats
}

// SolveCtx runs branch-and-bound until optimality (within RelGap), a
// limit, or ctx is done — whichever comes first. On early stop it
// returns the incumbent (Status Feasible/NoSolution) and the tightest
// proven bound.
func SolveCtx(ctx context.Context, p *Problem, opt Options) (*Result, error) {
	intTol := opt.IntTol
	if intTol == 0 {
		intTol = 1e-6
	}
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = 1_000_000
	}
	workers := opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	if workers < 1 {
		workers = 1
	}
	if opt.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.TimeLimit)
		defer cancel()
	}

	n := p.LP.NumVars()
	s := &search{
		p: p, n: n, intTol: intTol, relGap: opt.RelGap,
		rootLo:    make([]float64, n),
		rootUp:    make([]float64, n),
		maxNodes:  maxNodes,
		incObj:    math.Inf(1),
		prunedMin: math.Inf(1),
		nextID:    1,
	}
	s.cond = sync.NewCond(&s.mu)
	for j := 0; j < n; j++ {
		s.rootLo[j], s.rootUp[j] = p.LP.Bounds(j)
	}

	if opt.Incumbent != nil {
		if obj, ok := checkIncumbent(p, opt.Incumbent, intTol); ok {
			s.incX = append([]float64(nil), opt.Incumbent...)
			s.incObj = obj
			s.haveInc = true
		}
	}

	s.heap = nodeHeap{{bound: math.Inf(-1)}}
	heap.Init(&s.heap)

	// A watcher flips stopped when the context ends so that sleeping
	// workers wake up promptly. It is joined before finish() reads the
	// shared state so its write can never race the result assembly.
	watchDone := make(chan struct{})
	watcherExited := make(chan struct{})
	go func() {
		defer close(watcherExited)
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker(ctx, opt)
		}()
	}
	wg.Wait()
	close(watchDone)
	<-watcherExited

	if s.err != nil {
		return nil, s.err
	}
	return s.finish(), nil
}

// worker pops nodes, solves their LP relaxations on a private clone of
// the problem, and pushes children, until the heap drains or a limit or
// cancellation stops the search.
func (s *search) worker(ctx context.Context, opt Options) {
	prob := s.p.LP.Clone()
	solver := lp.NewSolver(prob)
	// solveWith re-solves the relaxation for a node's bound-delta on
	// the worker's persistent solver context. With a parent basis the
	// solve warm-starts through the dual simplex — and when the parent
	// was the previous solve on this worker (the common DFS-ish pop
	// order), the context still holds its factorization and skips the
	// reinversion too; a cheap bound-tightening pass first propagates
	// the branching change through the constraints, pruning provably
	// empty nodes without an LP solve (implied bounds cut no feasible
	// point, so the relaxation optimum — and the warm basis — survive).
	// Without a basis — the root, the rounding heuristic, cold-start
	// mode — it cold-solves, with the presolve pipeline eliminating
	// the columns the delta chain has fixed (and everything that
	// cascades from them).
	solveWith := func(changes []boundChange, basis *lp.Basis) (*lp.Solution, error) {
		for j := 0; j < s.n; j++ {
			prob.SetBounds(j, s.rootLo[j], s.rootUp[j])
		}
		for _, ch := range changes {
			prob.SetBounds(ch.v, ch.lo, ch.up)
		}
		o := lp.Options{Factorization: opt.Factorization, Pricing: opt.Pricing}
		if !opt.ColdStart {
			if basis != nil {
				o.WarmStart = basis
				if !opt.DisableTightening {
					nt, infeas := lp.TightenBounds(prob, 1)
					if nt > 0 || infeas {
						s.mu.Lock()
						s.stats.NodeTightenedBounds += nt
						if infeas {
							s.stats.NodeTightenPrunes++
						}
						s.mu.Unlock()
					}
					if infeas {
						return &lp.Solution{Status: lp.Infeasible}, nil
					}
				}
			} else {
				o.Presolve = true
			}
		}
		sol, err := solver.Solve(o)
		if err == nil {
			s.mu.Lock()
			s.stats.add(sol.Stats)
			s.mu.Unlock()
		}
		return sol, err
	}

	for {
		s.mu.Lock()
		for len(s.heap) == 0 && s.inflight > 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped || len(s.heap) == 0 {
			s.mu.Unlock()
			return
		}
		nd := heap.Pop(&s.heap).(*node)
		s.inflight++
		incObj := s.incObj
		s.mu.Unlock()

		if ctx.Err() != nil {
			// Push the node back so its bound stays accounted for.
			s.mu.Lock()
			heap.Push(&s.heap, nd)
			s.inflight--
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}

		if s.gapClosed(incObj, nd.bound) {
			s.retire(nd.bound)
			continue
		}

		// Reserve a node slot before solving so the LP-relaxation count
		// never exceeds MaxNodes even with many concurrent workers.
		s.mu.Lock()
		if s.nodes >= s.maxNodes {
			heap.Push(&s.heap, nd)
			s.inflight--
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		s.nodes++
		nodeSeq := s.nodes
		s.mu.Unlock()

		sol, err := solveWith(nd.changes, nd.basis)
		if err != nil {
			s.mu.Lock()
			s.err = err
			s.stopped = true
			s.inflight--
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}

		s.mu.Lock()
		incObj = s.incObj
		s.mu.Unlock()

		switch sol.Status {
		case lp.Infeasible:
			s.retire(math.Inf(1))
			continue
		case lp.Unbounded:
			// An unbounded relaxation at the root means the MILP is
			// unbounded or needs explicit bounds; report via bound.
			s.retire(math.Inf(-1))
			continue
		case lp.IterLimit:
			// Unusable relaxation: drop the node but keep its parent
			// bound in the frontier accounting.
			s.retire(nd.bound)
			continue
		}

		if !s.better(sol.Objective, incObj) && !math.IsInf(incObj, 1) {
			// Bound dominated by incumbent: prune (allowing gap).
			denom := math.Max(math.Abs(incObj), 1e-9)
			if (incObj-sol.Objective)/denom <= s.relGap+1e-12 {
				s.retire(sol.Objective)
				continue
			}
		}

		frac := mostFractional(sol.X, s.p.Integer, s.intTol)
		if frac < 0 {
			// Integral: candidate incumbent; subtree is fully explored.
			s.offerIncumbent(sol.X, sol.Objective)
			s.retire(sol.Objective)
			continue
		}

		// Rounding heuristic: fix every integer to its nearest value and
		// re-solve for the continuous variables.
		if !opt.DisableRounding && nodeSeq%16 == 1 {
			if x, obj, ok := roundAndRepair(s.p, sol.X, solveWith, nd.changes, s.intTol); ok {
				s.offerIncumbent(x, obj)
			}
		}

		v := frac
		val := sol.X[v]
		lo, up := s.rootLo[v], s.rootUp[v]
		for _, ch := range nd.changes {
			if ch.v == v {
				lo, up = ch.lo, ch.up
			}
		}
		down := append(append([]boundChange(nil), nd.changes...), boundChange{v, lo, math.Floor(val)})
		upN := append(append([]boundChange(nil), nd.changes...), boundChange{v, math.Ceil(val), up})
		// Children inherit this node's optimal basis: they differ from
		// it by exactly one bound change, the textbook dual-simplex
		// warm start.
		var childBasis *lp.Basis
		if !opt.ColdStart {
			childBasis = sol.Basis
		}
		s.mu.Lock()
		heap.Push(&s.heap, &node{bound: sol.Objective, changes: down, basis: childBasis, id: s.nextID})
		s.nextID++
		heap.Push(&s.heap, &node{bound: sol.Objective, changes: upN, basis: childBasis, id: s.nextID})
		s.nextID++
		s.inflight--
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// retire finishes a popped node without branching; bound is the tightest
// lower bound proven for its subtree (±Inf allowed).
func (s *search) retire(bound float64) {
	s.mu.Lock()
	if bound < s.prunedMin {
		s.prunedMin = bound
	}
	s.inflight--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// offerIncumbent installs x as the incumbent if it improves.
func (s *search) offerIncumbent(x []float64, obj float64) {
	s.mu.Lock()
	if obj < s.incObj-1e-9 {
		s.incX = append(s.incX[:0], x...)
		s.incObj = obj
		s.haveInc = true
	}
	s.mu.Unlock()
}

func (s *search) better(obj, incObj float64) bool { return obj < incObj-1e-9 }

func (s *search) gapClosed(incObj, bound float64) bool {
	if math.IsInf(incObj, 1) {
		return false
	}
	denom := math.Max(math.Abs(incObj), 1e-9)
	return (incObj-bound)/denom <= s.relGap+1e-12
}

// finish assembles the Result after all workers have exited.
func (s *search) finish() *Result {
	res := &Result{Status: NoSolution, Bound: math.Inf(-1), Objective: math.Inf(1)}
	if s.haveInc {
		res.X = append([]float64(nil), s.incX...)
		res.Objective = s.incObj
		res.Status = Feasible
	}
	// Workers push their node back before exiting on cancellation or the
	// node limit, so an empty heap with nothing in flight can only mean
	// the search space was genuinely exhausted — even if the context
	// happened to fire at the same instant.
	exhausted := len(s.heap) == 0 && s.inflight == 0

	if exhausted {
		if res.Status == Feasible {
			// Every subtree was either explored or pruned within the
			// gap: the incumbent is optimal (within RelGap).
			res.Status = Optimal
			res.Bound = res.Objective
		} else {
			res.Status = Infeasible
		}
	} else {
		// Stopped early: the global bound is the tightest open node.
		best := math.Inf(1)
		for _, nd := range s.heap {
			if nd.bound < best {
				best = nd.bound
			}
		}
		if s.prunedMin < best {
			best = s.prunedMin
		}
		if math.IsInf(best, 1) {
			best = math.Inf(-1)
		}
		res.Bound = best
	}
	res.Gap = gap(res.Objective, res.Bound)
	if res.Status == Feasible && s.gapClosed(res.Objective, res.Bound) {
		res.Status = Optimal
	}
	res.Nodes = s.nodes
	res.Stats = s.stats
	return res
}

func gap(obj, bound float64) float64 {
	if math.IsInf(obj, 1) || math.IsInf(bound, -1) {
		return math.Inf(1)
	}
	return (obj - bound) / math.Max(math.Abs(obj), 1e-9)
}

func mostFractional(x []float64, ints []int, tol float64) int {
	best, bestDist := -1, tol
	for _, v := range ints {
		f := x[v] - math.Floor(x[v])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			best, bestDist = v, dist
		}
	}
	return best
}

func checkIncumbent(p *Problem, x []float64, tol float64) (float64, bool) {
	if len(x) != p.LP.NumVars() {
		return 0, false
	}
	for _, v := range p.Integer {
		if math.Abs(x[v]-math.Round(x[v])) > tol {
			return 0, false
		}
	}
	obj := 0.0
	for j := 0; j < p.LP.NumVars(); j++ {
		lo, up := p.LP.Bounds(j)
		if x[j] < lo-1e-6 || x[j] > up+1e-6 {
			return 0, false
		}
	}
	for j := 0; j < p.LP.NumVars(); j++ {
		obj += p.LP.ObjCoef(j) * x[j]
	}
	return obj, true
}

func roundAndRepair(p *Problem, x []float64,
	solve func([]boundChange, *lp.Basis) (*lp.Solution, error),
	base []boundChange, tol float64) ([]float64, float64, bool) {

	changes := append([]boundChange(nil), base...)
	for _, v := range p.Integer {
		r := math.Round(x[v])
		changes = append(changes, boundChange{v, r, r})
	}
	// No warm basis: fixing every integer changes far more than one
	// bound, but it also makes presolve eliminate all of them.
	sol, err := solve(changes, nil)
	if err != nil || sol.Status != lp.Optimal {
		return nil, 0, false
	}
	// Verify integrality survived (fixed bounds guarantee it).
	for _, v := range p.Integer {
		if math.Abs(sol.X[v]-math.Round(sol.X[v])) > tol {
			return nil, 0, false
		}
	}
	return append([]float64(nil), sol.X...), sol.Objective, true
}
