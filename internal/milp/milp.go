// Package milp solves mixed 0/1 integer linear programs by LP-based
// branch-and-bound on top of package lp. Together they replace the role
// of ILOG CPLEX in §6 of the paper, including its "stop within 5 % of
// the optimum" mode that the authors used to keep resolution times under
// a minute.
//
// The solver minimizes the LP objective subject to integrality of the
// declared variables. The search runs on a pool of goroutine workers
// sharing one best-first node heap (smallest parent bound first, so the
// global lower bound is always near the top) and one incumbent guarded
// by a mutex; each worker re-solves LP relaxations on its own clone of
// the problem, so bound tightening never races.
//
// The search is cut-and-branch: a root cutting-plane loop separates
// Gomory mixed-integer cuts from the optimal basis and cover cuts from
// the capacity rows, batching each round's violated cuts into one
// lp.Model.AddRow group per re-solve; serial searches keep separating
// at node LPs through a shared cut pool with age/activity retirement.
// Branching is pseudocost-driven with reliability initialization
// (strong-branch a variable until its history is trusted), falling
// back to most-fractional under Options.BranchMostFractional or
// ColdStart. A rounding heuristic (fix integers to the nearest
// integral point, re-solve the LP for the continuous variables) finds
// incumbents early. Cancellation and deadlines arrive through a
// context.Context; SolveCtx returns the best incumbent and a proven
// global bound when interrupted.
package milp

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sync"
	"time"

	"cellstream/internal/lp"
	"cellstream/internal/num"
)

// Status reports the outcome of a MILP solve.
type Status int

const (
	// Optimal means the incumbent is within the requested gap of the
	// best bound (with RelGap == 0 this is proven optimality).
	Optimal Status = iota
	// Feasible means an integral solution exists but the search stopped
	// (node or time limit, or cancellation) before proving the gap.
	Feasible
	// Infeasible means no integral assignment satisfies the constraints.
	Infeasible
	// NoSolution means limits were hit before any integral solution was
	// found.
	NoSolution
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case NoSolution:
		return "no-solution"
	default:
		return "unknown"
	}
}

// Err maps a terminal Status to the lp sentinel errors, so callers that
// must fail on an unusable outcome classify it with errors.Is instead
// of matching status strings: Infeasible → lp.ErrInfeasible, NoSolution
// (limits hit before any incumbent) → lp.ErrIterLimit, nil otherwise —
// Optimal and Feasible both carry a usable incumbent.
func (s Status) Err() error {
	switch s {
	case Infeasible:
		return lp.ErrInfeasible
	case NoSolution:
		return lp.ErrIterLimit
	default:
		return nil
	}
}

// Proved reports whether the solve proved its incumbent within the
// requested gap (Status Optimal). It is the classification callers
// need beside Err: Err answers "is the result usable" (Optimal and
// Feasible both are), Proved answers "is the gap proven" — Feasible
// means a limit truncated the search with an unproven incumbent.
func (s Status) Proved() bool { return s == Optimal }

// Problem couples an LP with the list of integer-constrained variables.
type Problem struct {
	LP      *lp.Problem
	Integer []int // variable indices required to be integral
}

// Options tunes the search.
type Options struct {
	// RelGap is the relative optimality gap at which the search stops,
	// e.g. 0.05 reproduces the paper's CPLEX setting. 0 means prove
	// optimality (up to tolerance).
	RelGap float64
	// MaxNodes bounds the number of explored nodes (0 = 1e6).
	MaxNodes int
	// TimeLimit bounds wall-clock time (0 = none). It is implemented as
	// a context deadline; prefer passing a context to SolveCtx.
	TimeLimit time.Duration
	// IntTol is the integrality tolerance (0 = 1e-6).
	IntTol float64
	// Incumbent optionally warm-starts the search with a known feasible
	// point (checked; ignored if not feasible/integral).
	Incumbent []float64
	// DisableRounding turns off the rounding heuristic (for tests and
	// ablations).
	DisableRounding bool
	// Workers is the number of concurrent branch-and-bound workers.
	// 0 picks min(GOMAXPROCS, 8); 1 forces the serial search.
	Workers int
	// ColdStart disables basis reuse, presolve and node bound
	// tightening, cold-solving every node from scratch — the
	// pre-warm-start behavior, kept for the warm-vs-cold benchmarks
	// and ablations.
	ColdStart bool
	// DisableTightening turns off the constraint-driven bound
	// tightening pass warm node re-solves run after applying their
	// branching bound changes (lp.TightenBounds). Tightening never
	// changes an LP optimum — implied bounds cut no feasible point —
	// but it prunes provably empty subproblems without an LP solve and
	// hands the dual simplex tighter resting bounds; disable it for
	// ablations.
	DisableTightening bool
	// Factorization selects the LP basis-inverse representation for
	// every node re-solve (default lp.FactorLU; lp.FactorEta keeps the
	// PR 2 eta file for ablations).
	Factorization lp.Factorization
	// Pricing selects the LP phase-2 pricing rule for every node
	// re-solve (default lp.PricingDevex).
	Pricing lp.Pricing
	// DisableCuts turns off Gomory/cover cut separation (root cutting-
	// plane loop and node-level adoption), for ablations. Cuts are also
	// off under ColdStart, which reproduces the pre-cut search exactly.
	DisableCuts bool
	// CutRounds bounds the root cutting-plane rounds. 0 (the default)
	// auto-sizes: cuts run (8 rounds) only when the formulation has at
	// least cutAutoCols columns. Measured on the paper instances, the
	// root loop's cold solve plus re-solves cost ~20ms on the 12-task
	// compact formulation (half its whole search) for no bound gain,
	// while on the 94-task formulation one cut round lifts the root
	// bound past what the PR 4 search rules reached after 60 nodes. A
	// positive value forces that many rounds at any size; negative
	// disables the root loop.
	CutRounds int
	// NodeCutRounds enables cut separation and pool adoption at node
	// LPs of serial searches, with that many separate→re-solve rounds
	// per node. Off (0) by default: on the 94-task formulation node
	// cuts grew the worker model by ~160 rows and made a 20-node
	// search 7x slower without moving the global bound — best-first
	// search keeps its frontier at the root bound, which locally valid
	// progress at other nodes cannot lift. Root cuts (CutRounds) are
	// where the bound is won; use this only to study node separation.
	NodeCutRounds int
	// BranchMostFractional restores the pre-pseudocost branching rule,
	// for ablations. ColdStart implies it.
	BranchMostFractional bool
	// ReliabilityK is how many per-direction pseudocost observations a
	// variable needs before strong branching stops probing it (0 =
	// default 1, negative = trust pseudocosts immediately, i.e. no
	// strong branching). The default is deliberately low: pseudocosts
	// also learn from every real child-node solve, so one probe per
	// direction plus the tree's own solves converge quickly, and each
	// probe costs a capped dual re-solve.
	ReliabilityK int
}

// Stats aggregates LP-solver counters across every node re-solve of a
// branch-and-bound run.
type Stats struct {
	// LPIterations is the total simplex pivots over all node solves.
	LPIterations int
	// DualIterations counts pivots taken by the warm-start dual
	// simplex (a subset of LPIterations).
	DualIterations int
	// BoundFlips counts nonbasic columns flipped by the long-step dual
	// ratio test across node solves.
	BoundFlips int
	// Refactorizations counts basis reinversions; the RefactorXxx
	// counters split the total by cause (scheduled, numerical trouble,
	// warm-basis restore).
	Refactorizations int
	// RefactorPeriodic/RefactorUnstable/RefactorRestore split
	// Refactorizations by cause.
	RefactorPeriodic, RefactorUnstable, RefactorRestore int
	// FTUpdates counts Forrest–Tomlin updates folded into the LU
	// factors (0 when running on the eta file).
	FTUpdates int
	// MaxSpikeGrowth is the worst Forrest–Tomlin spike growth factor
	// observed across all node solves.
	MaxSpikeGrowth float64
	// WarmSolves counts node re-solves that accepted a parent basis.
	WarmSolves int
	// WarmFallbacks counts warm attempts that fell back to a cold
	// primal solve (stale/singular basis or a cycling dual phase).
	WarmFallbacks int
	// PresolvedCols/PresolvedRows total the columns and rows
	// eliminated by presolve across node solves.
	PresolvedCols, PresolvedRows int
	// PresolvePasses totals pipeline passes across presolved node
	// solves; the per-reduction counters below split presolve's work
	// by kind (singleton rows converted to bounds, column singletons
	// substituted, duplicate columns merged/dominated, bounds
	// tightened inside presolve).
	PresolvePasses        int
	PresolveSingletonRows int
	PresolveSingletonCols int
	PresolveDupCols       int
	PresolveTightened     int
	// NodeTightenedBounds counts bounds tightened by the cheap
	// lp.TightenBounds pass warm node re-solves run after branching
	// bound changes (outside lp presolve).
	NodeTightenedBounds int
	// NodeTightenPrunes counts nodes proven infeasible by that pass
	// alone — pruned without an LP solve.
	NodeTightenPrunes int
	// CutsSeparated counts distinct cuts entered into the pool, split
	// by family below.
	CutsSeparated int
	GomoryCuts    int
	CoverCuts     int
	// CutsActive counts cut rows actually added to a solving model:
	// root-loop rows kept in the search base plus node-level adoptions.
	CutsActive int
	// CutsRetired counts cuts dropped from the search base at the root
	// loop's final trim plus pooled cuts aged out unadopted.
	CutsRetired int
	// CutRounds counts root cutting-plane rounds that added cuts.
	CutRounds int
	// CutResolves counts LP re-solves triggered by cut batches (root
	// loop re-solves and node-level re-solves; not counted in Nodes).
	CutResolves int
	// StrongBranchSolves counts child LPs solved to initialize
	// pseudocosts (reliability branching).
	StrongBranchSolves int
	// PseudocostBranches counts branchings decided by pseudocost
	// scores (vs the most-fractional fallback).
	PseudocostBranches int
}

// Merge accumulates another aggregate o into st — the cross-solve
// aggregation the sched facade's sweeps use (add folds ONE lp solve's
// counters in, Merge folds a whole run's). Counters sum,
// MaxSpikeGrowth takes the maximum.
func (st *Stats) Merge(o Stats) {
	st.LPIterations += o.LPIterations
	st.DualIterations += o.DualIterations
	st.BoundFlips += o.BoundFlips
	st.Refactorizations += o.Refactorizations
	st.RefactorPeriodic += o.RefactorPeriodic
	st.RefactorUnstable += o.RefactorUnstable
	st.RefactorRestore += o.RefactorRestore
	st.FTUpdates += o.FTUpdates
	if o.MaxSpikeGrowth > st.MaxSpikeGrowth {
		st.MaxSpikeGrowth = o.MaxSpikeGrowth
	}
	st.WarmSolves += o.WarmSolves
	st.WarmFallbacks += o.WarmFallbacks
	st.PresolvedCols += o.PresolvedCols
	st.PresolvedRows += o.PresolvedRows
	st.PresolvePasses += o.PresolvePasses
	st.PresolveSingletonRows += o.PresolveSingletonRows
	st.PresolveSingletonCols += o.PresolveSingletonCols
	st.PresolveDupCols += o.PresolveDupCols
	st.PresolveTightened += o.PresolveTightened
	st.NodeTightenedBounds += o.NodeTightenedBounds
	st.NodeTightenPrunes += o.NodeTightenPrunes
	st.CutsSeparated += o.CutsSeparated
	st.GomoryCuts += o.GomoryCuts
	st.CoverCuts += o.CoverCuts
	st.CutsActive += o.CutsActive
	st.CutsRetired += o.CutsRetired
	st.CutRounds += o.CutRounds
	st.CutResolves += o.CutResolves
	st.StrongBranchSolves += o.StrongBranchSolves
	st.PseudocostBranches += o.PseudocostBranches
}

func (st *Stats) add(s lp.Stats) {
	st.LPIterations += s.Iterations
	st.DualIterations += s.DualIterations
	st.BoundFlips += s.BoundFlips
	st.Refactorizations += s.Refactorizations
	st.RefactorPeriodic += s.RefactorPeriodic
	st.RefactorUnstable += s.RefactorUnstable
	st.RefactorRestore += s.RefactorRestore
	st.FTUpdates += s.FTUpdates
	if s.MaxSpikeGrowth > st.MaxSpikeGrowth {
		st.MaxSpikeGrowth = s.MaxSpikeGrowth
	}
	if s.Warm && !s.WarmFellBack {
		st.WarmSolves++
	}
	if s.WarmFellBack {
		st.WarmFallbacks++
	}
	st.PresolvedCols += s.PresolvedCols
	st.PresolvedRows += s.PresolvedRows
	st.PresolvePasses += s.PresolvePasses
	st.PresolveSingletonRows += s.PresolveSingletonRows
	st.PresolveSingletonCols += s.PresolveSingletonCols
	st.PresolveDupCols += s.PresolveDupCols
	st.PresolveTightened += s.PresolveTightened
}

// The note* helpers below are the only approved write paths for the
// search-layer counters (the schedlint statssync analyzer enforces
// this): a shared Stats is mutated only through *Stats methods, so the
// write sites are enumerable and each caller's locking is auditable.
// Callers hold the search mutex; the methods themselves do not lock.

// noteNodeTighten records one node bound-tightening pass: n bounds
// tightened and, when infeas, a node proven infeasible without an LP.
func (st *Stats) noteNodeTighten(n int, infeas bool) {
	st.NodeTightenedBounds += n
	if infeas {
		st.NodeTightenPrunes++
	}
}

// noteCutSeparated counts one fresh cut entering the pool.
func (st *Stats) noteCutSeparated(gomory bool) {
	st.CutsSeparated++
	if gomory {
		st.GomoryCuts++
	} else {
		st.CoverCuts++
	}
}

// noteCutResolve counts one LP re-solve triggered by a cut batch.
func (st *Stats) noteCutResolve() { st.CutResolves++ }

// noteCutRound counts one root cutting-plane round that added cuts.
func (st *Stats) noteCutRound() { st.CutRounds++ }

// noteCutsActive counts n cut rows entering a solving model.
func (st *Stats) noteCutsActive(n int) { st.CutsActive += n }

// noteCutsRetired counts n cuts dropped from a search base or aged out.
func (st *Stats) noteCutsRetired(n int) { st.CutsRetired += n }

// noteNodeCutRound folds one node separate→adopt round's deltas in:
// fresh cuts by family, pool retirements from the adoption scan, the
// adopted batch size, and the re-solve the batch forces.
func (st *Stats) noteNodeCutRound(gom, cov, retired, adopted int) {
	st.CutsSeparated += gom + cov
	st.GomoryCuts += gom
	st.CoverCuts += cov
	st.CutsRetired += retired
	st.CutsActive += adopted
	if adopted > 0 {
		st.CutResolves++
	}
}

// noteStrongBranch counts one child LP solved to initialize
// pseudocosts.
func (st *Stats) noteStrongBranch() { st.StrongBranchSolves++ }

// notePseudocostBranch counts one branching decided by pseudocost
// scores.
func (st *Stats) notePseudocostBranch() { st.PseudocostBranches++ }

// Result is the outcome of Solve.
type Result struct {
	Status    Status
	X         []float64
	Objective float64 // objective of X
	Bound     float64 // global lower bound on the optimum
	Nodes     int     // LP relaxations solved
	Gap       float64 // (Objective - Bound) / max(|Objective|, eps)
	Stats     Stats   // aggregated LP-solver counters
}

type boundChange struct {
	v      int
	lo, up float64
}

type node struct {
	bound   float64 // parent LP objective (lower bound for the subtree)
	changes []boundChange
	basis   *lp.Basis // parent's optimal basis for a warm dual re-solve
	rows    int       // row count of the model basis was snapshotted on
	id      int
	// Pseudocost learning: which branching created this node. pcV < 0
	// for the root; pcFrac is the branched variable's distance to the
	// bound it was pushed toward, so (LP objective - bound)/pcFrac is
	// the observed per-unit degradation.
	pcV    int
	pcDown bool
	pcFrac float64
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	//lint:allow floatcmp exact heap tie-break; any consistent order is valid and ties fall through to the node id
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].id > h[j].id // prefer deeper/newer nodes on ties (DFS-ish)
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs branch-and-bound with a background context. Unlike older
// revisions it does not mutate p.LP: every worker operates on a clone.
func Solve(p *Problem, opt Options) (*Result, error) {
	//lint:allow ctxflow documented no-ctx convenience wrapper; SolveCtx is the cancellable entry point
	return SolveCtx(context.Background(), p, opt)
}

// search is the state shared by the branch-and-bound workers.
type search struct {
	p      *Problem
	n      int
	intTol float64
	relGap float64

	rootLo, rootUp []float64

	// Cut-and-branch state. base is the LP the workers clone — the
	// original relaxation, possibly augmented with root cut rows.
	// serialCuts enables node-level separation/adoption
	// (Options.NodeCutRounds), which is restricted to single-worker
	// searches so that bases pushed by one worker always fit another's
	// row set.
	base       *lp.Problem
	baseRows   int
	cutsOn     bool
	serialCuts bool
	pool       *cutPool
	pc         *pcTable
	gomSpec    lp.GomorySpec
	isBin      []bool

	mu       sync.Mutex
	cond     *sync.Cond
	heap     nodeHeap
	inflight int // nodes popped but not yet fully processed
	nodes    int // LP relaxations solved in the main loop
	nextID   int
	maxNodes int

	incObj    float64 // +Inf until an incumbent exists
	incX      []float64
	haveInc   bool
	prunedMin float64 // min bound among nodes discarded without branching
	stopped   bool
	err       error
	stats     Stats
}

// SolveCtx runs branch-and-bound until optimality (within RelGap), a
// limit, or ctx is done — whichever comes first. On early stop it
// returns the incumbent (Status Feasible/NoSolution) and the tightest
// proven bound.
func SolveCtx(ctx context.Context, p *Problem, opt Options) (*Result, error) {
	intTol := opt.IntTol
	if intTol == 0 {
		intTol = num.IntegralityTol
	}
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = 1_000_000
	}
	workers := opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	if workers < 1 {
		workers = 1
	}
	if opt.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.TimeLimit)
		defer cancel()
	}

	n := p.LP.NumVars()
	s := &search{
		p: p, n: n, intTol: intTol, relGap: opt.RelGap,
		rootLo:    make([]float64, n),
		rootUp:    make([]float64, n),
		maxNodes:  maxNodes,
		incObj:    math.Inf(1),
		prunedMin: math.Inf(1),
		nextID:    1,
	}
	s.cond = sync.NewCond(&s.mu)
	for j := 0; j < n; j++ {
		s.rootLo[j], s.rootUp[j] = p.LP.Bounds(j)
	}

	if opt.Incumbent != nil {
		if obj, ok := checkIncumbent(p, opt.Incumbent, intTol); ok {
			s.incX = append([]float64(nil), opt.Incumbent...)
			s.incObj = obj
			s.haveInc = true
		}
	}

	// Cut-and-branch setup. Cuts are globally valid rows derived from
	// the root data, so the search base may safely carry them; under
	// ColdStart (the ablation baseline) everything stays off.
	s.base = p.LP
	s.baseRows = p.LP.NumRows()
	s.cutsOn = !opt.DisableCuts && !opt.ColdStart && len(p.Integer) > 0 &&
		(opt.CutRounds > 0 || n >= cutAutoCols)
	s.serialCuts = s.cutsOn && workers == 1 && opt.NodeCutRounds > 0
	s.pool = newCutPool()
	s.pc = newPCTable(n)
	if s.cutsOn {
		s.gomSpec = lp.GomorySpec{
			IsInt: make([]bool, n),
			Lo:    append([]float64(nil), s.rootLo...),
			Up:    append([]float64(nil), s.rootUp...),
		}
		s.isBin = make([]bool, n)
		for _, v := range p.Integer {
			s.gomSpec.IsInt[v] = true
			if s.rootLo[v] == 0 && s.rootUp[v] == 1 {
				s.isBin[v] = true
			}
		}
	}

	root := &node{bound: math.Inf(-1), rows: s.baseRows, pcV: -1}
	if s.cutsOn && ctx.Err() == nil {
		root = s.rootCuts(opt)
	}
	s.heap = nodeHeap{root}
	heap.Init(&s.heap)

	// A watcher flips stopped when the context ends so that sleeping
	// workers wake up promptly. It is joined before finish() reads the
	// shared state so its write can never race the result assembly.
	watchDone := make(chan struct{})
	watcherExited := make(chan struct{})
	go func() {
		defer close(watcherExited)
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker(ctx, opt)
		}()
	}
	wg.Wait()
	close(watchDone)
	<-watcherExited

	if s.err != nil {
		return nil, s.err
	}
	return s.finish(), nil
}

// worker holds one branch-and-bound worker's private solve state: its
// clone of the (cut-augmented) search base, the persistent solver
// context, a second solver for strong branching on the same problem —
// so strong-branch probes never evict the main context's factorization
// — and the count of cut rows its model has accumulated.
type worker struct {
	s      *search
	prob   *lp.Problem
	solver *lp.Solver
	sb     *lp.Solver
	rows   int
	opt    Options
}

// solveNode re-solves the relaxation for a node's bound-delta on the
// worker's persistent solver context. With a parent basis the solve
// warm-starts through the dual simplex — and when the parent was the
// previous solve on this worker (the common DFS-ish pop order), the
// context still holds its factorization and skips the reinversion too;
// a cheap bound-tightening pass first propagates the branching change
// through the constraints, pruning provably empty nodes without an LP
// solve (implied bounds cut no feasible point, so the relaxation
// optimum — and the warm basis — survive). Without a basis — the
// root, the rounding heuristic, cold-start mode — it cold-solves, with
// the presolve pipeline eliminating the columns the delta chain has
// fixed (and everything that cascades from them).
// setNodeBounds resets the worker problem's variable bounds to a
// node's (root bounds plus its branching delta chain). solveNode does
// this before every solve. Strong-branch probes rely on these bounds
// (plus the tightening pass below) still being in place, which is why
// the worker loop branches before running the rounding heuristic.
func (w *worker) setNodeBounds(changes []boundChange) {
	s := w.s
	for j := 0; j < s.n; j++ {
		w.prob.SetBounds(j, s.rootLo[j], s.rootUp[j])
	}
	for _, ch := range changes {
		w.prob.SetBounds(ch.v, ch.lo, ch.up)
	}
}

func (w *worker) solveNode(changes []boundChange, basis *lp.Basis) (*lp.Solution, error) {
	s, opt := w.s, w.opt
	w.setNodeBounds(changes)
	// Node re-solves pin the dual simplex to the plain largest-
	// violation row rule. Dual steepest edge (the lp default) pays an
	// extra FTRAN per pivot to steer long dual runs, but node re-solves
	// are short repair sequences after one bound change — on the
	// 12-task instance DSE tripled the most-fractional search's node
	// count by landing on different (worse for branching) optimal
	// vertices, and its per-pivot overhead never amortizes here.
	o := lp.Options{Factorization: opt.Factorization, Pricing: opt.Pricing,
		DualPricing: lp.DualPricingMaxViolation}
	if !opt.ColdStart {
		if basis != nil {
			o.WarmStart = basis
			if !opt.DisableTightening {
				nt, infeas := lp.TightenBounds(w.prob, 1)
				if nt > 0 || infeas {
					s.mu.Lock()
					s.stats.noteNodeTighten(nt, infeas)
					s.mu.Unlock()
				}
				if infeas {
					return &lp.Solution{Status: lp.Infeasible}, nil
				}
			}
		} else {
			o.Presolve = true
		}
	}
	sol, err := w.solver.Solve(o)
	if err == nil {
		s.mu.Lock()
		s.stats.add(sol.Stats)
		s.mu.Unlock()
	}
	return sol, err
}

// worker pops nodes, solves their LP relaxations on a private clone of
// the problem, and pushes children, until the heap drains or a limit or
// cancellation stops the search.
func (s *search) worker(ctx context.Context, opt Options) {
	prob := s.base.Clone()
	w := &worker{
		s: s, prob: prob,
		solver: lp.NewSolver(prob),
		sb:     lp.NewSolver(prob),
		rows:   prob.NumRows(),
		opt:    opt,
	}

	for {
		s.mu.Lock()
		for len(s.heap) == 0 && s.inflight > 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped || len(s.heap) == 0 {
			s.mu.Unlock()
			return
		}
		nd := heap.Pop(&s.heap).(*node)
		s.inflight++
		incObj := s.incObj
		s.mu.Unlock()

		if ctx.Err() != nil {
			// Push the node back so its bound stays accounted for.
			s.mu.Lock()
			heap.Push(&s.heap, nd)
			s.inflight--
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}

		if s.gapClosed(incObj, nd.bound) {
			s.retire(nd.bound)
			continue
		}

		// Reserve a node slot before solving so the LP-relaxation count
		// never exceeds MaxNodes even with many concurrent workers.
		s.mu.Lock()
		if s.nodes >= s.maxNodes {
			heap.Push(&s.heap, nd)
			s.inflight--
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		s.nodes++
		nodeSeq := s.nodes
		s.mu.Unlock()

		// Fit the node basis to this worker's row set: rows only ever
		// grow (cut adoption), and every row beyond the snapshot's
		// count was appended after it, so extending with basic slacks
		// is exact. A shrunken model (never happens today) would make
		// the basis unusable — fall back to a cold solve.
		basis := nd.basis
		if basis != nil && nd.rows != w.rows {
			if nd.rows < w.rows {
				basis = basis.GrownBy(w.rows - nd.rows)
			} else {
				basis = nil
			}
		}

		sol, err := w.solveNode(nd.changes, basis)
		if err == nil && sol.Status == lp.Optimal && s.serialCuts {
			// Serial searches separate and adopt cuts at the node LP;
			// the loop re-solves on this worker's context and returns
			// the final solution, whose status is re-dispatched below.
			sol, err = w.nodeCuts(nd, sol)
		}
		if err != nil {
			s.mu.Lock()
			s.err = err
			s.stopped = true
			s.inflight--
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}

		s.mu.Lock()
		incObj = s.incObj
		s.mu.Unlock()

		switch sol.Status {
		case lp.Infeasible:
			s.retire(math.Inf(1))
			continue
		case lp.Unbounded:
			// An unbounded relaxation at the root means the MILP is
			// unbounded or needs explicit bounds; report via bound.
			s.retire(math.Inf(-1))
			continue
		case lp.IterLimit:
			// Unusable relaxation: drop the node but keep its parent
			// bound in the frontier accounting.
			s.retire(nd.bound)
			continue
		}

		if !s.better(sol.Objective, incObj) && !math.IsInf(incObj, 1) {
			// Bound dominated by incumbent: prune (allowing gap).
			denom := math.Max(math.Abs(incObj), num.DenomFloor)
			if (incObj-sol.Objective)/denom <= s.relGap+num.StrictEps {
				s.retire(sol.Objective)
				continue
			}
		}

		// Pseudocost learning from the node solve the search performs
		// anyway: this node exists because its parent branched pcV in
		// one direction, and the LP degradation per unit of
		// fractionality is exactly the pseudocost observable. Learning
		// here (not just in strong-branch probes) is what makes
		// variables reach reliability without extra LP solves.
		if nd.pcV >= 0 && !opt.BranchMostFractional && !opt.ColdStart && !math.IsInf(nd.bound, -1) {
			s.pc.update(nd.pcV, nd.pcDown, (sol.Objective-nd.bound)/nd.pcFrac)
		}

		cands := fractionalCands(sol.X, s.p.Integer, s.intTol)
		if len(cands) == 0 {
			// Integral: candidate incumbent; subtree is fully explored.
			s.offerIncumbent(sol.X, sol.Objective)
			s.retire(sol.Objective)
			continue
		}

		// Branch variable selection: pseudocosts with reliability
		// strong branching (most-fractional under the ablations). A
		// child the strong-branch probe proved infeasible is pruned
		// without ever being pushed.
		v, downInf, upInf := w.chooseBranch(nd, sol, cands, opt)
		if downInf && upInf {
			s.retire(math.Inf(1))
			continue
		}
		val := sol.X[v]
		lo, up := s.rootLo[v], s.rootUp[v]
		for _, ch := range nd.changes {
			if ch.v == v {
				lo, up = ch.lo, ch.up
			}
		}
		// Children inherit this node's optimal basis: they differ from
		// it by exactly one bound change, the textbook dual-simplex
		// warm start.
		var childBasis *lp.Basis
		if !opt.ColdStart {
			childBasis = sol.Basis
		}
		s.mu.Lock()
		fracV := val - math.Floor(val)
		if !downInf {
			down := append(append([]boundChange(nil), nd.changes...), boundChange{v, lo, math.Floor(val)})
			heap.Push(&s.heap, &node{bound: sol.Objective, changes: down, basis: childBasis, rows: w.rows,
				id: s.nextID, pcV: v, pcDown: true, pcFrac: fracV})
			s.nextID++
		}
		if !upInf {
			upN := append(append([]boundChange(nil), nd.changes...), boundChange{v, math.Ceil(val), up})
			heap.Push(&s.heap, &node{bound: sol.Objective, changes: upN, basis: childBasis, rows: w.rows,
				id: s.nextID, pcV: v, pcDown: false, pcFrac: 1 - fracV})
			s.nextID++
		}
		s.inflight--
		s.cond.Broadcast()
		s.mu.Unlock()

		// Rounding heuristic: fix every integer to its nearest value
		// and re-solve for the continuous variables. It runs after
		// branching because it rewrites every integer bound on w.prob,
		// which strong branching needs intact.
		if !opt.DisableRounding && nodeSeq%16 == 1 {
			if x, obj, ok := roundAndRepair(s.p, sol.X, w.solveNode, nd.changes, s.intTol); ok {
				s.offerIncumbent(x, obj)
			}
		}
	}
}

// retire finishes a popped node without branching; bound is the tightest
// lower bound proven for its subtree (±Inf allowed).
func (s *search) retire(bound float64) {
	s.mu.Lock()
	if bound < s.prunedMin {
		s.prunedMin = bound
	}
	s.inflight--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// offerIncumbent installs x as the incumbent if it improves.
func (s *search) offerIncumbent(x []float64, obj float64) {
	s.mu.Lock()
	if obj < s.incObj-num.ObjImproveEps {
		s.incX = append(s.incX[:0], x...)
		s.incObj = obj
		s.haveInc = true
	}
	s.mu.Unlock()
}

func (s *search) better(obj, incObj float64) bool { return obj < incObj-num.ObjImproveEps }

func (s *search) gapClosed(incObj, bound float64) bool {
	if math.IsInf(incObj, 1) {
		return false
	}
	denom := math.Max(math.Abs(incObj), num.DenomFloor)
	return (incObj-bound)/denom <= s.relGap+num.StrictEps
}

// finish assembles the Result after all workers have exited.
func (s *search) finish() *Result {
	res := &Result{Status: NoSolution, Bound: math.Inf(-1), Objective: math.Inf(1)}
	if s.haveInc {
		res.X = append([]float64(nil), s.incX...)
		res.Objective = s.incObj
		res.Status = Feasible
	}
	// Workers push their node back before exiting on cancellation or the
	// node limit, so an empty heap with nothing in flight can only mean
	// the search space was genuinely exhausted — even if the context
	// happened to fire at the same instant.
	exhausted := len(s.heap) == 0 && s.inflight == 0

	if exhausted {
		if res.Status == Feasible {
			// Every subtree was either explored or pruned within the
			// gap: the incumbent is optimal (within RelGap).
			res.Status = Optimal
			res.Bound = res.Objective
		} else {
			res.Status = Infeasible
		}
	} else {
		// Stopped early: the global bound is the tightest open node.
		best := math.Inf(1)
		for _, nd := range s.heap {
			if nd.bound < best {
				best = nd.bound
			}
		}
		if s.prunedMin < best {
			best = s.prunedMin
		}
		if math.IsInf(best, 1) {
			best = math.Inf(-1)
		}
		res.Bound = best
	}
	res.Gap = gap(res.Objective, res.Bound)
	if res.Status == Feasible && s.gapClosed(res.Objective, res.Bound) {
		res.Status = Optimal
	}
	res.Nodes = s.nodes
	res.Stats = s.stats
	return res
}

func gap(obj, bound float64) float64 {
	if math.IsInf(obj, 1) || math.IsInf(bound, -1) {
		return math.Inf(1)
	}
	return (obj - bound) / math.Max(math.Abs(obj), num.DenomFloor)
}

func mostFractional(x []float64, ints []int, tol float64) int {
	best, bestDist := -1, tol
	for _, v := range ints {
		f := x[v] - math.Floor(x[v])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			best, bestDist = v, dist
		}
	}
	return best
}

func checkIncumbent(p *Problem, x []float64, tol float64) (float64, bool) {
	if len(x) != p.LP.NumVars() {
		return 0, false
	}
	for _, v := range p.Integer {
		if math.Abs(x[v]-math.Round(x[v])) > tol {
			return 0, false
		}
	}
	obj := 0.0
	for j := 0; j < p.LP.NumVars(); j++ {
		lo, up := p.LP.Bounds(j)
		if x[j] < lo-num.BoundSnapTol || x[j] > up+num.BoundSnapTol {
			return 0, false
		}
	}
	for j := 0; j < p.LP.NumVars(); j++ {
		obj += p.LP.ObjCoef(j) * x[j]
	}
	return obj, true
}

func roundAndRepair(p *Problem, x []float64,
	solve func([]boundChange, *lp.Basis) (*lp.Solution, error),
	base []boundChange, tol float64) ([]float64, float64, bool) {

	changes := append([]boundChange(nil), base...)
	for _, v := range p.Integer {
		r := math.Round(x[v])
		changes = append(changes, boundChange{v, r, r})
	}
	// No warm basis: fixing every integer changes far more than one
	// bound, but it also makes presolve eliminate all of them.
	sol, err := solve(changes, nil)
	if err != nil || sol.Status != lp.Optimal {
		return nil, 0, false
	}
	// Verify integrality survived (fixed bounds guarantee it).
	for _, v := range p.Integer {
		if math.Abs(sol.X[v]-math.Round(sol.X[v])) > tol {
			return nil, 0, false
		}
	}
	return append([]float64(nil), sol.X...), sol.Objective, true
}
