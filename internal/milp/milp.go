// Package milp solves mixed 0/1 integer linear programs by LP-based
// branch-and-bound on top of package lp. Together they replace the role
// of ILOG CPLEX in §6 of the paper, including its "stop within 5 % of
// the optimum" mode that the authors used to keep resolution times under
// a minute.
//
// The solver minimizes the LP objective subject to integrality of the
// declared variables. Nodes are explored best-first (smallest parent
// bound first) so the global lower bound is always the top of the heap;
// branching selects the most fractional integer variable. A rounding
// heuristic (fix integers to the nearest integral point, re-solve the LP
// for the continuous variables) is used to find incumbents early.
package milp

import (
	"container/heap"
	"math"
	"time"

	"cellstream/internal/lp"
)

// Status reports the outcome of a MILP solve.
type Status int

const (
	// Optimal means the incumbent is within the requested gap of the
	// best bound (with RelGap == 0 this is proven optimality).
	Optimal Status = iota
	// Feasible means an integral solution exists but the search stopped
	// (node or time limit) before proving the gap.
	Feasible
	// Infeasible means no integral assignment satisfies the constraints.
	Infeasible
	// NoSolution means limits were hit before any integral solution was
	// found.
	NoSolution
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case NoSolution:
		return "no-solution"
	default:
		return "unknown"
	}
}

// Problem couples an LP with the list of integer-constrained variables.
type Problem struct {
	LP      *lp.Problem
	Integer []int // variable indices required to be integral
}

// Options tunes the search.
type Options struct {
	// RelGap is the relative optimality gap at which the search stops,
	// e.g. 0.05 reproduces the paper's CPLEX setting. 0 means prove
	// optimality (up to tolerance).
	RelGap float64
	// MaxNodes bounds the number of explored nodes (0 = 1e6).
	MaxNodes int
	// TimeLimit bounds wall-clock time (0 = none).
	TimeLimit time.Duration
	// IntTol is the integrality tolerance (0 = 1e-6).
	IntTol float64
	// Incumbent optionally warm-starts the search with a known feasible
	// point (checked; ignored if not feasible/integral).
	Incumbent []float64
	// DisableRounding turns off the rounding heuristic (for tests and
	// ablations).
	DisableRounding bool
}

// Result is the outcome of Solve.
type Result struct {
	Status    Status
	X         []float64
	Objective float64 // objective of X
	Bound     float64 // global lower bound on the optimum
	Nodes     int     // LP relaxations solved
	Gap       float64 // (Objective - Bound) / max(|Objective|, eps)
}

type boundChange struct {
	v      int
	lo, up float64
}

type node struct {
	bound   float64 // parent LP objective (lower bound for the subtree)
	changes []boundChange
	id      int
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].id > h[j].id // prefer deeper/newer nodes on ties (DFS-ish)
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs branch-and-bound.
func Solve(p *Problem, opt Options) (*Result, error) {
	intTol := opt.IntTol
	if intTol == 0 {
		intTol = 1e-6
	}
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = 1_000_000
	}
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = time.Now().Add(opt.TimeLimit)
	}

	isInt := make(map[int]bool, len(p.Integer))
	for _, v := range p.Integer {
		isInt[v] = true
	}

	// Save root bounds so we can restore the Problem after solving.
	n := p.LP.NumVars()
	rootLo := make([]float64, n)
	rootUp := make([]float64, n)
	for j := 0; j < n; j++ {
		rootLo[j], rootUp[j] = p.LP.Bounds(j)
	}
	defer func() {
		for j := 0; j < n; j++ {
			p.LP.SetBounds(j, rootLo[j], rootUp[j])
		}
	}()

	res := &Result{Status: NoSolution, Bound: math.Inf(-1), Objective: math.Inf(1)}

	if opt.Incumbent != nil {
		if obj, ok := checkIncumbent(p, opt.Incumbent, intTol); ok {
			res.X = append([]float64(nil), opt.Incumbent...)
			res.Objective = obj
			res.Status = Feasible
		}
	}

	applyAndSolve := func(changes []boundChange) (*lp.Solution, error) {
		for j := 0; j < n; j++ {
			p.LP.SetBounds(j, rootLo[j], rootUp[j])
		}
		for _, ch := range changes {
			p.LP.SetBounds(ch.v, ch.lo, ch.up)
		}
		return lp.Solve(p.LP)
	}

	h := &nodeHeap{{bound: math.Inf(-1)}}
	heap.Init(h)
	nextID := 1

	better := func(obj float64) bool { return obj < res.Objective-1e-9 }
	gapClosed := func(bound float64) bool {
		if math.IsInf(res.Objective, 1) {
			return false
		}
		denom := math.Max(math.Abs(res.Objective), 1e-9)
		return (res.Objective-bound)/denom <= opt.RelGap+1e-12
	}

	for h.Len() > 0 {
		if res.Nodes >= maxNodes || (!deadline.IsZero() && time.Now().After(deadline)) {
			break
		}
		nd := heap.Pop(h).(*node)
		// Global lower bound = min over open nodes and this node.
		if nd.bound > res.Bound {
			res.Bound = nd.bound
		}
		if gapClosed(nd.bound) {
			res.Bound = nd.bound
			res.Status = Optimal
			res.Gap = gap(res.Objective, res.Bound)
			return res, nil
		}

		sol, err := applyAndSolve(nd.changes)
		if err != nil {
			return nil, err
		}
		res.Nodes++
		if sol.Status == lp.Infeasible {
			continue
		}
		if sol.Status == lp.Unbounded {
			// An unbounded relaxation at the root means the MILP is
			// unbounded or needs explicit bounds; report via bound.
			res.Bound = math.Inf(-1)
			continue
		}
		if sol.Status != lp.Optimal {
			continue // iteration limit: treat as unpruned but unusable
		}
		if !better(sol.Objective) && !math.IsInf(res.Objective, 1) {
			// Bound dominated by incumbent: prune (allowing gap).
			denom := math.Max(math.Abs(res.Objective), 1e-9)
			if (res.Objective-sol.Objective)/denom <= opt.RelGap+1e-12 {
				continue
			}
		}

		frac := mostFractional(sol.X, p.Integer, intTol)
		if frac < 0 {
			// Integral: candidate incumbent.
			if better(sol.Objective) {
				res.X = append([]float64(nil), sol.X...)
				res.Objective = sol.Objective
				res.Status = Feasible
			}
			continue
		}

		// Rounding heuristic: fix every integer to its nearest value and
		// re-solve for the continuous variables.
		if !opt.DisableRounding && res.Nodes%16 == 1 {
			if x, obj, ok := roundAndRepair(p, sol.X, applyAndSolve, nd.changes, intTol); ok && better(obj) {
				res.X = x
				res.Objective = obj
				res.Status = Feasible
			}
		}

		v := frac
		val := sol.X[v]
		lo, up := rootLo[v], rootUp[v]
		for _, ch := range nd.changes {
			if ch.v == v {
				lo, up = ch.lo, ch.up
			}
		}
		down := append(append([]boundChange(nil), nd.changes...), boundChange{v, lo, math.Floor(val)})
		upN := append(append([]boundChange(nil), nd.changes...), boundChange{v, math.Ceil(val), up})
		heap.Push(h, &node{bound: sol.Objective, changes: down, id: nextID})
		nextID++
		heap.Push(h, &node{bound: sol.Objective, changes: upN, id: nextID})
		nextID++
	}

	if h.Len() == 0 {
		// Search exhausted: incumbent (if any) is optimal.
		if res.Status == Feasible || res.Status == Optimal {
			res.Status = Optimal
			if res.Objective > res.Bound {
				res.Bound = res.Objective
			}
			// Exhausted search proves optimality regardless of bound bookkeeping.
			res.Bound = res.Objective
		} else {
			res.Status = Infeasible
		}
	} else if res.Status == Feasible {
		// Stopped early: report the tightest open bound.
		best := res.Bound
		for _, nd := range *h {
			if nd.bound < best || math.IsInf(best, -1) {
				best = nd.bound
			}
		}
		res.Bound = best
	}
	res.Gap = gap(res.Objective, res.Bound)
	if res.Status == Feasible && gapClosed(res.Bound) {
		res.Status = Optimal
	}
	return res, nil
}

func gap(obj, bound float64) float64 {
	if math.IsInf(obj, 1) || math.IsInf(bound, -1) {
		return math.Inf(1)
	}
	return (obj - bound) / math.Max(math.Abs(obj), 1e-9)
}

func mostFractional(x []float64, ints []int, tol float64) int {
	best, bestDist := -1, tol
	for _, v := range ints {
		f := x[v] - math.Floor(x[v])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			best, bestDist = v, dist
		}
	}
	return best
}

func checkIncumbent(p *Problem, x []float64, tol float64) (float64, bool) {
	if len(x) != p.LP.NumVars() {
		return 0, false
	}
	for _, v := range p.Integer {
		if math.Abs(x[v]-math.Round(x[v])) > tol {
			return 0, false
		}
	}
	// Feasibility is verified by fixing all variables and solving;
	// cheaper: trust the caller for bounds/rows, verify objective only.
	// We conservatively verify rows by re-solving with everything fixed
	// in the caller (core does this); here compute the objective.
	obj := 0.0
	for j := 0; j < p.LP.NumVars(); j++ {
		lo, up := p.LP.Bounds(j)
		if x[j] < lo-1e-6 || x[j] > up+1e-6 {
			return 0, false
		}
	}
	for j := 0; j < p.LP.NumVars(); j++ {
		obj += objCoef(p.LP, j) * x[j]
	}
	return obj, true
}

// objCoef extracts the objective coefficient of variable j.
func objCoef(p *lp.Problem, j int) float64 { return p.ObjCoef(j) }

func roundAndRepair(p *Problem, x []float64,
	solve func([]boundChange) (*lp.Solution, error),
	base []boundChange, tol float64) ([]float64, float64, bool) {

	changes := append([]boundChange(nil), base...)
	for _, v := range p.Integer {
		r := math.Round(x[v])
		changes = append(changes, boundChange{v, r, r})
	}
	sol, err := solve(changes)
	if err != nil || sol.Status != lp.Optimal {
		return nil, 0, false
	}
	// Verify integrality survived (fixed bounds guarantee it).
	for _, v := range p.Integer {
		if math.Abs(sol.X[v]-math.Round(sol.X[v])) > tol {
			return nil, 0, false
		}
	}
	return append([]float64(nil), sol.X...), sol.Objective, true
}
