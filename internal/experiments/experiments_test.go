package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cellstream/internal/daggen"
	"cellstream/internal/platform"
)

// The quick configuration shrinks everything so these tests double as an
// end-to-end smoke test of the full experiment pipeline.

// testCfg returns the quick experiment configuration, shrunk further
// under -short so the whole suite finishes in a few seconds without
// dropping any experiment.
func testCfg(t *testing.T) Config {
	t.Helper()
	cfg := Config{Quick: true}
	if testing.Short() {
		cfg.Instances = 25
		cfg.SolveTime = 60 * time.Millisecond
		cfg.LSIters = 20
		cfg.SPECounts = []int{0, 8}
	}
	return cfg
}

func TestFig6Quick(t *testing.T) {
	r, err := Fig6(testCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Theoretical <= 0 || r.Steady <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	// The measured steady state must be close to (and not above) the
	// model prediction — the paper reports ≈95 %.
	if r.Ratio < 0.85 || r.Ratio > 1.02 {
		t.Errorf("measured/predicted ratio = %.3f, want ≈0.95", r.Ratio)
	}
	// Ramp-up: early cumulative throughput below late.
	if len(r.Cumulative) < 10 {
		t.Fatal("curve too short")
	}
	if r.Cumulative[0] >= r.Cumulative[len(r.Cumulative)-1] {
		t.Error("no ramp-up visible")
	}
	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "instances,cumulative_throughput") {
		t.Error("CSV header missing")
	}
	if plot := r.Plot(); !strings.Contains(plot, "Fig. 6") {
		t.Error("plot missing title")
	}
}

func TestFig7Quick(t *testing.T) {
	cfg := testCfg(t)
	rs, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.fill()
	if len(rs) != 3 {
		t.Fatalf("%d graphs, want 3", len(rs))
	}
	for _, r := range rs {
		if len(r.Rows) != len(cfg.SPECounts) {
			t.Fatalf("%s: %d rows, want %d", r.Graph, len(r.Rows), len(cfg.SPECounts))
		}
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		// nS = 0: every strategy is the PPE-only mapping, speed-up ≈ 1.
		for _, v := range []float64{first.GreedyMem, first.GreedyCPU, first.LP} {
			if v < 0.9 || v > 1.1 {
				t.Errorf("%s: speed-up with 0 SPEs = %v, want ≈1", r.Graph, v)
			}
		}
		// The paper's headline: LP wins at 8 SPEs and beats both greedies.
		if last.LP <= last.GreedyMem-0.05 || last.LP <= last.GreedyCPU-0.05 {
			t.Errorf("%s: LP %.2f not ahead of greedies (%.2f, %.2f)",
				r.Graph, last.LP, last.GreedyMem, last.GreedyCPU)
		}
		if last.LP < 1.2 {
			t.Errorf("%s: LP speed-up %.2f at 8 SPEs, want > 1.2", r.Graph, last.LP)
		}
		var csv bytes.Buffer
		if err := r.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if plot := r.Plot(); !strings.Contains(plot, "Linear Programming") {
			t.Error("plot missing series")
		}
	}
}

func TestFig8Quick(t *testing.T) {
	cfg := testCfg(t)
	rs, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.fill()
	if len(rs) != 3 {
		t.Fatalf("%d graphs, want 3", len(rs))
	}
	for _, r := range rs {
		if len(r.CCR) != len(cfg.CCRs) {
			t.Fatalf("%s: %d points, want %d", r.Graph, len(r.CCR), len(cfg.CCRs))
		}
		// The paper's Fig. 8: higher CCR → lower speed-up.
		if r.Speedup[len(r.Speedup)-1] >= r.Speedup[0] {
			t.Errorf("%s: speed-up did not decay with CCR: %v", r.Graph, r.Speedup)
		}
	}
	var csv bytes.Buffer
	if err := WriteFig8CSV(&csv, rs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "graph,ccr,lp_speedup") {
		t.Error("CSV header missing")
	}
	if plot := PlotFig8(rs); !strings.Contains(plot, "Fig. 8") {
		t.Error("plot missing title")
	}
}

func TestSolveTimesQuick(t *testing.T) {
	rows, err := SolveTimes(testCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The paper keeps solves under a minute; our quick budget is 1 s
		// and the row must reflect a real search.
		if r.Time.Seconds() > 30 {
			t.Errorf("%s: solve took %v", r.Graph, r.Time)
		}
		if r.Nodes <= 0 {
			t.Errorf("%s: no nodes explored", r.Graph)
		}
	}
	var csv bytes.Buffer
	if err := WriteSolveTimesCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
}

func TestAblationQuick(t *testing.T) {
	rows, err := Ablation(testCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 graphs × 4 variants
		t.Fatalf("%d rows, want 12", len(rows))
	}
	byVariant := map[string]map[string]float64{}
	for _, r := range rows {
		if byVariant[r.Graph] == nil {
			byVariant[r.Graph] = map[string]float64{}
		}
		byVariant[r.Graph][r.Variant] = r.Speedup
	}
	for g, m := range byVariant {
		// Lifting the memory limit can only help, and the paper observes
		// it is the dominant constraint, so it must help noticeably on at
		// least one graph (checked across graphs below).
		if m["no-memory-limit"] < m["full-model"]-0.1 {
			t.Errorf("%s: lifting memory reduced speed-up: %v < %v", g, m["no-memory-limit"], m["full-model"])
		}
	}
	gain := 0.0
	for _, m := range byVariant {
		if d := m["no-memory-limit"] - m["full-model"]; d > gain {
			gain = d
		}
	}
	if gain < 0.2 {
		t.Errorf("memory ablation gain %.2f too small — memory should be the binding constraint", gain)
	}
	var csv bytes.Buffer
	if err := WriteAblationCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
}

func TestLPMappingSeedsAndWins(t *testing.T) {
	cfg := testCfg(t)
	cfg.fill()
	g := daggen.PaperGraph1(0.775)
	plat := platform.QS22()
	res, err := LPMapping(g, plat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Feasible {
		t.Fatalf("LP mapping infeasible: %v", res.Report.Violations)
	}
}

func TestCompareStrategiesQuick(t *testing.T) {
	rows, err := CompareStrategies(testCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 3 graphs × 6 strategies
		t.Fatalf("%d rows, want 18", len(rows))
	}
	best := map[string]float64{}
	lp := map[string]float64{}
	for _, r := range rows {
		if r.Speedup > best[r.Graph] {
			best[r.Graph] = r.Speedup
		}
		if r.Strategy == "lp" {
			lp[r.Graph] = r.Speedup
		}
	}
	for g := range best {
		// The LP mapping must be at or near the top of the zoo.
		if lp[g] < 0.9*best[g] {
			t.Errorf("%s: LP %.2f well below best strategy %.2f", g, lp[g], best[g])
		}
	}
	var csv bytes.Buffer
	if err := WriteStrategiesCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "anneal") {
		t.Error("CSV missing anneal rows")
	}
}
