// Package experiments regenerates every figure of the paper's evaluation
// (§6): the steady-state ramp-up of Fig. 6, the speed-up versus number
// of SPEs of Fig. 7, the speed-up versus communication-to-computation
// ratio of Fig. 8, the solve-time observations of §6, plus the ablation
// studies listed in DESIGN.md.
//
// Speed-ups follow the paper's definition (§6.4): achieved throughput
// normalized to the throughput of the same application using only the
// PPE, both measured on the simulated platform.
package experiments

import (
	"context"
	"fmt"
	"time"

	"cellstream/internal/assign"
	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/graph"
	"cellstream/internal/heuristics"
	"cellstream/internal/platform"
	"cellstream/internal/sim"
)

// Config tunes the experiment harness.
type Config struct {
	// Platform is the target (default: single Cell of a QS22, as §6.4).
	Platform *platform.Platform
	// Instances simulated for Fig. 7 (default 5000, as the paper);
	// Fig. 6 and Fig. 8 use twice this value (the paper uses 10000).
	Instances int
	// SolveTime is the budget of the mapping search per instance
	// (default 10 s; the paper reports ≈20 s CPLEX solves).
	SolveTime time.Duration
	// LSIters / LSRestarts tune the local-search seeding.
	LSIters    int
	LSRestarts int
	// SPECounts are the x-axis of Fig. 7 (default 0..8).
	SPECounts []int
	// CCRs are the x-axis of Fig. 8 (default daggen.PaperCCRs).
	CCRs []float64
	// Quick shrinks everything for tests.
	Quick bool
	// Progress, when non-nil, receives one line per completed step.
	Progress func(string)
}

func (c *Config) fill() {
	// Quick fills only the fields the caller left unset, so tests and
	// cmd/experiments can shrink individual knobs (e.g. -instances)
	// below the quick defaults.
	if c.Quick {
		if c.Instances == 0 {
			c.Instances = 300
		}
		if c.SolveTime == 0 {
			c.SolveTime = 1 * time.Second
		}
		if c.LSIters == 0 {
			c.LSIters = 1500
		}
		if c.LSRestarts == 0 {
			c.LSRestarts = 1
		}
		if c.SPECounts == nil {
			c.SPECounts = []int{0, 4, 8}
		}
		if c.CCRs == nil {
			c.CCRs = []float64{0.775, 4.6}
		}
	}
	if c.Platform == nil {
		c.Platform = platform.QS22()
	}
	if c.Instances == 0 {
		c.Instances = 5000
	}
	if c.SolveTime == 0 {
		c.SolveTime = 10 * time.Second
	}
	if c.LSIters == 0 {
		c.LSIters = 20000
	}
	if c.LSRestarts == 0 {
		c.LSRestarts = 4
	}
	if c.SPECounts == nil {
		c.SPECounts = []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	}
	if c.CCRs == nil {
		c.CCRs = daggen.PaperCCRs
	}
}

func (c *Config) log(format string, args ...interface{}) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

// LPMapping computes the paper's "Linear Programming" mapping: the
// steady-state program solved to a 5 % gap. As MILP solvers do
// internally, the branch-and-bound search is warm-started with the best
// incumbent any cheap heuristic can produce (greedy, hill climbing,
// simulated annealing), so the returned mapping dominates all of them.
func LPMapping(g *graph.Graph, plat *platform.Platform, cfg Config) (*assign.Result, error) {
	//lint:allow ctxflow documented no-ctx convenience wrapper; LPMappingCtx is the cancellable entry point
	return LPMappingCtx(context.Background(), g, plat, cfg)
}

// LPMappingCtx is LPMapping under a context: cancellation or a deadline
// stops the branch-and-bound cleanly with the best incumbent found.
func LPMappingCtx(ctx context.Context, g *graph.Graph, plat *platform.Platform, cfg Config) (*assign.Result, error) {
	cfg.fill()
	seed := heuristics.GreedyCPU(g, plat)
	if alt := heuristics.GreedyMem(g, plat); betterSeed(g, plat, alt, seed) {
		seed = alt
	}
	if improved, _, err := heuristics.Improve(g, plat, seed.Clone(), heuristics.LocalSearchOptions{
		MaxIters: cfg.LSIters, Restarts: cfg.LSRestarts,
	}); err == nil && betterSeed(g, plat, improved, seed) {
		seed = improved
	}
	if annealed, _, err := heuristics.Anneal(g, plat, seed.Clone(), heuristics.AnnealOptions{
		Iters: 2 * cfg.LSIters, Seed: 42,
	}); err == nil && betterSeed(g, plat, annealed, seed) {
		seed = annealed
	}
	res, err := assign.SolveCtx(ctx, g, plat, assign.Options{
		RelGap:    0.05,
		TimeLimit: cfg.SolveTime,
		Seed:      seed,
	})
	if err == nil {
		cfg.log("lpmapping %s: period=%.3gus bound=%.3gus rootLP=%.3gus nodes=%d proved=%v",
			g.Name, res.Report.Period*1e6, res.PeriodBound*1e6, res.RootLPBound*1e6,
			res.Nodes, res.Proved)
	}
	return res, err
}

func betterSeed(g *graph.Graph, plat *platform.Platform, a, b core.Mapping) bool {
	ra, errA := core.Evaluate(g, plat, a)
	rb, errB := core.Evaluate(g, plat, b)
	if errA != nil || !ra.Feasible {
		return false
	}
	if errB != nil || !rb.Feasible {
		return true
	}
	return ra.Period < rb.Period
}

// measureSpeedup simulates the mapping and normalizes its steady
// throughput to the simulated PPE-only baseline.
func measureSpeedup(g *graph.Graph, plat *platform.Platform, m core.Mapping, instances int, base float64) (float64, error) {
	res, err := sim.Run(g, plat, m, instances, sim.Config{})
	if err != nil {
		return 0, err
	}
	return res.SteadyThroughput() / base, nil
}

// ---------------------------------------------------------------- Fig. 6

// Fig6Result is the ramp-up experiment: cumulative throughput versus
// number of processed instances for random graph 1 (CCR 0.775, 8 SPEs),
// against the throughput predicted by the steady-state program.
type Fig6Result struct {
	Graph       string
	Instances   []int     // sampled instance counts
	Cumulative  []float64 // measured cumulative throughput (instances/s)
	Theoretical float64   // predicted steady-state throughput
	Steady      float64   // measured steady-state throughput
	Ratio       float64   // Steady / Theoretical (the paper reports ≈0.95)
}

// Fig6 runs the ramp-up experiment.
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg.fill()
	g := daggen.PaperGraph1(0.775)
	plat := cfg.Platform
	lp, err := LPMapping(g, plat, cfg)
	if err != nil {
		return nil, err
	}
	cfg.log("fig6: LP mapping period=%.3gus gap=%.3g", lp.Report.Period*1e6, lp.Gap)
	n := cfg.Instances * 2
	res, err := sim.Run(g, plat, lp.Mapping, n, sim.Config{})
	if err != nil {
		return nil, err
	}
	curve := res.RampCurve()
	out := &Fig6Result{
		Graph:       g.Name,
		Theoretical: lp.Report.Throughput(),
		Steady:      res.SteadyThroughput(),
	}
	out.Ratio = out.Steady / out.Theoretical
	// Sample ~200 points along the curve.
	step := len(curve) / 200
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(curve); i += step {
		out.Instances = append(out.Instances, i+1)
		out.Cumulative = append(out.Cumulative, curve[i])
	}
	return out, nil
}

// ---------------------------------------------------------------- Fig. 7

// Fig7Row is one x-axis point of Fig. 7.
type Fig7Row struct {
	NumSPE    int
	GreedyMem float64
	GreedyCPU float64
	LP        float64
}

// Fig7Result is the speed-up versus #SPEs sweep for one graph.
type Fig7Result struct {
	Graph string
	Rows  []Fig7Row
}

// Fig7 reproduces the three speed-up plots of Fig. 7 (CCR 0.775).
func Fig7(cfg Config) ([]*Fig7Result, error) {
	cfg.fill()
	var out []*Fig7Result
	for _, g := range daggen.PaperGraphs(0.775) {
		r := &Fig7Result{Graph: g.Name}
		for _, nS := range cfg.SPECounts {
			plat := cfg.Platform.WithSPEs(nS)
			baseRes, err := sim.Run(g, plat, core.AllOnPPE(g), cfg.Instances, sim.Config{})
			if err != nil {
				return nil, err
			}
			base := baseRes.SteadyThroughput()
			row := Fig7Row{NumSPE: nS}
			if row.GreedyMem, err = measureSpeedup(g, plat, heuristics.GreedyMem(g, plat), cfg.Instances, base); err != nil {
				return nil, err
			}
			if row.GreedyCPU, err = measureSpeedup(g, plat, heuristics.GreedyCPU(g, plat), cfg.Instances, base); err != nil {
				return nil, err
			}
			lp, err := LPMapping(g, plat, cfg)
			if err != nil {
				return nil, err
			}
			if row.LP, err = measureSpeedup(g, plat, lp.Mapping, cfg.Instances, base); err != nil {
				return nil, err
			}
			cfg.log("fig7 %s nS=%d: gmem %.2f gcpu %.2f lp %.2f", g.Name, nS, row.GreedyMem, row.GreedyCPU, row.LP)
			r.Rows = append(r.Rows, row)
		}
		out = append(out, r)
	}
	return out, nil
}

// ---------------------------------------------------------------- Fig. 8

// Fig8Result is the speed-up versus CCR sweep for one graph (LP mapping,
// 8 SPEs).
type Fig8Result struct {
	Graph   string
	CCR     []float64
	Speedup []float64
}

// Fig8 reproduces the CCR sweep of Fig. 8.
func Fig8(cfg Config) ([]*Fig8Result, error) {
	cfg.fill()
	builders := []func(float64) *graph.Graph{daggen.PaperGraph1, daggen.PaperGraph2, daggen.PaperGraph3}
	var out []*Fig8Result
	for _, build := range builders {
		var r *Fig8Result
		for _, ccr := range cfg.CCRs {
			g := build(ccr)
			if r == nil {
				r = &Fig8Result{Graph: g.Name}
			}
			plat := cfg.Platform
			baseRes, err := sim.Run(g, plat, core.AllOnPPE(g), cfg.Instances*2, sim.Config{})
			if err != nil {
				return nil, err
			}
			lp, err := LPMapping(g, plat, cfg)
			if err != nil {
				return nil, err
			}
			sp, err := measureSpeedup(g, plat, lp.Mapping, cfg.Instances*2, baseRes.SteadyThroughput())
			if err != nil {
				return nil, err
			}
			cfg.log("fig8 %s ccr=%.3g: lp %.2f", g.Name, ccr, sp)
			r.CCR = append(r.CCR, ccr)
			r.Speedup = append(r.Speedup, sp)
		}
		out = append(out, r)
	}
	return out, nil
}

// ------------------------------------------------------------ solve time

// SolveTimeRow records one mapping-computation measurement (§6 reports
// CPLEX solves staying under one minute at a 5 % gap).
type SolveTimeRow struct {
	Graph  string
	Tasks  int
	Edges  int
	Nodes  int
	Time   time.Duration
	Gap    float64
	Proved bool
}

// SolveTimes measures the mapping solver on the three paper graphs.
func SolveTimes(cfg Config) ([]SolveTimeRow, error) {
	//lint:allow ctxflow documented no-ctx convenience wrapper; SolveTimesCtx is the cancellable entry point
	return SolveTimesCtx(context.Background(), cfg)
}

// SolveTimesCtx is SolveTimes under a context; cancellation stops the
// per-graph solves cleanly.
func SolveTimesCtx(ctx context.Context, cfg Config) ([]SolveTimeRow, error) {
	cfg.fill()
	var out []SolveTimeRow
	for _, g := range daggen.PaperGraphs(0.775) {
		res, err := LPMappingCtx(ctx, g, cfg.Platform, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, SolveTimeRow{
			Graph: g.Name, Tasks: g.NumTasks(), Edges: g.NumEdges(),
			Nodes: res.Nodes, Time: res.SolveTime, Gap: res.Gap, Proved: res.Proved,
		})
		cfg.log("solvetime %s: %v nodes=%d gap=%.3g", g.Name, res.SolveTime, res.Nodes, res.Gap)
	}
	return out, nil
}

// -------------------------------------------------------------- ablation

// AblationRow reports the analytical LP speed-up of one platform variant.
type AblationRow struct {
	Graph   string
	Variant string
	Speedup float64
}

// Ablation quantifies how much each constraint family of the program
// (1a)–(1k) costs: it re-solves the mapping with the local-store limit
// lifted, the DMA stacks lifted, and the interfaces made infinitely
// fast, and reports the analytical speed-up of each variant. This backs
// the paper's observation that the SPEs' memory limitation is the
// dominant constraint.
func Ablation(cfg Config) ([]AblationRow, error) {
	cfg.fill()
	variants := []struct {
		name   string
		mutate func(*platform.Platform)
	}{
		{"full-model", func(*platform.Platform) {}},
		{"no-memory-limit", func(p *platform.Platform) { p.LocalStore = 1 << 50 }},
		{"no-dma-limits", func(p *platform.Platform) { p.MaxDMAIn = 1 << 30; p.MaxDMAFromPPE = 1 << 30 }},
		{"infinite-bandwidth", func(p *platform.Platform) { p.BW = 1e30 }},
	}
	var out []AblationRow
	for _, g := range daggen.PaperGraphs(0.775) {
		for _, v := range variants {
			plat := cfg.Platform.WithSPEs(cfg.Platform.NumSPE)
			plat.Name = cfg.Platform.Name + "-" + v.name
			v.mutate(plat)
			res, err := LPMapping(g, plat, cfg)
			if err != nil {
				return nil, err
			}
			base, err := core.Evaluate(g, plat, core.AllOnPPE(g))
			if err != nil {
				return nil, err
			}
			out = append(out, AblationRow{
				Graph: g.Name, Variant: v.name,
				Speedup: base.Period / res.Report.Period,
			})
			cfg.log("ablation %s %s: %.2fx", g.Name, v.name, base.Period/res.Report.Period)
		}
	}
	return out, nil
}

// --------------------------------------------------- strategy comparison

// StrategyRow reports one (graph, strategy) pair of the extended
// comparison: every mapper of the repository (the paper's two greedies,
// the baselines, the §7-style improved heuristics, and the LP) measured
// on the simulator.
type StrategyRow struct {
	Graph    string
	Strategy string
	// Speedup is the measured speed-up vs the simulated PPE-only run.
	Speedup float64
	// Feasible reports the analytical capacity check of the mapping.
	Feasible bool
}

// CompareStrategies measures every mapping strategy on the three paper
// graphs (CCR 0.775, full platform). An extension of Fig. 7's 8-SPE
// endpoint to the whole strategy zoo.
func CompareStrategies(cfg Config) ([]StrategyRow, error) {
	cfg.fill()
	plat := cfg.Platform
	var out []StrategyRow
	for _, g := range daggen.PaperGraphs(0.775) {
		baseRes, err := sim.Run(g, plat, core.AllOnPPE(g), cfg.Instances, sim.Config{})
		if err != nil {
			return nil, err
		}
		base := baseRes.SteadyThroughput()
		strategies := []struct {
			name string
			run  func() (core.Mapping, error)
		}{
			{"roundrobin", func() (core.Mapping, error) { return heuristics.RoundRobin(g, plat), nil }},
			{"greedymem", func() (core.Mapping, error) { return heuristics.GreedyMem(g, plat), nil }},
			{"greedycpu", func() (core.Mapping, error) { return heuristics.GreedyCPU(g, plat), nil }},
			{"localsearch", func() (core.Mapping, error) {
				m, _, err := heuristics.Improve(g, plat, heuristics.GreedyCPU(g, plat),
					heuristics.LocalSearchOptions{MaxIters: cfg.LSIters, Restarts: cfg.LSRestarts})
				return m, err
			}},
			{"anneal", func() (core.Mapping, error) {
				m, _, err := heuristics.Anneal(g, plat, heuristics.GreedyCPU(g, plat),
					heuristics.AnnealOptions{Iters: cfg.LSIters, Seed: 1})
				return m, err
			}},
			{"lp", func() (core.Mapping, error) {
				res, err := LPMapping(g, plat, cfg)
				if err != nil {
					return nil, err
				}
				return res.Mapping, nil
			}},
		}
		for _, s := range strategies {
			m, err := s.run()
			if err != nil {
				return nil, err
			}
			rep, err := core.Evaluate(g, plat, m)
			if err != nil {
				return nil, err
			}
			sp := 0.0 // undeployable mappings score zero, like on hardware
			if msp, err := measureSpeedup(g, plat, m, cfg.Instances, base); err == nil {
				sp = msp
			}
			cfg.log("strategies %s %s: %.2fx feasible=%v", g.Name, s.name, sp, rep.Feasible)
			out = append(out, StrategyRow{Graph: g.Name, Strategy: s.name, Speedup: sp, Feasible: rep.Feasible})
		}
	}
	return out, nil
}
