package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"cellstream/internal/textplot"
)

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// WriteCSV emits the Fig. 6 curve.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, len(r.Instances))
	for i := range r.Instances {
		rows[i] = []string{strconv.Itoa(r.Instances[i]), f(r.Cumulative[i]), f(r.Theoretical)}
	}
	return writeCSV(w, []string{"instances", "cumulative_throughput", "theoretical_throughput"}, rows)
}

// Plot renders the Fig. 6 curve as ASCII.
func (r *Fig6Result) Plot() string {
	xs := make([]float64, len(r.Instances))
	for i, v := range r.Instances {
		xs[i] = float64(v)
	}
	theory := textplot.Series{Name: "theoretical throughput",
		X: []float64{xs[0], xs[len(xs)-1]},
		Y: []float64{r.Theoretical, r.Theoretical}}
	measured := textplot.Series{Name: "experimental throughput", X: xs, Y: r.Cumulative}
	title := fmt.Sprintf("Fig. 6 — throughput vs instances (%s): steady %.1f/s = %.1f%% of predicted %.1f/s",
		r.Graph, r.Steady, 100*r.Ratio, r.Theoretical)
	return textplot.Plot(title, "instances", "instances/s", 70, 18,
		[]textplot.Series{theory, measured})
}

// WriteCSV emits one Fig. 7 sweep.
func (r *Fig7Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{strconv.Itoa(row.NumSPE), f(row.GreedyMem), f(row.GreedyCPU), f(row.LP)}
	}
	return writeCSV(w, []string{"num_spe", "greedymem_speedup", "greedycpu_speedup", "lp_speedup"}, rows)
}

// Plot renders one Fig. 7 sweep as ASCII.
func (r *Fig7Result) Plot() string {
	var xs, gm, gc, lp []float64
	for _, row := range r.Rows {
		xs = append(xs, float64(row.NumSPE))
		gm = append(gm, row.GreedyMem)
		gc = append(gc, row.GreedyCPU)
		lp = append(lp, row.LP)
	}
	return textplot.Plot(
		fmt.Sprintf("Fig. 7 — speed-up vs number of SPEs (%s)", r.Graph),
		"number of SPEs", "speed-up vs PPE-only", 64, 16,
		[]textplot.Series{
			{Name: "Linear Programming", X: xs, Y: lp},
			{Name: "GreedyMem", X: xs, Y: gm},
			{Name: "GreedyCPU", X: xs, Y: gc},
		})
}

// WriteCSV emits the Fig. 8 sweeps, one row per (graph, CCR).
func WriteFig8CSV(w io.Writer, results []*Fig8Result) error {
	var rows [][]string
	for _, r := range results {
		for i := range r.CCR {
			rows = append(rows, []string{r.Graph, f(r.CCR[i]), f(r.Speedup[i])})
		}
	}
	return writeCSV(w, []string{"graph", "ccr", "lp_speedup"}, rows)
}

// PlotFig8 renders the CCR sweeps of all graphs in one plot.
func PlotFig8(results []*Fig8Result) string {
	var series []textplot.Series
	for _, r := range results {
		series = append(series, textplot.Series{Name: r.Graph, X: r.CCR, Y: r.Speedup})
	}
	return textplot.Plot("Fig. 8 — speed-up vs CCR (LP mapping, 8 SPEs)",
		"communication-to-computation ratio", "speed-up vs PPE-only", 64, 16, series)
}

// WriteSolveTimesCSV emits the solver measurements.
func WriteSolveTimesCSV(w io.Writer, rows []SolveTimeRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Graph, strconv.Itoa(r.Tasks), strconv.Itoa(r.Edges),
			strconv.Itoa(r.Nodes), f(r.Time.Seconds()), f(r.Gap), strconv.FormatBool(r.Proved)}
	}
	return writeCSV(w, []string{"graph", "tasks", "edges", "nodes", "seconds", "gap", "proved"}, out)
}

// WriteAblationCSV emits the ablation study.
func WriteAblationCSV(w io.Writer, rows []AblationRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Graph, r.Variant, f(r.Speedup)}
	}
	return writeCSV(w, []string{"graph", "variant", "analytic_speedup"}, out)
}

// WriteStrategiesCSV emits the strategy comparison.
func WriteStrategiesCSV(w io.Writer, rows []StrategyRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Graph, r.Strategy, f(r.Speedup), strconv.FormatBool(r.Feasible)}
	}
	return writeCSV(w, []string{"graph", "strategy", "measured_speedup", "feasible"}, out)
}
