// Package loading for the analysis driver. The module is deliberately
// dependency-free, so instead of go/packages (which lives in x/tools)
// the loader resolves module-internal import paths by position under
// the module root, parses every non-test file with go/parser, and
// type-checks with go/types. Standard-library imports are satisfied by
// the compiler's source importer, which type-checks GOROOT sources and
// therefore needs no pre-built export data and no network.
//
// Limitations, acceptable for this repository: build constraints are
// not evaluated (the repo has none), _test.go files are never loaded
// (every schedlint invariant deliberately exempts tests), and only
// imports inside the module, under an extra fixture root, or in GOROOT
// resolve.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // directory the files were read from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of one module (plus optional
// extra roots, used by analysistest for fixture trees).
type Loader struct {
	ModuleDir  string
	ModulePath string
	// ExtraRoots maps additional import-path prefixes to directories;
	// analysistest points fixture package names at testdata/src.
	ExtraRoots map[string]string

	Fset *token.FileSet
	pkgs map[string]*Package
	std  types.Importer
	path []string // import stack, for cycle reporting
}

// NewLoader creates a loader for the module rooted at dir (the
// directory containing go.mod).
func NewLoader(dir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  dir,
		ModulePath: modPath,
		Fset:       fset,
		pkgs:       map[string]*Package{},
		std:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// dirFor maps an import path to the directory holding its sources, or
// "" when the path belongs to neither the module nor an extra root.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleDir
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
	}
	for prefix, root := range l.ExtraRoots {
		if path == prefix {
			return root
		}
		if rest, ok := strings.CutPrefix(path, prefix+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest))
		}
	}
	return ""
}

// Load type-checks the package at the given import path (module-
// internal or under an extra root) and memoizes the result.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %s: %s", path, strings.Join(l.path, " -> "))
		}
		return pkg, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("import path %q is outside the module and extra roots", path)
	}
	l.pkgs[path] = nil // cycle marker
	l.path = append(l.path, path)
	defer func() { l.path = l.path[:len(l.path)-1] }()

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no buildable non-test Go files in %s", path, dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(func(imp string) (*types.Package, error) {
		if imp == "unsafe" {
			return types.Unsafe, nil
		}
		if l.dirFor(imp) != "" {
			p, err := l.Load(imp)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return l.std.Import(imp)
	})}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every buildable non-test .go file of dir, sorted by
// name for deterministic file order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Expand resolves command-line package patterns ("./...", "./dir/...",
// "./dir") into the sorted list of module import paths that contain
// buildable non-test Go files. testdata and hidden directories are
// skipped, as the go tool does.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "all" {
			pat = "./..."
		}
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		root := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			p, err := l.importPathOf(root)
			if err != nil {
				return nil, err
			}
			add(p)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				p, err := l.importPathOf(path)
				if err != nil {
					return err
				}
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) importPathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, "_") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
