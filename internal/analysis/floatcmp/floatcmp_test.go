package floatcmp_test

import (
	"testing"

	"cellstream/internal/analysis/analysistest"
	"cellstream/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, "testdata", floatcmp.New(floatcmp.Config{}), "floatfix")
}
