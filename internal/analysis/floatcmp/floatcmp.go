// Package floatcmp implements the schedlint analyzer guarding the
// solver's float-comparison discipline. The PR 3/4 fuzz campaigns
// traced several real bugs to ad-hoc epsilons and exact comparisons on
// computed values, so the rule is machine-enforced:
//
//  1. ==/!= between two non-constant floating-point operands is a
//     finding. Compare through a named tolerance (internal/num's
//     helpers, or an explicit |a-b| <= tol) instead; genuinely exact
//     comparisons — heap tie-breaks, stored-bound identity — carry a
//     //lint:allow floatcmp justification.
//  2. An inline "magic epsilon" literal (0 < |v| < 1e-3) anywhere
//     outside a const declaration is a finding. Name it: the shared
//     tolerances live in internal/num; genuinely local thresholds get
//     a package const, which keeps them greppable and documented.
//
// Comparisons against constants (x == 0, f > pivTol) are exempt from
// rule 1: comparing to an exact stored constant is well-defined, and
// named-constant thresholds are the approved pattern.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"math"

	"cellstream/internal/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// Packages restricts findings to the listed import paths; empty
	// means every package analyzed (used by the fixture tests).
	Packages []string
	// ExemptPackages are analyzed-but-exempt paths (internal/num
	// itself: it is the approved home of tolerance literals).
	ExemptPackages []string
	// EpsilonMax is the exclusive upper bound on |v| for a float
	// literal to count as a magic epsilon (0 picks the default 1e-3).
	EpsilonMax float64
}

// New returns the analyzer for cfg.
func New(cfg Config) *analysis.Analyzer {
	if cfg.EpsilonMax == 0 {
		cfg.EpsilonMax = 1e-3
	}
	return &analysis.Analyzer{
		Name: "floatcmp",
		Doc:  "flags exact ==/!= on computed floats and inline magic epsilon literals in solver code; tolerances belong in internal/num",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

func inScope(cfg Config, path string) bool {
	for _, p := range cfg.ExemptPackages {
		if p == path {
			return false
		}
	}
	if len(cfg.Packages) == 0 {
		return true
	}
	for _, p := range cfg.Packages {
		if p == path {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass, cfg Config) error {
	if !inScope(cfg, pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		// Collect const-declaration extents: literals inside them are
		// named by definition and exempt from the epsilon rule.
		var constRanges [][2]token.Pos
		ast.Inspect(file, func(n ast.Node) bool {
			if d, ok := n.(*ast.GenDecl); ok && d.Tok == token.CONST {
				constRanges = append(constRanges, [2]token.Pos{d.Pos(), d.End()})
			}
			return true
		})
		inConst := func(pos token.Pos) bool {
			for _, r := range constRanges {
				if pos >= r[0] && pos <= r[1] {
					return true
				}
			}
			return false
		}

		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				xt, yt := pass.TypesInfo.Types[n.X], pass.TypesInfo.Types[n.Y]
				if xt.Type == nil || yt.Type == nil {
					return true
				}
				if !analysis.IsFloat(xt.Type) && !analysis.IsFloat(yt.Type) {
					return true
				}
				// A constant operand (literal, named const, or constant
				// expression) makes the comparison well-defined.
				if xt.Value != nil || yt.Value != nil {
					return true
				}
				pass.Reportf(n.OpPos,
					"%s on computed float values; compare within a named tolerance (internal/num) or justify with //lint:allow floatcmp",
					n.Op)
			case *ast.BasicLit:
				if n.Kind != token.FLOAT {
					return true
				}
				if inConst(n.Pos()) {
					return true
				}
				v := constant.MakeFromLiteral(n.Value, token.FLOAT, 0)
				f, _ := constant.Float64Val(v)
				f = math.Abs(f)
				if f > 0 && f < cfg.EpsilonMax {
					pass.Reportf(n.Pos(),
						"magic tolerance literal %s; name it as a constant (shared tolerances live in internal/num)", n.Value)
				}
			}
			return true
		})
	}
	return nil
}
