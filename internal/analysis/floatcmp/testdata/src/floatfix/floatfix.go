// Package floatfix seeds floatcmp violations and approved patterns.
package floatfix

const namedTol = 1e-9 // named in a const decl: approved

func computedCompare(a, b float64) bool {
	return a == b // want "== on computed float values"
}

func computedNeq(a, b float64) bool {
	return a != b // want "!= on computed float values"
}

func constantCompare(a float64) bool {
	return a == 0 // comparing to a constant: approved
}

func namedConstCompare(a, b float64) bool {
	return a-b < namedTol // named tolerance: approved
}

func magicEpsilon(a, b float64) bool {
	return a-b < 1e-9 // want "magic tolerance literal 1e-9"
}

func bigLiteralOK(a float64) bool {
	return a < 0.5 // not epsilon-scale: approved
}

func allowedExact(a, b float64) bool {
	//lint:allow floatcmp escape hatch fixture: exact comparison is intended here
	return a == b
}
