package floatfix

// Regression: the pre-sweep node-heap comparator of internal/milp
// (milp.go, nodeHeap.Less) compared bounds with a bare != — a correct
// exact tie-break that nonetheless must carry its justification so the
// next reader (and the next editor) knows it is deliberate.

type node struct {
	bound float64
	id    int
}

type nodeHeap []*node

func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound { // want "!= on computed float values"
		return h[i].bound < h[j].bound
	}
	return h[i].id > h[j].id
}
