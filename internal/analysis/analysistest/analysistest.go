// Package analysistest runs an analyzer over want-comment fixture
// packages, mirroring golang.org/x/tools/go/analysis/analysistest on
// top of the module's own stdlib-only driver. A fixture package lives
// in testdata/src/<name>/ and marks each expected finding with a
// trailing comment:
//
//	x := a == b // want "computed float"
//
// The quoted string is a regular expression matched against the
// diagnostic message; several "..." on one comment expect several
// diagnostics on that line. The suite fails on unexpected diagnostics
// AND on unmatched wants, so fixtures double as both positive and
// negative tests — in particular the //lint:allow escape-hatch path is
// proven by a violation line that carries an allow comment and no
// want.
//
// Fixture packages may import the real module packages (the statuscmp
// and statssync regression fixtures import internal/lp and
// internal/milp to reproduce pre-sweep findings against the real
// types).
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cellstream/internal/analysis"
)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package under dir/src and checks the
// analyzer's diagnostics against its want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	moduleRoot, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	src, err := filepath.Abs(filepath.Join(dir, "src"))
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	loader.ExtraRoots = map[string]string{}
	for _, fx := range fixtures {
		loader.ExtraRoots[fx] = filepath.Join(src, fx)
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx, func(t *testing.T) {
			pkg, err := loader.Load(fx)
			if err != nil {
				t.Fatalf("load fixture %s: %v", fx, err)
			}
			diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("run %s: %v", a.Name, err)
			}
			wants, err := parseWants(pkg.Dir)
			if err != nil {
				t.Fatalf("parse wants: %v", err)
			}
			for _, d := range diags {
				if !claim(wants, d) {
					t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("no diagnostic at %s:%d matching %q", w.file, w.line, w.raw)
				}
			}
		})
	}
}

// claim marks the first unmatched want satisfied by d.
func claim(wants []*want, d analysis.Diagnostic) bool {
	base := filepath.Base(d.Pos.Filename)
	for _, w := range wants {
		if !w.matched && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants scans every fixture file for want comments.
func parseWants(dir string) ([]*want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quoted.FindAllStringSubmatch(m[1], -1) {
				pat := strings.ReplaceAll(q[1], `\"`, `"`)
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
				}
				wants = append(wants, &want{file: name, line: i + 1, re: re, raw: pat})
			}
		}
	}
	return wants, nil
}
