package ctxflow_test

import (
	"testing"

	"cellstream/internal/analysis/analysistest"
	"cellstream/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.New(ctxflow.Config{}), "ctxfix")
}
