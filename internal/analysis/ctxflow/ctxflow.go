// Package ctxflow implements the schedlint analyzer guarding
// end-to-end context propagation. The solver stack is built so a
// caller's context flows from the sched facade through core and milp
// down to every node re-solve; a context.Background() (or TODO())
// buried in library code silently detaches that chain, making a
// "cancellable" service uncancellable. Two rules:
//
//  1. context.Background()/context.TODO() in library code — any
//     non-main package; test files are never analyzed — is a finding.
//     Thread the caller's ctx. The deliberate exceptions (the no-ctx
//     convenience wrappers like milp.Solve) carry a documented
//     //lint:allow ctxflow.
//  2. An exported function or method whose name starts with "Solve"
//     (the blocking entry-point convention of this codebase) must
//     either take a context.Context parameter or have a same-scope
//     sibling named <Name>Ctx that does. The budget-bounded simplex
//     kernels that deliberately stop at iteration granularity carry a
//     //lint:allow ctxflow explaining that design.
package ctxflow

import (
	"go/ast"
	"strings"

	"cellstream/internal/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// Packages restricts findings to the listed import paths; empty
	// means every package analyzed.
	Packages []string
}

// New returns the analyzer for cfg.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "ctxflow",
		Doc:  "flags context.Background()/TODO() in library code and exported Solve entry points with no ctx parameter or Ctx sibling",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	if len(cfg.Packages) > 0 {
		ok := false
		for _, p := range cfg.Packages {
			if p == pass.Pkg.Path() {
				ok = true
				break
			}
		}
		if !ok {
			return nil
		}
	}

	// Pass 1: collect every function/method name per receiver so the
	// <Name>Ctx sibling lookup works across files.
	// Key: receiver base type name ("" for package functions).
	declared := map[string]map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			recv := recvTypeName(fd)
			if declared[recv] == nil {
				declared[recv] = map[string]bool{}
			}
			declared[recv][fd.Name.Name] = true
		}
	}

	for _, file := range pass.Files {
		// Rule 1: detached contexts.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch analysis.FuncFullName(pass.TypesInfo, call) {
			case "context.Background", "context.TODO":
				pass.Reportf(call.Pos(),
					"%s in library code detaches the caller's cancellation; thread ctx through, or document the detachment with //lint:allow ctxflow",
					analysis.FuncFullName(pass.TypesInfo, call))
			}
			return true
		})

		// Rule 2: exported blocking Solve entry points.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || !strings.HasPrefix(fd.Name.Name, "Solve") {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Ctx") || hasCtxParam(pass, fd) {
				continue
			}
			if declared[recvTypeName(fd)][fd.Name.Name+"Ctx"] {
				continue // the ctx-taking variant exists beside it
			}
			pass.Reportf(fd.Name.Pos(),
				"exported blocking entry point %s has no context.Context parameter and no %sCtx sibling; cancellation cannot reach it",
				fd.Name.Name, fd.Name.Name)
		}
	}
	return nil
}

// recvTypeName returns the receiver's base type name, or "" for a
// package-level function.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// hasCtxParam reports whether any parameter of fd is a
// context.Context.
func hasCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && tv.Type != nil {
			if analysis.IsNamedType(tv.Type, "context", "Context") {
				return true
			}
		}
	}
	return false
}
