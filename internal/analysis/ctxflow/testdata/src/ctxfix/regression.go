package ctxfix

import "context"

// Regression: the pre-sweep milp.Solve convenience wrapper (milp.go)
// called context.Background() with no justification comment; the sweep
// kept the wrapper but documented the detachment with //lint:allow.

type problem struct{}
type result struct{}

// SolveWrapper mirrors the wrapper shape: the Ctx sibling satisfies
// rule 2, but the undocumented Background() still trips rule 1.
func SolveWrapper(p *problem) (*result, error) {
	return SolveWrapperCtx(context.Background(), p) // want "context.Background in library code"
}

// SolveWrapperCtx is the cancellable variant.
func SolveWrapperCtx(ctx context.Context, p *problem) (*result, error) {
	_ = ctx
	return &result{}, nil
}
