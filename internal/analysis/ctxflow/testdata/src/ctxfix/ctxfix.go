// Package ctxfix seeds ctxflow violations and approved patterns.
package ctxfix

import "context"

func detached() context.Context {
	return context.Background() // want "context.Background in library code"
}

func todo() context.Context {
	return context.TODO() // want "context.TODO in library code"
}

func threaded(ctx context.Context) context.Context {
	return ctx // threading the caller's ctx: approved
}

func allowedDetach() context.Context {
	//lint:allow ctxflow escape hatch fixture: documented detachment
	return context.Background()
}

// SolveBlocking is an exported blocking entry point with no ctx and no
// Ctx sibling.
func SolveBlocking(x int) int { // want "exported blocking entry point SolveBlocking"
	return x
}

// SolveWith takes a ctx parameter: approved.
func SolveWith(ctx context.Context, x int) int {
	_ = ctx
	return x
}

// SolvePaired has a ctx-taking sibling below: approved.
func SolvePaired(x int) int { return SolvePairedCtx(context.TODO(), x) } // want "context.TODO in library code"

// SolvePairedCtx is the cancellable variant of SolvePaired.
func SolvePairedCtx(ctx context.Context, x int) int {
	_ = ctx
	return x
}

type engine struct{}

// Solve on a receiver with no ctx and no sibling.
func (engine) Solve(x int) int { return x } // want "exported blocking entry point Solve"
