// Package statuscmp implements the schedlint analyzer finishing the
// PR 5 error-classification migration. lp.Status and milp.Status are
// solver-internal result codes; the layers above the solvers (core,
// assign, sched, the CLIs) must classify outcomes with the typed
// sentinels — errors.Is(err, lp.ErrInfeasible / ErrUnbounded /
// ErrIterLimit), Status.Err(), or purpose-named predicates the status
// types export — never by comparing or switching on Status values.
// Direct comparisons in consumer code were exactly the
// status-string-matching disease PR 5 removed: they silently go stale
// when the status enum grows (milp gained Feasible and NoSolution
// after the first consumers were written).
//
// The defining package of each status type may compare it freely (the
// solver's own control flow is what the codes are for), as may any
// package on the configured allow list — the B&B layer dispatches on
// lp.Status as its inner protocol, and the differential harness
// asserts status agreement by design.
package statuscmp

import (
	"go/ast"
	"go/token"

	"cellstream/internal/analysis"
)

// TypeRef names one status type to guard.
type TypeRef struct {
	PkgPath string
	Name    string
}

// Config scopes the analyzer.
type Config struct {
	// Types are the guarded status types. Empty picks the solver
	// defaults: cellstream/internal/lp.Status and
	// cellstream/internal/milp.Status.
	Types []TypeRef
	// AllowPackages may compare the guarded types in addition to each
	// type's own defining package.
	AllowPackages []string
}

// DefaultTypes are the solver status enums schedlint guards.
var DefaultTypes = []TypeRef{
	{PkgPath: "cellstream/internal/lp", Name: "Status"},
	{PkgPath: "cellstream/internal/milp", Name: "Status"},
}

// New returns the analyzer for cfg.
func New(cfg Config) *analysis.Analyzer {
	if len(cfg.Types) == 0 {
		cfg.Types = DefaultTypes
	}
	return &analysis.Analyzer{
		Name: "statuscmp",
		Doc:  "flags ==/!=/switch on solver Status values outside the solver layers; classify with errors.Is on the lp sentinels or Status methods",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	path := pass.Pkg.Path()
	for _, p := range cfg.AllowPackages {
		if p == path {
			return nil
		}
	}
	match := func(e ast.Expr) *TypeRef {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Type == nil {
			return nil
		}
		for i := range cfg.Types {
			t := &cfg.Types[i]
			if t.PkgPath == path {
				continue // the defining package owns its codes
			}
			if analysis.IsNamedType(tv.Type, t.PkgPath, t.Name) {
				return t
			}
		}
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if t := match(n.X); t != nil {
					pass.Reportf(n.OpPos,
						"comparing %s.%s outside its solver layer; classify with errors.Is on the lp sentinels (or a %s method like Err)",
						t.PkgPath, t.Name, t.Name)
					return true
				}
				if t := match(n.Y); t != nil {
					pass.Reportf(n.OpPos,
						"comparing %s.%s outside its solver layer; classify with errors.Is on the lp sentinels (or a %s method like Err)",
						t.PkgPath, t.Name, t.Name)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				if t := match(n.Tag); t != nil {
					pass.Reportf(n.Switch,
						"switching on %s.%s outside its solver layer; classify with errors.Is on the lp sentinels (or a %s method like Err)",
						t.PkgPath, t.Name, t.Name)
				}
			}
			return true
		})
	}
	return nil
}
