package statuscmp_test

import (
	"testing"

	"cellstream/internal/analysis/analysistest"
	"cellstream/internal/analysis/statuscmp"
)

func TestStatuscmp(t *testing.T) {
	a := statuscmp.New(statuscmp.Config{AllowPackages: []string{"statusallowed"}})
	analysistest.Run(t, "testdata", a, "statusfix", "statusallowed")
}
