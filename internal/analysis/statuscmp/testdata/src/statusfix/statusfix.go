// Package statusfix seeds statuscmp violations against the real solver
// status types.
package statusfix

import (
	"errors"

	"cellstream/internal/lp"
	"cellstream/internal/milp"
)

func compareLP(s lp.Status) bool {
	return s == lp.Optimal // want "comparing cellstream/internal/lp.Status"
}

func compareLPNeq(s lp.Status) bool {
	return s != lp.Optimal // want "comparing cellstream/internal/lp.Status"
}

func switchLP(s lp.Status) string {
	switch s { // want "switching on cellstream/internal/lp.Status"
	case lp.Optimal:
		return "ok"
	default:
		return "bad"
	}
}

func compareMILP(s milp.Status) bool {
	return s == milp.Optimal // want "comparing cellstream/internal/milp.Status"
}

func classifyApproved(s lp.Status) bool {
	return errors.Is(s.Err(), lp.ErrInfeasible) // sentinel classification: approved
}

func provedApproved(s milp.Status) bool {
	return s.Proved() // status method: approved
}

func allowedCompare(s lp.Status) bool {
	//lint:allow statuscmp escape hatch fixture: a protocol layer may dispatch on the raw code
	return s == lp.Optimal
}
