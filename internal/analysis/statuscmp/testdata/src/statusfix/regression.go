package statusfix

import (
	"cellstream/internal/lp"
	"cellstream/internal/milp"
)

// Regression: the pre-sweep sched facade (sched/root.go) gated root LP
// reuse on `sol.Status != lp.Optimal`, and sched/session.go proved a
// sweep point with `sres.Status == milp.Optimal` — both replaced by
// Status.Err() / Status.Proved() in the sweep.

func rootRegression(sol *lp.Solution) bool {
	return sol.Status != lp.Optimal || sol.Basis == nil // want "comparing cellstream/internal/lp.Status"
}

func sessionRegression(status milp.Status) bool {
	return status == milp.Optimal // want "comparing cellstream/internal/milp.Status"
}
