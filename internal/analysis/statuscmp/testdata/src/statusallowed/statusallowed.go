// Package statusallowed stands in for a configured protocol layer
// (like internal/milp over lp.Status): comparisons here are approved by
// Config.AllowPackages, so this file expects no diagnostics.
package statusallowed

import "cellstream/internal/lp"

func dispatch(s lp.Status) bool {
	return s == lp.Optimal // allowed package: no finding
}
