// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface the schedlint suite needs: an
// Analyzer is a named check with a Run function, a Pass hands it one
// type-checked package, and diagnostics are position + message pairs.
// It exists because this module is deliberately stdlib-only; the five
// analyzers under internal/analysis/* and the cmd/schedlint
// multichecker drive it, and internal/analysis/analysistest runs
// want-comment fixture suites against it, mirroring the x/tools
// workflow closely enough that a later migration would be mechanical.
//
// The escape hatch: a comment of the form
//
//	//lint:allow <name>[,<name>...] [justification]
//
// suppresses diagnostics of the named analyzers on the comment's own
// line and on the line directly below it (so it works both as a
// trailing comment and as a standalone comment above the finding).
// Allow comments are for documented, deliberate deviations — the
// justification text is required by convention and reviewed like code.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in lint:allow
	// comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and
	// the approved fix.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // the package's non-test files
	Pkg       *types.Package
	TypesInfo *types.Info

	allow  map[string]map[int][]string // filename -> line -> analyzer names
	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a lint:allow comment
// suppresses this analyzer there.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) allowedAt(pos token.Position) bool {
	lines := p.allow[pos.Filename]
	if lines == nil {
		return false
	}
	for _, name := range lines[pos.Line] {
		if name == p.Analyzer.Name {
			return true
		}
	}
	return false
}

// buildAllow indexes every lint:allow comment of the package: the
// named analyzers are suppressed on the comment's line and the next.
func buildAllow(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	allow := map[string]map[int][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allow[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					allow[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], names...)
				m[pos.Line+1] = append(m[pos.Line+1], names...)
			}
		}
	}
	return allow
}

// parseAllow extracts the analyzer names from a "//lint:allow a,b why"
// comment, or nil if the comment is not an allow directive.
func parseAllow(text string) []string {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "lint:allow")
	if !ok {
		return nil
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil
	}
	first := strings.Fields(rest)[0]
	var names []string
	for _, n := range strings.Split(first, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// Run applies the analyzers to the package and returns their findings
// sorted by position then analyzer name.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allow := buildAllow(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			allow:     allow,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// --- shared type helpers used by the analyzer packages ---

// IsNamedType reports whether t (after stripping one pointer) is the
// named type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// IsFloat reports whether t's underlying type is a floating-point
// basic type (typed or untyped).
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// FuncFullName resolves a call expression to the full name of the
// static callee ("time.Now", "(*sync.Mutex).Lock"), or "" when the
// callee is not a statically known function.
func FuncFullName(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}
