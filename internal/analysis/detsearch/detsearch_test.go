package detsearch_test

import (
	"testing"

	"cellstream/internal/analysis/analysistest"
	"cellstream/internal/analysis/detsearch"
)

func TestDetsearch(t *testing.T) {
	analysistest.Run(t, "testdata", detsearch.New(detsearch.Config{}), "detfix")
}
