// Package detfix seeds detsearch violations and approved patterns.
package detfix

import (
	"math/rand"
	"sort"
	"time"
)

func mapIteration(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m { // want "iteration over an unordered map"
		sum += v
	}
	return sum
}

func sliceIteration(s []float64) float64 {
	sum := 0.0
	for _, v := range s { // slices iterate in order: approved
		sum += v
	}
	return sum
}

func sortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	//lint:allow detsearch order-insensitive key collection; the slice is sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func wallClock() time.Time {
	return time.Now() // want "time.Now in search code"
}

func globalRand() int {
	return rand.Intn(10) // want "math/rand.Intn uses the process-global source"
}

func seededRand() int {
	r := rand.New(rand.NewSource(42)) // explicit seeded generator: approved
	return r.Intn(10)                 // method on *rand.Rand: approved
}
