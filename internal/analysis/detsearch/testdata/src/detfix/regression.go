package detfix

// Regression: the pre-sweep duplicate-column merge of
// internal/lp/presolve.go bucketed columns by a row-pattern hash and
// then ranged over the bucket map directly — making the merge order,
// and with it the postsolve record stack, differ between otherwise
// identical runs. The sweep sorts the keys first.

func dupColumnMerge(buckets map[uint64][]int, merge func(j, k int)) {
	for _, cand := range buckets { // want "iteration over an unordered map"
		for a := 0; a < len(cand); a++ {
			for b := a + 1; b < len(cand); b++ {
				merge(cand[a], cand[b])
			}
		}
	}
}
