// Package detsearch implements the schedlint analyzer protecting the
// byte-for-byte determinism of the branch-and-bound search at the
// source level. The determinism suite (internal/milp's byte-for-byte
// tests, sched's concurrent-vs-serial race hammer) pins the property
// at the output; this analyzer pins the three source patterns that
// historically threaten it inside the solver packages:
//
//  1. range over a map — Go randomizes iteration order, so any map
//     iteration feeding branching, cut, or presolve decisions (or
//     even just the order of postsolve records) makes two runs
//     diverge. Sort the keys first, or iterate a slice.
//  2. time.Now — wall-clock in search code turns node selection and
//     budgets into a race with the scheduler. Deadlines belong to the
//     context at the layer above.
//  3. the global math/rand source (rand.Intn, rand.Float64, ... as
//     package functions) — unseeded and process-global. Use an
//     explicitly seeded *rand.Rand threaded through the search state.
//
// A provably order-insensitive map iteration (pure accumulation into
// a commutative reduction) may carry a //lint:allow detsearch with
// the proof sketch in the justification.
package detsearch

import (
	"go/ast"
	"go/types"
	"strings"

	"cellstream/internal/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// Packages restricts findings to the listed import paths; empty
	// means every package analyzed.
	Packages []string
}

// New returns the analyzer for cfg.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "detsearch",
		Doc:  "flags nondeterminism sources in search code: unordered map iteration, time.Now, and the global math/rand source",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	if len(cfg.Packages) > 0 {
		ok := false
		for _, p := range cfg.Packages {
			if p == pass.Pkg.Path() {
				ok = true
				break
			}
		}
		if !ok {
			return nil
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Range,
						"iteration over an unordered map in search code; sort the keys first so results replay byte-for-byte")
				}
			case *ast.CallExpr:
				full := analysis.FuncFullName(pass.TypesInfo, n)
				switch {
				case full == "time.Now":
					pass.Reportf(n.Pos(),
						"time.Now in search code makes node selection wall-clock dependent; use context deadlines at the caller")
				case strings.HasPrefix(full, "math/rand."):
					name := strings.TrimPrefix(full, "math/rand.")
					// Constructors of explicitly seeded generators are
					// the approved pattern; everything else on the
					// package is the shared global source.
					if name != "New" && name != "NewSource" && !strings.Contains(name, ")") {
						pass.Reportf(n.Pos(),
							"math/rand.%s uses the process-global source; thread an explicitly seeded *rand.Rand through the search", name)
					}
				}
			}
			return true
		})
	}
	return nil
}
