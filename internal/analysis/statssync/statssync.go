// Package statssync implements the schedlint analyzer guarding the
// solver-statistics aggregation discipline. milp.Stats is shared
// mutable state: parallel branch-and-bound workers fold their LP
// counters into one struct, so every write must go through the
// approved aggregation methods on *Stats (add, Merge, and the note*
// helpers), which are called at sites that hold the search mutex and
// are hammered by the -race determinism suite. A bare field write
// (s.stats.Nodes++) added elsewhere compiles fine and races silently —
// that is the bug class this analyzer removes at the source level.
//
// Rules, per guarded type:
//
//   - MethodsOnly (milp.Stats): fields may be written only inside
//     methods whose receiver is the Stats type itself, in its defining
//     package.
//   - package-internal (lp.Stats): the defining package builds its
//     per-solve Stats single-threaded and may write fields freely;
//     every other package must aggregate through the exported methods
//     (Add) instead of poking fields.
package statssync

import (
	"go/ast"
	"go/types"

	"cellstream/internal/analysis"
)

// TypeRef names one guarded stats type.
type TypeRef struct {
	PkgPath string
	Name    string
	// MethodsOnly requires even the defining package to write fields
	// only inside methods with a Stats receiver.
	MethodsOnly bool
}

// Config scopes the analyzer.
type Config struct {
	// Types are the guarded stats types. Empty picks the solver
	// defaults: lp.Stats (package-internal) and milp.Stats
	// (methods-only).
	Types []TypeRef
}

// DefaultTypes are the solver stats structs schedlint guards.
var DefaultTypes = []TypeRef{
	{PkgPath: "cellstream/internal/lp", Name: "Stats", MethodsOnly: false},
	{PkgPath: "cellstream/internal/milp", Name: "Stats", MethodsOnly: true},
}

// New returns the analyzer for cfg.
func New(cfg Config) *analysis.Analyzer {
	if len(cfg.Types) == 0 {
		cfg.Types = DefaultTypes
	}
	return &analysis.Analyzer{
		Name: "statssync",
		Doc:  "flags writes to solver Stats counter fields outside the approved aggregation methods (parallel workers share these structs)",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	path := pass.Pkg.Path()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Writes inside a method on a guarded type (in its defining
			// package) are the approved aggregation path.
			exemptAll := false
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				if tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]; ok && tv.Type != nil {
					for _, t := range cfg.Types {
						if t.PkgPath == path && analysis.IsNamedType(tv.Type, t.PkgPath, t.Name) {
							exemptAll = true
						}
					}
				}
			}
			if exemptAll {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						check(pass, cfg, lhs)
					}
				case *ast.IncDecStmt:
					check(pass, cfg, n.X)
				}
				return true
			})
		}
	}
	return nil
}

// check reports lhs when it is a field selector on a guarded stats
// type written outside its approved scope.
func check(pass *analysis.Pass, cfg Config, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Only field writes count; x.method() cannot be an lvalue anyway.
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() != types.FieldVal {
		return
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return
	}
	path := pass.Pkg.Path()
	for _, t := range cfg.Types {
		if !analysis.IsNamedType(tv.Type, t.PkgPath, t.Name) {
			continue
		}
		if t.PkgPath == path && !t.MethodsOnly {
			return // package-internal construction is approved
		}
		pass.Reportf(sel.Sel.Pos(),
			"direct write to %s.%s field %s outside the approved aggregation methods; add or use a method on *%s (workers share this struct)",
			t.PkgPath, t.Name, sel.Sel.Name, t.Name)
		return
	}
}
