package statsfix

import (
	"sync"

	"cellstream/internal/milp"
)

// Regression: the pre-sweep strong-branching path of
// internal/milp/branch.go bumped StrongBranchSolves directly on the
// shared search stats (correctly under the mutex — but nothing forced
// the next write site to take the lock). The sweep moved every counter
// mutation into note* methods on *Stats.

type searchState struct {
	mu    sync.Mutex
	stats milp.Stats
}

func (s *searchState) recordStrongBranch() {
	s.mu.Lock()
	s.stats.StrongBranchSolves++ // want "direct write to cellstream/internal/milp.Stats field StrongBranchSolves"
	s.mu.Unlock()
}
