// Package statsfix seeds statssync violations against the real solver
// stats types.
package statsfix

import (
	"cellstream/internal/lp"
	"cellstream/internal/milp"
)

func directMILPWrite(st *milp.Stats) {
	st.CutRounds++ // want "direct write to cellstream/internal/milp.Stats field CutRounds"
}

func directMILPAssign(st *milp.Stats, n int) {
	st.CutsActive += n // want "direct write to cellstream/internal/milp.Stats field CutsActive"
}

func directLPWrite(st *lp.Stats) {
	st.Iterations++ // want "direct write to cellstream/internal/lp.Stats field Iterations"
}

func mergeApproved(st *milp.Stats, o milp.Stats) {
	st.Merge(o) // aggregation method: approved
}

func addApproved(st *lp.Stats, o lp.Stats) {
	st.Add(o) // aggregation method: approved
}

func readApproved(st *milp.Stats) int {
	return st.CutRounds // reads are fine; only writes race
}

func allowedWrite(st *milp.Stats) {
	//lint:allow statssync escape hatch fixture: single-threaded setup code
	st.CutRounds++
}
