package statssync_test

import (
	"testing"

	"cellstream/internal/analysis/analysistest"
	"cellstream/internal/analysis/statssync"
)

func TestStatssync(t *testing.T) {
	analysistest.Run(t, "testdata", statssync.New(statssync.Config{}), "statsfix")
}
