package core

import (
	"context"
	"fmt"
	"time"

	"cellstream/internal/graph"
	"cellstream/internal/milp"
	"cellstream/internal/platform"
)

// SolveOptions tunes the MILP-based mapping computation.
type SolveOptions struct {
	// RelGap is the relative optimality gap; 0 selects the paper's 5 %
	// CPLEX setting. Use Exact to force proven optimality.
	RelGap float64
	// Exact forces RelGap = 0.
	Exact bool
	// TimeLimit bounds the solve; 0 means 60 s, matching the paper's
	// observation that resolutions stay below one minute.
	TimeLimit time.Duration
	// MaxNodes bounds branch-and-bound nodes (0 = solver default).
	MaxNodes int
	// Literal selects the paper-literal β formulation instead of the
	// compact one. Only sensible for small graphs.
	Literal bool
	// Seed optionally warm-starts the search with a feasible mapping
	// (e.g. from a greedy heuristic). The all-on-PPE mapping is always
	// added as a fallback incumbent.
	Seed Mapping
	// ColdStart disables basis reuse and presolve inside the
	// branch-and-bound (for ablations and benchmarks).
	ColdStart bool
	// Workers is the number of concurrent branch-and-bound workers
	// (0 = engine default; 1 forces the deterministic serial search).
	Workers int
	// DisableCuts turns off Gomory/cover cut separation in the
	// branch-and-bound (for ablations and benchmarks).
	DisableCuts bool
	// BranchMostFractional restores most-fractional branching instead
	// of pseudocosts with reliability strong branching (for ablations
	// and benchmarks).
	BranchMostFractional bool
}

// SolveResult is the outcome of SolveMILP.
type SolveResult struct {
	Mapping Mapping
	Report  *Report
	Status  milp.Status
	// PeriodBound is a proven lower bound on the optimal period; the
	// achieved period is within Gap of it.
	PeriodBound float64
	Gap         float64
	Nodes       int
	SolveTime   time.Duration
	// LPStats aggregates LP-solver counters (pivots, warm-start hits,
	// presolve reductions) across every node re-solve.
	LPStats milp.Stats
}

// SolveMILP computes a throughput-optimal (within the gap) mapping by
// solving the mixed linear program of §5 with a background context.
//
// Formulations are memoized per (graph, platform) pointer pair, so the
// graph and platform must not be mutated between solves that reuse the
// same objects — mutate a copy (e.g. platform.WithSPEs) instead, as the
// experiment harness does.
func SolveMILP(g *graph.Graph, plat *platform.Platform, opt SolveOptions) (*SolveResult, error) {
	//lint:allow ctxflow documented no-ctx convenience wrapper; SolveMILPCtx is the cancellable entry point
	return SolveMILPCtx(context.Background(), g, plat, opt)
}

// SolveMILPCtx is SolveMILP under a context: cancellation or a deadline
// stops the branch-and-bound cleanly, returning the best incumbent
// found so far. opt.TimeLimit is combined with any ctx deadline (the
// earlier one wins).
func SolveMILPCtx(ctx context.Context, g *graph.Graph, plat *platform.Platform, opt SolveOptions) (*SolveResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	relGap := opt.RelGap
	if relGap == 0 && !opt.Exact {
		relGap = 0.05
	}
	timeLimit := opt.TimeLimit
	if timeLimit == 0 {
		timeLimit = 60 * time.Second
	}

	// Formulations are cached per (graph, platform): repeated solves of
	// the same instance (sweeps, strategy comparisons, warm-vs-cold
	// runs) reuse the constraint rows and only the bounds move inside
	// the branch-and-bound workers' clones.
	f := CachedFormulation(g, plat, opt.Literal)

	// Warm start: caller's seed if feasible, else all-on-PPE (always
	// feasible: no cross transfers, no SPE buffers).
	seed := opt.Seed
	if seed != nil {
		if rep, err := Evaluate(g, plat, seed); err != nil || !rep.Feasible {
			seed = nil
		}
	}
	if seed == nil {
		seed = AllOnPPE(g)
	}
	inc, err := f.EncodeMapping(seed)
	if err != nil {
		return nil, fmt.Errorf("core: encoding warm start: %w", err)
	}

	start := time.Now()
	res, err := milp.SolveCtx(ctx, f.Problem, milp.Options{
		RelGap:               relGap,
		TimeLimit:            timeLimit,
		MaxNodes:             opt.MaxNodes,
		Incumbent:            inc,
		ColdStart:            opt.ColdStart,
		Workers:              opt.Workers,
		DisableCuts:          opt.DisableCuts,
		BranchMostFractional: opt.BranchMostFractional,
	})
	if err != nil {
		return nil, fmt.Errorf("core: MILP solve: %w", err)
	}
	elapsed := time.Since(start)
	if serr := res.Status.Err(); serr != nil {
		// Wrapping the lp sentinel lets callers classify the failure
		// with errors.Is(err, lp.ErrInfeasible / lp.ErrIterLimit)
		// instead of matching the message.
		return nil, fmt.Errorf("core: MILP returned %v for a problem with a trivial feasible mapping: %w", res.Status, serr)
	}

	m := f.DecodeMapping(res.X)
	rep, err := Evaluate(g, plat, m)
	if err != nil {
		return nil, err
	}
	if !rep.Feasible {
		// Decoding cannot produce an infeasible mapping from an integral
		// solution; guard against solver tolerance artifacts by falling
		// back to the seed.
		m = seed
		if rep, err = Evaluate(g, plat, m); err != nil {
			return nil, err
		}
	}
	return &SolveResult{
		Mapping:     m,
		Report:      rep,
		Status:      res.Status,
		PeriodBound: res.Bound,
		Gap:         res.Gap,
		Nodes:       res.Nodes,
		SolveTime:   elapsed,
		LPStats:     res.Stats,
	}, nil
}
