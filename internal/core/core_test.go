package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

func TestFirstPeriodsFig3(t *testing.T) {
	g := graph.Fig3Example()
	fp := FirstPeriods(g)
	// firstPeriod(T1) = 0; T2 (peek 0): 0+0+2 = 2; T3 (peek 1): 0+1+2 = 3.
	want := []int{0, 2, 3}
	for i, w := range want {
		if fp[i] != w {
			t.Errorf("firstPeriod(T%d) = %d, want %d", i+1, fp[i], w)
		}
	}
}

func TestFirstPeriodsChain(t *testing.T) {
	g := graph.UniformChain("chain", 4, 1, 1, 100)
	fp := FirstPeriods(g)
	want := []int{0, 2, 4, 6}
	for i, w := range want {
		if fp[i] != w {
			t.Errorf("firstPeriod(%d) = %d, want %d", i, fp[i], w)
		}
	}
}

func TestFirstPeriodsPeekAccumulates(t *testing.T) {
	g := &graph.Graph{Name: "peeks"}
	a := g.AddTask(graph.Task{WPPE: 1, WSPE: 1})
	b := g.AddTask(graph.Task{WPPE: 1, WSPE: 1, Peek: 3})
	c := g.AddTask(graph.Task{WPPE: 1, WSPE: 1, Peek: 2})
	g.AddEdge(a, b, 10)
	g.AddEdge(b, c, 10)
	fp := FirstPeriods(g)
	if fp[a] != 0 || fp[b] != 5 || fp[c] != 9 {
		t.Errorf("firstPeriods = %v, want [0 5 9]", fp)
	}
}

func TestBufferSizes(t *testing.T) {
	g := graph.Fig3Example() // edges T1->T2 (fp gap 2), T1->T3 (fp gap 3)
	bufs := BufferSizes(g)
	if bufs[0] != 2*1024 {
		t.Errorf("buff(1,2) = %d, want %d", bufs[0], 2*1024)
	}
	if bufs[1] != 3*1024 {
		t.Errorf("buff(1,3) = %d, want %d", bufs[1], 3*1024)
	}
}

func TestEvaluateComputeBound(t *testing.T) {
	// Two tasks, both on PPE0: period = sum of wPPE.
	g := graph.UniformChain("c2", 2, 3, 1, 1024)
	plat := platform.Cell(1, 2)
	rep, err := Evaluate(g, plat, Mapping{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Period != 6 {
		t.Errorf("period = %v, want 6", rep.Period)
	}
	if !rep.Feasible {
		t.Errorf("unexpected infeasibility: %v", rep.Violations)
	}
	// Split across PPE and SPE: period = max(3, 1, comm) = 3.
	rep, err = Evaluate(g, plat, Mapping{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Period != 3 {
		t.Errorf("split period = %v, want 3", rep.Period)
	}
	if rep.Bottleneck != "compute(PPE0)" {
		t.Errorf("bottleneck = %q", rep.Bottleneck)
	}
}

func TestEvaluateCommBound(t *testing.T) {
	// Huge edge crossing PEs: period limited by bw.
	g := graph.UniformChain("c2", 2, 1e-9, 1e-9, 250e9) // 10 s at 25 GB/s
	plat := platform.Cell(1, 1)
	plat.LocalStore = 1 << 62 // lift the memory constraint for this test
	rep, err := Evaluate(g, plat, Mapping{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Period-10) > 1e-9 {
		t.Errorf("period = %v, want 10", rep.Period)
	}
}

func TestEvaluateMemoryViolation(t *testing.T) {
	// A single fat edge whose buffers exceed the local store.
	g := graph.UniformChain("fat", 2, 1, 1, 200*1024) // buffer 2×200 kB > 208 kB
	plat := platform.Cell(1, 1)
	rep, err := Evaluate(g, plat, Mapping{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible {
		t.Fatalf("expected local-store violation, got feasible (buffers %v, cap %d)",
			rep.BufferBytes, plat.BufferCapacity())
	}
}

func TestEvaluateDMAInViolation(t *testing.T) {
	// 17 producers on the PPE feeding one consumer on an SPE exceeds the
	// 16-deep DMA stack.
	g := &graph.Graph{Name: "fanin"}
	var producers []graph.TaskID
	for i := 0; i < 17; i++ {
		producers = append(producers, g.AddTask(graph.Task{WPPE: 1, WSPE: 1}))
	}
	sink := g.AddTask(graph.Task{WPPE: 1, WSPE: 1})
	for _, p := range producers {
		g.AddEdge(p, sink, 8)
	}
	plat := platform.Cell(1, 1)
	m := make(Mapping, g.NumTasks())
	m[sink] = 1
	rep, err := Evaluate(g, plat, m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible || rep.DMAIn[1] != 17 {
		t.Errorf("feasible=%v DMAIn=%v, want violation with 17", rep.Feasible, rep.DMAIn)
	}
}

func TestEvaluateDMAToPPEViolation(t *testing.T) {
	// 9 tasks on one SPE each feeding a task on the PPE exceeds the
	// 8-deep PPE-issued DMA stack.
	g := &graph.Graph{Name: "fanout"}
	var onSPE, onPPE []graph.TaskID
	for i := 0; i < 9; i++ {
		onSPE = append(onSPE, g.AddTask(graph.Task{WPPE: 1, WSPE: 1}))
	}
	for i := 0; i < 9; i++ {
		to := g.AddTask(graph.Task{WPPE: 1, WSPE: 1})
		onPPE = append(onPPE, to)
		g.AddEdge(onSPE[i], to, 8)
	}
	plat := platform.Cell(1, 1)
	m := make(Mapping, g.NumTasks())
	for _, k := range onSPE {
		m[k] = 1
	}
	rep, err := Evaluate(g, plat, m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible || rep.DMAToPPE[1] != 9 {
		t.Errorf("feasible=%v DMAToPPE=%v, want violation with 9", rep.Feasible, rep.DMAToPPE)
	}
}

func TestMappingValidate(t *testing.T) {
	g := graph.UniformChain("c", 3, 1, 1, 1)
	plat := platform.Cell(1, 1)
	if err := (Mapping{0, 1}).Validate(g, plat); err == nil {
		t.Error("short mapping accepted")
	}
	if err := (Mapping{0, 1, 5}).Validate(g, plat); err == nil {
		t.Error("out-of-range PE accepted")
	}
	if err := (Mapping{0, 1, 1}).Validate(g, plat); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}
}

// bruteForceMapping enumerates every mapping of g on plat and returns the
// best feasible period.
func bruteForceMapping(t *testing.T, g *graph.Graph, plat *platform.Platform) (Mapping, float64) {
	t.Helper()
	n := plat.NumPE()
	k := g.NumTasks()
	best := Mapping(nil)
	bestT := math.Inf(1)
	m := make(Mapping, k)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			rep, err := Evaluate(g, plat, m)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Feasible && rep.Period < bestT {
				bestT = rep.Period
				best = m.Clone()
			}
			return
		}
		for pe := 0; pe < n; pe++ {
			m[i] = pe
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestT
}

func randomGraph(rng *rand.Rand, k int) *graph.Graph {
	g := &graph.Graph{Name: "rand"}
	for i := 0; i < k; i++ {
		g.AddTask(graph.Task{
			WPPE:       1 + rng.Float64()*4,
			WSPE:       0.5 + rng.Float64()*4,
			Peek:       rng.Intn(2),
			ReadBytes:  float64(rng.Intn(2)) * 1024,
			WriteBytes: float64(rng.Intn(2)) * 1024,
		})
	}
	for to := 1; to < k; to++ {
		// Ensure connectivity, then sprinkle extra edges.
		from := rng.Intn(to)
		g.AddEdge(graph.TaskID(from), graph.TaskID(to), float64(1+rng.Intn(32))*1024)
		if extra := rng.Intn(to); extra != from && rng.Intn(2) == 0 {
			g.AddEdge(graph.TaskID(extra), graph.TaskID(to), float64(1+rng.Intn(32))*1024)
		}
	}
	return g
}

func TestSolveMILPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 5)
		plat := platform.Cell(1, 2)
		// Slow the interfaces so communication actually matters.
		plat.BW = 2048
		_, wantT := bruteForceMapping(t, g, plat)
		res, err := SolveMILP(g, plat, SolveOptions{Exact: true, TimeLimit: 2 * time.Minute})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(res.Report.Period-wantT) > 1e-6*(1+wantT) {
			t.Errorf("trial %d: MILP period %v, brute force %v (mapping %v)",
				trial, res.Report.Period, wantT, res.Mapping)
		}
	}
}

func TestLiteralMatchesCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 3; trial++ {
		g := randomGraph(rng, 4)
		plat := platform.Cell(1, 2)
		plat.BW = 4096
		resC, err := SolveMILP(g, plat, SolveOptions{Exact: true, TimeLimit: 2 * time.Minute})
		if err != nil {
			t.Fatalf("compact: %v", err)
		}
		resL, err := SolveMILP(g, plat, SolveOptions{Exact: true, Literal: true, TimeLimit: 2 * time.Minute})
		if err != nil {
			t.Fatalf("literal: %v", err)
		}
		if math.Abs(resC.Report.Period-resL.Report.Period) > 1e-6*(1+resC.Report.Period) {
			t.Errorf("trial %d: compact period %v != literal period %v",
				trial, resC.Report.Period, resL.Report.Period)
		}
	}
}

// TestNPReduction reproduces the construction of Theorem 1: a 2-machine
// scheduling instance becomes a chain with zero communication; the
// optimal period must equal the optimal makespan of the scheduling
// instance (found by enumeration).
func TestNPReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 4; trial++ {
		n := 6
		l1 := make([]float64, n)
		l2 := make([]float64, n)
		for i := range l1 {
			l1[i] = float64(1 + rng.Intn(9))
			l2[i] = float64(1 + rng.Intn(9))
		}
		// Brute-force 2-machine optimum.
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			var m1, m2 float64
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					m1 += l1[i]
				} else {
					m2 += l2[i]
				}
			}
			if v := math.Max(m1, m2); v < best {
				best = v
			}
		}
		// Chain with zero-size data, wPPE = l1, wSPE = l2.
		g := &graph.Graph{Name: "reduction"}
		for i := 0; i < n; i++ {
			g.AddTask(graph.Task{WPPE: l1[i], WSPE: l2[i]})
		}
		for i := 0; i+1 < n; i++ {
			g.AddEdge(graph.TaskID(i), graph.TaskID(i+1), 0)
		}
		res, err := SolveMILP(g, platform.Cell(1, 1), SolveOptions{Exact: true, TimeLimit: 2 * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Report.Period-best) > 1e-6 {
			t.Errorf("trial %d: period %v, 2-machine optimum %v", trial, res.Report.Period, best)
		}
	}
}

func TestSolveRespectsGap(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	tasks := 10
	opt := SolveOptions{RelGap: 0.05}
	if testing.Short() {
		// The assertions below hold for interrupted searches too, so a
		// tight budget keeps -short (and -race) runs fast.
		tasks = 8
		opt.TimeLimit = time.Second
	}
	g := randomGraph(rng, tasks)
	plat := platform.Cell(1, 3)
	plat.BW = 8192
	res, err := SolveMILP(g, plat, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeriodBound > res.Report.Period+1e-9 {
		t.Errorf("bound %v exceeds achieved period %v", res.PeriodBound, res.Report.Period)
	}
	if res.Gap > 0.05+1e-6 && res.Status.String() == "optimal" {
		t.Errorf("claimed optimal with gap %v", res.Gap)
	}
}

func TestEncodeMappingRoundTrip(t *testing.T) {
	g := graph.Fig2bExample()
	plat := platform.Cell(1, 3)
	for _, kind := range []string{"compact", "literal"} {
		var f *Formulation
		if kind == "compact" {
			f = FormulateCompact(g, plat)
		} else {
			f = FormulateLiteral(g, plat)
		}
		m := make(Mapping, g.NumTasks())
		for k := range m {
			m[k] = k % plat.NumPE()
		}
		x, err := f.EncodeMapping(m)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		got := f.DecodeMapping(x)
		for k := range m {
			if got[k] != m[k] {
				t.Errorf("%s: task %d decoded to %d, want %d", kind, k, got[k], m[k])
			}
		}
		rep, _ := Evaluate(g, plat, m)
		if math.Abs(x[0]-rep.Period) > 1e-9 {
			t.Errorf("%s: encoded T %v, want %v", kind, x[0], rep.Period)
		}
	}
}

func TestSpeedup(t *testing.T) {
	g := graph.UniformChain("c2", 2, 2, 1, 8)
	plat := platform.Cell(1, 2)
	rep, err := Evaluate(g, plat, Mapping{1, 2}) // both on SPEs
	if err != nil {
		t.Fatal(err)
	}
	s, err := Speedup(g, plat, rep)
	if err != nil {
		t.Fatal(err)
	}
	// PPE-only period 4, SPE split period = max(1, 1, comm≈0) = 1 → 4×.
	if math.Abs(s-4) > 1e-6 {
		t.Errorf("speedup = %v, want 4", s)
	}
}

func TestAllOnPPEAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 12)
		rep, err := Evaluate(g, platform.QS22(), AllOnPPE(g))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Feasible {
			t.Errorf("all-on-PPE infeasible: %v", rep.Violations)
		}
	}
}
