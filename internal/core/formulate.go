package core

import (
	"fmt"
	"math"
	"sync"

	"cellstream/internal/graph"
	"cellstream/internal/lp"
	"cellstream/internal/milp"
	"cellstream/internal/platform"
)

// Formulation is a mixed linear program whose optimum is a
// throughput-optimal mapping, plus the bookkeeping needed to decode
// solver output back into a Mapping and to encode warm starts.
type Formulation struct {
	Problem *milp.Problem
	Kind    string // "compact" or "literal"

	g    *graph.Graph
	plat *platform.Platform
	n    int // PEs
	k    int // tasks
	e    int // edges
}

// Formulation construction is pure in (graph, platform, kind), and a
// Formulation is never mutated by a solve (branch-and-bound workers
// clone the LP before tightening bounds), so repeated solves of the
// same instance — Fig. 6/7/8 sweeps, CompareStrategies, heuristic
// seeding, warm-vs-cold ablations — can share one Formulation and its
// constraint rows instead of rebuilding them. CachedFormulation keys
// on the (graph, platform) pointer identities: callers must not mutate
// a graph or platform after formulating it (the experiment harness
// builds fresh objects per variant, so identity keying is exact there).
const formCacheCap = 64

type formKey struct {
	g       *graph.Graph
	plat    *platform.Platform
	literal bool
}

var (
	formMu    sync.Mutex
	formCache = map[formKey]*Formulation{}
	formOrder []formKey // FIFO eviction order
)

// CachedFormulation returns the memoized Formulation for the pair,
// building it on the first request. The cache holds at most
// formCacheCap entries and evicts oldest-first.
func CachedFormulation(g *graph.Graph, plat *platform.Platform, literal bool) *Formulation {
	key := formKey{g: g, plat: plat, literal: literal}
	formMu.Lock()
	if f, ok := formCache[key]; ok {
		formMu.Unlock()
		return f
	}
	formMu.Unlock()

	// Build outside the lock: formulation is pure, and a duplicate
	// build on a race is cheaper than serializing every solve.
	var f *Formulation
	if literal {
		f = FormulateLiteral(g, plat)
	} else {
		f = FormulateCompact(g, plat)
	}

	formMu.Lock()
	if prev, ok := formCache[key]; ok {
		formMu.Unlock()
		return prev
	}
	if len(formOrder) >= formCacheCap {
		oldest := formOrder[0]
		formOrder = formOrder[1:]
		delete(formCache, oldest)
	}
	formCache[key] = f
	formOrder = append(formOrder, key)
	formMu.Unlock()
	return f
}

// Variable indexing. T is variable 0; α^k_i follows, then the
// formulation-specific communication variables.
func (f *Formulation) tVar() int             { return 0 }
func (f *Formulation) alphaVar(k, i int) int { return 1 + k*f.n + i }

// AlphaVar returns the LP column of the placement indicator α^k_pe
// (task k on PE pe). Exposed so the sched facade can fix the columns of
// disabled SPEs when sweeping SPE counts on ONE formulation: fixing
// α^k_pe = 0 for every pe ≥ the sweep point's count makes the
// relaxation's optimum equal that of the reduced platform's own
// formulation, while keeping the row structure — and therefore the
// warm-start basis — shared across all sweep points.
func (f *Formulation) AlphaVar(k, pe int) int { return f.alphaVar(k, pe) }

// NumPEs returns the number of processing elements the formulation was
// built for (PPEs first, then SPEs).
func (f *Formulation) NumPEs() int { return f.n }

// NumTasks returns the number of tasks of the formulated graph.
func (f *Formulation) NumTasks() int { return f.k }

// compact layout: in(e,j), out(e,i), toPPE(e, speLocal)
func (f *Formulation) inVar(e, j int) int  { return 1 + f.k*f.n + e*f.n + j }
func (f *Formulation) outVar(e, i int) int { return 1 + f.k*f.n + f.e*f.n + e*f.n + i }
func (f *Formulation) toPPEVar(e, s int) int {
	return 1 + f.k*f.n + 2*f.e*f.n + e*f.plat.NumSPE + s
}

// literal layout: β(e,i,j)
func (f *Formulation) betaVar(e, i, j int) int { return 1 + f.k*f.n + e*f.n*f.n + i*f.n + j }

// FormulateCompact builds the compact formulation: instead of the n²
// β^{k,l}_{i,j} transfer variables of the paper, it uses per-edge
// cross-transfer indicators
//
//	in(e,j)  ≥ α^l_j − α^k_j   (edge e = D(k,l) arrives at PE j from elsewhere)
//	out(e,i) ≥ α^k_i − α^l_i   (edge e leaves PE i for elsewhere)
//	toPPE(e,s) ≥ α^k_s + Σ_{PPE j} α^l_j − 1   (SPE s sends e to a PPE)
//
// For integral α these indicators equal Σ_{i≠j} β^{k,l}_{i,j} (resp. the
// symmetric sums), so every constraint of (1e)–(1k) rewrites exactly and
// the two formulations have identical optima — a fact checked by tests.
// The compact form has O(|E|·n) variables instead of O(|E|·n²).
func FormulateCompact(g *graph.Graph, plat *platform.Platform) *Formulation {
	f := &Formulation{Kind: "compact", g: g, plat: plat,
		n: plat.NumPE(), k: g.NumTasks(), e: g.NumEdges()}
	nVars := 1 + f.k*f.n + 2*f.e*f.n + f.e*plat.NumSPE
	p := lp.New(nVars)
	p.SetObj(f.tVar(), 1) // minimize the period T
	p.SetBounds(f.tVar(), 0, math.Inf(1))

	var ints []int
	for k := 0; k < f.k; k++ {
		for i := 0; i < f.n; i++ {
			v := f.alphaVar(k, i)
			p.SetBounds(v, 0, 1)
			ints = append(ints, v)
		}
	}
	for e := 0; e < f.e; e++ {
		for i := 0; i < f.n; i++ {
			p.SetBounds(f.inVar(e, i), 0, 1)
			p.SetBounds(f.outVar(e, i), 0, 1)
		}
		for s := 0; s < plat.NumSPE; s++ {
			p.SetBounds(f.toPPEVar(e, s), 0, 1)
		}
	}

	// (1b) each task on exactly one PE.
	for k := 0; k < f.k; k++ {
		coefs := make([]lp.Coef, f.n)
		for i := 0; i < f.n; i++ {
			coefs[i] = lp.Coef{Var: f.alphaVar(k, i), Value: 1}
		}
		p.AddRow(coefs, lp.EQ, 1)
	}

	// Indicator definitions.
	for e, ed := range g.Edges {
		k, l := int(ed.From), int(ed.To)
		for j := 0; j < f.n; j++ {
			// in(e,j) − α^l_j + α^k_j ≥ 0
			p.AddRow([]lp.Coef{
				{Var: f.inVar(e, j), Value: 1},
				{Var: f.alphaVar(l, j), Value: -1},
				{Var: f.alphaVar(k, j), Value: 1},
			}, lp.GE, 0)
			// out(e,j) − α^k_j + α^l_j ≥ 0
			p.AddRow([]lp.Coef{
				{Var: f.outVar(e, j), Value: 1},
				{Var: f.alphaVar(k, j), Value: -1},
				{Var: f.alphaVar(l, j), Value: 1},
			}, lp.GE, 0)
		}
		for s := 0; s < plat.NumSPE; s++ {
			spe := plat.NumPPE + s
			coefs := []lp.Coef{
				{Var: f.toPPEVar(e, s), Value: 1},
				{Var: f.alphaVar(k, spe), Value: -1},
			}
			for j := 0; j < plat.NumPPE; j++ {
				coefs = append(coefs, lp.Coef{Var: f.alphaVar(l, j), Value: -1})
			}
			// toPPE ≥ α^k_spe + Σ α^l_ppe − 1
			p.AddRow(coefs, lp.GE, -1)
		}
	}

	f.addLoadRows(p, func(e, i int) []lp.Coef {
		return []lp.Coef{{Var: f.inVar(e, i), Value: g.Edges[e].Bytes}}
	}, func(e, i int) []lp.Coef {
		return []lp.Coef{{Var: f.outVar(e, i), Value: g.Edges[e].Bytes}}
	})

	// (1j) DMA-in count per SPE.
	for s := 0; s < plat.NumSPE; s++ {
		spe := plat.NumPPE + s
		var coefs []lp.Coef
		for e := 0; e < f.e; e++ {
			coefs = append(coefs, lp.Coef{Var: f.inVar(e, spe), Value: 1})
		}
		if coefs != nil {
			p.AddRow(coefs, lp.LE, float64(plat.MaxDMAIn))
		}
	}
	// (1k) DMA count toward PPEs per SPE.
	for s := 0; s < plat.NumSPE; s++ {
		var coefs []lp.Coef
		for e := 0; e < f.e; e++ {
			coefs = append(coefs, lp.Coef{Var: f.toPPEVar(e, s), Value: 1})
		}
		if coefs != nil {
			p.AddRow(coefs, lp.LE, float64(plat.MaxDMAFromPPE))
		}
	}

	f.Problem = &milp.Problem{LP: p, Integer: ints}
	return f
}

// FormulateLiteral builds the formulation exactly as printed in §5 of
// the paper: binary α^k_i placement variables and β^{k,l}_{i,j} transfer
// variables with constraints (1a)–(1k). Only the α variables need to be
// declared integral: once α is integral, (1c)/(1d) pin the β of every
// edge to the transfer actually implied by the placement.
func FormulateLiteral(g *graph.Graph, plat *platform.Platform) *Formulation {
	f := &Formulation{Kind: "literal", g: g, plat: plat,
		n: plat.NumPE(), k: g.NumTasks(), e: g.NumEdges()}
	nVars := 1 + f.k*f.n + f.e*f.n*f.n
	p := lp.New(nVars)
	p.SetObj(f.tVar(), 1)
	p.SetBounds(f.tVar(), 0, math.Inf(1))

	var ints []int
	for k := 0; k < f.k; k++ {
		for i := 0; i < f.n; i++ {
			v := f.alphaVar(k, i)
			p.SetBounds(v, 0, 1)
			ints = append(ints, v)
		}
	}
	for e := 0; e < f.e; e++ {
		for i := 0; i < f.n; i++ {
			for j := 0; j < f.n; j++ {
				p.SetBounds(f.betaVar(e, i, j), 0, 1)
			}
		}
	}

	// (1b)
	for k := 0; k < f.k; k++ {
		coefs := make([]lp.Coef, f.n)
		for i := 0; i < f.n; i++ {
			coefs[i] = lp.Coef{Var: f.alphaVar(k, i), Value: 1}
		}
		p.AddRow(coefs, lp.EQ, 1)
	}
	// (1c) the PE computing T_l receives D(k,l) from somewhere;
	// (1d) only the PE computing T_k may send D(k,l).
	for e, ed := range g.Edges {
		k, l := int(ed.From), int(ed.To)
		for j := 0; j < f.n; j++ {
			coefs := []lp.Coef{{Var: f.alphaVar(l, j), Value: -1}}
			for i := 0; i < f.n; i++ {
				coefs = append(coefs, lp.Coef{Var: f.betaVar(e, i, j), Value: 1})
			}
			p.AddRow(coefs, lp.GE, 0)
		}
		for i := 0; i < f.n; i++ {
			coefs := []lp.Coef{{Var: f.alphaVar(k, i), Value: -1}}
			for j := 0; j < f.n; j++ {
				coefs = append(coefs, lp.Coef{Var: f.betaVar(e, i, j), Value: 1})
			}
			p.AddRow(coefs, lp.LE, 0)
		}
	}

	f.addLoadRows(p, func(e, i int) []lp.Coef {
		var coefs []lp.Coef
		for j := 0; j < f.n; j++ {
			if j != i {
				coefs = append(coefs, lp.Coef{Var: f.betaVar(e, j, i), Value: g.Edges[e].Bytes})
			}
		}
		return coefs
	}, func(e, i int) []lp.Coef {
		var coefs []lp.Coef
		for j := 0; j < f.n; j++ {
			if j != i {
				coefs = append(coefs, lp.Coef{Var: f.betaVar(e, i, j), Value: g.Edges[e].Bytes})
			}
		}
		return coefs
	})

	// (1j)
	for s := 0; s < plat.NumSPE; s++ {
		spe := plat.NumPPE + s
		var coefs []lp.Coef
		for e := 0; e < f.e; e++ {
			for i := 0; i < f.n; i++ {
				if i != spe {
					coefs = append(coefs, lp.Coef{Var: f.betaVar(e, i, spe), Value: 1})
				}
			}
		}
		if coefs != nil {
			p.AddRow(coefs, lp.LE, float64(plat.MaxDMAIn))
		}
	}
	// (1k)
	for s := 0; s < plat.NumSPE; s++ {
		spe := plat.NumPPE + s
		var coefs []lp.Coef
		for e := 0; e < f.e; e++ {
			for j := 0; j < plat.NumPPE; j++ {
				coefs = append(coefs, lp.Coef{Var: f.betaVar(e, spe, j), Value: 1})
			}
		}
		if coefs != nil {
			p.AddRow(coefs, lp.LE, float64(plat.MaxDMAFromPPE))
		}
	}

	f.Problem = &milp.Problem{LP: p, Integer: ints}
	return f
}

// addLoadRows adds the rows shared by both formulations: compute loads
// (1e)/(1f), interface loads (1g)/(1h) with the formulation-specific
// communication terms, and local-store capacity (1i).
func (f *Formulation) addLoadRows(p *lp.Problem,
	inTerm func(e, i int) []lp.Coef, outTerm func(e, i int) []lp.Coef) {

	g, plat := f.g, f.plat
	// Rows are normalized (communication rows divided by bw, the memory
	// row by the local-store capacity) so that all coefficients stay
	// within a few orders of magnitude of 1: the raw model mixes bytes
	// (~1e5), bandwidths (~2.5e10) and periods (~1e-5), which is hostile
	// to the dense simplex's tolerances.
	// (1e)/(1f): Σ_k α^k_i w(T_k) − T ≤ 0.
	for i := 0; i < f.n; i++ {
		coefs := []lp.Coef{{Var: f.tVar(), Value: -1}}
		for k, t := range g.Tasks {
			w := t.WPPE
			if plat.IsSPE(i) {
				w = t.WSPE
			}
			coefs = append(coefs, lp.Coef{Var: f.alphaVar(k, i), Value: w})
		}
		p.AddRow(coefs, lp.LE, 0)
	}
	// (1g): reads + incoming edges ≤ T·bw, divided through by bw.
	for i := 0; i < f.n; i++ {
		coefs := []lp.Coef{{Var: f.tVar(), Value: -1}}
		for k, t := range g.Tasks {
			if t.ReadBytes != 0 {
				coefs = append(coefs, lp.Coef{Var: f.alphaVar(k, i), Value: t.ReadBytes / plat.BW})
			}
		}
		for e := 0; e < f.e; e++ {
			for _, c := range inTerm(e, i) {
				c.Value /= plat.BW
				coefs = append(coefs, c)
			}
		}
		p.AddRow(coefs, lp.LE, 0)
	}
	// (1h): writes + outgoing edges ≤ T·bw, divided through by bw.
	for i := 0; i < f.n; i++ {
		coefs := []lp.Coef{{Var: f.tVar(), Value: -1}}
		for k, t := range g.Tasks {
			if t.WriteBytes != 0 {
				coefs = append(coefs, lp.Coef{Var: f.alphaVar(k, i), Value: t.WriteBytes / plat.BW})
			}
		}
		for e := 0; e < f.e; e++ {
			for _, c := range outTerm(e, i) {
				c.Value /= plat.BW
				coefs = append(coefs, c)
			}
		}
		p.AddRow(coefs, lp.LE, 0)
	}
	// (1i): buffers fit in local stores, divided through by the capacity.
	needs := TaskBufferNeeds(g)
	capacity := float64(plat.BufferCapacity())
	for s := 0; s < plat.NumSPE; s++ {
		spe := plat.NumPPE + s
		var coefs []lp.Coef
		for k := range g.Tasks {
			if needs[k] != 0 {
				coefs = append(coefs, lp.Coef{Var: f.alphaVar(k, spe), Value: float64(needs[k]) / capacity})
			}
		}
		if coefs != nil {
			p.AddRow(coefs, lp.LE, 1)
		}
	}
}

// DecodeMapping extracts a Mapping from a solver solution vector.
func (f *Formulation) DecodeMapping(x []float64) Mapping {
	m := make(Mapping, f.k)
	for k := 0; k < f.k; k++ {
		best, bestV := 0, -1.0
		for i := 0; i < f.n; i++ {
			if v := x[f.alphaVar(k, i)]; v > bestV {
				best, bestV = i, v
			}
		}
		m[k] = best
	}
	return m
}

// EncodeMapping builds a full solution vector for the formulation from a
// mapping, usable as a warm-start incumbent. The returned vector sets T
// to the analytical period of the mapping and every communication
// variable to its implied indicator value.
func (f *Formulation) EncodeMapping(m Mapping) ([]float64, error) {
	rep, err := Evaluate(f.g, f.plat, m)
	if err != nil {
		return nil, err
	}
	if !rep.Feasible {
		return nil, fmt.Errorf("core: cannot warm-start from infeasible mapping: %v", rep.Violations)
	}
	x := make([]float64, f.Problem.LP.NumVars())
	x[f.tVar()] = rep.Period
	for k := 0; k < f.k; k++ {
		x[f.alphaVar(k, m[k])] = 1
	}
	switch f.Kind {
	case "compact":
		for e, ed := range f.g.Edges {
			src, dst := m[ed.From], m[ed.To]
			if src != dst {
				x[f.inVar(e, dst)] = 1
				x[f.outVar(e, src)] = 1
				if f.plat.IsSPE(src) && !f.plat.IsSPE(dst) {
					x[f.toPPEVar(e, src-f.plat.NumPPE)] = 1
				}
			}
		}
	case "literal":
		for e, ed := range f.g.Edges {
			x[f.betaVar(e, m[ed.From], m[ed.To])] = 1
		}
	default:
		return nil, fmt.Errorf("core: unknown formulation kind %q", f.Kind)
	}
	return x, nil
}
