package core

import (
	"math/rand"
	"strings"
	"testing"

	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

func TestBuildScheduleFig3(t *testing.T) {
	g := graph.Fig3Example()
	plat := platform.Cell(1, 1)
	s, err := BuildSchedule(g, plat, Mapping{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Offsets follow firstPeriod: 0, 2, 3.
	if s.Offsets[0] != 0 || s.Offsets[1] != 2 || s.Offsets[2] != 3 {
		t.Errorf("offsets = %v", s.Offsets)
	}
	if s.Startup != 3 {
		t.Errorf("startup = %d, want 3", s.Startup)
	}
	// Instance arithmetic.
	if s.InstanceAt(0, 0) != 0 || s.InstanceAt(2, 2) != -1 || s.InstanceAt(2, 5) != 2 {
		t.Errorf("InstanceAt wrong: %d %d %d",
			s.InstanceAt(0, 0), s.InstanceAt(2, 2), s.InstanceAt(2, 5))
	}
}

func TestScheduleGantt(t *testing.T) {
	g := graph.Fig3Example()
	plat := platform.Cell(1, 1)
	s, err := BuildSchedule(g, plat, Mapping{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	gantt := s.Gantt(g, plat, 5)
	for _, want := range []string{"PPE0", "SPE0", "T1#0", "T1#4", "T3#1", "periodic schedule"} {
		if !strings.Contains(gantt, want) {
			t.Errorf("Gantt missing %q:\n%s", want, gantt)
		}
	}
	// T3 must not appear before period 3.
	if strings.Contains(strings.SplitN(gantt, "p3", 2)[0], "T3#") {
		t.Errorf("T3 scheduled before its offset:\n%s", gantt)
	}
}

func TestScheduleValidateAlwaysHoldsOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 4+rng.Intn(12))
		plat := platform.Cell(1, 3)
		m := make(Mapping, g.NumTasks())
		for k := range m {
			m[k] = rng.Intn(plat.NumPE())
		}
		s, err := BuildSchedule(g, plat, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(g); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
		// Every task appears on exactly one PE's roster.
		seen := make([]int, g.NumTasks())
		for _, tasks := range s.PETasks {
			for _, k := range tasks {
				seen[k]++
			}
		}
		for k, c := range seen {
			if c != 1 {
				t.Errorf("trial %d: task %d on %d rosters", trial, k, c)
			}
		}
	}
}
