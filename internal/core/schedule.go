package core

import (
	"fmt"
	"sort"
	"strings"

	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

// PeriodicSchedule is the explicit steady-state schedule a mapping
// induces (§3.1, Fig. 3): after an initialization phase, period p
// processes instance p − Offset(T_k) of every task T_k, every period
// lasts Period seconds, and all communications of a period overlap with
// its computations under the bounded-multiport model.
type PeriodicSchedule struct {
	// Period is the duration T of one period; throughput is 1/T.
	Period float64
	// Offsets[k] is firstPeriod(T_k): the period index processing the
	// first instance of task k.
	Offsets []int
	// PETasks[i] lists the tasks run by PE i during every period, in
	// execution order (topological).
	PETasks [][]graph.TaskID
	// Startup is the number of periods before every task is active.
	Startup int
}

// BuildSchedule constructs the periodic schedule of a mapping.
func BuildSchedule(g *graph.Graph, plat *platform.Platform, m Mapping) (*PeriodicSchedule, error) {
	rep, err := Evaluate(g, plat, m)
	if err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	s := &PeriodicSchedule{
		Period:  rep.Period,
		Offsets: FirstPeriods(g),
		PETasks: make([][]graph.TaskID, plat.NumPE()),
	}
	for _, id := range order {
		s.PETasks[m[id]] = append(s.PETasks[m[id]], id)
	}
	for _, off := range s.Offsets {
		if off > s.Startup {
			s.Startup = off
		}
	}
	return s, nil
}

// Validate checks the steady-state precedence property: along every
// edge D(k,l), the consumer runs peek_l + 2 periods after the producer
// (one period for the producer, peek_l for lookahead, one for the
// communication), i.e. Offset(l) − Offset(k) ≥ peek_l + 2.
func (s *PeriodicSchedule) Validate(g *graph.Graph) error {
	for _, e := range g.Edges {
		gap := s.Offsets[e.To] - s.Offsets[e.From]
		if need := g.Tasks[e.To].Peek + 2; gap < need {
			return fmt.Errorf("core: schedule violates precedence on %d->%d: offset gap %d < %d",
				e.From, e.To, gap, need)
		}
	}
	return nil
}

// InstanceAt returns which instance of task k period p processes, or
// -1 when the task is not yet active in period p.
func (s *PeriodicSchedule) InstanceAt(k graph.TaskID, p int) int {
	i := p - s.Offsets[k]
	if i < 0 {
		return -1
	}
	return i
}

// Gantt renders the first `periods` periods as an ASCII chart, one row
// per processing element, listing "task#instance" entries per period —
// the textual form of Fig. 3(b).
func (s *PeriodicSchedule) Gantt(g *graph.Graph, plat *platform.Platform, periods int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "periodic schedule: T = %.4g s, startup %d periods\n", s.Period, s.Startup)
	colW := 1
	cells := make([][]string, plat.NumPE())
	for pe := range cells {
		cells[pe] = make([]string, periods)
		for p := 0; p < periods; p++ {
			var parts []string
			for _, k := range s.PETasks[pe] {
				if i := s.InstanceAt(k, p); i >= 0 {
					parts = append(parts, fmt.Sprintf("%s#%d", g.Tasks[k].Name, i))
				}
			}
			sort.Strings(parts)
			cells[pe][p] = strings.Join(parts, " ")
			if len(cells[pe][p]) > colW {
				colW = len(cells[pe][p])
			}
		}
	}
	if colW > 24 {
		colW = 24
	}
	b.WriteString("        ")
	for p := 0; p < periods; p++ {
		fmt.Fprintf(&b, "| p%-*d", colW-1, p)
	}
	b.WriteString("|\n")
	for pe := 0; pe < plat.NumPE(); pe++ {
		if len(s.PETasks[pe]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8s", plat.PEName(pe))
		for p := 0; p < periods; p++ {
			c := cells[pe][p]
			if len(c) > colW {
				c = c[:colW-1] + "…"
			}
			fmt.Fprintf(&b, "|%-*s", colW, c)
		}
		b.WriteString("|\n")
	}
	return b.String()
}
