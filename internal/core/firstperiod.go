package core

import (
	"math"

	"cellstream/internal/graph"
)

// FirstPeriods computes the firstPeriod(T_k) recurrence of §4.2: the
// index of the period in which the first instance of each task is
// processed in the canonical periodic schedule.
//
//	firstPeriod(T_k) = 0                                    if no predecessor
//	                 = max_{D(j,k)} firstPeriod(T_j) + peek_k + 2  otherwise
//
// One period separates a task from its predecessors' results, peek_k
// more periods wait for the look-ahead instances, and one period is
// dedicated to the communication. (The worked example in the paper's
// Fig. 3 prints firstPeriod(3) = 4 while this formula — the one the
// paper states and uses for buffer sizing — yields 3; we follow the
// formula.) The result is indexed by TaskID.
func FirstPeriods(g *graph.Graph) []int {
	order, err := g.TopoOrder()
	if err != nil {
		// Validated graphs are acyclic; surface misuse loudly.
		panic("core: FirstPeriods on cyclic graph: " + err.Error())
	}
	preds := g.Preds()
	fp := make([]int, g.NumTasks())
	for _, id := range order {
		if len(preds[id]) == 0 {
			fp[id] = 0
			continue
		}
		max := 0
		for _, ei := range preds[id] {
			if v := fp[g.Edges[ei].From]; v > max {
				max = v
			}
		}
		fp[id] = max + g.Tasks[id].Peek + 2
	}
	return fp
}

// BufferSizes returns, for every edge D(k,l), the bytes of local store a
// buffer for that data occupies:
//
//	buff(k,l) = data(k,l) × (firstPeriod(T_l) − firstPeriod(T_k))
//
// following §4.2: instances produced by T_k remain live until T_l has
// consumed them, which happens firstPeriod(T_l) − firstPeriod(T_k)
// periods later. The result is indexed like g.Edges.
func BufferSizes(g *graph.Graph) []int64 {
	fp := FirstPeriods(g)
	out := make([]int64, g.NumEdges())
	for i, e := range g.Edges {
		gap := fp[e.To] - fp[e.From]
		if gap < 1 {
			gap = 1 // an edge always needs at least one slot
		}
		out[i] = int64(math.Ceil(e.Bytes * float64(gap)))
	}
	return out
}
