package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

// Property tests over the analytical model: invariants any steady-state
// evaluator must satisfy, checked with testing/quick over random graphs
// and mappings.

func quickGraph(seed int64, kRaw uint8) (*graph.Graph, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	k := int(kRaw%12) + 2
	g := &graph.Graph{Name: "prop"}
	for i := 0; i < k; i++ {
		g.AddTask(graph.Task{
			WPPE:       rng.Float64() * 1e-5,
			WSPE:       rng.Float64() * 1e-5,
			Peek:       rng.Intn(3),
			ReadBytes:  float64(rng.Intn(3)) * 256,
			WriteBytes: float64(rng.Intn(3)) * 256,
		})
	}
	for to := 1; to < k; to++ {
		g.AddEdge(graph.TaskID(rng.Intn(to)), graph.TaskID(to), float64(rng.Intn(8192)))
	}
	return g, rng
}

// The period never beats the two universal lower bounds: the heaviest
// single task (on its faster PE) and the total work divided by an ideal
// machine where every instance runs at its cheapest cost everywhere.
func TestQuickPeriodLowerBounds(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		g, rng := quickGraph(seed, kRaw)
		plat := platform.Cell(1, 1+rng.Intn(7))
		m := make(Mapping, g.NumTasks())
		for i := range m {
			m[i] = rng.Intn(plat.NumPE())
		}
		rep, err := Evaluate(g, plat, m)
		if err != nil {
			return false
		}
		// Bound 1: some PE holds at least one task (or the graph is
		// empty); that PE's period covers the task's cost there.
		for k, pe := range m {
			w := g.Tasks[k].WPPE
			if plat.IsSPE(pe) {
				w = g.Tasks[k].WSPE
			}
			if rep.Period < w-1e-15 {
				return false
			}
		}
		// Bound 2: total cheapest work over all PEs.
		var minWork float64
		for _, task := range g.Tasks {
			minWork += math.Min(task.WPPE, task.WSPE)
		}
		return rep.Period >= minWork/float64(plat.NumPE())-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Scaling every compute cost by α ≥ 1 never decreases the period, and
// with no communication it scales exactly.
func TestQuickComputeScalingMonotone(t *testing.T) {
	f := func(seed int64, kRaw uint8, aRaw uint8) bool {
		g, rng := quickGraph(seed, kRaw)
		alpha := 1 + float64(aRaw)/64
		plat := platform.Cell(1, 3)
		m := make(Mapping, g.NumTasks())
		for i := range m {
			m[i] = rng.Intn(plat.NumPE())
		}
		before, err := Evaluate(g, plat, m)
		if err != nil {
			return false
		}
		g2 := g.Clone()
		g2.ScaleComputation(alpha)
		after, err := Evaluate(g2, plat, m)
		if err != nil {
			return false
		}
		return after.Period >= before.Period-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Co-locating all tasks of a feasible mapping onto the PPE is always
// feasible and removes all edge traffic.
func TestQuickAllOnPPENoTraffic(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		g, _ := quickGraph(seed, kRaw)
		plat := platform.QS22()
		rep, err := Evaluate(g, plat, AllOnPPE(g))
		if err != nil || !rep.Feasible {
			return false
		}
		// Only memory traffic on the PPE interfaces; none elsewhere.
		for pe := 1; pe < plat.NumPE(); pe++ {
			if rep.InBytes[pe] != 0 || rep.OutBytes[pe] != 0 || rep.BufferBytes[pe] != 0 {
				return false
			}
		}
		var reads, writes float64
		for _, task := range g.Tasks {
			reads += task.ReadBytes
			writes += task.WriteBytes
		}
		return rep.InBytes[0] == reads && rep.OutBytes[0] == writes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Increasing peek values never shrinks firstPeriods or buffers.
func TestQuickPeekMonotone(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		g, rng := quickGraph(seed, kRaw)
		fp1 := FirstPeriods(g)
		b1 := BufferSizes(g)
		g2 := g.Clone()
		bumped := rng.Intn(g2.NumTasks())
		g2.Tasks[bumped].Peek += 1 + rng.Intn(3)
		fp2 := FirstPeriods(g2)
		b2 := BufferSizes(g2)
		for i := range fp1 {
			if fp2[i] < fp1[i] {
				return false
			}
		}
		for i := range b1 {
			if b2[i] < b1[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Buffer sizes scale linearly with edge payloads.
func TestQuickBufferLinearInBytes(t *testing.T) {
	f := func(seed int64, kRaw uint8, sRaw uint8) bool {
		g, _ := quickGraph(seed, kRaw)
		scale := float64(sRaw%7) + 2
		b1 := BufferSizes(g)
		g2 := g.Clone()
		for e := range g2.Edges {
			g2.Edges[e].Bytes *= scale
		}
		b2 := BufferSizes(g2)
		for i := range b1 {
			want := int64(math.Ceil(float64(b1[i]) * scale))
			// Ceil of scaled vs scaled ceil can differ by rounding of the
			// original; allow the scale as slack.
			if math.Abs(float64(b2[i]-want)) > scale+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The report's period always equals the maximum of the resource
// occupancies it itself reports, and the named bottleneck matches it.
func TestQuickBottleneckConsistent(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		g, rng := quickGraph(seed, kRaw)
		plat := platform.Cell(1, 4)
		m := make(Mapping, g.NumTasks())
		for i := range m {
			m[i] = rng.Intn(plat.NumPE())
		}
		rep, err := Evaluate(g, plat, m)
		if err != nil {
			return false
		}
		max := 0.0
		for pe := 0; pe < plat.NumPE(); pe++ {
			max = math.Max(max, rep.ComputeLoad[pe])
			max = math.Max(max, rep.InBytes[pe]/plat.BW)
			max = math.Max(max, rep.OutBytes[pe]/plat.BW)
		}
		return math.Abs(rep.Period-max) < 1e-15 && rep.Bottleneck != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
