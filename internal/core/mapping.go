// Package core implements the paper's primary contribution: steady-state
// scheduling of streaming task graphs on the Cell processor.
//
// It provides (i) the mapping abstraction and an exact analytical
// evaluator of the steady-state period of any mapping under the
// bounded-multiport model of §2–§3, (ii) the firstPeriod recurrence and
// buffer-size computation of §4.2, and (iii) the mixed linear program
// (1a)–(1k) of §5 in two equivalent formulations, solved by the
// lp/milp packages to produce throughput-optimal mappings.
package core

import (
	"fmt"
	"math"

	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

// Mapping assigns every task (by ID) to a processing-element index
// (0..n-1, PPEs first, then SPEs). This is the "simple mapping" scheme of
// §3.1: every instance of a task is processed on the same PE.
type Mapping []int

// Clone returns a copy of the mapping.
func (m Mapping) Clone() Mapping { return append(Mapping(nil), m...) }

// AllOnPPE returns the baseline mapping that places every task on PPE 0.
// The paper's speed-up metric normalizes throughput to this mapping.
func AllOnPPE(g *graph.Graph) Mapping { return make(Mapping, g.NumTasks()) }

// Report is the analytical steady-state evaluation of one mapping:
// the period T (max occupancy over all resources), the per-resource
// occupancies, and the feasibility of the capacity constraints
// ((1i) local store, (1j)/(1k) DMA slots).
type Report struct {
	Mapping  Mapping
	Period   float64 // seconds per instance in steady state
	Feasible bool
	// Violations lists every violated capacity constraint.
	Violations []string

	// Per-PE occupancies, each must be ≤ Period by construction:
	ComputeLoad []float64 // seconds of compute per instance
	InBytes     []float64 // bytes received per instance (edges + reads)
	OutBytes    []float64 // bytes sent per instance (edges + writes)

	// Capacity usages:
	BufferBytes []int64 // local-store bytes for stream buffers (SPEs)
	DMAIn       []int   // distinct incoming data per period (SPEs)
	DMAToPPE    []int   // distinct data sent to PPEs per period (SPEs)

	// Bottleneck names the resource that determines the period, e.g.
	// "compute(SPE2)" or "in(PPE0)".
	Bottleneck string
}

// Throughput returns instances per second (ρ = 1/T).
func (r *Report) Throughput() float64 {
	if r.Period <= 0 {
		return math.Inf(1)
	}
	return 1 / r.Period
}

// Validate checks that the mapping has the right arity and in-range PEs.
func (m Mapping) Validate(g *graph.Graph, plat *platform.Platform) error {
	if len(m) != g.NumTasks() {
		return fmt.Errorf("core: mapping has %d entries for %d tasks", len(m), g.NumTasks())
	}
	for k, pe := range m {
		if pe < 0 || pe >= plat.NumPE() {
			return fmt.Errorf("core: task %s mapped to PE %d, platform has %d", g.Tasks[k].Name, pe, plat.NumPE())
		}
	}
	return nil
}

// Evaluate computes the analytical steady-state report of a mapping.
// The period is the maximum occupancy over every processing element and
// every communication interface (constraints (1e)–(1h) read as
// occupancies); feasibility additionally requires the local-store and
// DMA-slot constraints (1i)–(1k).
func Evaluate(g *graph.Graph, plat *platform.Platform, m Mapping) (*Report, error) {
	if err := m.Validate(g, plat); err != nil {
		return nil, err
	}
	n := plat.NumPE()
	r := &Report{
		Mapping:     m.Clone(),
		Feasible:    true,
		ComputeLoad: make([]float64, n),
		InBytes:     make([]float64, n),
		OutBytes:    make([]float64, n),
		BufferBytes: make([]int64, n),
		DMAIn:       make([]int, n),
		DMAToPPE:    make([]int, n),
	}

	for k, t := range g.Tasks {
		pe := m[k]
		if plat.IsSPE(pe) {
			r.ComputeLoad[pe] += t.WSPE
		} else {
			r.ComputeLoad[pe] += t.WPPE
		}
		// Main-memory traffic rides the PE's own interfaces (§2.1:
		// "memory accesses have to be counted as communications").
		r.InBytes[pe] += t.ReadBytes
		r.OutBytes[pe] += t.WriteBytes
	}

	buffers := BufferSizes(g)
	for k := range g.Tasks {
		pe := m[k]
		if plat.IsSPE(pe) {
			// Both incoming and outgoing buffers live in the local
			// store of the PE running the task, even for co-resident
			// neighbours (§4.2).
			r.BufferBytes[pe] += taskBufferNeed(g, buffers, graph.TaskID(k))
		}
	}

	for _, e := range g.Edges {
		src, dst := m[e.From], m[e.To]
		if src == dst {
			continue
		}
		r.OutBytes[src] += e.Bytes
		r.InBytes[dst] += e.Bytes
		if plat.IsSPE(dst) {
			r.DMAIn[dst]++
		}
		if plat.IsSPE(src) && !plat.IsSPE(dst) {
			r.DMAToPPE[src]++
		}
	}

	// Period = max occupancy.
	r.Period, r.Bottleneck = 0, "idle"
	consider := func(v float64, name string) {
		if v > r.Period {
			r.Period = v
			r.Bottleneck = name
		}
	}
	for i := 0; i < n; i++ {
		consider(r.ComputeLoad[i], "compute("+plat.PEName(i)+")")
		consider(r.InBytes[i]/plat.BW, "in("+plat.PEName(i)+")")
		consider(r.OutBytes[i]/plat.BW, "out("+plat.PEName(i)+")")
	}

	// Capacity constraints.
	capBuf := plat.BufferCapacity()
	for i := 0; i < n; i++ {
		if !plat.IsSPE(i) {
			continue
		}
		if r.BufferBytes[i] > capBuf {
			r.Feasible = false
			r.Violations = append(r.Violations, fmt.Sprintf(
				"local store of %s: buffers need %d bytes, capacity %d",
				plat.PEName(i), r.BufferBytes[i], capBuf))
		}
		if r.DMAIn[i] > plat.MaxDMAIn {
			r.Feasible = false
			r.Violations = append(r.Violations, fmt.Sprintf(
				"%s receives %d distinct data per period, DMA stack holds %d",
				plat.PEName(i), r.DMAIn[i], plat.MaxDMAIn))
		}
		if r.DMAToPPE[i] > plat.MaxDMAFromPPE {
			r.Feasible = false
			r.Violations = append(r.Violations, fmt.Sprintf(
				"%s sends %d distinct data to PPEs per period, PPE DMA stack holds %d",
				plat.PEName(i), r.DMAToPPE[i], plat.MaxDMAFromPPE))
		}
	}
	return r, nil
}

// taskBufferNeed returns the local-store bytes task k requires: buffers
// for all incoming and all outgoing data (§4.2).
func taskBufferNeed(g *graph.Graph, buffers []int64, k graph.TaskID) int64 {
	var need int64
	for ei, e := range g.Edges {
		if e.From == k || e.To == k {
			need += buffers[ei]
		}
	}
	return need
}

// TaskBufferNeeds returns, for every task, the local-store bytes its
// buffers consume when it is mapped on an SPE. Indexed by TaskID.
func TaskBufferNeeds(g *graph.Graph) []int64 {
	buffers := BufferSizes(g)
	out := make([]int64, g.NumTasks())
	for k := range out {
		out[k] = taskBufferNeed(g, buffers, graph.TaskID(k))
	}
	return out
}

// Speedup returns the throughput of the report normalized to the
// PPE-only mapping of the same application, the speed-up metric of §6.4.
func Speedup(g *graph.Graph, plat *platform.Platform, r *Report) (float64, error) {
	base, err := Evaluate(g, plat, AllOnPPE(g))
	if err != nil {
		return 0, err
	}
	if r.Period == 0 {
		return math.Inf(1), nil
	}
	return base.Period / r.Period, nil
}
