package heuristics

import (
	"math/rand"
	"testing"

	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

func evaluate(t *testing.T, g *graph.Graph, plat *platform.Platform, m core.Mapping) *core.Report {
	t.Helper()
	rep, err := core.Evaluate(g, plat, m)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return rep
}

func TestGreedyMemRespectsMemory(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := daggen.Generate(daggen.Params{Tasks: 40, Seed: seed, CCR: 2})
		plat := platform.QS22()
		m := GreedyMem(g, plat)
		rep := evaluate(t, g, plat, m)
		for pe := plat.NumPPE; pe < plat.NumPE(); pe++ {
			if rep.BufferBytes[pe] > plat.BufferCapacity() {
				t.Errorf("seed %d: GreedyMem overfilled %s: %d > %d",
					seed, plat.PEName(pe), rep.BufferBytes[pe], plat.BufferCapacity())
			}
		}
	}
}

func TestGreedyMemPrefersSPEs(t *testing.T) {
	// With loose memory every task must land on an SPE, none on the PPE.
	g := graph.UniformChain("c", 8, 1e-6, 1e-6, 64)
	plat := platform.QS22()
	m := GreedyMem(g, plat)
	for k, pe := range m {
		if !plat.IsSPE(pe) {
			t.Errorf("task %d on %s, want an SPE", k, plat.PEName(pe))
		}
	}
}

func TestGreedyMemBalancesMemory(t *testing.T) {
	// Equal-size tasks across 4 SPEs: the memory spread must stay within
	// one task's buffer need.
	g := graph.UniformChain("c", 8, 1e-6, 1e-6, 1024)
	plat := platform.Cell(1, 4)
	m := GreedyMem(g, plat)
	rep := evaluate(t, g, plat, m)
	var min, max int64 = 1 << 62, 0
	for pe := 1; pe < plat.NumPE(); pe++ {
		if rep.BufferBytes[pe] < min {
			min = rep.BufferBytes[pe]
		}
		if rep.BufferBytes[pe] > max {
			max = rep.BufferBytes[pe]
		}
	}
	if max-min > 3*2*1024*2 { // one task's worth of buffers
		t.Errorf("memory spread %d..%d too wide", min, max)
	}
}

func TestGreedyMemFallsBackToPPE(t *testing.T) {
	// Buffers too big for any SPE: everything must go to the PPE.
	g := graph.UniformChain("fat", 4, 1e-6, 1e-6, 300*1024)
	plat := platform.Cell(1, 2)
	m := GreedyMem(g, plat)
	for k, pe := range m {
		if pe != 0 {
			t.Errorf("task %d on PE %d, want PPE 0", k, pe)
		}
	}
}

func TestGreedyCPUBalancesLoad(t *testing.T) {
	// 8 identical tasks, no communication cost concern: loads across the
	// 1 PPE + 3 SPEs should differ by at most one task.
	g := graph.UniformChain("c", 8, 1e-6, 1e-6, 8)
	plat := platform.Cell(1, 3)
	m := GreedyCPU(g, plat)
	counts := make([]int, plat.NumPE())
	for _, pe := range m {
		counts[pe]++
	}
	for pe, c := range counts {
		if c == 0 {
			t.Errorf("PE %d unused by GreedyCPU", pe)
		}
		if c > 3 {
			t.Errorf("PE %d has %d tasks, want balanced", pe, c)
		}
	}
}

func TestGreedyCPUUsesRespectiveSpeeds(t *testing.T) {
	// One task vastly faster on the PPE: with everything else equal,
	// GreedyCPU should not pile other tasks onto the PPE afterwards.
	g := &graph.Graph{Name: "mix"}
	g.AddTask(graph.Task{WPPE: 1e-6, WSPE: 100e-6})
	for i := 0; i < 4; i++ {
		g.AddTask(graph.Task{WPPE: 10e-6, WSPE: 10e-6})
	}
	plat := platform.Cell(1, 2)
	m := GreedyCPU(g, plat)
	rep := evaluate(t, g, plat, m)
	if !rep.Feasible {
		t.Fatalf("infeasible: %v", rep.Violations)
	}
	// The heavy-on-SPE task is processed first (topological order is ID
	// order here since there are no edges... all sources); whatever the
	// order, the final load must be reasonably balanced.
	if rep.Period > 21e-6 {
		t.Errorf("period %v too unbalanced", rep.Period)
	}
}

func TestRoundRobinShape(t *testing.T) {
	g := graph.UniformChain("c", 7, 1, 1, 1)
	plat := platform.Cell(1, 2)
	m := RoundRobin(g, plat)
	want := core.Mapping{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("RoundRobin = %v, want %v", m, want)
		}
	}
}

func TestRandomMappingValid(t *testing.T) {
	g := daggen.Generate(daggen.Params{Tasks: 30, Seed: 5})
	plat := platform.QS22()
	rng := rand.New(rand.NewSource(1))
	m := Random(g, plat, rng)
	if err := m.Validate(g, plat); err != nil {
		t.Fatal(err)
	}
}

func TestImproveNeverWorsens(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := daggen.Generate(daggen.Params{Tasks: 25, Seed: seed, CCR: 1.5})
		plat := platform.Cell(1, 4)
		start := GreedyCPU(g, plat)
		startRep := evaluate(t, g, plat, start)
		m, rep, err := Improve(g, plat, start, LocalSearchOptions{MaxIters: 500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(g, plat); err != nil {
			t.Fatal(err)
		}
		if !rep.Feasible {
			t.Errorf("seed %d: Improve returned infeasible mapping", seed)
		}
		if startRep.Feasible && rep.Period > startRep.Period+1e-15 {
			t.Errorf("seed %d: Improve worsened period %v -> %v", seed, startRep.Period, rep.Period)
		}
	}
}

func TestImproveFromInfeasibleStart(t *testing.T) {
	// A start violating memory must be replaced by a feasible result.
	g := graph.UniformChain("fat", 4, 1e-6, 1e-6, 300*1024)
	plat := platform.Cell(1, 2)
	bad := core.Mapping{0, 1, 2, 0} // buffers blow the local stores
	if rep := evaluate(t, g, plat, bad); rep.Feasible {
		t.Fatal("expected infeasible start")
	}
	m, rep, err := Improve(g, plat, bad, LocalSearchOptions{MaxIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Errorf("result infeasible: %v (mapping %v)", rep.Violations, m)
	}
}

func TestImproveFindsObviousWin(t *testing.T) {
	// Two heavy independent tasks starting on the same PE: local search
	// must separate them.
	g := &graph.Graph{Name: "two"}
	g.AddTask(graph.Task{WPPE: 1e-3, WSPE: 1e-3})
	g.AddTask(graph.Task{WPPE: 1e-3, WSPE: 1e-3})
	plat := platform.Cell(1, 1)
	_, rep, err := Improve(g, plat, core.Mapping{0, 0}, LocalSearchOptions{MaxIters: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Period > 1.1e-3 {
		t.Errorf("period %v, want ~1e-3 (tasks split)", rep.Period)
	}
}

func TestRestartsDeterministic(t *testing.T) {
	g := daggen.Generate(daggen.Params{Tasks: 20, Seed: 3, CCR: 1})
	plat := platform.Cell(1, 3)
	m1, r1, err := Improve(g, plat, GreedyMem(g, plat), LocalSearchOptions{MaxIters: 300, Restarts: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, r2, err := Improve(g, plat, GreedyMem(g, plat), LocalSearchOptions{MaxIters: 300, Restarts: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Period != r2.Period {
		t.Errorf("non-deterministic: %v vs %v", r1.Period, r2.Period)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("mappings differ across identical runs")
		}
	}
}
