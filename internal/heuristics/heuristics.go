// Package heuristics implements the reference mapping strategies of §6.3
// of the paper — GreedyMem and GreedyCPU — plus simple baselines and a
// throughput-guided local-search improver (one of the "more involved
// heuristics" the conclusion calls for).
//
// Both greedy strategies process tasks one after the other and never
// revisit a decision. They reason only about SPE local-store capacity
// (the paper found memory to be the dominant constraint) and, for
// GreedyCPU, compute load; neither accounts for data transfers, which is
// precisely why the paper's evaluation shows them plateauing while the
// linear-programming mapping scales.
package heuristics

import (
	"math/rand"

	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

// GreedyMem maps tasks in topological order. For each task it considers
// the SPEs whose remaining local store can host the task's buffers and
// picks the one with the least loaded memory; if no SPE fits, the task
// goes to the PPE (PPE 0).
func GreedyMem(g *graph.Graph, plat *platform.Platform) core.Mapping {
	needs := core.TaskBufferNeeds(g)
	order, err := g.TopoOrder()
	if err != nil {
		panic("heuristics: invalid graph: " + err.Error())
	}
	memUsed := make([]int64, plat.NumPE())
	m := make(core.Mapping, g.NumTasks())
	for _, k := range order {
		best := -1
		for i := plat.NumPPE; i < plat.NumPE(); i++ {
			if memUsed[i]+needs[k] > plat.BufferCapacity() {
				continue
			}
			if best < 0 || memUsed[i] < memUsed[best] {
				best = i
			}
		}
		if best < 0 {
			m[k] = 0 // PPE
			continue
		}
		m[k] = best
		memUsed[best] += needs[k]
	}
	return m
}

// GreedyCPU maps tasks in topological order. For each task it considers
// every processing element (PPEs and SPEs) with enough free memory and
// picks the one with the smallest accumulated computation load.
func GreedyCPU(g *graph.Graph, plat *platform.Platform) core.Mapping {
	needs := core.TaskBufferNeeds(g)
	order, err := g.TopoOrder()
	if err != nil {
		panic("heuristics: invalid graph: " + err.Error())
	}
	memUsed := make([]int64, plat.NumPE())
	load := make([]float64, plat.NumPE())
	m := make(core.Mapping, g.NumTasks())
	for _, k := range order {
		t := g.Tasks[k]
		best := -1
		for i := 0; i < plat.NumPE(); i++ {
			if plat.IsSPE(i) && memUsed[i]+needs[k] > plat.BufferCapacity() {
				continue
			}
			if best < 0 || load[i] < load[best] {
				best = i
			}
		}
		if best < 0 {
			best = 0
		}
		m[k] = best
		if plat.IsSPE(best) {
			memUsed[best] += needs[k]
			load[best] += t.WSPE
		} else {
			load[best] += t.WPPE
		}
	}
	return m
}

// RoundRobin deals tasks to processing elements cyclically, ignoring
// every constraint. A deliberately naive baseline.
func RoundRobin(g *graph.Graph, plat *platform.Platform) core.Mapping {
	m := make(core.Mapping, g.NumTasks())
	for k := range m {
		m[k] = k % plat.NumPE()
	}
	return m
}

// Random maps every task to a uniformly random PE.
func Random(g *graph.Graph, plat *platform.Platform, rng *rand.Rand) core.Mapping {
	m := make(core.Mapping, g.NumTasks())
	for k := range m {
		m[k] = rng.Intn(plat.NumPE())
	}
	return m
}

// LocalSearchOptions tunes Improve.
type LocalSearchOptions struct {
	// MaxIters bounds the number of accepted moves (0 = 10_000).
	MaxIters int
	// Restarts adds random restarts around the incumbent (0 = none).
	Restarts int
	// Seed makes the restart randomness reproducible.
	Seed int64
}

// Improve runs first-improvement hill climbing from a starting mapping:
// moves of one task to another PE and swaps of two tasks, accepting a
// neighbour when it is feasible and strictly decreases the analytical
// period. Returns the improved mapping and its report.
func Improve(g *graph.Graph, plat *platform.Platform, start core.Mapping, opt LocalSearchOptions) (core.Mapping, *core.Report, error) {
	maxIters := opt.MaxIters
	if maxIters == 0 {
		maxIters = 10_000
	}
	best := start.Clone()
	bestRep, err := core.Evaluate(g, plat, best)
	if err != nil {
		return nil, nil, err
	}
	if !bestRep.Feasible {
		// Fall back to a known-feasible start.
		best = core.AllOnPPE(g)
		if bestRep, err = core.Evaluate(g, plat, best); err != nil {
			return nil, nil, err
		}
	}

	rng := rand.New(rand.NewSource(opt.Seed + 1))
	climb := func(m core.Mapping, rep *core.Report) (core.Mapping, *core.Report) {
		iters := 0
		improved := true
		for improved && iters < maxIters {
			improved = false
			for k := 0; k < g.NumTasks() && iters < maxIters; k++ {
				// Move k to every other PE.
				orig := m[k]
				for pe := 0; pe < plat.NumPE(); pe++ {
					if pe == orig {
						continue
					}
					m[k] = pe
					cand, err := core.Evaluate(g, plat, m)
					if err == nil && cand.Feasible && cand.Period < rep.Period-1e-15 {
						rep = cand
						orig = pe
						improved = true
						iters++
					} else {
						m[k] = orig
					}
				}
				// Swap k with a random other task.
				o := rng.Intn(g.NumTasks())
				if o != k && m[o] != m[k] {
					m[k], m[o] = m[o], m[k]
					cand, err := core.Evaluate(g, plat, m)
					if err == nil && cand.Feasible && cand.Period < rep.Period-1e-15 {
						rep = cand
						improved = true
						iters++
					} else {
						m[k], m[o] = m[o], m[k]
					}
				}
			}
		}
		return m, rep
	}

	m, rep := climb(best.Clone(), bestRep)
	if rep.Period < bestRep.Period {
		best, bestRep = m, rep
	}
	for r := 0; r < opt.Restarts; r++ {
		start := best.Clone()
		// Perturb ~1/4 of the tasks.
		for p := 0; p < g.NumTasks()/4+1; p++ {
			start[rng.Intn(g.NumTasks())] = rng.Intn(plat.NumPE())
		}
		if rep, err := core.Evaluate(g, plat, start); err != nil || !rep.Feasible {
			continue
		}
		repS, _ := core.Evaluate(g, plat, start)
		m, rep := climb(start, repS)
		if rep.Feasible && rep.Period < bestRep.Period {
			best, bestRep = m, rep
		}
	}
	return best, bestRep, nil
}
