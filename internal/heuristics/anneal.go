package heuristics

import (
	"math"
	"math/rand"

	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

// AnnealOptions tunes Anneal.
type AnnealOptions struct {
	// Iters is the number of proposals (0 = 50_000).
	Iters int
	// T0 and T1 are the initial and final temperatures as fractions of
	// the starting period (0 = 0.2 and 0.001).
	T0, T1 float64
	// Seed makes the run reproducible.
	Seed int64
}

// Anneal runs simulated annealing over mappings: another instance of
// the "more involved heuristics" the paper's conclusion calls for. The
// neighbourhood is the same as Improve's (single-task moves and task
// swaps); worse feasible neighbours are accepted with the Metropolis
// probability exp(−Δ/T) under a geometric cooling schedule. The best
// feasible mapping seen is returned.
func Anneal(g *graph.Graph, plat *platform.Platform, start core.Mapping, opt AnnealOptions) (core.Mapping, *core.Report, error) {
	iters := opt.Iters
	if iters == 0 {
		iters = 50_000
	}
	t0, t1 := opt.T0, opt.T1
	if t0 == 0 {
		t0 = 0.2
	}
	if t1 == 0 {
		t1 = 0.001
	}

	cur := start.Clone()
	curRep, err := core.Evaluate(g, plat, cur)
	if err != nil {
		return nil, nil, err
	}
	if !curRep.Feasible {
		cur = core.AllOnPPE(g)
		if curRep, err = core.Evaluate(g, plat, cur); err != nil {
			return nil, nil, err
		}
	}
	best := cur.Clone()
	bestRep := curRep

	rng := rand.New(rand.NewSource(opt.Seed + 1))
	scale := curRep.Period
	cool := math.Pow(t1/t0, 1/float64(iters))
	temp := t0 * scale

	k := g.NumTasks()
	n := plat.NumPE()
	for it := 0; it < iters; it++ {
		temp *= cool
		// Propose: 70% single-task move, 30% swap.
		var undo func()
		if rng.Float64() < 0.7 || k < 2 {
			task := rng.Intn(k)
			old := cur[task]
			pe := rng.Intn(n)
			if pe == old {
				continue
			}
			cur[task] = pe
			undo = func() { cur[task] = old }
		} else {
			a, b := rng.Intn(k), rng.Intn(k)
			if a == b || cur[a] == cur[b] {
				continue
			}
			cur[a], cur[b] = cur[b], cur[a]
			undo = func() { cur[a], cur[b] = cur[b], cur[a] }
		}
		cand, err := core.Evaluate(g, plat, cur)
		if err != nil {
			return nil, nil, err
		}
		delta := cand.Period - curRep.Period
		switch {
		case !cand.Feasible:
			undo()
		case delta <= 0 || rng.Float64() < math.Exp(-delta/temp):
			curRep = cand
			if cand.Period < bestRep.Period {
				best = cur.Clone()
				bestRep = cand
			}
		default:
			undo()
		}
	}
	return best, bestRep, nil
}
