package heuristics

import (
	"testing"

	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

func TestAnnealImprovesGreedy(t *testing.T) {
	g := daggen.Generate(daggen.Params{Tasks: 30, Seed: 8, CCR: 1})
	plat := platform.QS22()
	start := GreedyCPU(g, plat)
	startRep := evaluate(t, g, plat, start)
	m, rep, err := Anneal(g, plat, start, AnnealOptions{Iters: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(g, plat); err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatalf("annealed mapping infeasible: %v", rep.Violations)
	}
	if rep.Period > startRep.Period+1e-15 {
		t.Errorf("anneal worsened: %v -> %v", startRep.Period, rep.Period)
	}
	if rep.Period > 0.95*startRep.Period {
		t.Logf("anneal gain small: %v -> %v (acceptable but worth watching)", startRep.Period, rep.Period)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	g := daggen.Generate(daggen.Params{Tasks: 20, Seed: 4, CCR: 1.5})
	plat := platform.Cell(1, 4)
	m1, r1, err := Anneal(g, plat, GreedyMem(g, plat), AnnealOptions{Iters: 5000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m2, r2, err := Anneal(g, plat, GreedyMem(g, plat), AnnealOptions{Iters: 5000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Period != r2.Period {
		t.Errorf("non-deterministic: %v vs %v", r1.Period, r2.Period)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("mappings differ for identical seeds")
		}
	}
}

func TestAnnealFromInfeasibleStart(t *testing.T) {
	g := graph.UniformChain("fat", 4, 1e-6, 1e-6, 300*1024)
	plat := platform.Cell(1, 2)
	bad := core.Mapping{0, 1, 2, 0}
	_, rep, err := Anneal(g, plat, bad, AnnealOptions{Iters: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Errorf("result infeasible: %v", rep.Violations)
	}
}

func TestAnnealFindsObviousSplit(t *testing.T) {
	g := &graph.Graph{Name: "two"}
	g.AddTask(graph.Task{WPPE: 1e-3, WSPE: 1e-3})
	g.AddTask(graph.Task{WPPE: 1e-3, WSPE: 1e-3})
	plat := platform.Cell(1, 1)
	_, rep, err := Anneal(g, plat, core.Mapping{0, 0}, AnnealOptions{Iters: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Period > 1.1e-3 {
		t.Errorf("period %v, want ~1e-3", rep.Period)
	}
}
