package lp

import (
	"math"
	"sort"

	"cellstream/internal/num"
)

// The sparse revised simplex. Instead of carrying the full m×n tableau
// B⁻¹A through every pivot (the dense reference in dense.go), it keeps
//
//   - the constraint matrix in compressed sparse column (CSC) form,
//     one slack column per row so the initial slack basis is I;
//   - the basis inverse behind the factorEngine seam (lu.go): a sparse
//     LU factorization updated in place by Forrest–Tomlin after each
//     pivot (FactorLU, the default), or the product-form eta file of
//     PR 2 (FactorEta), both refactorized every refactorEvery pivots to
//     bound fill-in and numerical drift;
//   - phase-2 pricing selected by Options.Pricing: Devex reference
//     weights (default) or steepest-edge with exact initial norms
//     computed through the factorization, with the same Bland's-rule
//     fallback as the dense solver under degeneracy;
//   - a composite (artificial-free) phase 1 that minimizes the sum of
//     bound violations of the basic variables directly.
//
// The mapping LPs of the paper touch only a handful of variables per
// constraint, so one iteration costs O(nnz(A) + nnz(factors)) instead
// of the dense solver's O(m·n).
const (
	refactorEvery = 64
	pivTol        = num.PivTol  // |alpha| below this never pivots or blocks (noise)
	feasTol       = num.FeasTol // per-step bound relaxation of the Harris ratio test
	// rescuePivRel sets the threshold of the rescue scans that re-admit
	// sub-pivTol entries when the alternative is declaring Unbounded or
	// a dual ray: on badly scaled columns (one coefficient 1e8, its
	// neighbor 1) the only genuine blocker can price below pivTol, and
	// skipping it turned a bounded model into a false unbounded ray —
	// found by FuzzPresolveRoundTrip. The threshold is RELATIVE to the
	// column's largest entry (see rescueTol): a fixed absolute cutoff
	// either misses genuine tiny entries on small columns or, worse,
	// admits fp elimination dust on large ones — pivoting on dust rode
	// a genuine ray to 1e15 before declaring a garbage optimum.
	rescuePivRel = num.RescuePivRel
)

// partialSegment resolves Options.PartialPricing into a segment size;
// 0 disables partial pricing. Partial pricing is strictly opt-in: an
// earlier auto-enable above 3000 columns tripled total pivots on the
// 94-task mapping formulation (~7000 columns, 7.5k → 21k iterations
// per 60-node search) because the rotating Dantzig segments give up
// Devex's reference weights exactly where they pay most. The BTRAN-
// per-iteration saving only wins when a single pricing scan dominates
// the pivot, which these formulations never reach.
func partialSegment(opt, n int) int {
	if opt <= 0 {
		return 0
	}
	if opt < 64 {
		return 64 // segments below this price too little per BTRAN
	}
	return opt
}

// rescueTol is the rescue-scan pivot threshold for a column whose
// largest entry is colMax: elimination noise scales with the column,
// genuine small entries do not.
func rescueTol(colMax float64) float64 {
	if colMax < 1 {
		colMax = 1
	}
	return rescuePivRel * colMax
}

// Refactorization causes, tracked per solve for Stats.
const (
	refPeriodic = iota // refactorEvery pivots folded in since the last one
	refUnstable        // degraded pivot, rejected FT update, or drift check
	refRestore         // reinversion that installs a WarmStart basis
)

// statusFallback is an internal sentinel: the factorization hit a
// (numerically) singular basis, so the caller should re-solve with the
// dense reference implementation.
const statusFallback Status = -1

type etaVec struct {
	r   int32 // pivot row
	piv float64
	ind []int32 // off-pivot rows of the FTRANed entering column
	val []float64
}

// etaFile is the product-form basis inverse of PR 2, kept selectable
// via Options.Factorization == FactorEta as the differential foil for
// the LU engine: one eta per pivot, applied in order on FTRAN and in
// reverse on BTRAN, rebuilt from the basic columns on refactor.
type etaFile struct {
	etas      []etaVec
	sinceFact int
}

func (f *etaFile) reset() {
	f.etas = f.etas[:0]
	f.sinceFact = 0
}

func (f *etaFile) updates() int { return f.sinceFact }

func (f *etaFile) ftStats() (int, float64) { return 0, 0 }

func (f *etaFile) clearStats() {}

// ftran overwrites x with B⁻¹x by applying the eta file in order.
func (f *etaFile) ftran(x []float64) {
	for k := range f.etas {
		e := &f.etas[k]
		xr := x[e.r]
		if xr == 0 {
			continue
		}
		t := xr / e.piv
		x[e.r] = t
		for i, r := range e.ind {
			x[r] -= e.val[i] * t
		}
	}
}

// btran overwrites z with zᵀB⁻¹ by applying the eta file in reverse.
func (f *etaFile) btran(z []float64) {
	for k := len(f.etas) - 1; k >= 0; k-- {
		e := &f.etas[k]
		sum := z[e.r]
		for i, r := range e.ind {
			if v := z[r]; v != 0 {
				sum -= v * e.val[i]
			}
		}
		z[e.r] = sum / e.piv
	}
}

// update records the pivot (alpha, r) as one more eta.
func (f *etaFile) update(s *revised, r int, alpha []float64) bool {
	f.append(alpha, r, s.m)
	return true
}

// append records the pivot (alpha, r) in the eta file.
func (f *etaFile) append(alpha []float64, r, m int) {
	nnz := 0
	for i := 0; i < m; i++ {
		if i != r && alpha[i] != 0 {
			nnz++
		}
	}
	ind := make([]int32, 0, nnz)
	val := make([]float64, 0, nnz)
	for i := 0; i < m; i++ {
		if i != r && alpha[i] != 0 {
			ind = append(ind, int32(i))
			val = append(val, alpha[i])
		}
	}
	f.etas = append(f.etas, etaVec{r: int32(r), piv: alpha[r], ind: ind, val: val})
	f.sinceFact++
}

// refactor rebuilds the eta file from the current basic columns
// (product-form reinversion with partial pivoting, sparsest columns
// first). It returns false when the basis is numerically singular.
func (f *etaFile) refactor(s *revised) bool {
	f.reset()
	cols := append([]int(nil), s.basis...)
	sort.Slice(cols, func(a, b int) bool {
		na := s.colPtr[cols[a]+1] - s.colPtr[cols[a]]
		nb := s.colPtr[cols[b]+1] - s.colPtr[cols[b]]
		if na != nb {
			return na < nb
		}
		return cols[a] < cols[b]
	})
	pivoted := make([]bool, s.m)
	newBasis := make([]int, s.m)
	for _, q := range cols {
		s.loadCol(q, s.alpha)
		f.ftran(s.alpha)
		r, best := -1, 0.0
		for i := 0; i < s.m; i++ {
			if !pivoted[i] {
				if a := math.Abs(s.alpha[i]); a > best {
					r, best = i, a
				}
			}
		}
		if r < 0 || best == 0 {
			return false
		}
		pivoted[r] = true
		newBasis[r] = q
		f.append(s.alpha, r, s.m)
	}
	copy(s.basis, newBasis)
	for i, q := range s.basis {
		s.inRow[q] = i
	}
	f.sinceFact = 0
	return true
}

type revised struct {
	m, n    int // rows, columns (structural + one slack per row)
	nStruct int

	// CSC storage of [A | I-ish slacks].
	colPtr []int32
	rowIdx []int32
	vals   []float64

	b      []float64
	lo, up []float64
	cost   []float64 // phase-2 objective per column
	state  []int     // atLower / atUpper / basic
	basis  []int     // row -> basic column
	inRow  []int     // column -> row when basic, else -1
	xB     []float64 // value of basis[i], per row

	d []float64 // reduced costs of the current phase
	// w holds the phase-2 pricing weights: Devex reference weights, or
	// steepest-edge norms γ_j = 1 + ‖B⁻¹a_j‖² when pricing == Steepest.
	// Always re-initialized at phase-2 entry (never reused across solves
	// or restored bases — a stale reference framework would silently
	// degrade pricing), and sized s.n alongside every other column array
	// so a restored basis can never index it out of bounds.
	w       []float64
	pricing Pricing
	seReady bool // steepest-edge norms are exact for the current basis

	// Partial (segmented) pricing: seg > 0 prices rotating segments of
	// that size in the primal phases instead of full n-scans; pCursor
	// is the rotation point, persisted across iterations (and solves of
	// the same context) for locality.
	partialSeg int
	pCursor    int

	// Dual steepest-edge row weights β_i ≈ ‖B⁻ᵀe_i‖², reinitialized to
	// 1 at every dual-phase entry and maintained by the
	// Forrest–Goldfarb update (see dual.go).
	dualPricing DualPricing
	dseW        []float64

	fe factorEngine

	tol     float64
	iters   int
	maxIter int
	stall   int
	bland   bool

	// per-solve statistics
	nDual        int
	nFlips       int
	nRefactor    int
	nRefPeriodic int
	nRefUnstable int
	nRefRestore  int
	warm         bool
	warmFellBack bool

	alpha, rho, y []float64 // m-scratch vectors
	seV           []float64 // m-scratch: B⁻ᵀalpha for steepest-edge updates
	wr            []float64 // n-scratch: pivot row of the dual simplex
}

func solveSparse(p *Problem, opt Options) (*Solution, error) {
	tol := opt.Tol
	if tol == 0 {
		tol = num.FeasTol
	}
	if sol, err := p.precheck(tol); sol != nil || err != nil {
		return sol, err
	}
	if opt.Presolve {
		return solvePresolved(p, opt)
	}
	return solveSparseDirect(p, opt)
}

// newRevised builds the CSC model and the initial all-slack basis.
func newRevised(p *Problem, opt Options) *revised {
	tol := opt.Tol
	if tol == 0 {
		tol = num.FeasTol
	}
	m := len(p.rows)
	n := p.n + m
	s := &revised{
		m: m, n: n, nStruct: p.n,
		b:       make([]float64, m),
		lo:      make([]float64, n),
		up:      make([]float64, n),
		cost:    make([]float64, n),
		state:   make([]int, n),
		basis:   make([]int, m),
		inRow:   make([]int, n),
		xB:      make([]float64, m),
		d:       make([]float64, n),
		w:       make([]float64, n),
		alpha:   make([]float64, m),
		rho:     make([]float64, m),
		y:       make([]float64, m),
		seV:     make([]float64, m),
		wr:      make([]float64, n),
		tol:     tol,
		pricing: opt.Pricing,
		fe:      newFactorEngine(opt.Factorization, m),
	}
	s.partialSeg = partialSegment(opt.PartialPricing, n)
	s.dualPricing = opt.DualPricing
	s.dseW = make([]float64, m)
	s.maxIter = opt.MaxIter
	if s.maxIter == 0 {
		s.maxIter = 200*(m+n) + 10000
	}

	copy(s.lo, p.lo)
	copy(s.up, p.up)
	copy(s.cost, p.obj)

	// CSC: structural columns from the rows, then one slack per row.
	counts := make([]int32, n+1)
	nnz := 0
	for _, r := range p.rows {
		for _, c := range r.coefs {
			counts[c.Var+1]++
			nnz++
		}
	}
	for i := 0; i < m; i++ {
		counts[p.n+i+1]++
		nnz++
	}
	s.colPtr = make([]int32, n+1)
	for j := 0; j < n; j++ {
		s.colPtr[j+1] = s.colPtr[j] + counts[j+1]
	}
	s.rowIdx = make([]int32, nnz)
	s.vals = make([]float64, nnz)
	fill := make([]int32, n)
	copy(fill, s.colPtr[:n])
	for i, r := range p.rows {
		s.b[i] = r.rhs
		for _, c := range r.coefs {
			k := fill[c.Var]
			fill[c.Var]++
			s.rowIdx[k] = int32(i)
			s.vals[k] = c.Value
		}
		sl := p.n + i
		k := fill[sl]
		fill[sl]++
		s.rowIdx[k] = int32(i)
		s.vals[k] = 1
		switch r.sense {
		case LE:
			s.lo[sl], s.up[sl] = 0, math.Inf(1)
		case GE:
			s.lo[sl], s.up[sl] = math.Inf(-1), 0
		case EQ:
			s.lo[sl], s.up[sl] = 0, 0
		}
	}

	s.resetToSlackBasis()
	return s
}

// resetToSlackBasis restores the pristine cold-start state: nonbasic
// structural variables rest at a finite bound (free ones at zero, as in
// the dense solver) and the slacks form the (identity) basis. It is
// also the recovery point when a warm start turns out to be unusable.
func (s *revised) resetToSlackBasis() {
	s.fe.reset()
	s.bland = false
	s.stall = 0
	for j := 0; j < s.nStruct; j++ {
		switch {
		case !math.IsInf(s.lo[j], -1):
			s.state[j] = atLower
		case !math.IsInf(s.up[j], 1):
			s.state[j] = atUpper
		default:
			s.state[j] = atLower // free: rests at 0 via valueOf
		}
		s.inRow[j] = -1
	}
	for i := 0; i < s.m; i++ {
		sl := s.nStruct + i
		s.state[sl] = basic
		s.basis[i] = sl
		s.inRow[sl] = i
	}
	s.computeXB()
}

// refactorCause rebuilds the factorization from the current basis,
// attributing the reinversion to one of the refactor-cause counters. It
// returns false when the basis is numerically singular.
func (s *revised) refactorCause(cause int) bool {
	s.nRefactor++
	switch cause {
	case refPeriodic:
		s.nRefPeriodic++
	case refUnstable:
		s.nRefUnstable++
	default:
		s.nRefRestore++
	}
	return s.fe.refactor(s)
}

// restoreBasis installs a Basis snapshot: statuses are copied, the
// basic column set is reinverted from scratch (which both rebuilds the
// factorization and revalidates the basis numerically), and the basic
// values are recomputed under the problem's current bounds. It returns
// false — leaving the solver in need of resetToSlackBasis — when the
// snapshot does not fit the problem or the basis matrix is singular.
func (s *revised) restoreBasis(b *Basis) bool {
	if b == nil || len(b.status) != s.n || b.m != s.m || b.nStruct != s.nStruct {
		return false
	}
	if b.NumBasic() != s.m {
		return false
	}
	r := 0
	for j, st := range b.status {
		switch int(st) {
		case basic:
			s.state[j] = basic
			s.basis[r] = j // provisional row; refactor re-pivots
			s.inRow[j] = r
			r++
		case atUpper:
			s.state[j] = atUpper
			s.inRow[j] = -1
		default:
			s.state[j] = atLower
			s.inRow[j] = -1
		}
	}
	s.normalizeNonbasic()
	s.fe.reset()
	if !s.refactorCause(refRestore) {
		return false
	}
	s.computeXB()
	return true
}

// normalizeNonbasic re-rests nonbasic columns whose status no longer
// matches the current bounds — a bound was relaxed to infinity since
// the basis snapshot was taken. A column cannot rest at an infinite
// bound: it moves to the opposite bound when that one is finite, or to
// the free convention (atLower, resting at zero) when both are
// infinite. Only nonbasic rest values change, so the basis
// factorization stays valid and callers need no reinversion.
func (s *revised) normalizeNonbasic() {
	for j := 0; j < s.n; j++ {
		switch s.state[j] {
		case atUpper:
			if math.IsInf(s.up[j], 1) {
				s.state[j] = atLower // finite lo, or free resting at 0
			}
		case atLower:
			if math.IsInf(s.lo[j], -1) && !math.IsInf(s.up[j], 1) {
				s.state[j] = atUpper
			}
		}
	}
}

// snapshotBasis captures the current basis for reuse via WarmStart.
func (s *revised) snapshotBasis() *Basis {
	st := make([]int8, s.n)
	for j := range st {
		st[j] = int8(s.state[j])
	}
	return &Basis{status: st, nStruct: s.nStruct, m: s.m}
}

func (s *revised) stats() Stats {
	st := Stats{
		Iterations:       s.iters,
		DualIterations:   s.nDual,
		BoundFlips:       s.nFlips,
		Refactorizations: s.nRefactor,
		RefactorPeriodic: s.nRefPeriodic,
		RefactorUnstable: s.nRefUnstable,
		RefactorRestore:  s.nRefRestore,
		Warm:             s.warm,
		WarmFellBack:     s.warmFellBack,
	}
	st.FTUpdates, st.MaxSpikeGrowth = s.fe.ftStats()
	return st
}

// resetStats clears the per-solve counters (including the factor
// engine's cumulative ones) for reuse of this context by lp.Solver.
func (s *revised) resetStats() {
	s.iters = 0
	s.nDual = 0
	s.nFlips = 0
	s.nRefactor = 0
	s.nRefPeriodic = 0
	s.nRefUnstable = 0
	s.nRefRestore = 0
	s.warm = false
	s.warmFellBack = false
	s.fe.clearStats()
}

// denseFallback re-solves with the dense reference engine after the
// sparse path hit a numerically singular basis.
func (s *revised) denseFallback(p *Problem, opt Options) (*Solution, error) {
	sol, err := SolveDenseOpts(p, opt)
	if sol != nil {
		sol.Stats = s.stats()
		sol.Stats.Iterations += sol.Iterations
	}
	return sol, err
}

func solveSparseDirect(p *Problem, opt Options) (*Solution, error) {
	s := newRevised(p, opt)

	// Warm start: restore the caller's basis and try to repair primal
	// feasibility with the dual simplex, which after a single bound
	// change typically needs a handful of pivots instead of a full
	// phase-1/phase-2 restart.
	warmed := false
	if opt.WarmStart != nil {
		if s.restoreBasis(opt.WarmStart) {
			warmed = true
			s.warm = true
		} else {
			s.warmFellBack = true
			s.resetToSlackBasis()
		}
	}
	return s.finishSolve(p, opt, warmed)
}

// primalFeasible reports whether every basic value sits within its
// bounds (to the phase-1 tolerance). Nonbasic columns rest on a bound
// by construction, so this is the whole primal feasibility test.
func (s *revised) primalFeasible() bool {
	for i := 0; i < s.m; i++ {
		if sg, _ := s.infeasibility(s.basis[i], s.xB[i]); sg != 0 {
			return false
		}
	}
	return true
}

// finishSolve drives the solve from the current basis state: the dual
// phase when warm, then (or on fallback) the primal phases.
func (s *revised) finishSolve(p *Problem, opt Options, warmed bool) (*Solution, error) {
	if warmed {
		if s.primalFeasible() {
			// The restored basis is already primal feasible under the
			// current bounds — the case after objective-only edits, and
			// after bound changes the old point still satisfies. Go
			// straight to phase 2: it re-prices against the CURRENT
			// cost vector, so a mutated objective is optimized (no
			// silent staleness) and an unchanged one is verified in a
			// single pricing pass without a pivot. The dual phase would
			// instead demand dual feasibility — which an objective edit
			// destroys — and fall back to a cold solve.
			return s.runPhase2(p, opt)
		}
		switch st := s.dualPhase(); st {
		case IterLimit:
			return &Solution{Status: IterLimit, Iterations: s.iters, Stats: s.stats()}, nil
		case Infeasible:
			return &Solution{Status: Infeasible, Iterations: s.iters, Stats: s.stats()}, nil
		case Optimal:
			// Primal feasible; phase 2 verifies optimality (and mops up
			// any dual infeasibility left by tolerance drift).
			return s.runPhase2(p, opt)
		default: // statusFallback: stale or cycling warm path
			s.warmFellBack = true
			s.resetToSlackBasis()
		}
	}

	st := s.phase1()
	switch st {
	case statusFallback:
		return s.denseFallback(p, opt)
	case IterLimit:
		return &Solution{Status: IterLimit, Iterations: s.iters, Stats: s.stats()}, nil
	case Infeasible:
		return &Solution{Status: Infeasible, Iterations: s.iters, Stats: s.stats()}, nil
	}
	return s.runPhase2(p, opt)
}

// runPhase2 drives the primal phase 2 from the current (primal
// feasible) basis and assembles the final Solution.
func (s *revised) runPhase2(p *Problem, opt Options) (*Solution, error) {
	for round := 0; ; round++ {
		switch st := s.runPrimal2(); st {
		case statusFallback:
			return s.denseFallback(p, opt)
		case IterLimit:
			return &Solution{Status: IterLimit, Iterations: s.iters, Stats: s.stats()}, nil
		case Unbounded:
			return &Solution{Status: Unbounded, Iterations: s.iters, Stats: s.stats()}, nil
		}
		// Feasibility audit. The ratio tests exclude sub-pivTol pivot
		// entries from blocking (noise must never pivot), but a long
		// step still moves those rows' basic values: t ≈ 1e5 times a
		// genuine 1e-10 tableau entry walks a basic variable 1e-5 past
		// its bound without any row ever blocking — found by
		// FuzzPresolveRoundTrip on mixed 1e0/1e6 coefficient scales.
		// The dual simplex is the repair tool that preserves the
		// optimality (dual feasibility) phase 2 just established, so
		// run it and re-verify, at most twice before accepting.
		clean := true
		for i := 0; i < s.m; i++ {
			if sg, _ := s.infeasibility(s.basis[i], s.xB[i]); sg != 0 {
				clean = false
				break
			}
		}
		if clean || round >= 2 {
			break
		}
		switch st := s.dualPhase(); st {
		case Optimal:
			// Repaired; loop to let phase 2 re-verify optimality.
		case IterLimit:
			return &Solution{Status: IterLimit, Iterations: s.iters, Stats: s.stats()}, nil
		default:
			// statusFallback — or an Infeasible that cannot be real,
			// since phase 2 just held a feasible-within-tolerance
			// point. Either way the dual pivots have already mutated
			// the basis, so the only trustworthy exit is the dense
			// reference, same as every other statusFallback site.
			return s.denseFallback(p, opt)
		}
	}

	x := s.extract()
	obj := 0.0
	for j := 0; j < s.nStruct; j++ {
		obj += p.obj[j] * x[j]
	}
	return &Solution{
		Status: Optimal, X: x, Objective: obj,
		Iterations: s.iters, Basis: s.snapshotBasis(), Stats: s.stats(),
	}, nil
}

// ---------------------------------------------------------------- linear algebra

// ftran overwrites x with B⁻¹x through the factor engine.
func (s *revised) ftran(x []float64) { s.fe.ftran(x) }

// btran overwrites z with zᵀB⁻¹ through the factor engine.
func (s *revised) btran(z []float64) { s.fe.btran(z) }

// loadCol writes column j of the CSC matrix into the dense scratch x.
func (s *revised) loadCol(j int, x []float64) {
	for i := range x {
		x[i] = 0
	}
	for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
		x[s.rowIdx[k]] = s.vals[k]
	}
}

// colDot returns column j of the CSC matrix dotted with the dense v.
func (s *revised) colDot(j int, v []float64) float64 {
	sum := 0.0
	for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
		sum += s.vals[k] * v[s.rowIdx[k]]
	}
	return sum
}

// computeXB recomputes the basic values xB = B⁻¹(b − N·x_N) from scratch.
func (s *revised) computeXB() {
	x := s.alpha
	copy(x, s.b)
	for j := 0; j < s.n; j++ {
		if s.state[j] == basic {
			continue
		}
		v := s.valueOf(j)
		if v == 0 {
			continue
		}
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			x[s.rowIdx[k]] -= s.vals[k] * v
		}
	}
	s.ftran(x)
	copy(s.xB, x)
}

// computeD rebuilds the phase-2 reduced costs d = c − cᵀ_B B⁻¹A.
func (s *revised) computeD() {
	for i := 0; i < s.m; i++ {
		s.y[i] = s.cost[s.basis[i]]
	}
	s.btran(s.y)
	for j := 0; j < s.n; j++ {
		if s.state[j] == basic {
			s.d[j] = 0
			continue
		}
		s.d[j] = s.cost[j] - s.colDot(j, s.y)
	}
}

// ---------------------------------------------------------------- shared steps

// valueOf returns the current value of a nonbasic column.
func (s *revised) valueOf(j int) float64 {
	switch s.state[j] {
	case atLower:
		if math.IsInf(s.lo[j], -1) {
			return 0 // free variable resting at zero
		}
		return s.lo[j]
	case atUpper:
		return s.up[j]
	}
	panic("lp: valueOf on basic column")
}

// chooseEntering scans the nonbasic columns for the most attractive
// entering candidate under the current reduced costs: weighted by the
// pricing framework (Devex reference weights or steepest-edge norms) in
// phase 2, plain Dantzig in phase 1, first-index under Bland's rule.
// It returns (-1, 0) at optimality.
func (s *revised) chooseEntering(weighted bool) (int, float64) {
	bestJ, bestDir, bestScore := -1, 0.0, 0.0
	tol := s.tol
	for j := 0; j < s.n; j++ {
		st := s.state[j]
		if st == basic {
			continue
		}
		//lint:allow floatcmp stored-bound identity: branching fixes columns by assigning lo = up bitwise
		if s.lo[j] == s.up[j] {
			continue // fixed column can never move
		}
		dj := s.d[j]
		var dir float64
		switch st {
		case atLower:
			if dj < -tol {
				dir = 1
			} else if math.IsInf(s.lo[j], -1) && dj > tol {
				dir = -1 // free variable may also decrease
			} else {
				continue
			}
		case atUpper:
			if dj > tol {
				dir = -1
			} else {
				continue
			}
		default:
			continue
		}
		if s.bland {
			return j, dir
		}
		score := dj * dj
		if weighted {
			score /= s.w[j]
		}
		if score > bestScore {
			bestJ, bestDir, bestScore = j, dir, score
		}
	}
	return bestJ, bestDir
}

// ratioTest runs the bounded-variable two-pass (Harris) ratio test for
// entering column e moving in direction dir with FTRANed column
// s.alpha: pass 1 computes the step limit with bounds relaxed by
// feasTol, pass 2 picks the numerically largest pivot among the rows
// blocking within the limit, so noise-scale entries never pivot. It
// returns the leaving row (-1 for a bound flip), the step, whether the
// leaving variable exits at its upper bound, and Unbounded when nothing
// blocks.
func (s *revised) ratioTest(e int, dir float64) (int, float64, bool, Status) {
	tMax := math.Inf(1)
	if !math.IsInf(s.lo[e], -1) && !math.IsInf(s.up[e], 1) {
		tMax = s.up[e] - s.lo[e]
	}
	leave, tBest, toUpper := s.ratioScan(dir, tMax, pivTol)
	if leave < 0 && math.IsInf(tMax, 1) {
		// Before declaring an unbounded ray, re-admit sub-pivTol
		// entries: on badly scaled columns the only genuine blocker can
		// sit below the noise threshold.
		colMax := 0.0
		for i := 0; i < s.m; i++ {
			colMax = math.Max(colMax, math.Abs(s.alpha[i]))
		}
		leave, tBest, toUpper = s.ratioScan(dir, tMax, rescueTol(colMax))
		if leave < 0 {
			return -1, 0, false, Unbounded
		}
	}
	if leave < 0 {
		tBest = tMax
	}
	return leave, tBest, toUpper, Optimal
}

// ratioScan is the two-pass (Harris) scan of ratioTest at one pivot
// threshold: pass 1 computes the step limit with bounds relaxed by
// feasTol, pass 2 picks the numerically largest pivot among the rows
// blocking within the limit, so noise-scale entries never pivot.
func (s *revised) ratioScan(dir, tMax, ptol float64) (int, float64, bool) {
	tLim := tMax
	for i := 0; i < s.m; i++ {
		y := dir * s.alpha[i]
		if y < ptol && y > -ptol {
			continue
		}
		bj := s.basis[i]
		var t float64
		if y > 0 {
			// Basic variable decreases toward its lower bound.
			if math.IsInf(s.lo[bj], -1) {
				continue
			}
			t = (s.xB[i] - s.lo[bj] + feasTol) / y
		} else {
			if math.IsInf(s.up[bj], 1) {
				continue
			}
			t = (s.xB[i] - s.up[bj] - feasTol) / y
		}
		if t < tLim {
			tLim = t
		}
	}
	leave, tBest, pivAbs := -1, tMax, 0.0
	toUpper := false
	for i := 0; i < s.m; i++ {
		a := s.alpha[i]
		y := dir * a
		if y < ptol && y > -ptol {
			continue
		}
		bj := s.basis[i]
		var t float64
		var hitsUpper bool
		if y > 0 {
			if math.IsInf(s.lo[bj], -1) {
				continue
			}
			t = (s.xB[i] - s.lo[bj]) / y
		} else {
			if math.IsInf(s.up[bj], 1) {
				continue
			}
			t = (s.xB[i] - s.up[bj]) / y
			hitsUpper = true
		}
		if t < 0 {
			t = 0
		}
		if t > tLim {
			continue
		}
		pick := leave < 0
		if !pick {
			if s.bland {
				pick = t < tBest-num.RatioTol || (t <= tBest+num.RatioTol && bj < s.basis[leave])
			} else {
				pick = math.Abs(a) > pivAbs
			}
		}
		if pick {
			leave, tBest, pivAbs = i, t, math.Abs(a)
			toUpper = hitsUpper
		}
	}
	return leave, tBest, toUpper
}

// applyStep executes the chosen step: a bound flip when leave < 0, a
// basis change (folding the pivot into the factorization) otherwise.
// It returns false when the factorization had to be rebuilt mid-step
// and the rebuild found the basis singular (caller falls back).
func (s *revised) applyStep(e int, dir float64, leave int, t float64, toUpper bool) bool {
	s.iters++
	if t <= num.RatioTol {
		s.stall++
		if s.stall > 2*(s.m+s.n) {
			s.bland = true
		}
	} else {
		s.stall = 0
	}
	if leave < 0 {
		for i := 0; i < s.m; i++ {
			if a := s.alpha[i]; a != 0 {
				s.xB[i] -= dir * t * a
			}
		}
		if dir > 0 {
			s.state[e] = atUpper
		} else {
			s.state[e] = atLower
		}
		return true
	}
	enterVal := s.valueOf(e) + dir*t
	for i := 0; i < s.m; i++ {
		if a := s.alpha[i]; a != 0 {
			s.xB[i] -= dir * t * a
		}
	}
	lv := s.basis[leave]
	if toUpper {
		s.state[lv] = atUpper
	} else {
		s.state[lv] = atLower
	}
	s.inRow[lv] = -1
	s.basis[leave] = e
	s.inRow[e] = leave
	s.state[e] = basic
	s.xB[leave] = enterVal
	if !s.fe.update(s, leave, s.alpha) {
		// The factorization rejected the pivot (an unstable
		// Forrest–Tomlin spike): rebuild from the updated basis.
		if !s.refactorCause(refUnstable) {
			return false
		}
		s.computeXB()
	}
	return true
}

// extract reads the structural solution out of the basis.
func (s *revised) extract() []float64 {
	x := make([]float64, s.nStruct)
	for j := 0; j < s.nStruct; j++ {
		if s.state[j] == basic {
			x[j] = s.xB[s.inRow[j]]
		} else {
			x[j] = s.valueOf(j)
		}
	}
	// Clamp tiny violations to the bounds for downstream consumers.
	for j := range x {
		if x[j] < s.lo[j] && x[j] > s.lo[j]-num.BoundSnapTol {
			x[j] = s.lo[j]
		}
		if x[j] > s.up[j] && x[j] < s.up[j]+num.BoundSnapTol {
			x[j] = s.up[j]
		}
	}
	return x
}

// ---------------------------------------------------------------- phase 1

// violTol is the per-variable feasibility tolerance of phase 1.
func violTol(bound float64) float64 { return num.FeasTol * (1 + math.Abs(bound)) }

// infeasibility classifies basic variable bj at value v. It returns the
// composite phase-1 cost (-1 below its lower bound, +1 above its upper
// bound, 0 feasible) and the violation amount.
func (s *revised) infeasibility(bj int, v float64) (float64, float64) {
	if !math.IsInf(s.lo[bj], -1) {
		if viol := s.lo[bj] - v; viol > violTol(s.lo[bj]) {
			return -1, viol
		}
	}
	if !math.IsInf(s.up[bj], 1) {
		if viol := v - s.up[bj]; viol > violTol(s.up[bj]) {
			return 1, viol
		}
	}
	return 0, 0
}

// phase1 drives the basic variables inside their bounds by minimizing
// the total bound violation (composite objective, no artificials). The
// cost vector changes whenever the set of violated bounds changes, so
// reduced costs are rebuilt every iteration via one BTRAN + one pass
// over the nonzeros.
func (s *revised) phase1() Status {
	justRefactored := false
	for {
		if s.iters >= s.maxIter {
			return IterLimit
		}
		total := 0.0
		for i := 0; i < s.m; i++ {
			sign, viol := s.infeasibility(s.basis[i], s.xB[i])
			s.y[i] = sign
			total += viol
		}
		if total == 0 {
			return Optimal // primal feasible
		}
		s.btran(s.y)
		var e int
		var dir float64
		if s.partialSeg > 0 && !s.bland {
			// Segmented pricing: same per-iteration y rebuild, but only
			// one rotating segment of reduced costs is computed.
			e, dir = s.priceSegmented(false)
		} else {
			for j := 0; j < s.n; j++ {
				if s.state[j] == basic {
					s.d[j] = 0
					continue
				}
				// Phase-1 costs of nonbasic columns are zero.
				s.d[j] = -s.colDot(j, s.y)
			}
			e, dir = s.chooseEntering(false)
		}
		if e < 0 {
			// Tolerance budget of the residual violations: each violated
			// row contributes relative to the bound it violates and to
			// its own value — NOT to the largest RHS of the whole model,
			// which is unrelated to these rows and (after presolve
			// substitution of large fixed terms) once absorbed a genuine
			// infeasibility. Computed only here: this branch runs at
			// most once per phase.
			loose := 0.0
			for i := 0; i < s.m; i++ {
				sign, _ := s.infeasibility(s.basis[i], s.xB[i])
				if sign == 0 {
					continue
				}
				bj := s.basis[i]
				bound := s.lo[bj]
				if sign > 0 {
					bound = s.up[bj]
				}
				loose += num.LooseFeasTol*(1+math.Abs(bound)) + num.FeasTol*math.Abs(s.xB[i])
			}
			if total <= loose {
				return Optimal // feasible up to tolerance
			}
			return Infeasible
		}
		s.loadCol(e, s.alpha)
		s.ftran(s.alpha)
		leave, t, toUpper, st := s.ratioTestPhase1(e, dir)
		if st == Unbounded {
			// A descent ray on a function bounded below is numerical
			// noise: refactorize once and retry, then give up on the
			// sparse path.
			if justRefactored {
				return statusFallback
			}
			if !s.refactorCause(refUnstable) {
				return statusFallback
			}
			s.computeXB()
			justRefactored = true
			continue
		}
		justRefactored = false
		if !s.applyStep(e, dir, leave, t, toUpper) {
			return statusFallback
		}
		if s.fe.updates() >= refactorEvery {
			if !s.refactorCause(refPeriodic) {
				return statusFallback
			}
			s.computeXB()
		}
	}
}

// ratioTestPhase1 is the bounded ratio test of phase 1: feasible basic
// variables block at the bound they would violate, infeasible ones block
// at the violated bound they are moving toward (where they turn
// feasible). The entering variable's own range participates as a bound
// flip, like in phase 2.
func (s *revised) ratioTestPhase1(e int, dir float64) (int, float64, bool, Status) {
	tMax := math.Inf(1)
	if !math.IsInf(s.lo[e], -1) && !math.IsInf(s.up[e], 1) {
		tMax = s.up[e] - s.lo[e]
	}
	// blockAt returns the strict and relaxed blocking steps for row i,
	// or ok=false when the row does not block this direction.
	blockAt := func(i int, ptol float64) (t, tRelaxed float64, hitsUpper, ok bool) {
		a := s.alpha[i]
		if a < ptol && a > -ptol {
			return 0, 0, false, false
		}
		delta := -dir * a // rate of change of xB[i] per unit step
		bj := s.basis[i]
		sign, _ := s.infeasibility(bj, s.xB[i])
		switch {
		case sign < 0: // below lower bound
			if delta <= 0 {
				return 0, 0, false, false // moving further down re-prices next iteration
			}
			t = (s.lo[bj] - s.xB[i]) / delta
			tRelaxed = t + feasTol/delta
		case sign > 0: // above upper bound
			if delta >= 0 {
				return 0, 0, false, false
			}
			t = (s.xB[i] - s.up[bj]) / -delta
			tRelaxed = t + feasTol/-delta
			hitsUpper = true
		default: // feasible: standard blocking
			if delta < 0 && !math.IsInf(s.lo[bj], -1) {
				t = (s.xB[i] - s.lo[bj]) / -delta
				tRelaxed = t + feasTol/-delta
			} else if delta > 0 && !math.IsInf(s.up[bj], 1) {
				t = (s.up[bj] - s.xB[i]) / delta
				tRelaxed = t + feasTol/delta
				hitsUpper = true
			} else {
				return 0, 0, false, false
			}
		}
		if t < 0 {
			t = 0
		}
		return t, tRelaxed, hitsUpper, true
	}
	scan := func(ptol float64) (int, float64, bool) {
		tLim := tMax
		for i := 0; i < s.m; i++ {
			if _, tRelaxed, _, ok := blockAt(i, ptol); ok && tRelaxed < tLim {
				tLim = tRelaxed
			}
		}
		leave, tBest, pivAbs := -1, tMax, 0.0
		toUpper := false
		for i := 0; i < s.m; i++ {
			t, _, hitsUpper, ok := blockAt(i, ptol)
			if !ok || t > tLim {
				continue
			}
			aAbs := math.Abs(s.alpha[i])
			pick := leave < 0
			if !pick {
				if s.bland {
					pick = t < tBest-num.RatioTol || (t <= tBest+num.RatioTol && s.basis[i] < s.basis[leave])
				} else {
					pick = aAbs > pivAbs
				}
			}
			if pick {
				leave, tBest, pivAbs = i, t, aAbs
				toUpper = hitsUpper
			}
		}
		return leave, tBest, toUpper
	}
	leave, tBest, toUpper := scan(pivTol)
	if leave < 0 && math.IsInf(tMax, 1) {
		// Same rescue as phase 2: a genuine blocker on a badly scaled
		// column can price below pivTol.
		colMax := 0.0
		for i := 0; i < s.m; i++ {
			colMax = math.Max(colMax, math.Abs(s.alpha[i]))
		}
		leave, tBest, toUpper = scan(rescueTol(colMax))
		if leave < 0 {
			return -1, 0, false, Unbounded
		}
	}
	if leave < 0 {
		tBest = tMax
	}
	return leave, tBest, toUpper, Optimal
}

// ---------------------------------------------------------------- phase 2

// initPricing re-initializes the phase-2 pricing framework for the
// current basis: Devex reference weights reset to 1, steepest-edge
// norms marked stale (recomputed exactly — one FTRAN per nonbasic
// column through the factorization — on the first pivot that needs
// them, so a re-solve that is already optimal pays nothing).
func (s *revised) initPricing() {
	for j := range s.w {
		s.w[j] = 1
	}
	s.seReady = false
}

// initSteepestNorms computes the exact steepest-edge norms
// γ_j = 1 + ‖B⁻¹a_j‖² for every movable nonbasic column.
func (s *revised) initSteepestNorms() {
	for j := 0; j < s.n; j++ {
		//lint:allow floatcmp stored-bound identity: branching fixes columns by assigning lo = up bitwise
		if s.state[j] == basic || s.lo[j] == s.up[j] {
			s.w[j] = 1
			continue
		}
		s.loadCol(j, s.rho)
		s.ftran(s.rho)
		g := 1.0
		for _, v := range s.rho {
			g += v * v
		}
		s.w[j] = g
	}
	s.seReady = true
}

// priceSegmented prices nonbasic columns in rotating segments of
// s.partialSeg columns, computing reduced costs on the fly from the
// BTRANed phase multipliers in s.y (phase 2 prices c_j − a_j·y, phase 1
// prices −a_j·y). It returns the best candidate (Dantzig within the
// segment) of the first segment in rotation order containing any, or
// (-1, 0) after a full wrap over every column — the exact optimality
// certificate of the full scan, just discovered incrementally. The
// cursor stays on a productive segment so consecutive pivots reprice
// the columns most recently in play.
func (s *revised) priceSegmented(ph2 bool) (int, float64) {
	seg := s.partialSeg
	if seg > s.n {
		seg = s.n // one segment covers everything; the wrap below assumes seg ≤ n
	}
	if seg == 0 {
		return -1, 0 // fully presolved-away model: nothing to price
	}
	segs := (s.n + seg - 1) / seg
	tol := s.tol
	for k := 0; k < segs; k++ {
		start := s.pCursor
		bestJ, bestDir, bestScore := -1, 0.0, 0.0
		for t := 0; t < seg; t++ {
			j := start + t
			if j >= s.n {
				j -= s.n
			}
			//lint:allow floatcmp stored-bound identity: branching fixes columns by assigning lo = up bitwise
			if s.state[j] == basic || s.lo[j] == s.up[j] {
				continue
			}
			var dj float64
			if ph2 {
				dj = s.cost[j] - s.colDot(j, s.y)
			} else {
				dj = -s.colDot(j, s.y)
			}
			s.d[j] = dj
			var dir float64
			switch s.state[j] {
			case atLower:
				if dj < -tol {
					dir = 1
				} else if math.IsInf(s.lo[j], -1) && dj > tol {
					dir = -1
				} else {
					continue
				}
			case atUpper:
				if dj > tol {
					dir = -1
				} else {
					continue
				}
			default:
				continue
			}
			if score := dj * dj; score > bestScore {
				bestJ, bestDir, bestScore = j, dir, score
			}
		}
		if bestJ >= 0 {
			return bestJ, bestDir
		}
		s.pCursor += seg
		if s.pCursor >= s.n {
			s.pCursor = 0
		}
	}
	return -1, 0
}

// phase2p is the partial-pricing variant of phase 2: each iteration
// BTRANs y = c_B·B⁻¹ once and prices rotating segments via
// priceSegmented, skipping the O(n) incremental reduced-cost and
// pricing-weight updates entirely. Degeneracy stalls hand the solve to
// the full-scan phase2 whose Bland's rule is finite.
func (s *revised) phase2p() Status {
	justRefactored := false
	for {
		if s.iters >= s.maxIter {
			return IterLimit
		}
		if s.bland {
			return s.phase2()
		}
		for i := 0; i < s.m; i++ {
			s.y[i] = s.cost[s.basis[i]]
		}
		s.btran(s.y)
		e, dir := s.priceSegmented(true)
		if e < 0 {
			return Optimal
		}
		s.loadCol(e, s.alpha)
		s.ftran(s.alpha)
		leave, t, toUpper, st := s.ratioTest(e, dir)
		if st == Unbounded {
			// Same ray re-verification as phase2: only trust the
			// certificate on a fresh factorization.
			if !justRefactored && s.fe.updates() > 0 {
				if !s.refactorCause(refUnstable) {
					return statusFallback
				}
				s.computeXB()
				justRefactored = true
				continue
			}
			return Unbounded
		}
		justRefactored = false
		if leave >= 0 {
			if piv := s.alpha[leave]; math.Abs(piv) < num.StabTol && s.fe.updates() > 0 {
				if !s.refactorCause(refUnstable) {
					return statusFallback
				}
				s.computeXB()
				continue
			}
		}
		if !s.applyStep(e, dir, leave, t, toUpper) {
			return statusFallback
		}
		if s.fe.updates() >= refactorEvery {
			if !s.refactorCause(refPeriodic) {
				return statusFallback
			}
			s.computeXB()
		}
	}
}

// runPrimal2 dispatches phase 2 to the partial-pricing variant when
// enabled (and not under Bland's rule, whose first-index scan must see
// every column).
func (s *revised) runPrimal2() Status {
	if s.partialSeg > 0 && !s.bland {
		return s.phase2p()
	}
	return s.phase2()
}

// phase2 optimizes the real objective with Devex or steepest-edge
// pricing and incremental reduced-cost updates, rebuilding everything
// at each refactorization.
func (s *revised) phase2() Status {
	s.computeD()
	s.initPricing()
	steepest := s.pricing == PricingSteepest
	justRefactored := false
	for {
		if s.iters >= s.maxIter {
			return IterLimit
		}
		e, dir := s.chooseEntering(true)
		if e < 0 {
			return Optimal
		}
		if steepest && !s.seReady {
			// First pivot of this phase: price with exact norms.
			s.initSteepestNorms()
			e, dir = s.chooseEntering(true)
			if e < 0 {
				return Optimal
			}
		}
		s.loadCol(e, s.alpha)
		s.ftran(s.alpha)
		leave, t, toUpper, st := s.ratioTest(e, dir)
		if st == Unbounded {
			// Only trust a ray certificate on a fresh factorization:
			// accumulated Forrest–Tomlin updates (spike growth) can
			// corrupt alpha enough to hide every blocker — phase 1 and
			// the dual phase already re-verify their rays the same way.
			if !justRefactored && s.fe.updates() > 0 {
				if !s.refactorCause(refUnstable) {
					return statusFallback
				}
				s.computeXB()
				s.computeD()
				justRefactored = true
				continue
			}
			return Unbounded
		}
		justRefactored = false
		if leave < 0 {
			if !s.applyStep(e, dir, leave, t, toUpper) {
				return statusFallback
			}
			continue // bound flip: reduced costs and norms unchanged
		}
		piv := s.alpha[leave]
		if math.Abs(piv) < num.StabTol && s.fe.updates() > 0 {
			// Pivot degraded by a stale factorization: rebuild and retry.
			if !s.refactorCause(refUnstable) {
				return statusFallback
			}
			s.computeXB()
			s.computeD()
			continue
		}
		// Row `leave` of B⁻¹ drives the incremental reduced-cost and
		// pricing-weight updates: z_j = rho·A_j is the pivot-row entry
		// of the tableau for column j.
		for i := range s.rho {
			s.rho[i] = 0
		}
		s.rho[leave] = 1
		s.btran(s.rho)
		de := s.d[e]
		ratio := de / piv
		lv := s.basis[leave]
		var we, gammaE float64
		if steepest {
			// γ_e = 1 + ‖alpha‖² exactly, and the extra BTRAN of alpha
			// that the steepest-edge update formula needs.
			gammaE = 1.0
			copy(s.seV, s.alpha)
			for _, v := range s.alpha {
				gammaE += v * v
			}
			s.btran(s.seV)
		} else {
			we = s.w[e]
		}
		for j := 0; j < s.n; j++ {
			if s.state[j] == basic || j == e {
				continue
			}
			z := s.colDot(j, s.rho)
			if z == 0 {
				continue
			}
			s.d[j] -= ratio * z
			rj := z / piv
			if steepest {
				g := s.w[j] - 2*rj*s.colDot(j, s.seV) + rj*rj*gammaE
				if min := 1 + rj*rj; g < min {
					g = min
				}
				s.w[j] = g
			} else if wj := rj * rj * we; wj > s.w[j] {
				s.w[j] = wj
			}
		}
		if !s.applyStep(e, dir, leave, t, toUpper) {
			return statusFallback
		}
		s.d[lv] = -ratio
		s.d[e] = 0
		if steepest {
			s.w[lv] = gammaE / (piv * piv)
		} else if wl := we / (piv * piv); wl > 1 {
			s.w[lv] = wl
		} else {
			s.w[lv] = 1
		}
		if s.fe.updates() >= refactorEvery {
			if !s.refactorCause(refPeriodic) {
				return statusFallback
			}
			s.computeXB()
			s.computeD()
		}
	}
}
