package lp

// Model is a mutable linear program: the incremental re-solve surface
// the serving workloads need. It wraps a Problem and a reusable Solver
// and keeps the warm state — the last optimal Basis plus the Solver's
// live factorization — correct across the three mutations a long-lived
// session performs between solves:
//
//   - SetBounds keeps the live factorization: the basis matrix is
//     untouched by bound changes, so the next Solve warm-starts through
//     the dual simplex (and, when it re-solves from the context's own
//     last basis, skips the reinversion entirely).
//   - AddRow extends the warm basis with the new row's slack made
//     basic: the extended basis matrix is block triangular, reduced
//     costs stay unchanged on the old columns, and the next Solve
//     warm-starts the dual simplex from it — the new slack is the only
//     possibly-violated basic variable — instead of rebuilding cold.
//   - SetObj re-prices: the basis stays primal feasible, so the next
//     Solve runs the primal phase 2 against the new cost vector
//     (detected through the Problem's objective version counter)
//     instead of silently optimizing the stale objective.
//
// A Model is not safe for concurrent use; callers that share one across
// goroutines (the sched facade's per-formulation warm state) serialize
// access with their own mutex.
type Model struct {
	p     *Problem
	sv    *Solver
	basis *Basis // warm-start basis for the next Solve, nil = cold
}

// NewModel creates a mutable LP with n variables, zero objective and
// default bounds [0, +inf), like New.
func NewModel(n int) *Model {
	p := New(n)
	return &Model{p: p, sv: NewSolver(p)}
}

// ModelFor wraps an existing Problem. The Model takes ownership: the
// caller must not mutate p directly afterwards (clone first when the
// Problem is shared, as with cached formulations).
func ModelFor(p *Problem) *Model {
	return &Model{p: p, sv: NewSolver(p)}
}

// Problem exposes the underlying Problem for read access (Row, Bounds,
// ObjCoef, ...). Mutations must go through the Model's own methods so
// the warm state stays consistent.
func (m *Model) Problem() *Problem { return m.p }

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return m.p.NumVars() }

// NumRows returns the number of constraint rows.
func (m *Model) NumRows() int { return m.p.NumRows() }

// SetObj sets the objective coefficient of variable j. The warm basis
// survives — it stays primal feasible — and the next Solve re-prices
// against the new objective through the primal phase 2.
func (m *Model) SetObj(j int, c float64) { m.p.SetObj(j, c) }

// SetBounds sets l ≤ x_j ≤ u. The warm basis survives (nonbasic columns
// resting on a removed bound are re-rested on restore); the next Solve
// repairs any primal infeasibility with the dual simplex.
func (m *Model) SetBounds(j int, lo, up float64) { m.p.SetBounds(j, lo, up) }

// Bounds returns the bounds of variable j.
func (m *Model) Bounds(j int) (lo, up float64) { return m.p.Bounds(j) }

// AddRow appends a constraint and returns its index. The warm basis is
// extended in place of being discarded: the new row's slack enters the
// basis, so the next Solve restores the extended basis (one
// reinversion) and runs the dual simplex, which prices the new slack
// out if the row cuts off the previous optimum.
func (m *Model) AddRow(coefs []Coef, sense Sense, rhs float64) int {
	i := m.p.AddRow(coefs, sense, rhs)
	if m.basis != nil {
		m.basis = m.basis.grownBy(1)
	}
	return i
}

// Basis returns the warm-start basis the next Solve will use (nil when
// the next solve is cold). After AddRow it is the extended snapshot.
func (m *Model) Basis() *Basis { return m.basis }

// SetBasis primes the warm state with an externally produced basis —
// e.g. a canonical baseline snapshot a session restarts every sweep
// from, so repeated request chains take identical pivot paths. Pass nil
// to force the next Solve cold. The basis must match the problem's
// current shape; an incompatible one falls back cold like any stale
// WarmStart.
func (m *Model) SetBasis(b *Basis) { m.basis = b }

// Solve optimizes the problem under its current rows, bounds and
// objective. Options are honored like Solver.Solve; when opt.WarmStart
// is nil the Model's own warm basis is used. On an Optimal result the
// returned basis becomes the next solve's warm start.
//
//lint:allow ctxflow budget-bounded kernel; cancellation is handled at milp node granularity
func (m *Model) Solve(opt Options) (*Solution, error) {
	if opt.WarmStart == nil {
		opt.WarmStart = m.basis
	}
	sol, err := m.sv.Solve(opt)
	if err == nil && sol.Status == Optimal && sol.Basis != nil {
		m.basis = sol.Basis
	}
	return sol, err
}
