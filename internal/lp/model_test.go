package lp

import (
	"errors"
	"math"
	"testing"
)

// modelFixture builds a small box-constrained LP:
//
//	min  -x0 - 2*x1
//	s.t. x0 + x1 ≤ 4
//	     x0 - x1 ≤ 2
//	     0 ≤ x0, x1 ≤ 3
//
// Optimum: x = (1, 3), obj = -7.
func modelFixture() *Model {
	m := NewModel(2)
	m.SetObj(0, -1)
	m.SetObj(1, -2)
	m.SetBounds(0, 0, 3)
	m.SetBounds(1, 0, 3)
	m.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, LE, 4)
	m.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: -1}}, LE, 2)
	return m
}

func solveOptimal(t *testing.T, m *Model, opt Options) *Solution {
	t.Helper()
	sol, err := m.Solve(opt)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	return sol
}

// coldObjective solves a clone of the model's current problem from
// scratch — the reference the incremental paths must agree with.
func coldObjective(t *testing.T, m *Model) float64 {
	t.Helper()
	sol, err := Solve(m.Problem().Clone())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("cold reference status %v", sol.Status)
	}
	return sol.Objective
}

// TestSolverObjectiveEditReprices is the regression test for the stale
// objective footgun: a Solver used to keep the cost vector it copied at
// construction, so SetObj between solves silently optimized the OLD
// objective. The version counter on Problem now makes the context
// refresh its costs and re-price.
func TestSolverObjectiveEditReprices(t *testing.T) {
	p := New(2)
	p.SetObj(0, -1)
	p.SetObj(1, -2)
	p.SetBounds(0, 0, 3)
	p.SetBounds(1, 0, 3)
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, LE, 4)
	sv := NewSolver(p)
	first, err := sv.Solve(Options{})
	if err != nil || first.Status != Optimal {
		t.Fatalf("first solve: %v %+v", err, first)
	}
	if math.Abs(first.Objective-(-7)) > 1e-9 {
		t.Fatalf("first objective %g, want -7", first.Objective)
	}
	// Flip the objective to prefer x0: min -3*x0 - x1 → x = (3, 1), -10.
	p.SetObj(0, -3)
	p.SetObj(1, -1)
	second, err := sv.Solve(Options{WarmStart: first.Basis})
	if err != nil || second.Status != Optimal {
		t.Fatalf("second solve: %v %+v", err, second)
	}
	if math.Abs(second.Objective-(-10)) > 1e-9 {
		t.Fatalf("objective after edit %g, want -10 (stale-objective footgun)", second.Objective)
	}
	if !second.Stats.Warm || second.Stats.WarmFellBack {
		t.Errorf("objective edit should re-price warm, got warm=%v fellBack=%v",
			second.Stats.Warm, second.Stats.WarmFellBack)
	}
}

// TestModelObjectiveEdit exercises the same re-pricing through Model,
// including the pointer-identity hot path (no WarmStart passed).
func TestModelObjectiveEdit(t *testing.T) {
	m := modelFixture()
	first := solveOptimal(t, m, Options{})
	if math.Abs(first.Objective-(-7)) > 1e-9 {
		t.Fatalf("objective %g, want -7", first.Objective)
	}
	m.SetObj(0, -3)
	m.SetObj(1, -1)
	second := solveOptimal(t, m, Options{})
	if want := coldObjective(t, m); math.Abs(second.Objective-want) > 1e-9 {
		t.Fatalf("objective %g, want %g", second.Objective, want)
	}
	if !second.Stats.Warm || second.Stats.WarmFellBack {
		t.Errorf("warm=%v fellBack=%v, want warm re-price", second.Stats.Warm, second.Stats.WarmFellBack)
	}
}

// TestModelAddRowWarmStartsDual pins the row-addition contract: the
// extended basis (new slack basic) restores warm and the dual simplex
// prices the violated slack out — no cold fallback, dual pivots > 0.
func TestModelAddRowWarmStartsDual(t *testing.T) {
	m := modelFixture()
	first := solveOptimal(t, m, Options{})
	if math.Abs(first.Objective-(-7)) > 1e-9 {
		t.Fatalf("objective %g, want -7", first.Objective)
	}
	// Cut off the optimum (1,3): x1 ≤ 2 as a row.
	m.AddRow([]Coef{{Var: 1, Value: 1}}, LE, 2)
	if b := m.Basis(); b == nil {
		t.Fatal("warm basis dropped by AddRow")
	} else if err := b.Validate(m.Problem()); err != nil {
		t.Fatalf("extended basis invalid: %v", err)
	}
	second := solveOptimal(t, m, Options{})
	if want := coldObjective(t, m); math.Abs(second.Objective-want) > 1e-9 {
		t.Fatalf("objective %g, want %g", second.Objective, want)
	}
	if !second.Stats.Warm || second.Stats.WarmFellBack {
		t.Fatalf("AddRow re-solve warm=%v fellBack=%v, want warm dual repair",
			second.Stats.Warm, second.Stats.WarmFellBack)
	}
	if second.Stats.DualIterations == 0 {
		t.Errorf("cutting row repaired with 0 dual pivots (stats %+v)", second.Stats)
	}
	// A redundant row must not disturb the warm optimum.
	m.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, LE, 100)
	third := solveOptimal(t, m, Options{})
	if math.Abs(third.Objective-second.Objective) > 1e-9 {
		t.Fatalf("redundant row moved the objective: %g → %g", second.Objective, third.Objective)
	}
	if !third.Stats.Warm || third.Stats.WarmFellBack {
		t.Errorf("redundant row fell back cold: %+v", third.Stats)
	}
}

// TestModelMutationChain drives a mixed mutation sequence — bounds,
// rows, objective — asserting every incremental re-solve matches a cold
// solve of the same problem and never falls back.
func TestModelMutationChain(t *testing.T) {
	m := NewModel(3)
	for j := 0; j < 3; j++ {
		m.SetBounds(j, 0, 10)
		m.SetObj(j, -float64(j+1))
	}
	m.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}, {Var: 2, Value: 1}}, LE, 12)
	solveOptimal(t, m, Options{})
	steps := []func(){
		func() { m.SetBounds(2, 0, 3) },
		func() { m.AddRow([]Coef{{Var: 1, Value: 1}, {Var: 2, Value: 1}}, LE, 6) },
		func() { m.SetObj(0, -5) },
		func() { m.SetBounds(1, 1, 4) },
		func() { m.AddRow([]Coef{{Var: 0, Value: 2}, {Var: 1, Value: 1}}, LE, 9) },
		func() { m.SetObj(2, -4) },
	}
	for i, step := range steps {
		step()
		sol := solveOptimal(t, m, Options{})
		if want := coldObjective(t, m); math.Abs(sol.Objective-want) > 1e-7*(1+math.Abs(want)) {
			t.Fatalf("step %d: incremental %g vs cold %g", i, sol.Objective, want)
		}
		if !sol.Stats.Warm || sol.Stats.WarmFellBack {
			t.Errorf("step %d fell back cold: %+v", i, sol.Stats)
		}
	}
}

// TestModelAddRowInfeasible: a row contradicting the bounds must be
// detected (warm dual proof or cold), not mis-solved.
func TestModelAddRowInfeasible(t *testing.T) {
	m := modelFixture()
	solveOptimal(t, m, Options{})
	m.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, GE, 50)
	sol, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	if !errors.Is(sol.Status.Err(), ErrInfeasible) {
		t.Errorf("Status.Err() = %v, want ErrInfeasible", sol.Status.Err())
	}
}

// TestStatusErr pins the sentinel mapping.
func TestStatusErr(t *testing.T) {
	if err := Optimal.Err(); err != nil {
		t.Errorf("Optimal.Err() = %v, want nil", err)
	}
	for st, want := range map[Status]error{
		Infeasible: ErrInfeasible,
		Unbounded:  ErrUnbounded,
		IterLimit:  ErrIterLimit,
	} {
		if !errors.Is(st.Err(), want) {
			t.Errorf("%v.Err() = %v, want %v", st, st.Err(), want)
		}
	}
}
