package lp

import (
	"math"
	"testing"
)

// TestPresolveSingletonRow: a singleton row must become a variable
// bound (and be dropped), and an unsatisfiable singleton must prove
// infeasibility without a pivot.
func TestPresolveSingletonRow(t *testing.T) {
	p := New(2)
	p.SetObj(0, 1)
	p.SetObj(1, 1)
	p.SetBounds(0, 0, 10)
	p.SetBounds(1, 0, 10)
	p.AddRow([]Coef{{Var: 0, Value: 2}}, GE, 6)                     // x0 >= 3
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, GE, 5) // x1 >= 2 at opt
	sol, err := SolveOpts(p, Options{Presolve: true})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %+v", err, sol)
	}
	// The cascade goes all the way: the singleton row becomes x0 >= 3,
	// which leaves x0 and x1 as duplicate columns in the remaining row;
	// they merge, the row becomes a singleton on the merged column, and
	// the empty merged column is fixed — zero pivots total.
	if sol.Stats.PresolveSingletonRows == 0 || sol.Stats.PresolvedRows != 2 {
		t.Fatalf("stats: %+v", sol.Stats)
	}
	if math.Abs(sol.Objective-5) > 1e-9 {
		t.Fatalf("got obj %g x %v, want 5", sol.Objective, sol.X)
	}
	if sol.X[0] < 3-1e-9 || sol.X[0]+sol.X[1] < 5-1e-9 {
		t.Fatalf("postsolved point infeasible: %v", sol.X)
	}
	if err := sol.Basis.Validate(p); err != nil {
		t.Fatalf("postsolved basis: %v", err)
	}

	q := New(1)
	q.SetBounds(0, 0, 2)
	q.AddRow([]Coef{{Var: 0, Value: 1}}, GE, 5) // x0 >= 5 vs up=2
	bad, err := SolveOpts(q, Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Status != Infeasible || bad.Stats.Iterations != 0 {
		t.Fatalf("unsatisfiable singleton: %+v", bad)
	}
}

// TestPresolveSingletonRowCascade: fixing one end of an equality chain
// must collapse the whole chain inside presolve (singleton EQ rows fix
// variables, fixed columns expose new singletons).
func TestPresolveSingletonRowCascade(t *testing.T) {
	const n = 12
	p := New(n)
	p.SetObj(n-1, 1)
	for j := 0; j < n; j++ {
		p.SetBounds(j, 0, 10)
	}
	p.AddRow([]Coef{{Var: 0, Value: 1}}, EQ, 3)
	for j := 0; j+1 < n; j++ {
		p.AddRow([]Coef{{Var: j, Value: 1}, {Var: j + 1, Value: -1}}, EQ, 0)
	}
	sol, err := SolveOpts(p, Options{Presolve: true})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %+v", err, sol)
	}
	if sol.Stats.PresolvedCols != n || sol.Stats.PresolvedRows != n {
		t.Fatalf("cascade left %d/%d un-eliminated: %+v",
			n-sol.Stats.PresolvedCols, n-sol.Stats.PresolvedRows, sol.Stats)
	}
	if sol.Stats.Iterations != 0 {
		t.Fatalf("fully presolved chain took %d pivots", sol.Stats.Iterations)
	}
	for j := 0; j < n; j++ {
		if math.Abs(sol.X[j]-3) > 1e-9 {
			t.Fatalf("x[%d] = %g, want 3", j, sol.X[j])
		}
	}
	if err := sol.Basis.Validate(p); err != nil {
		t.Fatalf("postsolved basis: %v", err)
	}
}

// TestPresolveFreeSingletonColumn: a free column appearing in exactly
// one equality row is substituted out together with the row, and the
// postsolve recovers its value from the row.
func TestPresolveFreeSingletonColumn(t *testing.T) {
	p := New(3)
	p.SetObj(0, 1)
	p.SetObj(2, 2) // cost on the substituted free column
	p.SetBounds(0, 0, 4)
	p.SetBounds(1, 0, 4)
	p.SetBounds(2, math.Inf(-1), math.Inf(1))
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}, {Var: 2, Value: 1}}, EQ, 3)
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: -1}}, LE, 1)

	plain, err := Solve(p)
	if err != nil || plain.Status != Optimal {
		t.Fatalf("plain: %v %+v", err, plain)
	}
	pre, err := SolveOpts(p, Options{Presolve: true})
	if err != nil || pre.Status != Optimal {
		t.Fatalf("presolved: %v %+v", err, pre)
	}
	if pre.Stats.PresolveSingletonCols != 1 {
		t.Fatalf("stats: %+v", pre.Stats)
	}
	if math.Abs(plain.Objective-pre.Objective) > 1e-9*(1+math.Abs(plain.Objective)) {
		t.Fatalf("objective mismatch: %g vs %g", plain.Objective, pre.Objective)
	}
	// The substituted variable's value must satisfy its defining row.
	if got := pre.X[0] + pre.X[1] + pre.X[2]; math.Abs(got-3) > 1e-9 {
		t.Fatalf("defining row violated: sum %g", got)
	}
	if err := pre.Basis.Validate(p); err != nil {
		t.Fatalf("postsolved basis: %v", err)
	}
}

// TestPresolveImpliedFreeSingleton: a bounded column singleton whose
// row already confines it inside its bounds must be treated as free and
// substituted.
func TestPresolveImpliedFreeSingleton(t *testing.T) {
	p := New(2)
	p.SetObj(0, -1)
	p.SetBounds(0, 0, 1)
	p.SetBounds(1, -100, 100) // implied: x1 = 5 - x0 ∈ [4, 5] ⊂ [-100, 100]
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, EQ, 5)
	pre, err := SolveOpts(p, Options{Presolve: true})
	if err != nil || pre.Status != Optimal {
		t.Fatalf("presolved: %v %+v", err, pre)
	}
	if pre.Stats.PresolveSingletonCols != 1 {
		t.Fatalf("implied-free singleton not substituted: %+v", pre.Stats)
	}
	if math.Abs(pre.X[0]-1) > 1e-9 || math.Abs(pre.X[1]-4) > 1e-9 {
		t.Fatalf("x = %v, want [1 4]", pre.X)
	}
}

// TestPresolveDuplicateColumns: proportional columns with proportional
// costs merge into one; the split must land both halves inside their
// bounds and the merged solve must agree with the plain one.
func TestPresolveDuplicateColumns(t *testing.T) {
	p := New(3)
	p.SetObj(0, -1)
	p.SetObj(1, -2) // = lam * obj[0] with lam = 2
	p.SetObj(2, 1)
	p.SetBounds(0, 0, 3)
	p.SetBounds(1, 0, 2)
	p.SetBounds(2, 0, 10)
	// Column 1 = 2 × column 0 in both rows.
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 2}, {Var: 2, Value: 1}}, LE, 8)
	p.AddRow([]Coef{{Var: 0, Value: 3}, {Var: 1, Value: 6}, {Var: 2, Value: -1}}, LE, 12)

	plain, err := Solve(p)
	if err != nil || plain.Status != Optimal {
		t.Fatalf("plain: %v %+v", err, plain)
	}
	pre, err := SolveOpts(p, Options{Presolve: true})
	if err != nil || pre.Status != Optimal {
		t.Fatalf("presolved: %v %+v", err, pre)
	}
	if pre.Stats.PresolveDupCols == 0 {
		t.Fatalf("duplicate columns not detected: %+v", pre.Stats)
	}
	if math.Abs(plain.Objective-pre.Objective) > 1e-9*(1+math.Abs(plain.Objective)) {
		t.Fatalf("objective mismatch: %g vs %g", plain.Objective, pre.Objective)
	}
	for j := 0; j < 3; j++ {
		lo, up := p.Bounds(j)
		if pre.X[j] < lo-1e-9 || pre.X[j] > up+1e-9 {
			t.Fatalf("split x[%d] = %g outside [%g,%g]", j, pre.X[j], lo, up)
		}
	}
	if err := pre.Basis.Validate(p); err != nil {
		t.Fatalf("postsolved basis: %v", err)
	}
}

// TestPresolveDominatedDuplicate: a duplicate column with a strictly
// worse cost and an unbounded partner is fixed at its bound.
func TestPresolveDominatedDuplicate(t *testing.T) {
	p := New(2)
	p.SetObj(0, 1)
	p.SetObj(1, 2) // same column, strictly worse cost
	p.SetBounds(0, 0, math.Inf(1))
	p.SetBounds(1, 0, 5)
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, GE, 4)
	pre, err := SolveOpts(p, Options{Presolve: true})
	if err != nil || pre.Status != Optimal {
		t.Fatalf("presolved: %v %+v", err, pre)
	}
	if pre.Stats.PresolveDupCols != 1 {
		t.Fatalf("dominated duplicate not fixed: %+v", pre.Stats)
	}
	if math.Abs(pre.Objective-4) > 1e-9 || math.Abs(pre.X[1]) > 1e-9 {
		t.Fatalf("got obj %g x %v, want 4 with x1=0", pre.Objective, pre.X)
	}
}

// TestPresolveBoundTighteningToFixed: activity propagation must cascade
// down to fixed columns (x+y=4 with x,y ≤ 2 forces x=y=2) and detect
// activity-infeasible rows without a solve.
func TestPresolveBoundTighteningToFixed(t *testing.T) {
	p := New(2)
	p.SetObj(0, 1)
	p.SetBounds(0, 0, 2)
	p.SetBounds(1, 0, 2)
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, EQ, 4)
	pre, err := SolveOpts(p, Options{Presolve: true})
	if err != nil || pre.Status != Optimal {
		t.Fatalf("presolved: %v %+v", err, pre)
	}
	if pre.Stats.PresolveTightened == 0 || pre.Stats.PresolvedCols != 2 {
		t.Fatalf("tightening did not fix the columns: %+v", pre.Stats)
	}
	if pre.Stats.Iterations != 0 {
		t.Fatalf("fully tightened model took %d pivots", pre.Stats.Iterations)
	}
	if math.Abs(pre.X[0]-2) > 1e-9 || math.Abs(pre.X[1]-2) > 1e-9 {
		t.Fatalf("x = %v, want [2 2]", pre.X)
	}

	q := New(2)
	q.SetBounds(0, 0, 1)
	q.SetBounds(1, 0, 1)
	q.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, GE, 3) // max activity 2
	bad, err := SolveOpts(q, Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Status != Infeasible || bad.Stats.Iterations != 0 {
		t.Fatalf("activity-infeasible row not caught: %+v", bad)
	}
}

// TestTightenBounds exercises the exported bound-tightening-only pass:
// implied bounds must not move the optimum, warm bases must survive,
// and provable emptiness must be reported.
func TestTightenBounds(t *testing.T) {
	p := New(3)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.SetBounds(0, 0, 100)
	p.SetBounds(1, 0, 100)
	p.SetBounds(2, 0, 100)
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, LE, 5)
	p.AddRow([]Coef{{Var: 1, Value: 1}, {Var: 2, Value: 1}}, LE, 7)

	before, err := Solve(p)
	if err != nil || before.Status != Optimal {
		t.Fatalf("before: %v %+v", err, before)
	}
	nt, bad := TightenBounds(p, 3)
	if bad || nt == 0 {
		t.Fatalf("tighten: nt=%d infeasible=%v", nt, bad)
	}
	if _, up := p.Bounds(0); up > 5 {
		t.Fatalf("x0 upper bound not tightened: %g", up)
	}
	after, err := SolveOpts(p, Options{WarmStart: before.Basis})
	if err != nil || after.Status != Optimal {
		t.Fatalf("after: %v %+v", err, after)
	}
	if math.Abs(before.Objective-after.Objective) > 1e-9*(1+math.Abs(before.Objective)) {
		t.Fatalf("tightening moved the optimum: %g vs %g", before.Objective, after.Objective)
	}

	q := New(2)
	q.SetBounds(0, 0, 1)
	q.SetBounds(1, 0, 1)
	q.AddRow([]Coef{{Var: 0, Value: 2}, {Var: 1, Value: 2}}, GE, 9)
	if _, bad := TightenBounds(q, 2); !bad {
		t.Fatal("provably empty problem not reported infeasible")
	}
}

// TestPresolveTightenOnly: when tightening is the only reduction (no
// eliminations), the solve must still round-trip solution and basis
// through the identity maps.
func TestPresolveTightenOnly(t *testing.T) {
	p := New(2)
	p.SetObj(0, -1)
	p.SetObj(1, 1)
	p.SetBounds(0, 0, 100)
	p.SetBounds(1, 0, 100)
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 2}}, LE, 10)
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: -1}}, GE, 1)
	pre, err := SolveOpts(p, Options{Presolve: true})
	if err != nil || pre.Status != Optimal {
		t.Fatalf("presolved: %v %+v", err, pre)
	}
	if pre.Stats.PresolveTightened == 0 || pre.Stats.PresolvedCols != 0 {
		t.Fatalf("stats: %+v", pre.Stats)
	}
	plain, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Objective-pre.Objective) > 1e-9*(1+math.Abs(plain.Objective)) {
		t.Fatalf("objective mismatch: %g vs %g", plain.Objective, pre.Objective)
	}
	if err := pre.Basis.Validate(p); err != nil {
		t.Fatalf("postsolved basis: %v", err)
	}
	// And the basis must warm-start a plain re-solve of a child.
	p.SetBounds(0, 1, 100)
	ws, err := SolveOpts(p, Options{WarmStart: pre.Basis})
	if err != nil || ws.Status != Optimal {
		t.Fatalf("warm child: %v %+v", err, ws)
	}
}

// TestPresolveWarmBasisCrush: a basis from a presolved parent solve
// must be crushable into a presolved child re-solve (the lptest warm
// chains alternate presolve on and off; this pins the direct path).
func TestPresolveWarmBasisCrush(t *testing.T) {
	p := New(4)
	p.SetObj(0, 1)
	p.SetObj(1, -2)
	p.SetObj(2, 3)
	p.SetBounds(0, 0, 10)
	p.SetBounds(1, 2, 2)
	p.SetBounds(2, 0, 5)
	p.SetBounds(3, -1, -1)
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}, {Var: 2, Value: 2}}, GE, 3)
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 2, Value: 1}}, LE, 6)
	parent, err := SolveOpts(p, Options{Presolve: true})
	if err != nil || parent.Status != Optimal {
		t.Fatalf("parent: %v %+v", err, parent)
	}
	p.SetBounds(0, 1, 10)
	child, err := SolveOpts(p, Options{Presolve: true, WarmStart: parent.Basis})
	if err != nil || child.Status != Optimal {
		t.Fatalf("child: %v %+v", err, child)
	}
	cold, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(child.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
		t.Fatalf("objective mismatch: %g vs %g", child.Objective, cold.Objective)
	}
}
