package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTextbook2D(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), 36.
	p := New(2)
	p.SetObj(0, -3)
	p.SetObj(1, -5)
	p.AddRow([]Coef{{0, 1}}, LE, 4)
	p.AddRow([]Coef{{1, 2}}, LE, 12)
	p.AddRow([]Coef{{0, 3}, {1, 2}}, LE, 18)
	sol := solveOK(t, p)
	if !almost(sol.Objective, -36, 1e-6) {
		t.Errorf("objective = %v, want -36", sol.Objective)
	}
	if !almost(sol.X[0], 2, 1e-6) || !almost(sol.X[1], 6, 1e-6) {
		t.Errorf("X = %v, want [2 6]", sol.X)
	}
}

func TestEquality(t *testing.T) {
	// min -x - y s.t. x + y = 10, x ≤ 4 → obj -10, x=4, y=6.
	p := New(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 10)
	p.AddRow([]Coef{{0, 1}}, LE, 4)
	sol := solveOK(t, p)
	if !almost(sol.Objective, -10, 1e-6) {
		t.Errorf("objective = %v, want -10", sol.Objective)
	}
	if !almost(sol.X[0]+sol.X[1], 10, 1e-6) {
		t.Errorf("x+y = %v, want 10", sol.X[0]+sol.X[1])
	}
}

func TestGE(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10 → 20 at (10, 0).
	p := New(2)
	p.SetObj(0, 2)
	p.SetObj(1, 3)
	p.AddRow([]Coef{{0, 1}, {1, 1}}, GE, 10)
	sol := solveOK(t, p)
	if !almost(sol.Objective, 20, 1e-6) {
		t.Errorf("objective = %v, want 20", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := New(1)
	p.AddRow([]Coef{{0, 1}}, GE, 5)
	p.AddRow([]Coef{{0, 1}}, LE, 4)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	p := New(1)
	p.SetBounds(0, 3, 2)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := New(1)
	p.SetObj(0, -1)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestBoundFlips(t *testing.T) {
	// min -x - 2y with 0 ≤ x,y ≤ 1 and a slack constraint: both at upper.
	p := New(2)
	p.SetObj(0, -1)
	p.SetObj(1, -2)
	p.SetBounds(0, 0, 1)
	p.SetBounds(1, 0, 1)
	p.AddRow([]Coef{{0, 1}, {1, 1}}, LE, 10)
	sol := solveOK(t, p)
	if !almost(sol.Objective, -3, 1e-6) {
		t.Errorf("objective = %v, want -3", sol.Objective)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x with x free, x ≥ -5 → -5.
	p := New(1)
	p.SetObj(0, 1)
	p.SetBounds(0, math.Inf(-1), math.Inf(1))
	p.AddRow([]Coef{{0, 1}}, GE, -5)
	sol := solveOK(t, p)
	if !almost(sol.Objective, -5, 1e-6) {
		t.Errorf("objective = %v, want -5", sol.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x + y s.t. -x - y ≤ -4 (i.e. x + y ≥ 4) → 4.
	p := New(2)
	p.SetObj(0, 1)
	p.SetObj(1, 1)
	p.AddRow([]Coef{{0, -1}, {1, -1}}, LE, -4)
	sol := solveOK(t, p)
	if !almost(sol.Objective, 4, 1e-6) {
		t.Errorf("objective = %v, want 4", sol.Objective)
	}
}

func TestDuplicateCoefsMerged(t *testing.T) {
	// 2x + 3x = 5x ≤ 10 with min -x → x = 2.
	p := New(1)
	p.SetObj(0, -1)
	p.AddRow([]Coef{{0, 2}, {0, 3}}, LE, 10)
	sol := solveOK(t, p)
	if !almost(sol.X[0], 2, 1e-6) {
		t.Errorf("x = %v, want 2", sol.X[0])
	}
}

func TestDegenerateBeale(t *testing.T) {
	// Beale's classic cycling example; Dantzig's rule cycles without
	// anti-cycling. We require termination at the known optimum -0.05.
	// min -0.75x1 + 150x2 - 0.02x3 + 6x4
	// s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 ≤ 0
	//      0.5 x1 - 90x2 - 0.02x3 + 3x4 ≤ 0
	//      x3 ≤ 1
	p := New(4)
	p.SetObj(0, -0.75)
	p.SetObj(1, 150)
	p.SetObj(2, -0.02)
	p.SetObj(3, 6)
	p.AddRow([]Coef{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddRow([]Coef{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddRow([]Coef{{2, 1}}, LE, 1)
	sol := solveOK(t, p)
	if !almost(sol.Objective, -0.05, 1e-6) {
		t.Errorf("objective = %v, want -0.05", sol.Objective)
	}
}

// --- brute-force reference ------------------------------------------------

// bruteForce enumerates all vertices of a small LP with finite variable
// bounds: every choice of n active constraints among rows-as-equalities
// and variable bounds, solved by Gaussian elimination, feasibility-checked.
func bruteForce(p *Problem) (float64, bool) {
	n := p.n
	type hyperplane struct {
		a   []float64
		rhs float64
	}
	var planes []hyperplane
	for _, r := range p.rows {
		a := make([]float64, n)
		for _, c := range r.coefs {
			a[c.Var] += c.Value
		}
		planes = append(planes, hyperplane{a, r.rhs})
	}
	for j := 0; j < n; j++ {
		a := make([]float64, n)
		a[j] = 1
		planes = append(planes, hyperplane{a, p.lo[j]})
		b := make([]float64, n)
		b[j] = 1
		planes = append(planes, hyperplane{b, p.up[j]})
	}
	best, found := math.Inf(1), false
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			// Solve the n×n system.
			A := make([][]float64, n)
			for i := 0; i < n; i++ {
				A[i] = append(append([]float64{}, planes[idx[i]].a...), planes[idx[i]].rhs)
			}
			x, ok := gauss(A)
			if !ok {
				return
			}
			if feasible(p, x) {
				obj := 0.0
				for j := 0; j < n; j++ {
					obj += p.obj[j] * x[j]
				}
				if obj < best {
					best = obj
					found = true
				}
			}
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

func gauss(A [][]float64) ([]float64, bool) {
	n := len(A)
	for col := 0; col < n; col++ {
		piv := col
		for r := col; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		if math.Abs(A[piv][col]) < 1e-9 {
			return nil, false
		}
		A[col], A[piv] = A[piv], A[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := A[r][col] / A[col][col]
			for c := col; c <= n; c++ {
				A[r][c] -= f * A[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = A[i][n] / A[i][i]
	}
	return x, true
}

func feasible(p *Problem, x []float64) bool {
	const tol = 1e-6
	for j := 0; j < p.n; j++ {
		if x[j] < p.lo[j]-tol || x[j] > p.up[j]+tol {
			return false
		}
	}
	for _, r := range p.rows {
		lhs := 0.0
		for _, c := range r.coefs {
			lhs += c.Value * x[c.Var]
		}
		switch r.sense {
		case LE:
			if lhs > r.rhs+tol {
				return false
			}
		case GE:
			if lhs < r.rhs-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				return false
			}
		}
	}
	return true
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(2) // 2..3 variables
		m := 1 + rng.Intn(4) // 1..4 rows
		p := New(n)
		for j := 0; j < n; j++ {
			p.SetObj(j, math.Round(rng.NormFloat64()*5))
			p.SetBounds(j, 0, float64(1+rng.Intn(10)))
		}
		for i := 0; i < m; i++ {
			var coefs []Coef
			for j := 0; j < n; j++ {
				if rng.Intn(3) > 0 {
					coefs = append(coefs, Coef{j, math.Round(rng.NormFloat64() * 3)})
				}
			}
			if len(coefs) == 0 {
				coefs = []Coef{{0, 1}}
			}
			sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
			p.AddRow(coefs, sense, math.Round(rng.NormFloat64()*8))
		}
		want, wantFeasible := bruteForce(p)
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !wantFeasible {
			if sol.Status == Optimal {
				// The brute force only misses feasibility through
				// degenerate non-vertex regions; verify the claim.
				if !feasible(p, sol.X) {
					t.Fatalf("trial %d: solver returned infeasible point %v", trial, sol.X)
				}
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, brute force found feasible optimum %v", trial, sol.Status, want)
		}
		if !feasible(p, sol.X) {
			t.Fatalf("trial %d: returned point violates constraints: %v", trial, sol.X)
		}
		if !almost(sol.Objective, want, 1e-5*(1+math.Abs(want))) {
			t.Fatalf("trial %d: objective %v, want %v (X=%v)", trial, sol.Objective, want, sol.X)
		}
	}
}

func TestLargeDense(t *testing.T) {
	// A moderately large LP with known optimum: minimize Σ x_i subject to
	// x_i + x_{i+1} ≥ 1 for a ring of 100 variables → optimum 50.
	const n = 100
	p := New(n)
	for j := 0; j < n; j++ {
		p.SetObj(j, 1)
		p.SetBounds(j, 0, 1)
	}
	for j := 0; j < n; j++ {
		p.AddRow([]Coef{{j, 1}, {(j + 1) % n, 1}}, GE, 1)
	}
	sol := solveOK(t, p)
	if !almost(sol.Objective, 50, 1e-5) {
		t.Errorf("objective = %v, want 50", sol.Objective)
	}
}

// --- robustness and scale tests -------------------------------------------

func TestBadlyScaledProblem(t *testing.T) {
	// Coefficients spanning 12 orders of magnitude, as in the mapping
	// LPs (bytes ~1e5 against periods ~1e-6).
	p := New(2)
	p.SetObj(0, 1)
	p.SetBounds(0, 0, math.Inf(1))
	p.SetBounds(1, 0, 1)
	// 1e5·y − 2.5e10·T ≤ 0 → T ≥ 4e-6 when y = 1; force y = 1.
	p.AddRow([]Coef{{1, 1e5}, {0, -2.5e10}}, LE, 0)
	p.AddRow([]Coef{{1, 1}}, GE, 1)
	sol := solveOK(t, p)
	if !almost(sol.Objective, 4e-6, 1e-12) {
		t.Errorf("objective = %v, want 4e-6", sol.Objective)
	}
}

func TestManyEqualities(t *testing.T) {
	// A chain of equalities x_i = x_{i+1}, x_0 = 3, minimize x_{n-1}.
	const n = 40
	p := New(n)
	p.SetObj(n-1, 1)
	for j := 0; j < n; j++ {
		p.SetBounds(j, 0, 10)
	}
	p.AddRow([]Coef{{0, 1}}, EQ, 3)
	for j := 0; j+1 < n; j++ {
		p.AddRow([]Coef{{j, 1}, {j + 1, -1}}, EQ, 0)
	}
	sol := solveOK(t, p)
	if !almost(sol.X[n-1], 3, 1e-6) {
		t.Errorf("x[last] = %v, want 3", sol.X[n-1])
	}
}

func TestRedundantRows(t *testing.T) {
	// Duplicate and implied rows must not break phase 1's basis repair.
	p := New(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	for i := 0; i < 5; i++ {
		p.AddRow([]Coef{{0, 1}, {1, 1}}, LE, 4)
	}
	p.AddRow([]Coef{{0, 2}, {1, 2}}, LE, 8) // implied by the above
	p.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 4) // tight version
	sol := solveOK(t, p)
	if !almost(sol.Objective, -4, 1e-6) {
		t.Errorf("objective = %v, want -4", sol.Objective)
	}
}

func TestFixedVariables(t *testing.T) {
	p := New(3)
	p.SetObj(2, 1)
	p.SetBounds(0, 2, 2) // fixed
	p.SetBounds(1, 3, 3) // fixed
	p.SetBounds(2, 0, math.Inf(1))
	// z ≥ x + y
	p.AddRow([]Coef{{2, 1}, {0, -1}, {1, -1}}, GE, 0)
	sol := solveOK(t, p)
	if !almost(sol.Objective, 5, 1e-6) {
		t.Errorf("objective = %v, want 5", sol.Objective)
	}
}

func TestIterLimitReported(t *testing.T) {
	const n = 30
	p := New(n)
	for j := 0; j < n; j++ {
		p.SetObj(j, -1)
		p.SetBounds(j, 0, 1)
		p.AddRow([]Coef{{j, 1}, {(j + 1) % n, 1}}, LE, 1)
	}
	sol, err := SolveOpts(p, Options{MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Errorf("status = %v, want iteration-limit", sol.Status)
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	for s, want := range map[Sense]string{LE: "<=", GE: ">=", EQ: "="} {
		if s.String() != want {
			t.Errorf("sense string = %q, want %q", s.String(), want)
		}
	}
}
