package lp

import (
	"math"
	"sort"

	"cellstream/internal/num"
)

// The dual simplex phase behind warm starts. After branch-and-bound
// tightens one variable bound, the parent's optimal basis stays dual
// feasible (reduced costs are untouched by bound changes) but the basic
// values may step outside their bounds. Instead of discarding the basis
// and re-running the composite phase 1, dualPhase pivots the violated
// basic variables out — leaving row first, entering column by a dual
// ratio test on the reduced costs — restoring primal feasibility while
// preserving dual feasibility, typically in a handful of iterations.
//
// Selection rules: the leaving row has the largest bound violation; the
// entering column comes from a bound-flip ("long step") dual ratio test
// over the sign-compatible nonbasic columns of the pivot row
// w = e_r B⁻¹ A. The breakpoints |d_j|/|w_j| are traversed in order:
// while the leaving variable's violation survives the flip of a boxed
// column to its opposite bound, that column flips — one dual pivot can
// traverse many bound flips, the workhorse move on 0/1 mapping programs
// where branching drives many α columns across their unit range — and
// the breakpoint that would overshoot (or is not boxed) enters, with a
// Harris-style relaxation so noise-scale reduced costs never force a
// tiny pivot. All flips are absorbed into xB with a single FTRAN. A
// stall counter bails out (statusFallback) under prolonged dual
// degeneracy, and a dual ray is re-verified on a fresh factorization
// before the solve is declared Infeasible.

// dualTol is the dual-feasibility tolerance on reduced costs.
const dualTol = num.DualTol

// dseFloor keeps the approximate dual steepest-edge weights away from
// zero (a drifting weight must never let one row's violation dominate
// the scores unboundedly).
const dseFloor = num.DSEFloor

// dualFeasible reports whether every nonbasic column prices out
// correctly for its status, i.e. the current basis is dual feasible.
func (s *revised) dualFeasible() bool {
	for j := 0; j < s.n; j++ {
		//lint:allow floatcmp stored-bound identity: branching fixes columns by assigning lo = up bitwise
		if s.lo[j] == s.up[j] {
			continue // fixed column: can never enter, any sign is fine
		}
		switch s.state[j] {
		case basic:
			continue
		case atLower:
			if math.IsInf(s.lo[j], -1) && math.IsInf(s.up[j], 1) {
				// Free variable resting at zero: needs d ≈ 0.
				if math.Abs(s.d[j]) > dualTol {
					return false
				}
				continue
			}
			if s.d[j] < -dualTol {
				return false
			}
		case atUpper:
			if s.d[j] > dualTol {
				return false
			}
		}
	}
	return true
}

// dualCand is one sign-compatible entering candidate of the dual ratio
// test: its breakpoint ratio |d_j|/|w_j|, the Harris-relaxed version,
// and the pivot magnitude.
type dualCand struct {
	j          int
	ratio, rel float64
	absW       float64
}

// dualPhase runs the bounded-variable dual simplex from the current
// basis until primal feasibility (Optimal), a proven dual ray
// (Infeasible), the iteration budget (IterLimit), or numerical/cycling
// trouble (statusFallback, caller falls back to the primal phases).
func (s *revised) dualPhase() Status {
	s.computeD()
	if !s.dualFeasible() {
		return statusFallback
	}
	justRefactored := false
	degen := 0
	var cands []dualCand
	// Approximate dual steepest-edge weights: reference start β_i = 1
	// at phase entry (exact ‖B⁻ᵀe_i‖² norms would cost m BTRANs),
	// maintained by the Forrest–Goldfarb update below. Devex-style
	// approximate init is standard practice and keeps the phase-entry
	// cost at zero.
	useDSE := s.dualPricing == DualPricingSteepest
	if useDSE {
		for i := 0; i < s.m; i++ {
			s.dseW[i] = 1
		}
	}
	// A healthy warm repair needs far fewer pivots than a cold solve;
	// a dual phase that keeps pivoting past this budget is churning on
	// degeneracy — hand it to the primal phases instead of burning the
	// whole iteration limit.
	budget := s.nDual + 2*s.m + 500
	for {
		if s.iters >= s.maxIter {
			return IterLimit
		}
		if s.nDual > budget {
			return statusFallback
		}

		// Leaving row: the basic variable with the largest violation
		// (DualPricingMaxViolation), or the largest steepest-edge score
		// viol²/β_i (the default) — `worst` always carries the chosen
		// row's VIOLATION, which the long-step walk below consumes.
		r, sign, worst := -1, 0.0, 0.0
		bestScore := 0.0
		for i := 0; i < s.m; i++ {
			sg, viol := s.infeasibility(s.basis[i], s.xB[i])
			if sg == 0 {
				continue
			}
			score := viol
			if useDSE {
				score = viol * viol / s.dseW[i]
			}
			if score > bestScore {
				r, sign, worst, bestScore = i, sg, viol, score
			}
		}
		if r < 0 {
			return Optimal // primal feasible
		}

		// Pivot row w_j = (B⁻¹A)_{r,j} for every nonbasic column.
		for i := range s.rho {
			s.rho[i] = 0
		}
		s.rho[r] = 1
		s.btran(s.rho)
		for j := 0; j < s.n; j++ {
			//lint:allow floatcmp stored-bound identity: branching fixes columns by assigning lo = up bitwise
			if s.state[j] == basic || s.lo[j] == s.up[j] {
				// Fixed columns (branching and bound tightening fix
				// many) can never enter or flip; skip their pivot-row
				// entries entirely. Their reduced costs go stale below,
				// which is safe: every consumer skips fixed columns,
				// and computeD rebuilds d at each phase entry.
				s.wr[j] = 0
				continue
			}
			s.wr[j] = s.colDot(j, s.rho)
		}

		// Sign-compatible candidates. A column moving away from its
		// bound changes xB[r] by -w_j·t; sign·w_j > 0 means an
		// atLower column (t > 0) pushes xB[r] toward its violated
		// bound, sign·w_j < 0 the same for an atUpper column (t < 0).
		// Free columns may move either way.
		candidate := func(j int, ptol float64) (float64, bool) {
			//lint:allow floatcmp stored-bound identity: branching fixes columns by assigning lo = up bitwise
			if s.state[j] == basic || s.lo[j] == s.up[j] {
				return 0, false
			}
			w := s.wr[j]
			if w < ptol && w > -ptol {
				return 0, false
			}
			if math.IsInf(s.lo[j], -1) && math.IsInf(s.up[j], 1) {
				return w, true // free: both directions admissible
			}
			if s.state[j] == atLower {
				if sign*w > 0 {
					return w, true
				}
				return 0, false
			}
			if sign*w < 0 {
				return w, true
			}
			return 0, false
		}
		cands = cands[:0]
		for j := 0; j < s.n; j++ {
			if w, ok := candidate(j, pivTol); ok {
				aw := math.Abs(w)
				ad := math.Abs(s.d[j])
				cands = append(cands, dualCand{
					j: j, ratio: ad / aw, rel: (ad + dualTol) / aw, absW: aw,
				})
			}
		}
		if len(cands) == 0 {
			// An empty candidate set is a dual ray — the primal is
			// infeasible — but the certificate requires that the pivot
			// row truly has no sign-compatible nonzeros. A genuine entry
			// below pivTol (badly scaled columns; the presolve pipeline
			// hands the dual phase reduced models at mixed scales) voids
			// it: hand those to the cold primal path instead of
			// declaring a false Infeasible — found by
			// FuzzPresolveRoundTrip on warm restarts from postsolved
			// bases.
			rowMax := 0.0
			for j := 0; j < s.n; j++ {
				rowMax = math.Max(rowMax, math.Abs(s.wr[j]))
			}
			for j := 0; j < s.n; j++ {
				if _, ok := candidate(j, rescueTol(rowMax)); ok {
					return statusFallback
				}
			}
			// And only trust the certificate on a fresh factorization.
			if !justRefactored && s.fe.updates() > 0 {
				if !s.refactorCause(refUnstable) {
					return statusFallback
				}
				s.computeXB()
				s.computeD()
				justRefactored = true
				continue
			}
			return Infeasible
		}
		justRefactored = false

		// Long-step walk over the breakpoints: flip boxed candidates
		// whose full range still leaves the violation standing, stop at
		// the breakpoint that would overshoot (or cannot flip).
		sort.Slice(cands, func(a, b int) bool { return cands[a].ratio < cands[b].ratio })
		delta := worst
		stop := len(cands) - 1
		for idx := 0; idx < len(cands)-1; idx++ {
			j := cands[idx].j
			if math.IsInf(s.lo[j], -1) || math.IsInf(s.up[j], 1) {
				stop = idx // one-sided or free: must enter
				break
			}
			gain := (s.up[j] - s.lo[j]) * cands[idx].absW
			if delta-gain <= feasTol*(1+math.Abs(delta)) {
				stop = idx
				break
			}
			delta -= gain
		}

		// Harris relaxation for the entering pick: among the remaining
		// candidates within the relaxed minimum ratio, take the one
		// with the numerically largest pivot.
		thMax := math.Inf(1)
		for _, c := range cands[stop:] {
			if c.rel < thMax {
				thMax = c.rel
			}
		}
		// cands[stop] always passes this filter (rel_j > ratio_j ≥
		// ratio_stop for every j ≥ stop, so ratio_stop < thMax), hence
		// an entering column always exists.
		e, bestW, eratio := cands[stop].j, 0.0, cands[stop].ratio
		for _, c := range cands[stop:] {
			if c.ratio <= thMax && c.absW > bestW {
				e, bestW, eratio = c.j, c.absW, c.ratio
			}
		}

		// FTRAN the entering column BEFORE committing any bound flip;
		// its pivot-row entry re-measures wr[e] through the
		// factorization, and if the drift check abandons this pivot the
		// basis must still be exactly dual feasible — flips only become
		// consistent after the reduced-cost update below crosses their
		// reduced costs over zero.
		s.loadCol(e, s.alpha)
		s.ftran(s.alpha)
		we := s.alpha[r]
		if math.Abs(we) < pivTol || we*s.wr[e] < 0 {
			// BTRAN and FTRAN disagree: factorization has drifted.
			if s.fe.updates() == 0 {
				return statusFallback
			}
			if !s.refactorCause(refUnstable) {
				return statusFallback
			}
			s.computeXB()
			s.computeD()
			continue
		}

		// Forrest–Goldfarb update of the dual steepest-edge weights,
		// computed BEFORE the pivot mutates the factorization: with
		// τ = B⁻¹ρ_r (ρ_r = B⁻ᵀe_r is already in s.rho — the one extra
		// FTRAN per pivot this rule costs) and the FTRANed entering
		// column α in s.alpha,
		//   β_r' = β_r / α_r²
		//   β_i' = β_i − 2(α_i/α_r)τ_i + (α_i/α_r)²β_r   (i ≠ r)
		if useDSE {
			copy(s.seV, s.rho)
			s.ftran(s.seV)
			betaR := s.dseW[r]
			if betaR < dseFloor {
				betaR = dseFloor
			}
			inv := 1 / we
			for i := 0; i < s.m; i++ {
				if i == r {
					continue
				}
				a := s.alpha[i]
				if a == 0 {
					continue
				}
				q := a * inv
				w := s.dseW[i] - 2*q*s.seV[i] + q*q*betaR
				if w < dseFloor {
					w = dseFloor
				}
				s.dseW[i] = w
			}
			if w := betaR * inv * inv; w > dseFloor {
				s.dseW[r] = w
			} else {
				s.dseW[r] = dseFloor
			}
		}

		// Execute the flips — but only for breakpoints decisively below
		// the entering ratio (even with the dualTol slack, the reduced
		// cost crosses zero at the coming update, so the column lands
		// dual feasible at its new bound). Ties with the entering ratio
		// — in particular the θ ≈ 0 breakpoints of a degenerate pivot —
		// must NOT flip: such flips gain no dual progress, perturb every
		// other basic value, and can cycle the phase forever. Flipped
		// displacements are accumulated sparsely and absorbed into xB
		// with one FTRAN.
		nFlip := 0
		for idx := 0; idx < stop; idx++ {
			if cands[idx].rel >= eratio {
				continue
			}
			j := cands[idx].j
			if nFlip == 0 {
				for i := range s.y {
					s.y[i] = 0
				}
			}
			var dv float64
			if s.state[j] == atLower {
				dv = s.up[j] - s.lo[j]
				s.state[j] = atUpper
			} else {
				dv = s.lo[j] - s.up[j]
				s.state[j] = atLower
			}
			for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
				s.y[s.rowIdx[k]] += s.vals[k] * dv
			}
			s.nFlips++
			nFlip++
		}
		if nFlip > 0 {
			s.ftran(s.y)
			for i := 0; i < s.m; i++ {
				if v := s.y[i]; v != 0 {
					s.xB[i] -= v
				}
			}
		}

		// Step: the leaving variable lands exactly on its violated
		// bound; the entering variable absorbs the displacement.
		lv := s.basis[r]
		target := s.lo[lv]
		leaveState := atLower
		if sign > 0 {
			target = s.up[lv]
			leaveState = atUpper
		}
		t := (s.xB[r] - target) / we
		theta := s.d[e] / we
		enterVal := s.valueOf(e) + t
		for i := 0; i < s.m; i++ {
			if a := s.alpha[i]; a != 0 {
				s.xB[i] -= t * a
			}
		}
		s.state[lv] = leaveState
		s.inRow[lv] = -1
		s.basis[r] = e
		s.inRow[e] = r
		s.state[e] = basic
		s.xB[r] = enterVal
		s.iters++
		s.nDual++
		if !s.fe.update(s, r, s.alpha) {
			if !s.refactorCause(refUnstable) {
				return statusFallback
			}
			s.computeXB()
		}

		// Reduced-cost update from the pivot row: d_j -= θ·w_j. The
		// flipped columns' reduced costs cross zero here, matching
		// their new resting bound.
		if theta != 0 {
			for j := 0; j < s.n; j++ {
				if s.state[j] == basic {
					continue
				}
				if w := s.wr[j]; w != 0 {
					s.d[j] -= theta * w
				}
			}
		}
		s.d[lv] = -theta
		s.d[e] = 0

		// Anti-cycling: prolonged dual degeneracy (θ ≈ 0 pivots) hands
		// the solve back to the primal phases, whose Bland fallback is
		// finite.
		if math.Abs(theta) <= dualTol {
			degen++
			if degen > 2*(s.m+s.n) {
				return statusFallback
			}
		} else {
			degen = 0
		}

		if s.fe.updates() >= refactorEvery {
			if !s.refactorCause(refPeriodic) {
				return statusFallback
			}
			s.computeXB()
			s.computeD()
		}
	}
}
