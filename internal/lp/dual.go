package lp

import "math"

// The dual simplex phase behind warm starts. After branch-and-bound
// tightens one variable bound, the parent's optimal basis stays dual
// feasible (reduced costs are untouched by bound changes) but the basic
// values may step outside their bounds. Instead of discarding the basis
// and re-running the composite phase 1, dualPhase pivots the violated
// basic variables out — leaving row first, entering column by a dual
// ratio test on the reduced costs — restoring primal feasibility while
// preserving dual feasibility, typically in a handful of iterations.
//
// Selection rules: the leaving row has the largest bound violation;
// the entering column minimizes |d_j|/|w_j| over the sign-compatible
// nonbasic columns of the pivot row w = e_r B⁻¹ A, with a Harris-style
// two-pass relaxation so noise-scale reduced costs never force a tiny
// pivot. A stall counter bails out (statusFallback) under prolonged
// dual degeneracy, and a dual ray is re-verified on a fresh
// factorization before the solve is declared Infeasible.

// dualTol is the dual-feasibility tolerance on reduced costs.
const dualTol = 1e-7

// dualFeasible reports whether every nonbasic column prices out
// correctly for its status, i.e. the current basis is dual feasible.
func (s *revised) dualFeasible() bool {
	for j := 0; j < s.n; j++ {
		if s.lo[j] == s.up[j] {
			continue // fixed column: can never enter, any sign is fine
		}
		switch s.state[j] {
		case basic:
			continue
		case atLower:
			if math.IsInf(s.lo[j], -1) && math.IsInf(s.up[j], 1) {
				// Free variable resting at zero: needs d ≈ 0.
				if math.Abs(s.d[j]) > dualTol {
					return false
				}
				continue
			}
			if s.d[j] < -dualTol {
				return false
			}
		case atUpper:
			if s.d[j] > dualTol {
				return false
			}
		}
	}
	return true
}

// dualPhase runs the bounded-variable dual simplex from the current
// basis until primal feasibility (Optimal), a proven dual ray
// (Infeasible), the iteration budget (IterLimit), or numerical/cycling
// trouble (statusFallback, caller falls back to the primal phases).
func (s *revised) dualPhase() Status {
	s.computeD()
	if !s.dualFeasible() {
		return statusFallback
	}
	justRefactored := false
	degen := 0
	for {
		if s.iters >= s.maxIter {
			return IterLimit
		}

		// Leaving row: the basic variable with the largest violation.
		r, sign, worst := -1, 0.0, 0.0
		for i := 0; i < s.m; i++ {
			sg, viol := s.infeasibility(s.basis[i], s.xB[i])
			if sg != 0 && viol > worst {
				r, sign, worst = i, sg, viol
			}
		}
		if r < 0 {
			return Optimal // primal feasible
		}

		// Pivot row w_j = (B⁻¹A)_{r,j} for every nonbasic column.
		for i := range s.rho {
			s.rho[i] = 0
		}
		s.rho[r] = 1
		s.btran(s.rho)
		for j := 0; j < s.n; j++ {
			if s.state[j] == basic {
				s.wr[j] = 0
				continue
			}
			s.wr[j] = s.colDot(j, s.rho)
		}

		// Entering column: two-pass dual ratio test over the
		// sign-compatible candidates. A column moving away from its
		// bound changes xB[r] by -w_j·t; sign·w_j > 0 means an
		// atLower column (t > 0) pushes xB[r] toward its violated
		// bound, sign·w_j < 0 the same for an atUpper column (t < 0).
		// Free columns may move either way.
		candidate := func(j int) (float64, bool) {
			if s.state[j] == basic || s.lo[j] == s.up[j] {
				return 0, false
			}
			w := s.wr[j]
			if w < pivTol && w > -pivTol {
				return 0, false
			}
			if math.IsInf(s.lo[j], -1) && math.IsInf(s.up[j], 1) {
				return w, true // free: both directions admissible
			}
			if s.state[j] == atLower {
				if sign*w > 0 {
					return w, true
				}
				return 0, false
			}
			if sign*w < 0 {
				return w, true
			}
			return 0, false
		}
		thMax := math.Inf(1)
		for j := 0; j < s.n; j++ {
			if w, ok := candidate(j); ok {
				if rel := (math.Abs(s.d[j]) + dualTol) / math.Abs(w); rel < thMax {
					thMax = rel
				}
			}
		}
		e, bestW := -1, 0.0
		for j := 0; j < s.n; j++ {
			if w, ok := candidate(j); ok {
				aw := math.Abs(w)
				if math.Abs(s.d[j])/aw <= thMax && aw > bestW {
					e, bestW = j, aw
				}
			}
		}
		if e < 0 {
			// Dual ray: the primal is infeasible — but only trust the
			// certificate on a fresh factorization.
			if !justRefactored && s.sinceFact > 0 {
				if !s.refactor() {
					return statusFallback
				}
				s.computeXB()
				s.computeD()
				justRefactored = true
				continue
			}
			return Infeasible
		}
		justRefactored = false

		// FTRAN the entering column; its pivot-row entry re-measures
		// wr[e] through the (possibly long) eta file.
		s.loadCol(e, s.alpha)
		s.ftran(s.alpha)
		we := s.alpha[r]
		if math.Abs(we) < pivTol || we*s.wr[e] < 0 {
			// BTRAN and FTRAN disagree: factorization has drifted.
			if s.sinceFact == 0 {
				return statusFallback
			}
			if !s.refactor() {
				return statusFallback
			}
			s.computeXB()
			s.computeD()
			continue
		}

		// Step: the leaving variable lands exactly on its violated
		// bound; the entering variable absorbs the displacement.
		lv := s.basis[r]
		target := s.lo[lv]
		leaveState := atLower
		if sign > 0 {
			target = s.up[lv]
			leaveState = atUpper
		}
		t := (s.xB[r] - target) / we
		theta := s.d[e] / we
		enterVal := s.valueOf(e) + t
		for i := 0; i < s.m; i++ {
			if a := s.alpha[i]; a != 0 {
				s.xB[i] -= t * a
			}
		}
		s.state[lv] = leaveState
		s.inRow[lv] = -1
		s.basis[r] = e
		s.inRow[e] = r
		s.state[e] = basic
		s.xB[r] = enterVal
		s.appendEta(s.alpha, r)
		s.iters++
		s.nDual++

		// Reduced-cost update from the pivot row: d_j -= θ·w_j.
		if theta != 0 {
			for j := 0; j < s.n; j++ {
				if s.state[j] == basic {
					continue
				}
				if w := s.wr[j]; w != 0 {
					s.d[j] -= theta * w
				}
			}
		}
		s.d[lv] = -theta
		s.d[e] = 0

		// Anti-cycling: prolonged dual degeneracy (θ ≈ 0 pivots) hands
		// the solve back to the primal phases, whose Bland fallback is
		// finite.
		if math.Abs(theta) <= dualTol {
			degen++
			if degen > 2*(s.m+s.n) {
				return statusFallback
			}
		} else {
			degen = 0
		}

		if s.sinceFact >= refactorEvery {
			if !s.refactor() {
				return statusFallback
			}
			s.computeXB()
			s.computeD()
		}
	}
}
