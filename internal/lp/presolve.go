package lp

import (
	"math"
	"sort"

	"cellstream/internal/num"
)

// Presolve: a multi-pass reduction pipeline iterated to a fixpoint.
// PR 2 started with fixed-column + empty-row elimination (branch-and-
// bound fixes binary columns; the literal formulation's β rows collapse
// once their endpoints are pinned); this grew into the classic
// Andersen & Andersen-style pipeline:
//
//   - empty rows decided (consistent → dropped, violated → Infeasible),
//     with the violation tolerance scaled by the substituted magnitude
//     (the PR 3 inflated-RHS regression);
//   - singleton rows converted into variable bounds and dropped;
//   - fixed columns (lo == up, including columns fixed by tightening or
//     dominance) substituted into their rows;
//   - free and implied-free column singletons substituted out of their
//     equality row (the row defines the variable, so both leave);
//   - duplicate columns — proportional constraint columns — merged into
//     one when their costs are proportional too, or fixed at a bound
//     when one decisively dominates the other;
//   - constraint-driven bound tightening: row activity bounds imply
//     tighter variable bounds, cascading down to fixed columns.
//
// Empty/singleton rows and fixed columns are chased to a fixpoint
// inside each pass, so fixing one end of an equality chain collapses
// the whole chain in a single pass; the remaining reductions feed each
// other across passes (bounded by maxPresolvePasses).
//
// Every reduction pushes a record on a stack. Postsolve replays the
// stack in reverse to un-crush both the solution vector and the final
// basis into the original column space, so a warm basis taken from a
// presolved solve stays reusable — and a warm basis given to a
// presolved solve is crushed when every record is structurally
// compatible with it and silently dropped (cold start) otherwise.

const (
	// maxPresolvePasses bounds the outer fixpoint iteration. Each pass
	// runs every reduction once; empty/singleton-row and fixed-column
	// cascades are already chased to their own fixpoint inside a pass.
	maxPresolvePasses = 8
	// preTol is the decisive-improvement / infeasibility threshold of
	// the bound reductions: implied bounds are only applied when they
	// improve by more than this (scaled), and bound crossings within it
	// are clamped instead of declared infeasible, so noise-scale
	// tightenings can neither loop the pipeline nor cut a boundary-
	// feasible point the solvers would accept.
	preTol = num.LooseFeasTol
	// preEps is the noise tolerance of exact comparisons (proportional
	// columns, empty-row consistency).
	preEps = num.FeasTol
)

// prow is one constraint row of the presolve working copy: coefficients
// stay keyed by original column index, zero values are dropped at
// build, and subMag accumulates the magnitude of everything substituted
// into the RHS — the scale of the cancellation noise an "empty" row can
// carry (the PR 3 regression: a 2e8 coefficient on a fixed column once
// inflated the reduced RHS scale until a violated empty EQ row came
// back optimal).
type prow struct {
	coefs  []Coef
	sense  Sense
	rhs    float64
	subMag float64
	gone   bool
}

// pstep is one recorded reduction. Records are pushed in application
// order; postsolve replays them in reverse, so a record may reference
// variables that a later reduction eliminated — their values are
// already restored by the time it runs.
type pstep interface {
	// postsolveX fills the eliminated values into the original-space
	// solution vector.
	postsolveX(x []float64)
	// postsolveBasis assigns the eliminated columns'/slacks' statuses
	// in the original-space status array (kept entries already copied).
	postsolveBasis(st []int8, nStruct int)
	// crush reports whether an original-space warm basis is compatible
	// with this reduction (false forces a cold start), adjusting the
	// reduced-space status array under construction where needed.
	crush(ps *presolved, b *Basis, st []int8) bool
}

// stepFixCol eliminates a fixed column (lo == up), substituted into its
// rows at elimination time. rest is the nonbasic status the column
// takes in the postsolved basis, computed from the ORIGINAL bounds: a
// column fixed by tightening or dominance may have an infinite original
// lower bound, and a nonbasic column cannot rest there.
type stepFixCol struct {
	j    int
	v    float64
	rest int8
}

func (s stepFixCol) postsolveX(x []float64) { x[s.j] = s.v }
func (s stepFixCol) postsolveBasis(st []int8, nStruct int) {
	st[s.j] = s.rest
}
func (s stepFixCol) crush(ps *presolved, b *Basis, st []int8) bool {
	return int(b.status[s.j]) != basic
}

// stepDropRow eliminates a row whose constraint moved elsewhere (an
// empty row, or a singleton row converted into a variable bound). Its
// slack re-enters the basis on postsolve; crushing requires the slack
// basic, since the reduced problem has no basis slot for it.
type stepDropRow struct{ i int }

func (stepDropRow) postsolveX([]float64) {}
func (s stepDropRow) postsolveBasis(st []int8, nStruct int) {
	st[nStruct+s.i] = int8(basic)
}
func (s stepDropRow) crush(ps *presolved, b *Basis, st []int8) bool {
	return int(b.status[ps.nOrig+s.i]) == basic
}

// stepSubst eliminates a free (or implied-free) column singleton j
// together with its defining equality row i: x_j = (rhs − Σ a_k x_k)/aj
// over the row's other columns as they stood at substitution time. On
// postsolve x_j re-enters the basis in place of the row's slack; a
// crushed warm basis must have exactly one of {x_j, slack_i} basic,
// because the reduction removes exactly one basis slot.
type stepSubst struct {
	j, i    int
	aj, rhs float64
	coefs   []Coef // the row's other columns at substitution time
}

func (s stepSubst) postsolveX(x []float64) {
	v := s.rhs
	for _, c := range s.coefs {
		v -= c.Value * x[c.Var]
	}
	x[s.j] = v / s.aj
}
func (s stepSubst) postsolveBasis(st []int8, nStruct int) {
	st[s.j] = int8(basic)
	st[nStruct+s.i] = int8(atLower)
}
func (s stepSubst) crush(ps *presolved, b *Basis, st []int8) bool {
	jB := int(b.status[s.j]) == basic
	sB := int(b.status[ps.nOrig+s.i]) == basic
	return jB != sB
}

// stepMerge folds duplicate column k (A_k = lam·A_j, c_k = lam·c_j,
// all four bounds finite) into j: the surviving column carries
// z = x_j + lam·x_k with bounds [loj+wLo, upj+wHi] where
// w = lam·x_k ∈ [wLo, wHi]. Postsolve splits z back so both halves land
// inside their own bounds; when the split leaves both halves interior
// (possible when z is basic), the removed column's status still rests
// on a finite bound — the warm-start reinversion recomputes values, so
// the basis only needs to be structurally valid.
type stepMerge struct {
	j, k     int
	lam      float64
	loj, upj float64
	wLo, wHi float64
}

func (s stepMerge) postsolveX(x []float64) {
	z := x[s.j]
	xj := z - s.wLo
	if xj > s.upj {
		xj = s.upj
	}
	if xj < s.loj {
		xj = s.loj
	}
	x[s.j] = xj
	x[s.k] = (z - xj) / s.lam
}
func (s stepMerge) postsolveBasis(st []int8, nStruct int) {
	// st[s.j] already holds the merged column's status (from the
	// reduced basis, or set by a later record when j was eliminated
	// again). The removed column rests at the end of its range that
	// matches: the wHi end when z sits at its upper bound, the wLo end
	// otherwise (including the basic split, which prefers w = wLo).
	loEnd, hiEnd := int8(atLower), int8(atUpper)
	if s.lam < 0 {
		loEnd, hiEnd = hiEnd, loEnd
	}
	if int(st[s.j]) == atUpper {
		st[s.k] = hiEnd
	} else {
		st[s.k] = loEnd
	}
}
func (s stepMerge) crush(ps *presolved, b *Basis, st []int8) bool {
	jB := int(b.status[s.j]) == basic
	kB := int(b.status[s.k]) == basic
	if jB && kB {
		return false // proportional columns can't share a healthy basis
	}
	if kB {
		rc := ps.colMap[s.j]
		if rc < 0 {
			return false
		}
		st[rc] = int8(basic)
	}
	return true
}

// presolveCounters are the per-pass pipeline counters surfaced through
// Stats.
type presolveCounters struct {
	passes        int
	singletonRows int
	singletonCols int
	dupCols       int
	tightened     int
}

// presolved records the pipeline's outcome for postsolve.
type presolved struct {
	nOrig, mOrig int
	orig         *Problem // for the original bounds during basis un-crush
	reduced      *Problem
	colMap       []int // original col -> reduced col, -1 when eliminated
	rowMap       []int // original row -> reduced row, -1 when eliminated
	keptRows     []int // reduced row -> original row
	steps        []pstep
	cnt          presolveCounters
}

func (ps *presolved) fillStats(st *Stats) {
	cols := 0
	for _, jr := range ps.colMap {
		if jr < 0 {
			cols++
		}
	}
	st.PresolvedCols = cols
	st.PresolvedRows = ps.mOrig - len(ps.keptRows)
	st.PresolvePasses = ps.cnt.passes
	st.PresolveSingletonRows = ps.cnt.singletonRows
	st.PresolveSingletonCols = ps.cnt.singletonCols
	st.PresolveDupCols = ps.cnt.dupCols
	st.PresolveTightened = ps.cnt.tightened
}

// tightenSweep is one constraint-propagation sweep over the rows:
// per-row activity bounds imply both row-level infeasibility checks and
// tighter variable bounds. It is shared by the presolve pipeline and
// the exported TightenBounds (the cheap bound-tightening-only pass
// branch-and-bound runs after branching bound changes). rowAt returns
// the row's view and whether it is still live. Implied bounds are only
// applied when decisively better than the current bound, and crossings
// within tolerance are clamped, so the sweep terminates and never cuts
// a boundary-feasible point.
func tightenSweep(mRows int, rowAt func(int) ([]Coef, Sense, float64, bool), lo, up []float64) (nt int, infeasible bool) {
	bad := false
	applyUp := func(j int, v float64) {
		if math.IsInf(v, 1) || math.IsNaN(v) {
			return
		}
		if v >= up[j]-preTol*(1+math.Abs(v)) {
			return // not a decisive improvement
		}
		crossScale := 1 + math.Abs(v) + math.Abs(lo[j])
		if v < lo[j]-preTol*crossScale {
			bad = true
			return
		}
		if v < lo[j]-preEps*crossScale {
			// Ambiguous band: the implied bound crosses lo by more than
			// fp noise but less than the infeasibility threshold.
			// Clamping here would fix a variable outside the true
			// feasible set; not tightening is always sound, so leave
			// it to the solve.
			return
		}
		if w := v - lo[j]; w > preEps*crossScale && w < preTol*(1+math.Abs(v)) {
			// Knife-edge interval: applying would leave a range
			// narrower than the solvers' feasibility slack, letting a
			// vertex mix both (mutually exclusive beyond tolerance)
			// ends — a tolerance-level bound slip then amplifies
			// through the constraint chain into a measurable objective
			// gain (found by FuzzPresolveRoundTrip: a [0, 6e-8]
			// interval bought 1.8e-5 of objective through a ×300
			// coefficient). Exact fixes (w ≈ 0) and wide intervals
			// both stay; the ambiguous band skips.
			return
		}
		up[j] = math.Max(v, lo[j])
		nt++
	}
	applyLo := func(j int, v float64) {
		if math.IsInf(v, -1) || math.IsNaN(v) {
			return
		}
		if v <= lo[j]+preTol*(1+math.Abs(v)) {
			return
		}
		crossScale := 1 + math.Abs(v) + math.Abs(up[j])
		if v > up[j]+preTol*crossScale {
			bad = true
			return
		}
		if v > up[j]+preEps*crossScale {
			return // ambiguous crossing band: see applyUp
		}
		if w := up[j] - v; w > preEps*crossScale && w < preTol*(1+math.Abs(v)) {
			return // knife-edge interval: see applyUp
		}
		lo[j] = math.Min(v, up[j])
		nt++
	}
	for i := 0; i < mRows && !bad; i++ {
		coefs, sense, rhs, live := rowAt(i)
		if !live || len(coefs) == 0 {
			continue
		}
		// Row activity bounds: finite partial sums plus the count of
		// infinite contributions, so "activity excluding column j" is
		// recoverable when j carries the only infinity.
		minSum, maxSum, actMag := 0.0, 0.0, 0.0
		nMinInf, nMaxInf := 0, 0
		for _, c := range coefs {
			a := c.Value
			if a == 0 {
				// Explicit zero coefficients survive in raw Problem
				// rows (the pipeline drops them at build, TightenBounds
				// sees them): 0·(±Inf) would poison the activity sums
				// with NaN.
				continue
			}
			l, u := lo[c.Var], up[c.Var]
			var cmin, cmax float64
			if a > 0 {
				cmin, cmax = a*l, a*u
			} else {
				cmin, cmax = a*u, a*l
			}
			if math.IsInf(cmin, -1) {
				nMinInf++
			} else {
				minSum += cmin
				actMag += math.Abs(cmin)
			}
			if math.IsInf(cmax, 1) {
				nMaxInf++
			} else {
				maxSum += cmax
				actMag += math.Abs(cmax)
			}
		}
		ftol := preTol * (1 + math.Abs(rhs) + actMag)
		if (sense == LE || sense == EQ) && nMinInf == 0 && minSum > rhs+ftol {
			return nt, true
		}
		if (sense == GE || sense == EQ) && nMaxInf == 0 && maxSum < rhs-ftol {
			return nt, true
		}
		for _, c := range coefs {
			a := c.Value
			if a < num.PivTol && a > -num.PivTol {
				continue // a noise-scale divisor would amplify, not tighten
			}
			j := c.Var
			l, u := lo[j], up[j]
			var cmin, cmax float64
			if a > 0 {
				cmin, cmax = a*l, a*u
			} else {
				cmin, cmax = a*u, a*l
			}
			if sense == LE || sense == EQ {
				woMin := math.Inf(-1)
				if nMinInf == 0 {
					woMin = minSum - cmin
				} else if nMinInf == 1 && math.IsInf(cmin, -1) {
					woMin = minSum
				}
				if !math.IsInf(woMin, -1) {
					v := (rhs - woMin) / a
					if a > 0 {
						applyUp(j, v)
					} else {
						applyLo(j, v)
					}
				}
			}
			if sense == GE || sense == EQ {
				woMax := math.Inf(1)
				if nMaxInf == 0 {
					woMax = maxSum - cmax
				} else if nMaxInf == 1 && math.IsInf(cmax, 1) {
					woMax = maxSum
				}
				if !math.IsInf(woMax, 1) {
					v := (rhs - woMax) / a
					if a > 0 {
						applyLo(j, v)
					} else {
						applyUp(j, v)
					}
				}
			}
		}
	}
	return nt, bad
}

// TightenBounds runs constraint-driven bound tightening on p in place:
// up to maxPasses propagation sweeps (0 means 1) deriving implied
// variable bounds from row activity bounds. It returns the number of
// bounds tightened and whether the propagation proved the problem
// infeasible. Implied bounds never cut a feasible point, so the LP
// optimum is unchanged and any warm-start basis for p stays usable —
// this is the cheap reduction branch-and-bound nodes run after a
// branching bound change, pruning provably empty subproblems without
// an LP solve.
func TightenBounds(p *Problem, maxPasses int) (tightened int, infeasible bool) {
	if maxPasses <= 0 {
		maxPasses = 1
	}
	for pass := 0; pass < maxPasses; pass++ {
		nt, bad := tightenSweep(len(p.rows), func(i int) ([]Coef, Sense, float64, bool) {
			r := &p.rows[i]
			return r.coefs, r.sense, r.rhs, true
		}, p.lo, p.up)
		tightened += nt
		if bad {
			return tightened, true
		}
		if nt == 0 {
			break
		}
	}
	return tightened, false
}

// presolveProblem runs the pipeline. It returns (nil, sol) when a
// reduction proves the model infeasible without a solve and (nil, nil)
// when there is nothing to reduce.
func presolveProblem(p *Problem) (*presolved, *Solution) {
	n, m := p.n, len(p.rows)
	ps := &presolved{nOrig: n, mOrig: m, orig: p}
	obj := append([]float64(nil), p.obj...)
	lo := append([]float64(nil), p.lo...)
	up := append([]float64(nil), p.up...)
	rows := make([]prow, m)
	for i, r := range p.rows {
		cf := make([]Coef, 0, len(r.coefs))
		for _, c := range r.coefs {
			if c.Value != 0 {
				cf = append(cf, c)
			}
		}
		rows[i] = prow{coefs: cf, sense: r.sense, rhs: r.rhs, subMag: math.Abs(r.rhs)}
	}
	colGone := make([]bool, n)
	// colRows indexes the rows containing each column at build time.
	// Rows only ever LOSE coefficients, so the index stays a superset
	// of the live membership: fixPass visits colRows[j] and skips gone
	// rows and already-removed coefficients, keeping substitution
	// linear in the column's nonzeros instead of scanning every row.
	colRows := make([][]int32, n)
	for i := range rows {
		for _, c := range rows[i].coefs {
			colRows[c.Var] = append(colRows[c.Var], int32(i))
		}
	}
	infeas := false

	// rowPass decides empty rows and converts singleton rows into
	// variable bounds (a required conversion, not an implied one: the
	// row is deleted, so its bound must be applied exactly).
	rowPass := func() bool {
		changed := false
		for i := range rows {
			r := &rows[i]
			if r.gone {
				continue
			}
			if len(r.coefs) == 0 {
				ftol := preEps * (1 + r.subMag)
				bad := false
				switch r.sense {
				case LE:
					bad = r.rhs < -ftol
				case GE:
					bad = r.rhs > ftol
				case EQ:
					bad = math.Abs(r.rhs) > ftol
				}
				if bad {
					infeas = true
					return changed
				}
				r.gone = true
				ps.steps = append(ps.steps, stepDropRow{i})
				changed = true
				continue
			}
			if len(r.coefs) != 1 {
				continue
			}
			c := r.coefs[0]
			a, j := c.Value, c.Var
			v := r.rhs / a
			// Noise-scale tolerance, like the empty-row decision: a
			// crossing beyond fp noise is a genuine (if tiny)
			// infeasibility, and forgiving it here would disagree with
			// the exact-arithmetic verdict the reference engine leans
			// toward — found by FuzzPresolveRoundTrip.
			tol := preEps * (1 + math.Abs(v) + r.subMag/math.Abs(a))
			upB := (r.sense == LE && a > 0) || (r.sense == GE && a < 0) || r.sense == EQ
			loB := (r.sense == GE && a > 0) || (r.sense == LE && a < 0) || r.sense == EQ
			if upB {
				if v < lo[j]-tol {
					infeas = true
					return changed
				}
				if v < up[j] {
					up[j] = math.Max(v, lo[j])
				}
			}
			if loB {
				if v > up[j]+tol {
					infeas = true
					return changed
				}
				if v > lo[j] {
					lo[j] = math.Min(v, up[j])
				}
			}
			r.gone = true
			ps.steps = append(ps.steps, stepDropRow{i})
			ps.cnt.singletonRows++
			changed = true
		}
		return changed
	}

	// fixPass substitutes every fixed column (lo == up) into its rows.
	fixPass := func() bool {
		changed := false
		for j := 0; j < n; j++ {
			//lint:allow floatcmp stored-bound identity: a column is fixed when lo and up are the same stored value
			if colGone[j] || lo[j] != up[j] {
				continue
			}
			v := lo[j]
			colGone[j] = true
			rest := int8(atLower)
			if math.IsInf(p.lo[j], -1) && !math.IsInf(p.up[j], 1) {
				rest = int8(atUpper)
			}
			ps.steps = append(ps.steps, stepFixCol{j: j, v: v, rest: rest})
			for _, ri := range colRows[j] {
				r := &rows[ri]
				if r.gone {
					continue
				}
				for t := range r.coefs {
					if r.coefs[t].Var == j {
						sub := r.coefs[t].Value * v
						r.rhs -= sub
						r.subMag += math.Abs(sub)
						r.coefs = append(r.coefs[:t], r.coefs[t+1:]...)
						break
					}
				}
			}
			changed = true
		}
		return changed
	}

	// chase runs empty/singleton rows and fixed columns to their own
	// fixpoint, so fixing one end of an equality chain collapses the
	// whole chain inside one outer pass.
	chase := func() bool {
		any := false
		for {
			c1 := rowPass()
			if infeas {
				return any || c1
			}
			c2 := fixPass()
			if c1 || c2 {
				any = true
				continue
			}
			return any
		}
	}

	// singletonColPass substitutes free and implied-free column
	// singletons out of their equality row, and fixes empty columns at
	// their objective-preferred bound.
	singletonColPass := func() bool {
		changed := false
		cnt := make([]int, n)
		rowOf := make([]int, n)
		for i := range rows {
			if rows[i].gone {
				continue
			}
			for _, c := range rows[i].coefs {
				cnt[c.Var]++
				rowOf[c.Var] = i
			}
		}
		for j := 0; j < n; j++ {
			if colGone[j] {
				continue
			}
			if cnt[j] == 0 {
				// Empty column: fix at the bound the objective prefers.
				// An unbounded preference (the needed bound infinite)
				// is left for the solver to certify as Unbounded.
				switch {
				case obj[j] > 0 && !math.IsInf(lo[j], -1):
					up[j] = lo[j]
				case obj[j] < 0 && !math.IsInf(up[j], 1):
					lo[j] = up[j]
				//lint:allow floatcmp stored-bound identity: skip already-fixed columns
				case obj[j] == 0 && lo[j] != up[j]:
					v := math.Min(math.Max(0, lo[j]), up[j])
					lo[j], up[j] = v, v
				default:
					continue
				}
				changed = true
				continue
			}
			if cnt[j] != 1 {
				continue
			}
			i := rowOf[j]
			r := &rows[i]
			if r.gone || r.sense != EQ || len(r.coefs) < 2 {
				continue
			}
			var aj float64
			for _, c := range r.coefs {
				if c.Var == j {
					aj = c.Value
				}
			}
			if math.Abs(aj) < num.PivTol {
				continue
			}
			if !math.IsInf(lo[j], -1) || !math.IsInf(up[j], 1) {
				// Implied-free test: the row bounds x_j inside its own
				// bounds, so they can never bind and x_j is free in
				// disguise.
				woMin, woMax, famag := 0.0, 0.0, math.Abs(r.rhs)
				for _, c := range r.coefs {
					if c.Var == j {
						continue
					}
					a := c.Value
					l, u := lo[c.Var], up[c.Var]
					var cmin, cmax float64
					if a > 0 {
						cmin, cmax = a*l, a*u
					} else {
						cmin, cmax = a*u, a*l
					}
					woMin += cmin // ±Inf propagates through the sum
					woMax += cmax
					if !math.IsInf(cmin, -1) {
						famag += math.Abs(cmin)
					}
					if !math.IsInf(cmax, 1) {
						famag += math.Abs(cmax)
					}
				}
				var iLo, iHi float64
				if aj > 0 {
					iLo, iHi = (r.rhs-woMax)/aj, (r.rhs-woMin)/aj
				} else {
					iLo, iHi = (r.rhs-woMin)/aj, (r.rhs-woMax)/aj
				}
				// The acceptance margin covers only the fp error of the
				// activity sums — a looser (tolerance-scale) margin once
				// let a substituted value land outside its bounds by a
				// coefficient-amplified 1e-3, silently improving the
				// objective (found by FuzzPresolveRoundTrip).
				margin := num.StrictEps * (1 + famag/math.Abs(aj))
				if !(iLo >= lo[j]-margin && iHi <= up[j]+margin) {
					continue
				}
			}
			sc := make([]Coef, 0, len(r.coefs)-1)
			for _, c := range r.coefs {
				if c.Var != j {
					sc = append(sc, c)
				}
			}
			ps.steps = append(ps.steps, stepSubst{j: j, i: i, aj: aj, rhs: r.rhs, coefs: sc})
			for _, c := range sc {
				obj[c.Var] -= obj[j] * c.Value / aj
			}
			colGone[j] = true
			r.gone = true
			ps.cnt.singletonCols++
			changed = true
			for _, c := range sc {
				cnt[c.Var]--
			}
		}
		return changed
	}

	// dupColPass merges proportional columns with proportional costs
	// and fixes dominated duplicates at their bound.
	type ent struct {
		row int32
		val float64
	}
	dupColPass := func() bool {
		changed := false
		colsIdx := make([][]ent, n)
		for i := range rows {
			if rows[i].gone {
				continue
			}
			for _, c := range rows[i].coefs {
				colsIdx[c.Var] = append(colsIdx[c.Var], ent{int32(i), c.Value})
			}
		}
		proportional := func(j, k int) (float64, bool) {
			ej, ek := colsIdx[j], colsIdx[k]
			if len(ej) != len(ek) || len(ej) == 0 {
				return 0, false
			}
			lam := ek[0].val / ej[0].val
			for t := range ej {
				if ej[t].row != ek[t].row {
					return 0, false
				}
				if d := ek[t].val - lam*ej[t].val; math.Abs(d) > preEps*(math.Abs(ek[t].val)+math.Abs(lam*ej[t].val)+1) {
					return 0, false
				}
			}
			return lam, true
		}
		// domFix fixes the dominated column k when shifting mass onto j
		// is always profitable and j's bound can absorb it: every
		// optimum then has w = lam·x_k at the matching end of its
		// range, and feasibility is preserved because any feasible
		// point can be shifted there.
		domFix := func(j, k int, lam, d float64) bool {
			if d < 0 && math.IsInf(up[j], 1) {
				if lam > 0 && !math.IsInf(lo[k], -1) {
					up[k] = lo[k]
					return true
				}
				if lam < 0 && !math.IsInf(up[k], 1) {
					lo[k] = up[k]
					return true
				}
			}
			if d > 0 && math.IsInf(lo[j], -1) {
				if lam > 0 && !math.IsInf(up[k], 1) {
					lo[k] = up[k]
					return true
				}
				if lam < 0 && !math.IsInf(lo[k], -1) {
					up[k] = lo[k]
					return true
				}
			}
			return false
		}
		buckets := map[uint64][]int{}
		for j := 0; j < n; j++ {
			//lint:allow floatcmp stored-bound identity: fixed columns are handled by fixPass, not merged
			if colGone[j] || len(colsIdx[j]) == 0 || lo[j] == up[j] {
				continue
			}
			h := uint64(len(colsIdx[j]))
			for _, e := range colsIdx[j] {
				h = h*1000003 + uint64(e.row)
			}
			buckets[h] = append(buckets[h], j)
		}
		// Visit buckets in sorted key order: map iteration order would
		// make the merge order — and with it the postsolve record stack —
		// differ between otherwise identical runs.
		keys := make([]uint64, 0, len(buckets))
		//lint:allow detsearch order-insensitive key collection; the slice is sorted before any decision is made
		for h := range buckets {
			keys = append(keys, h)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, h := range keys {
			cand := buckets[h]
			for a := 0; a < len(cand); a++ {
				j := cand[a]
				//lint:allow floatcmp stored-bound identity: a prior merge in this pass may have fixed the column
				if colGone[j] || lo[j] == up[j] {
					continue
				}
				for b2 := a + 1; b2 < len(cand); b2++ {
					k := cand[b2]
					//lint:allow floatcmp stored-bound identity: a prior merge in this pass may have fixed the column
					if colGone[k] || lo[k] == up[k] {
						continue
					}
					lam, ok := proportional(j, k)
					if !ok {
						continue
					}
					d := obj[j] - obj[k]/lam
					if math.Abs(d) <= preEps*(1+math.Abs(obj[j])+math.Abs(obj[k]/lam)) {
						if math.IsInf(lo[j], 0) || math.IsInf(up[j], 0) ||
							math.IsInf(lo[k], 0) || math.IsInf(up[k], 0) {
							continue // split undefined with open ranges
						}
						wLo := math.Min(lam*lo[k], lam*up[k])
						wHi := math.Max(lam*lo[k], lam*up[k])
						ps.steps = append(ps.steps, stepMerge{
							j: j, k: k, lam: lam,
							loj: lo[j], upj: up[j], wLo: wLo, wHi: wHi,
						})
						lo[j] += wLo
						up[j] += wHi
						colGone[k] = true
						for _, e := range colsIdx[k] {
							r := &rows[e.row]
							for t := range r.coefs {
								if r.coefs[t].Var == k {
									r.coefs = append(r.coefs[:t], r.coefs[t+1:]...)
									break
								}
							}
						}
						ps.cnt.dupCols++
						changed = true
						continue
					}
					// Dominance in either direction fixes one column;
					// the fixed-column chase eliminates it next round.
					if domFix(j, k, lam, d) || domFix(k, j, 1/lam, -lam*d) {
						ps.cnt.dupCols++
						changed = true
					}
				}
			}
		}
		return changed
	}

	tightenPass := func() bool {
		nt, bad := tightenSweep(m, func(i int) ([]Coef, Sense, float64, bool) {
			r := &rows[i]
			return r.coefs, r.sense, r.rhs, !r.gone
		}, lo, up)
		ps.cnt.tightened += nt
		if bad {
			infeas = true
		}
		return nt > 0
	}

	touched := false
	for pass := 0; pass < maxPresolvePasses; pass++ {
		changed := chase()
		if !infeas {
			changed = singletonColPass() || changed
		}
		if !infeas {
			changed = dupColPass() || changed
		}
		if !infeas {
			changed = tightenPass() || changed
		}
		if changed {
			ps.cnt.passes++
			touched = true
		}
		if infeas || !changed {
			break
		}
	}

	// Build the maps even on early exits so fillStats can count.
	ps.colMap = make([]int, n)
	nKept := 0
	for j := 0; j < n; j++ {
		if colGone[j] {
			ps.colMap[j] = -1
		} else {
			ps.colMap[j] = nKept
			nKept++
		}
	}
	ps.rowMap = make([]int, m)
	for i := range rows {
		if rows[i].gone {
			ps.rowMap[i] = -1
		} else {
			ps.rowMap[i] = len(ps.keptRows)
			ps.keptRows = append(ps.keptRows, i)
		}
	}

	if infeas {
		sol := &Solution{Status: Infeasible}
		ps.fillStats(&sol.Stats)
		return nil, sol
	}
	if !touched {
		return nil, nil
	}

	rp := New(nKept)
	for j := 0; j < n; j++ {
		if jr := ps.colMap[j]; jr >= 0 {
			rp.SetObj(jr, obj[j])
			rp.SetBounds(jr, lo[j], up[j])
		}
	}
	for _, i := range ps.keptRows {
		r := &rows[i]
		cf := make([]Coef, len(r.coefs))
		for t, c := range r.coefs {
			cf[t] = Coef{Var: ps.colMap[c.Var], Value: c.Value}
		}
		rp.AddRow(cf, r.sense, r.rhs)
	}
	ps.reduced = rp
	return ps, nil
}

// crushBasis maps an original-space warm basis into the reduced space.
// It returns nil (cold start) when any reduction record is structurally
// incompatible with the basis, or when the surviving basic count does
// not match the reduced row count.
func (ps *presolved) crushBasis(b *Basis) *Basis {
	if b == nil || b.nStruct != ps.nOrig || b.m != ps.mOrig {
		return nil
	}
	nRed, mRed := ps.reduced.n, len(ps.keptRows)
	st := make([]int8, nRed+mRed)
	for j := 0; j < ps.nOrig; j++ {
		if jr := ps.colMap[j]; jr >= 0 {
			st[jr] = b.status[j]
		}
	}
	for i := 0; i < ps.mOrig; i++ {
		if ir := ps.rowMap[i]; ir >= 0 {
			st[nRed+ir] = b.status[ps.nOrig+i]
		}
	}
	for _, s := range ps.steps {
		if !s.crush(ps, b, st) {
			return nil
		}
	}
	nb := 0
	for _, v := range st {
		if int(v) == basic {
			nb++
		}
	}
	if nb != mRed {
		return nil
	}
	return &Basis{status: st, nStruct: nRed, m: mRed}
}

// uncrushBasis expands a reduced-space basis to the original space:
// kept statuses are copied through the maps, then the reduction records
// replay in reverse — eliminated fixed columns rest at their (fixed)
// lower bound, dropped rows' slacks re-enter the basis, substituted
// columns re-enter the basis in place of their row's slack, and merged
// columns rest at the end of their range matching the survivor.
func (ps *presolved) uncrushBasis(b *Basis) *Basis {
	if b == nil {
		return nil
	}
	st := make([]int8, ps.nOrig+ps.mOrig)
	nRed := ps.reduced.n
	for j := 0; j < ps.nOrig; j++ {
		if jr := ps.colMap[j]; jr >= 0 {
			st[j] = b.status[jr]
		} else {
			st[j] = int8(atLower)
		}
	}
	for i := 0; i < ps.mOrig; i++ {
		if ir := ps.rowMap[i]; ir >= 0 {
			st[ps.nOrig+i] = b.status[nRed+ir]
		} else {
			st[ps.nOrig+i] = int8(basic)
		}
	}
	for t := len(ps.steps) - 1; t >= 0; t-- {
		ps.steps[t].postsolveBasis(st, ps.nOrig)
	}
	// A kept column's reduced status can be unrestable in the original
	// space: presolve may have tightened an infinite bound to a finite
	// one the reduced basis rests on. Re-rest those against the
	// ORIGINAL bounds (the normalizeNonbasic convention: the opposite
	// finite bound, or free-at-zero).
	for j := 0; j < ps.nOrig; j++ {
		switch int(st[j]) {
		case atUpper:
			if math.IsInf(ps.orig.up[j], 1) {
				st[j] = int8(atLower)
			}
		case atLower:
			if math.IsInf(ps.orig.lo[j], -1) && !math.IsInf(ps.orig.up[j], 1) {
				st[j] = int8(atUpper)
			}
		}
	}
	return &Basis{status: st, nStruct: ps.nOrig, m: ps.mOrig}
}

// postsolve un-crushes the reduced solution into the original space,
// replaying the reduction records in reverse. The objective is
// recomputed against the original costs (substitutions shift cost onto
// other columns, so the reduced objective differs by a constant).
func (ps *presolved) postsolve(p *Problem, rsol *Solution) *Solution {
	sol := &Solution{
		Status:     rsol.Status,
		Iterations: rsol.Iterations,
		Stats:      rsol.Stats,
	}
	ps.fillStats(&sol.Stats)
	if rsol.Status != Optimal {
		return sol
	}
	x := make([]float64, ps.nOrig)
	for j := 0; j < ps.nOrig; j++ {
		if jr := ps.colMap[j]; jr >= 0 {
			x[j] = rsol.X[jr]
		}
	}
	for t := len(ps.steps) - 1; t >= 0; t-- {
		ps.steps[t].postsolveX(x)
	}
	sol.X = x
	obj := 0.0
	for j := 0; j < ps.nOrig; j++ {
		obj += p.obj[j] * x[j]
	}
	sol.Objective = obj
	sol.Basis = ps.uncrushBasis(rsol.Basis)
	return sol
}

// solvePresolved is the opt.Presolve entry point of the sparse engine.
func solvePresolved(p *Problem, opt Options) (*Solution, error) {
	ps, sol := presolveProblem(p)
	if sol != nil {
		sol.Stats.WarmFellBack = opt.WarmStart != nil
		return sol, nil
	}
	if ps == nil {
		// Nothing reduced: solve in place, bases flow untouched.
		opt.Presolve = false
		return solveSparseDirect(p, opt)
	}
	ropt := opt
	ropt.Presolve = false
	ropt.WarmStart = ps.crushBasis(opt.WarmStart)
	rsol, err := solveSparseDirect(ps.reduced, ropt)
	if err != nil {
		return nil, err
	}
	out := ps.postsolve(p, rsol)
	if opt.WarmStart != nil && !out.Stats.Warm {
		out.Stats.WarmFellBack = true
	}
	return out, nil
}
