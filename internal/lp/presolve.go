package lp

import "math"

// Presolve: fixed-variable and empty-row elimination, the two
// reductions that matter for the paper's formulations (branch-and-bound
// fixes binary columns; the literal formulation's β rows collapse once
// their endpoints are pinned). The crush direction substitutes fixed
// values into the rows and drops rows left without coefficients; the
// postsolve direction re-inserts the fixed values into the solution
// vector and un-crushes the final basis into the original column space,
// so a warm basis taken from a presolved solve stays reusable — and a
// warm basis given to a presolved solve is crushed when compatible
// (every eliminated column nonbasic, every eliminated row's slack
// basic) and silently dropped otherwise.

// presolved records one reduction for postsolve.
type presolved struct {
	reduced  *Problem
	fixedVal []float64 // per original variable; NaN when kept
	colMap   []int     // original var -> reduced var, -1 when eliminated
	keptRows []int     // reduced row -> original row
	rowMap   []int     // original row -> reduced row, -1 when eliminated
	objConst float64   // objective contribution of the fixed variables
	nOrig    int       // original structural variables
	mOrig    int       // original rows
}

// presolveProblem applies the reductions. It returns (nil, sol) when an
// empty row is inconsistent (the model is infeasible without a solve)
// and (nil, nil) when there is nothing to eliminate.
func presolveProblem(p *Problem) (*presolved, *Solution) {
	ps := &presolved{
		fixedVal: make([]float64, p.n),
		colMap:   make([]int, p.n),
		rowMap:   make([]int, len(p.rows)),
		nOrig:    p.n,
		mOrig:    len(p.rows),
	}
	nFixed := 0
	nKept := 0
	for j := 0; j < p.n; j++ {
		if p.lo[j] == p.up[j] {
			ps.fixedVal[j] = p.lo[j]
			ps.colMap[j] = -1
			ps.objConst += p.obj[j] * p.lo[j]
			nFixed++
		} else {
			ps.fixedVal[j] = math.NaN()
			ps.colMap[j] = nKept
			nKept++
		}
	}

	// First pass over the rows: substitute fixed values and classify.
	// Zero-valued coefficients are dropped here: a row whose surviving
	// coefficients are all zero is numerically empty, and letting it
	// through to the reduced problem once produced a reduced model whose
	// only trace of an inconsistent constraint was a violated fixed
	// slack — at a magnitude the phase-1 feasibility tolerance (scaled
	// by the largest reduced RHS, which the substitution itself can
	// inflate) silently absorbed. Empty rows must be decided here:
	// consistent → dropped, unsatisfiable RHS → Infeasible.
	type redRow struct {
		coefs []Coef
		rhs   float64
	}
	kept := make([]redRow, 0, len(p.rows))
	for i, r := range p.rows {
		rhs := r.rhs
		subMag := math.Abs(r.rhs)
		var coefs []Coef
		for _, c := range r.coefs {
			if c.Value == 0 {
				continue
			}
			if jr := ps.colMap[c.Var]; jr >= 0 {
				coefs = append(coefs, Coef{Var: jr, Value: c.Value})
			} else {
				sub := c.Value * ps.fixedVal[c.Var]
				rhs -= sub
				subMag += math.Abs(sub)
			}
		}
		if len(coefs) == 0 {
			// Empty row: consistent → drop, inconsistent → infeasible.
			// The tolerance scales with the substituted magnitudes, not
			// just the original RHS — cancellation between large fixed
			// terms leaves noise of that larger scale.
			ftol := 1e-9 * (1 + subMag)
			bad := false
			switch r.sense {
			case LE:
				bad = rhs < -ftol
			case GE:
				bad = rhs > ftol
			case EQ:
				bad = math.Abs(rhs) > ftol
			}
			if bad {
				return nil, &Solution{Status: Infeasible}
			}
			ps.rowMap[i] = -1
			continue
		}
		ps.rowMap[i] = len(kept)
		ps.keptRows = append(ps.keptRows, i)
		kept = append(kept, redRow{coefs: coefs, rhs: rhs})
	}

	if nFixed == 0 && len(kept) == len(p.rows) {
		return nil, nil // nothing to do
	}

	rp := New(nKept)
	for j := 0; j < p.n; j++ {
		if jr := ps.colMap[j]; jr >= 0 {
			rp.SetObj(jr, p.obj[j])
			rp.SetBounds(jr, p.lo[j], p.up[j])
		}
	}
	for i, rr := range kept {
		_, sense, _ := p.Row(ps.keptRows[i])
		rp.AddRow(rr.coefs, sense, rr.rhs)
	}
	ps.reduced = rp
	return ps, nil
}

// crushBasis maps an original-space warm basis into the reduced space.
// It returns nil (cold start) when the basis is structurally
// incompatible with the reduction: an eliminated column basic, an
// eliminated row's slack nonbasic, or a basic count mismatch.
func (ps *presolved) crushBasis(b *Basis) *Basis {
	if b == nil || b.nStruct != ps.nOrig || b.m != ps.mOrig {
		return nil
	}
	nRed := ps.reduced.n
	mRed := len(ps.keptRows)
	st := make([]int8, nRed+mRed)
	nb := 0
	for j := 0; j < ps.nOrig; j++ {
		jr := ps.colMap[j]
		if jr < 0 {
			if int(b.status[j]) == basic {
				return nil
			}
			continue
		}
		st[jr] = b.status[j]
		if int(b.status[j]) == basic {
			nb++
		}
	}
	for i := 0; i < ps.mOrig; i++ {
		ir := ps.rowMap[i]
		slack := b.status[ps.nOrig+i]
		if ir < 0 {
			if int(slack) != basic {
				return nil
			}
			continue
		}
		st[nRed+ir] = slack
		if int(slack) == basic {
			nb++
		}
	}
	if nb != mRed {
		return nil
	}
	return &Basis{status: st, nStruct: nRed, m: mRed}
}

// uncrushBasis expands a reduced-space basis to the original space:
// eliminated columns rest nonbasic at their (fixed) lower bound and the
// slack of every eliminated row re-enters the basis, so the basic count
// again matches the original row count.
func (ps *presolved) uncrushBasis(b *Basis) *Basis {
	if b == nil {
		return nil
	}
	st := make([]int8, ps.nOrig+ps.mOrig)
	for j := 0; j < ps.nOrig; j++ {
		if jr := ps.colMap[j]; jr >= 0 {
			st[j] = b.status[jr]
		} else {
			st[j] = atLower
		}
	}
	nRed := ps.reduced.n
	for i := 0; i < ps.mOrig; i++ {
		if ir := ps.rowMap[i]; ir >= 0 {
			st[ps.nOrig+i] = b.status[nRed+ir]
		} else {
			st[ps.nOrig+i] = basic
		}
	}
	return &Basis{status: st, nStruct: ps.nOrig, m: ps.mOrig}
}

// postsolve un-crushes the reduced solution into the original space.
func (ps *presolved) postsolve(rsol *Solution) *Solution {
	sol := &Solution{
		Status:     rsol.Status,
		Iterations: rsol.Iterations,
		Stats:      rsol.Stats,
	}
	sol.Stats.PresolvedCols = ps.nOrig - ps.reduced.n
	sol.Stats.PresolvedRows = ps.mOrig - len(ps.keptRows)
	if rsol.Status != Optimal {
		return sol
	}
	x := make([]float64, ps.nOrig)
	for j := 0; j < ps.nOrig; j++ {
		if jr := ps.colMap[j]; jr >= 0 {
			x[j] = rsol.X[jr]
		} else {
			x[j] = ps.fixedVal[j]
		}
	}
	sol.X = x
	sol.Objective = rsol.Objective + ps.objConst
	sol.Basis = ps.uncrushBasis(rsol.Basis)
	return sol
}

// solvePresolved is the opt.Presolve entry point of the sparse engine.
func solvePresolved(p *Problem, opt Options) (*Solution, error) {
	ps, sol := presolveProblem(p)
	if sol != nil {
		sol.Stats.WarmFellBack = opt.WarmStart != nil
		return sol, nil
	}
	if ps == nil {
		// Nothing eliminated: solve in place, bases flow untouched.
		opt.Presolve = false
		return solveSparseDirect(p, opt)
	}
	ropt := opt
	ropt.Presolve = false
	ropt.WarmStart = ps.crushBasis(opt.WarmStart)
	rsol, err := solveSparseDirect(ps.reduced, ropt)
	if err != nil {
		return nil, err
	}
	out := ps.postsolve(rsol)
	if opt.WarmStart != nil && !out.Stats.Warm {
		out.Stats.WarmFellBack = true
	}
	return out, nil
}
