package lp

import "cellstream/internal/num"

// Solver is a reusable solving context for repeated solves of one
// Problem whose variable bounds change between calls — the access
// pattern of branch-and-bound node re-solves. Across calls it keeps
//
//   - the CSC constraint matrix (built once, rows are immutable),
//   - the basis factorization (the Forrest–Tomlin LU by default, or
//     the eta file under Options.Factorization == FactorEta): when a
//     call warm-starts from the Basis produced by the previous call
//     (pointer-identical snapshot), the live factorization is still
//     valid and the reinversion is skipped entirely — only the basic
//     values are recomputed under the new bounds.
//
// Between calls the caller may change variable bounds (SetBounds) and
// objective coefficients (SetObj — detected through the Problem's
// objective version counter, so the next call re-prices against the new
// costs instead of silently optimizing stale ones). Adding rows makes
// the context rebuild its CSC matrix from scratch on the next call; use
// Model for incremental row additions that keep the warm state. A
// Solver is not safe for concurrent use; branch-and-bound gives each
// worker its own.
type Solver struct {
	p    *Problem
	s    *revised
	last *Basis // snapshot the live factorization represents, nil if stale
	objV uint64 // p.objVersion the context's cost vector was copied at
}

// NewSolver creates a reusable context for p.
func NewSolver(p *Problem) *Solver { return &Solver{p: p} }

// Solve optimizes the problem under its current bounds. Options are
// honored like SolveOpts; Presolve bypasses the context (the pipeline
// hands the engine a reduced problem, which cannot reuse the
// full-space factorization), but the Basis it returns is postsolved
// into the ORIGINAL column space, so a later warm-started call on this
// context restores it like any other snapshot — only the
// pointer-identity reinversion skip is lost.
//
//lint:allow ctxflow budget-bounded kernel; cancellation is handled at milp node granularity
func (sv *Solver) Solve(opt Options) (*Solution, error) {
	tol := opt.Tol
	if tol == 0 {
		tol = num.FeasTol
	}
	if sol, err := sv.p.precheck(tol); sol != nil || err != nil {
		return sol, err
	}
	if opt.Presolve {
		sv.last = nil // presolved solve does not refresh the context
		return solvePresolved(sv.p, opt)
	}

	if sv.s == nil || sv.s.m != len(sv.p.rows) || sv.s.nStruct != sv.p.n {
		sv.s = newRevised(sv.p, opt)
		sv.last = nil
		sv.objV = sv.p.objVersion
	} else {
		sv.refresh(opt, tol)
	}
	s := sv.s

	warmed := false
	if opt.WarmStart == nil {
		s.resetToSlackBasis() // drop leftover state: match a cold solve exactly
	} else {
		switch {
		case sv.last != nil && opt.WarmStart == sv.last:
			// The factorization already represents this basis; only
			// the bounds moved, so re-resting nonbasic columns whose
			// bound went infinite and recomputing the basic values is
			// enough. This is the hot path when a child node is
			// solved right after its parent.
			s.normalizeNonbasic()
			s.computeXB()
			warmed = true
			s.warm = true
		case s.restoreBasis(opt.WarmStart):
			warmed = true
			s.warm = true
		default:
			s.warmFellBack = true
			s.resetToSlackBasis()
		}
	}
	sv.last = nil
	sol, err := s.finishSolve(sv.p, opt, warmed)
	if err == nil && sol.Status == Optimal {
		sv.last = sol.Basis
	}
	return sol, err
}

// refresh re-reads the problem bounds and per-solve options into the
// live context, resetting the per-solve counters but keeping the CSC
// matrix and the factorization. Switching Options.Factorization between
// calls swaps the engine and invalidates the live factorization (the
// next warm start reinverts instead of taking the pointer-identity hot
// path); switching Options.Pricing is free — pricing weights are
// re-initialized at every phase-2 entry.
func (sv *Solver) refresh(opt Options, tol float64) {
	s := sv.s
	copy(s.lo[:s.nStruct], sv.p.lo)
	copy(s.up[:s.nStruct], sv.p.up)
	if sv.objV != sv.p.objVersion {
		// The objective was edited since the context copied it: refresh
		// the cost vector so the next pricing pass optimizes the CURRENT
		// objective. The factorization stays valid (B is untouched by
		// cost changes), so warm starts — including the pointer-identity
		// hot path — survive an objective edit; finishSolve re-prices
		// through phase 2 instead of trusting stale reduced costs.
		copy(s.cost[:s.nStruct], sv.p.obj)
		sv.objV = sv.p.objVersion
	}
	s.tol = tol
	s.maxIter = opt.MaxIter
	if s.maxIter == 0 {
		s.maxIter = 200*(s.m+s.n) + 10000
	}
	s.pricing = opt.Pricing
	s.dualPricing = opt.DualPricing
	s.partialSeg = partialSegment(opt.PartialPricing, s.n)
	if factorKind(s.fe) != opt.Factorization {
		s.fe = newFactorEngine(opt.Factorization, s.m)
		sv.last = nil
	}
	s.resetStats()
	s.stall = 0
	s.bland = false
}
