package lp

import (
	"math"
	"math/rand"
	"testing"
)

// boxedRandom builds a bounded random LP so re-solve chains stay
// bounded whatever bounds the test tightens.
func boxedRandom(rng *rand.Rand, n, m int) *Problem {
	p := New(n)
	for j := 0; j < n; j++ {
		p.SetObj(j, math.Round(rng.NormFloat64()*4))
		lo := -float64(rng.Intn(4))
		p.SetBounds(j, lo, lo+float64(1+rng.Intn(8)))
	}
	for i := 0; i < m; i++ {
		var coefs []Coef
		for j := 0; j < n; j++ {
			if rng.Intn(3) > 0 {
				coefs = append(coefs, Coef{Var: j, Value: math.Round(rng.NormFloat64() * 3)})
			}
		}
		if len(coefs) == 0 {
			coefs = []Coef{{Var: rng.Intn(n), Value: 1}}
		}
		sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
		p.AddRow(coefs, sense, math.Round(rng.NormFloat64()*6))
	}
	return p
}

// TestWarmStartAfterBoundChange is the branch-and-bound shape: solve,
// tighten one bound, warm re-solve from the parent basis, and compare
// against a cold solve of the same child.
func TestWarmStartAfterBoundChange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	warmUsed := 0
	for trial := 0; trial < 200; trial++ {
		p := boxedRandom(rng, 3+rng.Intn(5), 2+rng.Intn(6))
		parent, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: parent: %v", trial, err)
		}
		if parent.Status != Optimal {
			continue
		}
		// Tighten one variable's bounds around a point inside them,
		// like branching on a fractional variable does.
		j := rng.Intn(p.NumVars())
		lo, up := p.Bounds(j)
		mid := math.Floor(lo + rng.Float64()*(up-lo))
		if rng.Intn(2) == 0 {
			p.SetBounds(j, lo, mid)
		} else {
			p.SetBounds(j, mid, up)
		}
		cold, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: cold child: %v", trial, err)
		}
		warmSol, err := SolveOpts(p, Options{WarmStart: parent.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm child: %v", trial, err)
		}
		if warmSol.Stats.Warm && !warmSol.Stats.WarmFellBack {
			warmUsed++
		}
		if cold.Status != warmSol.Status {
			t.Fatalf("trial %d: status mismatch cold=%v warm=%v", trial, cold.Status, warmSol.Status)
		}
		if cold.Status != Optimal {
			continue
		}
		scale := 1 + math.Abs(cold.Objective)
		if diff := math.Abs(cold.Objective - warmSol.Objective); diff > 1e-6*scale {
			t.Fatalf("trial %d: objective mismatch cold=%.12g warm=%.12g", trial, cold.Objective, warmSol.Objective)
		}
	}
	if warmUsed == 0 {
		t.Fatal("warm start was never accepted across 200 trials")
	}
	t.Logf("warm path used on %d trials", warmUsed)
}

// TestWarmStartStaleBasis feeds bases that cannot fit: wrong problem,
// wrong dimensions, nil. All must silently fall back to a cold solve.
func TestWarmStartStaleBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := boxedRandom(rng, 5, 4)
	sol, err := Solve(p)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("setup: %v %v", err, sol.Status)
	}
	other := New(7)
	for j := 0; j < 7; j++ {
		other.SetObj(j, 1)
		other.SetBounds(j, 0, 3)
	}
	other.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, GE, 2)
	other.AddRow([]Coef{{Var: 2, Value: 1}, {Var: 3, Value: 1}}, GE, 1)
	for name, b := range map[string]*Basis{
		"nil":        nil,
		"wrong-size": {status: make([]int8, 3), nStruct: 2, m: 1},
		"all-lower":  {status: make([]int8, p.NumVars()+p.NumRows()), nStruct: p.NumVars(), m: p.NumRows()},
	} {
		ws, err := SolveOpts(p, Options{WarmStart: b})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ws.Status != Optimal || math.Abs(ws.Objective-sol.Objective) > 1e-9*(1+math.Abs(sol.Objective)) {
			t.Fatalf("%s: got %v obj=%g want optimal obj=%g", name, ws.Status, ws.Objective, sol.Objective)
		}
	}
	// A basis from a structurally different problem.
	osol, err := Solve(other)
	if err != nil || osol.Status != Optimal {
		t.Fatalf("other setup: %v", err)
	}
	ws, err := SolveOpts(p, Options{WarmStart: osol.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Status != Optimal || !ws.Stats.WarmFellBack {
		t.Fatalf("foreign basis: status=%v fellBack=%v", ws.Status, ws.Stats.WarmFellBack)
	}
}

// TestWarmStartRelaxedBounds covers the two bound-relaxation holes the
// Basis contract promises to survive: a nonbasic column whose resting
// bound went infinite must be re-rested, through both the one-shot
// WarmStart path and the Solver pointer-identity hot path.
func TestWarmStartRelaxedBounds(t *testing.T) {
	// atLower snapshot, lower bound later relaxed to -Inf with a finite
	// negative upper bound: the column must re-rest at up, not at the
	// free-at-zero convention (which would violate up = -1).
	p := New(1)
	p.SetBounds(0, -5, -1)
	p.AddRow([]Coef{{Var: 0, Value: 1}}, GE, -100)
	parent, err := Solve(p)
	if err != nil || parent.Status != Optimal {
		t.Fatalf("parent: %v %v", err, parent)
	}
	p.SetBounds(0, math.Inf(-1), -1)
	ws, err := SolveOpts(p, Options{WarmStart: parent.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Status != Optimal || ws.X[0] > -1+1e-9 {
		t.Fatalf("relaxed-lo warm solve: status=%v x=%v (must satisfy x <= -1)", ws.Status, ws.X)
	}

	// Solver hot path: upper bound relaxed to +Inf between re-solves of
	// the same context must surface Unbounded, not Optimal([NaN]).
	q := New(1)
	q.SetObj(0, -1)
	q.SetBounds(0, 0, 3)
	q.AddRow([]Coef{{Var: 0, Value: 1}}, GE, 0)
	sv := NewSolver(q)
	first, err := sv.Solve(Options{})
	if err != nil || first.Status != Optimal || first.X[0] != 3 {
		t.Fatalf("first solve: %v %v", err, first)
	}
	q.SetBounds(0, 0, math.Inf(1))
	second, err := sv.Solve(Options{WarmStart: first.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != Unbounded {
		t.Fatalf("hot-path relaxed-up solve: status=%v X=%v, want unbounded", second.Status, second.X)
	}
}

// TestPresolveFixedAndEmpty checks the reductions and the basis
// round-trip on a model where presolve has real work to do.
func TestPresolveFixedAndEmpty(t *testing.T) {
	p := New(4)
	p.SetObj(0, 1)
	p.SetObj(1, -2)
	p.SetObj(2, 3)
	p.SetBounds(0, 0, 10)
	p.SetBounds(1, 2, 2) // fixed
	p.SetBounds(2, 0, 5)
	p.SetBounds(3, -1, -1) // fixed
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, GE, 3)
	p.AddRow([]Coef{{Var: 1, Value: 2}, {Var: 3, Value: 1}}, LE, 4) // empty after substitution
	p.AddRow([]Coef{{Var: 0, Value: 1}, {Var: 2, Value: 1}}, LE, 6)

	plain, err := Solve(p)
	if err != nil || plain.Status != Optimal {
		t.Fatalf("plain: %v %v", err, plain)
	}
	pre, err := SolveOpts(p, Options{Presolve: true})
	if err != nil || pre.Status != Optimal {
		t.Fatalf("presolved: %v %v", err, pre)
	}
	// The pipeline eliminates both fixed columns, the substituted-empty
	// row AND the singleton row the substitution exposes (x0 + x1 >= 3
	// becomes x0 >= 1, a bound).
	if pre.Stats.PresolvedCols != 2 || pre.Stats.PresolvedRows != 2 {
		t.Fatalf("expected 2 cols + 2 rows eliminated, got %d/%d", pre.Stats.PresolvedCols, pre.Stats.PresolvedRows)
	}
	if pre.Stats.PresolveSingletonRows != 1 {
		t.Fatalf("expected 1 singleton row, got %d", pre.Stats.PresolveSingletonRows)
	}
	if math.Abs(plain.Objective-pre.Objective) > 1e-9 {
		t.Fatalf("objective mismatch: %g vs %g", plain.Objective, pre.Objective)
	}
	if pre.X[1] != 2 || pre.X[3] != -1 {
		t.Fatalf("fixed values not restored: %v", pre.X)
	}
	if pre.Basis == nil || pre.Basis.NumBasic() != p.NumRows() {
		t.Fatalf("un-crushed basis unhealthy: %+v", pre.Basis)
	}
	// The un-crushed basis must warm-start both plain and presolved
	// re-solves of a child with one more bound change.
	p.SetBounds(0, 1, 10)
	for name, o := range map[string]Options{
		"plain":     {WarmStart: pre.Basis},
		"presolved": {WarmStart: pre.Basis, Presolve: true},
	} {
		ws, err := SolveOpts(p, o)
		if err != nil || ws.Status != Optimal {
			t.Fatalf("%s re-solve: %v %v", name, err, ws)
		}
		cold, _ := Solve(p)
		if math.Abs(ws.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
			t.Fatalf("%s re-solve objective: %g vs cold %g", name, ws.Objective, cold.Objective)
		}
	}
}

// TestPresolveInfeasibleEmptyRow: an empty row that cannot hold makes
// presolve report infeasibility without a simplex iteration.
func TestPresolveInfeasibleEmptyRow(t *testing.T) {
	p := New(2)
	p.SetBounds(0, 1, 1)
	p.SetBounds(1, 0, 5)
	p.AddRow([]Coef{{Var: 0, Value: 3}}, LE, 2) // 3·1 ≤ 2: inconsistent
	sol, err := SolveOpts(p, Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("got %v, want infeasible", sol.Status)
	}
	if sol.Stats.Iterations != 0 {
		t.Fatalf("presolve infeasibility should cost 0 pivots, took %d", sol.Stats.Iterations)
	}
}

// TestDualPhaseDoesTheWork asserts the intended mechanism: on a
// one-bound-change re-solve the warm path should pivot with the dual
// simplex, not re-run phase 1.
func TestDualPhaseDoesTheWork(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sawDual := false
	for trial := 0; trial < 60; trial++ {
		p := boxedRandom(rng, 6, 5)
		parent, err := Solve(p)
		if err != nil || parent.Status != Optimal {
			continue
		}
		j := rng.Intn(p.NumVars())
		lo, up := p.Bounds(j)
		p.SetBounds(j, lo, math.Floor((lo+up)/2))
		ws, err := SolveOpts(p, Options{WarmStart: parent.Basis})
		if err != nil {
			t.Fatal(err)
		}
		if ws.Stats.Warm && !ws.Stats.WarmFellBack && ws.Stats.DualIterations > 0 {
			sawDual = true
		}
		if ws.Status == Optimal && ws.Stats.Warm && !ws.Stats.WarmFellBack {
			// Warm re-solves must be much shorter than cold ones.
			cold, err := Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if ws.Iterations > cold.Iterations+5 {
				t.Logf("trial %d: warm took %d iters vs cold %d", trial, ws.Iterations, cold.Iterations)
			}
		}
	}
	if !sawDual {
		t.Fatal("dual simplex never performed a pivot across 60 warm re-solves")
	}
}
