package lp

import (
	"math"

	"cellstream/internal/num"
)

// Sparse LU factorization of the simplex basis with Forrest–Tomlin
// updates — the production basis-inverse representation behind
// Options.Factorization == FactorLU (the default).
//
// The eta file of PR 2 appends one elementary matrix per pivot, so
// FTRAN/BTRAN cost grows linearly with the pivots since the last
// refactorization; on long warm-started solves (hundreds of dual pivots
// per branch-and-bound node on the Fig. 5(b)-class instances) the eta
// file is the bottleneck. The LU engine instead keeps
//
//	B = L̄ · U,   L̄ = L · R₁ · R₂ · …
//
// where L is the product of the elementary row operations of a sparse
// Gaussian elimination (Markowitz-style pivoting with a threshold
// tolerance, sparsest-column candidates scored by (r−1)(c−1)), U is kept
// column-wise under an explicit pivot permutation, and each simplex
// pivot folds into U in place by the Forrest–Tomlin update: the leaving
// column is replaced by the spike L̄⁻¹a_q, the leaving row is eliminated
// by one short row eta Rᵢ, and the row/column pair is cyclically
// permuted to the back. One update costs O(nnz of U right of the pivot)
// and adds a single (usually very sparse) row eta — FTRAN/BTRAN stay
// near the cost of the triangular solves instead of replaying a growing
// eta file.
//
// The representation lives behind the factorEngine seam, so the simplex
// phases, warm starts, lp.Solver reuse and presolve un-crush are
// untouched; FactorEta keeps the PR 2 eta file selectable for
// differential tests and ablations.

const (
	// markowitzTau is the threshold-pivoting tolerance: a pivot must be
	// at least this fraction of the largest entry in its column.
	markowitzTau = 0.1
	// markowitzCands is how many sparsest columns are scored with the
	// exact Markowitz count per elimination step.
	markowitzCands = 4
	// luDropTol drops noise-scale fill-in from U and FT multipliers.
	luDropTol = num.DropTol
	// ftStabTol rejects a Forrest–Tomlin update whose new diagonal is
	// this small relative to the spike (the caller refactorizes).
	ftStabTol = num.StabTol
)

// factorEngine is the seam between the revised simplex and its basis
// inverse. Both engines (eta file, LU) rebuild from s.basis on
// refactor — re-permuting s.basis to their pivot order — and fold one
// simplex pivot in via update.
type factorEngine interface {
	// reset restores the identity factorization (the all-slack basis).
	reset()
	// refactor rebuilds from the current s.basis column set, re-pivoting
	// s.basis/s.inRow. It returns false on a (numerically) singular basis.
	refactor(s *revised) bool
	// ftran overwrites x with B⁻¹x.
	ftran(x []float64)
	// btran overwrites z with B⁻ᵀz.
	btran(z []float64)
	// update folds the pivot (entering column FTRANed to alpha, leaving
	// row r) into the factorization. false means the update would be
	// numerically unstable and the caller must refactorize instead.
	update(s *revised, r int, alpha []float64) bool
	// updates reports pivots folded in since the last refactorization.
	updates() int
	// ftStats reports the cumulative Forrest–Tomlin counters of this
	// solve: updates folded in and the worst ‖spike‖∞/|diag| growth
	// (zeros for engines without FT updates).
	ftStats() (updates int, maxGrowth float64)
	// clearStats resets those cumulative counters for context reuse.
	clearStats()
}

func newFactorEngine(kind Factorization, m int) factorEngine {
	if kind == FactorEta {
		return &etaFile{}
	}
	return newLUFactor(m)
}

func factorKind(fe factorEngine) Factorization {
	if _, ok := fe.(*etaFile); ok {
		return FactorEta
	}
	return FactorLU
}

// luOp is one elementary factor of L̄: a column op from the elimination
// (row=false) or a Forrest–Tomlin row eta (row=true).
type luOp struct {
	r   int32
	row bool
	ind []int32
	val []float64
}

// luUcol is one column of U, keyed by its pivot row: the above-diagonal
// entries (in pivot order) and the diagonal.
type luUcol struct {
	diag float64
	ind  []int32
	val  []float64
}

type luFactor struct {
	m      int
	ops    []luOp
	ucols  []luUcol // indexed by original pivot row
	porder []int32  // pivot order -> original row
	pos    []int32  // original row -> pivot order position
	nUpd   int

	// cumulative per-solve statistics, read by revised.stats.
	totUpd    int
	maxGrowth float64

	spike []float64 // m-scratch: the FT spike L̄⁻¹a_q
	mul   []float64 // m-scratch: FT elimination multipliers
}

func newLUFactor(m int) *luFactor {
	f := &luFactor{
		m:      m,
		ucols:  make([]luUcol, m),
		porder: make([]int32, m),
		pos:    make([]int32, m),
		spike:  make([]float64, m),
		mul:    make([]float64, m),
	}
	f.reset()
	return f
}

func (f *luFactor) reset() {
	f.ops = f.ops[:0]
	f.nUpd = 0
	for i := 0; i < f.m; i++ {
		f.porder[i] = int32(i)
		f.pos[i] = int32(i)
		f.ucols[i].diag = 1
		f.ucols[i].ind = f.ucols[i].ind[:0]
		f.ucols[i].val = f.ucols[i].val[:0]
	}
}

func (f *luFactor) updates() int { return f.nUpd }

func (f *luFactor) ftStats() (int, float64) { return f.totUpd, f.maxGrowth }

func (f *luFactor) clearStats() {
	f.totUpd = 0
	f.maxGrowth = 0
}

// ftran solves B x = b in place: apply L̄ (column ops and FT row etas in
// order), then back-substitute U in reverse pivot order.
func (f *luFactor) ftran(x []float64) {
	for k := range f.ops {
		op := &f.ops[k]
		if op.row {
			sum := 0.0
			for i, r := range op.ind {
				if v := x[r]; v != 0 {
					sum += op.val[i] * v
				}
			}
			x[op.r] -= sum
		} else {
			t := x[op.r]
			if t == 0 {
				continue
			}
			for i, r := range op.ind {
				x[r] -= op.val[i] * t
			}
		}
	}
	for k := f.m - 1; k >= 0; k-- {
		r := f.porder[k]
		u := &f.ucols[r]
		t := x[r]
		if t == 0 {
			continue
		}
		t /= u.diag
		x[r] = t
		for i, oi := range u.ind {
			x[oi] -= u.val[i] * t
		}
	}
}

// btran solves Bᵀ z = c in place: forward-substitute Uᵀ in pivot order,
// then apply the transposed factors of L̄ in reverse.
func (f *luFactor) btran(z []float64) {
	for k := 0; k < f.m; k++ {
		r := f.porder[k]
		u := &f.ucols[r]
		sum := z[r]
		for i, oi := range u.ind {
			if v := z[oi]; v != 0 {
				sum -= u.val[i] * v
			}
		}
		z[r] = sum / u.diag
	}
	for k := len(f.ops) - 1; k >= 0; k-- {
		op := &f.ops[k]
		if op.row {
			t := z[op.r]
			if t == 0 {
				continue
			}
			for i, r := range op.ind {
				z[r] -= op.val[i] * t
			}
		} else {
			sum := 0.0
			for i, r := range op.ind {
				if v := z[r]; v != 0 {
					sum += op.val[i] * v
				}
			}
			z[op.r] -= sum
		}
	}
}

// refactor runs the sparse right-looking elimination on the current
// basis columns. Pivots are chosen Markowitz-style: the markowitzCands
// sparsest active columns are scored by (rowCount−1)·(colCount−1) over
// their threshold-feasible entries (|v| ≥ markowitzTau·colmax), lowest
// score wins, larger magnitude breaks ties.
func (f *luFactor) refactor(s *revised) bool {
	m := s.m
	f.reset()
	if m == 0 {
		return true
	}

	// Working copy of the basis columns: active (unpivoted-row) entries
	// per slot, plus the U entries accumulated at already-pivoted rows.
	arows := make([][]int32, m)
	avals := make([][]float64, m)
	uind := make([][]int32, m)
	uval := make([][]float64, m)
	rowCnt := make([]int, m)
	rowsOf := make([][]int32, m) // row -> slots that may hold it (stale ok)
	colDone := make([]bool, m)
	for j := 0; j < m; j++ {
		q := s.basis[j]
		for k := s.colPtr[q]; k < s.colPtr[q+1]; k++ {
			r := s.rowIdx[k]
			arows[j] = append(arows[j], r)
			avals[j] = append(avals[j], s.vals[k])
			rowCnt[r]++
			rowsOf[r] = append(rowsOf[r], int32(j))
		}
	}

	work := make([]float64, m)
	workMark := make([]int32, m)
	stamp := int32(0)
	newBasis := make([]int, m)

	for step := 0; step < m; step++ {
		// Candidate columns: the sparsest active slots.
		var cands [markowitzCands]int
		nc := 0
		for j := 0; j < m; j++ {
			if colDone[j] {
				continue
			}
			if len(arows[j]) == 0 {
				return false // structurally singular
			}
			in := nc
			for in > 0 && len(arows[j]) < len(arows[cands[in-1]]) {
				in--
			}
			if in < markowitzCands {
				if nc < markowitzCands {
					nc++
				}
				copy(cands[in+1:nc], cands[in:nc-1])
				cands[in] = j
			}
		}

		// Score threshold-feasible entries of the candidates.
		bestSlot, bestRow := -1, -1
		bestScore, bestAbs := math.MaxInt, 0.0
		for c := 0; c < nc; c++ {
			j := cands[c]
			colmax := 0.0
			for _, v := range avals[j] {
				if a := math.Abs(v); a > colmax {
					colmax = a
				}
			}
			if colmax == 0 {
				continue
			}
			for i, r := range arows[j] {
				a := math.Abs(avals[j][i])
				if a < markowitzTau*colmax {
					continue
				}
				score := (rowCnt[r] - 1) * (len(arows[j]) - 1)
				if score < bestScore || (score == bestScore && a > bestAbs) {
					bestSlot, bestRow, bestScore, bestAbs = j, int(r), score, a
				}
			}
			if bestScore == 0 {
				break
			}
		}
		if bestSlot < 0 {
			return false // numerically singular
		}

		q, r := bestSlot, bestRow
		f.porder[step] = int32(r)
		f.pos[r] = int32(step)
		colDone[q] = true
		newBasis[r] = s.basis[q]

		// The accumulated U entries of slot q become U's column for row r;
		// its remaining active entries become the L multipliers.
		var pv float64
		for i, rr := range arows[q] {
			if int(rr) == r {
				pv = avals[q][i]
				break
			}
		}
		var lind []int32
		var lval []float64
		for i, rr := range arows[q] {
			if int(rr) == r {
				continue
			}
			lind = append(lind, rr)
			lval = append(lval, avals[q][i]/pv)
			rowCnt[rr]--
		}
		f.ucols[r] = luUcol{diag: pv, ind: uind[q], val: uval[q]}
		if len(lind) > 0 {
			f.ops = append(f.ops, luOp{r: int32(r), ind: lind, val: lval})
		}

		// Eliminate row r from every other active column holding it.
		for _, jj := range rowsOf[r] {
			j := int(jj)
			if colDone[j] {
				continue
			}
			vi := -1
			for i, rr := range arows[j] {
				if int(rr) == r {
					vi = i
					break
				}
			}
			if vi < 0 {
				continue // stale index entry
			}
			v := avals[j][vi]
			last := len(arows[j]) - 1
			arows[j][vi], avals[j][vi] = arows[j][last], avals[j][last]
			arows[j], avals[j] = arows[j][:last], avals[j][:last]
			uind[j] = append(uind[j], int32(r))
			uval[j] = append(uval[j], v)
			if len(lind) == 0 {
				continue
			}
			// col_j -= v · multipliers, via scatter/gather.
			stamp++
			for i, rr := range arows[j] {
				workMark[rr] = stamp
				work[rr] = avals[j][i]
			}
			fills := arows[j][:len(arows[j]):len(arows[j])]
			for i, rr := range lind {
				if workMark[rr] == stamp {
					work[rr] -= v * lval[i]
				} else {
					workMark[rr] = stamp
					work[rr] = -v * lval[i]
					fills = append(fills, rr)
					rowCnt[rr]++
					rowsOf[rr] = append(rowsOf[rr], jj)
				}
			}
			nr, nv := arows[j][:0], avals[j][:0]
			for _, rr := range fills {
				w := work[rr]
				if math.Abs(w) <= luDropTol {
					rowCnt[rr]--
					continue
				}
				nr = append(nr, rr)
				nv = append(nv, w)
			}
			arows[j], avals[j] = nr, nv
		}
		rowsOf[r] = nil
	}

	copy(s.basis, newBasis)
	for i, q := range s.basis {
		s.inRow[q] = i
	}
	return true
}

// update folds one simplex pivot in by the Forrest–Tomlin update. alpha
// is the fully FTRANed entering column B⁻¹a_q; r is the leaving row.
func (f *luFactor) update(s *revised, r int, alpha []float64) bool {
	if f.m == 0 {
		return true
	}
	p := int(f.pos[r])

	// Spike ũ = L̄⁻¹a_q, recovered as U·alpha (alpha = U⁻¹ũ).
	spike := f.spike
	for i := range spike {
		spike[i] = 0
	}
	smax := 0.0
	for k := 0; k < f.m; k++ {
		rr := f.porder[k]
		a := alpha[rr]
		if a == 0 {
			continue
		}
		u := &f.ucols[rr]
		spike[rr] += a * u.diag
		for i, oi := range u.ind {
			spike[oi] += a * u.val[i]
		}
	}
	for _, v := range spike {
		if a := math.Abs(v); a > smax {
			smax = a
		}
	}

	// Eliminate row r of U beyond position p: solve the triangular
	// system for the multipliers column by column (the row-r entry of
	// each column right of p is consumed — and deleted — as we go).
	var mrows []int32
	for k := p + 1; k < f.m; k++ {
		rr := f.porder[k]
		u := &f.ucols[rr]
		upj, dot := 0.0, 0.0
		rm := -1
		for i, oi := range u.ind {
			if oi == int32(r) {
				upj = u.val[i]
				rm = i
				continue
			}
			if f.pos[oi] > int32(p) {
				if mv := f.mul[oi]; mv != 0 {
					dot += mv * u.val[i]
				}
			}
		}
		if rm >= 0 {
			last := len(u.ind) - 1
			u.ind[rm], u.val[rm] = u.ind[last], u.val[last]
			u.ind, u.val = u.ind[:last], u.val[:last]
		}
		if w := upj - dot; math.Abs(w) > luDropTol {
			f.mul[rr] = w / u.diag
			mrows = append(mrows, rr)
		}
	}

	// New diagonal of the spike column after the elimination. In exact
	// arithmetic |d| = |alpha[r]|·|old diag|; a collapsed d means the
	// update lost the pivot to cancellation — reject and refactorize.
	d := spike[r]
	for _, rr := range mrows {
		d -= f.mul[rr] * spike[rr]
	}
	if math.Abs(d) <= ftStabTol*(1+smax) {
		for _, rr := range mrows {
			f.mul[rr] = 0
		}
		return false
	}
	if g := smax / math.Abs(d); g > f.maxGrowth {
		f.maxGrowth = g
	}

	// Commit: the spike becomes U's (last-position) column for row r …
	u := &f.ucols[r]
	u.ind, u.val = u.ind[:0], u.val[:0]
	u.diag = d
	for oi, v := range spike {
		if oi != r && math.Abs(v) > luDropTol {
			u.ind = append(u.ind, int32(oi))
			u.val = append(u.val, v)
		}
	}
	// … the elimination becomes one FT row eta in L̄ …
	if len(mrows) > 0 {
		ind := make([]int32, len(mrows))
		val := make([]float64, len(mrows))
		for i, rr := range mrows {
			ind[i] = rr
			val[i] = f.mul[rr]
			f.mul[rr] = 0
		}
		f.ops = append(f.ops, luOp{r: int32(r), row: true, ind: ind, val: val})
	}
	// … and row/column p cycle to the back of the pivot order.
	copy(f.porder[p:], f.porder[p+1:])
	f.porder[f.m-1] = int32(r)
	for k := p; k < f.m; k++ {
		f.pos[f.porder[k]] = int32(k)
	}
	f.nUpd++
	f.totUpd++
	return true
}
