package lp

import (
	"math"
	"sort"

	"cellstream/internal/num"
)

// Cutting planes separated from an optimal simplex basis. Two families,
// both used by the branch-and-bound layer (internal/milp) to strengthen
// LP relaxations through Model.AddRow:
//
//   - Gomory mixed-integer (GMI) cuts, derived from tableau rows of
//     integer-basic variables with fractional values. The tableau row is
//     read through the live factorization — one BTRAN of the unit row
//     vector through the factorEngine seam — so separation costs one
//     backward solve plus one pass over the nonzeros per cut.
//   - Knapsack cover cuts, separated combinatorially from ≤-rows over
//     binary variables (the DMA capacity rows of the mapping
//     formulations), no factorization needed.
//
// Both separators emit rows over STRUCTURAL variables only (slacks are
// substituted out), valid for every integer-feasible point of the
// GLOBAL problem — not just the node relaxation they were separated
// from — so a cut can be shared across the whole search tree.

// CutRow is one separated cutting plane over structural variables,
// ready for Model.AddRow.
type CutRow struct {
	Coefs []Coef
	Sense Sense
	RHS   float64
}

// Violation returns by how much x violates the cut (positive means x is
// cut off).
func (c *CutRow) Violation(x []float64) float64 {
	lhs := 0.0
	for _, cf := range c.Coefs {
		lhs += cf.Value * x[cf.Var]
	}
	switch c.Sense {
	case GE:
		return c.RHS - lhs
	case LE:
		return lhs - c.RHS
	}
	return math.Abs(lhs - c.RHS)
}

// GomorySpec describes the integrality side of the problem to the GMI
// separator. Bounds must be the GLOBAL ones (the root relaxation's, not
// a node's tightened copies): a GMI cut derived against global bounds is
// globally valid, and tableau rows where some nonbasic variable rests at
// a local-only bound are rejected rather than emitted locally-valid.
type GomorySpec struct {
	// IsInt marks the integer variables; len NumVars.
	IsInt []bool
	// Lo, Up are the global variable bounds; len NumVars.
	Lo, Up []float64
	// MaxCuts caps the cuts returned per call; 0 means 8.
	MaxCuts int
}

// GMI separation thresholds.
const (
	gmiF0Min     = 0.01          // fractionality gate on the source row
	gmiDynamism  = 1e7           // max |coef| spread within one cut
	gmiCoefEps   = num.StrictEps // coefficient pruning margin
	gmiRestTol   = num.LooseFeasTol
	gmiMinViol   = num.LooseFeasTol // relative violation at the separation point
	gmiDustRel   = 1e-11            // row-relative dust floor on tableau entries
	gomoryMaxDef = 8
)

// GomoryCuts separates GMI cuts from the optimal basis of the last
// Solve on this context. It requires a live factorization — the last
// call must have been warm or cold WITHOUT Presolve and returned
// Optimal, with no rows added since — and returns nil otherwise.
//
// Source rows are the basic integer variables with fractional values,
// closest-to-half first. For row i with basic variable x_k,
//
//	x_k + Σ_j ā_j·x̃_j = b̂,  f0 = frac(b̂)
//
// where x̃_j is the nonbasic j shifted to its resting global bound
// (x−l at lower, u−x at upper — the at-upper shift flips the sign of
// ā_j), the GMI inequality is Σ_j γ_j·x̃_j ≥ f0 with
//
//	γ_j = frac(ā_j)                    integer j, frac(ā_j) ≤ f0
//	γ_j = f0·(1−frac(ā_j))/(1−f0)      integer j, frac(ā_j) > f0
//	γ_j = ā_j                          continuous j, ā_j > 0
//	γ_j = −ā_j·f0/(1−f0)               continuous j, ā_j ≤ 0
//
// Slack variables are substituted back to structural space through
// their row. Cuts failing the quality gates (fractionality, dynamism,
// violation at the current point) are dropped.
func (sv *Solver) GomoryCuts(spec GomorySpec) []CutRow {
	s := sv.s
	if s == nil || sv.last == nil || s.m != len(sv.p.rows) || s.nStruct != sv.p.n {
		return nil
	}
	maxCuts := spec.MaxCuts
	if maxCuts == 0 {
		maxCuts = gomoryMaxDef
	}

	type cand struct {
		row  int
		dist float64 // |frac − ½|
	}
	var cands []cand
	for i := 0; i < s.m; i++ {
		k := s.basis[i]
		if k >= s.nStruct || !spec.IsInt[k] {
			continue
		}
		f := s.xB[i] - math.Floor(s.xB[i])
		if f < gmiF0Min || f > 1-gmiF0Min {
			continue
		}
		cands = append(cands, cand{row: i, dist: math.Abs(f - 0.5)})
	}
	sort.Slice(cands, func(a, b int) bool {
		//lint:allow floatcmp exact sort tie-break; any consistent order is valid and ties fall through to the row index
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].row < cands[b].row
	})

	rho := make([]float64, s.m)
	ws := make([]float64, s.n)
	acc := make([]float64, s.nStruct)
	var cuts []CutRow
	for _, c := range cands {
		if len(cuts) >= maxCuts {
			break
		}
		if cut, ok := s.gmiFromRow(sv.p, c.row, spec, rho, ws, acc); ok {
			cuts = append(cuts, cut)
		}
	}
	return cuts
}

// gmiFromRow derives one GMI cut from tableau row i, or ok=false when
// the row is unusable (a nonbasic rests off its global bounds, or a
// quality gate fails). rho/ws/acc are caller-provided scratch; p
// provides the constraint rows for slack substitution.
func (s *revised) gmiFromRow(p *Problem, i int, spec GomorySpec, rho, ws, acc []float64) (CutRow, bool) {
	for r := range rho {
		rho[r] = 0
	}
	rho[i] = 1
	s.btran(rho)

	// Pivot row entries for every nonbasic column, and their magnitude
	// scale for the dust threshold.
	rowMax := 0.0
	for q := 0; q < s.n; q++ {
		if s.state[q] == basic {
			ws[q] = 0
			continue
		}
		w := s.colDot(q, rho)
		ws[q] = w
		if a := math.Abs(w); a > rowMax {
			rowMax = a
		}
	}
	eps := gmiDustRel * math.Max(1, rowMax)

	bhat := s.xB[i]
	f0 := bhat - math.Floor(bhat)
	for q := range acc {
		acc[q] = 0
	}
	rhs := f0

	for q := 0; q < s.n; q++ {
		w := ws[q]
		if s.state[q] == basic || (w < eps && w > -eps) {
			continue
		}
		// Global bounds of column q: the spec's for structurals, the
		// sense-derived ones for slacks (never tightened by the search).
		var glo, gup float64
		isInt := false
		if q < s.nStruct {
			glo, gup = spec.Lo[q], spec.Up[q]
			isInt = spec.IsInt[q]
		} else {
			switch p.rows[q-s.nStruct].sense {
			case LE:
				glo, gup = 0, math.Inf(1)
			case GE:
				glo, gup = math.Inf(-1), 0
			default: // EQ: fixed slack contributes nothing
				continue
			}
		}
		//lint:allow floatcmp bounds are model data, not computed values; fixed means bitwise-equal bounds
		if glo == gup {
			continue // globally fixed: x̃ ≡ 0
		}
		v := s.valueOf(q)
		var atLo bool
		switch {
		case !math.IsInf(glo, -1) && math.Abs(v-glo) <= gmiRestTol*(1+math.Abs(glo)):
			atLo = true
		case !math.IsInf(gup, 1) && math.Abs(v-gup) <= gmiRestTol*(1+math.Abs(gup)):
			atLo = false
		default:
			// Resting at a local-only bound (or free at an interior
			// value): the shifted-variable derivation would only be
			// valid under the node's bounds. Reject the whole row.
			return CutRow{}, false
		}
		abar := w
		if !atLo {
			abar = -w
		}
		var gamma float64
		intShift := isInt
		if intShift {
			// x̃ is integral only when the resting bound is.
			bnd := glo
			if !atLo {
				bnd = gup
			}
			//lint:allow floatcmp the integer shift is only valid when the resting bound is exactly integral
			intShift = bnd == math.Floor(bnd)
		}
		if intShift {
			f := abar - math.Floor(abar)
			if f <= f0+num.FeasTol {
				gamma = f
			} else {
				gamma = f0 * (1 - f) / (1 - f0)
			}
		} else if abar > 0 {
			gamma = abar
		} else {
			gamma = -abar * f0 / (1 - f0)
		}
		if gamma <= gmiCoefEps {
			// Dropping γ·x̃ (both ≥ 0) from the LHS of a ≥ inequality
			// needs the RHS reduced by the term's largest value.
			if rng := gup - glo; !math.IsInf(rng, 1) && gamma*rng <= num.FeasTol {
				rhs -= gamma * rng
				continue
			}
			if gamma == 0 {
				continue
			}
		}
		// Substitute x̃_q = c0 + Σ c_k·x_k back to structural space:
		// Σ γ·x̃ ≥ rhs becomes Σ γ·c_k·x_k ≥ rhs − Σ γ·c0.
		if q < s.nStruct {
			if atLo {
				acc[q] += gamma
				rhs += gamma * glo
			} else {
				acc[q] -= gamma
				rhs -= gamma * gup
			}
		} else {
			r := &p.rows[q-s.nStruct]
			if atLo { // LE slack at lower: x̃ = b − a·x
				for _, cf := range r.coefs {
					acc[cf.Var] -= gamma * cf.Value
				}
				rhs -= gamma * r.rhs
			} else { // GE slack at upper: x̃ = a·x − b
				for _, cf := range r.coefs {
					acc[cf.Var] += gamma * cf.Value
				}
				rhs += gamma * r.rhs
			}
		}
	}

	// Quality gates in structural space.
	maxAbs := 0.0
	for _, v := range acc {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs < num.FeasTol {
		return CutRow{}, false
	}
	coefs := make([]Coef, 0, 16)
	minAbs := math.Inf(1)
	for q := 0; q < s.nStruct; q++ {
		v := acc[q]
		a := math.Abs(v)
		if a == 0 {
			continue
		}
		if a < gmiCoefEps*maxAbs {
			// Safe dropping: shrink the RHS by the dropped term's
			// largest contribution over the global box; an unbounded
			// direction forces keeping the coefficient.
			hi := spec.Up[q]
			lo := spec.Lo[q]
			var worst float64
			if v > 0 {
				worst = v * hi
			} else {
				worst = v * lo
			}
			if !math.IsInf(worst, 0) {
				if worst > 0 {
					rhs -= worst
				}
				continue
			}
		}
		if a < minAbs {
			minAbs = a
		}
		coefs = append(coefs, Coef{Var: q, Value: v})
	}
	if len(coefs) == 0 || maxAbs/minAbs > gmiDynamism {
		return CutRow{}, false
	}

	// The cut must actually cut off the current fractional point.
	lhs := 0.0
	for _, cf := range coefs {
		var xv float64
		if s.state[cf.Var] == basic {
			xv = s.xB[s.inRow[cf.Var]]
		} else {
			xv = s.valueOf(cf.Var)
		}
		lhs += cf.Value * xv
	}
	if rhs-lhs < gmiMinViol*(1+maxAbs) {
		return CutRow{}, false
	}
	return CutRow{Coefs: coefs, Sense: GE, RHS: rhs}, true
}

// GomoryCuts separates GMI cuts from the Model's last optimal solve;
// see Solver.GomoryCuts.
func (m *Model) GomoryCuts(spec GomorySpec) []CutRow { return m.sv.GomoryCuts(spec) }

// CoverSpec describes the binary variables to the cover separator.
type CoverSpec struct {
	// IsBinary marks variables that are integer with global bounds
	// {0,1}; len NumVars.
	IsBinary []bool
	// MaxRows limits separation to the first MaxRows constraint rows
	// (the original formulation's, excluding appended cuts); 0 = all.
	MaxRows int
	// MaxCuts caps the cuts returned per call; 0 means 8.
	MaxCuts int
}

// coverMinViol is the minimum violation at the separation point for a
// cover cut to be worth a row.
const coverMinViol = 1e-4

// CoverCuts separates (extended) knapsack cover inequalities from the
// ≤/≥ rows of p whose support is entirely binary — the DMA capacity
// rows of the mapping formulations. Negative coefficients are handled
// by complementing (x → 1−x̄): for a cover C with Σ_{j∈C} ā_j > b̄ the
// inequality Σ_{j∈C} x̄_j ≤ |C|−1 is valid, is strengthened by greedy
// minimalization, and extends to every column with ā_j ≥ max_C ā. Cuts
// are returned most-violated first, de-complemented back to the
// original variables.
func CoverCuts(p *Problem, spec CoverSpec, x []float64) []CutRow {
	limit := len(p.rows)
	if spec.MaxRows > 0 && spec.MaxRows < limit {
		limit = spec.MaxRows
	}
	maxCuts := spec.MaxCuts
	if maxCuts == 0 {
		maxCuts = 8
	}
	type scored struct {
		cut  CutRow
		viol float64
		row  int
	}
	var out []scored

	type item struct {
		v    int     // variable
		a    float64 // complemented (positive) coefficient
		neg  bool    // complemented
		xbar float64 // complemented value at the separation point
	}
	var items []item
	for ri := 0; ri < limit; ri++ {
		r := &p.rows[ri]
		var sgn float64
		switch r.sense {
		case LE:
			sgn = 1
		case GE:
			sgn = -1
		default:
			continue
		}
		items = items[:0]
		b := sgn * r.rhs
		ok := true
		total := 0.0
		for _, cf := range r.coefs {
			a := sgn * cf.Value
			if a == 0 {
				continue
			}
			if !spec.IsBinary[cf.Var] {
				ok = false
				break
			}
			xv := x[cf.Var]
			if xv < 0 {
				xv = 0
			} else if xv > 1 {
				xv = 1
			}
			it := item{v: cf.Var, a: a, xbar: xv}
			if a < 0 {
				// a·x = a − a·(1−x): complement to a positive weight.
				it.a, it.neg, it.xbar = -a, true, 1-xv
				b -= a
			}
			total += it.a
			items = append(items, it)
		}
		if !ok || len(items) == 0 || b < -num.FeasTol || total <= b+num.FeasTol {
			continue
		}
		// Greedy cover: take items in increasing (1 − x̄*) — the ones a
		// cover inequality would most restrict — until the weights
		// exceed the capacity.
		sort.Slice(items, func(i, j int) bool {
			si, sj := 1-items[i].xbar, 1-items[j].xbar
			//lint:allow floatcmp exact sort tie-break; ties fall through to the variable index
			if si != sj {
				return si < sj
			}
			return items[i].v < items[j].v
		})
		inC := make([]bool, len(items))
		sum := 0.0
		last := -1
		for k := range items {
			inC[k] = true
			sum += items[k].a
			last = k
			if sum > b+num.FeasTol {
				break
			}
		}
		if sum <= b+num.FeasTol {
			continue
		}
		// Minimalize: walk the cover from the least fractional end and
		// drop members the cover can spare — each drop shrinks the RHS.
		for k := last; k >= 0; k-- {
			if inC[k] && sum-items[k].a > b+num.FeasTol {
				inC[k] = false
				sum -= items[k].a
			}
		}
		size, slackSum, maxA := 0, 0.0, 0.0
		for k := range items {
			if inC[k] {
				size++
				slackSum += 1 - items[k].xbar
				if items[k].a > maxA {
					maxA = items[k].a
				}
			}
		}
		if size < 2 || slackSum >= 1-coverMinViol {
			continue // not violated (or trivial)
		}
		// Extension: any column at least as heavy as the heaviest cover
		// member joins with the same RHS.
		coefs := make([]Coef, 0, size+2)
		rhs := float64(size - 1)
		for k := range items {
			use := inC[k] || items[k].a >= maxA-num.StrictEps
			if !use {
				continue
			}
			if items[k].neg {
				coefs = append(coefs, Coef{Var: items[k].v, Value: -1})
				rhs--
			} else {
				coefs = append(coefs, Coef{Var: items[k].v, Value: 1})
			}
		}
		sort.Slice(coefs, func(i, j int) bool { return coefs[i].Var < coefs[j].Var })
		cut := CutRow{Coefs: coefs, Sense: LE, RHS: rhs}
		out = append(out, scored{cut: cut, viol: cut.Violation(x), row: ri})
	}
	sort.Slice(out, func(i, j int) bool {
		//lint:allow floatcmp exact sort tie-break; ties fall through to the row index
		if out[i].viol != out[j].viol {
			return out[i].viol > out[j].viol
		}
		return out[i].row < out[j].row
	})
	if len(out) > maxCuts {
		out = out[:maxCuts]
	}
	cuts := make([]CutRow, len(out))
	for i := range out {
		cuts[i] = out[i].cut
	}
	return cuts
}
