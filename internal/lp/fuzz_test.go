package lp

import (
	"math"
	"testing"
)

// Native fuzz targets for the presolve pipeline. decodeLP maps an
// arbitrary byte string onto a small LP deterministically, so the
// fuzzer explores model space (senses, fixed/free/boxed bounds,
// fractional fixed values, coefficient scales up to 1e2) while seeds
// stay hand-encodable. Scales stop at 1e2 deliberately: the dense
// tableau engine is the oracle here, and with free variables in play,
// 1e4+ coefficient mixes push it into a phase-1/tableau conditioning
// regime where genuine pivot entries sink below the noise thresholds
// and it diverges from exact arithmetic. Exploring that frontier with
// this target found and fixed four real bugs during development (a
// false unbounded ray in both ratio tests, a bound trampled by a long
// step over a sub-pivTol row, a false dual-ray Infeasible on warm
// restarts, NaN bound tightening on explicit zero coefficients — see
// the rescue scans, the phase-2 dual cleanup, and dual.go); what
// remains is the oracle's own limit, a ROADMAP item. The exact 2e8
// inflated-RHS regression is pinned in lptest. The corpus
// under testdata/fuzz seeds the shapes of known presolve bugs;
// `go test` replays it in regression mode on every run, and
// `go test -fuzz FuzzPresolveRoundTrip` explores from there.

// decodeLP decodes fuzz bytes into an LP: header (n, m), then per
// variable an objective byte and a bound shape, then per row a sense,
// an RHS and per-variable coefficient bytes (with an optional 1e4/1e8
// scale). Missing bytes read as zero, so every input decodes.
func decodeLP(data []byte) *Problem {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	n := 1 + int(next())%4
	m := int(next()) % 5
	p := New(n)
	for j := 0; j < n; j++ {
		p.SetObj(j, float64(int(next()%11)-5))
		switch next() % 6 {
		case 0:
			p.SetBounds(j, math.Inf(-1), math.Inf(1))
		case 1:
			// default [0, +inf)
		case 2:
			p.SetBounds(j, math.Inf(-1), 0)
		case 3:
			// fixed, in thirds so substitution leaves residues
			v := float64(int(next()%13)-6) / 3
			p.SetBounds(j, v, v)
		case 4:
			lo := float64(int(next()%7) - 3)
			p.SetBounds(j, lo, lo+float64(1+int(next()%6)))
		case 5:
			p.SetBounds(j, 0, 3)
		}
	}
	for i := 0; i < m; i++ {
		sense := []Sense{LE, GE, EQ}[next()%3]
		rhs := float64(int(next()%17) - 8)
		var coefs []Coef
		for j := 0; j < n; j++ {
			c := next()
			if c%4 == 0 {
				continue // no entry for this variable
			}
			v := float64(int(c%9) - 4) // may be an explicit zero coefficient
			switch next() % 8 {
			case 7:
				v *= 1e2
			case 6:
				v *= 1e1
			}
			coefs = append(coefs, Coef{Var: j, Value: v})
		}
		p.AddRow(coefs, sense, rhs)
	}
	return p
}

// fuzzViolation is the largest constraint/bound violation of x
// (lptest.Violation would import-cycle from an in-package test).
func fuzzViolation(p *Problem, x []float64) float64 {
	worst := 0.0
	for j := 0; j < p.NumVars(); j++ {
		lo, up := p.Bounds(j)
		worst = math.Max(worst, lo-x[j])
		worst = math.Max(worst, x[j]-up)
	}
	for i := 0; i < p.NumRows(); i++ {
		coefs, sense, rhs := p.Row(i)
		lhs := 0.0
		scale := math.Abs(rhs)
		for _, c := range coefs {
			lhs += c.Value * x[c.Var]
			scale += math.Abs(c.Value * x[c.Var])
		}
		var v float64
		switch sense {
		case LE:
			v = lhs - rhs
		case GE:
			v = rhs - lhs
		case EQ:
			v = math.Abs(lhs - rhs)
		}
		worst = math.Max(worst, v/(1+scale))
	}
	return worst
}

// perturbRows returns a copy of p with every inequality side moved by
// sign·1e-5·(activity scale): sign=+1 relaxes every row, sign=-1
// tightens it (EQ rows relax into an inequality pair and stay exact
// under tightening). The scale includes the row's coefficient-weighted
// bound magnitudes, so even a 1e8-amplified conflict moves across.
func perturbRows(p *Problem, sign float64) *Problem {
	q := New(p.NumVars())
	for j := 0; j < p.NumVars(); j++ {
		q.SetObj(j, p.ObjCoef(j))
		lo, up := p.Bounds(j)
		q.SetBounds(j, lo, up)
	}
	for i := 0; i < p.NumRows(); i++ {
		coefs, sense, rhs := p.Row(i)
		scale := 1 + math.Abs(rhs)
		for _, c := range coefs {
			lo, up := p.Bounds(c.Var)
			b := 1.0
			if !math.IsInf(lo, -1) {
				b = math.Max(b, math.Abs(lo))
			}
			if !math.IsInf(up, 1) {
				b = math.Max(b, math.Abs(up))
			}
			scale += math.Abs(c.Value) * b
		}
		eps := 1e-5 * scale
		switch sense {
		case LE:
			q.AddRow(coefs, LE, rhs+sign*eps)
		case GE:
			q.AddRow(coefs, GE, rhs-sign*eps)
		case EQ:
			if sign > 0 {
				q.AddRow(coefs, LE, rhs+eps)
				q.AddRow(coefs, GE, rhs-eps)
			} else {
				q.AddRow(coefs, EQ, rhs)
			}
		}
	}
	return q
}

// decisively classifies p's feasibility robustly: +1 when even the
// row-tightened copy is feasible, -1 when even the row-relaxed copy is
// infeasible, 0 when the verdict flips under perturbation — a
// tolerance-boundary instance on which the engines may legitimately
// disagree (e.g. a 6e-8 bound conflict amplified through a 1e8
// coefficient), which the fuzz harness skips instead of failing.
func decisively(p *Problem) int {
	rs, err1 := SolveDense(perturbRows(p, 1))
	ts, err2 := SolveDense(perturbRows(p, -1))
	if err1 != nil || err2 != nil {
		return 0
	}
	if rs.Status == Infeasible {
		return -1
	}
	if ts.Status == Optimal || ts.Status == Unbounded {
		return 1
	}
	return 0
}

// seedPR3InflatedRHS encodes the shape of the PR 3 regression: a fixed
// column at 1/3, a violated empty EQ row after substitution, and a
// large (1e2-scaled here; the exact 2e8 instance is pinned in
// lptest.TestDifferentialPresolveEmptyRow) coefficient whose
// substitution once inflated the reduced RHS scale until phase 1
// absorbed the infeasibility. Kept in sync with the checked-in corpus
// file under testdata/fuzz/FuzzPresolveRoundTrip/.
var seedPR3InflatedRHS = []byte{
	0x02, 0x04, // n=3, m=4
	0x04, 0x05, // x0: obj -1, bounds [0,3]
	0x02, 0x03, 0x07, // x1: obj -3, fixed at 1/3
	0x06, 0x04, 0x03, 0x04, // x2: obj 1, bounds [0,5]
	0x02, 0x0a, 0x00, 0x02, 0x00, 0x0d, 0x00, // EQ 2: -2·x1 + 0·x2 (empty: -2/3 = 2)
	0x00, 0x08, 0x05, 0x00, 0x06, 0x00, 0x00, // LE 0: x0 + 2·x1
	0x00, 0x0c, 0x0d, 0x00, 0x02, 0x07, 0x00, // LE 4: 0·x0 - 2e8·x1
	0x01, 0x04, 0x00, 0x01, 0x00, 0x0d, 0x00, // GE -4: -3·x1 + 0·x2
}

// FuzzPresolveRoundTrip: presolve→postsolve round trips must agree
// with the dense reference on the original problem — status, a 1e-6
// objective, a feasible point — and the postsolved basis must be
// structurally valid and warm-startable back to the same optimum.
func FuzzPresolveRoundTrip(f *testing.F) {
	f.Add(seedPR3InflatedRHS)
	f.Add([]byte{0x01, 0x02, 0x04, 0x05, 0x06, 0x04, 0x03, 0x04, 0x02, 0x0a, 0x02, 0x00, 0x06, 0x00})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeLP(data)
		dense, err := SolveDense(p)
		if err != nil {
			t.Skip()
		}
		pre, err := SolveOpts(p, Options{Presolve: true})
		if err != nil {
			t.Fatalf("presolved solve: %v", err)
		}
		if dense.Status == IterLimit || pre.Status == IterLimit {
			t.Skip()
		}
		if dense.Status != pre.Status {
			if (dense.Status == Infeasible) != (pre.Status == Infeasible) && decisively(p) == 0 {
				t.Skip() // feasibility flips under perturbation: boundary instance
			}
			t.Fatalf("status mismatch: dense=%v presolve=%v (stats %+v)",
				dense.Status, pre.Status, pre.Stats)
		}
		if dense.Status != Optimal {
			return
		}
		if v := fuzzViolation(p, pre.X); v > 1e-6 {
			t.Fatalf("postsolved point violates constraints by %g (x=%v)", v, pre.X)
		}
		scale := 1 + math.Abs(dense.Objective)
		if diff := math.Abs(dense.Objective - pre.Objective); diff > 1e-6*scale {
			t.Fatalf("objective mismatch: dense=%.12g presolve=%.12g (stats %+v)",
				dense.Objective, pre.Objective, pre.Stats)
		}
		if err := pre.Basis.Validate(p); err != nil {
			t.Fatalf("postsolved basis invalid: %v", err)
		}
		ws, err := SolveOpts(p, Options{WarmStart: pre.Basis})
		if err != nil {
			t.Fatalf("warm restart: %v", err)
		}
		if ws.Status != Optimal || math.Abs(ws.Objective-dense.Objective) > 1e-6*scale {
			t.Fatalf("warm restart from postsolved basis: status=%v obj=%.12g want %.12g",
				ws.Status, ws.Objective, dense.Objective)
		}
	})
}

// FuzzTightenRoundTrip: TightenBounds must never move the optimum —
// implied bounds cut no feasible point — and a claimed infeasibility
// must be real.
func FuzzTightenRoundTrip(f *testing.F) {
	f.Add(seedPR3InflatedRHS)
	f.Add([]byte{0x02, 0x02, 0x00, 0x04, 0x03, 0x02, 0x00, 0x04, 0x03, 0x02, 0x00, 0x0c, 0x05, 0x00, 0x05, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeLP(data)
		before, err := SolveDense(p)
		if err != nil {
			t.Skip()
		}
		q := p.Clone()
		_, bad := TightenBounds(q, 3)
		if bad {
			if before.Status == Optimal || before.Status == Unbounded {
				if decisively(p) == 0 {
					t.Skip()
				}
				t.Fatalf("tightening claimed infeasible, dense says %v", before.Status)
			}
			return
		}
		after, err := SolveDense(q)
		if err != nil {
			t.Fatalf("tightened solve: %v", err)
		}
		if before.Status == IterLimit || after.Status == IterLimit {
			t.Skip()
		}
		if before.Status != after.Status {
			if (before.Status == Infeasible) != (after.Status == Infeasible) && decisively(p) == 0 {
				t.Skip()
			}
			t.Fatalf("status changed by tightening: %v -> %v", before.Status, after.Status)
		}
		if before.Status == Optimal {
			scale := 1 + math.Abs(before.Objective)
			if diff := math.Abs(before.Objective - after.Objective); diff > 1e-6*scale {
				t.Fatalf("tightening moved the optimum: %.12g -> %.12g", before.Objective, after.Objective)
			}
		}
	})
}
