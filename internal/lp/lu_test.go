package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestForrestTomlinMatchesRefactor drives real solves under the LU
// engine and then checks the factor-level ground truth on the
// update-accumulated factors: for random vectors v, the FTRAN result
// must satisfy B·x = v and the BTRAN result Bᵀ·z = v, with B read
// directly from the CSC columns of the current basis. (Comparing
// against a fresh refactorization vector-for-vector would be wrong —
// refactor re-pivots the row-to-column assignment.)
func TestForrestTomlinMatchesRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 120; trial++ {
		p := boxedRandom(rng, 4+rng.Intn(8), 3+rng.Intn(8))
		s := newRevised(p, Options{Factorization: FactorLU})
		if st := s.phase1(); st != Optimal {
			continue
		}
		if st := s.phase2(); st != Optimal {
			continue
		}
		lu, ok := s.fe.(*luFactor)
		if !ok {
			t.Fatal("engine is not the LU factorization")
		}
		if lu.updates() == 0 {
			continue // nothing folded in since the last refactor
		}
		checked++

		// B·x accumulates column basis[r] scaled by x[r] into row space.
		mulB := func(x []float64) []float64 {
			out := make([]float64, s.m)
			for r := 0; r < s.m; r++ {
				q := s.basis[r]
				for k := s.colPtr[q]; k < s.colPtr[q+1]; k++ {
					out[s.rowIdx[k]] += s.vals[k] * x[r]
				}
			}
			return out
		}
		for rep := 0; rep < 3; rep++ {
			v := make([]float64, s.m)
			vmax := 1.0
			for i := range v {
				v[i] = math.Round(rng.NormFloat64() * 4)
				if a := math.Abs(v[i]); a > vmax {
					vmax = a
				}
			}
			x := append([]float64(nil), v...)
			lu.ftran(x)
			back := mulB(x)
			for i := range back {
				if d := math.Abs(back[i] - v[i]); d > 1e-7*vmax {
					t.Fatalf("trial %d: B·ftran(v) != v at row %d: got %g want %g", trial, i, back[i], v[i])
				}
			}
			z := append([]float64(nil), v...)
			lu.btran(z)
			// Bᵀz = v row-wise: column basis[r] dotted with z equals v[r].
			for r := 0; r < s.m; r++ {
				if d := math.Abs(s.colDot(s.basis[r], z) - v[r]); d > 1e-7*vmax {
					t.Fatalf("trial %d: Bᵀ·btran(v) != v at row %d", trial, r)
				}
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d trials accumulated Forrest–Tomlin updates; generator too tame", checked)
	}
}

// TestFactorizationsAgree solves random programs under both basis
// representations and both pricing rules; statuses and objectives must
// be interchangeable.
func TestFactorizationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 150; trial++ {
		p := boxedRandom(rng, 3+rng.Intn(6), 2+rng.Intn(7))
		ref, err := SolveOpts(p, Options{Factorization: FactorEta})
		if err != nil {
			t.Fatalf("trial %d: eta: %v", trial, err)
		}
		for _, opt := range []Options{
			{Factorization: FactorLU},
			{Factorization: FactorLU, Pricing: PricingSteepest},
			{Factorization: FactorEta, Pricing: PricingSteepest},
		} {
			sol, err := SolveOpts(p, opt)
			if err != nil {
				t.Fatalf("trial %d (%v/%v): %v", trial, opt.Factorization, opt.Pricing, err)
			}
			if sol.Status != ref.Status {
				t.Fatalf("trial %d (%v/%v): status %v, eta ref %v", trial, opt.Factorization, opt.Pricing, sol.Status, ref.Status)
			}
			if ref.Status == Optimal {
				if d := math.Abs(sol.Objective - ref.Objective); d > 1e-6*(1+math.Abs(ref.Objective)) {
					t.Fatalf("trial %d (%v/%v): objective %g, eta ref %g", trial, opt.Factorization, opt.Pricing, sol.Objective, ref.Objective)
				}
			}
		}
	}
}

// TestSolverWarmChainPricingWeights is the Devex-reference regression:
// a shared lp.Solver re-solved across a long chain of bound changes —
// with warm starts alternating between the pointer-identity hot path
// and full basis restores, and presolved solves rebuilding the context
// — must keep its pricing weights consistent with the current basis.
// The failure modes guarded here: a stale reference framework silently
// degrading pricing (pivot counts blow up) or indexing out of bounds
// after the column count changes (panic). Exercised for both pricing
// rules and both factorizations.
func TestSolverWarmChainPricingWeights(t *testing.T) {
	for _, opt := range []Options{
		{Factorization: FactorLU, Pricing: PricingDevex},
		{Factorization: FactorLU, Pricing: PricingSteepest},
		{Factorization: FactorEta, Pricing: PricingDevex},
		{Factorization: FactorEta, Pricing: PricingSteepest},
	} {
		// Scan seeds for a base problem with a feasible optimum so the
		// chain actually exercises warm re-solves.
		var rng *rand.Rand
		var p *Problem
		for seed := int64(1); ; seed++ {
			rng = rand.New(rand.NewSource(seed))
			p = boxedRandom(rng, 8, 7)
			if sol, err := Solve(p); err == nil && sol.Status == Optimal {
				break
			}
			if seed > 100 {
				t.Fatal("no feasible base problem in 100 seeds")
			}
		}
		sv := NewSolver(p)
		origLo := make([]float64, p.NumVars())
		origUp := make([]float64, p.NumVars())
		for j := 0; j < p.NumVars(); j++ {
			origLo[j], origUp[j] = p.Bounds(j)
		}
		warmPivots, coldPivots, warmSolves := 0, 0, 0
		var basis *Basis
		for step := 0; step < 40; step++ {
			j := rng.Intn(p.NumVars())
			lo, up := origLo[j], origUp[j]
			switch rng.Intn(3) {
			case 0:
				p.SetBounds(j, lo, up)
			case 1:
				v := math.Round(lo + rng.Float64()*(up-lo))
				p.SetBounds(j, v, v)
			default:
				p.SetBounds(j, lo, math.Max(lo, up-1))
			}
			o := opt
			o.WarmStart = basis
			o.Presolve = basis == nil && step%5 == 4
			ws, err := sv.Solve(o)
			if err != nil {
				t.Fatalf("%v/%v step %d: %v", opt.Factorization, opt.Pricing, step, err)
			}
			dense, err := SolveDense(p)
			if err != nil {
				t.Fatalf("%v/%v step %d: dense: %v", opt.Factorization, opt.Pricing, step, err)
			}
			if ws.Status != dense.Status {
				t.Fatalf("%v/%v step %d: status warm=%v dense=%v", opt.Factorization, opt.Pricing, step, ws.Status, dense.Status)
			}
			if ws.Status == Optimal {
				if d := math.Abs(ws.Objective - dense.Objective); d > 1e-6*(1+math.Abs(dense.Objective)) {
					t.Fatalf("%v/%v step %d: objective warm=%g dense=%g", opt.Factorization, opt.Pricing, step, ws.Objective, dense.Objective)
				}
				basis = ws.Basis
			} else {
				basis = nil
			}
			if ws.Stats.Warm && !ws.Stats.WarmFellBack {
				warmPivots += ws.Iterations
				warmSolves++
			} else {
				coldPivots += ws.Iterations
			}
		}
		if warmSolves < 10 {
			t.Fatalf("%v/%v: only %d warm re-solves over 40 steps", opt.Factorization, opt.Pricing, warmSolves)
		}
		// Degraded pricing shows up as exploding pivot counts: a warm
		// re-solve after one bound change should average far fewer
		// pivots than the problem has rows.
		if avg := float64(warmPivots) / float64(warmSolves); avg > float64(p.NumRows()+p.NumVars()) {
			t.Fatalf("%v/%v: warm re-solves average %.1f pivots — pricing framework degraded", opt.Factorization, opt.Pricing, avg)
		}
	}
}
