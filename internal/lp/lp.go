// Package lp implements linear-programming solvers for the mapping
// programs of the paper. It plays the role that ILOG CPLEX plays in §6:
// the engine underneath the mixed linear program (1a)–(1k) that computes
// throughput-optimal mappings. Package milp adds branch-and-bound on top
// for the integer variables.
//
// Two engines share one model API:
//
//   - Solve / SolveOpts run a sparse revised simplex: constraint columns
//     in compressed (CSC) form, the basis inverse as a Forrest–Tomlin-
//     updated sparse LU factorization (Options.Factorization selects the
//     legacy eta file instead), Devex or exact-initialized steepest-edge
//     pricing (Options.Pricing) with a Bland fallback under degeneracy,
//     bounded-variable ratio tests, and a bound-flip long-step dual
//     ratio test on warm starts. The mapping LPs are naturally sparse —
//     each constraint touches a handful of the |tasks|×|PEs| variables —
//     so this is the production path.
//   - SolveDense / SolveDenseOpts run the original two-phase dense
//     tableau simplex, kept as the independent reference implementation
//     for differential testing (package lptest).
//
// Both minimize c·x subject to linear constraints with senses ≤, =, ≥
// and per-variable bounds l ≤ x ≤ u (infinite bounds allowed).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the relation of a constraint row.
type Sense int

const (
	// LE is a·x ≤ b.
	LE Sense = iota
	// GE is a·x ≥ b.
	GE
	// EQ is a·x = b.
	EQ
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "?"
	}
}

// Coef is one nonzero coefficient of a constraint row: Value times
// variable Var.
type Coef struct {
	Var   int
	Value float64
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies all constraints and bounds.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// IterLimit means the iteration budget was exhausted.
	IterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

type row struct {
	coefs []Coef
	sense Sense
	rhs   float64
}

// Problem is a linear program under construction. Create one with New,
// then set objective coefficients and bounds and add constraints.
// A Problem is not safe for concurrent mutation but may be solved
// concurrently once built (Solve does not modify it).
type Problem struct {
	n    int
	obj  []float64
	lo   []float64
	up   []float64
	rows []row
	// objVersion counts SetObj calls so reusable solving contexts
	// (Solver, Model) can detect objective mutation between solves and
	// re-price instead of silently optimizing a stale cost vector.
	objVersion uint64
}

// New creates a problem with n variables, zero objective and default
// bounds [0, +inf).
func New(n int) *Problem {
	p := &Problem{
		n:   n,
		obj: make([]float64, n),
		lo:  make([]float64, n),
		up:  make([]float64, n),
	}
	for i := range p.up {
		p.up[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.n }

// NumRows returns the number of constraints.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObj sets the objective coefficient of variable j (minimization).
func (p *Problem) SetObj(j int, c float64) {
	p.obj[j] = c
	p.objVersion++
}

// ObjCoef returns the objective coefficient of variable j.
func (p *Problem) ObjCoef(j int) float64 { return p.obj[j] }

// SetBounds sets l ≤ x_j ≤ u. Use math.Inf for one-sided ranges.
func (p *Problem) SetBounds(j int, lo, up float64) {
	p.lo[j] = lo
	p.up[j] = up
}

// Bounds returns the bounds of variable j.
func (p *Problem) Bounds(j int) (lo, up float64) { return p.lo[j], p.up[j] }

// AddRow adds a constraint and returns its index. Coefficients with
// duplicate variable indices are summed.
func (p *Problem) AddRow(coefs []Coef, sense Sense, rhs float64) int {
	cp := make([]Coef, 0, len(coefs))
	seen := map[int]int{}
	for _, c := range coefs {
		if c.Var < 0 || c.Var >= p.n {
			panic(fmt.Sprintf("lp: coefficient for variable %d out of range [0,%d)", c.Var, p.n))
		}
		if k, ok := seen[c.Var]; ok {
			cp[k].Value += c.Value
			continue
		}
		seen[c.Var] = len(cp)
		cp = append(cp, c)
	}
	p.rows = append(p.rows, row{coefs: cp, sense: sense, rhs: rhs})
	return len(p.rows) - 1
}

// Row returns the coefficients, sense and right-hand side of constraint
// i. The returned slice is owned by the Problem and must not be
// modified.
func (p *Problem) Row(i int) ([]Coef, Sense, float64) {
	r := p.rows[i]
	return r.coefs, r.sense, r.rhs
}

// Clone returns a deep copy of the objective and bounds sharing the
// (immutable once built) constraint rows. It exists so concurrent
// branch-and-bound workers can tighten variable bounds independently
// without copying the constraint matrix.
func (p *Problem) Clone() *Problem {
	cp := &Problem{
		n:          p.n,
		obj:        append([]float64(nil), p.obj...),
		lo:         append([]float64(nil), p.lo...),
		up:         append([]float64(nil), p.up...),
		rows:       append([]row(nil), p.rows...),
		objVersion: p.objVersion,
	}
	return cp
}

// Basis is a snapshot of a simplex basis: the basic/nonbasic status of
// every column (structural variables followed by one slack per row). It
// is produced by the sparse solver on optimal solves (Solution.Basis)
// and consumed through Options.WarmStart, so branch-and-bound can
// re-solve a child node from its parent's basis with a dual simplex
// phase instead of a cold phase-1 restart. The eta/refactorization
// state is not stored: restoring a Basis triggers one reinversion from
// the basic column set, which also revalidates it numerically.
//
// A Basis is immutable once returned and safe to share across
// goroutines; it stays valid under bound changes (the textbook B&B
// delta) but is rejected — with a silent cold fallback — when the
// problem's row/column structure differs.
type Basis struct {
	status  []int8 // per column: atLower, atUpper or basic
	nStruct int
	m       int
}

// grownBy returns a copy of the basis extended for `rows` constraint
// rows appended to the problem AFTER the snapshot was taken: each new
// row's slack column enters the basis. The extended basis matrix is
// block triangular ([[B,0],[a_B,I]]), so it is nonsingular whenever the
// original was, and its reduced costs are unchanged on the old columns
// (the new slacks cost zero) — the textbook dual-simplex warm start for
// row additions, used by Model.AddRow.
func (b *Basis) grownBy(rows int) *Basis {
	if rows <= 0 {
		return b
	}
	st := make([]int8, len(b.status)+rows)
	copy(st, b.status)
	for i := len(b.status); i < len(st); i++ {
		st[i] = basic
	}
	return &Basis{status: st, nStruct: b.nStruct, m: b.m + rows}
}

// GrownBy returns a copy of the basis extended for `rows` constraint
// rows appended to the problem after the snapshot was taken; see
// grownBy. It lets callers that append rows outside Model.AddRow (the
// branch-and-bound cut adoption path) keep a node basis warm-startable.
func (b *Basis) GrownBy(rows int) *Basis { return b.grownBy(rows) }

// RowSlackBasic reports whether the slack of constraint row i is basic.
// A cut row whose slack is basic and loose at an optimum is inactive
// there; the cut-and-branch layer uses this to retire such rows.
func (b *Basis) RowSlackBasic(i int) bool {
	return b.status[b.nStruct+i] == int8(basic)
}

// DropRows returns a copy of b for the problem obtained by deleting
// every constraint row i with keep[i] == false. Each dropped row's
// slack must be basic — deleting a (row, basic slack) pair keeps the
// remaining basis square and nonsingular, since the slack column is a
// unit column in its own row. It returns nil if any dropped row's
// slack is nonbasic.
func (b *Basis) DropRows(keep []bool) *Basis {
	if len(keep) != b.m {
		return nil
	}
	st := make([]int8, 0, len(b.status))
	st = append(st, b.status[:b.nStruct]...)
	m := 0
	for i := 0; i < b.m; i++ {
		if keep[i] {
			st = append(st, b.status[b.nStruct+i])
			m++
		} else if b.status[b.nStruct+i] != int8(basic) {
			return nil
		}
	}
	return &Basis{status: st, nStruct: b.nStruct, m: m}
}

// NumBasic returns the number of basic columns (== rows when healthy).
func (b *Basis) NumBasic() int {
	c := 0
	for _, st := range b.status {
		if st == basic {
			c++
		}
	}
	return c
}

// Validate checks that the basis is structurally valid for p: the
// dimensions match, exactly one column is basic per row, and every
// nonbasic column rests somewhere it can — a finite bound, or the
// free-at-zero convention (atLower with both bounds infinite). It is
// the invariant every postsolved or snapshotted Basis must satisfy for
// Options.WarmStart to be restorable; the fuzz and property suites
// assert it after every presolve round-trip.
func (b *Basis) Validate(p *Problem) error {
	if b == nil {
		return fmt.Errorf("lp: nil basis")
	}
	m := len(p.rows)
	if b.nStruct != p.n || b.m != m || len(b.status) != p.n+m {
		return fmt.Errorf("lp: basis shaped %d+%d, problem is %d+%d", b.nStruct, b.m, p.n, m)
	}
	if nb := b.NumBasic(); nb != m {
		return fmt.Errorf("lp: %d basic columns, want %d", nb, m)
	}
	bound := func(j int) (lo, up float64) {
		if j < p.n {
			return p.lo[j], p.up[j]
		}
		switch p.rows[j-p.n].sense {
		case GE:
			return math.Inf(-1), 0
		case EQ:
			return 0, 0
		default: // LE
			return 0, math.Inf(1)
		}
	}
	for j, st := range b.status {
		lo, up := bound(j)
		switch int(st) {
		case basic:
		case atUpper:
			if math.IsInf(up, 1) {
				return fmt.Errorf("lp: column %d rests at an infinite upper bound", j)
			}
		case atLower:
			if math.IsInf(lo, -1) && !math.IsInf(up, 1) {
				return fmt.Errorf("lp: column %d rests at an infinite lower bound", j)
			}
		default:
			return fmt.Errorf("lp: column %d has unknown status %d", j, st)
		}
	}
	return nil
}

// Factorization selects the basis-inverse representation of the sparse
// engine.
type Factorization int

const (
	// FactorLU (the default) keeps a sparse LU factorization — Markowitz
	// pivoting with a threshold tolerance — updated in place by
	// Forrest–Tomlin after every pivot, so FTRAN/BTRAN cost stays near
	// the triangular-solve cost instead of growing with the pivots since
	// the last refactorization.
	FactorLU Factorization = iota
	// FactorEta keeps the product-form eta file of PR 2: one elementary
	// matrix appended per pivot. Kept selectable for differential tests
	// and warm-vs-cold ablations.
	FactorEta
)

// String implements fmt.Stringer.
func (f Factorization) String() string {
	if f == FactorEta {
		return "eta"
	}
	return "lu"
}

// Pricing selects the phase-2 entering rule of the sparse engine.
type Pricing int

const (
	// PricingDevex (the default) prices with Devex reference weights:
	// cheap approximate steepest-edge, re-referenced every phase entry.
	PricingDevex Pricing = iota
	// PricingSteepest prices with exact steepest-edge norms
	// γ_j = 1 + ‖B⁻¹a_j‖², initialized exactly through the
	// factorization on the first pivot of a phase and maintained by the
	// standard update formulas (one extra BTRAN per pivot). Fewer,
	// better pivots at a higher per-pivot cost.
	PricingSteepest
)

// String implements fmt.Stringer.
func (p Pricing) String() string {
	if p == PricingSteepest {
		return "steepest-edge"
	}
	return "devex"
}

// DualPricing selects the leaving-row rule of the warm-start dual
// simplex phase.
type DualPricing int

const (
	// DualPricingSteepest (the default) weights each infeasible row's
	// bound violation by an approximate dual steepest-edge norm
	// β_i ≈ ‖B⁻ᵀe_i‖², choosing the row maximizing viol²/β_i. Norms are
	// initialized to 1 at every dual-phase entry (the Devex-style
	// reference start) and maintained by the Forrest–Goldfarb update,
	// which reuses the pivot row ρ = B⁻ᵀe_r the phase already computes
	// plus one extra FTRAN per pivot. Fewer, better dual pivots on the
	// long warm chains of branch-and-bound.
	DualPricingSteepest DualPricing = iota
	// DualPricingMaxViolation is the pre-PR 7 rule — leave the row with
	// the largest bound violation — kept selectable for ablations.
	DualPricingMaxViolation
)

// String implements fmt.Stringer.
func (p DualPricing) String() string {
	if p == DualPricingMaxViolation {
		return "max-violation"
	}
	return "dual-steepest-edge"
}

// Stats carries per-solve solver statistics, for observability and for
// the warm-vs-cold benchmarks.
type Stats struct {
	// Iterations is the total number of simplex pivots (all phases).
	Iterations int
	// DualIterations counts the pivots taken by the warm-start dual
	// simplex phase (a subset of Iterations).
	DualIterations int
	// BoundFlips counts nonbasic columns flipped to their opposite
	// bound by the long-step dual ratio test (several can ride along
	// with one dual pivot).
	BoundFlips int
	// Refactorizations counts basis reinversions (including the one
	// that restores a warm basis). The RefactorXxx counters split the
	// total by cause.
	Refactorizations int
	// RefactorPeriodic counts scheduled reinversions (refactorEvery
	// pivots folded into the factorization).
	RefactorPeriodic int
	// RefactorUnstable counts reinversions forced by numerical trouble:
	// a rejected Forrest–Tomlin update, a degraded pivot, or an
	// FTRAN/BTRAN drift check.
	RefactorUnstable int
	// RefactorRestore counts reinversions that installed a WarmStart
	// basis.
	RefactorRestore int
	// FTUpdates counts Forrest–Tomlin updates folded into the LU
	// factors (0 under FactorEta).
	FTUpdates int
	// MaxSpikeGrowth is the largest ‖spike‖∞/|new diagonal| ratio seen
	// across the Forrest–Tomlin updates of this solve — the growth
	// factor that triggers an RefactorUnstable reinversion when it
	// passes the stability threshold.
	MaxSpikeGrowth float64
	// Warm is true when a WarmStart basis was accepted and restored.
	Warm bool
	// WarmFellBack is true when a warm start was requested but the
	// solve had to fall back to the cold primal path (stale or
	// singular basis, lost dual feasibility, or a cycling dual phase).
	WarmFellBack bool
	// PresolvedCols and PresolvedRows count the columns and rows
	// eliminated by the presolve pipeline (all reductions combined).
	PresolvedCols, PresolvedRows int
	// PresolvePasses counts pipeline passes that performed at least
	// one reduction; the remaining counters split the work by kind.
	PresolvePasses int
	// PresolveSingletonRows counts singleton rows converted into
	// variable bounds and dropped.
	PresolveSingletonRows int
	// PresolveSingletonCols counts free / implied-free column
	// singletons substituted out of their equality row.
	PresolveSingletonCols int
	// PresolveDupCols counts duplicate (proportional) columns merged
	// or fixed by dominance.
	PresolveDupCols int
	// PresolveTightened counts variable bounds tightened by constraint
	// activity propagation inside presolve.
	PresolveTightened int
}

// Add accumulates o's counters into s: counters sum, MaxSpikeGrowth
// takes the maximum, and the warm-outcome booleans OR. It is the one
// place the aggregation list lives — a new Stats field must be added
// here so the sched facade's sweep aggregates (and anything else
// summing per-solve stats) pick it up.
func (s *Stats) Add(o Stats) {
	s.Iterations += o.Iterations
	s.DualIterations += o.DualIterations
	s.BoundFlips += o.BoundFlips
	s.Refactorizations += o.Refactorizations
	s.RefactorPeriodic += o.RefactorPeriodic
	s.RefactorUnstable += o.RefactorUnstable
	s.RefactorRestore += o.RefactorRestore
	s.FTUpdates += o.FTUpdates
	if o.MaxSpikeGrowth > s.MaxSpikeGrowth {
		s.MaxSpikeGrowth = o.MaxSpikeGrowth
	}
	s.Warm = s.Warm || o.Warm
	s.WarmFellBack = s.WarmFellBack || o.WarmFellBack
	s.PresolvedCols += o.PresolvedCols
	s.PresolvedRows += o.PresolvedRows
	s.PresolvePasses += o.PresolvePasses
	s.PresolveSingletonRows += o.PresolveSingletonRows
	s.PresolveSingletonCols += o.PresolveSingletonCols
	s.PresolveDupCols += o.PresolveDupCols
	s.PresolveTightened += o.PresolveTightened
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	X          []float64 // values of the structural variables
	Objective  float64   // c·x at X (meaningful when Status == Optimal)
	Iterations int       // total simplex pivots (both phases)
	// Basis is the final basis on Optimal solves from the sparse
	// engine (nil otherwise), reusable via Options.WarmStart.
	Basis *Basis
	// Stats reports solver counters for this solve.
	Stats Stats
}

// Options tunes the solver.
type Options struct {
	// MaxIter bounds total pivots; 0 means an automatic limit of
	// 200·(m+n) + 10000.
	MaxIter int
	// Tol is the feasibility/optimality tolerance; 0 means 1e-9.
	Tol float64
	// WarmStart, when non-nil, restores the given basis (typically the
	// parent node's Solution.Basis after a single bound change) and
	// tries a dual simplex phase before falling back to the cold
	// primal path. Ignored when incompatible with the problem.
	WarmStart *Basis
	// Presolve enables the multi-pass reduction pipeline (empty and
	// singleton rows, fixed columns, free/implied-free column
	// singletons, duplicate and dominated columns, constraint-driven
	// bound tightening) with postsolve un-crush; the returned Basis is
	// expressed in the original (un-presolved) column space so it stays
	// reusable, and a WarmStart basis is crushed into the reduced space
	// when compatible.
	Presolve bool
	// Factorization selects the basis-inverse representation: the
	// Forrest–Tomlin-updated sparse LU (default) or the PR 2 eta file.
	Factorization Factorization
	// Pricing selects the phase-2 entering rule: Devex (default) or
	// exact-initialized steepest edge.
	Pricing Pricing
	// DualPricing selects the dual-simplex leaving-row rule:
	// approximate dual steepest edge (default) or the plain
	// largest-violation rule.
	DualPricing DualPricing
	// PartialPricing controls segmented pricing of the primal phases.
	// 0 or negative (the default) disables it; a positive value
	// enables it with that segment size (minimum 64). Under partial
	// pricing each iteration BTRANs the phase multipliers and prices
	// one rotating segment of nonbasic columns at a time (Dantzig
	// within the segment), instead of maintaining reduced costs and
	// Devex/steepest-edge weights across all n columns. Optimality is
	// still exact: it is only declared after a full wrap over every
	// segment finds no candidate, and the Bland anti-cycling fallback
	// reverts to full scans. Strictly opt-in: on the 94-task mapping
	// formulations (~7000 columns) the segment scans cost 3x the
	// pivots Devex needs — see partialSegment in sparse.go.
	PartialPricing int
}

// Solve optimizes the problem with the sparse revised simplex and
// default options.
//
// The LP kernel entry points deliberately take no context: a single
// simplex solve is budget-bounded by Options.MaxIter (returning
// IterLimit cleanly), and cancellation lives one layer up at MILP node
// granularity, where milp.SolveCtx checks ctx between node solves.
//
//lint:allow ctxflow budget-bounded kernel; cancellation is handled at milp node granularity
func Solve(p *Problem) (*Solution, error) { return SolveOpts(p, Options{}) }

// SolveOpts optimizes the problem with the sparse revised simplex.
//
//lint:allow ctxflow budget-bounded kernel; cancellation is handled at milp node granularity
func SolveOpts(p *Problem, opt Options) (*Solution, error) {
	return solveSparse(p, opt)
}

// precheck validates bounds; it returns a non-nil Solution or error when
// the model is trivially infeasible or malformed.
func (p *Problem) precheck(tol float64) (*Solution, error) {
	for j := 0; j < p.n; j++ {
		if p.lo[j] > p.up[j]+tol {
			return &Solution{Status: Infeasible}, nil
		}
		if math.IsInf(p.lo[j], 1) || math.IsInf(p.up[j], -1) {
			return nil, fmt.Errorf("lp: variable %d has inverted infinite bounds", j)
		}
	}
	return nil, nil
}

// ErrBadModel reports a structurally invalid model.
var ErrBadModel = errors.New("lp: invalid model")

// Typed sentinel errors for the non-Optimal solve outcomes. The solvers
// themselves report outcomes through Solution.Status (a limit or an
// infeasible model is a result, not a failure), but layers that must
// turn an unusable outcome into an error — milp, core, assign, the sched
// facade, the CLI — wrap these so callers classify with errors.Is
// instead of matching status strings.
var (
	// ErrInfeasible reports that no point satisfies the constraints and
	// bounds.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded reports that the objective decreases without bound.
	ErrUnbounded = errors.New("lp: unbounded")
	// ErrIterLimit reports that an iteration/node/time budget was
	// exhausted before a usable result existed.
	ErrIterLimit = errors.New("lp: iteration limit")
)

// Err maps a Status to its sentinel error: nil for Optimal,
// ErrInfeasible / ErrUnbounded / ErrIterLimit otherwise.
func (s Status) Err() error {
	switch s {
	case Optimal:
		return nil
	case Infeasible:
		return ErrInfeasible
	case Unbounded:
		return ErrUnbounded
	case IterLimit:
		return ErrIterLimit
	default:
		return fmt.Errorf("%w: status %d", ErrBadModel, int(s))
	}
}
