package lp

import (
	"math"

	"cellstream/internal/num"
)

// SolveDense optimizes the problem with the dense two-phase tableau
// simplex and default options. It is kept as the reference
// implementation for differential testing against the sparse revised
// simplex behind Solve; production callers should prefer Solve.
//
//lint:allow ctxflow budget-bounded kernel; cancellation is handled at milp node granularity
func SolveDense(p *Problem) (*Solution, error) { return SolveDenseOpts(p, Options{}) }

// variable states (shared with the sparse solver)
const (
	atLower = iota
	atUpper
	basic
	fixedOut // artificial removed after phase 1 / pinned column
)

type denseSimplex struct {
	m, n     int // rows, total columns (structural + slack + artificial)
	nStruct  int
	tab      [][]float64 // m rows × n cols: current B^{-1}A
	xB       []float64   // values of basic variables, per row
	basis    []int       // column basic in each row
	state    []int       // per column
	lo, up   []float64   // per column
	cost     []float64   // phase-2 cost per column
	d        []float64   // reduced costs per column (current phase)
	inPhase1 bool
	tol      float64
	iters    int
	maxIter  int
	// degeneracy bookkeeping
	stall int
	bland bool
}

// SolveDenseOpts optimizes the problem with the dense tableau simplex.
//
//lint:allow ctxflow budget-bounded kernel; cancellation is handled at milp node granularity
func SolveDenseOpts(p *Problem, opt Options) (*Solution, error) {
	tol := opt.Tol
	if tol == 0 {
		tol = num.FeasTol
	}
	if sol, err := p.precheck(tol); sol != nil || err != nil {
		return sol, err
	}

	m := len(p.rows)
	// Columns: structural | slack (one per LE/GE row) | artificial (one per row).
	nSlack := 0
	for _, r := range p.rows {
		if r.sense != EQ {
			nSlack++
		}
	}
	n := p.n + nSlack + m
	s := &denseSimplex{
		m: m, n: n, nStruct: p.n,
		xB:    make([]float64, m),
		basis: make([]int, m),
		state: make([]int, n),
		lo:    make([]float64, n),
		up:    make([]float64, n),
		cost:  make([]float64, n),
		d:     make([]float64, n),
		tol:   tol,
	}
	s.maxIter = opt.MaxIter
	if s.maxIter == 0 {
		s.maxIter = 200*(m+n) + 10000
	}
	s.tab = make([][]float64, m)
	for i := range s.tab {
		s.tab[i] = make([]float64, n)
	}

	copy(s.lo, p.lo)
	copy(s.up, p.up)
	copy(s.cost, p.obj)

	// Nonbasic structural variables start at a finite bound.
	for j := 0; j < p.n; j++ {
		switch {
		case !math.IsInf(p.lo[j], -1):
			s.state[j] = atLower
		case !math.IsInf(p.up[j], 1):
			s.state[j] = atUpper
		default:
			// Free variable: model as at "lower" with value 0 by
			// temporarily treating 0 as its resting value. We encode
			// this by keeping state atLower and using valueOf which
			// returns 0 for doubly-infinite bounds.
			s.state[j] = atLower
		}
	}

	// Fill the tableau with A, slacks and artificials; compute initial
	// basic values b - A·x_N for the artificial basis.
	slackIdx := p.n
	for i, r := range p.rows {
		for _, c := range r.coefs {
			s.tab[i][c.Var] += c.Value
		}
		if r.sense != EQ {
			sl := slackIdx
			slackIdx++
			s.tab[i][sl] = 1
			s.lo[sl], s.up[sl] = 0, math.Inf(1)
			if r.sense == GE {
				// a·x + sl = b with sl ≤ 0.
				s.lo[sl], s.up[sl] = math.Inf(-1), 0
				s.state[sl] = atUpper
			} else {
				s.state[sl] = atLower
			}
		}
		// Residual for the artificial variable.
		resid := r.rhs
		for _, c := range r.coefs {
			resid -= c.Value * s.valueOf(c.Var)
		}
		// Keep the artificial basis at B = I: when the residual is
		// negative, negate the whole row (a valid row operation) so the
		// artificial enters with coefficient +1 and value |resid| ≥ 0.
		art := p.n + nSlack + i
		if resid < 0 {
			for j := 0; j < art; j++ {
				s.tab[i][j] = -s.tab[i][j]
			}
		}
		s.tab[i][art] = 1
		s.lo[art], s.up[art] = 0, math.Inf(1)
		s.basis[i] = art
		s.state[art] = basic
		s.xB[i] = math.Abs(resid)
	}

	// Phase 1: minimize the sum of artificials.
	s.inPhase1 = true
	phase1 := make([]float64, n)
	for i := 0; i < m; i++ {
		phase1[p.n+nSlack+i] = 1
	}
	s.computeReducedCosts(phase1)
	st := s.iterate(phase1)
	if st == IterLimit {
		return &Solution{Status: IterLimit, Iterations: s.iters}, nil
	}
	if s.phaseObjective(phase1) > num.LooseFeasTol*(1+math.Abs(sumAbs(phase1))) {
		return &Solution{Status: Infeasible, Iterations: s.iters}, nil
	}
	// Drive any artificial still basic (at value ~0) out of the basis,
	// or fix it; then forbid artificials.
	s.expelArtificials(p.n + nSlack)
	for j := p.n + nSlack; j < n; j++ {
		if s.state[j] != basic {
			s.lo[j], s.up[j] = 0, 0
			s.state[j] = fixedOut
		}
	}

	// Phase 2: the real objective.
	s.inPhase1 = false
	s.computeReducedCosts(s.cost)
	st = s.iterate(s.cost)
	switch st {
	case IterLimit:
		return &Solution{Status: IterLimit, Iterations: s.iters}, nil
	case Unbounded:
		return &Solution{Status: Unbounded, Iterations: s.iters}, nil
	}

	x := s.extract()
	obj := 0.0
	for j := 0; j < p.n; j++ {
		obj += p.obj[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iterations: s.iters}, nil
}

func sumAbs(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// valueOf returns the current value of a nonbasic column.
func (s *denseSimplex) valueOf(j int) float64 {
	switch s.state[j] {
	case atLower:
		if math.IsInf(s.lo[j], -1) {
			return 0 // free variable resting at zero
		}
		return s.lo[j]
	case atUpper:
		return s.up[j]
	case fixedOut:
		return 0
	}
	panic("lp: valueOf on basic column")
}

// extract reads the structural solution out of the basis.
func (s *denseSimplex) extract() []float64 {
	x := make([]float64, s.nStruct)
	for j := 0; j < s.nStruct; j++ {
		if s.state[j] != basic {
			x[j] = s.valueOf(j)
		}
	}
	for i, bj := range s.basis {
		if bj < s.nStruct {
			x[bj] = s.xB[i]
		}
	}
	// Clamp tiny violations to the bounds for downstream consumers.
	for j := range x {
		if x[j] < s.lo[j] && x[j] > s.lo[j]-num.BoundSnapTol {
			x[j] = s.lo[j]
		}
		if x[j] > s.up[j] && x[j] < s.up[j]+num.BoundSnapTol {
			x[j] = s.up[j]
		}
	}
	return x
}

func (s *denseSimplex) phaseObjective(c []float64) float64 {
	var v float64
	for i, bj := range s.basis {
		v += c[bj] * s.xB[i]
	}
	for j := 0; j < s.n; j++ {
		if s.state[j] != basic && c[j] != 0 {
			v += c[j] * s.valueOf(j)
		}
	}
	return v
}

// computeReducedCosts rebuilds d_j = c_j - c_B · B^{-1}A_j from scratch.
func (s *denseSimplex) computeReducedCosts(c []float64) {
	// y_i = c_{B(i)}; d_j = c_j - Σ_i y_i tab[i][j]
	for j := 0; j < s.n; j++ {
		d := c[j]
		for i := 0; i < s.m; i++ {
			cb := c[s.basis[i]]
			if cb != 0 {
				d -= cb * s.tab[i][j]
			}
		}
		s.d[j] = d
	}
}

// iterate runs simplex pivots for the objective c until optimality,
// unboundedness or the iteration limit.
func (s *denseSimplex) iterate(c []float64) Status {
	for {
		if s.iters >= s.maxIter {
			return IterLimit
		}
		e, dir := s.chooseEntering()
		if e < 0 {
			return Optimal
		}
		st := s.pivot(e, dir, c)
		if st != Optimal {
			return st
		}
	}
}

// chooseEntering returns the entering column and its movement direction
// (+1: increase from lower bound, -1: decrease from upper bound), or
// (-1, 0) at optimality.
func (s *denseSimplex) chooseEntering() (int, float64) {
	bestJ, bestDir, bestScore := -1, 0.0, s.tol
	for j := 0; j < s.n; j++ {
		switch s.state[j] {
		case basic, fixedOut:
			continue
		case atLower:
			// Increasing improves if reduced cost negative.
			if -s.d[j] > bestScore {
				if s.bland {
					return j, 1
				}
				bestJ, bestDir, bestScore = j, 1, -s.d[j]
			}
			// Free variable resting at zero may also decrease.
			if math.IsInf(s.lo[j], -1) && s.d[j] > bestScore {
				if s.bland {
					return j, -1
				}
				bestJ, bestDir, bestScore = j, -1, s.d[j]
			}
		case atUpper:
			if s.d[j] > bestScore {
				if s.bland {
					return j, -1
				}
				bestJ, bestDir, bestScore = j, -1, s.d[j]
			}
		}
	}
	return bestJ, bestDir
}

// pivot moves column e in direction dir, performing either a bound flip
// or a basis change. c is the active objective (for the incremental
// reduced-cost update).
func (s *denseSimplex) pivot(e int, dir float64, c []float64) Status {
	s.iters++
	m := s.m
	// Maximum step from e's own bounds.
	tMax := math.Inf(1)
	if !math.IsInf(s.lo[e], -1) && !math.IsInf(s.up[e], 1) {
		tMax = s.up[e] - s.lo[e]
	}
	// Two-pass (Harris) ratio test over the basic variables: pass 1
	// computes the step limit with every bound relaxed by a feasibility
	// tolerance, pass 2 picks the numerically largest pivot among the
	// rows that block within that limit. Entries below pivTol are noise
	// left behind by earlier eliminations and must never pivot — a
	// single 1e-11-scale pivot fills the tableau with 1e16-scale garbage
	// and silently destroys primal feasibility.
	const pivTol = num.PivTol
	const feasTol = num.FeasTol
	scan := func(ptol float64) (int, float64, bool) {
		tLim := tMax
		for i := 0; i < m; i++ {
			y := dir * s.tab[i][e]
			if y < ptol && y > -ptol {
				continue
			}
			bj := s.basis[i]
			var t float64
			if y > 0 {
				// Basic variable decreases toward its lower bound.
				if math.IsInf(s.lo[bj], -1) {
					continue
				}
				t = (s.xB[i] - s.lo[bj] + feasTol) / y
			} else {
				if math.IsInf(s.up[bj], 1) {
					continue
				}
				t = (s.xB[i] - s.up[bj] - feasTol) / y // y<0 so t ≥ 0 when xB ≤ up
			}
			if t < tLim {
				tLim = t
			}
		}
		leave, tBest, pivAbs := -1, tMax, 0.0
		leaveToUpper := false
		for i := 0; i < m; i++ {
			y := dir * s.tab[i][e]
			if y < ptol && y > -ptol {
				continue
			}
			bj := s.basis[i]
			var t float64
			var hitsUpper bool
			if y > 0 {
				if math.IsInf(s.lo[bj], -1) {
					continue
				}
				t = (s.xB[i] - s.lo[bj]) / y
			} else {
				if math.IsInf(s.up[bj], 1) {
					continue
				}
				t = (s.xB[i] - s.up[bj]) / y
				hitsUpper = true
			}
			if t < 0 {
				t = 0
			}
			if t > tLim {
				continue
			}
			pick := leave < 0
			if !pick {
				if s.bland {
					// Bland's anti-cycling rule wants the smallest basis
					// index among the minimum-ratio rows.
					pick = t < tBest-num.RatioTol || (t <= tBest+num.RatioTol && s.basis[i] < s.basis[leave])
				} else {
					pick = math.Abs(s.tab[i][e]) > pivAbs
				}
			}
			if pick {
				leave, tBest, pivAbs = i, t, math.Abs(s.tab[i][e])
				leaveToUpper = hitsUpper
			}
		}
		return leave, tBest, leaveToUpper
	}
	leave, tBest, leaveToUpper := scan(pivTol)
	if leave < 0 && math.IsInf(tMax, 1) {
		// Before declaring an unbounded ray, re-admit sub-pivTol rows:
		// on a badly scaled column (one coefficient 1e8 beside a 1) the
		// only genuine blocker can price below the noise threshold, and
		// skipping it turned a bounded model into a false Unbounded —
		// found by FuzzPresolveRoundTrip against the presolve pipeline.
		// The rescue threshold is relative to the column (rescueTol):
		// elimination dust scales with it, genuine entries do not.
		colMax := 0.0
		for i := 0; i < m; i++ {
			colMax = math.Max(colMax, math.Abs(s.tab[i][e]))
		}
		leave, tBest, leaveToUpper = scan(rescueTol(colMax))
		if leave < 0 {
			return Unbounded
		}
	}

	// Degeneracy watchdog: after too many zero-step pivots switch to
	// Bland's rule, which cannot cycle.
	if tBest <= num.RatioTol {
		s.stall++
		if s.stall > 2*(s.m+s.n) {
			s.bland = true
		}
	} else {
		s.stall = 0
	}

	if leave < 0 {
		// Bound flip: e moves to its opposite bound; no basis change.
		t := tMax
		for i := 0; i < m; i++ {
			s.xB[i] -= dir * t * s.tab[i][e]
		}
		if dir > 0 {
			s.state[e] = atUpper
		} else {
			s.state[e] = atLower
		}
		return Optimal
	}

	// Basis change: entering value moves by dir*tBest from its bound.
	enterVal := s.valueOf(e) + dir*tBest
	for i := 0; i < m; i++ {
		s.xB[i] -= dir * tBest * s.tab[i][e]
	}
	lj := s.basis[leave]
	if leaveToUpper {
		s.state[lj] = atUpper
		s.xB[leave] = s.up[lj]
	} else {
		s.state[lj] = atLower
		s.xB[leave] = s.lo[lj]
	}

	// Gaussian pivot on (leave, e).
	piv := s.tab[leave][e]
	invPiv := 1 / piv
	rowL := s.tab[leave]
	for j := 0; j < s.n; j++ {
		rowL[j] *= invPiv
	}
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		f := s.tab[i][e]
		if f == 0 {
			continue
		}
		ri := s.tab[i]
		for j := 0; j < s.n; j++ {
			ri[j] -= f * rowL[j]
		}
	}
	// Update reduced costs: d_j -= d_e * rowL_j (after normalization).
	de := s.d[e]
	if de != 0 {
		for j := 0; j < s.n; j++ {
			s.d[j] -= de * rowL[j]
		}
	}
	s.d[e] = 0

	s.basis[leave] = e
	s.state[e] = basic
	s.xB[leave] = enterVal

	// Periodically rebuild reduced costs to fight drift.
	if s.iters%512 == 0 {
		s.computeReducedCosts(c)
	}
	return Optimal
}

// expelArtificials pivots still-basic artificial variables (necessarily
// at value ≈ 0) out of the basis when a structural or slack column has a
// nonzero entry in their row; rows that are all-zero are redundant and
// the artificial is left basic at zero, pinned to [0,0].
func (s *denseSimplex) expelArtificials(artStart int) {
	for i := 0; i < s.m; i++ {
		bj := s.basis[i]
		if bj < artStart {
			continue
		}
		// Find a non-artificial column with a usable pivot in row i.
		found := -1
		for j := 0; j < artStart; j++ {
			if s.state[j] == basic {
				continue
			}
			if math.Abs(s.tab[i][j]) > num.LooseFeasTol {
				found = j
				break
			}
		}
		if found < 0 {
			s.lo[bj], s.up[bj] = 0, 0
			continue
		}
		e := found
		enterVal := s.valueOf(e) // xB_i ≈ 0 so the entering keeps its value
		piv := s.tab[i][e]
		invPiv := 1 / piv
		rowI := s.tab[i]
		for j := 0; j < s.n; j++ {
			rowI[j] *= invPiv
		}
		for r := 0; r < s.m; r++ {
			if r == i {
				continue
			}
			f := s.tab[r][e]
			if f == 0 {
				continue
			}
			rr := s.tab[r]
			for j := 0; j < s.n; j++ {
				rr[j] -= f * rowI[j]
			}
		}
		s.state[bj] = fixedOut
		s.lo[bj], s.up[bj] = 0, 0
		s.basis[i] = e
		s.state[e] = basic
		s.xB[i] = enterVal
	}
}
