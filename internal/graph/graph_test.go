package graph

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustValidate(t *testing.T, g *Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddTaskAssignsDenseIDs(t *testing.T) {
	g := &Graph{}
	a := g.AddTask(Task{Name: "a"})
	b := g.AddTask(Task{})
	if a != 0 || b != 1 {
		t.Errorf("IDs = %d, %d; want 0, 1", a, b)
	}
	if g.Tasks[1].Name != "T1" {
		t.Errorf("auto name = %q, want T1", g.Tasks[1].Name)
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	g := &Graph{Name: "cyc"}
	a := g.AddTask(Task{})
	b := g.AddTask(Task{})
	c := g.AddTask(Task{})
	g.AddEdge(a, b, 1)
	g.AddEdge(b, c, 1)
	g.AddEdge(c, a, 1)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("Validate = %v, want cycle error", err)
	}
}

func TestValidateCatchesSelfLoop(t *testing.T) {
	g := &Graph{}
	a := g.AddTask(Task{})
	g.AddEdge(a, a, 1)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "self loop") {
		t.Errorf("Validate = %v, want self loop error", err)
	}
}

func TestValidateCatchesDuplicateEdge(t *testing.T) {
	g := &Graph{}
	a := g.AddTask(Task{})
	b := g.AddTask(Task{})
	g.AddEdge(a, b, 1)
	g.AddEdge(a, b, 2)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("Validate = %v, want duplicate error", err)
	}
}

func TestValidateCatchesBadCosts(t *testing.T) {
	for _, tc := range []Task{
		{WPPE: -1, WSPE: 1},
		{WPPE: 1, WSPE: math.NaN()},
		{WPPE: math.Inf(1), WSPE: 1},
		{WPPE: 1, WSPE: 1, Peek: -1},
		{WPPE: 1, WSPE: 1, ReadBytes: -5},
	} {
		g := &Graph{}
		g.AddTask(tc)
		if err := g.Validate(); err == nil {
			t.Errorf("task %+v accepted", tc)
		}
	}
}

func TestValidateCatchesOutOfRangeEdge(t *testing.T) {
	g := &Graph{}
	g.AddTask(Task{})
	g.Edges = append(g.Edges, Edge{From: 0, To: 7, Bytes: 1})
	if err := g.Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestTopoOrderDeterministicAndValid(t *testing.T) {
	g := Fig2bExample()
	mustValidate(t, g)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[TaskID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topological order", e.From, e.To)
		}
	}
	order2, _ := g.TopoOrder()
	for i := range order {
		if order[i] != order2[i] {
			t.Fatal("TopoOrder is not deterministic")
		}
	}
}

func TestSourcesSinksDepth(t *testing.T) {
	g := Fig2bExample()
	srcs := g.Sources()
	if len(srcs) != 2 { // T1 and T2 have no predecessors in Fig2b
		t.Errorf("sources = %v", srcs)
	}
	sinks := g.Sinks()
	if len(sinks) != 2 { // T8 and T9
		t.Errorf("sinks = %v", sinks)
	}
	if d := g.Depth(); d != 4 {
		t.Errorf("depth = %d, want 4", d)
	}
}

func TestChainShape(t *testing.T) {
	g := UniformChain("c", 5, 1, 2, 64)
	mustValidate(t, g)
	if g.NumTasks() != 5 || g.NumEdges() != 4 {
		t.Fatalf("chain: %d tasks, %d edges", g.NumTasks(), g.NumEdges())
	}
	if g.Depth() != 5 {
		t.Errorf("depth = %d, want 5", g.Depth())
	}
	if got := g.TotalComputePPE(); got != 5 {
		t.Errorf("TotalComputePPE = %v, want 5", got)
	}
	if got := g.TotalComputeSPE(); got != 10 {
		t.Errorf("TotalComputeSPE = %v, want 10", got)
	}
	if got := g.TotalBytes(); got != 4*64 {
		t.Errorf("TotalBytes = %v, want 256", got)
	}
}

func TestForkJoinShape(t *testing.T) {
	g := ForkJoin("fj", 3, 2, 1, 1, 8)
	mustValidate(t, g)
	if g.NumTasks() != 3*2+2 {
		t.Errorf("tasks = %d, want 8", g.NumTasks())
	}
	if g.Depth() != 4 {
		t.Errorf("depth = %d, want 4", g.Depth())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Error("fork-join must have a single source and sink")
	}
}

func TestCCRAndScaling(t *testing.T) {
	g := UniformChain("c", 3, 1e-6, 1e-6, 400) // 2 edges × 400 B
	// ops = 3e-6 s / 1e-9 s/op = 3000 ops; elements = 800/4 = 200.
	ccr := g.CCR(4, 1e-9)
	if math.Abs(ccr-200.0/3000.0) > 1e-12 {
		t.Errorf("CCR = %v, want %v", ccr, 200.0/3000.0)
	}
	g.ScaleCommunication(3)
	if got := g.CCR(4, 1e-9); math.Abs(got-3*ccr) > 1e-12 {
		t.Errorf("scaled CCR = %v, want %v", got, 3*ccr)
	}
	g.ScaleComputation(2)
	if got := g.CCR(4, 1e-9); math.Abs(got-1.5*ccr) > 1e-12 {
		t.Errorf("after compute scaling CCR = %v, want %v", got, 1.5*ccr)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := UniformChain("c", 3, 1, 1, 10)
	c := g.Clone()
	c.Tasks[0].WPPE = 99
	c.Edges[0].Bytes = 99
	if g.Tasks[0].WPPE == 99 || g.Edges[0].Bytes == 99 {
		t.Error("Clone shares storage with original")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := Fig2bExample()
	g.Tasks[3].Peek = 2
	g.Tasks[4].Stateful = true
	g.Tasks[5].ReadBytes = 123
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != g.Name || got.NumTasks() != g.NumTasks() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %v vs %v", got, g)
	}
	for i := range g.Tasks {
		if *got.Task(TaskID(i)) != *g.Task(TaskID(i)) {
			t.Errorf("task %d: %+v != %+v", i, got.Tasks[i], g.Tasks[i])
		}
	}
	for i := range g.Edges {
		if got.Edges[i] != g.Edges[i] {
			t.Errorf("edge %d mismatch", i)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","tasks":[{"id":0,"wppe":-1}]}`)); err == nil {
		t.Error("invalid graph accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// ReadJSON is the wire format of the schedd serving API: a payload
// carrying anything after the graph object must be rejected, not
// silently truncated at the first complete value.
func TestReadJSONRejectsTrailingContent(t *testing.T) {
	valid := `{"name":"x","tasks":[{"id":0,"name":"a","wppe":1,"wspe":1}],"edges":[]}`
	for name, in := range map[string]string{
		"second-object": valid + `{"name":"y"}`,
		"garbage":       valid + `junk`,
		"stray-token":   valid + `]`,
		"number":        valid + ` 42`,
	} {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: trailing content accepted", name)
		}
	}
	// Trailing whitespace (including the newline Encode emits) is fine.
	if _, err := ReadJSON(strings.NewReader(valid + "\n  \t")); err != nil {
		t.Errorf("trailing whitespace rejected: %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := Fig3Example()
	path := t.TempDir() + "/g.json"
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTasks() != 3 {
		t.Errorf("loaded %d tasks", got.NumTasks())
	}
}

func TestDOTOutput(t *testing.T) {
	g := Fig3Example()
	dot := g.DOT([]int{0, 0, 1})
	for _, want := range []string{"digraph", "t0 -> t1", "t0 -> t2", "peek: 1", "fillcolor"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	if strings.Contains(g.DOT(nil), "fillcolor") {
		t.Error("unmapped DOT should not color nodes")
	}
}

// A partial mapping marks unmapped tasks with a negative PE index
// (assign's in-progress states do exactly this); DOT used to panic on
// them because Go's % preserves the sign. They must render unfilled,
// as must tasks beyond the mapping's length.
func TestDOTUnmappedAndNegativeIndices(t *testing.T) {
	g := Fig3Example()
	dot := g.DOT([]int{-1, 5, -3}) // must not panic
	if strings.Contains(dot, "t0 [label") && strings.Contains(dot, "fillcolor") {
		// Only t1 (PE 5) may be filled.
		if n := strings.Count(dot, "fillcolor"); n != 1 {
			t.Errorf("want exactly 1 filled node, got %d:\n%s", n, dot)
		}
	}
	// Short mapping: tasks past its end render unfilled.
	short := g.DOT([]int{0})
	if n := strings.Count(short, "fillcolor"); n != 1 {
		t.Errorf("short mapping: want 1 filled node, got %d", n)
	}
}

func TestEdgeBetween(t *testing.T) {
	g := Fig3Example()
	if i, ok := g.EdgeBetween(0, 2); !ok || i != 1 {
		t.Errorf("EdgeBetween(0,2) = %d,%v", i, ok)
	}
	if _, ok := g.EdgeBetween(2, 0); ok {
		t.Error("reverse edge reported")
	}
}

// Property: a randomly built layered DAG always validates, always
// topo-sorts, and depth never exceeds task count.
func TestQuickRandomDAGsValid(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		rng := rand.New(rand.NewSource(seed))
		g := &Graph{Name: "q"}
		for i := 0; i < n; i++ {
			g.AddTask(Task{WPPE: rng.Float64(), WSPE: rng.Float64(), Peek: rng.Intn(3)})
		}
		for to := 1; to < n; to++ {
			g.AddEdge(TaskID(rng.Intn(to)), TaskID(to), rng.Float64()*100)
		}
		if err := g.Validate(); err != nil {
			return false
		}
		order, err := g.TopoOrder()
		if err != nil || len(order) != n {
			return false
		}
		return g.Depth() <= n && g.Depth() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ScaleCommunication by f multiplies TotalBytes by f and
// leaves compute untouched.
func TestQuickScaleCommunication(t *testing.T) {
	f := func(seed int64, factRaw uint8) bool {
		fact := 0.1 + float64(factRaw)/32
		rng := rand.New(rand.NewSource(seed))
		g := &Graph{}
		for i := 0; i < 5; i++ {
			g.AddTask(Task{WPPE: rng.Float64(), WSPE: rng.Float64(),
				ReadBytes: rng.Float64() * 10, WriteBytes: rng.Float64() * 10})
		}
		for to := 1; to < 5; to++ {
			g.AddEdge(TaskID(to-1), TaskID(to), rng.Float64()*100)
		}
		b0, c0 := g.TotalBytes(), g.TotalComputePPE()
		g.ScaleCommunication(fact)
		b1, c1 := g.TotalBytes(), g.TotalComputePPE()
		return math.Abs(b1-b0*fact) < 1e-9*(1+b0) && c0 == c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
