package graph

import "fmt"

// Chain builds a linear pipeline of n tasks, the "simple streaming
// application" of Fig. 2(a). Costs are filled from the cost functions,
// which receive the task index; edge i->i+1 carries bytes(i) bytes.
func Chain(name string, n int, wppe, wspe func(i int) float64, bytes func(i int) float64) *Graph {
	g := &Graph{Name: name}
	for i := 0; i < n; i++ {
		g.AddTask(Task{Name: fmt.Sprintf("T%d", i+1), WPPE: wppe(i), WSPE: wspe(i)})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(TaskID(i), TaskID(i+1), bytes(i))
	}
	return g
}

// UniformChain builds a chain of n tasks with identical costs.
func UniformChain(name string, n int, wppe, wspe, bytes float64) *Graph {
	return Chain(name, n,
		func(int) float64 { return wppe },
		func(int) float64 { return wspe },
		func(int) float64 { return bytes })
}

// Fig3Example builds the 3-task application of Fig. 3 of the paper:
// T1 feeds T2 and T3; T3 has peek = 1. With T1 and T2 on one PE and T3
// on another, firstPeriod must evaluate to (0, 2, 4).
func Fig3Example() *Graph {
	g := &Graph{Name: "fig3"}
	t1 := g.AddTask(Task{Name: "T1", WPPE: 1, WSPE: 1})
	t2 := g.AddTask(Task{Name: "T2", WPPE: 1, WSPE: 1})
	t3 := g.AddTask(Task{Name: "T3", WPPE: 1, WSPE: 1, Peek: 1})
	g.AddEdge(t1, t2, 1024)
	g.AddEdge(t1, t3, 1024)
	return g
}

// Fig2bExample builds the 9-task application of Fig. 2(b): a diamond-ish
// DAG used throughout the paper's exposition. Costs are illustrative.
func Fig2bExample() *Graph {
	g := &Graph{Name: "fig2b"}
	ids := make([]TaskID, 10) // 1-based convenience
	for i := 1; i <= 9; i++ {
		ids[i] = g.AddTask(Task{Name: fmt.Sprintf("T%d", i), WPPE: 1, WSPE: 0.5})
	}
	edges := [][2]int{
		{1, 3}, {1, 4}, {2, 5}, {3, 5}, {3, 6}, {4, 6}, {4, 7}, {5, 8}, {6, 8}, {6, 9}, {7, 9},
	}
	for _, e := range edges {
		g.AddEdge(ids[e[0]], ids[e[1]], 4096)
	}
	return g
}

// ForkJoin builds a fork-join graph: one source fans out to width parallel
// branches of the given depth, which all join into one sink. Useful for
// exercising mappings where branches can run on distinct SPEs.
func ForkJoin(name string, width, depth int, wppe, wspe, bytes float64) *Graph {
	g := &Graph{Name: name}
	src := g.AddTask(Task{Name: "src", WPPE: wppe, WSPE: wspe})
	var lasts []TaskID
	for b := 0; b < width; b++ {
		prev := src
		for d := 0; d < depth; d++ {
			t := g.AddTask(Task{Name: fmt.Sprintf("b%dd%d", b, d), WPPE: wppe, WSPE: wspe})
			g.AddEdge(prev, t, bytes)
			prev = t
		}
		lasts = append(lasts, prev)
	}
	sink := g.AddTask(Task{Name: "sink", WPPE: wppe, WSPE: wspe})
	for _, l := range lasts {
		g.AddEdge(l, sink, bytes)
	}
	return g
}
