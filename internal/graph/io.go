package graph

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteJSON serializes the graph in an indented, stable JSON form.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON parses a graph and validates it. The input must hold
// exactly one JSON document: trailing content after the graph object
// (other than whitespace) is an error, so a truncated or concatenated
// payload cannot silently parse as a valid graph — this is the wire
// format of the schedd serving API.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("graph: decoding JSON: %w", err)
	}
	if tok, err := dec.Token(); !errors.Is(err, io.EOF) {
		if err != nil {
			return nil, fmt.Errorf("graph: trailing content after JSON object: %w", err)
		}
		return nil, fmt.Errorf("graph: trailing content after JSON object: %v", tok)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// SaveFile writes the graph as JSON to path.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a JSON graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// DOT renders the graph in Graphviz DOT syntax, one node per task
// annotated with its costs and peek, mirroring Fig. 5 of the paper.
// If mapping is non-nil it colors nodes by processing element index
// (mapping[taskID] = PE index).
func (g *Graph) DOT(mapping []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box];\n", g.Name)
	palette := []string{"lightblue", "palegreen", "lightsalmon", "khaki",
		"plum", "lightcyan", "mistyrose", "wheat", "lavender", "honeydew"}
	for _, t := range g.Tasks {
		label := fmt.Sprintf("%s\\nppe: %.3g spe: %.3g\\npeek: %d", t.Name, t.WPPE, t.WSPE, t.Peek)
		if t.Stateful {
			label += "\\nstateful"
		}
		attr := ""
		// Only color tasks with an in-range, non-negative PE index: a
		// partial mapping marks unmapped tasks with -1 (and Go's % keeps
		// the sign, so a negative index would panic). Unmapped tasks
		// render unfilled.
		if mapping != nil && int(t.ID) < len(mapping) && mapping[t.ID] >= 0 {
			attr = fmt.Sprintf(", style=filled, fillcolor=%q", palette[mapping[t.ID]%len(palette)])
		}
		fmt.Fprintf(&b, "  t%d [label=\"%s\"%s];\n", t.ID, label, attr)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  t%d -> t%d [label=\"%.3g B\"];\n", e.From, e.To, e.Bytes)
	}
	b.WriteString("}\n")
	return b.String()
}
