// Package graph models streaming applications as directed acyclic task
// graphs, following §2.2 of Gallet, Jacquelin and Marchal, "Scheduling
// complex streaming applications on the Cell processor".
//
// A stream is an unbounded sequence of instances. Every instance must be
// processed by every task of the graph; an edge D(k,l) carries, for each
// instance, Bytes bytes produced by task k and consumed by task l.
// A task l with Peek = p additionally needs the data of the p instances
// following the current one before it can fire (video encoders that look
// at future frames are the canonical example).
package graph

import (
	"fmt"
	"math"
	"sort"
)

// TaskID identifies a task inside one Graph. IDs are dense indices:
// the i-th task of Graph.Tasks has ID i.
type TaskID int

// Task is one node of the application graph. Compute costs follow the
// unrelated-machine model of the paper: WPPE and WSPE are the times (in
// seconds) for one instance on a PPE and on an SPE respectively, and
// neither dominates the other in general.
type Task struct {
	ID   TaskID `json:"id"`
	Name string `json:"name"`

	// WPPE and WSPE are seconds per instance on a PPE / SPE.
	WPPE float64 `json:"wppe"`
	WSPE float64 `json:"wspe"`

	// Peek is the number of future instances of every input datum that
	// must be present before an instance can be processed (peek_k in the
	// paper). Zero for memoryless filters.
	Peek int `json:"peek"`

	// ReadBytes and WriteBytes are bytes exchanged with main memory per
	// instance (read_k and write_k in the paper). They occupy the
	// communication interfaces exactly like inter-task transfers.
	ReadBytes  float64 `json:"read"`
	WriteBytes float64 `json:"write"`

	// Stateful marks tasks that carry internal state between instances.
	// Stateful tasks cannot be replicated; since the paper restricts
	// itself to simple mappings (every instance of a task on the same
	// PE) the flag does not constrain the mapping, but the simulator
	// serializes instances of a stateful task.
	Stateful bool `json:"stateful,omitempty"`
}

// Edge is a dependency D(k,l): each instance of task To consumes Bytes
// bytes produced by the same instance of task From.
type Edge struct {
	From  TaskID  `json:"from"`
	To    TaskID  `json:"to"`
	Bytes float64 `json:"bytes"`
}

// Graph is a complete streaming application: a DAG of tasks.
// The zero value is an empty graph; use AddTask/AddEdge or the builders
// in this package to populate it, then Validate.
type Graph struct {
	Name  string `json:"name"`
	Tasks []Task `json:"tasks"`
	Edges []Edge `json:"edges"`
}

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.Tasks) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// AddTask appends a task and returns its ID. The ID field of the argument
// is overwritten with the dense index.
func (g *Graph) AddTask(t Task) TaskID {
	t.ID = TaskID(len(g.Tasks))
	if t.Name == "" {
		t.Name = fmt.Sprintf("T%d", t.ID)
	}
	g.Tasks = append(g.Tasks, t)
	return t.ID
}

// AddEdge appends a dependency from one task to another.
func (g *Graph) AddEdge(from, to TaskID, bytes float64) {
	g.Edges = append(g.Edges, Edge{From: from, To: to, Bytes: bytes})
}

// Task returns the task with the given ID.
func (g *Graph) Task(id TaskID) *Task { return &g.Tasks[id] }

// Validate checks structural soundness: dense IDs, edge endpoints in
// range, no self loops, no duplicate edges, non-negative costs and
// acyclicity. It returns the first problem found.
func (g *Graph) Validate() error {
	for i, t := range g.Tasks {
		if int(t.ID) != i {
			return fmt.Errorf("graph %q: task %d has ID %d, want dense IDs", g.Name, i, t.ID)
		}
		if t.WPPE < 0 || t.WSPE < 0 {
			return fmt.Errorf("graph %q: task %s has negative compute cost", g.Name, t.Name)
		}
		if math.IsNaN(t.WPPE) || math.IsNaN(t.WSPE) || math.IsInf(t.WPPE, 0) || math.IsInf(t.WSPE, 0) {
			return fmt.Errorf("graph %q: task %s has non-finite compute cost", g.Name, t.Name)
		}
		if t.Peek < 0 {
			return fmt.Errorf("graph %q: task %s has negative peek", g.Name, t.Name)
		}
		if t.ReadBytes < 0 || t.WriteBytes < 0 {
			return fmt.Errorf("graph %q: task %s has negative memory traffic", g.Name, t.Name)
		}
	}
	seen := make(map[[2]TaskID]bool, len(g.Edges))
	for _, e := range g.Edges {
		if e.From < 0 || int(e.From) >= len(g.Tasks) || e.To < 0 || int(e.To) >= len(g.Tasks) {
			return fmt.Errorf("graph %q: edge %d->%d out of range", g.Name, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("graph %q: self loop on task %d", g.Name, e.From)
		}
		if e.Bytes < 0 || math.IsNaN(e.Bytes) || math.IsInf(e.Bytes, 0) {
			return fmt.Errorf("graph %q: edge %d->%d has invalid size %v", g.Name, e.From, e.To, e.Bytes)
		}
		key := [2]TaskID{e.From, e.To}
		if seen[key] {
			return fmt.Errorf("graph %q: duplicate edge %d->%d", g.Name, e.From, e.To)
		}
		seen[key] = true
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Preds returns, for every task, the list of incoming edges (indices into
// g.Edges). The slice is indexed by TaskID.
func (g *Graph) Preds() [][]int {
	preds := make([][]int, len(g.Tasks))
	for i, e := range g.Edges {
		preds[e.To] = append(preds[e.To], i)
	}
	return preds
}

// Succs returns, for every task, the list of outgoing edges (indices into
// g.Edges). The slice is indexed by TaskID.
func (g *Graph) Succs() [][]int {
	succs := make([][]int, len(g.Tasks))
	for i, e := range g.Edges {
		succs[e.From] = append(succs[e.From], i)
	}
	return succs
}

// Sources returns the IDs of tasks with no predecessor, in ID order.
func (g *Graph) Sources() []TaskID {
	indeg := make([]int, len(g.Tasks))
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	var out []TaskID
	for i, d := range indeg {
		if d == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Sinks returns the IDs of tasks with no successor, in ID order.
func (g *Graph) Sinks() []TaskID {
	outdeg := make([]int, len(g.Tasks))
	for _, e := range g.Edges {
		outdeg[e.From]++
	}
	var out []TaskID
	for i, d := range outdeg {
		if d == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// TopoOrder returns the task IDs in a deterministic topological order
// (Kahn's algorithm with a min-heap on IDs), or an error naming a cycle
// participant if the graph is cyclic.
func (g *Graph) TopoOrder() ([]TaskID, error) {
	n := len(g.Tasks)
	indeg := make([]int, n)
	succs := g.Succs()
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	// Min-heap over ready IDs keeps the order deterministic.
	ready := make([]TaskID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, TaskID(i))
		}
	}
	sort.Slice(ready, func(a, b int) bool { return ready[a] < ready[b] })
	order := make([]TaskID, 0, n)
	for len(ready) > 0 {
		// Pop the smallest ID.
		best := 0
		for i := range ready {
			if ready[i] < ready[best] {
				best = i
			}
		}
		id := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, id)
		for _, ei := range succs[id] {
			to := g.Edges[ei].To
			indeg[to]--
			if indeg[to] == 0 {
				ready = append(ready, to)
			}
		}
	}
	if len(order) != n {
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("graph %q: cycle through task %s", g.Name, g.Tasks[i].Name)
			}
		}
	}
	return order, nil
}

// Depth returns the number of tasks on the longest path (1 for a single
// task, 0 for an empty graph).
func (g *Graph) Depth() int {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	depth := make([]int, len(g.Tasks))
	preds := g.Preds()
	max := 0
	for _, id := range order {
		d := 1
		for _, ei := range preds[id] {
			if pd := depth[g.Edges[ei].From] + 1; pd > d {
				d = pd
			}
		}
		depth[id] = d
		if d > max {
			max = d
		}
	}
	return max
}

// TotalComputePPE returns the total per-instance compute time if every
// task ran on a PPE. This is the baseline period of the speed-up metric
// used throughout the paper's evaluation (throughput normalized to the
// PPE-only mapping).
func (g *Graph) TotalComputePPE() float64 {
	var s float64
	for _, t := range g.Tasks {
		s += t.WPPE
	}
	return s
}

// TotalComputeSPE returns the total per-instance compute time if every
// task ran on a single SPE.
func (g *Graph) TotalComputeSPE() float64 {
	var s float64
	for _, t := range g.Tasks {
		s += t.WSPE
	}
	return s
}

// TotalBytes returns the total bytes moved per instance: all edge payloads
// plus main-memory reads and writes.
func (g *Graph) TotalBytes() float64 {
	var s float64
	for _, e := range g.Edges {
		s += e.Bytes
	}
	for _, t := range g.Tasks {
		s += t.ReadBytes + t.WriteBytes
	}
	return s
}

// CCR returns the communication-to-computation ratio of the application,
// following §6.2 of the paper: the total number of transferred elements
// divided by the number of operations on these elements. Elements are
// measured with ElementBytes bytes each and operations with OpSeconds
// seconds each, so that CCR is dimensionless and a "balanced" application
// (CCR = 1) moves one element per operation. We use the PPE compute cost
// as the operation count, matching the speed-up baseline.
func (g *Graph) CCR(elementBytes, opSeconds float64) float64 {
	ops := g.TotalComputePPE() / opSeconds
	if ops == 0 {
		return math.Inf(1)
	}
	return (g.TotalBytes() / elementBytes) / ops
}

// ScaleCommunication multiplies every edge payload and every memory
// read/write by factor. Used to derive the CCR variants of §6.2 from a
// base graph.
func (g *Graph) ScaleCommunication(factor float64) {
	for i := range g.Edges {
		g.Edges[i].Bytes *= factor
	}
	for i := range g.Tasks {
		g.Tasks[i].ReadBytes *= factor
		g.Tasks[i].WriteBytes *= factor
	}
}

// ScaleComputation multiplies every compute cost by factor.
func (g *Graph) ScaleComputation(factor float64) {
	for i := range g.Tasks {
		g.Tasks[i].WPPE *= factor
		g.Tasks[i].WSPE *= factor
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := &Graph{Name: g.Name}
	out.Tasks = append([]Task(nil), g.Tasks...)
	out.Edges = append([]Edge(nil), g.Edges...)
	return out
}

// EdgeBetween returns the index of the edge from one task to another and
// whether it exists.
func (g *Graph) EdgeBetween(from, to TaskID) (int, bool) {
	for i, e := range g.Edges {
		if e.From == from && e.To == to {
			return i, true
		}
	}
	return -1, false
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph %q: %d tasks, %d edges, depth %d",
		g.Name, len(g.Tasks), len(g.Edges), g.Depth())
}
