package sim

import (
	"strings"
	"testing"

	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

func TestGanttRendersTrace(t *testing.T) {
	g := graph.UniformChain("g", 3, 1e-5, 1e-5, 512)
	plat := platform.Cell(1, 2)
	res := run(t, g, plat, core.Mapping{0, 1, 2}, 10, Config{NoOverheads: true, CollectTrace: true})
	out := Gantt(g, plat, res.Trace, 0, res.TotalTime, 60)
	for _, want := range []string{"PPE0", "SPE0", "SPE1", "a", "v"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt missing %q:\n%s", want, out)
		}
	}
}

func TestGanttEmptyWindow(t *testing.T) {
	g := graph.UniformChain("g", 2, 1e-6, 1e-6, 8)
	plat := platform.Cell(1, 1)
	if out := Gantt(g, plat, nil, 5, 5, 40); !strings.Contains(out, "empty") {
		t.Errorf("empty window not handled: %q", out)
	}
}

func TestUtilizationTable(t *testing.T) {
	g := graph.UniformChain("g", 2, 1e-5, 1e-5, 256)
	plat := platform.Cell(1, 1)
	res := run(t, g, plat, core.Mapping{0, 1}, 20, Config{NoOverheads: true})
	table := res.UtilizationTable(plat)
	if !strings.Contains(table, "PPE0") || !strings.Contains(table, "transfers retired") {
		t.Errorf("table malformed:\n%s", table)
	}
}

func TestShortNameFallback(t *testing.T) {
	g := &graph.Graph{Name: "big"}
	for i := 0; i < 60; i++ {
		g.AddTask(graph.Task{WPPE: 1, WSPE: 1})
	}
	if shortName(g, 0) != 'a' || shortName(g, 26) != 'A' || shortName(g, 59) != '#' {
		t.Error("shortName mapping wrong")
	}
}
