// Package sim is a discrete-event simulator of the Cell BE platform
// model of §2.1, standing in for the PlayStation 3 / IBM QS22 hardware
// of the paper's evaluation.
//
// It executes a mapped streaming application with the runtime semantics
// of §6.1: every processing element alternates between a computation
// phase (select a runnable task, process one instance) and a
// communication phase (issue and retire asynchronous "Get" transfers).
// Communications follow the bidirectional bounded-multiport model —
// every PE owns an input and an output interface of bandwidth bw, and
// concurrent transfers share interface bandwidth max-min fairly (fluid
// model). SPE local stores bound the per-edge buffers, and the DMA-stack
// limits of §4.1 bound concurrency: at most 16 in-flight incoming
// transfers per SPE and at most 8 in-flight SPE→PPE transfers per SPE —
// mappings that exceed them (as the greedy heuristics routinely do)
// still run, but their extra transfers queue and throughput degrades,
// exactly the failure mode the paper observes on hardware.
//
// Small calibrated overheads (per-instance dispatch, per-DMA setup)
// reproduce the ≈95 % model accuracy reported around Fig. 6.
package sim

import (
	"fmt"
	"math"

	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

// Config tunes the simulator.
type Config struct {
	// DMALatency is the fixed setup time of one transfer (seconds).
	// Default 300 ns.
	DMALatency float64
	// DispatchOverhead is added to every task-instance execution
	// (scheduler loop, DMA status polling; §6.1). Default 500 ns.
	DispatchOverhead float64
	// MemPrefetch is the number of main-memory reads a task may have in
	// flight ahead of its next instance. Default 4.
	MemPrefetch int
	// EnforceEIB additionally caps the sum of all transfer rates by the
	// aggregate EIB bandwidth (off by default: §2.1 argues the ring is
	// never the bottleneck with ≤ 9 interfaces; an ablation turns it on).
	EnforceEIB bool
	// BufferSlack adds extra instances of capacity to every edge buffer
	// beyond the firstPeriod-derived size. Default 0.
	BufferSlack int
	// NoOverheads zeroes both overheads (for tests that compare the
	// simulator against the analytical period exactly).
	NoOverheads bool
	// CollectTrace records per-event traces (costly; off by default).
	CollectTrace bool
	// MaxSimTime aborts runs exceeding this simulated time (seconds);
	// 0 means no limit. Used by deadlock/livelock guards in tests.
	MaxSimTime float64
	// IgnoreLocalStore skips the local-store admission check. By default
	// a mapping whose buffers exceed an SPE local store is rejected: on
	// real hardware such a deployment fails to allocate, unlike DMA-limit
	// violations, which merely serialize transfers and are simulated.
	IgnoreLocalStore bool
}

func (c *Config) fill() {
	if c.NoOverheads {
		c.DMALatency = 0
		c.DispatchOverhead = 0
	} else {
		if c.DMALatency == 0 {
			c.DMALatency = 300e-9
		}
		if c.DispatchOverhead == 0 {
			c.DispatchOverhead = 500e-9
		}
	}
	if c.MemPrefetch == 0 {
		c.MemPrefetch = 4
	}
}

// Result reports one simulation run.
type Result struct {
	Instances int
	// FinishTimes[i] is the time at which every task had completed
	// instance i (0-based).
	FinishTimes []float64
	// TotalTime is the completion time of the last instance.
	TotalTime float64
	// Utilization[pe] is the fraction of TotalTime PE pe spent computing.
	Utilization []float64
	// BytesIn[pe] and BytesOut[pe] are total bytes moved through each
	// PE's interfaces; Transfers counts retired DMA transfers.
	BytesIn   []float64
	BytesOut  []float64
	Transfers int
	// Trace holds events when Config.CollectTrace was set.
	Trace []Event
}

// Throughput returns overall instances per second.
func (r *Result) Throughput() float64 {
	if r.TotalTime == 0 {
		return math.Inf(1)
	}
	return float64(r.Instances) / r.TotalTime
}

// SteadyThroughput estimates the steady-state throughput from the slope
// of the completion curve over its middle half [n/4, 3n/4), which
// excludes both the ramp-up transient of Fig. 6 and the end-of-stream
// drain (where the emptying pipeline completes instances faster than
// the steady rate).
func (r *Result) SteadyThroughput() float64 {
	n := len(r.FinishTimes)
	if n < 8 {
		return r.Throughput()
	}
	i0, i1 := n/4, 3*n/4
	dt := r.FinishTimes[i1] - r.FinishTimes[i0]
	if dt <= 0 {
		return math.Inf(1)
	}
	return float64(i1-i0) / dt
}

// RampCurve returns the cumulative throughput after each instance:
// point i is (i+1) / FinishTimes[i], the curve plotted in Fig. 6.
func (r *Result) RampCurve() []float64 {
	out := make([]float64, len(r.FinishTimes))
	for i, t := range r.FinishTimes {
		if t > 0 {
			out[i] = float64(i+1) / t
		}
	}
	return out
}

// EventKind labels trace events.
type EventKind int

const (
	// EvCompute is the completion of one task instance.
	EvCompute EventKind = iota
	// EvTransferStart is the issue of a DMA transfer.
	EvTransferStart
	// EvTransferEnd is the retirement of a DMA transfer.
	EvTransferEnd
)

// Event is one trace record.
type Event struct {
	Kind     EventKind
	Time     float64
	PE       int // executing or destination PE
	Task     graph.TaskID
	Instance int
	Bytes    float64
}

// memNode is the pseudo-PE index of main memory.
const memNode = -1

// transfer is one in-flight communication.
type transfer struct {
	src, dst int // PE indices or memNode
	bytes    float64
	left     float64 // bytes still to move
	activeAt float64 // setup (DMA latency) completes at this time
	rate     float64

	kind     int // 0: edge, 1: memory read, 2: memory write
	edge     int // edge index for kind 0
	task     graph.TaskID
	instance int
}

// edgeState tracks the stream flowing along one edge.
type edgeState struct {
	produced int // instances computed by the producer
	started  int // instances whose transfer has been issued
	arrived  int // instances available at the consumer
	released int // producer-side slots freed
	capSlots int // consumer-side buffer capacity in instances
	crossPE  bool
	srcPE    int
	dstPE    int
}

// taskState tracks one task's progress.
type taskState struct {
	pe           int
	done         int // completed instances
	computing    bool
	endAt        float64
	readsDone    int // completed memory reads
	readsIssued  int
	writesIssued int
	writesDone   int
	prio         int // topological position (schedule priority)
}

// Run simulates the processing of `instances` stream instances of g,
// mapped by m onto plat.
func Run(g *graph.Graph, plat *platform.Platform, m core.Mapping, instances int, cfg Config) (*Result, error) {
	if err := m.Validate(g, plat); err != nil {
		return nil, err
	}
	if instances <= 0 {
		return nil, fmt.Errorf("sim: instances must be positive, got %d", instances)
	}
	cfg.fill()
	if !cfg.IgnoreLocalStore {
		rep, err := core.Evaluate(g, plat, m)
		if err != nil {
			return nil, err
		}
		for pe := 0; pe < plat.NumPE(); pe++ {
			if plat.IsSPE(pe) && rep.BufferBytes[pe] > plat.BufferCapacity() {
				return nil, fmt.Errorf("sim: mapping cannot be deployed: %s needs %d buffer bytes, local store holds %d",
					plat.PEName(pe), rep.BufferBytes[pe], plat.BufferCapacity())
			}
		}
	}

	s := newState(g, plat, m, instances, cfg)
	for !s.done() {
		if err := s.step(); err != nil {
			return nil, err
		}
	}
	res := &Result{
		Instances:   instances,
		FinishTimes: s.finish,
		TotalTime:   s.finish[instances-1],
		Utilization: make([]float64, plat.NumPE()),
		BytesIn:     s.bytesIn,
		BytesOut:    s.bytesOut,
		Transfers:   s.transfers,
		Trace:       s.trace,
	}
	if res.TotalTime > 0 {
		for pe := range res.Utilization {
			res.Utilization[pe] = s.busy[pe] / res.TotalTime
		}
	}
	return res, nil
}

type state struct {
	g    *graph.Graph
	plat *platform.Platform
	m    core.Mapping
	cfg  Config
	n    int // instances target

	now               float64
	tasks             []taskState
	edges             []edgeState
	inEdges, outEdges [][]int // adjacency by edge index
	active            []*transfer

	busy      []float64 // compute-busy seconds per PE
	bytesIn   []float64
	bytesOut  []float64
	transfers int

	// per-instance completion bookkeeping
	remainPerInstance []int
	finish            []float64
	completedAll      int // instances fully completed (prefix)

	trace []Event
}

func newState(g *graph.Graph, plat *platform.Platform, m core.Mapping, instances int, cfg Config) *state {
	s := &state{g: g, plat: plat, m: m, cfg: cfg, n: instances}
	s.tasks = make([]taskState, g.NumTasks())
	order, _ := g.TopoOrder()
	for pos, id := range order {
		s.tasks[id].prio = pos
	}
	for k := range s.tasks {
		s.tasks[k].pe = m[k]
	}
	fp := core.FirstPeriods(g)
	s.edges = make([]edgeState, g.NumEdges())
	for ei, e := range g.Edges {
		gap := fp[e.To] - fp[e.From]
		if gap < 1 {
			gap = 1
		}
		capSlots := gap + g.Tasks[e.To].Peek + cfg.BufferSlack
		if min := g.Tasks[e.To].Peek + 2; capSlots < min {
			capSlots = min
		}
		s.edges[ei] = edgeState{
			capSlots: capSlots,
			crossPE:  m[e.From] != m[e.To],
			srcPE:    m[e.From],
			dstPE:    m[e.To],
		}
	}
	s.inEdges = g.Preds()
	s.outEdges = g.Succs()
	s.busy = make([]float64, plat.NumPE())
	s.bytesIn = make([]float64, plat.NumPE())
	s.bytesOut = make([]float64, plat.NumPE())
	s.remainPerInstance = make([]int, instances)
	// A task instance counts as done when its compute finishes and its
	// memory write (if any) has retired.
	for i := range s.remainPerInstance {
		s.remainPerInstance[i] = g.NumTasks()
	}
	s.finish = make([]float64, instances)
	s.schedule()
	return s
}

func (s *state) done() bool { return s.completedAll >= s.n }

// step advances the simulation to the next event.
func (s *state) step() error {
	s.recomputeRates()
	dt := math.Inf(1)
	for _, tr := range s.active {
		if tr.activeAt > s.now {
			dt = math.Min(dt, tr.activeAt-s.now)
		} else if tr.rate > 0 {
			dt = math.Min(dt, tr.left/tr.rate)
		}
	}
	for k := range s.tasks {
		if s.tasks[k].computing {
			dt = math.Min(dt, s.tasks[k].endAt-s.now)
		}
	}
	if math.IsInf(dt, 1) {
		return fmt.Errorf("sim: deadlock at t=%.6gs: %d/%d instances complete", s.now, s.completedAll, s.n)
	}
	if dt < 0 {
		dt = 0
	}
	s.now += dt
	if s.cfg.MaxSimTime > 0 && s.now > s.cfg.MaxSimTime {
		return fmt.Errorf("sim: exceeded max simulated time %.3gs (%d/%d instances)", s.cfg.MaxSimTime, s.completedAll, s.n)
	}

	// Progress transfers.
	var still []*transfer
	for _, tr := range s.active {
		if tr.activeAt <= s.now+1e-18 {
			tr.left -= tr.rate * dt
		}
		if tr.left <= 1e-9 && tr.activeAt <= s.now+1e-18 {
			s.completeTransfer(tr)
		} else {
			still = append(still, tr)
		}
	}
	s.active = still

	// Complete computations.
	for k := range s.tasks {
		ts := &s.tasks[k]
		if ts.computing && ts.endAt <= s.now+1e-18 {
			ts.computing = false
			s.completeCompute(graph.TaskID(k))
		}
	}

	s.schedule()
	return nil
}

// completeCompute retires one task instance's computation.
func (s *state) completeCompute(k graph.TaskID) {
	ts := &s.tasks[k]
	inst := ts.done // 0-based instance just finished
	ts.done++
	if s.cfg.CollectTrace {
		s.trace = append(s.trace, Event{EvCompute, s.now, ts.pe, k, inst, 0})
	}
	for _, ei := range s.outEdges[k] {
		es := &s.edges[ei]
		es.produced++
		if !es.crossPE {
			es.arrived++
			es.released++
			es.started++
		}
	}
	t := s.g.Tasks[k]
	if t.WriteBytes > 0 {
		// The memory write is issued by the scheduling pass (bounded
		// queue); the instance completes when it lands.
		_ = inst
	} else {
		s.instanceDone(inst)
	}
}

// instanceDone decrements the per-instance counter.
func (s *state) instanceDone(inst int) {
	s.remainPerInstance[inst]--
	for s.completedAll < s.n && s.remainPerInstance[s.completedAll] == 0 {
		s.finish[s.completedAll] = s.now
		s.completedAll++
	}
}

// completeTransfer retires one transfer.
func (s *state) completeTransfer(tr *transfer) {
	if s.cfg.CollectTrace {
		s.trace = append(s.trace, Event{EvTransferEnd, s.now, tr.dst, tr.task, tr.instance, tr.bytes})
	}
	s.transfers++
	if tr.src != memNode {
		s.bytesOut[tr.src] += tr.bytes
	}
	if tr.dst != memNode {
		s.bytesIn[tr.dst] += tr.bytes
	}
	switch tr.kind {
	case 0:
		es := &s.edges[tr.edge]
		es.arrived++
		es.released++
	case 1:
		s.tasks[tr.task].readsDone++
	case 2:
		s.tasks[tr.task].writesDone++
		s.instanceDone(tr.instance)
	}
}

func (s *state) startTransfer(tr *transfer) {
	tr.activeAt = s.now + s.cfg.DMALatency
	s.active = append(s.active, tr)
	if s.cfg.CollectTrace {
		s.trace = append(s.trace, Event{EvTransferStart, s.now, tr.dst, tr.task, tr.instance, tr.bytes})
	}
}

// dmaInCount returns in-flight incoming transfers at SPE pe (edges only,
// matching constraint (1j)).
func (s *state) dmaInCount(pe int) int {
	c := 0
	for _, tr := range s.active {
		if tr.kind == 0 && tr.dst == pe {
			c++
		}
	}
	return c
}

// dmaToPPECount returns in-flight SPE→PPE transfers issued from SPE pe
// (constraint (1k)).
func (s *state) dmaToPPECount(pe int) int {
	c := 0
	for _, tr := range s.active {
		if tr.kind == 0 && tr.src == pe && !s.plat.IsSPE(tr.dst) {
			c++
		}
	}
	return c
}

// schedule issues every transfer and computation that can start now.
func (s *state) schedule() {
	// 1. Communication phase: start edge transfers in instance order.
	for ei := range s.edges {
		es := &s.edges[ei]
		if !es.crossPE {
			continue
		}
		for es.started < es.produced {
			// Consumer-side space: instances at or heading to the
			// consumer minus consumed must fit the buffer.
			consumed := s.consumedOf(ei)
			if es.started-consumed >= es.capSlots {
				break
			}
			// DMA-stack limits.
			if s.plat.IsSPE(es.dstPE) && s.dmaInCount(es.dstPE) >= s.plat.MaxDMAIn {
				break
			}
			if s.plat.IsSPE(es.srcPE) && !s.plat.IsSPE(es.dstPE) &&
				s.dmaToPPECount(es.srcPE) >= s.plat.MaxDMAFromPPE {
				break
			}
			bytes := s.g.Edges[ei].Bytes
			inst := es.started
			es.started++
			if bytes <= 0 {
				// Zero-size data: deliver instantly.
				es.arrived++
				es.released++
				continue
			}
			s.startTransfer(&transfer{
				src: es.srcPE, dst: es.dstPE, bytes: bytes, left: bytes,
				kind: 0, edge: ei, task: s.g.Edges[ei].To, instance: inst,
			})
		}
	}

	// 2. Memory traffic: reads prefetch ahead of the next instance;
	// writes drain completed instances, both through a bounded queue.
	for k := range s.tasks {
		ts := &s.tasks[k]
		t := s.g.Tasks[k]
		if t.ReadBytes > 0 {
			for ts.readsIssued < s.n && ts.readsIssued < ts.done+s.cfg.MemPrefetch {
				inst := ts.readsIssued
				ts.readsIssued++
				s.startTransfer(&transfer{
					src: memNode, dst: ts.pe, bytes: t.ReadBytes, left: t.ReadBytes,
					kind: 1, task: graph.TaskID(k), instance: inst,
				})
			}
		}
		if t.WriteBytes > 0 {
			for ts.writesIssued < ts.done && ts.writesIssued-ts.writesDone < s.cfg.MemPrefetch {
				inst := ts.writesIssued
				ts.writesIssued++
				s.startTransfer(&transfer{
					src: ts.pe, dst: memNode, bytes: t.WriteBytes, left: t.WriteBytes,
					kind: 2, task: graph.TaskID(k), instance: inst,
				})
			}
		}
	}

	// 3. Computation phase: every idle PE picks its most-behind runnable
	// task (ties broken by topological position).
	for pe := 0; pe < s.plat.NumPE(); pe++ {
		if s.peBusy(pe) {
			continue
		}
		best := -1
		for k := range s.tasks {
			if s.tasks[k].pe != pe || s.tasks[k].computing {
				continue
			}
			if !s.runnable(graph.TaskID(k)) {
				continue
			}
			if best < 0 ||
				s.tasks[k].done < s.tasks[best].done ||
				(s.tasks[k].done == s.tasks[best].done && s.tasks[k].prio < s.tasks[best].prio) {
				best = k
			}
		}
		if best >= 0 {
			s.fire(graph.TaskID(best))
		}
	}
}

func (s *state) peBusy(pe int) bool {
	for k := range s.tasks {
		if s.tasks[k].pe == pe && s.tasks[k].computing {
			return true
		}
	}
	return false
}

// consumedOf returns how many instances the consumer of edge ei has
// consumed (its completed instance count).
func (s *state) consumedOf(ei int) int {
	return s.tasks[s.g.Edges[ei].To].done
}

// runnable reports whether task k can process its next instance now.
func (s *state) runnable(k graph.TaskID) bool {
	ts := &s.tasks[k]
	if ts.done >= s.n {
		return false
	}
	inst := ts.done // next 0-based instance
	t := s.g.Tasks[k]
	// Inputs present, including peek lookahead (except near stream end,
	// where the tail needs no lookahead beyond the last instance).
	for _, ei := range s.inEdges[k] {
		need := inst + 1 + t.Peek
		if need > s.n {
			need = s.n
		}
		if s.edges[ei].arrived < need {
			return false
		}
	}
	// Memory read landed.
	if t.ReadBytes > 0 && ts.readsDone < inst+1 {
		return false
	}
	// Write queue not backed up.
	if t.WriteBytes > 0 && ts.done-ts.writesDone >= s.cfg.MemPrefetch+2 {
		return false
	}
	// Output buffer space on the producer side.
	for _, ei := range s.outEdges[k] {
		es := &s.edges[ei]
		if es.crossPE {
			if es.produced-es.released >= es.capSlots {
				return false
			}
		} else {
			if es.arrived-s.consumedOf(ei) >= es.capSlots {
				return false
			}
		}
	}
	return true
}

// fire starts computing the next instance of task k.
func (s *state) fire(k graph.TaskID) {
	ts := &s.tasks[k]
	t := s.g.Tasks[k]
	w := t.WPPE
	if s.plat.IsSPE(ts.pe) {
		w = t.WSPE
	}
	ts.computing = true
	ts.endAt = s.now + w + s.cfg.DispatchOverhead
	s.busy[ts.pe] += w + s.cfg.DispatchOverhead
}

// recomputeRates assigns max-min fair rates to active transfers under
// the per-interface caps (and optionally the EIB aggregate cap).
func (s *state) recomputeRates() {
	type link struct {
		cap  float64
		free float64
		n    int
	}
	nPE := s.plat.NumPE()
	outL := make([]link, nPE)
	inL := make([]link, nPE)
	for i := range outL {
		outL[i] = link{cap: s.plat.BW}
		inL[i] = link{cap: s.plat.BW}
	}
	eib := link{cap: s.plat.EIB}

	var flows []*transfer
	for _, tr := range s.active {
		if tr.activeAt > s.now+1e-18 {
			tr.rate = 0
			continue
		}
		flows = append(flows, tr)
		if tr.src != memNode {
			outL[tr.src].n++
		}
		if tr.dst != memNode {
			inL[tr.dst].n++
		}
		eib.n++
	}
	for i := range outL {
		outL[i].free = outL[i].cap
		inL[i].free = inL[i].cap
	}
	eib.free = eib.cap

	// Progressive filling.
	fixed := make([]bool, len(flows))
	remaining := len(flows)
	for remaining > 0 {
		// Find the tightest link.
		tight := math.Inf(1)
		linkShare := func(l *link) {
			if l.n > 0 {
				if sh := l.free / float64(l.n); sh < tight {
					tight = sh
				}
			}
		}
		for i := range outL {
			linkShare(&outL[i])
			linkShare(&inL[i])
		}
		if s.cfg.EnforceEIB {
			linkShare(&eib)
		}
		if math.IsInf(tight, 1) {
			// Only memory↔memory flows remain (cannot happen) — or all
			// remaining flows touch no capped link; give them the full
			// interface bandwidth.
			for fi, tr := range flows {
				if !fixed[fi] {
					tr.rate = s.plat.BW
					remaining--
				}
			}
			break
		}
		// Fix every flow crossing a tight link at the tight share.
		progressed := false
		for fi, tr := range flows {
			if fixed[fi] {
				continue
			}
			isTight := false
			if tr.src != memNode && outL[tr.src].n > 0 && outL[tr.src].free/float64(outL[tr.src].n) <= tight+1e-12 {
				isTight = true
			}
			if tr.dst != memNode && inL[tr.dst].n > 0 && inL[tr.dst].free/float64(inL[tr.dst].n) <= tight+1e-12 {
				isTight = true
			}
			if s.cfg.EnforceEIB && eib.n > 0 && eib.free/float64(eib.n) <= tight+1e-12 {
				isTight = true
			}
			if !isTight {
				continue
			}
			tr.rate = tight
			fixed[fi] = true
			remaining--
			progressed = true
			if tr.src != memNode {
				outL[tr.src].free -= tight
				outL[tr.src].n--
			}
			if tr.dst != memNode {
				inL[tr.dst].free -= tight
				inL[tr.dst].n--
			}
			eib.free -= tight
			eib.n--
		}
		if !progressed {
			// Numerical stall: hand out the tight share to everything.
			for fi, tr := range flows {
				if !fixed[fi] {
					tr.rate = tight
					fixed[fi] = true
					remaining--
				}
			}
		}
	}
}
