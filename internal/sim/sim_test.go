package sim

import (
	"math"
	"math/rand"
	"testing"

	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

func run(t *testing.T, g *graph.Graph, plat *platform.Platform, m core.Mapping, n int, cfg Config) *Result {
	t.Helper()
	res, err := Run(g, plat, m, n, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestSingleTaskThroughput(t *testing.T) {
	g := &graph.Graph{Name: "one"}
	g.AddTask(graph.Task{WPPE: 1e-3, WSPE: 1e-3})
	plat := platform.Cell(1, 0)
	res := run(t, g, plat, core.Mapping{0}, 100, Config{NoOverheads: true})
	if math.Abs(res.TotalTime-0.1) > 1e-9 {
		t.Errorf("total = %v, want 0.1", res.TotalTime)
	}
	if st := res.SteadyThroughput(); math.Abs(st-1000) > 1 {
		t.Errorf("steady = %v, want 1000", st)
	}
}

func TestChainSamePEIsSequential(t *testing.T) {
	g := graph.UniformChain("c", 3, 1e-3, 1e-3, 8)
	plat := platform.Cell(1, 0)
	res := run(t, g, plat, core.Mapping{0, 0, 0}, 50, Config{NoOverheads: true})
	// One PE does 3 ms of work per instance.
	if st := res.SteadyThroughput(); math.Abs(st-1000.0/3) > 2 {
		t.Errorf("steady = %v, want ~333", st)
	}
}

func TestChainSplitPipelines(t *testing.T) {
	// Two 1 ms tasks on different PEs with tiny communication: the
	// pipeline should deliver ~1000 instances/s, not 500.
	g := graph.UniformChain("c", 2, 1e-3, 1e-3, 64)
	plat := platform.Cell(1, 1)
	res := run(t, g, plat, core.Mapping{0, 1}, 200, Config{NoOverheads: true})
	if st := res.SteadyThroughput(); math.Abs(st-1000) > 20 {
		t.Errorf("steady = %v, want ~1000", st)
	}
}

func TestCommBound(t *testing.T) {
	// Edge of 25 MB at 25 GB/s = 1 ms per instance dominates the 1 µs
	// compute; steady throughput ≈ 1000/s.
	g := graph.UniformChain("c", 2, 1e-6, 1e-6, 25e6)
	plat := platform.Cell(1, 1)
	plat.LocalStore = 1 << 40 // lift memory so the mapping is valid
	res := run(t, g, plat, core.Mapping{0, 1}, 100, Config{NoOverheads: true})
	if st := res.SteadyThroughput(); math.Abs(st-1000) > 50 {
		t.Errorf("steady = %v, want ~1000", st)
	}
}

func TestMatchesAnalyticalModel(t *testing.T) {
	// For feasible mappings with no overheads, the simulator's steady
	// throughput must track core.Evaluate's 1/T within a few percent.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		g := &graph.Graph{Name: "m"}
		k := 6 + rng.Intn(6)
		for i := 0; i < k; i++ {
			g.AddTask(graph.Task{
				WPPE: (1 + 9*rng.Float64()) * 1e-6,
				WSPE: (0.5 + 5*rng.Float64()) * 1e-6,
				Peek: rng.Intn(2),
			})
		}
		for to := 1; to < k; to++ {
			g.AddEdge(graph.TaskID(rng.Intn(to)), graph.TaskID(to), float64(1+rng.Intn(2000)))
		}
		plat := platform.Cell(1, 3)
		m := make(core.Mapping, k)
		for i := range m {
			m[i] = rng.Intn(plat.NumPE())
		}
		rep, err := core.Evaluate(g, plat, m)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Feasible {
			continue
		}
		res := run(t, g, plat, m, 3000, Config{NoOverheads: true})
		ratio := res.SteadyThroughput() / rep.Throughput()
		if ratio < 0.9 || ratio > 1.05 {
			t.Errorf("trial %d: sim/analytic = %.3f (steady %.1f, analytic %.1f)",
				trial, ratio, res.SteadyThroughput(), rep.Throughput())
		}
	}
}

func TestOverheadsCostAFewPercent(t *testing.T) {
	g := graph.UniformChain("c", 4, 20e-6, 10e-6, 4096)
	plat := platform.Cell(1, 2)
	m := core.Mapping{0, 1, 2, 0}
	rep, err := core.Evaluate(g, plat, m)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, g, plat, m, 2000, Config{})
	ratio := res.SteadyThroughput() / rep.Throughput()
	if ratio < 0.85 || ratio > 1.0+1e-9 {
		t.Errorf("with default overheads sim/analytic = %.3f, want within [0.85, 1]", ratio)
	}
}

func TestPeekDelaysButCompletes(t *testing.T) {
	g := graph.Fig3Example() // T3 peeks 1 instance ahead
	plat := platform.Cell(1, 2)
	res := run(t, g, plat, core.Mapping{0, 1, 2}, 50, Config{NoOverheads: true})
	if res.Instances != 50 {
		t.Fatalf("completed %d instances", res.Instances)
	}
	for i := 1; i < len(res.FinishTimes); i++ {
		if res.FinishTimes[i] < res.FinishTimes[i-1] {
			t.Fatal("FinishTimes not monotonic")
		}
	}
}

func TestPeekLargerThanStream(t *testing.T) {
	// peek = 5 with only 3 instances: lookahead truncates at the stream
	// end and the run must still finish.
	g := &graph.Graph{Name: "bigpeek"}
	a := g.AddTask(graph.Task{WPPE: 1e-6, WSPE: 1e-6})
	b := g.AddTask(graph.Task{WPPE: 1e-6, WSPE: 1e-6, Peek: 5})
	g.AddEdge(a, b, 128)
	plat := platform.Cell(1, 1)
	res := run(t, g, plat, core.Mapping{0, 1}, 3, Config{NoOverheads: true})
	if res.Instances != 3 {
		t.Errorf("completed %d, want 3", res.Instances)
	}
}

func TestDMAViolatingMappingStillRuns(t *testing.T) {
	// 20 PPE producers feeding one SPE consumer exceeds the 16-deep DMA
	// stack; the simulator must serialize, not fail.
	g := &graph.Graph{Name: "fanin"}
	var prods []graph.TaskID
	for i := 0; i < 20; i++ {
		prods = append(prods, g.AddTask(graph.Task{WPPE: 1e-6, WSPE: 1e-6}))
	}
	sink := g.AddTask(graph.Task{WPPE: 1e-6, WSPE: 1e-6})
	for _, p := range prods {
		g.AddEdge(p, sink, 256)
	}
	plat := platform.Cell(1, 1)
	m := make(core.Mapping, g.NumTasks())
	m[sink] = 1
	rep, _ := core.Evaluate(g, plat, m)
	if rep.Feasible {
		t.Fatal("mapping should violate DMA-in limit")
	}
	res := run(t, g, plat, m, 100, Config{})
	if res.Instances != 100 {
		t.Errorf("completed %d, want 100", res.Instances)
	}
}

func TestMemoryTraffic(t *testing.T) {
	// A single task that reads and writes memory: throughput bound by
	// max(compute, read/bw, write/bw) = write/bw here.
	g := &graph.Graph{Name: "memio"}
	g.AddTask(graph.Task{WPPE: 1e-6, WSPE: 1e-6, ReadBytes: 1e4, WriteBytes: 25e5})
	plat := platform.Cell(1, 0)
	res := run(t, g, plat, core.Mapping{0}, 500, Config{NoOverheads: true})
	want := plat.BW / 25e5 // = 1e4 instances/s
	if st := res.SteadyThroughput(); math.Abs(st-want)/want > 0.05 {
		t.Errorf("steady = %v, want ~%v", st, want)
	}
}

func TestZeroByteEdges(t *testing.T) {
	g := graph.UniformChain("z", 3, 1e-6, 1e-6, 0)
	plat := platform.Cell(1, 2)
	res := run(t, g, plat, core.Mapping{0, 1, 2}, 100, Config{NoOverheads: true})
	if res.Instances != 100 {
		t.Errorf("completed %d", res.Instances)
	}
}

func TestRandomMappingsNeverDeadlock(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		k := 5 + rng.Intn(15)
		g := &graph.Graph{Name: "dl"}
		for i := 0; i < k; i++ {
			g.AddTask(graph.Task{
				WPPE: rng.Float64() * 1e-5, WSPE: rng.Float64() * 1e-5,
				Peek:      rng.Intn(3),
				ReadBytes: float64(rng.Intn(2)) * 512, WriteBytes: float64(rng.Intn(2)) * 512,
			})
		}
		for to := 1; to < k; to++ {
			g.AddEdge(graph.TaskID(rng.Intn(to)), graph.TaskID(to), float64(rng.Intn(4096)))
			if rng.Intn(2) == 0 && to > 1 {
				f := rng.Intn(to - 1)
				if _, dup := g.EdgeBetween(graph.TaskID(f), graph.TaskID(to)); !dup {
					g.AddEdge(graph.TaskID(f), graph.TaskID(to), float64(rng.Intn(4096)))
				}
			}
		}
		plat := platform.Cell(1, 1+rng.Intn(7))
		m := make(core.Mapping, k)
		for i := range m {
			m[i] = rng.Intn(plat.NumPE())
		}
		res := run(t, g, plat, m, 60, Config{MaxSimTime: 10})
		if res.Instances != 60 {
			t.Fatalf("trial %d: %d instances", trial, res.Instances)
		}
	}
}

func TestRampCurveApproachesSteady(t *testing.T) {
	g := graph.UniformChain("r", 5, 1e-5, 0.5e-5, 2048)
	plat := platform.Cell(1, 4)
	res := run(t, g, plat, core.Mapping{0, 1, 2, 3, 4}, 3000, Config{})
	curve := res.RampCurve()
	steady := res.SteadyThroughput()
	// The cumulative throughput of the last instance must be close to
	// steady state and well above the very first instances.
	last := curve[len(curve)-1]
	if last < 0.8*steady {
		t.Errorf("final cumulative %.1f too far below steady %.1f", last, steady)
	}
	if curve[0] > last {
		t.Errorf("ramp starts above final throughput: %v vs %v", curve[0], last)
	}
}

func TestTraceCollection(t *testing.T) {
	g := graph.UniformChain("t", 2, 1e-6, 1e-6, 128)
	plat := platform.Cell(1, 1)
	res := run(t, g, plat, core.Mapping{0, 1}, 5, Config{NoOverheads: true, CollectTrace: true})
	var computes, starts, ends int
	for _, ev := range res.Trace {
		switch ev.Kind {
		case EvCompute:
			computes++
		case EvTransferStart:
			starts++
		case EvTransferEnd:
			ends++
		}
	}
	if computes != 10 { // 2 tasks × 5 instances
		t.Errorf("compute events = %d, want 10", computes)
	}
	if starts != 5 || ends != 5 { // 1 cross edge × 5 instances
		t.Errorf("transfer events = %d/%d, want 5/5", starts, ends)
	}
	res2 := run(t, g, plat, core.Mapping{0, 1}, 5, Config{NoOverheads: true})
	if len(res2.Trace) != 0 {
		t.Error("trace collected without CollectTrace")
	}
}

func TestEnforceEIB(t *testing.T) {
	// Aggregate EIB cap must not change results when few flows are
	// active, and must bound them when many are.
	g := graph.ForkJoin("fj", 8, 1, 1e-6, 1e-6, 1e6)
	plat := platform.Cell(1, 8)
	plat.LocalStore = 1 << 40
	m := make(core.Mapping, g.NumTasks())
	for i := range m {
		m[i] = i % plat.NumPE()
	}
	resOff := run(t, g, plat, m, 50, Config{NoOverheads: true})
	resOn := run(t, g, plat, m, 50, Config{NoOverheads: true, EnforceEIB: true})
	if resOn.TotalTime < resOff.TotalTime-1e-12 {
		t.Errorf("EIB enforcement sped things up: %v < %v", resOn.TotalTime, resOff.TotalTime)
	}
}

func TestStatefulTasksSequential(t *testing.T) {
	// Stateful or not, a single task's instances are serialized on one
	// PE; verify instance i+1 never finishes before instance i.
	g := &graph.Graph{Name: "st"}
	g.AddTask(graph.Task{WPPE: 1e-5, WSPE: 1e-5, Stateful: true})
	plat := platform.Cell(1, 0)
	res := run(t, g, plat, core.Mapping{0}, 20, Config{NoOverheads: true, CollectTrace: true})
	prev := -1.0
	for _, ev := range res.Trace {
		if ev.Kind == EvCompute {
			if ev.Time <= prev {
				t.Fatal("instances out of order")
			}
			prev = ev.Time
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	g := graph.UniformChain("c", 2, 1, 1, 1)
	plat := platform.Cell(1, 1)
	if _, err := Run(g, plat, core.Mapping{0}, 10, Config{}); err == nil {
		t.Error("short mapping accepted")
	}
	if _, err := Run(g, plat, core.Mapping{0, 1}, 0, Config{}); err == nil {
		t.Error("zero instances accepted")
	}
}

func TestUtilizationStats(t *testing.T) {
	// One task on the PPE, fully busy: utilization ≈ 1 for PPE, 0 for SPE.
	g := &graph.Graph{Name: "busy"}
	g.AddTask(graph.Task{WPPE: 1e-5, WSPE: 1e-5})
	plat := platform.Cell(1, 1)
	res := run(t, g, plat, core.Mapping{0}, 100, Config{NoOverheads: true})
	if res.Utilization[0] < 0.99 || res.Utilization[0] > 1.01 {
		t.Errorf("PPE utilization = %v, want ~1", res.Utilization[0])
	}
	if res.Utilization[1] != 0 {
		t.Errorf("idle SPE utilization = %v", res.Utilization[1])
	}
}

func TestTransferAccounting(t *testing.T) {
	g := graph.UniformChain("c", 2, 1e-6, 1e-6, 1000)
	plat := platform.Cell(1, 1)
	res := run(t, g, plat, core.Mapping{0, 1}, 50, Config{NoOverheads: true})
	if res.Transfers != 50 {
		t.Errorf("transfers = %d, want 50", res.Transfers)
	}
	if res.BytesOut[0] != 50*1000 {
		t.Errorf("PPE out bytes = %v, want 50000", res.BytesOut[0])
	}
	if res.BytesIn[1] != 50*1000 {
		t.Errorf("SPE in bytes = %v, want 50000", res.BytesIn[1])
	}
}

func TestUndeployableMappingRejected(t *testing.T) {
	// Buffers exceeding the local store cannot be allocated on hardware;
	// the simulator must reject the deployment unless explicitly told to
	// ignore the check.
	g := graph.UniformChain("fat", 2, 1e-6, 1e-6, 300*1024)
	plat := platform.Cell(1, 1)
	if _, err := Run(g, plat, core.Mapping{0, 1}, 10, Config{}); err == nil {
		t.Fatal("memory-infeasible mapping accepted")
	}
	if _, err := Run(g, plat, core.Mapping{0, 1}, 10, Config{IgnoreLocalStore: true}); err != nil {
		t.Fatalf("IgnoreLocalStore did not bypass the check: %v", err)
	}
}
