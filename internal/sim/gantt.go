package sim

import (
	"fmt"
	"sort"
	"strings"

	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

// Gantt renders a trace window [from, to] (seconds) as an ASCII chart
// with one row per processing element: task-instance completions are
// marked with the task name, transfers with arrows. It requires a run
// with Config.CollectTrace set; width is the number of character
// columns of the time axis.
func Gantt(g *graph.Graph, plat *platform.Platform, trace []Event, from, to float64, width int) string {
	if width < 20 {
		width = 60
	}
	if to <= from {
		return "(empty trace window)\n"
	}
	col := func(t float64) int {
		c := int((t - from) / (to - from) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	rows := make([][]string, plat.NumPE())
	for pe := range rows {
		rows[pe] = make([]string, width)
	}
	put := func(pe, c int, s string) {
		if pe < 0 || pe >= len(rows) {
			return
		}
		if rows[pe][c] == "" {
			rows[pe][c] = s
		} else {
			rows[pe][c] = "+" // collision marker: several events share a column
		}
	}
	for _, ev := range trace {
		if ev.Time < from || ev.Time > to {
			continue
		}
		switch ev.Kind {
		case EvCompute:
			put(ev.PE, col(ev.Time), string(shortName(g, ev.Task)))
		case EvTransferEnd:
			put(ev.PE, col(ev.Time), "v") // data landed at ev.PE
		case EvTransferStart:
			put(ev.PE, col(ev.Time), ".")
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %.4g s .. %.4g s (one column ≈ %.3g s; letters: compute done, v: data in, .: DMA issued, +: several)\n",
		from, to, (to-from)/float64(width))
	for pe := 0; pe < plat.NumPE(); pe++ {
		fmt.Fprintf(&b, "%-6s|", plat.PEName(pe))
		for _, c := range rows[pe] {
			if c == "" {
				c = " "
			}
			b.WriteString(c)
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// shortName maps a task to a one-rune label (a-z, A-Z, then '#').
func shortName(g *graph.Graph, id graph.TaskID) rune {
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if int(id) < len(letters) {
		return rune(letters[id])
	}
	return '#'
}

// UtilizationTable formats per-PE utilization and traffic of a Result.
func (r *Result) UtilizationTable(plat *platform.Platform) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %9s %12s %12s\n", "PE", "busy", "bytes in", "bytes out")
	type row struct {
		pe int
	}
	var pes []int
	for pe := range r.Utilization {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		fmt.Fprintf(&b, "%-6s %8.1f%% %12.3g %12.3g\n",
			plat.PEName(pe), 100*r.Utilization[pe], r.BytesIn[pe], r.BytesOut[pe])
	}
	fmt.Fprintf(&b, "%d transfers retired\n", r.Transfers)
	return b.String()
}
