package serve

import (
	"context"
	"math"
	"sync"
	"time"
)

// admission is the server's bounded solve queue: at most `concurrent`
// requests hold a solve slot, at most `maxQueue` more wait for one,
// and everything beyond that is shed immediately with 429 — the
// overload contract is "fail fast and tell the client when to retry",
// never an unbounded backlog whose latency grows without limit.
type admission struct {
	sem      chan struct{}
	maxQueue int64

	mu     sync.Mutex
	queued int64
}

func newAdmission(concurrent int, maxQueue int) *admission {
	return &admission{sem: make(chan struct{}, concurrent), maxQueue: int64(maxQueue)}
}

// depth returns the current queue depth (requests waiting on a slot).
func (a *admission) depth() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// tryEnqueue reserves a queue position, reporting false when the queue
// is full.
func (a *admission) tryEnqueue() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.queued >= a.maxQueue {
		return false
	}
	a.queued++
	return true
}

func (a *admission) dequeue() {
	a.mu.Lock()
	a.queued--
	a.mu.Unlock()
}

// acquire obtains a solve slot: immediately when one is free, else by
// queueing (bounded) until ctx ends. It returns (release, true) on
// admission and (nil, false) when the queue is full; a ctx error is
// returned through err with release nil.
func (a *admission) acquire(ctx context.Context) (release func(), ok bool, err error) {
	select {
	case a.sem <- struct{}{}:
		return func() { <-a.sem }, true, nil
	default:
	}
	if !a.tryEnqueue() {
		return nil, false, nil
	}
	defer a.dequeue()
	select {
	case a.sem <- struct{}{}:
		return func() { <-a.sem }, true, nil
	case <-ctx.Done():
		return nil, true, ctx.Err()
	}
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// budgets implements per-client token budgets: each client earns
// `rate` tokens per second up to `burst`, and every request costs one.
// A client out of tokens is shed with 429 and a Retry-After telling it
// when the next token lands. Client identity is whatever string the
// server extracts (the X-Schedd-Client header, falling back to the
// remote host); the table is capped and evicts oldest-inserted first,
// which at worst briefly refills an evicted chatterbox's burst.
type budgets struct {
	rate  float64
	burst float64
	cap   int

	mu      sync.Mutex
	clients map[string]*bucket
	order   []string
}

func newBudgets(rate float64, burst int, capClients int) *budgets {
	return &budgets{
		rate:    rate,
		burst:   math.Max(1, float64(burst)),
		cap:     capClients,
		clients: map[string]*bucket{},
	}
}

// allow spends one token of client's budget at time now. When the
// budget is exhausted it returns false and the wait until one full
// token is available again.
func (b *budgets) allow(client string, now time.Time) (bool, time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	bk, ok := b.clients[client]
	if !ok {
		if len(b.clients) >= b.cap {
			oldest := b.order[0]
			b.order = b.order[1:]
			delete(b.clients, oldest)
		}
		bk = &bucket{tokens: b.burst, last: now}
		b.clients[client] = bk
		b.order = append(b.order, client)
	}
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens = math.Min(b.burst, bk.tokens+dt*b.rate)
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	return false, time.Duration((1 - bk.tokens) / b.rate * float64(time.Second))
}
