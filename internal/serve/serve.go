// Package serve is the HTTP serving subsystem over sched.Session: the
// scheduling framework packaged as a deployable network service
// (cmd/schedd is the daemon). It is stdlib-only by design.
//
// # Wire API
//
// Four POST endpoints accept one JSON request body each and return a
// JSON response:
//
//	POST /v1/map        — throughput-optimal mapping (sched.OpMap)
//	POST /v1/sweep      — per-SPE-count mapping sweep (sched.OpSweep)
//	POST /v1/evaluate   — analytical evaluation of a fixed mapping
//	POST /v1/rootbounds — LP-relaxation bounds only ({"points": [...]})
//
// The request body carries the graph (graph.Graph JSON, the encoding
// of internal/graph/io.go), an optional platform (the server default
// otherwise), and options; responses are the stable wire encoding of
// sched.Result / sched.RootPoint (sched/wire.go). Identical requests
// produce byte-identical response bodies: the default search solver is
// deterministic and the response's solve_ms field is zeroed, with the
// measured wall time reported in the Schedd-Solve-Ms header instead.
//
// GET /metrics exposes Prometheus text-format counters (solver totals
// from lp.Stats/milp.Stats, queue depth, coalesce hits, shed counts,
// latency histograms); GET /healthz is the liveness probe.
//
// # Production concerns
//
// Requests are coalesced: while a solve for (graph digest, platform,
// op, options) is in flight, duplicates of that key wait for its
// response instead of solving again — the coalescing key deliberately
// excludes the transport deadline, so clients with different patience
// still share one solve. Admission is controlled by a bounded queue
// (MaxConcurrent solve slots, MaxQueue waiters, everything beyond shed
// with 429 + Retry-After) and per-client token budgets (ClientRate
// tokens/second, burst ClientBurst, keyed on the X-Schedd-Client
// header or the remote host). Each request carries a deadline
// (timeout_ms, capped at MaxTimeout) mapped to context cancellation.
// Solves run on the server's lifecycle context, not the individual
// client connection: a coalesced result may have other waiters, so a
// disconnecting client stops waiting without killing the shared solve.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/lp"
	"cellstream/internal/milp"
	"cellstream/internal/platform"
	"cellstream/sched"
)

// clientCap bounds the number of distinct clients the budget table
// tracks (oldest-first eviction past it).
const clientCap = 1024

// graphCacheCap bounds the digest→graph canonicalization table
// (oldest-first eviction past it, like core's formulation cache).
const graphCacheCap = 128

// Config tunes a Server. The zero value of every field selects a sane
// default (see the field comments).
type Config struct {
	// DefaultPlatform serves requests that carry no platform of their
	// own (default platform.QS22, the paper's machine).
	DefaultPlatform *platform.Platform
	// SessionOptions are applied to every platform-sharded session the
	// server creates, before the shard's WithPlatform (so a platform
	// passed here is overridden) and after the server's own
	// WithWorkers(MaxConcurrent) (so an explicit WithWorkers wins).
	SessionOptions []sched.Option
	// MaxSessions caps the distinct platform configurations served
	// concurrently; requests for new platforms past the cap are shed
	// with 429 (default 16).
	MaxSessions int
	// MaxConcurrent bounds concurrently running solves (default
	// min(GOMAXPROCS, 8), the sched session default).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a solve slot; a full queue
	// sheds with 429 + Retry-After (default 64).
	MaxQueue int
	// ClientRate/ClientBurst are the per-client token budget: each
	// request spends one token, clients earn ClientRate tokens/second
	// up to ClientBurst. ClientRate 0 (default) disables budgets;
	// ClientBurst defaults to max(1, 2*ClientRate).
	ClientRate  float64
	ClientBurst int
	// DefaultTimeout is the per-request deadline when the request
	// names none (default 30s); MaxTimeout caps what a request may ask
	// for (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxRequestBytes caps the request body (default 8 MiB).
	MaxRequestBytes int64
}

func (c *Config) fill() {
	if c.DefaultPlatform == nil {
		c.DefaultPlatform = platform.QS22()
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 16
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
		if c.MaxConcurrent > 8 {
			c.MaxConcurrent = 8
		}
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.ClientBurst == 0 {
		c.ClientBurst = int(2 * c.ClientRate)
		if c.ClientBurst < 1 {
			c.ClientBurst = 1
		}
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxRequestBytes == 0 {
		c.MaxRequestBytes = 8 << 20
	}
}

func (c *Config) validate() error {
	if err := c.DefaultPlatform.Validate(); err != nil {
		return fmt.Errorf("serve: invalid default platform: %w", err)
	}
	if c.MaxSessions < 1 || c.MaxConcurrent < 1 || c.MaxQueue < 0 {
		return fmt.Errorf("serve: nonsensical limits: sessions %d, concurrent %d, queue %d",
			c.MaxSessions, c.MaxConcurrent, c.MaxQueue)
	}
	if c.ClientRate < 0 || c.MaxRequestBytes < 1 ||
		c.DefaultTimeout <= 0 || c.MaxTimeout < c.DefaultTimeout {
		return fmt.Errorf("serve: nonsensical rate, body or timeout limits")
	}
	return nil
}

// Server is the scheduling service: an http.Handler owning a pool of
// sched.Sessions sharded by platform configuration. Create with New,
// mount anywhere (httptest, cmd/schedd's http.Server), Close when
// done.
type Server struct {
	cfg     Config
	baseCtx context.Context // lifecycle: solves outlive individual client connections
	mux     *http.ServeMux
	flights *flightGroup
	adm     *admission
	budgets *budgets
	met     *metrics

	mu       sync.Mutex
	closed   bool
	sessions map[string]*sched.Session // keyed by canonical platform JSON

	// graphs canonicalizes parsed graphs by digest: the session layer
	// keys its formulation cache and warm root-LP state by *graph.Graph
	// identity, so repeat requests for the same graph content must
	// resolve to the same pointer to reuse that state across requests.
	graphs     map[string]*graph.Graph
	graphOrder []string // FIFO eviction
}

// New validates cfg and returns a ready Server. ctx is the server's
// lifecycle context: cancelling it aborts every in-flight solve
// (running solves are detached from individual client connections
// because coalesced responses may have several waiters).
func New(ctx context.Context, cfg Config) (*Server, error) {
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		baseCtx:  ctx,
		mux:      http.NewServeMux(),
		flights:  newFlightGroup(),
		adm:      newAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		budgets:  newBudgets(cfg.ClientRate, cfg.ClientBurst, clientCap),
		met:      newMetrics(),
		sessions: map[string]*sched.Session{},
		graphs:   map[string]*graph.Graph{},
	}
	s.mux.HandleFunc("POST /v1/map", func(w http.ResponseWriter, r *http.Request) {
		s.handleSolve(w, r, sched.OpMap)
	})
	s.mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		s.handleSolve(w, r, sched.OpSweep)
	})
	s.mux.HandleFunc("POST /v1/evaluate", func(w http.ResponseWriter, r *http.Request) {
		s.handleSolve(w, r, sched.OpEvaluate)
	})
	s.mux.HandleFunc("POST /v1/rootbounds", s.handleRootBounds)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close shuts every session down. In-flight solves finish (cancel the
// lifecycle context passed to New to stop them early); subsequent
// requests are answered 503.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	sessions := s.sessions
	s.sessions = map[string]*sched.Session{}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.Close()
	}
	s.met.mu.Lock()
	s.met.sessions = 0
	s.met.mu.Unlock()
}

// Request is the wire request body of every /v1 solve endpoint.
type Request struct {
	// Graph is the task graph in graph.Graph JSON form; required.
	Graph json.RawMessage `json:"graph"`
	// Platform overrides the server's default platform; it selects the
	// session shard serving the request.
	Platform *platform.Platform `json:"platform,omitempty"`
	// SPECounts is the sweep axis (sweep/rootbounds; default full..0).
	SPECounts []int `json:"spe_counts,omitempty"`
	// Mapping is the fixed mapping to evaluate (evaluate only).
	Mapping []int `json:"mapping,omitempty"`
	// Seed optionally seeds map/sweep solves with an incumbent.
	Seed []int `json:"seed,omitempty"`
	// RelGap overrides the session's optimality gap when > 0.
	RelGap float64 `json:"rel_gap,omitempty"`
	// TimeLimitMS overrides the per-solve budget when > 0. Part of the
	// coalescing key (it changes the result).
	TimeLimitMS float64 `json:"time_limit_ms,omitempty"`
	// TimeoutMS is the transport deadline of this request (capped at
	// the server's MaxTimeout). NOT part of the coalescing key.
	TimeoutMS float64 `json:"timeout_ms,omitempty"`
}

// apiError is an error with an HTTP mapping.
type apiError struct {
	status     int
	code       string // machine-readable, stable
	msg        string
	retryAfter int // seconds, 429 only
}

func (e *apiError) Error() string { return e.msg }

func errBad(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: "bad_request", msg: fmt.Sprintf(format, args...)}
}

func errShed(code, msg string, retryAfter int) *apiError {
	if retryAfter < 1 {
		retryAfter = 1
	}
	return &apiError{status: http.StatusTooManyRequests, code: code, msg: msg, retryAfter: retryAfter}
}

// errorBody renders the stable JSON error body.
func errorBody(code, msg string) []byte {
	b, _ := json.Marshal(struct {
		Code string `json:"code"`
		Err  string `json:"error"`
	}{code, msg})
	return append(b, '\n')
}

// toResponse maps any error from the decode/solve pipeline to a
// materialized HTTP response. Solver outcomes are classified through
// the sentinel errors (never by raw status), transport problems by the
// context errors.
func toResponse(err error) *response {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return &response{status: ae.status, body: errorBody(ae.code, ae.msg), retryAfter: ae.retryAfter}
	case errors.Is(err, sched.ErrBadRequest):
		return &response{status: http.StatusBadRequest, body: errorBody("bad_request", err.Error())}
	case errors.Is(err, sched.ErrClosed):
		return &response{status: http.StatusServiceUnavailable, body: errorBody("closing", err.Error())}
	case errors.Is(err, lp.ErrInfeasible):
		return &response{status: http.StatusUnprocessableEntity, body: errorBody("infeasible", err.Error())}
	case errors.Is(err, lp.ErrUnbounded):
		return &response{status: http.StatusUnprocessableEntity, body: errorBody("unbounded", err.Error())}
	case errors.Is(err, lp.ErrIterLimit):
		return &response{status: http.StatusUnprocessableEntity, body: errorBody("iteration_limit", err.Error())}
	case errors.Is(err, context.DeadlineExceeded):
		return &response{status: http.StatusGatewayTimeout, body: errorBody("deadline", "solve deadline exceeded")}
	case errors.Is(err, context.Canceled):
		return &response{status: http.StatusServiceUnavailable, body: errorBody("cancelled", "solve cancelled")}
	default:
		return &response{status: http.StatusInternalServerError, body: errorBody("internal", err.Error())}
	}
}

// session returns (creating lazily) the shard serving plat.
func (s *Server) session(key string, plat *platform.Platform) (*sched.Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, sched.ErrClosed
	}
	if sess, ok := s.sessions[key]; ok {
		return sess, nil
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.met.add(&s.met.shedSessions, 1)
		return nil, errShed("platforms", fmt.Sprintf(
			"too many distinct platform configurations (cap %d)", s.cfg.MaxSessions), 1)
	}
	opts := append([]sched.Option{sched.WithWorkers(s.cfg.MaxConcurrent)}, s.cfg.SessionOptions...)
	opts = append(opts, sched.WithPlatform(plat))
	sess, err := sched.NewSession(opts...)
	if err != nil {
		return nil, errBad("invalid platform/session config: %v", err)
	}
	s.sessions[key] = sess
	s.met.add(&s.met.sessions, 1)
	return sess, nil
}

// parsed is a decoded, validated request plus the derived keys.
type parsed struct {
	req      Request
	g        *graph.Graph
	plat     *platform.Platform
	platKey  string // canonical platform JSON
	digest   string // graph content digest
	key      string // full coalescing key
	timeout  time.Duration
	deadline time.Duration // solve time limit from the wire (0 = session default)
}

// parse decodes and validates the request body for op.
func (s *Server) parse(r *http.Request, op string) (*parsed, error) {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxRequestBytes))
	dec.DisallowUnknownFields()
	var p parsed
	if err := dec.Decode(&p.req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &apiError{status: http.StatusRequestEntityTooLarge, code: "too_large",
				msg: fmt.Sprintf("request body over %d bytes", s.cfg.MaxRequestBytes)}
		}
		return nil, errBad("decoding request: %v", err)
	}
	// The same trailing-content discipline as graph.ReadJSON: a second
	// document after the request object is a malformed request.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return nil, errBad("trailing content after request object")
	}
	if len(p.req.Graph) == 0 {
		return nil, errBad("missing graph")
	}
	var g graph.Graph
	if err := json.Unmarshal(p.req.Graph, &g); err != nil {
		return nil, errBad("decoding graph: %v", err)
	}
	if err := g.Validate(); err != nil {
		return nil, errBad("%v", err)
	}
	p.g = &g
	var err error
	if p.digest, err = sched.Digest(p.g); err != nil {
		return nil, errBad("%v", err)
	}
	p.g = s.canonicalGraph(p.digest, p.g)
	p.plat = s.cfg.DefaultPlatform
	if p.req.Platform != nil {
		if err := p.req.Platform.Validate(); err != nil {
			return nil, errBad("invalid platform: %v", err)
		}
		p.plat = p.req.Platform
	}
	pj, err := json.Marshal(p.plat)
	if err != nil {
		return nil, errBad("encoding platform: %v", err)
	}
	p.platKey = string(pj)

	if p.req.TimeLimitMS < 0 || p.req.TimeoutMS < 0 {
		return nil, errBad("negative time limit or timeout")
	}
	p.deadline = time.Duration(p.req.TimeLimitMS * float64(time.Millisecond))
	p.timeout = s.cfg.DefaultTimeout
	if p.req.TimeoutMS > 0 {
		p.timeout = time.Duration(p.req.TimeoutMS * float64(time.Millisecond))
	}
	if p.timeout > s.cfg.MaxTimeout {
		p.timeout = s.cfg.MaxTimeout
	}

	// Coalescing key: everything that determines the response body —
	// op, graph content, platform, solve options. Not the transport
	// timeout.
	optJSON, err := json.Marshal(struct {
		Counts []int   `json:"counts,omitempty"`
		Map    []int   `json:"map,omitempty"`
		Seed   []int   `json:"seed,omitempty"`
		Gap    float64 `json:"gap,omitempty"`
		TL     float64 `json:"tl,omitempty"`
	}{p.req.SPECounts, p.req.Mapping, p.req.Seed, p.req.RelGap, p.req.TimeLimitMS})
	if err != nil {
		return nil, errBad("encoding options: %v", err)
	}
	sum := sha256.Sum256([]byte(op + "\x00" + p.digest + "\x00" + p.platKey + "\x00" + string(optJSON)))
	p.key = hex.EncodeToString(sum[:])
	return &p, nil
}

// canonicalGraph interns g by digest so every request for the same
// graph content hands the session layer the same *graph.Graph — the
// pointer identity its formulation cache and warm root-LP state key
// on.
func (s *Server) canonicalGraph(digest string, g *graph.Graph) *graph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.graphs[digest]; ok {
		return cached
	}
	if len(s.graphOrder) >= graphCacheCap {
		oldest := s.graphOrder[0]
		s.graphOrder = s.graphOrder[1:]
		delete(s.graphs, oldest)
	}
	s.graphs[digest] = g
	s.graphOrder = append(s.graphOrder, digest)
	return g
}

// client extracts the budget identity of a request.
func client(r *http.Request) string {
	if c := r.Header.Get("X-Schedd-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// writeResponse writes a materialized response plus the per-request
// headers.
func writeResponse(w http.ResponseWriter, resp *response, digest string, coalesced bool) {
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	if digest != "" {
		h.Set("Schedd-Graph-Digest", digest)
	}
	if coalesced {
		h.Set("Schedd-Coalesced", "1")
	}
	if resp.solveMS > 0 {
		h.Set("Schedd-Solve-Ms", strconv.FormatFloat(resp.solveMS, 'f', 3, 64))
	}
	if resp.retryAfter > 0 {
		h.Set("Retry-After", strconv.Itoa(resp.retryAfter))
	}
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// handle runs the shared pipeline of every solve endpoint: budget →
// parse → coalesce → admission → solve, with metrics on every exit
// path. solve produces the success response for a parsed request.
func (s *Server) handle(w http.ResponseWriter, r *http.Request, op string,
	solve func(ctx context.Context, p *parsed, sess *sched.Session) (*response, error)) {
	start := time.Now()
	finish := func(resp *response, digest string, coalesced bool) {
		writeResponse(w, resp, digest, coalesced)
		s.met.observeRequest(op, resp.status, time.Since(start).Seconds())
	}

	if ok, wait := s.budgets.allow(client(r), start); !ok {
		s.met.add(&s.met.shedBudget, 1)
		finish(toResponse(errShed("budget", "client budget exhausted", int(wait.Seconds()+1))), "", false)
		return
	}
	p, err := s.parse(r, op)
	if err != nil {
		finish(toResponse(err), "", false)
		return
	}

	// waitCtx bounds THIS request's patience: the client connection
	// plus its transport deadline. The solve itself runs on the
	// server's lifecycle context (see New).
	waitCtx, cancelWait := context.WithTimeout(r.Context(), p.timeout)
	defer cancelWait()

	resp, coalesced, err := s.flights.do(waitCtx, p.key, func() *response {
		release, ok, err := s.adm.acquire(waitCtx)
		if !ok {
			s.met.add(&s.met.shedQueue, 1)
			return toResponse(errShed("overload", "solve queue full", 1))
		}
		if err != nil {
			return toResponse(err)
		}
		defer release()
		s.met.add(&s.met.inflight, 1)
		defer s.met.add(&s.met.inflight, -1)

		solveCtx, cancel := context.WithTimeout(s.baseCtx, p.timeout)
		defer cancel()
		sess, err := s.session(p.platKey, p.plat)
		if err != nil {
			return toResponse(err)
		}
		out, err := solve(solveCtx, p, sess)
		if err != nil {
			return toResponse(err)
		}
		return out
	})
	if err != nil {
		// Gave up waiting for the coalesced leader.
		finish(toResponse(err), p.digest, coalesced)
		return
	}
	if coalesced {
		s.met.add(&s.met.coalesceHits, 1)
	} else {
		s.met.add(&s.met.coalesceMisses, 1)
	}
	finish(resp, p.digest, coalesced)
}

// handleSolve serves /v1/map, /v1/sweep and /v1/evaluate.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request, op sched.Op) {
	s.handle(w, r, op.String(), func(ctx context.Context, p *parsed, sess *sched.Session) (*response, error) {
		res, err := sess.Do(ctx, sched.Request{
			Op:        op,
			Graph:     p.g,
			Mapping:   core.Mapping(p.req.Mapping),
			SPECounts: p.req.SPECounts,
			Seed:      core.Mapping(p.req.Seed),
			RelGap:    p.req.RelGap,
			TimeLimit: p.deadline,
		})
		if err != nil {
			return nil, err
		}
		// Byte-identical responses for identical requests: the wall
		// clock moves to a header, the body stays deterministic.
		solveMS := float64(res.SolveTime.Microseconds()) / 1000
		res.SolveTime = 0
		body, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		s.met.observeSolve(res.Nodes, res.Stats, totalLP(res))
		return &response{status: http.StatusOK, body: append(body, '\n'), solveMS: solveMS}, nil
	})
}

// totalLP sums the root-LP counters a result carries.
func totalLP(res *sched.Result) lp.Stats {
	st := res.LP
	for _, pt := range res.Sweep {
		st.Add(pt.LP)
	}
	return st
}

// rootBoundsResponse is the wire response of /v1/rootbounds.
type rootBoundsResponse struct {
	Points []sched.RootPoint `json:"points"`
}

// handleRootBounds serves /v1/rootbounds: the bound-only sweep.
func (s *Server) handleRootBounds(w http.ResponseWriter, r *http.Request) {
	s.handle(w, r, "rootbounds", func(ctx context.Context, p *parsed, sess *sched.Session) (*response, error) {
		counts := p.req.SPECounts
		if len(counts) == 0 {
			for k := p.plat.NumSPE; k >= 0; k-- {
				counts = append(counts, k)
			}
		}
		start := time.Now()
		pts, err := sess.RootBounds(ctx, p.g, counts)
		if err != nil {
			return nil, err
		}
		solveMS := float64(time.Since(start).Microseconds()) / 1000
		body, err := json.Marshal(rootBoundsResponse{Points: pts})
		if err != nil {
			return nil, err
		}
		var st lp.Stats
		for _, pt := range pts {
			st.Add(pt.Stats)
		}
		s.met.observeSolve(0, milp.Stats{}, st)
		return &response{status: http.StatusOK, body: append(body, '\n'), solveMS: solveMS}, nil
	})
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Refresh the queue-depth gauge from the admission controller.
	s.met.mu.Lock()
	s.met.queued = s.adm.depth()
	s.met.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w)
}
