package serve

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
	"sync"

	"cellstream/internal/lp"
	"cellstream/internal/milp"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histograms, Prometheus-style: a solve that takes t seconds counts
// into every bucket with le >= t plus the implicit +Inf bucket.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts []int64 // len(latencyBuckets)+1; the last is the +Inf bucket
	sum    float64
	total  int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.counts[i]++
	h.sum += seconds
	h.total++
}

// metrics is the server's hand-rolled metrics registry, rendered in
// Prometheus text exposition format by write. All mutation happens
// under mu; render takes a consistent snapshot.
type metrics struct {
	mu sync.Mutex

	// requests[op][code] counts finished requests by HTTP status.
	requests map[string]map[int]int64
	// latency[op] is the end-to-end request latency histogram
	// (queueing + solve + serialization), per operation.
	latency map[string]*histogram

	coalesceHits   int64 // requests served by another request's solve
	coalesceMisses int64 // requests that ran their own solve
	shedQueue      int64 // 429s from a full admission queue
	shedBudget     int64 // 429s from an exhausted client budget
	shedSessions   int64 // 429s from the platform-shard cap

	queued   int64 // requests waiting for an admission slot (gauge)
	inflight int64 // requests holding an admission slot (gauge)
	sessions int64 // live platform-sharded sessions (gauge)

	// Solver counters aggregated across every completed solve: search
	// totals from milp.Stats, root-LP totals from lp.Stats. Exported
	// field-by-field via reflection so newly added counters surface
	// without touching this file.
	milpTotals milp.Stats
	lpTotals   lp.Stats
	nodes      int64 // branch-and-bound nodes across all solves
	solves     int64 // completed solves (coalesce leaders only)
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[string]map[int]int64{},
		latency:  map[string]*histogram{},
	}
}

func (m *metrics) observeRequest(op string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.requests[op] == nil {
		m.requests[op] = map[int]int64{}
	}
	m.requests[op][code]++
	if m.latency[op] == nil {
		m.latency[op] = newHistogram()
	}
	m.latency[op].observe(seconds)
}

// observeSolve folds one completed solve's counters into the totals.
func (m *metrics) observeSolve(nodes int, st milp.Stats, lpst lp.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.solves++
	m.nodes += int64(nodes)
	m.milpTotals.Merge(st)
	m.lpTotals.Add(lpst)
}

func (m *metrics) add(field *int64, delta int64) {
	m.mu.Lock()
	*field += delta
	m.mu.Unlock()
}

// snakeCase converts a Go exported identifier to snake_case:
// LPIterations → lp_iterations, MaxSpikeGrowth → max_spike_growth.
func snakeCase(name string) string {
	var b strings.Builder
	runes := []rune(name)
	for i, r := range runes {
		if r >= 'A' && r <= 'Z' {
			prevLower := i > 0 && runes[i-1] >= 'a' && runes[i-1] <= 'z'
			nextLower := i+1 < len(runes) && runes[i+1] >= 'a' && runes[i+1] <= 'z'
			if i > 0 && (prevLower || nextLower) {
				b.WriteByte('_')
			}
			b.WriteRune(r + ('a' - 'A'))
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// writeStats renders every numeric field of a Stats struct as its own
// metric: ints as counters, floats as gauges; booleans are skipped
// (they are per-solve outcomes, meaningless summed).
func writeStats(w io.Writer, prefix string, v reflect.Value) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		name := prefix + snakeCase(f.Name)
		switch f.Type.Kind() {
		case reflect.Int:
			fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", name, name, v.Field(i).Int())
		case reflect.Float64:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, v.Field(i).Float())
		}
	}
}

// write renders the registry in Prometheus text exposition format.
// Output order is deterministic: fixed sections, sorted label values.
func (m *metrics) write(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP schedd_requests_total Finished requests by operation and HTTP status.\n")
	fmt.Fprintf(w, "# TYPE schedd_requests_total counter\n")
	ops := make([]string, 0, len(m.requests))
	for op := range m.requests {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		codes := make([]int, 0, len(m.requests[op]))
		for c := range m.requests[op] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "schedd_requests_total{op=%q,code=\"%d\"} %d\n", op, c, m.requests[op][c])
		}
	}

	fmt.Fprintf(w, "# HELP schedd_request_seconds End-to-end request latency (queueing + solve).\n")
	fmt.Fprintf(w, "# TYPE schedd_request_seconds histogram\n")
	ops = ops[:0]
	for op := range m.latency {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		h := m.latency[op]
		var cum int64
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "schedd_request_seconds_bucket{op=%q,le=\"%g\"} %d\n", op, ub, cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "schedd_request_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", op, cum)
		fmt.Fprintf(w, "schedd_request_seconds_sum{op=%q} %g\n", op, h.sum)
		fmt.Fprintf(w, "schedd_request_seconds_count{op=%q} %d\n", op, h.total)
	}

	for _, c := range []struct {
		name, help string
		val        int64
	}{
		{"schedd_coalesce_hits_total", "Requests served by coalescing onto another in-flight solve.", m.coalesceHits},
		{"schedd_coalesce_misses_total", "Requests that ran their own solve.", m.coalesceMisses},
		{"schedd_shed_queue_total", "Requests shed with 429 because the admission queue was full.", m.shedQueue},
		{"schedd_shed_budget_total", "Requests shed with 429 because the client budget was exhausted.", m.shedBudget},
		{"schedd_shed_sessions_total", "Requests shed because the platform-shard cap was reached.", m.shedSessions},
		{"schedd_solves_total", "Completed solves (coalesce leaders only).", m.solves},
		{"schedd_nodes_total", "Branch-and-bound nodes explored across all solves.", m.nodes},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.val)
	}

	for _, g := range []struct {
		name, help string
		val        int64
	}{
		{"schedd_queue_depth", "Requests waiting for an admission slot.", m.queued},
		{"schedd_inflight", "Requests holding an admission slot.", m.inflight},
		{"schedd_sessions", "Live platform-sharded scheduling sessions.", m.sessions},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.val)
	}

	writeStats(w, "schedd_milp_", reflect.ValueOf(m.milpTotals))
	writeStats(w, "schedd_lp_", reflect.ValueOf(m.lpTotals))
}
