package serve

import (
	"context"
	"sync"
)

// response is one fully materialized HTTP response: what a solve
// produces and what every coalesced waiter of that solve writes back.
// Bodies are byte-identical across all waiters by construction.
type response struct {
	status     int
	body       []byte
	solveMS    float64 // leader's measured solve wall time
	retryAfter int     // seconds; > 0 only on 429
}

// flight is one in-flight solve other requests can latch onto.
type flight struct {
	done chan struct{}
	resp *response
}

// flightGroup coalesces duplicate in-flight requests (singleflight):
// the first request for a key becomes the leader and runs fn; every
// request arriving for the same key while the leader runs waits for
// the leader's response instead of solving again. Unlike a cache,
// nothing outlives the flight — the next request after completion
// leads its own solve (results must reflect current server state, and
// deterministic solves make a response cache redundant anyway).
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: map[string]*flight{}}
}

// do runs fn for key, coalescing concurrent duplicates. It returns the
// response, whether this request shared another's solve, and a ctx
// error when the caller gave up waiting for the leader (the leader
// itself is never interrupted by a follower's ctx — its own solve
// context bounds it).
func (g *flightGroup) do(ctx context.Context, key string, fn func() *response) (*response, bool, error) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.resp, true, nil
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.resp = fn()
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.resp, false, nil
}
