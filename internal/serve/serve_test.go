package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cellstream/internal/daggen"
	"cellstream/internal/graph"
	"cellstream/internal/platform"
	"cellstream/sched"
)

// testServer mounts a Server on httptest with fast deterministic
// seeding and the small Cell(1,3) default platform.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DefaultPlatform == nil {
		cfg.DefaultPlatform = platform.Cell(1, 3)
	}
	if cfg.SessionOptions == nil {
		cfg.SessionOptions = []sched.Option{sched.WithSeeding(1500, 1)}
	}
	srv, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func testGraph(tasks int, seed int64) *graph.Graph {
	return daggen.Generate(daggen.Params{Tasks: tasks, Seed: seed, CCR: 1})
}

// body builds a request body for g with extra top-level fields.
func body(t *testing.T, g *graph.Graph, extra map[string]any) []byte {
	t.Helper()
	gb, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]any{"graph": json.RawMessage(gb)}
	for k, v := range extra {
		m[k] = v
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func post(t *testing.T, url string, b []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestEndToEndOps(t *testing.T) {
	_, ts := testServer(t, Config{})
	g := testGraph(8, 1)

	resp, b := post(t, ts.URL+"/v1/map", body(t, g, nil))
	if resp.StatusCode != 200 {
		t.Fatalf("map: %d: %s", resp.StatusCode, b)
	}
	var res sched.Result
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("map: decoding result: %v\n%s", err, b)
	}
	if res.Op != sched.OpMap || len(res.Mapping) != 8 || res.Report == nil || !res.Report.Feasible {
		t.Fatalf("map: bad result: %+v", res)
	}
	if res.SolveTime != 0 {
		t.Errorf("map: solve_ms leaked into the body: %v", res.SolveTime)
	}
	if resp.Header.Get("Schedd-Solve-Ms") == "" {
		t.Error("map: no Schedd-Solve-Ms header")
	}
	if len(resp.Header.Get("Schedd-Graph-Digest")) != 64 {
		t.Error("map: no graph digest header")
	}

	// Evaluate the mapping the map computed.
	resp, b = post(t, ts.URL+"/v1/evaluate", body(t, g, map[string]any{"mapping": res.Mapping}))
	if resp.StatusCode != 200 {
		t.Fatalf("evaluate: %d: %s", resp.StatusCode, b)
	}
	var eres sched.Result
	if err := json.Unmarshal(b, &eres); err != nil {
		t.Fatal(err)
	}
	if eres.Report == nil || eres.Report.Period <= 0 {
		t.Fatalf("evaluate: bad report: %+v", eres.Report)
	}

	resp, b = post(t, ts.URL+"/v1/sweep", body(t, g, map[string]any{"spe_counts": []int{3, 1}}))
	if resp.StatusCode != 200 {
		t.Fatalf("sweep: %d: %s", resp.StatusCode, b)
	}
	var sres sched.Result
	if err := json.Unmarshal(b, &sres); err != nil {
		t.Fatal(err)
	}
	if len(sres.Sweep) != 2 || sres.Sweep[0].NumSPE != 3 || sres.Sweep[1].NumSPE != 1 {
		t.Fatalf("sweep: bad points: %+v", sres.Sweep)
	}

	resp, b = post(t, ts.URL+"/v1/rootbounds", body(t, g, nil))
	if resp.StatusCode != 200 {
		t.Fatalf("rootbounds: %d: %s", resp.StatusCode, b)
	}
	var rb rootBoundsResponse
	if err := json.Unmarshal(b, &rb); err != nil {
		t.Fatal(err)
	}
	if len(rb.Points) != 4 { // default NumSPE..0 on Cell(1,3)
		t.Fatalf("rootbounds: %d points, want 4", len(rb.Points))
	}
	if rb.Points[0].NumSPE != 3 || rb.Points[0].Bound <= 0 {
		t.Fatalf("rootbounds: bad first point: %+v", rb.Points[0])
	}
}

// TestDeterministicResponses pins the acceptance criterion: the same
// request body produces the byte-identical response body, repeated and
// across ops.
func TestDeterministicResponses(t *testing.T) {
	_, ts := testServer(t, Config{})
	g := testGraph(10, 7)
	for _, ep := range []struct {
		path  string
		extra map[string]any
	}{
		{"/v1/map", nil},
		{"/v1/sweep", map[string]any{"spe_counts": []int{3, 2}}},
		{"/v1/evaluate", map[string]any{"mapping": make([]int, 10)}},
		{"/v1/rootbounds", nil},
	} {
		req := body(t, g, ep.extra)
		resp1, b1 := post(t, ts.URL+ep.path, req)
		resp2, b2 := post(t, ts.URL+ep.path, req)
		if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
			t.Fatalf("%s: %d/%d: %s", ep.path, resp1.StatusCode, resp2.StatusCode, b1)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: responses differ:\n%s\n%s", ep.path, b1, b2)
		}
	}
}

// doneSignalCtx signals sig the first time Done is called. flightGroup
// evaluates a follower's ctx.Done() only after finding the flight, so
// receiving on sig proves the follower latched onto it — the
// synchronization hook that makes TestFlightGroup race-free.
type doneSignalCtx struct {
	context.Context
	once sync.Once
	sig  chan struct{}
}

func (c *doneSignalCtx) Done() <-chan struct{} {
	c.once.Do(func() { close(c.sig) })
	return c.Context.Done()
}

// TestFlightGroup pins the singleflight semantics with a controlled
// leader: followers arriving while the leader runs share its response;
// a follower whose ctx ends stops waiting with an error; the key is
// free again after completion.
func TestFlightGroup(t *testing.T) {
	fg := newFlightGroup()
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	want := &response{status: 200, body: []byte("x")}

	type out struct {
		resp      *response
		coalesced bool
		err       error
	}
	leaderOut := make(chan out, 1)
	go func() {
		resp, co, err := fg.do(context.Background(), "k", func() *response {
			close(leaderIn)
			<-release
			return want
		})
		leaderOut <- out{resp, co, err}
	}()
	<-leaderIn // leader is inside fn; the flight is registered

	fctx := &doneSignalCtx{Context: context.Background(), sig: make(chan struct{})}
	followerOut := make(chan out, 1)
	go func() {
		resp, co, err := fg.do(fctx, "k", func() *response {
			t.Error("follower ran its own solve")
			return nil
		})
		followerOut <- out{resp, co, err}
	}()
	<-fctx.sig // follower found the flight and is waiting on it

	// A follower that gives up waiting gets its ctx error back.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, co, err := fg.do(cancelled, "k", func() *response { return nil }); err == nil || !co {
		t.Fatalf("cancelled follower: coalesced=%v err=%v", co, err)
	}

	// A different key is independent: it runs immediately.
	if resp, co, err := fg.do(context.Background(), "other", func() *response {
		return &response{status: 201}
	}); err != nil || co || resp.status != 201 {
		t.Fatalf("independent key: %+v co=%v err=%v", resp, co, err)
	}

	close(release)
	l, f := <-leaderOut, <-followerOut
	if l.err != nil || l.coalesced || l.resp != want {
		t.Fatalf("leader: %+v", l)
	}
	if f.err != nil || !f.coalesced || f.resp != want {
		t.Fatalf("follower: %+v", f)
	}

	// The flight is gone: the next request leads its own solve.
	if _, co, _ := fg.do(context.Background(), "k", func() *response { return want }); co {
		t.Fatal("request after completion still coalesced")
	}
}

// TestCoalescing drives coalescing end to end over HTTP. Solves on the
// small test platform finish in well under a millisecond, so instead
// of racing real requests the test holds a flight open for the exact
// key the handler computes: followers fired meanwhile provably latch
// onto it and share one response byte for byte.
func TestCoalescing(t *testing.T) {
	srv, ts := testServer(t, Config{})
	g := testGraph(16, 3)
	req := body(t, g, nil)

	// The real response, solved once with no flight in the way.
	resp0, want := post(t, ts.URL+"/v1/map", req)
	if resp0.StatusCode != 200 {
		t.Fatalf("direct solve: %d: %s", resp0.StatusCode, want)
	}

	// Derive the coalescing key exactly as the handler does and hold a
	// flight open for it.
	p, err := srv.parse(httptest.NewRequest("POST", "/v1/map", bytes.NewReader(req)), "map")
	if err != nil {
		t.Fatal(err)
	}
	f := &flight{done: make(chan struct{})}
	srv.flights.mu.Lock()
	srv.flights.flights[p.key] = f
	srv.flights.mu.Unlock()

	const followers = 8
	bodies := make([][]byte, followers)
	coalesced := make([]bool, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(req))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if resp.StatusCode != 200 {
				t.Errorf("follower %d: status %d: %s", i, resp.StatusCode, buf.Bytes())
			}
			bodies[i] = buf.Bytes()
			coalesced[i] = resp.Header.Get("Schedd-Coalesced") == "1"
		}(i)
	}

	// Let the followers latch on, then complete the flight with the
	// captured response. A straggler arriving after the flight closes
	// leads its own solve and — determinism — produces the same bytes.
	time.Sleep(200 * time.Millisecond)
	f.resp = &response{status: 200, body: want, solveMS: 1}
	srv.flights.mu.Lock()
	delete(srv.flights.flights, p.key)
	srv.flights.mu.Unlock()
	close(f.done)
	wg.Wait()

	for i, b := range bodies {
		if !bytes.Equal(want, b) {
			t.Fatalf("follower %d body differs from the direct solve:\n%s\n%s", i, b, want)
		}
	}
	var nco int64
	for _, c := range coalesced {
		if c {
			nco++
		}
	}
	if nco == 0 {
		t.Error("no follower coalesced within the 200ms hold")
	}
	srv.met.mu.Lock()
	hits := srv.met.coalesceHits
	srv.met.mu.Unlock()
	if hits != nco {
		t.Errorf("coalesce_hits %d, but %d followers reported Schedd-Coalesced", hits, nco)
	}
}

// TestOverloadSheds429 saturates a 1-slot, 1-deep server with slow
// distinct requests: some must be shed with 429 + Retry-After while
// the server keeps serving others.
func TestOverloadSheds429(t *testing.T) {
	_, ts := testServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	const n = 16
	codes := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct graphs: coalescing must not absorb the burst.
			req := body(t, testGraph(20, int64(100+i)), nil)
			resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(req))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	var ok, shed int
	for i, c := range codes {
		switch c {
		case 200:
			ok++
		case 429:
			shed++
			if ra, err := strconv.Atoi(retryAfter[i]); err != nil || ra < 1 {
				t.Errorf("429 without a usable Retry-After: %q", retryAfter[i])
			}
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("want both successes and sheds under saturation, got %d ok / %d shed", ok, shed)
	}
}

// TestClientBudget: a client with a 1-token budget is shed on its
// second request, while another client still gets through.
func TestClientBudget(t *testing.T) {
	_, ts := testServer(t, Config{ClientRate: 0.0001, ClientBurst: 1})
	g := testGraph(8, 1)
	req := body(t, g, nil)
	do := func(clientID string) int {
		hreq, err := http.NewRequest("POST", ts.URL+"/v1/map", bytes.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("X-Schedd-Client", clientID)
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode == 429 {
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
				t.Errorf("budget 429 without usable Retry-After: %q", resp.Header.Get("Retry-After"))
			}
		}
		return resp.StatusCode
	}
	if c := do("alice"); c != 200 {
		t.Fatalf("alice's first request: %d", c)
	}
	if c := do("alice"); c != 429 {
		t.Fatalf("alice's second request: %d, want 429", c)
	}
	if c := do("bob"); c != 200 {
		t.Fatalf("bob's first request: %d", c)
	}
}

// TestBadRequests exercises the 400 paths.
func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{})
	g := testGraph(6, 1)
	valid := body(t, g, nil)
	cases := map[string][]byte{
		"not-json":       []byte(`]`),
		"trailing":       append(append([]byte{}, valid...), []byte(`{"x":1}`)...),
		"unknown-field":  body(t, g, map[string]any{"spe_count": []int{1}}),
		"missing-graph":  []byte(`{}`),
		"invalid-graph":  []byte(`{"graph":{"name":"x","tasks":[{"id":5}]}}`),
		"negative-limit": body(t, g, map[string]any{"time_limit_ms": -5}),
		"bad-mapping":    nil, // filled below
	}
	cases["bad-mapping"] = body(t, g, map[string]any{"mapping": []int{9, 9, 9, 9, 9, 9}})
	for name, b := range cases {
		path := "/v1/map"
		if name == "bad-mapping" {
			path = "/v1/evaluate"
		}
		resp, rb := post(t, ts.URL+path, b)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, rb)
		}
		var e struct {
			Code string `json:"code"`
			Err  string `json:"error"`
		}
		if err := json.Unmarshal(rb, &e); err != nil || e.Err == "" {
			t.Errorf("%s: unparseable error body: %s", name, rb)
		}
	}
	// Wrong method and unknown path.
	if resp, err := http.Get(ts.URL + "/v1/map"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/map: %d", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/nope"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /v1/nope: %d", resp.StatusCode)
		}
	}
}

// TestRequestDeadline: a 1ms transport deadline on a graph whose root
// LP alone takes longer must come back 504, not hang.
func TestRequestDeadline(t *testing.T) {
	_, ts := testServer(t, Config{})
	g := testGraph(64, 9)
	resp, b := post(t, ts.URL+"/v1/map", body(t, g, map[string]any{"timeout_ms": 1}))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, b)
	}
}

// TestPlatformShardsAndCap: requests may carry their own platform;
// distinct platforms get distinct sessions, and the shard cap sheds.
func TestPlatformShardsAndCap(t *testing.T) {
	srv, ts := testServer(t, Config{MaxSessions: 2})
	g := testGraph(8, 1)

	resp, b := post(t, ts.URL+"/v1/map", body(t, g, nil))
	if resp.StatusCode != 200 {
		t.Fatalf("default platform: %d: %s", resp.StatusCode, b)
	}
	resp, b = post(t, ts.URL+"/v1/map", body(t, g, map[string]any{"platform": platform.Cell(1, 2)}))
	if resp.StatusCode != 200 {
		t.Fatalf("second platform: %d: %s", resp.StatusCode, b)
	}
	srv.mu.Lock()
	n := len(srv.sessions)
	srv.mu.Unlock()
	if n != 2 {
		t.Fatalf("%d sessions, want 2", n)
	}
	resp, b = post(t, ts.URL+"/v1/map", body(t, g, map[string]any{"platform": platform.Cell(1, 1)}))
	if resp.StatusCode != 429 {
		t.Fatalf("third platform past cap: %d, want 429: %s", resp.StatusCode, b)
	}
	// A mapping solved on platform A must not validate against shard B
	// state — i.e. shards are isolated: evaluate against the 2-SPE
	// platform with a PE index only valid on the 3-SPE default.
	resp, b = post(t, ts.URL+"/v1/evaluate", body(t, g, map[string]any{
		"platform": platform.Cell(1, 2),
		"mapping":  []int{3, 0, 0, 0, 0, 0, 0, 0}, // PE 3 does not exist on Cell(1,2)
	}))
	if resp.StatusCode != 400 {
		t.Fatalf("out-of-range mapping: %d, want 400: %s", resp.StatusCode, b)
	}
}

// TestMetricsEndpoint: after real traffic, /metrics exposes non-zero
// solver counters, request counts and latency histograms.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	g := testGraph(8, 2)
	if resp, b := post(t, ts.URL+"/v1/map", body(t, g, nil)); resp.StatusCode != 200 {
		t.Fatalf("map: %d: %s", resp.StatusCode, b)
	}
	if resp, b := post(t, ts.URL+"/v1/rootbounds", body(t, g, nil)); resp.StatusCode != 200 {
		t.Fatalf("rootbounds: %d: %s", resp.StatusCode, b)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}

	counter := func(name string) float64 {
		t.Helper()
		re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`)
		m := re.FindStringSubmatch(text)
		if m == nil {
			t.Fatalf("metric %s missing:\n%s", name, text)
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("metric %s: %v", name, err)
		}
		return v
	}
	if v := counter("schedd_lp_iterations_total"); v <= 0 {
		t.Errorf("schedd_lp_iterations_total = %g, want > 0", v)
	}
	if v := counter("schedd_solves_total"); v < 2 {
		t.Errorf("schedd_solves_total = %g, want >= 2", v)
	}
	for _, want := range []string{
		`schedd_requests_total{op="map",code="200"} 1`,
		`schedd_requests_total{op="rootbounds",code="200"} 1`,
		`schedd_request_seconds_bucket{op="map",le="+Inf"} 1`,
		"schedd_coalesce_misses_total 2",
		"schedd_queue_depth 0",
		"schedd_sessions 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHealthzAndClose: /healthz answers while open; a closed server
// answers solves with 503.
func TestHealthzAndClose(t *testing.T) {
	srv, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	g := testGraph(6, 1)
	if resp, b := post(t, ts.URL+"/v1/map", body(t, g, nil)); resp.StatusCode != 200 {
		t.Fatalf("pre-close map: %d: %s", resp.StatusCode, b)
	}
	srv.Close()
	resp2, b := post(t, ts.URL+"/v1/map", body(t, g, nil))
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close map: %d, want 503: %s", resp2.StatusCode, b)
	}
}

// TestExtremeGraphNever500s: a graph with pathological buffer demands
// must come back as a classified outcome — a feasible mapping (200,
// the PPE placement has no store limit) or a classified 422 — never a
// raw 500.
func TestExtremeGraphNever500s(t *testing.T) {
	_, ts := testServer(t, Config{})
	g := &graph.Graph{Name: "huge"}
	a := g.AddTask(graph.Task{Name: "a", WPPE: 1, WSPE: 1})
	b := g.AddTask(graph.Task{Name: "b", WPPE: 1, WSPE: 1, Peek: 1 << 20})
	g.AddEdge(a, b, 1<<30)
	resp, rb := post(t, ts.URL+"/v1/map", body(t, g, nil))
	if resp.StatusCode != 200 && resp.StatusCode != 422 {
		t.Fatalf("status %d: %s", resp.StatusCode, rb)
	}
	if resp.StatusCode == 422 {
		var e struct {
			Code string `json:"code"`
		}
		if err := json.Unmarshal(rb, &e); err != nil || e.Code == "" {
			t.Errorf("422 without a machine-readable code: %s", rb)
		}
	}
}
