package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cellstream/internal/daggen"
	"cellstream/internal/graph"
)

// LoadConfig configures LoadGen, the schedd load generator. The zero
// value of every field selects a default sized for a quick run.
type LoadConfig struct {
	// BaseURL is the schedd server to drive, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Requests is the total number of requests to issue (default 200).
	Requests int
	// Clients is the number of concurrent clients, each sending with
	// its own X-Schedd-Client identity (default 8).
	Clients int
	// Graphs and Tasks shape the daggen request mix: Graphs distinct
	// graphs (default 6) of Tasks tasks each (default 12). Fewer
	// distinct graphs means more coalescing and warm-cache hits.
	Graphs int
	Tasks  int
	// Seed makes the mix reproducible (default 1).
	Seed int64
	// EvalShare and BoundsShare are the fractions of requests sent to
	// /v1/evaluate and /v1/rootbounds; the rest go to /v1/map
	// (defaults 0.2 and 0.1).
	EvalShare   float64
	BoundsShare float64
}

func (c *LoadConfig) fill() {
	if c.Requests == 0 {
		c.Requests = 200
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Graphs == 0 {
		c.Graphs = 6
	}
	if c.Tasks == 0 {
		c.Tasks = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.EvalShare == 0 {
		c.EvalShare = 0.2
	}
	if c.BoundsShare == 0 {
		c.BoundsShare = 0.1
	}
}

// LoadReport is the outcome of one LoadGen run; it is the schema of
// BENCH_serve.json.
type LoadReport struct {
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	Shed      int     `json:"shed"`   // 429s: queue, budget or shard cap
	Failed    int     `json:"failed"` // transport errors and 5xx
	Coalesced int     `json:"coalesced"`
	Seconds   float64 `json:"seconds"`
	// Throughput counts completed (2xx) requests per second.
	Throughput float64 `json:"throughput_rps"`
	// Latency percentiles over every request that got a response.
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	// CoalesceRate is coalesced / ok.
	CoalesceRate float64 `json:"coalesce_rate"`
	// ByStatus counts responses per HTTP status code.
	ByStatus map[string]int `json:"by_status"`
}

// String renders the one-line human summary.
func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"%d requests in %.2fs: %d ok, %d shed, %d failed; %.1f req/s, p50 %.1f ms, p99 %.1f ms, coalesce rate %.2f",
		r.Requests, r.Seconds, r.OK, r.Shed, r.Failed,
		r.Throughput, r.P50MS, r.P99MS, r.CoalesceRate)
}

// loadRequest is one pre-built request of the mix.
type loadRequest struct {
	path string
	body []byte
}

// buildMix pre-builds the deterministic request mix: daggen graphs in
// the style of the paper's evaluation set, hit with a map/evaluate/
// rootbounds operation split.
func buildMix(cfg *LoadConfig) ([]loadRequest, error) {
	graphs := make([]*graph.Graph, cfg.Graphs)
	bodies := make([][]byte, cfg.Graphs)
	for i := range graphs {
		graphs[i] = daggen.Generate(daggen.Params{
			Tasks: cfg.Tasks,
			Seed:  cfg.Seed + int64(i),
			CCR:   1,
		})
		b, err := json.Marshal(graphs[i])
		if err != nil {
			return nil, fmt.Errorf("serve: encoding mix graph %d: %w", i, err)
		}
		bodies[i] = b
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	mix := make([]loadRequest, cfg.Requests)
	for i := range mix {
		gi := rng.Intn(cfg.Graphs)
		body := map[string]json.RawMessage{"graph": bodies[gi]}
		path := "/v1/map"
		switch p := rng.Float64(); {
		case p < cfg.EvalShare:
			path = "/v1/evaluate"
			m := make([]int, graphs[gi].NumTasks()) // all on PPE 0
			mb, _ := json.Marshal(m)
			body["mapping"] = mb
		case p < cfg.EvalShare+cfg.BoundsShare:
			path = "/v1/rootbounds"
		}
		b, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("serve: encoding mix request %d: %w", i, err)
		}
		mix[i] = loadRequest{path: path, body: b}
	}
	return mix, nil
}

// LoadGen replays a deterministic daggen request mix against a schedd
// server and reports throughput, latency percentiles and the coalesce
// rate. ctx bounds the whole run.
func LoadGen(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg.fill()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("serve: LoadGen needs a BaseURL")
	}
	mix, err := buildMix(&cfg)
	if err != nil {
		return nil, err
	}

	type sample struct {
		status    int
		coalesced bool
		ms        float64
		err       error
	}
	samples := make([]sample, len(mix))
	var next int64 // next mix index to claim

	started := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("loadgen-%d", c)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(mix) || ctx.Err() != nil {
					return
				}
				start := time.Now()
				req, err := http.NewRequestWithContext(ctx, "POST",
					cfg.BaseURL+mix[i].path, bytes.NewReader(mix[i].body))
				if err != nil {
					samples[i] = sample{err: err}
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Schedd-Client", client)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					samples[i] = sample{err: err}
					continue
				}
				var sink bytes.Buffer
				sink.ReadFrom(resp.Body)
				resp.Body.Close()
				samples[i] = sample{
					status:    resp.StatusCode,
					coalesced: resp.Header.Get("Schedd-Coalesced") == "1",
					ms:        float64(time.Since(start).Microseconds()) / 1000,
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(started).Seconds()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &LoadReport{
		Requests: len(mix),
		Seconds:  elapsed,
		ByStatus: map[string]int{},
	}
	var lat []float64
	var sum float64
	for _, s := range samples {
		if s.err != nil {
			rep.Failed++
			continue
		}
		rep.ByStatus[strconv.Itoa(s.status)]++
		lat = append(lat, s.ms)
		sum += s.ms
		switch {
		case s.status == http.StatusOK:
			rep.OK++
			if s.coalesced {
				rep.Coalesced++
			}
		case s.status == http.StatusTooManyRequests:
			rep.Shed++
		case s.status >= 500:
			rep.Failed++
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.OK) / elapsed
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		rep.P50MS = lat[len(lat)/2]
		rep.P99MS = lat[(len(lat)*99)/100]
		rep.MeanMS = sum / float64(len(lat))
	}
	if rep.OK > 0 {
		rep.CoalesceRate = float64(rep.Coalesced) / float64(rep.OK)
	}
	return rep, nil
}
