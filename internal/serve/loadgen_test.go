package serve

import (
	"context"
	"testing"
)

// TestLoadGen runs a small mix against an in-process server and checks
// the report adds up.
func TestLoadGen(t *testing.T) {
	_, ts := testServer(t, Config{})
	rep, err := LoadGen(context.Background(), LoadConfig{
		BaseURL:  ts.URL,
		Requests: 32,
		Clients:  4,
		Graphs:   3,
		Tasks:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 32 || rep.Failed != 0 {
		t.Fatalf("bad report: %+v", rep)
	}
	if rep.OK+rep.Shed != 32 {
		t.Fatalf("ok %d + shed %d != 32", rep.OK, rep.Shed)
	}
	if rep.OK == 0 || rep.Throughput <= 0 || rep.P50MS <= 0 || rep.P99MS < rep.P50MS {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.ByStatus["200"] != rep.OK {
		t.Fatalf("by_status disagrees with ok: %+v", rep)
	}

	// The mix is deterministic: the same config builds the same bodies.
	cfg := LoadConfig{Requests: 16, Graphs: 2, Tasks: 6, Seed: 5}
	cfg.fill()
	m1, err1 := buildMix(&cfg)
	m2, err2 := buildMix(&cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range m1 {
		if m1[i].path != m2[i].path || string(m1[i].body) != string(m2[i].body) {
			t.Fatalf("mix request %d not deterministic", i)
		}
	}

	// No BaseURL is a configuration error.
	if _, err := LoadGen(context.Background(), LoadConfig{}); err == nil {
		t.Fatal("LoadGen without BaseURL succeeded")
	}
}
