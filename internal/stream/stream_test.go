package stream

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/graph"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func getU64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// pipelineFuncs builds a source → double → +7 → sink pipeline whose sink
// records every result, so any mapping can be verified functionally.
func pipelineFuncs(g *graph.Graph, results *sync.Map) map[graph.TaskID]Func {
	return map[graph.TaskID]Func{
		0: func(ctx *Ctx) ([][]byte, error) {
			return [][]byte{u64(uint64(ctx.Instance))}, nil
		},
		1: func(ctx *Ctx) ([][]byte, error) {
			return [][]byte{u64(getU64(ctx.In[0][0]) * 2)}, nil
		},
		2: func(ctx *Ctx) ([][]byte, error) {
			return [][]byte{u64(getU64(ctx.In[0][0]) + 7)}, nil
		},
		3: func(ctx *Ctx) ([][]byte, error) {
			results.Store(ctx.Instance, getU64(ctx.In[0][0]))
			return nil, nil
		},
	}
}

func chain4() *graph.Graph {
	return graph.UniformChain("pipe", 4, 1e-6, 1e-6, 8)
}

func verifyPipeline(t *testing.T, results *sync.Map, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		v, ok := results.Load(i)
		if !ok {
			t.Fatalf("instance %d never reached the sink", i)
		}
		want := uint64(i)*2 + 7
		if v.(uint64) != want {
			t.Fatalf("instance %d: got %d, want %d", i, v, want)
		}
	}
}

func TestPipelineCorrectSamePE(t *testing.T) {
	g := chain4()
	var results sync.Map
	rt, err := New(g, 1, core.Mapping{0, 0, 0, 0}, pipelineFuncs(g, &results), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	verifyPipeline(t, &results, 200)
	for k, f := range res.Fired {
		if f != 200 {
			t.Errorf("task %d fired %d times", k, f)
		}
	}
}

func TestPipelineCorrectAcrossPEs(t *testing.T) {
	g := chain4()
	var results sync.Map
	rt, err := New(g, 4, core.Mapping{0, 1, 2, 3}, pipelineFuncs(g, &results), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(500); err != nil {
		t.Fatal(err)
	}
	verifyPipeline(t, &results, 500)
}

func TestPeekWindowContents(t *testing.T) {
	// A consumer with peek 2 must see instances i, i+1, i+2 of its input
	// (truncated at the end of the stream).
	g := &graph.Graph{Name: "peek"}
	src := g.AddTask(graph.Task{Name: "src", WPPE: 1, WSPE: 1})
	snk := g.AddTask(graph.Task{Name: "snk", WPPE: 1, WSPE: 1, Peek: 2})
	g.AddEdge(src, snk, 8)
	const n = 50
	var mu sync.Mutex
	windows := map[int][]uint64{}
	funcs := map[graph.TaskID]Func{
		src: func(ctx *Ctx) ([][]byte, error) {
			return [][]byte{u64(uint64(ctx.Instance * 11))}, nil
		},
		snk: func(ctx *Ctx) ([][]byte, error) {
			var w []uint64
			for _, d := range ctx.In[0] {
				w = append(w, getU64(d))
			}
			mu.Lock()
			windows[ctx.Instance] = w
			mu.Unlock()
			return nil, nil
		},
	}
	rt, err := New(g, 2, core.Mapping{0, 1}, funcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(n); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w := windows[i]
		wantLen := 3
		if i+wantLen > n {
			wantLen = n - i
		}
		if len(w) != wantLen {
			t.Fatalf("instance %d: window %v, want length %d", i, w, wantLen)
		}
		for j, v := range w {
			if v != uint64((i+j)*11) {
				t.Fatalf("instance %d window[%d] = %d, want %d", i, j, v, (i+j)*11)
			}
		}
	}
}

func TestStatefulOrdering(t *testing.T) {
	// A stateful accumulator must observe instances strictly in order.
	g := graph.UniformChain("acc", 2, 1, 1, 8)
	var sum uint64
	var order []int
	funcs := map[graph.TaskID]Func{
		0: func(ctx *Ctx) ([][]byte, error) {
			return [][]byte{u64(uint64(ctx.Instance))}, nil
		},
		1: func(ctx *Ctx) ([][]byte, error) {
			sum += getU64(ctx.In[0][0])
			order = append(order, ctx.Instance)
			return nil, nil
		},
	}
	rt, err := New(g, 2, core.Mapping{0, 1}, funcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	if _, err := rt.Run(n); err != nil {
		t.Fatal(err)
	}
	if want := uint64(n * (n - 1) / 2); sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("instance %d processed at position %d", v, i)
		}
	}
}

func TestDiamondJoin(t *testing.T) {
	// src fans out to two transforms that join: the join must pair data
	// of the same instance from both branches.
	g := &graph.Graph{Name: "diamond"}
	src := g.AddTask(graph.Task{Name: "src", WPPE: 1, WSPE: 1})
	a := g.AddTask(graph.Task{Name: "a", WPPE: 1, WSPE: 1})
	b := g.AddTask(graph.Task{Name: "b", WPPE: 1, WSPE: 1})
	join := g.AddTask(graph.Task{Name: "join", WPPE: 1, WSPE: 1})
	g.AddEdge(src, a, 8)
	g.AddEdge(src, b, 8)
	g.AddEdge(a, join, 8)
	g.AddEdge(b, join, 8)
	var mu sync.Mutex
	bad := 0
	funcs := map[graph.TaskID]Func{
		src: func(ctx *Ctx) ([][]byte, error) {
			v := u64(uint64(ctx.Instance))
			return [][]byte{v, v}, nil
		},
		a: func(ctx *Ctx) ([][]byte, error) {
			return [][]byte{u64(getU64(ctx.In[0][0]) * 3)}, nil
		},
		b: func(ctx *Ctx) ([][]byte, error) {
			return [][]byte{u64(getU64(ctx.In[0][0]) * 5)}, nil
		},
		join: func(ctx *Ctx) ([][]byte, error) {
			x, y := getU64(ctx.In[0][0]), getU64(ctx.In[1][0])
			if x != uint64(ctx.Instance)*3 || y != uint64(ctx.Instance)*5 {
				mu.Lock()
				bad++
				mu.Unlock()
			}
			return nil, nil
		},
	}
	for _, m := range []core.Mapping{{0, 0, 0, 0}, {0, 1, 2, 3}, {0, 1, 0, 1}} {
		mu.Lock()
		bad = 0
		mu.Unlock()
		rt, err := New(g, 4, m, funcs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(200); err != nil {
			t.Fatalf("mapping %v: %v", m, err)
		}
		if bad != 0 {
			t.Errorf("mapping %v: %d mispaired instances", m, bad)
		}
	}
}

func TestRandomGraphsRandomMappings(t *testing.T) {
	// Property: for arbitrary DAGs and mappings, every task fires exactly
	// n times and a content checksum is mapping-independent.
	rng := rand.New(rand.NewSource(31))
	var wantSum uint64
	for trial := 0; trial < 6; trial++ {
		k := 4 + rng.Intn(10)
		g := &graph.Graph{Name: "rand"}
		for i := 0; i < k; i++ {
			g.AddTask(graph.Task{WPPE: 1, WSPE: 1, Peek: rng.Intn(3)})
		}
		for to := 1; to < k; to++ {
			g.AddEdge(graph.TaskID(rng.Intn(to)), graph.TaskID(to), 8)
		}
		var mu sync.Mutex
		var sum uint64
		funcs := map[graph.TaskID]Func{}
		succs := g.Succs()
		for i := 0; i < k; i++ {
			id := graph.TaskID(i)
			nOut := len(succs[i])
			funcs[id] = func(ctx *Ctx) ([][]byte, error) {
				acc := uint64(ctx.Instance + 1)
				for _, in := range ctx.In {
					for _, d := range in {
						acc = acc*31 + getU64(d)
					}
				}
				mu.Lock()
				sum += acc
				mu.Unlock()
				out := make([][]byte, nOut)
				for j := range out {
					out[j] = u64(acc + uint64(j))
				}
				return out, nil
			}
		}
		numPE := 1 + rng.Intn(5)
		m := make(core.Mapping, k)
		for i := range m {
			m[i] = rng.Intn(numPE)
		}
		rt, err := New(g, numPE, m, funcs, Options{Timeout: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(40)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, f := range res.Fired {
			if f != 40 {
				t.Fatalf("trial %d: task %d fired %d/40", trial, i, f)
			}
		}
		// Re-run the same graph on a single PE: checksum must match.
		mu.Lock()
		wantSum = sum
		sum = 0
		mu.Unlock()
		rt1, err := New(g, 1, make(core.Mapping, k), funcs, Options{Timeout: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt1.Run(40); err != nil {
			t.Fatal(err)
		}
		if sum != wantSum {
			t.Fatalf("trial %d: checksum differs across mappings: %d vs %d", trial, sum, wantSum)
		}
	}
}

func TestTaskErrorAborts(t *testing.T) {
	g := graph.UniformChain("err", 2, 1, 1, 8)
	funcs := map[graph.TaskID]Func{
		0: func(ctx *Ctx) ([][]byte, error) {
			if ctx.Instance == 5 {
				return nil, fmt.Errorf("boom")
			}
			return [][]byte{u64(0)}, nil
		},
		1: func(ctx *Ctx) ([][]byte, error) { return nil, nil },
	}
	rt, err := New(g, 2, core.Mapping{0, 1}, funcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(100); err == nil {
		t.Fatal("expected task error to abort the run")
	}
}

func TestWrongOutputArityAborts(t *testing.T) {
	g := graph.UniformChain("arity", 2, 1, 1, 8)
	funcs := map[graph.TaskID]Func{
		0: func(ctx *Ctx) ([][]byte, error) { return nil, nil }, // should return 1 output
		1: func(ctx *Ctx) ([][]byte, error) { return nil, nil },
	}
	rt, err := New(g, 1, core.Mapping{0, 0}, funcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(10); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestNewValidation(t *testing.T) {
	g := chain4()
	var results sync.Map
	funcs := pipelineFuncs(g, &results)
	if _, err := New(g, 1, core.Mapping{0, 0}, funcs, Options{}); err == nil {
		t.Error("short mapping accepted")
	}
	if _, err := New(g, 1, core.Mapping{0, 0, 0, 5}, funcs, Options{}); err == nil {
		t.Error("out-of-range PE accepted")
	}
	delete(funcs, 2)
	if _, err := New(g, 1, core.Mapping{0, 0, 0, 0}, funcs, Options{}); err == nil {
		t.Error("missing task function accepted")
	}
}

// chainWithPeek builds a tasks-long chain whose every non-source task
// peeks `peek` instances ahead, with trivial pass-through functions.
func chainWithPeek(tasks, peek int) (*graph.Graph, map[graph.TaskID]Func) {
	g := graph.Chain("peek-chain", tasks,
		func(int) float64 { return 1e-6 },
		func(int) float64 { return 1e-6 },
		func(int) float64 { return 8 })
	for k := range g.Tasks {
		if k > 0 {
			g.Tasks[k].Peek = peek
		}
	}
	succs := g.Succs()
	funcs := map[graph.TaskID]Func{}
	for k := 0; k < tasks; k++ {
		kk := k
		funcs[graph.TaskID(kk)] = func(ctx *Ctx) ([][]byte, error) {
			outs := make([][]byte, len(succs[kk]))
			for i := range outs {
				outs[i] = u64(uint64(ctx.Instance))
			}
			return outs, nil
		}
	}
	return g, funcs
}

// TestMinimalCapacityPeekChain pins the edge-queue capacity invariant:
// a consumer with peek p needs p+1 resident instances before it can
// fire while its producer blocks on full(), so every capacity must be
// at least peek+2 (window + one slot of producer slack). The white-box
// leg shrinks the queues below the floor and proves the off-by-one
// really deadlocks — guarded by the runtime's progress timeout — so
// the floor in New can never be "simplified" away silently.
func TestMinimalCapacityPeekChain(t *testing.T) {
	for _, peek := range []int{1, 2, 4} {
		g, funcs := chainWithPeek(3, peek)
		m := core.Mapping{0, 1, 0} // producer and consumer on distinct PEs and shared ones
		rt, err := New(g, 2, m, funcs, Options{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		for ei := range rt.caps {
			if min := g.Tasks[g.Edges[ei].To].Peek + 2; rt.caps[ei] < min {
				t.Fatalf("peek=%d: edge %d capacity %d below the peek+2 floor %d", peek, ei, rt.caps[ei], min)
			}
		}
		// End-of-stream windows: instance counts at, below, and above
		// the peek horizon must all complete under derived capacities.
		for _, n := range []int{1, peek, peek + 1, 4 * (peek + 1)} {
			res, err := rt.Run(n)
			if err != nil {
				t.Fatalf("peek=%d n=%d: %v", peek, n, err)
			}
			for k, fired := range res.Fired {
				if fired != n {
					t.Fatalf("peek=%d n=%d: task %d fired %d", peek, n, k, fired)
				}
			}
		}

		// White-box: capacity peek+1 is the tight minimum (lockstep but
		// live); capacity peek is the off-by-one and must deadlock.
		rt.opt.Timeout = 300 * time.Millisecond
		for ei := range rt.caps {
			rt.caps[ei] = peek + 1
		}
		if _, err := rt.Run(3 * (peek + 1)); err != nil {
			t.Fatalf("peek=%d: tight minimal capacity peek+1 should complete, got %v", peek, err)
		}
		for ei := range rt.caps {
			rt.caps[ei] = peek
		}
		if _, err := rt.Run(3 * (peek + 1)); err == nil {
			t.Fatalf("peek=%d: capacity peek (off-by-one) completed — expected a buffer deadlock timeout", peek)
		}
	}
}
