// Package stream is an executable streaming runtime: the Go counterpart
// of the paper's scheduling framework (§6.1), which runs a mapped task
// graph over real data rather than simulating it.
//
// Every processing element of the mapping becomes one worker goroutine
// that serializes the computation of the tasks mapped to it — exactly
// like a core, which can only compute one task instance at a time. The
// worker alternates the two phases of Fig. 4: a computation phase
// (select a runnable task, process one instance) and a communication
// phase (data movement, which Go channels perform for us with the
// buffer capacities derived from the firstPeriod analysis of §4.2).
// Peek semantics are honoured: a task with peek p sees instances
// i..i+p of every input when processing instance i (truncated at the
// end of the stream), and stateful tasks process instances in order by
// construction.
//
// The runtime is for functional execution and correctness testing of
// mappings on a host machine; package sim predicts the timing behaviour
// on the Cell platform model.
package stream

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/graph"
)

// Msg is one instance of one data item flowing along an edge.
type Msg struct {
	Instance int
	Data     []byte
}

// Ctx carries everything a task function needs to process one instance.
type Ctx struct {
	// Instance is the 0-based stream instance being processed.
	Instance int
	// In holds, for every incoming edge (indexed like the task's
	// predecessor list, i.e. graph.Preds()[task]), the data of instances
	// Instance..Instance+peek. In[e][0] is the current instance;
	// In[e][j] peeks j instances ahead. Near the end of the stream the
	// lookahead window shrinks.
	In [][][]byte
	// PE is the index of the processing element executing the task.
	PE int
}

// Func computes one instance of a task: it receives the inputs (with
// lookahead) and returns the payload to send along every outgoing edge
// (indexed like graph.Succs()[task]). Source tasks receive an empty In;
// sink tasks return outputs for zero edges (the returned slice may be
// nil). Returning an error aborts the whole run.
type Func func(ctx *Ctx) ([][]byte, error)

// Options tunes the runtime.
type Options struct {
	// BufferSlack adds capacity (in instances) to every edge queue on
	// top of the firstPeriod-derived sizing. Default 0.
	BufferSlack int
	// Timeout aborts a run that makes no progress (default 30 s).
	Timeout time.Duration
}

// Runtime executes a mapped streaming application.
type Runtime struct {
	g     *graph.Graph
	m     core.Mapping
	funcs []Func
	opt   Options

	preds [][]int
	succs [][]int
	caps  []int // per-edge buffer capacity in instances
	numPE int

	// fail aborts the current run; installed by Run.
	fail func(error)
}

// New builds a runtime for graph g with mapping m. funcs must provide a
// Func for every task. numPE is the number of processing elements the
// mapping refers to.
func New(g *graph.Graph, numPE int, m core.Mapping, funcs map[graph.TaskID]Func, opt Options) (*Runtime, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(m) != g.NumTasks() {
		return nil, fmt.Errorf("stream: mapping has %d entries for %d tasks", len(m), g.NumTasks())
	}
	fs := make([]Func, g.NumTasks())
	for k := range fs {
		pe := m[k]
		if pe < 0 || pe >= numPE {
			return nil, fmt.Errorf("stream: task %d mapped to PE %d of %d", k, pe, numPE)
		}
		f, ok := funcs[graph.TaskID(k)]
		if !ok || f == nil {
			return nil, fmt.Errorf("stream: no function for task %s", g.Tasks[k].Name)
		}
		fs[k] = f
	}
	if opt.Timeout == 0 {
		opt.Timeout = 30 * time.Second
	}
	fp := core.FirstPeriods(g)
	caps := make([]int, g.NumEdges())
	for ei, e := range g.Edges {
		// §4.2 sizing: instances stay live for firstPeriod(To) −
		// firstPeriod(From) periods (core.BufferSizes uses the same
		// gap). The recurrence already charges peek+2 per hop, so the
		// gap covers the consumer's whole peek window — adding peek on
		// top (as an earlier revision did) double-counted it.
		gap := fp[e.To] - fp[e.From]
		c := gap + opt.BufferSlack
		// Hard floor, independent of the firstPeriod analysis: a
		// consumer with peek p needs p+1 instances resident before it
		// can fire at all, and one more slot keeps the producer from
		// running in lockstep with the consumer's pops. A capacity of
		// peek (the off-by-one) deadlocks the chain: the producer
		// blocks on full() while the consumer waits forever for its
		// peek+1-instance window — see TestMinimalCapacityPeekChain.
		if min := g.Tasks[e.To].Peek + 2; c < min {
			c = min
		}
		caps[ei] = c
	}
	return &Runtime{
		g: g, m: m.Clone(), funcs: fs, opt: opt,
		preds: g.Preds(), succs: g.Succs(), caps: caps, numPE: numPE,
	}, nil
}

// edgeQueue is a single-producer single-consumer bounded queue with a
// peekable window. Only the producer's worker calls push; only the
// consumer's worker calls window/pop — but producer and consumer may be
// the same worker, so the implementation must not block.
type edgeQueue struct {
	mu  sync.Mutex
	buf []Msg
	cap int
}

func (q *edgeQueue) full() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf) >= q.cap
}

func (q *edgeQueue) push(m Msg) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) >= q.cap {
		return false
	}
	q.buf = append(q.buf, m)
	return true
}

// window returns the data of instances inst..inst+peek if all present
// (peek truncated so inst+peek < n), or nil.
func (q *edgeQueue) window(inst, peek, n int) [][]byte {
	need := peek + 1
	if inst+need > n {
		need = n - inst
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) < need {
		return nil
	}
	if q.buf[0].Instance != inst {
		// The consumer pops exactly one instance per firing, so the head
		// must be the current instance; anything else is a runtime bug.
		panic(fmt.Sprintf("stream: edge head instance %d, consumer expects %d", q.buf[0].Instance, inst))
	}
	out := make([][]byte, need)
	for j := 0; j < need; j++ {
		out[j] = q.buf[j].Data
	}
	return out
}

func (q *edgeQueue) pop() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.buf = q.buf[1:]
}

// Result summarizes a run.
type Result struct {
	Instances int
	Elapsed   time.Duration
	// Fired[k] counts instances processed by task k (all equal to
	// Instances on success).
	Fired []int
}

// Run processes n stream instances through the graph and returns after
// every task has processed all of them.
func (r *Runtime) Run(n int) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stream: instances must be positive, got %d", n)
	}
	queues := make([]*edgeQueue, r.g.NumEdges())
	for ei := range queues {
		queues[ei] = &edgeQueue{cap: r.caps[ei]}
	}
	done := make([]int, r.g.NumTasks()) // instances fired per task (worker-local writes)

	type peState struct {
		tasks []int
	}
	pes := make([]peState, r.numPE)
	for k := range r.g.Tasks {
		pe := r.m[k]
		pes[pe].tasks = append(pes[pe].tasks, k)
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		runErr   error
		abortAll = make(chan struct{})
	)
	fail := func(err error) {
		errOnce.Do(func() {
			runErr = err
			close(abortAll)
		})
	}
	aborted := func() bool {
		select {
		case <-abortAll:
			return true
		default:
			return false
		}
	}

	start := time.Now()
	deadline := start.Add(r.opt.Timeout)

	worker := func(pe int) {
		defer wg.Done()
		idle := 0
		for !aborted() {
			progressed := false
			finished := true
			for _, k := range pes[pe].tasks {
				inst := done[k]
				if inst >= n {
					continue
				}
				finished = false
				if r.fire(k, inst, n, queues, pe) {
					done[k] = inst + 1
					progressed = true
				}
			}
			if finished {
				return
			}
			if progressed {
				idle = 0
				continue
			}
			idle++
			runtime.Gosched()
			if idle%1024 == 0 {
				if time.Now().After(deadline) {
					fail(fmt.Errorf("stream: no progress before %v timeout (likely buffer deadlock)", r.opt.Timeout))
					return
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}

	r.fail = fail
	for pe := 0; pe < r.numPE; pe++ {
		wg.Add(1)
		go worker(pe)
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	return &Result{Instances: n, Elapsed: time.Since(start), Fired: done}, nil
}

// fire attempts to process instance inst of task k; it returns true on
// success and false when inputs or output space are missing.
func (r *Runtime) fire(k, inst, n int, queues []*edgeQueue, pe int) bool {
	// Gather inputs with peek lookahead.
	peek := r.g.Tasks[k].Peek
	ins := make([][][]byte, len(r.preds[k]))
	for i, ei := range r.preds[k] {
		w := queues[ei].window(inst, peek, n)
		if w == nil {
			return false
		}
		ins[i] = w
	}
	// Reserve output space (single producer per edge: no race on full()).
	for _, ei := range r.succs[k] {
		if queues[ei].full() {
			return false
		}
	}
	out, err := r.funcs[k](&Ctx{Instance: inst, In: ins, PE: pe})
	if err != nil {
		r.fail(fmt.Errorf("stream: task %s instance %d: %w", r.g.Tasks[k].Name, inst, err))
		return false
	}
	if len(out) != len(r.succs[k]) {
		r.fail(fmt.Errorf("stream: task %s returned %d outputs for %d edges",
			r.g.Tasks[k].Name, len(out), len(r.succs[k])))
		return false
	}
	for i, ei := range r.succs[k] {
		if !queues[ei].push(Msg{Instance: inst, Data: out[i]}) {
			// Space was checked above and this worker is the only
			// producer, so the push cannot fail.
			r.fail(fmt.Errorf("stream: edge %d overflow on task %s", ei, r.g.Tasks[k].Name))
			return false
		}
	}
	// Consume the current instance of each input.
	for _, ei := range r.preds[k] {
		queues[ei].pop()
	}
	return true
}
