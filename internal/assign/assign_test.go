package assign

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/graph"
	"cellstream/internal/platform"
)

func randomGraph(rng *rand.Rand, k int) *graph.Graph {
	g := &graph.Graph{Name: "rand"}
	for i := 0; i < k; i++ {
		g.AddTask(graph.Task{
			WPPE: 1 + rng.Float64()*4,
			WSPE: 0.5 + rng.Float64()*4,
			Peek: rng.Intn(2),
		})
	}
	for to := 1; to < k; to++ {
		g.AddEdge(graph.TaskID(rng.Intn(to)), graph.TaskID(to), float64(1+rng.Intn(32))*1024)
	}
	return g
}

func bruteForce(t *testing.T, g *graph.Graph, plat *platform.Platform) float64 {
	t.Helper()
	n := plat.NumPE()
	k := g.NumTasks()
	bestT := math.Inf(1)
	m := make(core.Mapping, k)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			rep, err := core.Evaluate(g, plat, m)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Feasible && rep.Period < bestT {
				bestT = rep.Period
			}
			return
		}
		for pe := 0; pe < n; pe++ {
			m[i] = pe
			rec(i + 1)
		}
	}
	rec(0)
	return bestT
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 6)
		plat := platform.Cell(1, 2)
		plat.BW = 4096 // make communication matter
		want := bruteForce(t, g, plat)
		res, err := Solve(g, plat, Options{Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Proved {
			t.Fatalf("trial %d: search not proved", trial)
		}
		if math.Abs(res.Report.Period-want) > 1e-9*(1+want) {
			t.Errorf("trial %d: period %v, brute force %v", trial, res.Report.Period, want)
		}
		if res.PeriodBound > res.Report.Period+1e-9 {
			t.Errorf("trial %d: bound %v above achieved %v", trial, res.PeriodBound, res.Report.Period)
		}
	}
}

func TestExactMatchesMILPOnSmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 4; trial++ {
		g := randomGraph(rng, 5)
		plat := platform.Cell(1, 2)
		plat.BW = 2048
		resA, err := Solve(g, plat, Options{Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		resM, err := core.SolveMILP(g, plat, core.SolveOptions{Exact: true, TimeLimit: 2 * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(resA.Report.Period-resM.Report.Period) > 1e-6*(1+resM.Report.Period) {
			t.Errorf("trial %d: assign %v != MILP %v", trial, resA.Report.Period, resM.Report.Period)
		}
	}
}

// budget shrinks a search time limit under -short so the suite stays
// within a few seconds without deleting any scenario.
func budget(t *testing.T, full time.Duration) time.Duration {
	t.Helper()
	if testing.Short() {
		return full / 20
	}
	return full
}

func TestGapIsHonored(t *testing.T) {
	g := daggen.Generate(daggen.Params{Tasks: 30, Seed: 11, CCR: 1})
	plat := platform.QS22()
	res, err := Solve(g, plat, Options{RelGap: 0.05, TimeLimit: budget(t, 10*time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proved && res.Gap > 0.05+1e-9 {
		t.Errorf("proved but gap %v > 0.05", res.Gap)
	}
	if res.PeriodBound > res.Report.Period+1e-12 {
		t.Errorf("bound %v exceeds achieved period %v", res.PeriodBound, res.Report.Period)
	}
	if !res.Report.Feasible {
		t.Error("returned infeasible mapping")
	}
}

func TestSymmetryBreakingStillOptimal(t *testing.T) {
	// Many identical SPEs: symmetry breaking must not cut the optimum.
	// 4 identical tasks, 4 SPEs, SPE twice as fast: optimum splits them
	// one per SPE.
	g := &graph.Graph{Name: "sym"}
	for i := 0; i < 4; i++ {
		g.AddTask(graph.Task{WPPE: 2e-6, WSPE: 1e-6})
	}
	plat := platform.Cell(1, 4)
	res, err := Solve(g, plat, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Report.Period-1e-6) > 1e-12 {
		t.Errorf("period %v, want 1e-6", res.Report.Period)
	}
}

func TestSeedUsed(t *testing.T) {
	g := daggen.Generate(daggen.Params{Tasks: 40, Seed: 17, CCR: 1.2})
	plat := platform.QS22()
	// With a 1-node budget the result must equal the (feasible) seed.
	seed := core.AllOnPPE(g)
	seed[0] = 1
	if rep, _ := core.Evaluate(g, plat, seed); !rep.Feasible {
		t.Skip("seed unexpectedly infeasible")
	}
	res, err := Solve(g, plat, Options{MaxNodes: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := core.Evaluate(g, plat, seed)
	if res.Report.Period > rep.Period+1e-15 {
		t.Errorf("result %v worse than seed %v", res.Report.Period, rep.Period)
	}
	if res.Proved {
		t.Error("1-node search claims proof")
	}
}

func TestInfeasibleSeedIgnored(t *testing.T) {
	g := graph.UniformChain("fat", 4, 1e-6, 1e-6, 300*1024)
	plat := platform.Cell(1, 2)
	bad := core.Mapping{0, 1, 2, 0}
	res, err := Solve(g, plat, Options{Exact: true, Seed: bad})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Feasible {
		t.Errorf("returned infeasible mapping: %v", res.Report.Violations)
	}
}

func TestRespectsCapacityConstraints(t *testing.T) {
	seeds := int64(5)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < seeds; seed++ {
		g := daggen.Generate(daggen.Params{Tasks: 35, Seed: seed, CCR: 3})
		plat := platform.QS22()
		res, err := Solve(g, plat, Options{RelGap: 0.05, TimeLimit: budget(t, 5*time.Second)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Report.Feasible {
			t.Errorf("seed %d: infeasible result: %v", seed, res.Report.Violations)
		}
	}
}

func TestBetterThanGreedySeedOnPaperGraph(t *testing.T) {
	g := daggen.PaperGraph1(0.775)
	plat := platform.QS22()
	res, err := Solve(g, plat, Options{RelGap: 0.05, TimeLimit: budget(t, 5*time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := core.Evaluate(g, plat, core.AllOnPPE(g))
	speedup := base.Period / res.Report.Period
	if speedup < 1.5 {
		t.Errorf("speed-up %v on paper graph 1, want > 1.5", speedup)
	}
}

func TestZeroSPEs(t *testing.T) {
	g := daggen.Generate(daggen.Params{Tasks: 10, Seed: 2})
	plat := platform.Cell(1, 0)
	res, err := Solve(g, plat, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := core.Evaluate(g, plat, core.AllOnPPE(g))
	if math.Abs(res.Report.Period-base.Period) > 1e-12 {
		t.Errorf("period %v, want all-on-PPE %v", res.Report.Period, base.Period)
	}
}

func TestSolveCtxCancel(t *testing.T) {
	g := daggen.Generate(daggen.Params{Tasks: 60, Seed: 23, CCR: 2})
	plat := platform.QS22()

	// A pre-cancelled context must return promptly with the seed-level
	// incumbent and a conservative bound rather than hang or error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := SolveCtx(ctx, g, plat, Options{Exact: true, TimeLimit: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled solve took %v", elapsed)
	}
	if !res.Report.Feasible {
		t.Error("cancelled solve returned infeasible mapping")
	}
	if res.PeriodBound > res.Report.Period+1e-9 {
		t.Errorf("bound %v above achieved %v", res.PeriodBound, res.Report.Period)
	}

	// A deadline shorter than the search must interrupt it mid-flight.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	start = time.Now()
	res2, err := SolveCtx(ctx2, g, plat, Options{Exact: true, TimeLimit: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline solve took %v", elapsed)
	}
	if res2.Proved && res2.Gap > 1e-9 {
		t.Logf("note: tiny instance proved before the deadline (gap %v)", res2.Gap)
	}
}
