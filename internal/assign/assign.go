// Package assign solves the mapping problem with a branch-and-bound
// search over task→PE assignments, specialized to the structure of the
// Cell: one class of identical PPEs and one class of identical SPEs.
//
// It is the scalable companion of core.SolveMILP: the paper's graphs
// (50–94 tasks) produce mixed programs whose LP relaxations are costly
// to re-solve at every node with a dense simplex, so for those sizes we
// branch directly in assignment space, in topological order, with
// combinatorial lower bounds:
//
//   - per-PE fixed loads (compute, interface traffic of resolved edges),
//   - an exact fractional relaxation of the remaining compute load onto
//     the two machine classes (a two-resource greedy by wSPE/wPPE ratio),
//   - early pruning of local-store and DMA-stack violations, which can
//     only grow as more tasks are placed.
//
// SPE symmetry is broken by only ever branching on "used SPEs plus one
// fresh SPE", and the search stops at the paper's 5 % relative gap.
// Results are cross-checked against the exact MILP on small instances
// by the test suite.
package assign

import (
	"context"
	"math"
	"sort"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/lp"
	"cellstream/internal/platform"
)

// Options tunes the search.
type Options struct {
	// RelGap is the relative optimality gap (0 selects the paper's 5 %).
	RelGap float64
	// Exact forces RelGap = 0.
	Exact bool
	// TimeLimit bounds the search (0 = 20 s).
	TimeLimit time.Duration
	// MaxNodes bounds explored nodes (0 = 5 million).
	MaxNodes int
	// Seed optionally provides an initial incumbent mapping.
	Seed core.Mapping
	// DisableRootLP turns off the LP-relaxation root bound (solved on
	// the cached compact formulation before the combinatorial search;
	// when the seed incumbent is already within the gap of it, the
	// search is skipped entirely).
	DisableRootLP bool
	// RootBound optionally supplies an externally proven lower bound on
	// the optimal period — e.g. the dual-warm-started root-LP sweep a
	// sched.Session maintains across SPE-count sweep points. When > 0
	// it replaces the internal (cold) root LP solve and is reported as
	// Result.RootLPBound.
	RootBound float64
}

// Result reports the outcome.
type Result struct {
	Mapping core.Mapping
	Report  *core.Report
	// PeriodBound is a proven lower bound on the optimal period.
	PeriodBound float64
	// RootLPBound is the LP-relaxation bound computed at the root on
	// the cached compact formulation (0 when skipped or not solved).
	RootLPBound float64
	Gap         float64
	Nodes       int
	// Proved is true when the gap is proven — either the search ran to
	// completion, or the root LP bound already certified the seed
	// incumbent (in which case Nodes is 0 and no search ran); false
	// when a limit stopped the search early.
	Proved    bool
	SolveTime time.Duration
}

type searcher struct {
	g    *graph.Graph
	plat *platform.Platform
	opt  Options

	order []graph.TaskID // branching order (topological)
	needs []int64        // buffer bytes per task
	wppe  []float64
	wspe  []float64
	ratio []int // task IDs sorted by wSPE/wPPE descending (PPE-affine first)
	inE   [][]int
	outE  [][]int
	n     int // PEs
	nP    int

	// node state (mutated with undo on the DFS path)
	assigned []int // task → PE or -1
	load     []float64
	inBytes  []float64
	outBytes []float64
	memUsed  []int64
	dmaIn    []int
	dmaOut   []int
	cnt      []int // tasks placed per PE
	usedSPE  int
	sumWPPE  float64 // total wPPE of unassigned tasks
	sumWSPE  float64

	best     core.Mapping
	bestT    float64
	bound    float64 // best lower bound among pruned frontier
	nodes    int
	ctx      context.Context
	canceled bool
	maxNodes int
	gapMul   float64 // prune when bound ≥ bestT*gapMul
}

// Solve runs the branch-and-bound search with a background context.
func Solve(g *graph.Graph, plat *platform.Platform, opt Options) (*Result, error) {
	//lint:allow ctxflow documented no-ctx convenience wrapper; SolveCtx is the cancellable entry point
	return SolveCtx(context.Background(), g, plat, opt)
}

// SolveCtx runs the branch-and-bound search under ctx: cancellation or
// a deadline stops it cleanly with the best incumbent and a valid
// bound. opt.TimeLimit is applied as a context deadline (the earlier of
// it and any ctx deadline wins) instead of wall-clock polling.
func SolveCtx(ctx context.Context, g *graph.Graph, plat *platform.Platform, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	relGap := opt.RelGap
	if relGap == 0 && !opt.Exact {
		relGap = 0.05
	}
	timeLimit := opt.TimeLimit
	if timeLimit == 0 {
		timeLimit = 20 * time.Second
	}
	var cancel context.CancelFunc
	ctx, cancel = context.WithTimeout(ctx, timeLimit)
	defer cancel()
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = 5_000_000
	}

	s := &searcher{g: g, plat: plat, opt: opt,
		n: plat.NumPE(), nP: plat.NumPPE,
		ctx:      ctx,
		maxNodes: maxNodes,
		gapMul:   1 - relGap,
	}
	var err error
	s.order, err = g.TopoOrder()
	if err != nil {
		return nil, err
	}
	s.needs = core.TaskBufferNeeds(g)
	s.wppe = make([]float64, g.NumTasks())
	s.wspe = make([]float64, g.NumTasks())
	for k, t := range g.Tasks {
		s.wppe[k] = t.WPPE
		s.wspe[k] = t.WSPE
		s.sumWPPE += t.WPPE
		s.sumWSPE += t.WSPE
	}
	s.ratio = make([]int, g.NumTasks())
	for k := range s.ratio {
		s.ratio[k] = k
	}
	sort.Slice(s.ratio, func(a, b int) bool {
		ra := ratioOf(s.wspe[s.ratio[a]], s.wppe[s.ratio[a]])
		rb := ratioOf(s.wspe[s.ratio[b]], s.wppe[s.ratio[b]])
		if ra != rb {
			return ra > rb
		}
		return s.ratio[a] < s.ratio[b]
	})
	s.inE = g.Preds()
	s.outE = g.Succs()

	s.assigned = make([]int, g.NumTasks())
	for k := range s.assigned {
		s.assigned[k] = -1
	}
	s.load = make([]float64, s.n)
	s.inBytes = make([]float64, s.n)
	s.outBytes = make([]float64, s.n)
	s.memUsed = make([]int64, s.n)
	s.dmaIn = make([]int, s.n)
	s.dmaOut = make([]int, s.n)
	s.cnt = make([]int, s.n)

	// Incumbent: the caller's seed if feasible, else all-on-PPE.
	start := time.Now()
	s.bestT = math.Inf(1)
	s.bound = math.Inf(1)
	trySeed := func(m core.Mapping) {
		if m == nil {
			return
		}
		rep, err := core.Evaluate(g, plat, m)
		if err == nil && rep.Feasible && rep.Period < s.bestT {
			s.best = m.Clone()
			s.bestT = rep.Period
		}
	}
	trySeed(opt.Seed)
	trySeed(core.AllOnPPE(g))

	// Root LP bound: the relaxation of the cached compact formulation
	// lower-bounds every mapping's period. When the seed incumbent is
	// already within the gap of it, the whole tree would prune at the
	// root — skip the search and report the LP bound. The solve is
	// skipped when the budget is too tight to spend on it (the LP has
	// no mid-solve cancellation).
	rootLB := 0.0
	if opt.RootBound > 0 {
		rootLB = opt.RootBound
	} else if !opt.DisableRootLP && ctx.Err() == nil {
		runLP := true
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < 2*time.Second {
			runLP = false
		}
		if runLP {
			f := core.CachedFormulation(g, plat, false)
			if sol, lerr := lp.SolveOpts(f.Problem.LP, lp.Options{MaxIter: 20000, Presolve: true}); lerr == nil && sol.Status.Err() == nil {
				rootLB = sol.Objective
			}
		}
	}

	proved := true
	if !(rootLB > 0 && rootLB >= s.bestT*s.gapMul-1e-12*s.bestT) {
		proved = s.dfs(0)
	}

	rep, err := core.Evaluate(g, plat, s.best)
	if err != nil {
		return nil, err
	}
	bound := s.bound
	if proved {
		// The search proved no mapping beats bestT*gapMul.
		if b := s.bestT * s.gapMul; b > bound || math.IsInf(bound, 1) {
			bound = s.bestT * s.gapMul
		}
		if math.IsInf(bound, 1) {
			bound = s.bestT
		}
	} else if math.IsInf(bound, 1) {
		bound = 0
	}
	if rootLB > bound {
		bound = rootLB // the LP bound holds whether or not the search ran
	}
	if bound > s.bestT {
		bound = s.bestT
	}
	return &Result{
		Mapping:     s.best,
		Report:      rep,
		PeriodBound: bound,
		RootLPBound: rootLB,
		Gap:         (s.bestT - bound) / math.Max(s.bestT, 1e-300),
		Nodes:       s.nodes,
		Proved:      proved,
		SolveTime:   time.Since(start),
	}, nil
}

func ratioOf(ws, wp float64) float64 {
	if wp == 0 {
		if ws == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return ws / wp
}

// dfs explores assignments for order[d:]. It returns false when a limit
// interrupted the search (so the result is not proven).
func (s *searcher) dfs(d int) bool {
	s.nodes++
	lb := s.lowerBound(d)
	if s.nodes&1023 == 0 && !s.canceled && s.ctx.Err() != nil {
		s.canceled = true
	}
	if s.nodes >= s.maxNodes || s.canceled {
		// Abandoned subtree: its root bound joins the frontier so the
		// reported global bound stays valid.
		if lb < s.bound {
			s.bound = lb
		}
		return false
	}

	if lb >= s.bestT*s.gapMul {
		if lb < s.bound {
			s.bound = lb
		}
		return true
	}

	if d == len(s.order) {
		// Complete assignment; capacity constraints were enforced
		// incrementally, so it is feasible.
		if lb < s.bestT {
			s.bestT = lb
			s.best = append(core.Mapping(nil), s.assigned...)
		}
		return true
	}

	k := int(s.order[d])
	// Candidate PEs: all PPEs, used SPEs, and one fresh SPE.
	maxSPE := s.nP + s.usedSPE
	if maxSPE >= s.n {
		maxSPE = s.n - 1
	}
	type cand struct {
		pe int
		lb float64
	}
	var cands []cand
	for pe := 0; pe <= maxSPE; pe++ {
		if ok := s.place(k, pe); !ok {
			s.unplace(k, pe)
			continue
		}
		cands = append(cands, cand{pe, s.lowerBound(d + 1)})
		s.unplace(k, pe)
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].lb != cands[b].lb {
			return cands[a].lb < cands[b].lb
		}
		return cands[a].pe < cands[b].pe
	})
	proved := true
	for ci, c := range cands {
		if c.lb >= s.bestT*s.gapMul {
			if c.lb < s.bound {
				s.bound = c.lb
			}
			continue
		}
		s.place(k, c.pe)
		if !s.dfs(d + 1) {
			proved = false
		}
		s.unplace(k, c.pe)
		if !proved && (s.nodes >= s.maxNodes || s.canceled) {
			// Unvisited siblings join the abandoned frontier.
			for _, rest := range cands[ci+1:] {
				if rest.lb < s.bound {
					s.bound = rest.lb
				}
			}
			return false
		}
	}
	return proved
}

// place assigns task k to pe, updating incremental state; it returns
// false when a hard capacity constraint is violated (caller must still
// unplace).
func (s *searcher) place(k, pe int) bool {
	s.assigned[k] = pe
	s.cnt[pe]++
	spe := pe >= s.nP
	t := &s.g.Tasks[k]
	if spe {
		s.load[pe] += s.wspe[k]
		s.memUsed[pe] += s.needs[k]
		if pe-s.nP == s.usedSPE {
			s.usedSPE++
		}
	} else {
		s.load[pe] += s.wppe[k]
	}
	s.sumWPPE -= s.wppe[k]
	s.sumWSPE -= s.wspe[k]
	s.inBytes[pe] += t.ReadBytes
	s.outBytes[pe] += t.WriteBytes

	ok := true
	if spe && s.memUsed[pe] > s.plat.BufferCapacity() {
		ok = false
	}
	// Resolve edges to already-assigned neighbours.
	for _, ei := range s.inE[k] {
		e := &s.g.Edges[ei]
		src := s.assigned[e.From]
		if src < 0 || src == pe {
			continue
		}
		s.outBytes[src] += e.Bytes
		s.inBytes[pe] += e.Bytes
		if spe {
			s.dmaIn[pe]++
			if s.dmaIn[pe] > s.plat.MaxDMAIn {
				ok = false
			}
		}
		if src >= s.nP && !spe {
			s.dmaOut[src]++
			if s.dmaOut[src] > s.plat.MaxDMAFromPPE {
				ok = false
			}
		}
	}
	for _, ei := range s.outE[k] {
		e := &s.g.Edges[ei]
		dst := s.assigned[e.To]
		if dst < 0 || dst == pe {
			continue
		}
		s.outBytes[pe] += e.Bytes
		s.inBytes[dst] += e.Bytes
		if dst >= s.nP {
			s.dmaIn[dst]++
			if s.dmaIn[dst] > s.plat.MaxDMAIn {
				ok = false
			}
		}
		if spe && dst < s.nP {
			s.dmaOut[pe]++
			if s.dmaOut[pe] > s.plat.MaxDMAFromPPE {
				ok = false
			}
		}
	}
	return ok
}

// unplace reverts place(k, pe).
func (s *searcher) unplace(k, pe int) {
	spe := pe >= s.nP
	t := &s.g.Tasks[k]
	for _, ei := range s.inE[k] {
		e := &s.g.Edges[ei]
		src := s.assigned[e.From]
		if src < 0 || src == pe {
			continue
		}
		s.outBytes[src] -= e.Bytes
		s.inBytes[pe] -= e.Bytes
		if spe {
			s.dmaIn[pe]--
		}
		if src >= s.nP && !spe {
			s.dmaOut[src]--
		}
	}
	for _, ei := range s.outE[k] {
		e := &s.g.Edges[ei]
		dst := s.assigned[e.To]
		if dst < 0 || dst == pe {
			continue
		}
		s.outBytes[pe] -= e.Bytes
		s.inBytes[dst] -= e.Bytes
		if dst >= s.nP {
			s.dmaIn[dst]--
		}
		if spe && dst < s.nP {
			s.dmaOut[pe]--
		}
	}
	s.inBytes[pe] -= t.ReadBytes
	s.outBytes[pe] -= t.WriteBytes
	s.sumWPPE += s.wppe[k]
	s.sumWSPE += s.wspe[k]
	if spe {
		s.load[pe] -= s.wspe[k]
		s.memUsed[pe] -= s.needs[k]
	} else {
		s.load[pe] -= s.wppe[k]
	}
	s.cnt[pe]--
	if spe && pe-s.nP == s.usedSPE-1 && s.cnt[pe] == 0 {
		s.usedSPE--
	}
	s.assigned[k] = -1
}

// lowerBound returns a valid lower bound on the period of any completion
// of the current partial assignment (tasks order[d:] unassigned).
func (s *searcher) lowerBound(d int) float64 {
	lb := 0.0
	for pe := 0; pe < s.n; pe++ {
		if s.load[pe] > lb {
			lb = s.load[pe]
		}
		if v := s.inBytes[pe] / s.plat.BW; v > lb {
			lb = v
		}
		if v := s.outBytes[pe] / s.plat.BW; v > lb {
			lb = v
		}
	}
	if d == len(s.order) {
		return lb
	}
	// Fractional relaxation of the remaining compute: binary-search the
	// smallest T such that the unassigned work fits the spare capacity
	// of the two machine classes, splitting each task greedily by its
	// wSPE/wPPE ratio (exact for the fractional relaxation).
	hi := lb
	// Upper envelope: put everything on the least-loaded PPE.
	minPPE := math.Inf(1)
	for pe := 0; pe < s.nP; pe++ {
		if s.load[pe] < minPPE {
			minPPE = s.load[pe]
		}
	}
	if v := minPPE + s.sumWPPE; v > hi {
		hi = v
	}
	lo := lb
	if s.fits(d, lo) {
		return lo
	}
	for it := 0; it < 40 && hi-lo > 1e-12*(1+hi); it++ {
		mid := (lo + hi) / 2
		if s.fits(d, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// fits reports whether the unassigned work can fractionally fit within
// period T given current fixed loads.
func (s *searcher) fits(d int, T float64) bool {
	var capP, capS float64
	for pe := 0; pe < s.nP; pe++ {
		if c := T - s.load[pe]; c > 0 {
			capP += c
		}
	}
	for pe := s.nP; pe < s.n; pe++ {
		if c := T - s.load[pe]; c > 0 {
			capS += c
		}
	}
	// Greedy: tasks with the highest wSPE/wPPE ratio benefit most from
	// the PPE; fill PPE capacity with them, overflow to SPEs.
	needS := 0.0
	for _, k := range s.ratio {
		if s.assigned[k] >= 0 {
			continue
		}
		if capP >= s.wppe[k] {
			capP -= s.wppe[k]
			continue
		}
		if capP > 0 && s.wppe[k] > 0 {
			frac := capP / s.wppe[k]
			capP = 0
			needS += (1 - frac) * s.wspe[k]
			continue
		}
		needS += s.wspe[k]
	}
	return needS <= capS+1e-12
}
