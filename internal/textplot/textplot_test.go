package textplot

import (
	"strings"
	"testing"
)

func TestPlotBasics(t *testing.T) {
	s := Plot("title", "xs", "ys", 40, 10, []Series{
		{Name: "line", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
	})
	if !strings.Contains(s, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "* line") {
		t.Error("missing legend")
	}
	if !strings.Contains(s, "xs") || !strings.Contains(s, "ys") {
		t.Error("missing axis labels")
	}
	if !strings.Contains(s, "*") {
		t.Error("no points plotted")
	}
	lines := strings.Split(s, "\n")
	// title + 10 rows + axis + xlabels + ylabel + legend.
	if len(lines) < 14 {
		t.Errorf("only %d lines", len(lines))
	}
}

func TestPlotMultiSeriesMarkers(t *testing.T) {
	s := Plot("t", "x", "y", 40, 8, []Series{
		{Name: "a", X: []float64{0, 1}, Y: []float64{0, 0}},
		{Name: "b", X: []float64{0, 1}, Y: []float64{1, 1}},
	})
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Errorf("expected two distinct markers:\n%s", s)
	}
}

func TestPlotEmpty(t *testing.T) {
	s := Plot("empty", "x", "y", 40, 8, nil)
	if !strings.Contains(s, "no data") {
		t.Errorf("empty plot = %q", s)
	}
}

func TestPlotSinglePointAndFlatLine(t *testing.T) {
	// Degenerate ranges must not panic or divide by zero.
	s := Plot("p", "x", "y", 30, 6, []Series{
		{Name: "pt", X: []float64{5}, Y: []float64{7}},
	})
	if !strings.Contains(s, "*") {
		t.Error("single point not plotted")
	}
	s = Plot("flat", "x", "y", 30, 6, []Series{
		{Name: "f", X: []float64{0, 1, 2}, Y: []float64{3, 3, 3}},
	})
	if !strings.Contains(s, "*") {
		t.Error("flat line not plotted")
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	s := Plot("t", "x", "y", 1, 1, []Series{
		{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
	})
	if len(s) == 0 {
		t.Error("empty output for tiny plot")
	}
}
