// Package textplot renders simple ASCII line plots for the experiment
// harness, so every figure of the paper can be regenerated and eyeballed
// without any plotting dependency.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers cycles through per-series point glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Plot renders the series into a width×height character grid with axes
// and a legend. Width and height are the inner plot area; sensible
// minimums are enforced.
func Plot(title, xlabel, ylabel string, width, height int, series []Series) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		return title + ": (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// A little headroom on Y.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	toCol := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		return clamp(c, 0, width-1)
	}
	toRow := func(y float64) int {
		r := int(math.Round((y - minY) / (maxY - minY) * float64(height-1)))
		return clamp(height-1-r, 0, height-1)
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		// Connect consecutive points with interpolated marks.
		for i := 0; i+1 < len(s.X); i++ {
			x0, y0, x1, y1 := s.X[i], s.Y[i], s.X[i+1], s.Y[i+1]
			steps := abs(toCol(x1)-toCol(x0)) + abs(toRow(y1)-toRow(y0)) + 1
			for st := 0; st <= steps; st++ {
				f := float64(st) / float64(steps)
				r := toRow(y0 + (y1-y0)*f)
				c := toCol(x0 + (x1-x0)*f)
				if grid[r][c] == ' ' || st == 0 || st == steps {
					grid[r][c] = mk
				}
			}
		}
		if len(s.X) == 1 {
			grid[toRow(s.Y[0])][toCol(s.X[0])] = mk
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	yFmt := func(v float64) string { return fmt.Sprintf("%9.3g", v) }
	for r := 0; r < height; r++ {
		switch r {
		case 0:
			b.WriteString(yFmt(maxY))
		case height - 1:
			b.WriteString(yFmt(minY))
		case height / 2:
			b.WriteString(yFmt((minY + maxY) / 2))
		default:
			b.WriteString(strings.Repeat(" ", 9))
		}
		b.WriteString(" |")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", width) + "\n")
	left := fmt.Sprintf("%-10.4g", minX)
	right := fmt.Sprintf("%10.4g", maxX)
	gapW := width - len(left) - len(right) - len(xlabel)
	if gapW < 2 {
		gapW = 2
	}
	half := gapW / 2
	fmt.Fprintf(&b, "%s%s%s%s%s\n", strings.Repeat(" ", 11), left,
		strings.Repeat(" ", half)+xlabel+strings.Repeat(" ", gapW-half), right, "")
	if ylabel != "" {
		fmt.Fprintf(&b, "  y: %s\n", ylabel)
	}
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
