// Package daggen generates random streaming task graphs in the style of
// Suter's DagGen generator [19], which the paper uses to produce its
// three evaluation graphs, plus per-graph variants with controlled
// communication-to-computation ratio (CCR, §6.2).
//
// Graphs are built layer by layer: the number of parallel tasks per
// layer follows the Fat parameter, its variation the Regularity
// parameter, extra dependencies the Density parameter, and dependencies
// may skip up to Jump layers. All randomness is seeded and deterministic.
//
// Cost model. Task compute costs follow the unrelated-machine model of
// §2.1: every task draws a work amount in operations; the PPE executes
// ops at PPERate. A fraction VectorProb of the tasks vectorize well and
// run 2–6× faster on an SPE; the rest are control-heavy and run 1–2.5×
// slower, so neither PE class dominates. Edge payloads are sized so the
// whole application meets a target CCR, computed as in §6.2: total
// transferred elements (ElementBytes each) divided by total operations.
package daggen

import (
	"fmt"
	"math"
	"math/rand"

	"cellstream/internal/graph"
)

// Defaults for the cost model.
const (
	// DefaultPPERate is the effective PPE execution rate in ops/second.
	DefaultPPERate = 1e9
	// DefaultElementBytes is the size of one stream element (a float).
	DefaultElementBytes = 4
)

// Params configures Generate.
type Params struct {
	Tasks      int     // number of tasks (≥ 1)
	Fat        float64 // width: ~Fat·√Tasks parallel tasks per layer (default 0.5)
	Regularity float64 // 0..1, uniformity of layer widths (default 0.5)
	Density    float64 // 0..1, probability of extra in-edges (default 0.5)
	Jump       int     // max layers an edge may skip (default 1)

	PeekProb     float64 // probability a task peeks ahead (default 0.3)
	PeekMax      int     // maximum peek value (default 2)
	StatefulProb float64 // probability a task is stateful (default 0.2)

	MinOps     float64 // minimum work per instance in operations (default 1e3)
	MaxOps     float64 // maximum work per instance (default 3e4)
	PPERate    float64 // PPE ops/second (default DefaultPPERate)
	VectorProb float64 // fraction of SPE-friendly tasks (default 0.75)

	// CCR is the target communication-to-computation ratio; 0 keeps the
	// raw payloads (roughly CCR 1).
	CCR float64
	// ElementBytes sizes one element (default DefaultElementBytes).
	ElementBytes float64
	// MemIOProb is the probability that an interior task also reads or
	// writes main memory (default 0.15); sources always read and sinks
	// always write the stream.
	MemIOProb float64

	Seed int64
}

func (p *Params) fill() {
	if p.Fat == 0 {
		p.Fat = 0.5
	}
	if p.Regularity == 0 {
		p.Regularity = 0.5
	}
	if p.Density == 0 {
		p.Density = 0.5
	}
	if p.Jump == 0 {
		p.Jump = 1
	}
	if p.PeekProb == 0 {
		p.PeekProb = 0.3
	}
	if p.PeekMax == 0 {
		p.PeekMax = 2
	}
	if p.StatefulProb == 0 {
		p.StatefulProb = 0.2
	}
	if p.MinOps == 0 {
		p.MinOps = 1e3
	}
	if p.MaxOps == 0 {
		p.MaxOps = 3e4
	}
	if p.PPERate == 0 {
		p.PPERate = DefaultPPERate
	}
	if p.VectorProb == 0 {
		p.VectorProb = 0.75
	}
	if p.ElementBytes == 0 {
		p.ElementBytes = DefaultElementBytes
	}
	if p.MemIOProb == 0 {
		p.MemIOProb = 0.15
	}
}

// Generate builds a random streaming application.
func Generate(params Params) *graph.Graph {
	p := params
	p.fill()
	if p.Tasks < 1 {
		panic("daggen: Tasks must be ≥ 1")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := &graph.Graph{Name: fmt.Sprintf("daggen-n%d-s%d", p.Tasks, p.Seed)}

	// Layer widths.
	avgWidth := math.Max(1, p.Fat*math.Sqrt(float64(p.Tasks)))
	var layers [][]graph.TaskID
	remaining := p.Tasks
	for remaining > 0 {
		w := avgWidth * (1 + (1-p.Regularity)*(rng.Float64()*2-1))
		width := int(math.Max(1, math.Round(w)))
		if width > remaining {
			width = remaining
		}
		layer := make([]graph.TaskID, 0, width)
		for i := 0; i < width; i++ {
			ops := p.MinOps * math.Pow(p.MaxOps/p.MinOps, rng.Float64()) // log-uniform
			wppe := ops / p.PPERate
			var wspe float64
			if rng.Float64() < p.VectorProb {
				wspe = wppe / (2 + 4*rng.Float64())
			} else {
				wspe = wppe * (1 + 1.5*rng.Float64())
			}
			t := graph.Task{WPPE: wppe, WSPE: wspe}
			if rng.Float64() < p.PeekProb {
				t.Peek = 1 + rng.Intn(p.PeekMax)
			}
			if rng.Float64() < p.StatefulProb {
				t.Stateful = true
			}
			layer = append(layer, g.AddTask(t))
		}
		layers = append(layers, layer)
		remaining -= width
	}

	// Edges: every non-first-layer task gets one guaranteed predecessor
	// from the previous layer, plus extra predecessors with probability
	// Density from up to Jump layers back. Payload sizes are drawn
	// independently of task work (a stage's data rate is not tied to its
	// compute density), log-uniform across a 40× range around the mean
	// task work, then rescaled to the target CCR. This spread is what
	// makes mapping hard: the best mappings offload compute-heavy,
	// thin-data tasks to the SPEs' small local stores.
	avgOps := g.TotalComputePPE() * p.PPERate / float64(len(g.Tasks))
	payload := func() float64 {
		return avgOps * 0.15 * math.Pow(40, rng.Float64())
	}
	for li := 1; li < len(layers); li++ {
		for _, id := range layers[li] {
			base := layers[li-1][rng.Intn(len(layers[li-1]))]
			g.AddEdge(base, id, payload())
			for back := 1; back <= p.Jump && li-back >= 0; back++ {
				if rng.Float64() >= p.Density/float64(back) {
					continue
				}
				cand := layers[li-back][rng.Intn(len(layers[li-back]))]
				if cand == base {
					continue
				}
				if _, dup := g.EdgeBetween(cand, id); !dup {
					g.AddEdge(cand, id, payload())
				}
			}
		}
	}

	// Main-memory traffic: sources read the input stream, sinks write
	// the output, some interior tasks touch memory too.
	srcSet := map[graph.TaskID]bool{}
	for _, s := range g.Sources() {
		srcSet[s] = true
	}
	sinkSet := map[graph.TaskID]bool{}
	for _, s := range g.Sinks() {
		sinkSet[s] = true
	}
	for k := range g.Tasks {
		id := graph.TaskID(k)
		ops := g.Tasks[k].WPPE * p.PPERate
		switch {
		case srcSet[id]:
			g.Tasks[k].ReadBytes = ops
		case sinkSet[id]:
			g.Tasks[k].WriteBytes = ops
		case rng.Float64() < p.MemIOProb:
			if rng.Intn(2) == 0 {
				g.Tasks[k].ReadBytes = ops * 0.3
			} else {
				g.Tasks[k].WriteBytes = ops * 0.3
			}
		}
	}

	if p.CCR > 0 {
		ScaleToCCR(g, p.CCR, p.ElementBytes, 1/p.PPERate)
	}
	if err := g.Validate(); err != nil {
		panic("daggen: generated invalid graph: " + err.Error())
	}
	return g
}

// ScaleToCCR rescales every communication payload (edges and memory
// traffic) so that g.CCR(elementBytes, opSeconds) equals target.
func ScaleToCCR(g *graph.Graph, target, elementBytes, opSeconds float64) {
	cur := g.CCR(elementBytes, opSeconds)
	if cur == 0 || math.IsInf(cur, 0) || math.IsNaN(cur) {
		return
	}
	g.ScaleCommunication(target / cur)
}

// The paper evaluates three DagGen graphs (§6.2): two branchy random
// graphs of ≈50 and ≈94 tasks (Fig. 5) and a 50-task chain, each in six
// CCR variants from 0.775 to 4.6.

// PaperCCRs are the six CCR variants used in §6.2 (the paper names the
// endpoints 0.775 and 4.6).
var PaperCCRs = []float64{0.775, 1.2, 1.8, 2.6, 3.5, 4.6}

// PaperGraph1 is the ≈50-task narrow random graph of Fig. 5(a).
func PaperGraph1(ccr float64) *graph.Graph {
	g := Generate(Params{Tasks: 50, Fat: 0.35, Regularity: 0.6, Density: 0.4, Jump: 2, Seed: 1, CCR: ccr})
	g.Name = fmt.Sprintf("paper-graph1-ccr%.3g", ccr)
	return g
}

// PaperGraph2 is the ≈94-task wider random graph of Fig. 5(b).
func PaperGraph2(ccr float64) *graph.Graph {
	g := Generate(Params{Tasks: 94, Fat: 0.55, Regularity: 0.4, Density: 0.18, Jump: 2, Seed: 2, CCR: ccr})
	g.Name = fmt.Sprintf("paper-graph2-ccr%.3g", ccr)
	return g
}

// PaperGraph3Seed is the published seed of the 50-task chain (the
// other paper graphs use seeds 1 and 2 through Params.Seed; the chain
// used to hardcode its rand.NewSource(3), invisible to callers).
const PaperGraph3Seed = 3

// PaperGraph3 is the 50-task chain at the published seed.
func PaperGraph3(ccr float64) *graph.Graph {
	return PaperGraph3Seeded(ccr, PaperGraph3Seed)
}

// PaperGraph3Seeded is the 50-task chain with explicit seeding: the
// cost model, peek/stateful draws, payload sizes and CCR rescaling all
// flow through Params exactly like the layered paper graphs, so the
// seed and CCR plumbing is uniform across the three generators.
// PaperGraph3Seeded(ccr, PaperGraph3Seed) reproduces the published
// default bit-for-bit.
func PaperGraph3Seeded(ccr float64, seed int64) *graph.Graph {
	p := Params{Tasks: 50, Seed: seed, CCR: ccr}
	p.fill()
	rng := rand.New(rand.NewSource(p.Seed))
	g := graph.Chain("paper-graph3", p.Tasks,
		func(int) float64 { return 0 }, // filled below
		func(int) float64 { return 0 },
		func(int) float64 { return 0 })
	for k := range g.Tasks {
		ops := p.MinOps * math.Pow(p.MaxOps/p.MinOps, rng.Float64())
		g.Tasks[k].WPPE = ops / p.PPERate
		if rng.Float64() < p.VectorProb {
			g.Tasks[k].WSPE = g.Tasks[k].WPPE / (2 + 4*rng.Float64())
		} else {
			g.Tasks[k].WSPE = g.Tasks[k].WPPE * (1 + 1.5*rng.Float64())
		}
		if rng.Float64() < p.PeekProb {
			g.Tasks[k].Peek = 1 + rng.Intn(p.PeekMax)
		}
		if rng.Float64() < p.StatefulProb {
			g.Tasks[k].Stateful = true
		}
	}
	avgOps := g.TotalComputePPE() * p.PPERate / float64(len(g.Tasks))
	for e := range g.Edges {
		g.Edges[e].Bytes = avgOps * 0.15 * math.Pow(40, rng.Float64())
	}
	g.Tasks[0].ReadBytes = g.Tasks[0].WPPE * p.PPERate
	last := g.NumTasks() - 1
	g.Tasks[last].WriteBytes = g.Tasks[last].WPPE * p.PPERate
	if p.CCR > 0 {
		ScaleToCCR(g, p.CCR, p.ElementBytes, 1/p.PPERate)
	}
	// The published default keeps its historical name; other seeds are
	// distinguished so sweeps never collide on graph-name keys.
	if seed == PaperGraph3Seed {
		g.Name = fmt.Sprintf("paper-graph3-ccr%.3g", ccr)
	} else {
		g.Name = fmt.Sprintf("paper-graph3-s%d-ccr%.3g", seed, ccr)
	}
	return g
}

// PaperGraphs returns the three evaluation graphs at the given CCR.
func PaperGraphs(ccr float64) []*graph.Graph {
	return []*graph.Graph{PaperGraph1(ccr), PaperGraph2(ccr), PaperGraph3(ccr)}
}
