package daggen

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"cellstream/internal/graph"
)

func TestGenerateValidAndSized(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := Generate(Params{Tasks: 30, Seed: seed})
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if g.NumTasks() != 30 {
			t.Errorf("seed %d: %d tasks, want 30", seed, g.NumTasks())
		}
		if g.NumEdges() < 29 {
			t.Errorf("seed %d: only %d edges (graph must be connected layer-to-layer)", seed, g.NumEdges())
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Generate(Params{Tasks: 25, Seed: 42, CCR: 1.3})
	b := Generate(Params{Tasks: 25, Seed: 42, CCR: 1.3})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ for identical seeds")
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("task %d differs", i)
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c := Generate(Params{Tasks: 25, Seed: 43, CCR: 1.3})
	same := c.NumEdges() == a.NumEdges()
	if same {
		same = false
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestCCRTargetHit(t *testing.T) {
	for _, ccr := range PaperCCRs {
		g := Generate(Params{Tasks: 40, Seed: 7, CCR: ccr})
		got := g.CCR(DefaultElementBytes, 1/DefaultPPERate)
		if math.Abs(got-ccr)/ccr > 1e-9 {
			t.Errorf("CCR = %v, want %v", got, ccr)
		}
	}
}

func TestScaleToCCR(t *testing.T) {
	g := graph.UniformChain("c", 4, 1e-6, 1e-6, 512)
	ScaleToCCR(g, 2.5, 4, 1e-9)
	if got := g.CCR(4, 1e-9); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("CCR = %v, want 2.5", got)
	}
	// Degenerate graphs must not panic or produce NaNs.
	empty := &graph.Graph{Name: "e"}
	empty.AddTask(graph.Task{})
	ScaleToCCR(empty, 2, 4, 1e-9)
}

func TestUnrelatedMachineCosts(t *testing.T) {
	g := Generate(Params{Tasks: 200, Seed: 3})
	fast, slow := 0, 0
	for _, task := range g.Tasks {
		if task.WSPE < task.WPPE {
			fast++
		} else {
			slow++
		}
		if task.WPPE <= 0 || task.WSPE <= 0 {
			t.Fatalf("non-positive cost: %+v", task)
		}
	}
	// ~75% SPE-friendly by default; both classes must exist.
	if fast < 100 || slow < 10 {
		t.Errorf("cost classes unbalanced: %d fast, %d slow on SPE", fast, slow)
	}
}

func TestMemoryTrafficAtEndpoints(t *testing.T) {
	g := Generate(Params{Tasks: 40, Seed: 9})
	for _, s := range g.Sources() {
		if g.Tasks[s].ReadBytes <= 0 {
			t.Errorf("source %d reads nothing", s)
		}
	}
	for _, s := range g.Sinks() {
		if g.Tasks[s].WriteBytes <= 0 {
			t.Errorf("sink %d writes nothing", s)
		}
	}
}

func TestPaperGraphShapes(t *testing.T) {
	g1 := PaperGraph1(0.775)
	if g1.NumTasks() != 50 {
		t.Errorf("graph1: %d tasks", g1.NumTasks())
	}
	g2 := PaperGraph2(0.775)
	if g2.NumTasks() != 94 {
		t.Errorf("graph2: %d tasks", g2.NumTasks())
	}
	g3 := PaperGraph3(0.775)
	if g3.NumTasks() != 50 || g3.NumEdges() != 49 || g3.Depth() != 50 {
		t.Errorf("graph3 is not a 50-chain: %v", g3)
	}
	for _, g := range []*graph.Graph{g1, g2, g3} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if got := g.CCR(DefaultElementBytes, 1/DefaultPPERate); math.Abs(got-0.775) > 1e-6 {
			t.Errorf("%s: CCR %v, want 0.775", g.Name, got)
		}
	}
	if len(PaperGraphs(1.2)) != 3 {
		t.Error("PaperGraphs must return the three evaluation graphs")
	}
}

func TestFatControlsWidth(t *testing.T) {
	narrow := Generate(Params{Tasks: 60, Fat: 0.2, Seed: 4})
	wide := Generate(Params{Tasks: 60, Fat: 1.5, Seed: 4})
	if narrow.Depth() <= wide.Depth() {
		t.Errorf("narrow depth %d should exceed wide depth %d", narrow.Depth(), wide.Depth())
	}
}

func TestQuickGeneratedGraphsAlwaysValid(t *testing.T) {
	f := func(seed int64, nRaw, fatRaw uint8) bool {
		n := int(nRaw%60) + 1
		fat := 0.1 + float64(fatRaw%20)/10
		g := Generate(Params{Tasks: n, Fat: fat, Seed: seed, CCR: 0.5 + float64(nRaw%5)})
		return g.Validate() == nil && g.NumTasks() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPaperGraph3SeedPlumbing pins the chain generator's seeding
// contract after routing it through Params: deterministic across
// calls, the published default equal to the explicit-seed form, a
// different seed actually reaching the cost model, and the pinned
// first-task cost guarding the RNG call order bit-for-bit (a silent
// change would alter every figure regenerated from the chain graph).
func TestPaperGraph3SeedPlumbing(t *testing.T) {
	a := PaperGraph3(0.775)
	b := PaperGraph3(0.775)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PaperGraph3 is not deterministic across calls")
	}
	if c := PaperGraph3Seeded(0.775, PaperGraph3Seed); !reflect.DeepEqual(a, c) {
		t.Fatal("PaperGraph3Seeded(ccr, PaperGraph3Seed) differs from the published default")
	}
	if d := PaperGraph3Seeded(0.775, 4); reflect.DeepEqual(a.Tasks, d.Tasks) {
		t.Fatal("changing the seed did not change the generated chain")
	}
	if g := math.Abs(a.Tasks[0].WPPE - 1.1574485712406015e-05); g > 1e-20 {
		t.Fatalf("pinned WPPE[0] drifted: %g", a.Tasks[0].WPPE)
	}
	for _, ccr := range PaperCCRs {
		g := PaperGraph3Seeded(ccr, 9)
		if got := g.CCR(DefaultElementBytes, 1/DefaultPPERate); math.Abs(got-ccr) > 1e-9*ccr {
			t.Fatalf("CCR %g at seed 9: generated chain has CCR %g", ccr, got)
		}
	}
}
