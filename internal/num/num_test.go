package num

import (
	"math"
	"testing"
)

func TestEqAbs(t *testing.T) {
	if !EqAbs(1.0, 1.0+1e-10, FeasTol) {
		t.Error("EqAbs should accept a difference below tol")
	}
	if EqAbs(1.0, 1.0+1e-8, FeasTol) {
		t.Error("EqAbs should reject a difference above tol")
	}
	if !EqAbs(0, 0, 0) {
		t.Error("EqAbs(0,0,0) must hold")
	}
}

func TestEqRel(t *testing.T) {
	// Absolute near zero.
	if !EqRel(0, 5e-10, FeasTol) {
		t.Error("EqRel should be absolute near zero")
	}
	// Relative at scale: 1e9 vs 1e9+1 differ by 1, within 1e-9*(1+1e9).
	if !EqRel(1e9, 1e9+1, FeasTol) {
		t.Error("EqRel should scale with magnitude")
	}
	if EqRel(1e9, 1e9+10, FeasTol) {
		t.Error("EqRel should reject beyond the scaled window")
	}
	// Symmetry.
	if EqRel(2.0, 1.0, FeasTol) || EqRel(1.0, 2.0, FeasTol) {
		t.Error("EqRel must reject clearly different values either way")
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero(-5e-10, FeasTol) || IsZero(2e-9, FeasTol) {
		t.Error("IsZero window wrong")
	}
	if !IsZero(0, 0) {
		t.Error("IsZero(0,0) must hold")
	}
}

// TestToleranceOrdering pins the relationships the solver relies on:
// a reordering (say FeasTol loosened past IntegralityTol) would change
// solve trajectories even with every use site untouched.
func TestToleranceOrdering(t *testing.T) {
	ordered := []struct {
		name string
		lo   float64
		hi   float64
	}{
		{"DropTol < RatioTol", DropTol, RatioTol},
		{"RatioTol < RescuePivRel", RatioTol, RescuePivRel},
		{"RescuePivRel < FeasTol", RescuePivRel, FeasTol},
		{"FeasTol < PivTol", FeasTol, PivTol},
		{"PivTol < DualTol", PivTol, DualTol},
		{"DualTol < IntegralityTol", DualTol, IntegralityTol},
		{"StrictEps < FeasTol", StrictEps, FeasTol},
	}
	for _, o := range ordered {
		if !(o.lo < o.hi) {
			t.Errorf("%s violated: %g >= %g", o.name, o.lo, o.hi)
		}
	}
	for _, v := range []float64{FeasTol, PivTol, DualTol, IntegralityTol,
		RatioTol, BoundSnapTol, LooseFeasTol, StabTol, DSEFloor, DropTol,
		RescuePivRel, StrictEps, DenomFloor, ObjImproveEps} {
		if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("tolerance %g must be a positive finite value", v)
		}
	}
}
