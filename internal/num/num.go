// Package num is the single source of truth for the numerical
// tolerances shared by the solver packages (lp, milp, and their
// presolve/cut layers). Before this package existed the same handful
// of epsilons — 1e-6, 1e-7, 1e-8, 1e-9, 1e-12 — were scattered across
// sixteen-plus files as bare literals, and the PR 3/4 fuzzing
// campaigns repeatedly traced real solver bugs to ad-hoc choices among
// them. Every named constant below is value-preserving with respect to
// the literals it replaced: consolidating them here changed no solve
// trajectory (the byte-for-byte determinism tests and the
// BENCH-snapshot node-count gates pin that).
//
// The schedlint floatcmp analyzer (internal/analysis/floatcmp) keeps
// this the single home: inline epsilon literals in lp/milp code are
// build-breaking findings, and float ==/!= on computed values must go
// through a tolerance comparison (the helpers below) or carry an
// explicit //lint:allow floatcmp justification.
//
// Two constants sharing a value (e.g. FeasTol and StabTol, both 1e-9)
// are deliberate: they guard different invariants and may diverge
// independently; collapsing them would re-create the ambiguity this
// package removes.
package num

import "math"

const (
	// FeasTol is the primal feasibility tolerance: the per-step bound
	// relaxation of the Harris ratio tests and the default
	// feasibility/optimality tolerance of both simplex engines
	// (lp.Options.Tol's zero value resolves to it).
	FeasTol = 1e-9

	// PivTol is the pivot-magnitude floor: tableau entries below it
	// never pivot and never block a ratio test (they are elimination
	// noise, not signal). It also floors coefficient magnitudes in
	// presolve substitution decisions.
	PivTol = 1e-8

	// DualTol is the dual feasibility tolerance of the warm-start dual
	// simplex phase: reduced costs within DualTol of zero are treated
	// as dual feasible.
	DualTol = 1e-7

	// IntegralityTol is the MILP integrality tolerance: x is integral
	// when |x - round(x)| <= IntegralityTol. milp.Options.IntTol's zero
	// value resolves to it.
	IntegralityTol = 1e-6

	// RatioTol is the ratio-test tie window and degenerate-step
	// threshold: steps within RatioTol of the best are ties (broken on
	// the lowest basis index, for determinism) and steps below it are
	// degenerate.
	RatioTol = 1e-12

	// BoundSnapTol is how far a solution value may sit outside a
	// variable bound and still be snapped onto it when extracting X,
	// and the bound-violation slack of incumbent checks. Shares
	// IntegralityTol's value but guards extraction, not integrality.
	BoundSnapTol = 1e-6

	// LooseFeasTol is the relaxed "feasible up to tolerance" threshold
	// used where accumulated round-off must be forgiven: phase-1
	// residual acceptance, warm-start basic-value looseness, and
	// cut-slack activity tests. Always scaled by the magnitudes
	// involved at the use site.
	LooseFeasTol = 1e-7

	// StabTol is the numerical-stability trigger: Forrest–Tomlin drift
	// checks and degraded-pivot detection refactorize when residuals
	// pass it. Shares FeasTol's value but guards factorization health,
	// not feasibility.
	StabTol = 1e-9

	// DSEFloor floors the approximate dual steepest-edge row norms so
	// a collapsing weight cannot blow up the viol²/β score.
	DSEFloor = 1e-8

	// DropTol is the sparse LU elimination drop tolerance: fill-in
	// below it is discarded during factorization.
	DropTol = 1e-13

	// RescuePivRel is the column-relative pivot floor of the rescue
	// ratio-test scan that distinguishes a genuine unbounded ray from
	// a badly scaled blocking row (PR 4 fuzz find #1).
	RescuePivRel = 1e-11

	// StrictEps is the strict floating-point margin for decisions that
	// must not absorb model-scale noise: relative-gap slack,
	// presolve's fp-margin-only substitution acceptance, and GMI
	// coefficient pruning.
	StrictEps = 1e-12

	// DenomFloor floors denominators of relative measures
	// (gap = (obj-bound)/max(|obj|, DenomFloor), per-unit pseudocost
	// gains) so tiny objectives cannot inflate them.
	DenomFloor = 1e-9

	// ObjImproveEps is the minimum objective improvement for a new
	// MILP incumbent to replace the current one — strict enough to
	// matter, loose enough that re-deriving the same point never
	// "improves" by round-off.
	ObjImproveEps = 1e-9
)

// EqAbs reports |a-b| <= tol. Use it instead of == on computed floats;
// tol should be a named tolerance from this package (or derived from
// one).
func EqAbs(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// EqRel reports |a-b| <= tol*(1+max(|a|,|b|)): absolute near zero,
// relative at scale. The standard agreement test of the differential
// suites.
func EqRel(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// IsZero reports |x| <= tol.
func IsZero(x, tol float64) bool {
	return math.Abs(x) <= tol
}
