package lptest

import (
	"math"
	"math/rand"
	"testing"

	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/lp"
	"cellstream/internal/platform"
)

// TestDifferentialPricingConfigs runs the dense-vs-sparse agreement
// check for the PR 7 pricing rules — forced partial pricing and the
// max-violation dual-row ablation — over the random generator.
func TestDifferentialPricingConfigs(t *testing.T) {
	for _, cfg := range PricingConfigs {
		rng := rand.New(rand.NewSource(23))
		for trial := 0; trial < 200; trial++ {
			p := Random(rng)
			if err := CheckAgreementOpts(p, cfg.Opt); err != nil {
				t.Fatalf("%s: trial %d: %v", cfg.Name, trial, err)
			}
		}
	}
}

// TestWarmChainPricingConfigs drives warm re-solve chains under the new
// pricing rules against the cold dense reference.
func TestWarmChainPricingConfigs(t *testing.T) {
	trials := 80
	if testing.Short() {
		trials = 20
	}
	for _, cfg := range PricingConfigs {
		for _, warm := range []bool{true, false} {
			rng := rand.New(rand.NewSource(29))
			for trial := 0; trial < trials; trial++ {
				p := Random(rng)
				sub := rand.New(rand.NewSource(rng.Int63()))
				if err := CheckWarmChainOpts(p, sub, 8, cfg.Opt, warm); err != nil {
					t.Fatalf("%s warm=%v: trial %d: %v", cfg.Name, warm, trial, err)
				}
			}
		}
	}
}

// TestPartialPricingSegmentsAgree solves the paper's compact mapping
// formulation under several forced segment sizes (and the automatic
// threshold) and requires the optimal objective to match the full-scan
// solve — partial pricing changes the pivot path, never the optimum.
func TestPartialPricingSegmentsAgree(t *testing.T) {
	g := daggen.Generate(daggen.Params{Tasks: 12, Seed: 5, CCR: 1})
	plat := platform.Cell(1, 3)
	p := core.FormulateCompact(g, plat).Problem.LP

	ref, err := lp.SolveOpts(p, lp.Options{PartialPricing: -1})
	if err != nil || ref.Status != lp.Optimal {
		t.Fatalf("reference solve: err=%v status=%v", err, ref.Status)
	}
	for _, seg := range []int{64, 256, 1024, 0} {
		sol, err := lp.SolveOpts(p, lp.Options{PartialPricing: seg})
		if err != nil {
			t.Fatalf("segment %d: %v", seg, err)
		}
		if sol.Status != lp.Optimal {
			t.Fatalf("segment %d: status %v", seg, sol.Status)
		}
		scale := 1 + math.Abs(ref.Objective)
		if diff := math.Abs(sol.Objective - ref.Objective); diff > Tol*scale {
			t.Fatalf("segment %d: objective %.12g vs reference %.12g", seg, sol.Objective, ref.Objective)
		}
	}
}
