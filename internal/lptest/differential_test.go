package lptest

import (
	"math"
	"math/rand"
	"testing"

	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/lp"
	"cellstream/internal/platform"
)

// TestDifferentialRandom runs both engines on ~200 seeded random LPs
// and requires identical statuses and objectives within Tol. The seed
// is fixed so failures reproduce.
func TestDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	statusSeen := map[lp.Status]int{}
	const trials = 220
	for trial := 0; trial < trials; trial++ {
		p := Random(rng)
		if err := CheckAgreement(p); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sol, err := lp.Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		statusSeen[sol.Status]++
	}
	t.Logf("status coverage over %d trials: %v", trials, statusSeen)
	for _, st := range []lp.Status{lp.Optimal, lp.Infeasible, lp.Unbounded} {
		if statusSeen[st] == 0 {
			t.Errorf("random generator never produced a %v instance", st)
		}
	}
}

// TestDifferentialDegenerate pins classic hard shapes: Beale's cycling
// example, heavy primal degeneracy, redundant rows, and fixed chains.
func TestDifferentialDegenerate(t *testing.T) {
	cases := map[string]func() *lp.Problem{
		"beale": func() *lp.Problem {
			p := lp.New(4)
			p.SetObj(0, -0.75)
			p.SetObj(1, 150)
			p.SetObj(2, -0.02)
			p.SetObj(3, 6)
			p.AddRow([]lp.Coef{{Var: 0, Value: 0.25}, {Var: 1, Value: -60}, {Var: 2, Value: -0.04}, {Var: 3, Value: 9}}, lp.LE, 0)
			p.AddRow([]lp.Coef{{Var: 0, Value: 0.5}, {Var: 1, Value: -90}, {Var: 2, Value: -0.02}, {Var: 3, Value: 3}}, lp.LE, 0)
			p.AddRow([]lp.Coef{{Var: 2, Value: 1}}, lp.LE, 1)
			return p
		},
		"degenerate-vertex": func() *lp.Problem {
			// Many redundant constraints meeting at the origin.
			p := lp.New(3)
			for j := 0; j < 3; j++ {
				p.SetObj(j, -1)
				p.SetBounds(j, 0, 2)
			}
			for i := 0; i < 6; i++ {
				p.AddRow([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}, {Var: 2, Value: 1}}, lp.LE, 3)
			}
			p.AddRow([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: -1}}, lp.EQ, 0)
			return p
		},
		"equality-chain": func() *lp.Problem {
			const n = 25
			p := lp.New(n)
			p.SetObj(n-1, 1)
			for j := 0; j < n; j++ {
				p.SetBounds(j, 0, 10)
			}
			p.AddRow([]lp.Coef{{Var: 0, Value: 1}}, lp.EQ, 3)
			for j := 0; j+1 < n; j++ {
				p.AddRow([]lp.Coef{{Var: j, Value: 1}, {Var: j + 1, Value: -1}}, lp.EQ, 0)
			}
			return p
		},
		"unbounded-free": func() *lp.Problem {
			p := lp.New(2)
			p.SetObj(0, 1)
			p.SetBounds(0, math.Inf(-1), math.Inf(1))
			p.AddRow([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, lp.LE, 5)
			return p
		},
		"unbounded-ray": func() *lp.Problem {
			p := lp.New(2)
			p.SetObj(0, -1)
			p.SetObj(1, -1)
			p.AddRow([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: -1}}, lp.LE, 2)
			return p
		},
		"infeasible-rows": func() *lp.Problem {
			p := lp.New(2)
			p.AddRow([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, lp.GE, 10)
			p.AddRow([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, lp.LE, 4)
			return p
		},
		"infeasible-eq": func() *lp.Problem {
			p := lp.New(1)
			p.AddRow([]lp.Coef{{Var: 0, Value: 1}}, lp.EQ, 2)
			p.AddRow([]lp.Coef{{Var: 0, Value: 2}}, lp.EQ, 5)
			return p
		},
		"rescue-ratio-test": func() *lp.Problem {
			// Bounded model whose only blocking row prices at 2.5e-9 —
			// below the ratio test's noise threshold — once the 4e8
			// column is basic. Both engines used to declare a false
			// unbounded ray here (found by FuzzPresolveRoundTrip); the
			// sub-pivTol rescue pass must recover the blocker.
			p := lp.New(2)
			p.SetObj(0, -1)
			p.SetObj(1, -1)
			p.AddRow([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 4e8}}, lp.LE, 6)
			return p
		},
		"badly-scaled": func() *lp.Problem {
			p := lp.New(2)
			p.SetObj(0, 1)
			p.SetBounds(0, 0, math.Inf(1))
			p.SetBounds(1, 0, 1)
			p.AddRow([]lp.Coef{{Var: 1, Value: 1e5}, {Var: 0, Value: -2.5e10}}, lp.LE, 0)
			p.AddRow([]lp.Coef{{Var: 1, Value: 1}}, lp.GE, 1)
			return p
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			if err := CheckAgreement(build()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDifferentialDegenerateRandom runs the degeneracy-biased generator
// (free variables, fixed columns, equality and duplicated rows) through
// the agreement check, then through a warm-started re-solve chain.
func TestDifferentialDegenerateRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	trials := 150
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		p := RandomDegenerate(rng)
		if err := CheckAgreement(p); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckWarmChain(p, rng, 6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestDifferentialWarmChains drives random single-bound-change re-solve
// chains — the exact access pattern of warm-started branch-and-bound —
// against the cold dense reference, over both generators.
func TestDifferentialWarmChains(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	trials := 120
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		p := Random(rng)
		if err := CheckWarmChain(p, rng, 10); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestWarmChainFormulations runs the warm re-solve chain on the paper's
// actual mapping programs, mutating the binary α bounds like the
// branch-and-bound does.
func TestWarmChainFormulations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := daggen.Generate(daggen.Params{Tasks: 8, Seed: 6, CCR: 1})
	plat := platform.Cell(1, 2)
	for _, f := range []*core.Formulation{
		core.FormulateCompact(g, plat),
		core.FormulateLiteral(g, plat),
	} {
		steps := 12
		if testing.Short() {
			steps = 5
		}
		if err := CheckWarmChain(f.Problem.LP, rng, steps); err != nil {
			t.Errorf("%s: %v", f.Kind, err)
		}
	}
}

// TestDifferentialFormulations compares the engines on the paper's
// actual mapping programs: LP relaxations of both the compact and the
// literal formulation over generated task graphs and Cell platforms.
func TestDifferentialFormulations(t *testing.T) {
	type inst struct {
		tasks int
		seed  int64
		ccr   float64
		nPPE  int
		nSPE  int
	}
	insts := []inst{
		{tasks: 6, seed: 1, ccr: 0.775, nPPE: 1, nSPE: 2},
		{tasks: 9, seed: 2, ccr: 1.8, nPPE: 1, nSPE: 3},
		{tasks: 12, seed: 5, ccr: 1, nPPE: 1, nSPE: 3},
	}
	if !testing.Short() {
		insts = append(insts,
			inst{tasks: 16, seed: 11, ccr: 4.6, nPPE: 1, nSPE: 4},
			inst{tasks: 20, seed: 3, ccr: 0.775, nPPE: 2, nSPE: 4},
		)
	}
	for _, in := range insts {
		g := daggen.Generate(daggen.Params{Tasks: in.tasks, Seed: in.seed, CCR: in.ccr})
		plat := platform.Cell(in.nPPE, in.nSPE)
		for _, f := range []*core.Formulation{
			core.FormulateCompact(g, plat),
			core.FormulateLiteral(g, plat),
		} {
			if err := CheckAgreement(f.Problem.LP); err != nil {
				t.Errorf("%s/%s (%d tasks, %d PEs): %v", g.Name, f.Kind, in.tasks, plat.NumPE(), err)
			}
		}
	}
}

// TestDifferentialPresolveEmptyRow pins the empty-row regression: a row
// whose surviving coefficients are all zero after fixed-column
// substitution must be decided by presolve — Infeasible when its RHS is
// unsatisfiable, dropped otherwise — never passed through to inflate
// the reduced problem's tolerances. The pinned instance used to come
// back Optimal from the presolved path (the 2e8 coefficient on a fixed
// column inflated the reduced RHS scale until phase 1 absorbed the
// violated empty EQ row) while both direct engines agreed on
// Infeasible.
func TestDifferentialPresolveEmptyRow(t *testing.T) {
	p := lp.New(3)
	p.SetObj(0, -1)
	p.SetObj(1, -3)
	p.SetObj(2, 1)
	p.SetBounds(0, 0, 3)
	p.SetBounds(1, 1.0/3, 1.0/3)
	p.SetBounds(2, 0, 5)
	p.AddRow([]lp.Coef{{Var: 1, Value: -2}, {Var: 2, Value: 0}}, lp.EQ, 2) // empty: -2/3 = 2
	p.AddRow([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 2}}, lp.LE, 0)
	p.AddRow([]lp.Coef{{Var: 0, Value: 0}, {Var: 1, Value: -2e8}}, lp.LE, 4)
	p.AddRow([]lp.Coef{{Var: 1, Value: -3}, {Var: 2, Value: 0}}, lp.GE, -4)
	pre, err := lp.SolveOpts(p, lp.Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Status != lp.Infeasible {
		t.Fatalf("presolved status %v, want infeasible", pre.Status)
	}
	if pre.Stats.Iterations != 0 {
		t.Fatalf("presolve should prove the empty row infeasible without pivots, took %d", pre.Stats.Iterations)
	}
	dense, err := lp.SolveDense(p)
	if err != nil {
		t.Fatal(err)
	}
	if dense.Status != lp.Infeasible {
		t.Fatalf("dense reference status %v, want infeasible", dense.Status)
	}

	// And a satisfiable empty row must still be dropped, not flagged.
	q := lp.New(2)
	q.SetObj(1, 1)
	q.SetBounds(0, 2, 2)
	q.SetBounds(1, 0, 5)
	q.AddRow([]lp.Coef{{Var: 0, Value: 3}}, lp.LE, 7) // 6 <= 7: drop
	q.AddRow([]lp.Coef{{Var: 1, Value: 1}}, lp.GE, 1)
	sol, err := lp.SolveOpts(q, lp.Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both rows are singletons to the pipeline (3·x0 ≤ 7 is consumed as
	// a redundant singleton row before the fixed column is substituted,
	// and x1 ≥ 1 becomes a bound), so both rows are eliminated.
	if sol.Status != lp.Optimal || sol.Stats.PresolvedRows != 2 {
		t.Fatalf("consistent empty row: status %v, presolvedRows %d", sol.Status, sol.Stats.PresolvedRows)
	}
	if sol.Stats.PresolveSingletonRows != 2 {
		t.Fatalf("consistent empty row: singleton rows %d, want 2", sol.Stats.PresolveSingletonRows)
	}
}

// TestDifferentialPresolveFixedSubstitution fuzzes presolve against the
// dense reference on programs biased toward the regression's shape:
// many fixed columns (non-integer values, so substitution leaves
// residues), zero coefficients, and coefficient scales up to 1e6 so
// substitution magnifies the RHS. Presolve and the dense engine must
// agree on status everywhere.
func TestDifferentialPresolveFixedSubstitution(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 1500
	if testing.Short() {
		trials = 300
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(3)
		p := lp.New(n)
		for j := 0; j < n; j++ {
			p.SetObj(j, math.Round(rng.NormFloat64()*3))
			if rng.Intn(2) == 0 {
				v := float64(rng.Intn(7)-3) / 3
				p.SetBounds(j, v, v)
			} else {
				p.SetBounds(j, 0, float64(1+rng.Intn(5)))
			}
		}
		m := 1 + rng.Intn(4)
		for i := 0; i < m; i++ {
			var coefs []lp.Coef
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					scale := 1.0
					if rng.Intn(3) == 0 {
						scale = math.Pow(10, float64(rng.Intn(7)))
					}
					coefs = append(coefs, lp.Coef{Var: j, Value: float64(rng.Intn(7)-3) * scale})
				}
			}
			if len(coefs) == 0 {
				coefs = []lp.Coef{{Var: rng.Intn(n), Value: 0}}
			}
			sense := []lp.Sense{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
			p.AddRow(coefs, sense, float64(rng.Intn(9)-4))
		}
		pre, err := lp.SolveOpts(p, lp.Options{Presolve: true})
		if err != nil {
			t.Fatalf("trial %d: presolve: %v", trial, err)
		}
		dense, err := lp.SolveDense(p)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if pre.Status != dense.Status {
			t.Fatalf("trial %d: status mismatch presolve=%v dense=%v", trial, pre.Status, dense.Status)
		}
	}
}

// TestDifferentialPresolveAdversarial drives the presolve-adversarial
// generator (singleton chains, duplicate columns, tightening-to-fixed
// cascades, free column singletons) through the full agreement check,
// a presolve-vs-dense status/objective comparison, and warm re-solve
// chains — so every reduction of the pipeline is differentially tested
// in one sweep.
func TestDifferentialPresolveAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	trials := 150
	if testing.Short() {
		trials = 40
	}
	reduced := 0
	for trial := 0; trial < trials; trial++ {
		p := RandomPresolveAdversarial(rng)
		if err := CheckAgreement(p); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pre, err := lp.SolveOpts(p, lp.Options{Presolve: true})
		if err != nil {
			t.Fatalf("trial %d: presolve: %v", trial, err)
		}
		dense, err := lp.SolveDense(p)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if pre.Status != dense.Status {
			t.Fatalf("trial %d: status mismatch presolve=%v dense=%v (stats %+v)",
				trial, pre.Status, dense.Status, pre.Stats)
		}
		if pre.Status == lp.Optimal {
			if v := Violation(p, pre.X); v > FeasTol {
				t.Fatalf("trial %d: postsolved point violates constraints by %g", trial, v)
			}
			scale := 1 + math.Abs(dense.Objective)
			if diff := math.Abs(pre.Objective - dense.Objective); diff > Tol*scale {
				t.Fatalf("trial %d: objective mismatch presolve=%.12g dense=%.12g (stats %+v)",
					trial, pre.Objective, dense.Objective, pre.Stats)
			}
			if err := pre.Basis.Validate(p); err != nil {
				t.Fatalf("trial %d: postsolved basis: %v", trial, err)
			}
		}
		st := pre.Stats
		if st.PresolveSingletonRows+st.PresolveSingletonCols+st.PresolveDupCols+st.PresolveTightened > 0 {
			reduced++
		}
		if err := CheckWarmChain(p, rng, 6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if reduced < trials/2 {
		t.Errorf("adversarial generator only triggered presolve reductions on %d/%d trials", reduced, trials)
	}
}

// TestPostsolvedBasisValid is the structural property of satellite
// scope: every Basis a presolved solve returns — across the {LU, eta}
// × {Devex, steepest} × {warm, cold} cross product and all three
// generators — has exactly m basic columns and every nonbasic column
// resting on a finite bound or the free convention, per
// lp.Basis.Validate. (CheckWarmChainOpts additionally validates every
// basis inside the re-solve chains.)
func TestPostsolvedBasisValid(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	gens := map[string]func(*rand.Rand) *lp.Problem{
		"random":     Random,
		"degenerate": RandomDegenerate,
		"presolve":   RandomPresolveAdversarial,
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				p := gen(rng)
				var warmBasis *lp.Basis
				for _, cfg := range EngineConfigs {
					for _, warm := range []bool{false, true} {
						opt := cfg.Opt
						opt.Presolve = true
						if warm {
							if warmBasis == nil {
								continue
							}
							opt.WarmStart = warmBasis
						}
						sol, err := lp.SolveOpts(p, opt)
						if err != nil {
							t.Fatalf("trial %d %s warm=%v: %v", trial, cfg.Name, warm, err)
						}
						if sol.Status != lp.Optimal {
							continue
						}
						if err := sol.Basis.Validate(p); err != nil {
							t.Fatalf("trial %d %s warm=%v: %v (stats %+v)",
								trial, cfg.Name, warm, err, sol.Stats)
						}
						warmBasis = sol.Basis
					}
				}
			}
		})
	}
}

// TestDifferentialRelaxationBounds re-checks that the sparse engine's
// relaxation value is a valid lower bound for the integral optimum
// found by the exact MILP search on a small instance.
func TestDifferentialRelaxationBounds(t *testing.T) {
	g := daggen.Generate(daggen.Params{Tasks: 7, Seed: 4, CCR: 0.775})
	plat := platform.Cell(1, 2)
	f := core.FormulateCompact(g, plat)
	relax, err := lp.Solve(f.Problem.LP)
	if err != nil {
		t.Fatal(err)
	}
	if relax.Status != lp.Optimal {
		t.Fatalf("relaxation status %v", relax.Status)
	}
	res, err := core.SolveMILP(g, plat, core.SolveOptions{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if relax.Objective > res.Report.Period+1e-6 {
		t.Errorf("LP relaxation %.9g exceeds integral optimum %.9g",
			relax.Objective, res.Report.Period)
	}
}
