// Package lptest is the differential-test harness for the two LP
// engines of package lp: the sparse revised simplex behind lp.Solve and
// the dense tableau reference behind lp.SolveDense. It generates seeded
// random programs — including degenerate, unbounded and infeasible
// shapes — and asserts that both engines agree on status and, at
// optimality, on the objective within Tol, with both solution points
// satisfying every constraint.
//
// The harness is a plain library so that other packages (e.g. the
// formulation tests in internal/core) can reuse the agreement check on
// their own programs.
package lptest

import (
	"fmt"
	"math"
	"math/rand"

	"cellstream/internal/lp"
)

// Tol is the objective agreement tolerance between the two engines.
const Tol = 1e-6

// FeasTol is the constraint-satisfaction tolerance for solution points.
const FeasTol = 1e-6

// EngineConfig names one sparse-engine configuration of the
// {factorization} × {pricing} cross product the differential suite
// exercises against the dense reference.
type EngineConfig struct {
	Name string
	Opt  lp.Options
}

// EngineConfigs enumerates the sparse-engine configurations:
// {Forrest–Tomlin LU, eta file} × {Devex, steepest edge}.
var EngineConfigs = []EngineConfig{
	{"lu-devex", lp.Options{Factorization: lp.FactorLU, Pricing: lp.PricingDevex}},
	{"lu-steepest", lp.Options{Factorization: lp.FactorLU, Pricing: lp.PricingSteepest}},
	{"eta-devex", lp.Options{Factorization: lp.FactorEta, Pricing: lp.PricingDevex}},
	{"eta-steepest", lp.Options{Factorization: lp.FactorEta, Pricing: lp.PricingSteepest}},
}

// PricingConfigs are the additional pricing-rule configurations the
// differential suite exercises on top of EngineConfigs: partial pricing
// forced on (the differential instances sit far below the automatic
// column threshold) and the max-violation dual-row ablation — the four
// EngineConfigs already cover the dual steepest-edge default. Kept out
// of EngineConfigs so the warm-chain sub-seeds of the long-standing
// configurations stay stable.
var PricingConfigs = []EngineConfig{
	{"lu-devex-partial", lp.Options{Factorization: lp.FactorLU, Pricing: lp.PricingDevex, PartialPricing: 64}},
	{"lu-devex-maxviol", lp.Options{Factorization: lp.FactorLU, Pricing: lp.PricingDevex, DualPricing: lp.DualPricingMaxViolation}},
}

// CheckAgreement solves p with the dense reference and every sparse
// engine configuration, returning an error describing the first
// disagreement: mismatched status, objectives further apart than Tol
// (scaled), or an "optimal" point that violates a constraint or bound.
func CheckAgreement(p *lp.Problem) error {
	for _, cfg := range EngineConfigs {
		if err := CheckAgreementOpts(p, cfg.Opt); err != nil {
			return fmt.Errorf("%s: %w", cfg.Name, err)
		}
	}
	return nil
}

// CheckAgreementOpts runs the dense-vs-sparse agreement check for one
// sparse-engine configuration.
func CheckAgreementOpts(p *lp.Problem, opt lp.Options) error {
	dense, err := lp.SolveDense(p)
	if err != nil {
		return fmt.Errorf("dense solver error: %w", err)
	}
	sparse, err := lp.SolveOpts(p, opt)
	if err != nil {
		return fmt.Errorf("sparse solver error: %w", err)
	}
	if dense.Status != sparse.Status {
		return fmt.Errorf("status mismatch: dense=%v sparse=%v", dense.Status, sparse.Status)
	}
	if dense.Status != lp.Optimal {
		return nil
	}
	if v := Violation(p, dense.X); v > FeasTol {
		return fmt.Errorf("dense point violates constraints by %g", v)
	}
	if v := Violation(p, sparse.X); v > FeasTol {
		return fmt.Errorf("sparse point violates constraints by %g", v)
	}
	scale := 1 + math.Abs(dense.Objective)
	if diff := math.Abs(dense.Objective - sparse.Objective); diff > Tol*scale {
		return fmt.Errorf("objective mismatch: dense=%.12g sparse=%.12g (diff %g)",
			dense.Objective, sparse.Objective, diff)
	}
	return nil
}

// Violation returns the largest constraint or bound violation of x, 0
// when x is feasible.
func Violation(p *lp.Problem, x []float64) float64 {
	worst := 0.0
	for j := 0; j < p.NumVars(); j++ {
		lo, up := p.Bounds(j)
		if v := lo - x[j]; v > worst {
			worst = v
		}
		if v := x[j] - up; v > worst {
			worst = v
		}
	}
	for i := 0; i < p.NumRows(); i++ {
		coefs, sense, rhs := p.Row(i)
		lhs := 0.0
		for _, c := range coefs {
			lhs += c.Value * x[c.Var]
		}
		var v float64
		switch sense {
		case lp.LE:
			v = lhs - rhs
		case lp.GE:
			v = rhs - lhs
		case lp.EQ:
			v = math.Abs(lhs - rhs)
		}
		if v > worst {
			worst = v
		}
	}
	return worst
}

// RandomDegenerate generates a seeded random LP biased toward the
// shapes that stress a warm-started dual simplex: free variables,
// fixed columns, equality rows, duplicated (redundant) rows meeting in
// degenerate vertices, and zero objective stretches where every basis
// is optimal.
func RandomDegenerate(rng *rand.Rand) *lp.Problem {
	n := 3 + rng.Intn(5) // 3..7 variables
	p := lp.New(n)
	for j := 0; j < n; j++ {
		if rng.Intn(3) == 0 { // many zero objective entries
			p.SetObj(j, math.Round(rng.NormFloat64()*4))
		}
		switch rng.Intn(4) {
		case 0: // free
			p.SetBounds(j, math.Inf(-1), math.Inf(1))
		case 1: // fixed column
			v := float64(rng.Intn(5) - 2)
			p.SetBounds(j, v, v)
		default: // boxed
			lo := -float64(rng.Intn(3))
			p.SetBounds(j, lo, lo+float64(1+rng.Intn(6)))
		}
	}
	m := 2 + rng.Intn(6)
	var prev []lp.Coef
	for i := 0; i < m; i++ {
		coefs := prev
		if coefs == nil || rng.Intn(3) > 0 {
			coefs = nil
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					coefs = append(coefs, lp.Coef{Var: j, Value: float64(rng.Intn(5) - 2)})
				}
			}
			if len(coefs) == 0 {
				coefs = []lp.Coef{{Var: rng.Intn(n), Value: 1}}
			}
		}
		prev = coefs
		sense := lp.EQ // bias toward equality rows
		if rng.Intn(3) > 0 {
			sense = []lp.Sense{lp.LE, lp.GE}[rng.Intn(2)]
		}
		p.AddRow(coefs, sense, float64(rng.Intn(9)-4))
	}
	return p
}

// CheckWarmChain runs CheckWarmChainOpts over the full
// {factorization} × {pricing} × {warm, cold} cross product, deriving an
// independent (but seeded) mutation chain for each configuration.
func CheckWarmChain(p *lp.Problem, rng *rand.Rand, steps int) error {
	for _, cfg := range EngineConfigs {
		for _, warm := range []bool{true, false} {
			sub := rand.New(rand.NewSource(rng.Int63()))
			if err := CheckWarmChainOpts(p, sub, steps, cfg.Opt, warm); err != nil {
				mode := "warm"
				if !warm {
					mode = "cold"
				}
				return fmt.Errorf("%s/%s: %w", cfg.Name, mode, err)
			}
		}
	}
	return nil
}

// CheckWarmChainOpts is the differential check for re-solve chains:
// starting from a cold sparse solve of p, it applies steps random
// single-bound changes (tighten, fix, or restore — the branch-and-bound
// delta), re-solving each child under opt — warm from the previous
// basis (with and without presolve, alternating) when warm is true,
// cold otherwise — and comparing status and objective against the cold
// dense reference on the same mutated problem. The problem's bounds are
// restored before returning.
func CheckWarmChainOpts(p *lp.Problem, rng *rand.Rand, steps int, baseOpt lp.Options, useWarm bool) error {
	n := p.NumVars()
	origLo := make([]float64, n)
	origUp := make([]float64, n)
	for j := 0; j < n; j++ {
		origLo[j], origUp[j] = p.Bounds(j)
	}
	defer func() {
		for j := 0; j < n; j++ {
			p.SetBounds(j, origLo[j], origUp[j])
		}
	}()

	var basis *lp.Basis
	if sol, err := lp.SolveOpts(p, baseOpt); err != nil {
		return fmt.Errorf("root solve: %w", err)
	} else if sol.Status == lp.Optimal {
		basis = sol.Basis
	}

	for step := 0; step < steps; step++ {
		j := rng.Intn(n)
		lo, up := p.Bounds(j)
		switch rng.Intn(4) {
		case 0: // restore the variable's original range
			p.SetBounds(j, origLo[j], origUp[j])
		case 1: // fix at a point of the current range when finite
			if !math.IsInf(lo, -1) && !math.IsInf(up, 1) {
				v := math.Round(lo + rng.Float64()*(up-lo))
				p.SetBounds(j, v, v)
			} else {
				p.SetBounds(j, 0, 0)
			}
		case 2: // tighten the upper bound
			if !math.IsInf(up, 1) && up-1 >= lo {
				p.SetBounds(j, lo, up-1)
			} else if !math.IsInf(lo, -1) {
				p.SetBounds(j, lo, lo+1)
			}
		default: // tighten the lower bound
			if !math.IsInf(lo, -1) && lo+1 <= up {
				p.SetBounds(j, lo+1, up)
			} else if !math.IsInf(up, 1) {
				p.SetBounds(j, up-1, up)
			}
		}

		opt := baseOpt
		if useWarm {
			opt.WarmStart = basis
			opt.Presolve = step%2 == 1
		}
		warm, err := lp.SolveOpts(p, opt)
		if err != nil {
			return fmt.Errorf("step %d: warm solve: %w", step, err)
		}
		dense, err := lp.SolveDense(p)
		if err != nil {
			return fmt.Errorf("step %d: dense solve: %w", step, err)
		}
		if warm.Status != dense.Status {
			return fmt.Errorf("step %d: status mismatch warm=%v dense=%v (warm=%+v)",
				step, warm.Status, dense.Status, warm.Stats)
		}
		if warm.Status == lp.Optimal {
			if v := Violation(p, warm.X); v > FeasTol {
				return fmt.Errorf("step %d: warm point violates constraints by %g", step, v)
			}
			scale := 1 + math.Abs(dense.Objective)
			if diff := math.Abs(warm.Objective - dense.Objective); diff > Tol*scale {
				return fmt.Errorf("step %d: objective mismatch warm=%.12g dense=%.12g (stats %+v)",
					step, warm.Objective, dense.Objective, warm.Stats)
			}
			// Every basis the chain hands to the next re-solve —
			// postsolved through the presolve pipeline on alternating
			// steps — must be structurally valid for the problem.
			if err := warm.Basis.Validate(p); err != nil {
				return fmt.Errorf("step %d: postsolved basis: %w (stats %+v)", step, err, warm.Stats)
			}
			basis = warm.Basis
		}
		// On non-optimal children keep the previous basis: the next
		// bound change may re-open the subproblem, and a stale basis
		// must still be safe to pass.
	}
	return nil
}

// RandomPresolveAdversarial generates a seeded random LP biased toward
// the shapes the presolve pipeline reduces — so differential runs with
// presolve on exercise every reduction against the dense reference:
//
//   - singleton chains: runs of single-coefficient rows on consecutive
//     variables, often cascading into fixed columns;
//   - duplicate columns: pairs with proportional constraint
//     coefficients, sometimes with proportional costs (merged) and
//     sometimes dominated (fixed at a bound);
//   - bound-tightening-to-fixed cascades: equality rows whose activity
//     bounds pin their variables (x + y = max contributions);
//   - free column singletons in equality rows (substituted out).
func RandomPresolveAdversarial(rng *rand.Rand) *lp.Problem {
	n := 4 + rng.Intn(5) // 4..8 variables
	p := lp.New(n)
	for j := 0; j < n; j++ {
		if rng.Intn(3) > 0 {
			p.SetObj(j, math.Round(rng.NormFloat64()*4))
		}
		switch rng.Intn(5) {
		case 0: // free: a substitution candidate
			p.SetBounds(j, math.Inf(-1), math.Inf(1))
		case 1: // fixed, fractional so substitution leaves residues
			v := float64(rng.Intn(7)-3) / 3
			p.SetBounds(j, v, v)
		default: // boxed, small so tightening can pin it
			lo := -float64(rng.Intn(3))
			p.SetBounds(j, lo, lo+float64(1+rng.Intn(4)))
		}
	}
	// A singleton chain over a random run of variables.
	start, length := rng.Intn(n), 1+rng.Intn(3)
	for t := 0; t < length; t++ {
		j := (start + t) % n
		sense := []lp.Sense{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
		a := float64(rng.Intn(5) - 2)
		if a == 0 {
			a = 1
		}
		p.AddRow([]lp.Coef{{Var: j, Value: a}}, sense, float64(rng.Intn(7)-3))
	}
	// Coupling rows, some designed to tighten-to-fixed: an EQ row whose
	// RHS equals the maximum activity of its (boxed) variables.
	m := 2 + rng.Intn(4)
	for i := 0; i < m; i++ {
		var coefs []lp.Coef
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				coefs = append(coefs, lp.Coef{Var: j, Value: float64(rng.Intn(5) - 2)})
			}
		}
		if len(coefs) == 0 {
			coefs = []lp.Coef{{Var: rng.Intn(n), Value: 1}}
		}
		if rng.Intn(4) == 0 {
			// Force a tightening-to-fixed cascade when the bounds allow:
			// RHS at the row's maximum activity.
			maxAct, ok := 0.0, true
			for _, c := range coefs {
				lo, up := p.Bounds(c.Var)
				switch {
				case c.Value > 0 && !math.IsInf(up, 1):
					maxAct += c.Value * up
				case c.Value < 0 && !math.IsInf(lo, -1):
					maxAct += c.Value * lo
				case c.Value != 0:
					ok = false
				}
			}
			if ok {
				p.AddRow(coefs, lp.EQ, maxAct)
				continue
			}
		}
		sense := []lp.Sense{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
		p.AddRow(coefs, sense, float64(rng.Intn(9)-4))
	}
	// Duplicate a column into a fresh row set: pick a source column,
	// give another variable proportional coefficients in every row that
	// contains the source.
	if n >= 2 {
		src := rng.Intn(n)
		dup := (src + 1 + rng.Intn(n-1)) % n
		lam := float64(rng.Intn(3) + 1)
		if rng.Intn(2) == 0 {
			lam = -lam
		}
		var coefs []lp.Coef
		a := float64(rng.Intn(4) + 1)
		coefs = append(coefs, lp.Coef{Var: src, Value: a}, lp.Coef{Var: dup, Value: a * lam})
		sense := []lp.Sense{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
		p.AddRow(coefs, sense, float64(rng.Intn(7)-3))
		if rng.Intn(2) == 0 {
			// Proportional costs too, so the pair merges instead of
			// (possibly) dominating.
			p.SetObj(dup, p.ObjCoef(src)*lam)
		}
	}
	return p
}

// maxCutAssignments caps the integer-assignment enumeration of
// CheckCutsValid; instances passed to it should keep the integer box
// product below this.
const maxCutAssignments = 4096

// CheckCutsValid verifies separated cutting planes against EVERY
// integer-feasible point of the MILP (p, ints): for each assignment of
// the integer variables over their bound boxes (finite bounds required;
// enumeration capped at maxCutAssignments) it optimizes each cut's
// left-hand side in the adverse direction over the continuous
// completion with the dense reference solver. A completion beating the
// cut's RHS — or an explicitly passed point (e.g. the incumbent) that a
// cut removes — is a validity counterexample. This is an exact validity
// proof per assignment, not a spot check of the LP optimum.
func CheckCutsValid(p *lp.Problem, ints []int, cuts []lp.CutRow, points ...[]float64) error {
	for pi, pt := range points {
		for ci := range cuts {
			if v := cuts[ci].Violation(pt); v > FeasTol {
				return fmt.Errorf("cut %d cuts off point %d by %g", ci, pi, v)
			}
		}
	}
	if len(cuts) == 0 || len(ints) == 0 {
		return nil
	}

	n := p.NumVars()
	origLo := make([]float64, n)
	origUp := make([]float64, n)
	origObj := make([]float64, n)
	for j := 0; j < n; j++ {
		origLo[j], origUp[j] = p.Bounds(j)
		origObj[j] = p.ObjCoef(j)
	}
	defer func() {
		for j := 0; j < n; j++ {
			p.SetBounds(j, origLo[j], origUp[j])
			p.SetObj(j, origObj[j])
		}
	}()

	lo := make([]int, len(ints))
	width := make([]int, len(ints))
	total := 1
	for k, j := range ints {
		l, u := p.Bounds(j)
		if math.IsInf(l, -1) || math.IsInf(u, 1) {
			return fmt.Errorf("integer variable %d has an infinite bound; cannot enumerate", j)
		}
		lo[k] = int(math.Ceil(l - 1e-9))
		width[k] = int(math.Floor(u+1e-9)) - lo[k] + 1
		if width[k] < 1 {
			return nil // empty integer box: no integer-feasible points
		}
		if total > maxCutAssignments/width[k] {
			return fmt.Errorf("integer box too large to enumerate (> %d assignments)", maxCutAssignments)
		}
		total *= width[k]
	}

	vals := make([]int, len(ints))
	for a := 0; a < total; a++ {
		rest := a
		for k := range ints {
			vals[k] = lo[k] + rest%width[k]
			rest /= width[k]
		}
		for k, j := range ints {
			v := float64(vals[k])
			p.SetBounds(j, v, v)
		}
		for ci := range cuts {
			cut := &cuts[ci]
			// Objective = the cut's LHS, signed so that minimizing it
			// drives toward a violation.
			sgn := 1.0
			if cut.Sense == lp.LE {
				sgn = -1
			}
			for j := 0; j < n; j++ {
				p.SetObj(j, 0)
			}
			for _, cf := range cut.Coefs {
				p.SetObj(cf.Var, sgn*cf.Value)
			}
			sol, err := lp.SolveDense(p)
			if err != nil {
				return fmt.Errorf("assignment %v: dense solve: %w", vals, err)
			}
			switch sol.Status {
			case lp.Infeasible:
				// No completion for this assignment; nothing to cut off.
			case lp.Optimal:
				if v := cut.Violation(sol.X); v > FeasTol {
					return fmt.Errorf("cut %d cuts off integer-feasible completion of %v by %g",
						ci, vals, v)
				}
			case lp.Unbounded:
				return fmt.Errorf("cut %d: LHS unbounded over completions of %v (cut invalid)", ci, vals)
			default:
				return fmt.Errorf("assignment %v: unexpected status %v", vals, sol.Status)
			}
			if sol.Status == lp.Infeasible {
				break // same for every cut of this assignment
			}
		}
	}
	return nil
}

// RandomBinaryMILP generates a seeded random MILP shaped like the
// mapping formulations the cut separators target: binary and small
// boxed integer variables, ≤ capacity rows with positive weights over
// the binaries (cover-cut territory), plus general mixed rows and a few
// continuous variables. It returns the LP relaxation and the integer
// variable indices; the integer box stays small enough for
// CheckCutsValid to enumerate.
func RandomBinaryMILP(rng *rand.Rand) (*lp.Problem, []int) {
	n := 4 + rng.Intn(4) // 4..7 variables
	p := lp.New(n)
	var ints []int
	for j := 0; j < n; j++ {
		if rng.Intn(4) > 0 {
			p.SetObj(j, math.Round(rng.NormFloat64()*5))
		}
		switch rng.Intn(4) {
		case 0: // small boxed integer
			lo := float64(rng.Intn(2))
			p.SetBounds(j, lo, lo+float64(1+rng.Intn(2)))
			ints = append(ints, j)
		case 1: // boxed continuous
			lo := -float64(rng.Intn(3))
			p.SetBounds(j, lo, lo+float64(1+rng.Intn(6)))
		default: // binary
			p.SetBounds(j, 0, 1)
			ints = append(ints, j)
		}
	}
	// Capacity rows over the binaries/integers: positive weights, RHS
	// strictly inside the total weight so covers exist.
	caps := 1 + rng.Intn(3)
	for i := 0; i < caps; i++ {
		var coefs []lp.Coef
		total := 0.0
		for _, j := range ints {
			if rng.Intn(3) > 0 {
				w := float64(1 + rng.Intn(4))
				coefs = append(coefs, lp.Coef{Var: j, Value: w})
				total += w
			}
		}
		if len(coefs) < 2 {
			continue
		}
		rhs := math.Max(1, math.Round(total*(0.3+0.4*rng.Float64())))
		p.AddRow(coefs, lp.LE, rhs)
	}
	// General mixed rows.
	m := 1 + rng.Intn(3)
	for i := 0; i < m; i++ {
		var coefs []lp.Coef
		for j := 0; j < n; j++ {
			if rng.Intn(3) > 0 {
				coefs = append(coefs, lp.Coef{Var: j, Value: math.Round(rng.NormFloat64() * 3)})
			}
		}
		if len(coefs) == 0 {
			coefs = []lp.Coef{{Var: rng.Intn(n), Value: 1}}
		}
		sense := []lp.Sense{lp.LE, lp.GE}[rng.Intn(2)]
		p.AddRow(coefs, sense, math.Round(rng.NormFloat64()*6))
	}
	return p, ints
}

// Random generates a seeded random LP exercising the full model
// surface: mixed senses, finite/infinite/fixed bounds, free variables,
// empty-ish rows and duplicate coefficients. Coefficients are rounded
// so status boundaries (feasible vs not, bounded vs not) are
// numerically robust for differential testing.
func Random(rng *rand.Rand) *lp.Problem {
	n := 2 + rng.Intn(6) // 2..7 variables
	m := 1 + rng.Intn(8) // 1..8 rows
	p := lp.New(n)
	for j := 0; j < n; j++ {
		if rng.Intn(4) > 0 { // leave some zero objective entries
			p.SetObj(j, math.Round(rng.NormFloat64()*5))
		}
		switch rng.Intn(6) {
		case 0: // free
			p.SetBounds(j, math.Inf(-1), math.Inf(1))
		case 1: // one-sided below
			p.SetBounds(j, -float64(rng.Intn(5)), math.Inf(1))
		case 2: // one-sided above
			p.SetBounds(j, math.Inf(-1), float64(rng.Intn(5)))
		case 3: // fixed
			v := math.Round(rng.NormFloat64() * 2)
			p.SetBounds(j, v, v)
		default: // boxed
			lo := -float64(rng.Intn(3))
			p.SetBounds(j, lo, lo+float64(1+rng.Intn(10)))
		}
	}
	for i := 0; i < m; i++ {
		var coefs []lp.Coef
		for j := 0; j < n; j++ {
			if rng.Intn(3) > 0 {
				coefs = append(coefs, lp.Coef{Var: j, Value: math.Round(rng.NormFloat64() * 3)})
			}
		}
		if len(coefs) == 0 {
			coefs = []lp.Coef{{Var: rng.Intn(n), Value: 1}}
		}
		if rng.Intn(8) == 0 { // duplicate coefficient, merged by AddRow
			coefs = append(coefs, lp.Coef{Var: coefs[0].Var, Value: math.Round(rng.NormFloat64() * 2)})
		}
		sense := []lp.Sense{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
		p.AddRow(coefs, sense, math.Round(rng.NormFloat64()*8))
	}
	return p
}
