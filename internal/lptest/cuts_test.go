package lptest

import (
	"math"
	"math/rand"
	"testing"

	"cellstream/internal/lp"
)

// gomorySpecFor builds the global-bounds GMI spec for (p, ints).
func gomorySpecFor(p *lp.Problem, ints []int) lp.GomorySpec {
	n := p.NumVars()
	spec := lp.GomorySpec{
		IsInt: make([]bool, n),
		Lo:    make([]float64, n),
		Up:    make([]float64, n),
	}
	for j := 0; j < n; j++ {
		spec.Lo[j], spec.Up[j] = p.Bounds(j)
	}
	for _, j := range ints {
		spec.IsInt[j] = true
	}
	return spec
}

// isBinaryFor marks the integer variables with global bounds {0,1}.
func isBinaryFor(p *lp.Problem, ints []int) []bool {
	bin := make([]bool, p.NumVars())
	for _, j := range ints {
		if lo, up := p.Bounds(j); lo == 0 && up == 1 {
			bin[j] = true
		}
	}
	return bin
}

// fractional reports whether any integer variable is fractional at x.
func fractional(x []float64, ints []int) bool {
	for _, j := range ints {
		if f := x[j] - math.Floor(x[j]); f > 1e-6 && f < 1-1e-6 {
			return true
		}
	}
	return false
}

// TestCutValidityGomory separates GMI cuts from the optimal bases of
// seeded random MILP relaxations and proves, by enumerating every
// integer assignment and optimizing each cut's LHS over the continuous
// completion, that no cut removes an integer-feasible point.
func TestCutValidityGomory(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	separated := 0
	for trial := 0; trial < 200; trial++ {
		p, ints := RandomBinaryMILP(rng)
		sv := lp.NewSolver(p)
		sol, err := sv.Solve(lp.Options{})
		if err != nil || sol.Status != lp.Optimal || !fractional(sol.X, ints) {
			continue
		}
		cuts := sv.GomoryCuts(gomorySpecFor(p, ints))
		if len(cuts) == 0 {
			continue
		}
		separated += len(cuts)
		// Every emitted cut must cut off the fractional LP optimum...
		for ci := range cuts {
			if v := cuts[ci].Violation(sol.X); v <= 0 {
				t.Fatalf("trial %d: gomory cut %d does not cut off the LP optimum (viol %g)", trial, ci, v)
			}
		}
		// ...and no integer-feasible point.
		if err := CheckCutsValid(p, ints, cuts); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if separated == 0 {
		t.Fatal("generator never produced a Gomory cut; test is vacuous")
	}
	t.Logf("validated %d gomory cuts", separated)
}

// TestCutValidityCover does the same for cover cuts separated from the
// capacity rows of the random MILPs.
func TestCutValidityCover(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	separated := 0
	for trial := 0; trial < 200; trial++ {
		p, ints := RandomBinaryMILP(rng)
		sol, err := lp.Solve(p)
		if err != nil || sol.Status != lp.Optimal {
			continue
		}
		cuts := lp.CoverCuts(p, lp.CoverSpec{IsBinary: isBinaryFor(p, ints)}, sol.X)
		if len(cuts) == 0 {
			continue
		}
		separated += len(cuts)
		for ci := range cuts {
			if v := cuts[ci].Violation(sol.X); v <= 0 {
				t.Fatalf("trial %d: cover cut %d does not cut off the LP optimum (viol %g)", trial, ci, v)
			}
		}
		if err := CheckCutsValid(p, ints, cuts); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if separated == 0 {
		t.Fatal("generator never produced a cover cut; test is vacuous")
	}
	t.Logf("validated %d cover cuts", separated)
}

// TestCutsThenResolveAgree adds separated cuts through lp.Model.AddRow
// and checks the warm re-solve against a cold dense solve of the
// augmented problem — the exact mechanism the branch-and-bound cut loop
// uses.
func TestCutsThenResolveAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	augmented := 0
	for trial := 0; trial < 150; trial++ {
		p, ints := RandomBinaryMILP(rng)
		m := lp.ModelFor(p)
		sol, err := m.Solve(lp.Options{})
		if err != nil || sol.Status != lp.Optimal || !fractional(sol.X, ints) {
			continue
		}
		cuts := m.GomoryCuts(gomorySpecFor(p, ints))
		cuts = append(cuts, lp.CoverCuts(p, lp.CoverSpec{IsBinary: isBinaryFor(p, ints)}, sol.X)...)
		if len(cuts) == 0 {
			continue
		}
		for _, c := range cuts {
			m.AddRow(c.Coefs, c.Sense, c.RHS)
		}
		augmented++
		warm, err := m.Solve(lp.Options{})
		if err != nil {
			t.Fatalf("trial %d: warm re-solve: %v", trial, err)
		}
		dense, err := lp.SolveDense(p)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if warm.Status != dense.Status {
			t.Fatalf("trial %d: status mismatch warm=%v dense=%v", trial, warm.Status, dense.Status)
		}
		if warm.Status != lp.Optimal {
			continue
		}
		scale := 1 + math.Abs(dense.Objective)
		if diff := math.Abs(warm.Objective - dense.Objective); diff > Tol*scale {
			t.Fatalf("trial %d: objective mismatch warm=%.12g dense=%.12g (stats %+v)",
				trial, warm.Objective, dense.Objective, warm.Stats)
		}
	}
	if augmented == 0 {
		t.Fatal("no instance was ever augmented; test is vacuous")
	}
	t.Logf("checked %d augmented re-solves", augmented)
}
