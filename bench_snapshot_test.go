package cellstream

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/lp"
	"cellstream/internal/milp"
	"cellstream/internal/platform"
	"cellstream/sched"
)

// lpBenchRow is one configuration's snapshot in BENCH_lp.json.
type lpBenchRow struct {
	Config           string  `json:"config"`
	WallMS           float64 `json:"wall_ms"`
	Nodes            int     `json:"nodes"`
	Objective        float64 `json:"objective"`
	LPIterations     int     `json:"lp_iterations"`
	PivotsPerNode    float64 `json:"pivots_per_node"`
	DualIterations   int     `json:"dual_iterations"`
	BoundFlips       int     `json:"bound_flips"`
	FTUpdates        int     `json:"ft_updates"`
	Refactorizations int     `json:"refactorizations"`
	RefactorPeriodic int     `json:"refactor_periodic"`
	RefactorUnstable int     `json:"refactor_unstable"`
	RefactorRestore  int     `json:"refactor_restore"`
	WarmSolves       int     `json:"warm_solves"`
	WarmFallbacks    int     `json:"warm_fallbacks"`
}

// TestBenchSnapshotLP writes BENCH_lp.json — the LP-solver perf
// trajectory snapshot CI uploads as an artifact — when the
// BENCH_LP_SNAPSHOT environment variable is set to a non-empty value
// (the output path; "1" means ./BENCH_lp.json; unset or empty skips
// the test). It runs the
// warm-vs-cold branch-and-bound matrix of BenchmarkMILPWarmVsCold once
// per configuration on the 12-task compact formulation, which keeps CI
// cost bounded while still pinning pivots/node, bound flips, FT-update
// and refactorization counts alongside the wall time.
func TestBenchSnapshotLP(t *testing.T) {
	path := os.Getenv("BENCH_LP_SNAPSHOT")
	if path == "" {
		t.Skip("BENCH_LP_SNAPSHOT not set")
	}
	if path == "1" {
		path = "BENCH_lp.json"
	}
	g := daggen.Generate(daggen.Params{Tasks: 12, Seed: 5, CCR: 1})
	plat := platform.Cell(1, 3)
	var rows []lpBenchRow
	for _, cfg := range []struct {
		name string
		opt  milp.Options
	}{
		{"warm-lu", milp.Options{Factorization: lp.FactorLU}},
		{"warm-lu-steepest", milp.Options{Factorization: lp.FactorLU, Pricing: lp.PricingSteepest}},
		{"warm-eta", milp.Options{Factorization: lp.FactorEta}},
		{"cold", milp.Options{ColdStart: true}},
	} {
		f := core.FormulateCompact(g, plat)
		opt := cfg.opt
		opt.RelGap = 0.05
		opt.Workers = 1
		start := time.Now()
		res, err := milp.Solve(f.Problem, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != milp.Optimal {
			t.Fatalf("%s: status %v", cfg.name, res.Status)
		}
		st := res.Stats
		rows = append(rows, lpBenchRow{
			Config:           cfg.name,
			WallMS:           float64(time.Since(start).Microseconds()) / 1000,
			Nodes:            res.Nodes,
			Objective:        res.Objective,
			LPIterations:     st.LPIterations,
			PivotsPerNode:    float64(st.LPIterations) / float64(res.Nodes),
			DualIterations:   st.DualIterations,
			BoundFlips:       st.BoundFlips,
			FTUpdates:        st.FTUpdates,
			Refactorizations: st.Refactorizations,
			RefactorPeriodic: st.RefactorPeriodic,
			RefactorUnstable: st.RefactorUnstable,
			RefactorRestore:  st.RefactorRestore,
			WarmSolves:       st.WarmSolves,
			WarmFallbacks:    st.WarmFallbacks,
		})
	}
	out, err := json.MarshalIndent(struct {
		Instance string       `json:"instance"`
		Rows     []lpBenchRow `json:"rows"`
	}{Instance: "12-task compact formulation, Cell(1,3), 5% gap, 1 worker", Rows: rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d configs)", path, len(rows))
}

// TestFacadeOverheadGuard asserts the sched facade stays thin: a MILP
// map request through a Session must add less than 5% overhead over
// calling core.SolveMILPCtx directly on the 12-task compact
// formulation. Both paths run the identical deterministic solve
// (1 worker, same cached formulation), so the min over several
// alternating runs isolates the facade's own cost — request
// validation, the worker-pool slot, result assembly — from scheduler
// noise; a small absolute grace keeps sub-millisecond jitter from
// failing a ~60ms comparison.
func TestFacadeOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	g := daggen.Generate(daggen.Params{Tasks: 12, Seed: 5, CCR: 1})
	plat := platform.Cell(1, 3)
	ctx := context.Background()

	direct := func() {
		res, err := core.SolveMILPCtx(ctx, g, plat, core.SolveOptions{
			RelGap: 0.05, TimeLimit: 30 * time.Second, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Report.Feasible {
			t.Fatal("direct solve infeasible")
		}
	}
	sess, err := sched.NewSession(
		sched.WithPlatform(plat),
		sched.WithRelGap(0.05),
		sched.WithTimeLimit(30*time.Second),
		sched.WithSolver(sched.SolverMILP),
		sched.WithSolverWorkers(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	facade := func() {
		res, err := sess.Map(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Report.Feasible {
			t.Fatal("facade solve infeasible")
		}
	}

	direct() // warm both paths (formulation cache, allocator)
	facade()
	// Interleave the timed pairs so a co-tenant burst on a shared CI
	// runner inflates both sides alike instead of only one min.
	const runs = 5
	timeIt := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	minDirect, minFacade := time.Duration(1<<62-1), time.Duration(1<<62-1)
	for i := 0; i < runs; i++ {
		if d := timeIt(direct); d < minDirect {
			minDirect = d
		}
		if d := timeIt(facade); d < minFacade {
			minFacade = d
		}
	}
	limit := minDirect + minDirect/20 + 2*time.Millisecond
	t.Logf("direct %v, facade %v (limit %v)", minDirect, minFacade, limit)
	if minFacade > limit {
		t.Errorf("facade overhead: %v via sched vs %v direct (>5%%+2ms)", minFacade, minDirect)
	}
}

// milpBenchRow is one configuration's snapshot in BENCH_milp.json:
// the branch-and-bound trajectory with the presolve-pipeline and
// node-tightening counters this PR's reductions move.
type milpBenchRow struct {
	Config                string  `json:"config"`
	WallMS                float64 `json:"wall_ms"`
	Nodes                 int     `json:"nodes"`
	Objective             float64 `json:"objective"`
	LPIterations          int     `json:"lp_iterations"`
	PivotsPerNode         float64 `json:"pivots_per_node"`
	WarmSolves            int     `json:"warm_solves"`
	WarmFallbacks         int     `json:"warm_fallbacks"`
	PresolvedCols         int     `json:"presolved_cols"`
	PresolvedRows         int     `json:"presolved_rows"`
	PresolveSingletonRows int     `json:"presolve_singleton_rows"`
	PresolveSingletonCols int     `json:"presolve_singleton_cols"`
	PresolveDupCols       int     `json:"presolve_dup_cols"`
	PresolveTightened     int     `json:"presolve_tightened"`
	PresolvePasses        int     `json:"presolve_passes"`
	NodeTightenedBounds   int     `json:"node_tightened_bounds"`
	NodeTightenPrunes     int     `json:"node_tighten_prunes"`
}

// TestBenchSnapshotMILP writes BENCH_milp.json — the branch-and-bound
// trajectory snapshot CI uploads beside BENCH_lp.json — when
// BENCH_MILP_SNAPSHOT is set ("1" means ./BENCH_milp.json). It runs
// the 12-task compact formulation at the 5% gap under {warm,
// warm-no-tighten, cold} so the presolve/tightening counters and their
// node-count effect are pinned per commit.
func TestBenchSnapshotMILP(t *testing.T) {
	path := os.Getenv("BENCH_MILP_SNAPSHOT")
	if path == "" {
		t.Skip("BENCH_MILP_SNAPSHOT not set")
	}
	if path == "1" {
		path = "BENCH_milp.json"
	}
	g := daggen.Generate(daggen.Params{Tasks: 12, Seed: 5, CCR: 1})
	plat := platform.Cell(1, 3)
	var rows []milpBenchRow
	for _, cfg := range []struct {
		name string
		opt  milp.Options
	}{
		{"warm", milp.Options{}},
		{"warm-no-tighten", milp.Options{DisableTightening: true}},
		{"cold", milp.Options{ColdStart: true}},
	} {
		f := core.FormulateCompact(g, plat)
		opt := cfg.opt
		opt.RelGap = 0.05
		opt.Workers = 1
		start := time.Now()
		res, err := milp.Solve(f.Problem, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != milp.Optimal {
			t.Fatalf("%s: status %v", cfg.name, res.Status)
		}
		st := res.Stats
		rows = append(rows, milpBenchRow{
			Config:                cfg.name,
			WallMS:                float64(time.Since(start).Microseconds()) / 1000,
			Nodes:                 res.Nodes,
			Objective:             res.Objective,
			LPIterations:          st.LPIterations,
			PivotsPerNode:         float64(st.LPIterations) / float64(res.Nodes),
			WarmSolves:            st.WarmSolves,
			WarmFallbacks:         st.WarmFallbacks,
			PresolvedCols:         st.PresolvedCols,
			PresolvedRows:         st.PresolvedRows,
			PresolveSingletonRows: st.PresolveSingletonRows,
			PresolveSingletonCols: st.PresolveSingletonCols,
			PresolveDupCols:       st.PresolveDupCols,
			PresolveTightened:     st.PresolveTightened,
			PresolvePasses:        st.PresolvePasses,
			NodeTightenedBounds:   st.NodeTightenedBounds,
			NodeTightenPrunes:     st.NodeTightenPrunes,
		})
	}
	out, err := json.MarshalIndent(struct {
		Instance string         `json:"instance"`
		Rows     []milpBenchRow `json:"rows"`
	}{Instance: "12-task compact formulation, Cell(1,3), 5% gap, 1 worker", Rows: rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d configs)", path, len(rows))
}
