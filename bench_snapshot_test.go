package cellstream

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/lp"
	"cellstream/internal/milp"
	"cellstream/internal/platform"
	"cellstream/sched"
)

// lpBenchRow is one configuration's snapshot in BENCH_lp.json.
type lpBenchRow struct {
	Config           string  `json:"config"`
	WallMS           float64 `json:"wall_ms"`
	Nodes            int     `json:"nodes"`
	Objective        float64 `json:"objective"`
	LPIterations     int     `json:"lp_iterations"`
	PivotsPerNode    float64 `json:"pivots_per_node"`
	DualIterations   int     `json:"dual_iterations"`
	BoundFlips       int     `json:"bound_flips"`
	FTUpdates        int     `json:"ft_updates"`
	Refactorizations int     `json:"refactorizations"`
	RefactorPeriodic int     `json:"refactor_periodic"`
	RefactorUnstable int     `json:"refactor_unstable"`
	RefactorRestore  int     `json:"refactor_restore"`
	WarmSolves       int     `json:"warm_solves"`
	WarmFallbacks    int     `json:"warm_fallbacks"`
}

// TestBenchSnapshotLP writes BENCH_lp.json — the LP-solver perf
// trajectory snapshot CI uploads as an artifact — when the
// BENCH_LP_SNAPSHOT environment variable is set to a non-empty value
// (the output path; "1" means ./BENCH_lp.json; unset or empty skips
// the test). It runs the
// warm-vs-cold branch-and-bound matrix of BenchmarkMILPWarmVsCold once
// per configuration on the 12-task compact formulation, which keeps CI
// cost bounded while still pinning pivots/node, bound flips, FT-update
// and refactorization counts alongside the wall time.
func TestBenchSnapshotLP(t *testing.T) {
	path := os.Getenv("BENCH_LP_SNAPSHOT")
	if path == "" {
		t.Skip("BENCH_LP_SNAPSHOT not set")
	}
	if path == "1" {
		path = "BENCH_lp.json"
	}
	g := daggen.Generate(daggen.Params{Tasks: 12, Seed: 5, CCR: 1})
	plat := platform.Cell(1, 3)
	var rows []lpBenchRow
	for _, cfg := range []struct {
		name string
		opt  milp.Options
	}{
		{"warm-lu", milp.Options{Factorization: lp.FactorLU}},
		{"warm-lu-steepest", milp.Options{Factorization: lp.FactorLU, Pricing: lp.PricingSteepest}},
		{"warm-eta", milp.Options{Factorization: lp.FactorEta}},
		{"cold", milp.Options{ColdStart: true}},
	} {
		f := core.FormulateCompact(g, plat)
		opt := cfg.opt
		opt.RelGap = 0.05
		opt.Workers = 1
		start := time.Now()
		res, err := milp.Solve(f.Problem, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != milp.Optimal {
			t.Fatalf("%s: status %v", cfg.name, res.Status)
		}
		st := res.Stats
		rows = append(rows, lpBenchRow{
			Config:           cfg.name,
			WallMS:           float64(time.Since(start).Microseconds()) / 1000,
			Nodes:            res.Nodes,
			Objective:        res.Objective,
			LPIterations:     st.LPIterations,
			PivotsPerNode:    float64(st.LPIterations) / float64(res.Nodes),
			DualIterations:   st.DualIterations,
			BoundFlips:       st.BoundFlips,
			FTUpdates:        st.FTUpdates,
			Refactorizations: st.Refactorizations,
			RefactorPeriodic: st.RefactorPeriodic,
			RefactorUnstable: st.RefactorUnstable,
			RefactorRestore:  st.RefactorRestore,
			WarmSolves:       st.WarmSolves,
			WarmFallbacks:    st.WarmFallbacks,
		})
	}
	out, err := json.MarshalIndent(struct {
		Instance string       `json:"instance"`
		Rows     []lpBenchRow `json:"rows"`
	}{Instance: "12-task compact formulation, Cell(1,3), 5% gap, 1 worker", Rows: rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d configs)", path, len(rows))
}

// TestFacadeOverheadGuard asserts the sched facade stays thin: a MILP
// map request through a Session must add less than 5% overhead over
// calling core.SolveMILPCtx directly on the 12-task compact
// formulation. Both paths run the identical deterministic solve
// (1 worker, same cached formulation), so the min over several
// alternating runs isolates the facade's own cost — request
// validation, the worker-pool slot, result assembly — from scheduler
// noise; a small absolute grace keeps sub-millisecond jitter from
// failing a ~60ms comparison.
func TestFacadeOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	g := daggen.Generate(daggen.Params{Tasks: 12, Seed: 5, CCR: 1})
	plat := platform.Cell(1, 3)
	ctx := context.Background()

	direct := func() {
		res, err := core.SolveMILPCtx(ctx, g, plat, core.SolveOptions{
			RelGap: 0.05, TimeLimit: 30 * time.Second, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Report.Feasible {
			t.Fatal("direct solve infeasible")
		}
	}
	sess, err := sched.NewSession(
		sched.WithPlatform(plat),
		sched.WithRelGap(0.05),
		sched.WithTimeLimit(30*time.Second),
		sched.WithSolver(sched.SolverMILP),
		sched.WithSolverWorkers(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	facade := func() {
		res, err := sess.Map(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Report.Feasible {
			t.Fatal("facade solve infeasible")
		}
	}

	direct() // warm both paths (formulation cache, allocator)
	facade()
	// Interleave the timed pairs so a co-tenant burst on a shared CI
	// runner inflates both sides alike instead of only one min.
	const runs = 5
	timeIt := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	minDirect, minFacade := time.Duration(1<<62-1), time.Duration(1<<62-1)
	for i := 0; i < runs; i++ {
		if d := timeIt(direct); d < minDirect {
			minDirect = d
		}
		if d := timeIt(facade); d < minFacade {
			minFacade = d
		}
	}
	limit := minDirect + minDirect/20 + 2*time.Millisecond
	t.Logf("direct %v, facade %v (limit %v)", minDirect, minFacade, limit)
	if minFacade > limit {
		t.Errorf("facade overhead: %v via sched vs %v direct (>5%%+2ms)", minFacade, minDirect)
	}
}

// milpBenchRow is one configuration's snapshot in BENCH_milp.json:
// the branch-and-bound trajectory with the presolve-pipeline,
// node-tightening, cut-separation and branching counters the stacked
// search PRs move.
type milpBenchRow struct {
	Config                string  `json:"config"`
	Status                string  `json:"status"`
	WallMS                float64 `json:"wall_ms"`
	Nodes                 int     `json:"nodes"`
	Objective             float64 `json:"objective"`
	Bound                 float64 `json:"bound"`
	LPIterations          int     `json:"lp_iterations"`
	PivotsPerNode         float64 `json:"pivots_per_node"`
	WarmSolves            int     `json:"warm_solves"`
	WarmFallbacks         int     `json:"warm_fallbacks"`
	PresolvedCols         int     `json:"presolved_cols"`
	PresolvedRows         int     `json:"presolved_rows"`
	PresolveSingletonRows int     `json:"presolve_singleton_rows"`
	PresolveSingletonCols int     `json:"presolve_singleton_cols"`
	PresolveDupCols       int     `json:"presolve_dup_cols"`
	PresolveTightened     int     `json:"presolve_tightened"`
	PresolvePasses        int     `json:"presolve_passes"`
	NodeTightenedBounds   int     `json:"node_tightened_bounds"`
	NodeTightenPrunes     int     `json:"node_tighten_prunes"`
	CutsSeparated         int     `json:"cuts_separated"`
	CutsActive            int     `json:"cuts_active"`
	CutsRetired           int     `json:"cuts_retired"`
	CutResolves           int     `json:"cut_resolves"`
	StrongBranchSolves    int     `json:"strong_branch_solves"`
	PseudocostBranches    int     `json:"pseudocost_branches"`
}

// milpBenchRun solves one snapshot configuration and packs the row.
func milpBenchRun(t *testing.T, name string, f *core.Formulation, opt milp.Options) milpBenchRow {
	t.Helper()
	start := time.Now()
	res, err := milp.Solve(f.Problem, opt)
	if err != nil {
		t.Fatal(err)
	}
	if opt.MaxNodes == 0 && res.Status != milp.Optimal {
		t.Fatalf("%s: status %v", name, res.Status)
	}
	st := res.Stats
	obj := res.Objective
	if math.IsInf(obj, 0) {
		obj = 0 // no incumbent inside the node budget; see Status
	}
	return milpBenchRow{
		Config:                name,
		Status:                res.Status.String(),
		WallMS:                float64(time.Since(start).Microseconds()) / 1000,
		Nodes:                 res.Nodes,
		Objective:             obj,
		Bound:                 res.Bound,
		LPIterations:          st.LPIterations,
		PivotsPerNode:         float64(st.LPIterations) / float64(res.Nodes),
		WarmSolves:            st.WarmSolves,
		WarmFallbacks:         st.WarmFallbacks,
		PresolvedCols:         st.PresolvedCols,
		PresolvedRows:         st.PresolvedRows,
		PresolveSingletonRows: st.PresolveSingletonRows,
		PresolveSingletonCols: st.PresolveSingletonCols,
		PresolveDupCols:       st.PresolveDupCols,
		PresolveTightened:     st.PresolveTightened,
		PresolvePasses:        st.PresolvePasses,
		NodeTightenedBounds:   st.NodeTightenedBounds,
		NodeTightenPrunes:     st.NodeTightenPrunes,
		CutsSeparated:         st.CutsSeparated,
		CutsActive:            st.CutsActive,
		CutsRetired:           st.CutsRetired,
		CutResolves:           st.CutResolves,
		StrongBranchSolves:    st.StrongBranchSolves,
		PseudocostBranches:    st.PseudocostBranches,
	}
}

// TestBenchSnapshotMILP writes BENCH_milp.json — the branch-and-bound
// trajectory snapshot CI uploads beside BENCH_lp.json — when
// BENCH_MILP_SNAPSHOT is set ("1" means ./BENCH_milp.json). Two pinned
// instances: the 12-task compact formulation runs to the 5% gap under
// {warm, warm-cuts, warm-no-tighten, pr4-rules, cold}, and the 94-task
// PaperGraph2 compact formulation runs the fixed 60-node budget from
// the PR 4 benchmark under the new defaults and under the PR 4 search
// rules (most-fractional, no cuts), plus a single-node run showing the
// root cutting-plane bound. Whenever it runs, the test also enforces
// the node-count regression gates:
//
//   - 12-task: the cut+pseudocost search must explore no more nodes
//     than the PR 4 rules, with or without cuts forced on.
//   - 94-task: the root cut loop's 1-node bound must already be at
//     least the bound the PR 4 rules reach after their whole 60-node
//     budget (this instance's gap never closes, so equal-bound node
//     counts — not termination — are the honest comparison).
func TestBenchSnapshotMILP(t *testing.T) {
	path := os.Getenv("BENCH_MILP_SNAPSHOT")
	if path == "" {
		t.Skip("BENCH_MILP_SNAPSHOT not set")
	}
	if path == "1" {
		path = "BENCH_milp.json"
	}
	small := daggen.Generate(daggen.Params{Tasks: 12, Seed: 5, CCR: 1})
	smallPlat := platform.Cell(1, 3)
	var rows []milpBenchRow
	byName := map[string]milpBenchRow{}
	for _, cfg := range []struct {
		name string
		opt  milp.Options
	}{
		{"warm", milp.Options{}},
		{"warm-cuts", milp.Options{CutRounds: 8, NodeCutRounds: 2}},
		{"warm-no-tighten", milp.Options{DisableTightening: true}},
		{"pr4-rules", milp.Options{DisableCuts: true, BranchMostFractional: true}},
		{"cold", milp.Options{ColdStart: true}},
	} {
		f := core.FormulateCompact(small, smallPlat)
		opt := cfg.opt
		opt.RelGap = 0.05
		opt.Workers = 1
		row := milpBenchRun(t, cfg.name, f, opt)
		rows = append(rows, row)
		byName[row.Config] = row
	}
	for _, name := range []string{"warm", "warm-cuts"} {
		if got, cap := byName[name].Nodes, byName["pr4-rules"].Nodes; got > cap {
			t.Errorf("12-task node regression: %s explored %d nodes, pr4-rules %d", name, got, cap)
		}
	}

	big := daggen.PaperGraph2(0.775)
	bigPlat := platform.QS22()
	bigByName := map[string]milpBenchRow{}
	for _, cfg := range []struct {
		name     string
		maxNodes int
		opt      milp.Options
	}{
		{"94task-warm-lu", 60, milp.Options{}},
		{"94task-warm-lu-root-only", 1, milp.Options{}},
		{"94task-pr4-rules", 60, milp.Options{DisableCuts: true, BranchMostFractional: true}},
	} {
		f := core.FormulateCompact(big, bigPlat)
		opt := cfg.opt
		opt.RelGap = 0.05
		opt.Workers = 1
		opt.MaxNodes = cfg.maxNodes
		row := milpBenchRun(t, cfg.name, f, opt)
		rows = append(rows, row)
		bigByName[row.Config] = row
	}
	pr4 := bigByName["94task-pr4-rules"]
	for _, name := range []string{"94task-warm-lu", "94task-warm-lu-root-only"} {
		if got := bigByName[name].Bound; got < pr4.Bound {
			t.Errorf("94-task bound regression: %s bound %.9g below pr4-rules' 60-node bound %.9g",
				name, got, pr4.Bound)
		}
	}

	out, err := json.MarshalIndent(struct {
		Instance string         `json:"instance"`
		Rows     []milpBenchRow `json:"rows"`
	}{Instance: "12-task compact Cell(1,3) to 5% gap + 94-task PaperGraph2 QS22 at 60-node budget, 1 worker", Rows: rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d configs)", path, len(rows))
}
