package cellstream

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/lp"
	"cellstream/internal/milp"
	"cellstream/internal/platform"
)

// lpBenchRow is one configuration's snapshot in BENCH_lp.json.
type lpBenchRow struct {
	Config           string  `json:"config"`
	WallMS           float64 `json:"wall_ms"`
	Nodes            int     `json:"nodes"`
	Objective        float64 `json:"objective"`
	LPIterations     int     `json:"lp_iterations"`
	PivotsPerNode    float64 `json:"pivots_per_node"`
	DualIterations   int     `json:"dual_iterations"`
	BoundFlips       int     `json:"bound_flips"`
	FTUpdates        int     `json:"ft_updates"`
	Refactorizations int     `json:"refactorizations"`
	RefactorPeriodic int     `json:"refactor_periodic"`
	RefactorUnstable int     `json:"refactor_unstable"`
	RefactorRestore  int     `json:"refactor_restore"`
	WarmSolves       int     `json:"warm_solves"`
	WarmFallbacks    int     `json:"warm_fallbacks"`
}

// TestBenchSnapshotLP writes BENCH_lp.json — the LP-solver perf
// trajectory snapshot CI uploads as an artifact — when the
// BENCH_LP_SNAPSHOT environment variable is set to a non-empty value
// (the output path; "1" means ./BENCH_lp.json; unset or empty skips
// the test). It runs the
// warm-vs-cold branch-and-bound matrix of BenchmarkMILPWarmVsCold once
// per configuration on the 12-task compact formulation, which keeps CI
// cost bounded while still pinning pivots/node, bound flips, FT-update
// and refactorization counts alongside the wall time.
func TestBenchSnapshotLP(t *testing.T) {
	path := os.Getenv("BENCH_LP_SNAPSHOT")
	if path == "" {
		t.Skip("BENCH_LP_SNAPSHOT not set")
	}
	if path == "1" {
		path = "BENCH_lp.json"
	}
	g := daggen.Generate(daggen.Params{Tasks: 12, Seed: 5, CCR: 1})
	plat := platform.Cell(1, 3)
	var rows []lpBenchRow
	for _, cfg := range []struct {
		name string
		opt  milp.Options
	}{
		{"warm-lu", milp.Options{Factorization: lp.FactorLU}},
		{"warm-lu-steepest", milp.Options{Factorization: lp.FactorLU, Pricing: lp.PricingSteepest}},
		{"warm-eta", milp.Options{Factorization: lp.FactorEta}},
		{"cold", milp.Options{ColdStart: true}},
	} {
		f := core.FormulateCompact(g, plat)
		opt := cfg.opt
		opt.RelGap = 0.05
		opt.Workers = 1
		start := time.Now()
		res, err := milp.Solve(f.Problem, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != milp.Optimal {
			t.Fatalf("%s: status %v", cfg.name, res.Status)
		}
		st := res.Stats
		rows = append(rows, lpBenchRow{
			Config:           cfg.name,
			WallMS:           float64(time.Since(start).Microseconds()) / 1000,
			Nodes:            res.Nodes,
			Objective:        res.Objective,
			LPIterations:     st.LPIterations,
			PivotsPerNode:    float64(st.LPIterations) / float64(res.Nodes),
			DualIterations:   st.DualIterations,
			BoundFlips:       st.BoundFlips,
			FTUpdates:        st.FTUpdates,
			Refactorizations: st.Refactorizations,
			RefactorPeriodic: st.RefactorPeriodic,
			RefactorUnstable: st.RefactorUnstable,
			RefactorRestore:  st.RefactorRestore,
			WarmSolves:       st.WarmSolves,
			WarmFallbacks:    st.WarmFallbacks,
		})
	}
	out, err := json.MarshalIndent(struct {
		Instance string       `json:"instance"`
		Rows     []lpBenchRow `json:"rows"`
	}{Instance: "12-task compact formulation, Cell(1,3), 5% gap, 1 worker", Rows: rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d configs)", path, len(rows))
}

// milpBenchRow is one configuration's snapshot in BENCH_milp.json:
// the branch-and-bound trajectory with the presolve-pipeline and
// node-tightening counters this PR's reductions move.
type milpBenchRow struct {
	Config                string  `json:"config"`
	WallMS                float64 `json:"wall_ms"`
	Nodes                 int     `json:"nodes"`
	Objective             float64 `json:"objective"`
	LPIterations          int     `json:"lp_iterations"`
	PivotsPerNode         float64 `json:"pivots_per_node"`
	WarmSolves            int     `json:"warm_solves"`
	WarmFallbacks         int     `json:"warm_fallbacks"`
	PresolvedCols         int     `json:"presolved_cols"`
	PresolvedRows         int     `json:"presolved_rows"`
	PresolveSingletonRows int     `json:"presolve_singleton_rows"`
	PresolveSingletonCols int     `json:"presolve_singleton_cols"`
	PresolveDupCols       int     `json:"presolve_dup_cols"`
	PresolveTightened     int     `json:"presolve_tightened"`
	PresolvePasses        int     `json:"presolve_passes"`
	NodeTightenedBounds   int     `json:"node_tightened_bounds"`
	NodeTightenPrunes     int     `json:"node_tighten_prunes"`
}

// TestBenchSnapshotMILP writes BENCH_milp.json — the branch-and-bound
// trajectory snapshot CI uploads beside BENCH_lp.json — when
// BENCH_MILP_SNAPSHOT is set ("1" means ./BENCH_milp.json). It runs
// the 12-task compact formulation at the 5% gap under {warm,
// warm-no-tighten, cold} so the presolve/tightening counters and their
// node-count effect are pinned per commit.
func TestBenchSnapshotMILP(t *testing.T) {
	path := os.Getenv("BENCH_MILP_SNAPSHOT")
	if path == "" {
		t.Skip("BENCH_MILP_SNAPSHOT not set")
	}
	if path == "1" {
		path = "BENCH_milp.json"
	}
	g := daggen.Generate(daggen.Params{Tasks: 12, Seed: 5, CCR: 1})
	plat := platform.Cell(1, 3)
	var rows []milpBenchRow
	for _, cfg := range []struct {
		name string
		opt  milp.Options
	}{
		{"warm", milp.Options{}},
		{"warm-no-tighten", milp.Options{DisableTightening: true}},
		{"cold", milp.Options{ColdStart: true}},
	} {
		f := core.FormulateCompact(g, plat)
		opt := cfg.opt
		opt.RelGap = 0.05
		opt.Workers = 1
		start := time.Now()
		res, err := milp.Solve(f.Problem, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != milp.Optimal {
			t.Fatalf("%s: status %v", cfg.name, res.Status)
		}
		st := res.Stats
		rows = append(rows, milpBenchRow{
			Config:                cfg.name,
			WallMS:                float64(time.Since(start).Microseconds()) / 1000,
			Nodes:                 res.Nodes,
			Objective:             res.Objective,
			LPIterations:          st.LPIterations,
			PivotsPerNode:         float64(st.LPIterations) / float64(res.Nodes),
			WarmSolves:            st.WarmSolves,
			WarmFallbacks:         st.WarmFallbacks,
			PresolvedCols:         st.PresolvedCols,
			PresolvedRows:         st.PresolvedRows,
			PresolveSingletonRows: st.PresolveSingletonRows,
			PresolveSingletonCols: st.PresolveSingletonCols,
			PresolveDupCols:       st.PresolveDupCols,
			PresolveTightened:     st.PresolveTightened,
			PresolvePasses:        st.PresolvePasses,
			NodeTightenedBounds:   st.NodeTightenedBounds,
			NodeTightenPrunes:     st.NodeTightenPrunes,
		})
	}
	out, err := json.MarshalIndent(struct {
		Instance string         `json:"instance"`
		Rows     []milpBenchRow `json:"rows"`
	}{Instance: "12-task compact formulation, Cell(1,3), 5% gap, 1 worker", Rows: rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d configs)", path, len(rows))
}
