// Package cellstream reproduces "Scheduling complex streaming
// applications on the Cell processor" (Gallet, Jacquelin, Marchal,
// RR-LIP-2009-29 / IPPS 2010 workshops): steady-state scheduling of
// streaming task graphs on the heterogeneous Cell BE processor.
//
// The root package only anchors the module; the library lives in the
// internal packages (graph, platform, core, lp, milp, assign,
// heuristics, sim, daggen, experiments) and is exercised by the
// executables in cmd/ and the runnable examples in examples/.
// See README.md for a guided tour and DESIGN.md for the system
// inventory and per-experiment index.
package cellstream
