// Package cellstream reproduces "Scheduling complex streaming
// applications on the Cell processor" (Gallet, Jacquelin, Marchal,
// RR-LIP-2009-29 / IPPS 2010 workshops): steady-state scheduling of
// streaming task graphs on the heterogeneous Cell BE processor.
//
// The root package only anchors the module; the public surface is the
// session-oriented facade in package sched, the engine lives in the
// internal packages (graph, platform, core, lp, milp, assign,
// heuristics, sim, daggen, serve, experiments), and everything is
// exercised by the executables in cmd/ and the runnable examples in
// examples/.
// See README.md for a guided tour and DESIGN.md for the system
// inventory and per-experiment index.
//
// # Public facade: package sched
//
// Package sched fronts the whole solver stack with one coherent
// configuration (functional options, validated, sane defaults) and a
// long-lived Session, replacing direct use of the four per-package
// option structs (lp.Options, milp.Options, core.SolveOptions,
// assign.Options):
//
//	sess, err := sched.NewSession(
//		sched.WithPlatform(platform.QS22()),
//		sched.WithRelGap(0.05),
//		sched.WithTimeLimit(10*time.Second),
//	)
//	defer sess.Close()
//	res, err := sess.Map(ctx, g)              // throughput-optimal mapping
//	res, err = sess.Sweep(ctx, g, 8, 4, 0)    // Fig. 7 SPE-count sweep
//	res, err = sess.Evaluate(ctx, g, mapping) // analytical report
//	ch, err := sess.Stream(ctx, req, period)  // periodic re-solves
//
// A Session owns the cached formulations, a worker pool bounding
// concurrent solves, and per-graph warm-basis state: SPE-count sweeps
// share ONE compact formulation through a mutable lp.Model — a sweep
// point with k SPEs just fixes the placement columns of the disabled
// SPEs to zero — so consecutive points re-solve through the
// dual simplex from the previous point's basis instead of from
// scratch (BenchmarkSweepWarmVsCold: ~5x fewer pivots than cold
// per-point re-solves on the 50-task paper graph, zero fallbacks).
// Requests are context-cancellable, validated up front
// (sched.ErrBadRequest), and solver failures wrap the lp sentinel
// errors (lp.ErrInfeasible, lp.ErrUnbounded, lp.ErrIterLimit) for
// errors.Is classification. Results of the default search solver are
// deterministic: the same request returns the byte-identical mapping
// whether issued serially or under concurrent load, because every warm
// chain restarts from the session's canonical baseline basis.
//
// lp.Model is the incremental mutation surface underneath: a mutable
// LP over Problem + Solver whose warm state survives the three edits a
// serving workload makes between solves. SetBounds keeps the live
// factorization (dual-simplex repair); AddRow extends the warm basis
// with the new row's slack made basic, so the next solve restores it
// and prices the slack out dually instead of rebuilding cold; SetObj
// bumps a version counter on Problem that makes the context re-price
// against the new costs through the primal phase 2 — the historical
// stale-objective footgun is gone (Solver detects the edit too).
//
// # Serving subsystem: internal/serve and cmd/schedd
//
// internal/serve packages the Session facade as a deployable network
// service (stdlib-only HTTP + JSON): cmd/schedd is the daemon,
// cmd/schedload the matching load generator. Four POST endpoints —
// /v1/map, /v1/sweep, /v1/evaluate, /v1/rootbounds — accept a
// graph.Graph JSON body plus options and return the stable wire
// encoding of sched.Result / sched.RootPoint (sched/wire.go, with
// sched.Digest as the graph content digest). The server owns a pool of
// Sessions sharded by platform configuration and interns parsed graphs
// by digest, so repeat requests for the same content reach the same
// *graph.Graph pointer and reuse the cached formulation and warm
// root-LP state.
//
// The serving semantics are deterministic and overload-safe by
// contract: identical requests produce byte-identical response bodies
// (wall time travels in the Schedd-Solve-Ms header, never the body);
// duplicate in-flight requests coalesce onto one solve keyed on
// (graph digest, platform, op, solver options); admission is a bounded
// queue (MaxConcurrent slots, MaxQueue waiters) plus optional
// per-client token budgets, everything beyond shed fast with 429 and
// Retry-After; per-request deadlines map to context cancellation, with
// solves running on the server's lifecycle context so a disconnecting
// client cannot kill a coalesced solve other waiters share. GET
// /metrics renders Prometheus text: request/latency histograms per
// operation, coalesce and shed counters, and every lp.Stats/milp.Stats
// counter aggregated across solves. See cmd/schedd/README.md for the
// wire API and curl examples; CI replays a deterministic daggen
// request mix (cmd/schedload -quick) and uploads BENCH_serve.json.
//
// # Solver architecture
//
// The mixed linear program of §6 is solved by a three-layer stack:
//
//   - internal/lp: two interchangeable LP engines behind one model API.
//     lp.Solve runs a sparse revised simplex — CSC constraint storage,
//     Harris-style two-pass bounded-variable ratio tests, and an
//     artificial-free composite phase 1. The basis inverse lives behind
//     the factorEngine seam (lp/lu.go): by default a sparse LU
//     factorization (Markowitz pivoting with a threshold tolerance)
//     updated in place by Forrest–Tomlin after every pivot, so
//     FTRAN/BTRAN cost stays near the triangular-solve cost on long
//     solves; Options.Factorization == lp.FactorEta keeps the old
//     product-form eta file selectable for differential tests and
//     ablations. Options.Pricing selects phase-2 pricing: Devex
//     reference weights (default) or steepest edge with exact initial
//     norms computed through the factorization, both with a
//     Bland's-rule fallback under degeneracy. Options.PartialPricing
//     opts into segmented (rotating-segment Dantzig) pricing of the
//     primal phases; Options.DualPricing selects the dual simplex's
//     leaving-row rule — approximate dual steepest edge (default) or
//     plain largest violation. lp.SolveDense keeps the original dense
//     two-phase tableau as an independent reference.
//
//     Warm starts flow through lp.Basis: every optimal sparse solve
//     snapshots its basis (Solution.Basis), and Options.WarmStart
//     restores one — a reinversion revalidates it — then repairs
//     primal feasibility with a bounded-variable dual simplex
//     (lp/dual.go) instead of a phase-1 restart. Its dual ratio test
//     takes the bound-flip "long step": breakpoints are traversed in
//     order and boxed columns whose whole range is absorbed by the
//     leaving row's violation flip to their opposite bound (all flips
//     collapse into one FTRAN), so a single dual pivot can traverse
//     many 0/1 bound flips — the common move when branch-and-bound
//     drives binary α columns. A stale, singular or cycling warm path
//     silently falls back to the cold primal phases. lp.Solver is the
//     reusable context on top: it keeps the CSC matrix and the
//     factorization alive across re-solves of one problem whose bounds
//     change, so a re-solve from the context's own last basis skips
//     the reinversion too.
//
//     Options.Presolve runs a multi-pass reduction pipeline
//     (lp/presolve.go), iterated to a fixpoint (≤ 8 passes):
//
//   - empty rows are decided outright (consistent → dropped,
//     violated beyond a substitution-magnitude-scaled noise
//     tolerance → Infeasible), postsolved by re-basifying their
//     slack;
//
//   - singleton rows become variable bounds and are dropped (same
//     postsolve); an EQ singleton fixes its variable;
//
//   - fixed columns (lo == up — original, branched, tightened or
//     dominated) are substituted into their rows and rest nonbasic
//     at a bound of the ORIGINAL problem on postsolve;
//
//   - free and implied-free column singletons are substituted out
//     of their defining equality row (cost shifts onto the row's
//     other columns); postsolve recomputes the variable from the
//     row snapshot and re-basifies it in place of the row's slack;
//
//   - duplicate columns (proportional constraint coefficients)
//     merge into one when costs are proportional too — postsolve
//     splits the merged value so both halves land inside their own
//     bounds — and a dominated duplicate is fixed at the bound
//     every optimum uses;
//
//   - constraint-driven bound tightening propagates row activity
//     bounds into variable bounds, cascading down to fixed columns
//     and early Infeasible verdicts.
//
//     Every reduction pushes a record on a stack replayed in reverse
//     by postsolve, so both solutions AND bases un-crush through the
//     whole pipeline: the returned Basis is expressed in the original
//     column space (statuses re-rested against the original bounds)
//     and stays reusable, while a WarmStart basis handed to a
//     presolved solve is crushed into the reduced space when every
//     record is compatible and silently dropped (cold) otherwise.
//     lp.TightenBounds exposes the tightening sweep alone: it never
//     moves the LP optimum (implied bounds cut no feasible point), so
//     branch-and-bound runs it as a cheap node preamble.
//
//     Solution.Stats reports pivots, dual pivots, bound flips,
//     Forrest–Tomlin updates and spike growth, refactorizations split
//     by cause (periodic / unstable / restore), warm-start outcomes
//     and the presolve pipeline's per-pass counters (singleton rows,
//     singleton columns, duplicate columns, tightened bounds, passes).
//
//   - internal/milp: LP-based branch-and-bound over a pool of goroutine
//     workers sharing one best-first node heap and one incumbent; each
//     worker tightens bounds on its own clone of the problem through a
//     persistent lp.Solver. Nodes are bound-deltas against the root
//     carrying their parent's Basis, so a child re-solve warm-starts
//     through the dual simplex — after an lp.TightenBounds pass
//     propagates the branching change through the constraints, pruning
//     provably empty nodes without an LP solve and counting into
//     Stats.NodeTightenedBounds/NodeTightenPrunes
//     (Options.DisableTightening ablates it). Cold solves — the root
//     and the rounding heuristic — run the full presolve pipeline
//     instead, which strips the columns the delta chain has fixed and
//     everything that cascades from them. Options.ColdStart restores
//     the old cold-solve-every-node behavior for ablations;
//     Result.Stats aggregates the lp counters across the search.
//     Cancellation and deadlines arrive via context.Context.
//
//     The search is cut-and-branch: a root cutting-plane loop
//     separates Gomory mixed-integer cuts from the optimal basis
//     (lp.Solver.GomoryCuts, one BTRAN per basic fractional integer)
//     and knapsack-cover cuts from the binary capacity rows
//     (lp.CoverCuts), batches each round's violated cuts into one
//     lp.Model.AddRow group, re-solves warm across the grown basis
//     (lp.Basis.GrownBy), and retires cuts whose slack went loose at
//     the final refactorization boundary (lp.Basis.DropRows). A cut
//     pool tracks every distinct cut's age and activity; serial
//     searches may keep separating at node LPs
//     (milp.Options.NodeCutRounds). Branching is pseudocost-driven
//     with reliability initialization: a variable is strong-branched
//     (both child LPs solved on a side lp.Solver context, chained on
//     one live factorization, capped pivots) until its per-direction
//     history is trusted, and the table also learns from every real
//     child-node solve. See "Tuning the search" in ROADMAP.md for the
//     defaults, the ablation flags (DisableCuts, BranchMostFractional,
//     ColdStart) and the measurements behind them.
//
//   - internal/assign: a combinatorial branch-and-bound in assignment
//     space for paper-scale graphs, also context-cancellable. Before
//     searching it solves the LP relaxation of the cached compact
//     formulation as a root bound: a seed incumbent already within the
//     gap proves out immediately.
//
// core.CachedFormulation memoizes Formulation construction per
// (graph, platform, kind), so repeated solves of one instance — the
// Fig. 6/7/8 sweeps, CompareStrategies, heuristic seeding, warm-vs-cold
// benchmarks — share the constraint rows and only mutate bounds inside
// worker-local clones.
//
// internal/lptest is the differential harness that keeps the two LP
// engines honest: seeded random programs (including degenerate,
// unbounded, infeasible and presolve-adversarial shapes — singleton
// chains, duplicate columns, tightening-to-fixed cascades) plus the
// paper's own formulations must produce identical statuses and
// objectives within 1e-6, with every postsolved basis structurally
// valid (lp.Basis.Validate). Native fuzz targets in internal/lp
// (FuzzPresolveRoundTrip, FuzzTightenRoundTrip) hammer the
// presolve→postsolve round trip against the dense reference; their
// corpora under internal/lp/testdata/fuzz replay in regression mode on
// every `go test` and pin the minimized input behind each bug the
// fuzzer has found.
//
// # Machine-checked invariants
//
// Five solver-specific conventions are load-bearing enough that prose
// alone cannot hold them: they are enforced by static analyzers in
// internal/analysis, packaged as the cmd/schedlint multichecker and run
// as a blocking CI step:
//
//		go run ./cmd/schedlint ./...
//
//	  - floatcmp: no bare == / != between computed solver floats, and no
//	    inline magic epsilon literals inside internal/lp and
//	    internal/milp. internal/num is the single source of truth for
//	    every named tolerance (FeasTol, PivTol, DualTol, IntegralityTol,
//	    ...) plus the EqAbs/EqRel/IsZero comparison helpers; a test pins
//	    the relative ordering of the tolerances so a loosened constant
//	    cannot silently reorder solve trajectories.
//
//	  - statuscmp: outside the solver layers, lp.Status and milp.Status
//	    are never compared or switched on directly — callers classify
//	    through errors.Is on the sentinel errors (lp.ErrInfeasible,
//	    lp.ErrUnbounded, lp.ErrIterLimit) via Status.Err, or through
//	    milp.Status.Proved for "gap proven optimal". This keeps new
//	    status codes from silently falling through caller branches.
//
//	  - ctxflow: library code never mints context.Background or
//	    context.TODO (the caller owns cancellation), and every exported
//	    blocking Solve* entry point either takes a ctx or has a Ctx
//	    sibling. The handful of deliberate detachments (budget-bounded LP
//	    kernels cancelled at milp node granularity, compatibility
//	    wrappers) each carry a //lint:allow ctxflow line with the
//	    justification.
//
//	  - detsearch: no nondeterminism sources in the solver packages —
//	    unordered map iteration, time.Now in decision paths, global
//	    math/rand. This is what backs the byte-for-byte determinism
//	    suites: the same instance must replay to the identical Result.
//
//	  - statssync: the search-layer counters on milp.Stats are mutated
//	    only through the approved note* aggregation methods (and
//	    lp.Stats only inside internal/lp), so the locking discipline
//	    around shared stats lives in one reviewable place.
//
// False positives are suppressed inline with
// "//lint:allow <analyzer> <justification>", which covers its own line
// and the next; each analyzer ships an analysistest suite under
// internal/analysis/<name>/testdata with fixtures for the violations,
// the approved patterns, the escape hatch, and a regression case
// reproducing a real finding from the pre-analyzer codebase.
//
// # Test and benchmark suites
//
// "go test ./..." runs everything at full fidelity; "go test -short
// ./..." shrinks instance counts and solver budgets to finish in a few
// seconds. The differential suite lives in internal/lptest; solver
// micro-benchmarks (sparse vs dense, serial vs parallel, warm vs cold
// branch-and-bound) are in bench_test.go:
//
//	go test -bench 'BenchmarkLP|BenchmarkMILP' -benchtime=10x .
package cellstream
