// Package cellstream reproduces "Scheduling complex streaming
// applications on the Cell processor" (Gallet, Jacquelin, Marchal,
// RR-LIP-2009-29 / IPPS 2010 workshops): steady-state scheduling of
// streaming task graphs on the heterogeneous Cell BE processor.
//
// The root package only anchors the module; the library lives in the
// internal packages (graph, platform, core, lp, milp, assign,
// heuristics, sim, daggen, experiments) and is exercised by the
// executables in cmd/ and the runnable examples in examples/.
// See README.md for a guided tour and DESIGN.md for the system
// inventory and per-experiment index.
//
// # Solver architecture
//
// The mixed linear program of §6 is solved by a three-layer stack:
//
//   - internal/lp: two interchangeable LP engines behind one model API.
//     lp.Solve runs a sparse revised simplex — CSC constraint storage,
//     a product-form (eta file) basis inverse with periodic
//     refactorization, Devex pricing with a Bland's-rule fallback under
//     degeneracy, Harris-style two-pass bounded-variable ratio tests,
//     and an artificial-free composite phase 1. lp.SolveDense keeps the
//     original dense two-phase tableau as an independent reference.
//   - internal/milp: LP-based branch-and-bound over a pool of goroutine
//     workers sharing one best-first node heap and one incumbent; each
//     worker tightens bounds on its own clone of the problem.
//     Cancellation and deadlines arrive via context.Context.
//   - internal/assign: a combinatorial branch-and-bound in assignment
//     space for paper-scale graphs, also context-cancellable.
//
// internal/lptest is the differential harness that keeps the two LP
// engines honest: seeded random programs (including degenerate,
// unbounded and infeasible shapes) plus the paper's own formulations
// must produce identical statuses and objectives within 1e-6.
//
// # Test and benchmark suites
//
// "go test ./..." runs everything at full fidelity; "go test -short
// ./..." shrinks instance counts and solver budgets to finish in a few
// seconds. The differential suite lives in internal/lptest; solver
// micro-benchmarks (sparse vs dense, serial vs parallel) are in
// bench_test.go:
//
//	go test -bench 'BenchmarkLP|BenchmarkMILP' -benchtime=10x .
package cellstream
