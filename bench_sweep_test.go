package cellstream

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/graph"
	"cellstream/internal/lp"
	"cellstream/internal/platform"
	"cellstream/sched"
)

// The SPE-count sweep fixture: the paper's 50-task random graph 1 on a
// QS22, swept from the full 8 SPEs down to 0 — the Fig. 7 x-axis.
func sweepFixture() (*graph.Graph, *platform.Platform, []int) {
	g := daggen.PaperGraph1(0.775)
	plat := platform.QS22()
	counts := make([]int, plat.NumSPE+1)
	for i := range counts {
		counts[i] = plat.NumSPE - i // descending: each point warm from the previous
	}
	return g, plat, counts
}

// coldSweepBounds is the pre-facade baseline: one cold presolved root
// LP per sweep point on the reduced platform's own formulation — what
// assign.SolveCtx used to do at every point.
func coldSweepBounds(tb testing.TB, g *graph.Graph, plats []*platform.Platform) ([]float64, lp.Stats) {
	tb.Helper()
	bounds := make([]float64, len(plats))
	var total lp.Stats
	for i, plat := range plats {
		f := core.CachedFormulation(g, plat, false)
		sol, err := lp.SolveOpts(f.Problem.LP, lp.Options{MaxIter: 20000, Presolve: true})
		if err != nil || sol.Status != lp.Optimal {
			tb.Fatalf("cold point %d: %v %+v", i, err, sol)
		}
		bounds[i] = sol.Objective
		total.Iterations += sol.Stats.Iterations
	}
	return bounds, total
}

// BenchmarkSweepWarmVsCold measures the SPE-count sweep's root-LP path:
// one sched.Session whose lp.Model chains dual-simplex warm starts
// across the sweep points, against the pre-facade cold re-solve per
// point. CI runs it at -benchtime=1x as a smoke test; run with
// -benchtime=5x locally for stable numbers.
func BenchmarkSweepWarmVsCold(b *testing.B) {
	g, plat, counts := sweepFixture()
	b.Run("warm", func(b *testing.B) {
		sess, err := sched.NewSession(sched.WithPlatform(plat))
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		for i := 0; i < b.N; i++ {
			pts, err := sess.RootBounds(context.Background(), g, counts)
			if err != nil {
				b.Fatal(err)
			}
			for _, pt := range pts {
				if pt.Bound <= 0 && pt.NumSPE < plat.NumSPE {
					b.Fatalf("nSPE=%d: no bound", pt.NumSPE)
				}
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		plats := make([]*platform.Platform, len(counts))
		for i, k := range counts {
			plats[i] = plat.WithSPEs(k)
		}
		for i := 0; i < b.N; i++ {
			coldSweepBounds(b, g, plats)
		}
	})
}

// sweepBenchRow is one configuration's snapshot in BENCH_sweep.json.
type sweepBenchRow struct {
	Config           string    `json:"config"`
	WallMS           float64   `json:"wall_ms"`
	Bounds           []float64 `json:"bounds"`
	LPIterations     int       `json:"lp_iterations"`
	DualIterations   int       `json:"dual_iterations"`
	BoundFlips       int       `json:"bound_flips"`
	WarmPoints       int       `json:"warm_points"`
	WarmFallbacks    int       `json:"warm_fallbacks"`
	Refactorizations int       `json:"refactorizations"`
}

// TestBenchSnapshotSweep writes BENCH_sweep.json — the SPE-sweep
// dual-warm-start trajectory CI uploads as an artifact — when
// BENCH_SWEEP_SNAPSHOT is set ("1" means ./BENCH_sweep.json). Beyond
// snapshotting, it asserts the facade's warm-sweep acceptance
// criteria: every point past the baseline is served warm (dual pivots
// > 0 overall, zero cold fallbacks) and the warm bounds agree with the
// cold per-point reference to 1e-6.
func TestBenchSnapshotSweep(t *testing.T) {
	path := os.Getenv("BENCH_SWEEP_SNAPSHOT")
	if path == "" {
		t.Skip("BENCH_SWEEP_SNAPSHOT not set")
	}
	if path == "1" {
		path = "BENCH_sweep.json"
	}
	g, plat, counts := sweepFixture()

	sess, err := sched.NewSession(sched.WithPlatform(plat))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	start := time.Now()
	pts, err := sess.RootBounds(context.Background(), g, counts)
	if err != nil {
		t.Fatal(err)
	}
	warmWall := time.Since(start)
	warm := sweepBenchRow{Config: "warm", WallMS: float64(warmWall.Microseconds()) / 1000}
	for _, pt := range pts {
		warm.Bounds = append(warm.Bounds, pt.Bound)
		warm.LPIterations += pt.Stats.Iterations
		warm.DualIterations += pt.Stats.DualIterations
		warm.BoundFlips += pt.Stats.BoundFlips
		warm.Refactorizations += pt.Stats.Refactorizations
		if pt.Warm {
			warm.WarmPoints++
		}
		if pt.Stats.WarmFellBack {
			warm.WarmFallbacks++
		}
	}

	plats := make([]*platform.Platform, len(counts))
	for i, k := range counts {
		plats[i] = plat.WithSPEs(k)
	}
	start = time.Now()
	coldBounds, coldStats := coldSweepBounds(t, g, plats)
	cold := sweepBenchRow{
		Config:       "cold",
		WallMS:       float64(time.Since(start).Microseconds()) / 1000,
		Bounds:       coldBounds,
		LPIterations: coldStats.Iterations,
	}

	// Acceptance: the warm path really is warm, never falls back, and
	// agrees with the cold reference.
	if warm.DualIterations == 0 {
		t.Errorf("warm sweep took no dual pivots: %+v", warm)
	}
	if warm.WarmFallbacks != 0 {
		t.Errorf("warm sweep fell back cold %d times", warm.WarmFallbacks)
	}
	if warm.WarmPoints != len(counts) {
		t.Errorf("%d/%d points served warm", warm.WarmPoints, len(counts))
	}
	for i := range counts {
		if math.Abs(warm.Bounds[i]-cold.Bounds[i]) > 1e-6*(1+math.Abs(cold.Bounds[i])) {
			t.Errorf("nSPE=%d: warm bound %g vs cold %g", counts[i], warm.Bounds[i], cold.Bounds[i])
		}
	}

	out, err := json.MarshalIndent(struct {
		Instance string          `json:"instance"`
		Counts   []int           `json:"spe_counts"`
		Rows     []sweepBenchRow `json:"rows"`
	}{Instance: "PaperGraph1(0.775) compact root LP, QS22 SPE sweep", Counts: counts,
		Rows: []sweepBenchRow{warm, cold}}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (warm %.1fms / cold %.1fms, %d dual pivots)",
		path, warm.WallMS, cold.WallMS, warm.DualIterations)
}
