// Benchmarks regenerating every figure of the paper's evaluation (§6),
// one benchmark per figure/table, plus micro-benchmarks of the solver
// and simulator substrates. Custom metrics carry the reproduced numbers:
// speed-ups (speedup/*), the measured-to-predicted throughput ratio of
// Fig. 6 (ratio), and solver statistics. Run with:
//
//	go test -bench=. -benchmem
package cellstream

import (
	"fmt"
	"testing"
	"time"

	"cellstream/internal/assign"
	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/experiments"
	"cellstream/internal/graph"
	"cellstream/internal/heuristics"
	"cellstream/internal/lp"
	"cellstream/internal/milp"
	"cellstream/internal/platform"
	"cellstream/internal/sim"
)

// benchCfg keeps benchmark iterations affordable while preserving the
// experiment structure; cmd/experiments runs the full-size versions.
func benchCfg() experiments.Config {
	return experiments.Config{
		Instances:  600,
		SolveTime:  2 * time.Second,
		LSIters:    4000,
		LSRestarts: 1,
		SPECounts:  []int{0, 4, 8},
		CCRs:       []float64{0.775, 1.8, 4.6},
	}
}

// BenchmarkFig6SteadyState regenerates Fig. 6: ramp-up of random graph 1
// (CCR 0.775, 8 SPEs) to the steady state predicted by the program.
func BenchmarkFig6SteadyState(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Ratio
	}
	b.ReportMetric(ratio, "measured/predicted")
}

// BenchmarkFig7Speedup regenerates the three speed-up-vs-#SPEs plots of
// Fig. 7, reporting the 8-SPE endpoint of every strategy.
func BenchmarkFig7Speedup(b *testing.B) {
	var rs []*experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = experiments.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for gi, r := range rs {
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(last.LP, fmt.Sprintf("lp_speedup_g%d", gi+1))
		b.ReportMetric(last.GreedyMem, fmt.Sprintf("gmem_speedup_g%d", gi+1))
		b.ReportMetric(last.GreedyCPU, fmt.Sprintf("gcpu_speedup_g%d", gi+1))
	}
}

// BenchmarkFig8CCR regenerates the speed-up-vs-CCR sweep of Fig. 8,
// reporting the endpoints of graph 1.
func BenchmarkFig8CCR(b *testing.B) {
	var rs []*experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = experiments.Fig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rs) > 0 && len(rs[0].Speedup) > 0 {
		b.ReportMetric(rs[0].Speedup[0], "speedup_low_ccr")
		b.ReportMetric(rs[0].Speedup[len(rs[0].Speedup)-1], "speedup_high_ccr")
	}
}

// BenchmarkSolveTime measures the mapping computation on the three paper
// graphs at the paper's 5 % gap (§6 reports ≈20 s CPLEX solves).
func BenchmarkSolveTime(b *testing.B) {
	for gi, g := range daggen.PaperGraphs(0.775) {
		b.Run(fmt.Sprintf("graph%d", gi+1), func(b *testing.B) {
			plat := platform.QS22()
			var nodes int
			for i := 0; i < b.N; i++ {
				res, err := experiments.LPMapping(g, plat, benchCfg())
				if err != nil {
					b.Fatal(err)
				}
				nodes = res.Nodes
			}
			b.ReportMetric(float64(nodes), "bb_nodes")
		})
	}
}

// BenchmarkAblationConstraints re-solves graph 1 with each constraint
// family lifted (DESIGN.md ablation) and reports the analytic speed-ups.
func BenchmarkAblationConstraints(b *testing.B) {
	var rows []experiments.AblationRow
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Ablation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Graph == "paper-graph1-ccr0.775" {
			b.ReportMetric(r.Speedup, r.Variant)
		}
	}
}

// BenchmarkLocalSearch measures the §7 "involved heuristic" extension:
// hill climbing closing part of the greedy-to-LP gap.
func BenchmarkLocalSearch(b *testing.B) {
	g := daggen.PaperGraph1(0.775)
	plat := platform.QS22()
	var sp float64
	for i := 0; i < b.N; i++ {
		m, rep, err := heuristics.Improve(g, plat, heuristics.GreedyCPU(g, plat),
			heuristics.LocalSearchOptions{MaxIters: 4000, Restarts: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = m
		base, _ := core.Evaluate(g, plat, core.AllOnPPE(g))
		sp = base.Period / rep.Period
	}
	b.ReportMetric(sp, "speedup")
}

// --- substrate micro-benchmarks -----------------------------------------

// BenchmarkEvaluate measures the analytical period evaluator, the inner
// loop of every heuristic and of the branch-and-bound search.
func BenchmarkEvaluate(b *testing.B) {
	g := daggen.PaperGraph2(0.775)
	plat := platform.QS22()
	m := heuristics.GreedyCPU(g, plat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(g, plat, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures simulated instances per wall-clock second.
func BenchmarkSimulator(b *testing.B) {
	g := daggen.PaperGraph1(0.775)
	plat := platform.QS22()
	m := heuristics.GreedyCPU(g, plat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(g, plat, m, 500, sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPSimplex measures the sparse revised simplex (the engine
// behind lp.Solve) on the compact formulation of a 12-task mapping LP
// (relaxation only). Compare against BenchmarkLPDenseTableau.
func BenchmarkLPSimplex(b *testing.B) {
	g := daggen.Generate(daggen.Params{Tasks: 12, Seed: 5, CCR: 1})
	plat := platform.Cell(1, 3)
	f := core.FormulateCompact(g, plat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := lp.Solve(f.Problem.LP)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkLPDenseTableau measures the dense two-phase tableau simplex
// (the reference implementation) on the same 12-task relaxation, to
// quantify the revised-simplex speedup.
func BenchmarkLPDenseTableau(b *testing.B) {
	g := daggen.Generate(daggen.Params{Tasks: 12, Seed: 5, CCR: 1})
	plat := platform.Cell(1, 3)
	f := core.FormulateCompact(g, plat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := lp.SolveDense(f.Problem.LP)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkMILPBranchAndBound measures the full mixed-program solve on
// the compact formulation of a 10-task instance, serial versus the
// worker-pool search (the parallel gain tracks GOMAXPROCS).
func BenchmarkMILPBranchAndBound(b *testing.B) {
	g := daggen.Generate(daggen.Params{Tasks: 10, Seed: 7, CCR: 1})
	plat := platform.Cell(1, 2)
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			f := core.FormulateCompact(g, plat)
			var nodes int
			for i := 0; i < b.N; i++ {
				res, err := milp.Solve(f.Problem, milp.Options{
					RelGap:  0.05,
					Workers: cfg.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Status != milp.Optimal {
					b.Fatalf("status %v", res.Status)
				}
				nodes = res.Nodes
			}
			b.ReportMetric(float64(nodes), "bb_nodes")
		})
	}
}

// BenchmarkMILPWarmVsCold measures the warm-start + factorization
// tentpoles: branch-and-bound with basis reuse (parent basis + dual
// simplex with bound flips + presolve) under both basis-inverse
// representations (Forrest–Tomlin LU vs the PR 2 eta file), versus the
// old cold-solve-every-node behavior. The 12-task compact formulation
// runs to the 5 % gap; the 94-task PaperGraph2 compact formulation (the
// Fig. 5(b)-class size where the eta file was the bottleneck) runs a
// fixed 60-node budget so the factorizations are compared on identical
// search work.
func BenchmarkMILPWarmVsCold(b *testing.B) {
	small := daggen.Generate(daggen.Params{Tasks: 12, Seed: 5, CCR: 1})
	smallPlat := platform.Cell(1, 3)
	big := daggen.PaperGraph2(0.775)
	bigPlat := platform.QS22()
	for _, cfg := range []struct {
		name     string
		g        *graph.Graph
		plat     *platform.Platform
		opt      milp.Options
		maxNodes int
	}{
		{"warm-lu", small, smallPlat, milp.Options{Factorization: lp.FactorLU}, 0},
		{"warm-eta", small, smallPlat, milp.Options{Factorization: lp.FactorEta}, 0},
		{"cold", small, smallPlat, milp.Options{ColdStart: true}, 0},
		{"94task/warm-lu", big, bigPlat, milp.Options{Factorization: lp.FactorLU}, 60},
		{"94task/warm-eta", big, bigPlat, milp.Options{Factorization: lp.FactorEta}, 60},
		// The PR 4 search rules (most-fractional, no cuts) on the same
		// budget: the directly comparable continuation of the pre-cut
		// bench trajectory in BENCH_baseline.
		{"94task/pr4-rules", big, bigPlat, milp.Options{Factorization: lp.FactorLU,
			DisableCuts: true, BranchMostFractional: true}, 60},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			f := core.FormulateCompact(cfg.g, cfg.plat)
			opt := cfg.opt
			opt.RelGap = 0.05
			opt.Workers = 1
			opt.MaxNodes = cfg.maxNodes
			var res *milp.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = milp.Solve(f.Problem, opt)
				if err != nil {
					b.Fatal(err)
				}
				if cfg.maxNodes == 0 && res.Status != milp.Optimal {
					b.Fatalf("status %v", res.Status)
				}
			}
			b.ReportMetric(float64(res.Nodes), "bb_nodes")
			b.ReportMetric(float64(res.Stats.LPIterations)/float64(res.Nodes), "pivots_per_node")
			b.ReportMetric(float64(res.Stats.BoundFlips), "bound_flips")
			b.ReportMetric(float64(res.Stats.FTUpdates), "ft_updates")
			b.ReportMetric(float64(res.Stats.Refactorizations), "refactorizations")
			b.ReportMetric(float64(res.Stats.WarmSolves), "warm_solves")
			b.ReportMetric(float64(res.Stats.WarmFallbacks), "warm_fallbacks")
		})
	}
}

// BenchmarkAssignBB measures the assignment branch-and-bound at the 5 %
// gap on a mid-size graph.
func BenchmarkAssignBB(b *testing.B) {
	g := daggen.Generate(daggen.Params{Tasks: 30, Seed: 9, CCR: 1})
	plat := platform.QS22()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assign.Solve(g, plat, assign.Options{RelGap: 0.05, TimeLimit: 5 * time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyHeuristics measures the §6.3 reference strategies.
func BenchmarkGreedyHeuristics(b *testing.B) {
	g := daggen.PaperGraph2(0.775)
	plat := platform.QS22()
	b.Run("GreedyMem", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			heuristics.GreedyMem(g, plat)
		}
	})
	b.Run("GreedyCPU", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			heuristics.GreedyCPU(g, plat)
		}
	})
}
