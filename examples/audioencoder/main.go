// Audio encoder: the "real audio encoder" application family the paper
// mentions in its abstract, modelled as an MP2/MP3-style encoding
// pipeline. The psychoacoustic model peeks one frame ahead (bit-reservoir
// style decisions need the next granule), making this a natural exercise
// of the peek semantics and of the buffer sizing of §4.2.
//
// Run with:
//
//	go run ./examples/audioencoder
package main

import (
	"fmt"
	"log"
	"time"

	"cellstream/internal/assign"
	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/heuristics"
	"cellstream/internal/platform"
	"cellstream/internal/sim"
)

// buildEncoder models one stereo MP2-style encoder frame pipeline.
// Frame = 1152 samples × 2 channels × 2 bytes = 4608 B/channel.
func buildEncoder() *graph.Graph {
	g := &graph.Graph{Name: "audio-encoder"}
	const frame = 1152 * 2 // bytes per channel per frame (16-bit PCM)

	src := g.AddTask(graph.Task{Name: "pcm-in", WPPE: 2e-6, WSPE: 4e-6, ReadBytes: 2 * frame})
	// Per-channel polyphase filterbank + MDCT: dense SIMD math,
	// much faster on SPEs.
	var mdct [2]graph.TaskID
	for ch := 0; ch < 2; ch++ {
		fb := g.AddTask(graph.Task{Name: fmt.Sprintf("filterbank%d", ch), WPPE: 45e-6, WSPE: 9e-6})
		g.AddEdge(src, fb, frame)
		m := g.AddTask(graph.Task{Name: fmt.Sprintf("mdct%d", ch), WPPE: 30e-6, WSPE: 6e-6})
		g.AddEdge(fb, m, 32*36*4) // 32 subbands × 36 coefficients × float
		mdct[ch] = m
	}
	// Psychoacoustic model: runs on both channels, branchy code that the
	// PPE handles better, and it peeks one frame ahead.
	psy := g.AddTask(graph.Task{Name: "psymodel", WPPE: 25e-6, WSPE: 40e-6, Peek: 1})
	g.AddEdge(src, psy, 2*frame)
	// Quantization per channel, guided by the psychoacoustic model.
	var quant [2]graph.TaskID
	for ch := 0; ch < 2; ch++ {
		q := g.AddTask(graph.Task{Name: fmt.Sprintf("quantize%d", ch), WPPE: 22e-6, WSPE: 7e-6, Stateful: true})
		g.AddEdge(mdct[ch], q, 32*36*4)
		g.AddEdge(psy, q, 512)
		quant[ch] = q
	}
	// Huffman/bit packing: sequential, stateful, PPE-friendly.
	pack := g.AddTask(graph.Task{Name: "bitpack", WPPE: 12e-6, WSPE: 26e-6, Stateful: true})
	g.AddEdge(quant[0], pack, 1200)
	g.AddEdge(quant[1], pack, 1200)
	mux := g.AddTask(graph.Task{Name: "mux-out", WPPE: 3e-6, WSPE: 6e-6, WriteBytes: 1044, Stateful: true})
	g.AddEdge(pack, mux, 1044) // ~417 kbit/s stereo stream
	return g
}

func main() {
	g := buildEncoder()
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	plat := platform.QS22()
	fmt.Printf("%v on %v\n\n", g, plat)

	fp := core.FirstPeriods(g)
	bufs := core.BufferSizes(g)
	fmt.Println("firstPeriod / buffers (§4.2):")
	for k, t := range g.Tasks {
		fmt.Printf("  %-12s firstPeriod=%d\n", t.Name, fp[k])
	}
	var total int64
	for _, b := range bufs {
		total += b
	}
	fmt.Printf("  total buffer bytes across all edges: %d\n\n", total)

	strategies := []struct {
		name string
		run  func() (core.Mapping, error)
	}{
		{"GreedyMem", func() (core.Mapping, error) { return heuristics.GreedyMem(g, plat), nil }},
		{"GreedyCPU", func() (core.Mapping, error) { return heuristics.GreedyCPU(g, plat), nil }},
		{"LP (5% gap)", func() (core.Mapping, error) {
			res, err := assign.Solve(g, plat, assign.Options{RelGap: 0.05, TimeLimit: 10 * time.Second})
			if err != nil {
				return nil, err
			}
			return res.Mapping, nil
		}},
	}
	base, err := core.Evaluate(g, plat, core.AllOnPPE(g))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPE-only period: %.3g s (%.0f frames/s)\n\n", base.Period, base.Throughput())
	for _, s := range strategies {
		m, err := s.run()
		if err != nil {
			log.Fatal(err)
		}
		rep, err := core.Evaluate(g, plat, m)
		if err != nil {
			log.Fatal(err)
		}
		simRes, err := sim.Run(g, plat, m, 5000, sim.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s analytic %.2fx, measured %.2fx (%.0f frames/s), feasible=%v\n",
			s.name, base.Period/rep.Period,
			simRes.SteadyThroughput()*base.Period, simRes.SteadyThroughput(), rep.Feasible)
	}
	fmt.Println("\n(The 48 kHz frame rate an encoder must sustain is 41.7 frames/s —")
	fmt.Println(" every mapping above encodes orders of magnitude faster than real time,")
	fmt.Println(" which is why the paper can stream many encodings concurrently.)")
}
