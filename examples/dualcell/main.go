// Dual-Cell: the paper's first listed extension (§7) — using both Cell
// processors of the IBM QS22 blade. The steady-state model, solver and
// simulator all generalize to nP = 2, nS = 16 unchanged (the preset
// models the optimistic no-inter-Cell-contention case); this example
// quantifies how much a second Cell buys for the three paper graphs.
//
// Run with:
//
//	go run ./examples/dualcell
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"cellstream/internal/assign"
	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/heuristics"
	"cellstream/internal/platform"
	"cellstream/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "one graph with short solver budgets (smoke test)")
	flag.Parse()
	lsIters, budget, instances := 10000, 8*time.Second, 2000
	graphs := daggen.PaperGraphs(0.775)
	if *quick {
		lsIters, budget, instances = 1000, 500*time.Millisecond, 400
		graphs = graphs[:1]
	}
	single := platform.QS22()
	dual := platform.QS22Dual()
	fmt.Printf("single: %v\ndual:   %v\n\n", single, dual)
	fmt.Printf("%-24s %14s %14s %8s\n", "graph", "1 Cell", "2 Cells", "gain")
	for _, g := range graphs {
		speedup := func(plat *platform.Platform) float64 {
			seed, _, err := heuristics.Improve(g, plat, heuristics.GreedyCPU(g, plat),
				heuristics.LocalSearchOptions{MaxIters: lsIters, Restarts: 2})
			if err != nil {
				log.Fatal(err)
			}
			res, err := assign.Solve(g, plat, assign.Options{RelGap: 0.05, TimeLimit: budget, Seed: seed})
			if err != nil {
				log.Fatal(err)
			}
			// Measure on the simulator, normalized to one-PPE-only.
			baseline, err := core.Evaluate(g, plat, core.AllOnPPE(g))
			if err != nil {
				log.Fatal(err)
			}
			simRes, err := sim.Run(g, plat, res.Mapping, instances, sim.Config{})
			if err != nil {
				log.Fatal(err)
			}
			return simRes.SteadyThroughput() * baseline.Period
		}
		s1 := speedup(single)
		s2 := speedup(dual)
		fmt.Printf("%-24s %13.2fx %13.2fx %7.2fx\n", g.Name, s1, s2, s2/s1)
	}
	fmt.Println("\nThe second Cell doubles SPE count and adds a PPE; the gain is")
	fmt.Println("sub-linear because the local-store constraint — not compute — binds")
	fmt.Println("(see the ablation in EXPERIMENTS.md), and stream sources/sinks still")
	fmt.Println("funnel through main memory.")
}
