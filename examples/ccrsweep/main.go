// CCR sweep: shows how the achievable speed-up of one application decays
// as its communication-to-computation ratio grows (the Fig. 8 phenomenon)
// on a user-provided or generated graph, comparing the optimal mapping
// against the greedy heuristics at every point.
//
// All solver work goes through one long-lived sched.Session: the mapping
// solves and the fixed-mapping evaluations share its configuration,
// formulation cache and worker pool.
//
// Run with:
//
//	go run ./examples/ccrsweep
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/heuristics"
	"cellstream/internal/platform"
	"cellstream/sched"
)

func main() {
	quick := flag.Bool("quick", false, "tiny sweep with short solver budgets (smoke test)")
	flag.Parse()
	ccrs := []float64{0.5, 0.775, 1.2, 1.8, 2.6, 3.5, 4.6, 6.5}
	tasks, budget := 40, 5*time.Second
	if *quick {
		ccrs = []float64{0.775, 4.6}
		tasks, budget = 16, 500*time.Millisecond
	}
	sess, err := sched.NewSession(
		sched.WithPlatform(platform.QS22()),
		sched.WithRelGap(0.05),
		sched.WithTimeLimit(budget),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()
	plat := sess.Config().Platform

	fmt.Printf("analytic speed-up vs CCR on %v\n", plat)
	fmt.Printf("%8s %12s %12s %12s\n", "CCR", "GreedyMem", "GreedyCPU", "LP(5%)")
	for _, ccr := range ccrs {
		g := daggen.Generate(daggen.Params{
			Tasks: tasks, Fat: 0.5, Density: 0.4, Jump: 2, Seed: 77, CCR: ccr,
		})
		base, err := sess.Evaluate(ctx, g, core.AllOnPPE(g))
		if err != nil {
			log.Fatal(err)
		}
		sp := func(m core.Mapping) float64 {
			rep, err := sess.Evaluate(ctx, g, m)
			if err != nil {
				log.Fatal(err)
			}
			return base.Report.Period / rep.Report.Period
		}
		res, err := sess.Map(ctx, g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.3g %11.2fx %11.2fx %11.2fx\n", ccr,
			sp(heuristics.GreedyMem(g, plat)),
			sp(heuristics.GreedyCPU(g, plat)),
			sp(res.Mapping))
	}
	fmt.Println("\nHigher CCR → heavier transfers and buffers → fewer tasks leave the")
	fmt.Println("PPE and interfaces saturate → the speed-up decays toward 1 (Fig. 8).")
}
