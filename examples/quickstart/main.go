// Quickstart: build a small streaming application, compute a
// throughput-optimal mapping for a PlayStation 3 through the sched
// facade, and simulate it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/platform"
	"cellstream/internal/sim"
	"cellstream/sched"
)

func main() {
	// A five-stage pipeline: decode → two parallel filters → merge → encode.
	// Costs follow the unrelated-machine model: the SIMD-friendly filters
	// are much faster on SPEs, the control-heavy decode is faster on the PPE.
	g := &graph.Graph{Name: "quickstart"}
	decode := g.AddTask(graph.Task{Name: "decode", WPPE: 8e-6, WSPE: 14e-6, ReadBytes: 16 * 1024})
	blur := g.AddTask(graph.Task{Name: "blur", WPPE: 20e-6, WSPE: 5e-6})
	sharpen := g.AddTask(graph.Task{Name: "sharpen", WPPE: 18e-6, WSPE: 4e-6})
	merge := g.AddTask(graph.Task{Name: "merge", WPPE: 6e-6, WSPE: 3e-6})
	encode := g.AddTask(graph.Task{Name: "encode", WPPE: 12e-6, WSPE: 9e-6, Peek: 1, WriteBytes: 8 * 1024})
	g.AddEdge(decode, blur, 16*1024)
	g.AddEdge(decode, sharpen, 16*1024)
	g.AddEdge(blur, merge, 16*1024)
	g.AddEdge(sharpen, merge, 16*1024)
	g.AddEdge(merge, encode, 16*1024)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	// One Session carries the whole workload: it owns the cached
	// formulation and the warm-start state, serves concurrent requests,
	// and replaces the per-package option structs with one Config.
	sess, err := sched.NewSession(
		sched.WithPlatform(platform.PlayStation3()), // 1 PPE + 6 SPEs
		sched.WithRelGap(0.05),                      // the paper's 5 % gap
		sched.WithTimeLimit(5*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	// Solve the steady-state mapping problem (the paper's mixed linear
	// program) to a 5 % optimality gap.
	res, err := sess.Map(ctx, g)
	if err != nil {
		log.Fatal(err)
	}
	plat := sess.Config().Platform
	fmt.Printf("optimal period: %.3g s → %.0f instances/s (bound %.3g s, proved=%v)\n",
		res.Report.Period, res.Report.Throughput(), res.PeriodBound, res.Proved)
	for k, pe := range res.Mapping {
		fmt.Printf("  %-8s → %s\n", g.Tasks[k].Name, plat.PEName(pe))
	}

	// Compare with the trivial PPE-only deployment, evaluated through
	// the same session.
	base, err := sess.Evaluate(ctx, g, core.AllOnPPE(g))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speed-up vs PPE-only: %.2fx\n", base.Report.Period/res.Report.Period)

	// Simulate 10 000 frames through the pipeline.
	simRes, err := sim.Run(g, plat, res.Mapping, 10000, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: 10000 instances in %.3g s, steady %.0f/s (%.1f%% of model)\n",
		simRes.TotalTime, simRes.SteadyThroughput(),
		100*simRes.SteadyThroughput()/res.Report.Throughput())
}
