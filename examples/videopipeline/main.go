// Video pipeline: the motivating workload of the paper's introduction —
// a video stream where every image flows through a DAG of filters
// (de-noise, scale, color grade, overlay, encode) with a motion
// estimator that peeks at future frames, deployed on a PlayStation 3.
// Prints the ramp-up to steady state, the Fig. 6 experiment in miniature.
//
// Run with:
//
//	go run ./examples/videopipeline
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"cellstream/internal/assign"
	"cellstream/internal/graph"
	"cellstream/internal/platform"
	"cellstream/internal/sim"
)

func buildPipeline() *graph.Graph {
	g := &graph.Graph{Name: "video-pipeline"}
	const tile = 16 * 1024 // one working tile of a frame per instance

	capture := g.AddTask(graph.Task{Name: "capture", WPPE: 4e-6, WSPE: 8e-6, ReadBytes: tile})
	denoise := g.AddTask(graph.Task{Name: "denoise", WPPE: 35e-6, WSPE: 7e-6})
	scale := g.AddTask(graph.Task{Name: "scale", WPPE: 25e-6, WSPE: 5e-6})
	grade := g.AddTask(graph.Task{Name: "grade", WPPE: 18e-6, WSPE: 4e-6})
	overlay := g.AddTask(graph.Task{Name: "overlay", WPPE: 9e-6, WSPE: 6e-6})
	// Motion estimation compares against the two upcoming frames.
	motion := g.AddTask(graph.Task{Name: "motion", WPPE: 40e-6, WSPE: 11e-6, Peek: 2})
	encode := g.AddTask(graph.Task{Name: "encode", WPPE: 22e-6, WSPE: 16e-6, Stateful: true, WriteBytes: tile / 8})

	g.AddEdge(capture, denoise, tile)
	g.AddEdge(denoise, scale, tile)
	g.AddEdge(scale, grade, tile/2)
	g.AddEdge(grade, overlay, tile/2)
	g.AddEdge(capture, motion, tile)
	g.AddEdge(motion, encode, 2048)
	g.AddEdge(overlay, encode, tile/2)
	return g
}

func main() {
	g := buildPipeline()
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	plat := platform.PlayStation3()
	res, err := assign.Solve(g, plat, assign.Options{RelGap: 0.05, TimeLimit: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v on %v\n", g, plat)
	fmt.Printf("mapping (period %.3g s, %.0f tiles/s):\n", res.Report.Period, res.Report.Throughput())
	for k, pe := range res.Mapping {
		fmt.Printf("  %-8s → %s\n", g.Tasks[k].Name, plat.PEName(pe))
	}

	simRes, err := sim.Run(g, plat, res.Mapping, 8000, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nramp-up to steady state (cumulative throughput, %% of model):\n")
	curve := simRes.RampCurve()
	model := res.Report.Throughput()
	for _, i := range []int{0, 9, 49, 99, 499, 999, 3999, 7999} {
		if i >= len(curve) {
			break
		}
		frac := curve[i] / model
		bar := strings.Repeat("#", int(frac*50))
		fmt.Printf("  after %5d instances: %6.0f/s %5.1f%% %s\n", i+1, curve[i], 100*frac, bar)
	}
	fmt.Printf("steady state: %.0f tiles/s = %.1f%% of the model prediction\n",
		simRes.SteadyThroughput(), 100*simRes.SteadyThroughput()/model)
}
