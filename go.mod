module cellstream

go 1.24
