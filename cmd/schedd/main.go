// Command schedd serves the scheduling framework over HTTP: a daemon
// owning a pool of sched.Sessions that maps, sweeps and evaluates
// streaming task graphs on request (internal/serve is the subsystem,
// this is its process wrapper).
//
// Usage:
//
//	schedd [-addr :8080] [-platform qs22|ps3] [-spes N]
//	       [-concurrent N] [-queue N] [-rate R] [-burst N]
//	       [-gap G] [-budget D]
//
// See cmd/schedd/README.md for the wire API and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cellstream/internal/platform"
	"cellstream/internal/serve"
	"cellstream/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("schedd: ")
	addr := flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
	platName := flag.String("platform", "qs22", "default platform preset: qs22 or ps3")
	spes := flag.Int("spes", -1, "override the default platform's number of SPEs")
	concurrent := flag.Int("concurrent", 0, "max concurrent solves (0 = min(GOMAXPROCS, 8))")
	queue := flag.Int("queue", 0, "max requests queued for a solve slot (0 = 64)")
	rate := flag.Float64("rate", 0, "per-client budget in requests/second (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-client burst size (0 = derived from -rate)")
	gap := flag.Float64("gap", 0, "session relative optimality gap (0 = sched default)")
	budget := flag.Duration("budget", 0, "session per-solve time budget (0 = sched default)")
	flag.Parse()

	var plat *platform.Platform
	switch *platName {
	case "qs22":
		plat = platform.QS22()
	case "ps3":
		plat = platform.PlayStation3()
	default:
		log.Fatalf("unknown platform %q", *platName)
	}
	if *spes >= 0 {
		plat = plat.WithSPEs(*spes)
	}
	var opts []sched.Option
	if *gap > 0 {
		opts = append(opts, sched.WithRelGap(*gap))
	}
	if *budget > 0 {
		opts = append(opts, sched.WithTimeLimit(*budget))
	}

	// ctx is the server's lifecycle: cancelling it aborts in-flight
	// solves once graceful shutdown gives up on them.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srv, err := serve.New(ctx, serve.Config{
		DefaultPlatform: plat,
		SessionOptions:  opts,
		MaxConcurrent:   *concurrent,
		MaxQueue:        *queue,
		ClientRate:      *rate,
		ClientBurst:     *burst,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	log.Printf("listening on %s (platform %v)", ln.Addr(), plat)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		return
	}

	// Graceful drain: stop accepting, let in-flight requests finish,
	// then cut the lifecycle context so stuck solves abort.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutCancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	cancel()
	srv.Close()
	log.Printf("bye")
}
