// Command daggen generates random streaming task graphs in the style of
// the DagGen generator used by the paper (§6.2) and writes them as JSON
// for cmd/cellsched.
//
// Usage:
//
//	daggen -tasks 50 [-fat 0.5] [-regularity 0.5] [-density 0.5]
//	       [-jump 1] [-ccr 0.775] [-seed 1] [-o graph.json]
//	daggen -paper 1|2|3 [-ccr 0.775] [-o graph.json]
package main

import (
	"flag"
	"log"
	"os"

	"cellstream/internal/daggen"
	"cellstream/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daggen: ")
	tasks := flag.Int("tasks", 50, "number of tasks")
	fat := flag.Float64("fat", 0.5, "graph width parameter (0..~2)")
	regularity := flag.Float64("regularity", 0.5, "layer-width regularity (0..1)")
	density := flag.Float64("density", 0.5, "extra-edge probability (0..1)")
	jump := flag.Int("jump", 1, "max layers an edge can skip")
	ccr := flag.Float64("ccr", 0.775, "target communication-to-computation ratio")
	seed := flag.Int64("seed", 1, "random seed")
	paper := flag.Int("paper", 0, "emit paper graph 1, 2 or 3 instead of a custom one")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var g *graph.Graph
	switch *paper {
	case 0:
		g = daggen.Generate(daggen.Params{
			Tasks: *tasks, Fat: *fat, Regularity: *regularity,
			Density: *density, Jump: *jump, CCR: *ccr, Seed: *seed,
		})
	case 1:
		g = daggen.PaperGraph1(*ccr)
	case 2:
		g = daggen.PaperGraph2(*ccr)
	case 3:
		g = daggen.PaperGraph3(*ccr)
	default:
		log.Fatalf("-paper must be 1, 2 or 3 (got %d)", *paper)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteJSON(w); err != nil {
		log.Fatal(err)
	}
	log.Printf("%v (CCR %.3g)", g, g.CCR(daggen.DefaultElementBytes, 1/daggen.DefaultPPERate))
}
