// Command schedload replays a deterministic daggen request mix against
// a schedd server and reports throughput, latency percentiles and the
// coalesce rate (the serving benchmark behind BENCH_serve.json).
//
// Usage:
//
//	schedload [-url http://host:port] [-requests N] [-clients N]
//	          [-graphs N] [-tasks N] [-seed S] [-quick] [-o out.json]
//
// With no -url, schedload hosts an in-process schedd on a loopback
// port and drives that, so one invocation measures the full serving
// stack without a separate daemon.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"cellstream/internal/platform"
	"cellstream/internal/serve"
	"cellstream/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("schedload: ")
	url := flag.String("url", "", "schedd base URL (empty = host an in-process server)")
	requests := flag.Int("requests", 0, "total requests (0 = 200)")
	clients := flag.Int("clients", 0, "concurrent clients (0 = 8)")
	graphs := flag.Int("graphs", 0, "distinct graphs in the mix (0 = 6)")
	tasks := flag.Int("tasks", 0, "tasks per graph (0 = 12)")
	seed := flag.Int64("seed", 0, "mix seed (0 = 1)")
	quick := flag.Bool("quick", false, "small quick run (64 requests, 8-task graphs)")
	out := flag.String("o", "", "write the report as JSON to this file")
	flag.Parse()

	cfg := serve.LoadConfig{
		BaseURL:  *url,
		Requests: *requests,
		Clients:  *clients,
		Graphs:   *graphs,
		Tasks:    *tasks,
		Seed:     *seed,
	}
	if *quick {
		if cfg.Requests == 0 {
			cfg.Requests = 64
		}
		if cfg.Tasks == 0 {
			cfg.Tasks = 8
		}
		if cfg.Graphs == 0 {
			cfg.Graphs = 4
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if cfg.BaseURL == "" {
		// Self-hosted run: a small Cell so quick runs stay quick, fast
		// seeding so the solve cost is the LP, not the search.
		srv, err := serve.New(ctx, serve.Config{
			DefaultPlatform: platform.Cell(1, 3),
			SessionOptions:  []sched.Option{sched.WithSeeding(1500, 1)},
		})
		if err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer func() {
			ts.Close()
			srv.Close()
		}()
		cfg.BaseURL = ts.URL
		log.Printf("hosting in-process schedd at %s", ts.URL)
	}

	rep, err := serve.LoadGen(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	if rep.Failed > 0 {
		log.Fatalf("%d requests failed", rep.Failed)
	}
	if *out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
}
