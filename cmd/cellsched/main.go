// Command cellsched computes and evaluates mappings of a streaming task
// graph onto a Cell platform, and optionally simulates their execution —
// the command-line face of the scheduling framework of §6.1.
//
// Usage:
//
//	cellsched -graph app.json [-platform qs22|ps3] [-spes N]
//	          [-strategy lp|milp|greedymem|greedycpu|roundrobin|localsearch]
//	          [-simulate N] [-dot out.dot] [-v]
//
// The graph file is the JSON form produced by cmd/daggen or
// graph.WriteJSON. The mapping, its analytical report, and (optionally)
// the simulated throughput are printed to stdout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/graph"
	"cellstream/internal/heuristics"
	"cellstream/internal/lp"
	"cellstream/internal/milp"
	"cellstream/internal/platform"
	"cellstream/internal/sim"
	"cellstream/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cellsched: ")
	graphPath := flag.String("graph", "", "path to the task-graph JSON (required)")
	platName := flag.String("platform", "qs22", "platform preset: qs22 or ps3")
	spes := flag.Int("spes", -1, "override the number of SPEs")
	strategy := flag.String("strategy", "lp", "mapping strategy: lp, milp, greedymem, greedycpu, roundrobin, localsearch")
	simulate := flag.Int("simulate", 0, "simulate this many stream instances (0 = no simulation)")
	budget := flag.Duration("budget", 20*time.Second, "solver time budget for lp/milp")
	dot := flag.String("dot", "", "write the mapped graph in Graphviz DOT form to this file")
	schedule := flag.Int("schedule", 0, "print the first N periods of the periodic schedule (Fig. 3 style)")
	verbose := flag.Bool("v", false, "print per-PE occupancies")
	flag.Parse()

	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := graph.LoadFile(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	var plat *platform.Platform
	switch *platName {
	case "qs22":
		plat = platform.QS22()
	case "ps3":
		plat = platform.PlayStation3()
	default:
		log.Fatalf("unknown platform %q", *platName)
	}
	if *spes >= 0 {
		plat = plat.WithSPEs(*spes)
	}

	m, how, solverStats, err := computeMapping(g, plat, *strategy, *budget)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.Evaluate(g, plat, m)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph:     %v\n", g)
	fmt.Printf("platform:  %v\n", plat)
	fmt.Printf("strategy:  %s (%s)\n", *strategy, how)
	fmt.Printf("period:    %.6g s  (throughput %.6g instances/s)\n", rep.Period, rep.Throughput())
	fmt.Printf("bottleneck: %s\n", rep.Bottleneck)
	fmt.Printf("feasible:  %v\n", rep.Feasible)
	for _, v := range rep.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	base, err := core.Evaluate(g, plat, core.AllOnPPE(g))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speed-up:  %.3fx vs PPE-only\n", base.Period/rep.Period)
	fmt.Print("mapping:\n")
	perPE := make(map[int][]string)
	for k, pe := range m {
		perPE[pe] = append(perPE[pe], g.Tasks[k].Name)
	}
	for pe := 0; pe < plat.NumPE(); pe++ {
		if tasks := perPE[pe]; tasks != nil {
			fmt.Printf("  %-5s: %v\n", plat.PEName(pe), tasks)
		}
	}
	if *verbose {
		for pe := 0; pe < plat.NumPE(); pe++ {
			fmt.Printf("  %-5s compute %.3gs in %.3gB out %.3gB buffers %dB dmaIn %d dmaToPPE %d\n",
				plat.PEName(pe), rep.ComputeLoad[pe], rep.InBytes[pe], rep.OutBytes[pe],
				rep.BufferBytes[pe], rep.DMAIn[pe], rep.DMAToPPE[pe])
		}
		if solverStats != "" {
			fmt.Printf("solver:    %s\n", solverStats)
		}
	}

	if *schedule > 0 {
		ps, err := core.BuildSchedule(g, plat, m)
		if err != nil {
			log.Fatal(err)
		}
		if err := ps.Validate(g); err != nil {
			log.Fatal(err)
		}
		fmt.Print(ps.Gantt(g, plat, *schedule))
	}

	if *dot != "" {
		ints := make([]int, len(m))
		copy(ints, m)
		if err := os.WriteFile(*dot, []byte(g.DOT(ints)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *dot)
	}

	if *simulate > 0 {
		res, err := sim.Run(g, plat, m, *simulate, sim.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated: %d instances in %.6g s, steady throughput %.6g/s (%.1f%% of analytical)\n",
			res.Instances, res.TotalTime, res.SteadyThroughput(),
			100*res.SteadyThroughput()/rep.Throughput())
	}
}

// computeMapping returns the mapping, a one-line description of how it
// was obtained, and (for the solver-backed strategies) a solver
// statistics line printed under -v. The solver strategies go through
// the sched facade: one Session per invocation, classified errors
// (errors.Is against lp.ErrInfeasible / lp.ErrIterLimit) instead of
// status-string matching.
func computeMapping(g *graph.Graph, plat *platform.Platform, strategy string, budget time.Duration) (core.Mapping, string, string, error) {
	switch strategy {
	case "greedymem":
		return heuristics.GreedyMem(g, plat), "greedy, memory-balancing (§6.3)", "", nil
	case "greedycpu":
		return heuristics.GreedyCPU(g, plat), "greedy, load-balancing (§6.3)", "", nil
	case "roundrobin":
		return heuristics.RoundRobin(g, plat), "cyclic baseline", "", nil
	case "localsearch":
		m, _, err := heuristics.Improve(g, plat, heuristics.GreedyCPU(g, plat),
			heuristics.LocalSearchOptions{MaxIters: 20000, Restarts: 6})
		return m, "hill climbing from GreedyCPU", "", err
	case "lp":
		res, err := solveVia(g, plat, budget)
		if err != nil {
			return nil, "", "", err
		}
		stats := assignStatsLine(res)
		return res.Mapping, fmt.Sprintf("steady-state program, 5%% gap: bound %.3gs, %d nodes, proved=%v",
			res.PeriodBound, res.Nodes, res.Proved), stats, nil
	case "milp":
		res, err := solveVia(g, plat, budget, sched.WithSolver(sched.SolverMILP))
		if err != nil {
			return nil, "", "", err
		}
		stats := milpStatsLine(res.Stats, res.Nodes)
		return res.Mapping, fmt.Sprintf("mixed linear program (1a)-(1k): proved=%v, %d nodes", res.Proved, res.Nodes), stats, nil
	default:
		return nil, "", "", fmt.Errorf("unknown strategy %q", strategy)
	}
}

// solveVia runs one mapping request through a throwaway sched.Session.
func solveVia(g *graph.Graph, plat *platform.Platform, budget time.Duration, extra ...sched.Option) (*sched.Result, error) {
	opts := append([]sched.Option{
		sched.WithPlatform(plat),
		sched.WithRelGap(0.05),
		sched.WithTimeLimit(budget),
	}, extra...)
	sess, err := sched.NewSession(opts...)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	res, err := sess.Map(context.Background(), g)
	if err != nil {
		switch {
		case errors.Is(err, lp.ErrInfeasible):
			return nil, fmt.Errorf("the mapping program is infeasible on %v: %w", plat, err)
		case errors.Is(err, lp.ErrIterLimit):
			return nil, fmt.Errorf("solver budget exhausted before a mapping existed (raise -budget): %w", err)
		default:
			return nil, err
		}
	}
	return res, nil
}

// milpStatsLine formats the solver statistics printed under -v for the
// milp strategy. The exact wording is a CLI contract pinned by the
// golden test in main_test.go: scripts grep these lines, so new
// counters extend the line instead of reshaping it.
func milpStatsLine(st milp.Stats, nodes int) string {
	return fmt.Sprintf("%d LP pivots (%d dual, %d bound flips) over %d nodes, "+
		"%d FT updates (spike growth %.3g), %d refactorizations (%d periodic, %d unstable, %d restore), "+
		"warm %d / fell back %d, presolved %d cols %d rows "+
		"(%d singleton rows, %d singleton cols, %d dup cols, %d tightened, %d passes), "+
		"node tighten %d bounds / %d prunes, "+
		"cuts %d separated (%d gomory, %d cover) %d active %d retired over %d rounds %d re-solves, "+
		"branching %d pseudocost / %d strong-branch solves",
		st.LPIterations, st.DualIterations, st.BoundFlips, nodes,
		st.FTUpdates, st.MaxSpikeGrowth,
		st.Refactorizations, st.RefactorPeriodic, st.RefactorUnstable, st.RefactorRestore,
		st.WarmSolves, st.WarmFallbacks, st.PresolvedCols, st.PresolvedRows,
		st.PresolveSingletonRows, st.PresolveSingletonCols, st.PresolveDupCols,
		st.PresolveTightened, st.PresolvePasses,
		st.NodeTightenedBounds, st.NodeTightenPrunes,
		st.CutsSeparated, st.GomoryCuts, st.CoverCuts, st.CutsActive, st.CutsRetired,
		st.CutRounds, st.CutResolves,
		st.PseudocostBranches, st.StrongBranchSolves)
}

// assignStatsLine formats the -v statistics of the lp (assignment
// search) strategy; also pinned by the golden test.
func assignStatsLine(res *sched.Result) string {
	return fmt.Sprintf("root LP bound %.3gs, search bound %.3gs, %d nodes",
		res.RootLPBound, res.PeriodBound, res.Nodes)
}
