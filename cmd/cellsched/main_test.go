package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/milp"
	"cellstream/internal/platform"
	"cellstream/sched"
)

func TestComputeMappingAllStrategies(t *testing.T) {
	g := daggen.Generate(daggen.Params{Tasks: 12, Seed: 6, CCR: 1})
	plat := platform.Cell(1, 3)
	for _, strat := range []string{"greedymem", "greedycpu", "roundrobin", "localsearch", "lp", "milp"} {
		m, how, _, err := computeMapping(g, plat, strat, 3*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if how == "" {
			t.Errorf("%s: empty description", strat)
		}
		if err := core.Mapping(m).Validate(g, plat); err != nil {
			t.Errorf("%s: %v", strat, err)
		}
	}
	if _, _, _, err := computeMapping(g, plat, "nope", time.Second); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestSolverStatsGolden pins the -v solver-statistics lines against
// testdata/solver_stats.golden. These lines are a CLI contract —
// scripts and the experiment harness grep them — so a new presolve or
// tightening counter must extend the format deliberately (update the
// golden file in the same change), never drift silently.
func TestSolverStatsGolden(t *testing.T) {
	full := milp.Stats{
		LPIterations: 1234, DualIterations: 210, BoundFlips: 48,
		FTUpdates: 980, MaxSpikeGrowth: 12.5,
		Refactorizations: 21, RefactorPeriodic: 9, RefactorUnstable: 3, RefactorRestore: 9,
		WarmSolves: 55, WarmFallbacks: 2,
		PresolvedCols: 310, PresolvedRows: 120,
		PresolveSingletonRows: 40, PresolveSingletonCols: 7, PresolveDupCols: 12,
		PresolveTightened: 95, PresolvePasses: 33,
		NodeTightenedBounds: 18, NodeTightenPrunes: 4,
		CutsSeparated: 26, GomoryCuts: 14, CoverCuts: 12, CutsActive: 9, CutsRetired: 5,
		CutRounds: 3, CutResolves: 6,
		PseudocostBranches: 41, StrongBranchSolves: 22,
	}
	got := strings.Join([]string{
		"milp: " + milpStatsLine(full, 60),
		"milp-zero: " + milpStatsLine(milp.Stats{}, 0),
		"assign: " + assignStatsLine(&sched.Result{
			RootLPBound: 0.00321, PeriodBound: 0.00305, Nodes: 17,
		}),
	}, "\n") + "\n"
	want, err := os.ReadFile(filepath.Join("testdata", "solver_stats.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("solver stats lines drifted from testdata/solver_stats.golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
