package main

import (
	"testing"
	"time"

	"cellstream/internal/core"
	"cellstream/internal/daggen"
	"cellstream/internal/platform"
)

func TestComputeMappingAllStrategies(t *testing.T) {
	g := daggen.Generate(daggen.Params{Tasks: 12, Seed: 6, CCR: 1})
	plat := platform.Cell(1, 3)
	for _, strat := range []string{"greedymem", "greedycpu", "roundrobin", "localsearch", "lp", "milp"} {
		m, how, _, err := computeMapping(g, plat, strat, 3*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if how == "" {
			t.Errorf("%s: empty description", strat)
		}
		if err := core.Mapping(m).Validate(g, plat); err != nil {
			t.Errorf("%s: %v", strat, err)
		}
	}
	if _, _, _, err := computeMapping(g, plat, "nope", time.Second); err == nil {
		t.Error("unknown strategy accepted")
	}
}
