// Command experiments regenerates the paper's evaluation (§6): Fig. 6
// (ramp-up to steady state), Fig. 7 (speed-up vs number of SPEs), Fig. 8
// (speed-up vs CCR), the solver-time observations, and the constraint
// ablation of DESIGN.md. Results are written as CSV plus ASCII plots.
//
// Usage:
//
//	experiments [-fig all|6|7|8|times|ablate] [-out results] [-quick]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"cellstream/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	fig := flag.String("fig", "all", "which experiment to run: all, 6, 7, 8, times, ablate, strategies")
	out := flag.String("out", "results", "output directory for CSV files and plots")
	quick := flag.Bool("quick", false, "small instance counts and solver budgets (smoke test)")
	instances := flag.Int("instances", 0, "override simulated instances for Fig. 7 (Figs. 6 and 8 use twice this)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	cfg := experiments.Config{
		Quick:     *quick,
		Instances: *instances,
		Progress:  func(s string) { log.Print(s) },
	}

	var summary strings.Builder
	runs := map[string]func() error{
		"6":          func() error { return runFig6(cfg, *out, &summary) },
		"7":          func() error { return runFig7(cfg, *out, &summary) },
		"8":          func() error { return runFig8(cfg, *out, &summary) },
		"times":      func() error { return runTimes(cfg, *out, &summary) },
		"ablate":     func() error { return runAblate(cfg, *out, &summary) },
		"strategies": func() error { return runStrategies(cfg, *out, &summary) },
	}
	order := []string{"6", "7", "8", "times", "ablate", "strategies"}
	want := *fig
	for _, name := range order {
		if want != "all" && want != name {
			continue
		}
		if err := runs[name](); err != nil {
			log.Fatalf("fig %s: %v", name, err)
		}
	}
	path := filepath.Join(*out, "summary.txt")
	if err := os.WriteFile(path, []byte(summary.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Print(summary.String())
	log.Printf("wrote %s", path)
}

func save(dir, name string, write func(w io.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Close()
}

func runFig6(cfg experiments.Config, out string, summary *strings.Builder) error {
	r, err := experiments.Fig6(cfg)
	if err != nil {
		return err
	}
	if err := save(out, "fig6.csv", r.WriteCSV); err != nil {
		return err
	}
	fmt.Fprintf(summary, "%s\n", r.Plot())
	fmt.Fprintf(summary, "Fig. 6: measured steady state reaches %.1f%% of the model prediction (paper: ≈95%%).\n\n", 100*r.Ratio)
	return nil
}

func runFig7(cfg experiments.Config, out string, summary *strings.Builder) error {
	rs, err := experiments.Fig7(cfg)
	if err != nil {
		return err
	}
	for i, r := range rs {
		name := fmt.Sprintf("fig7%c.csv", 'a'+i)
		if err := save(out, name, r.WriteCSV); err != nil {
			return err
		}
		fmt.Fprintf(summary, "%s\n", r.Plot())
	}
	return nil
}

func runFig8(cfg experiments.Config, out string, summary *strings.Builder) error {
	rs, err := experiments.Fig8(cfg)
	if err != nil {
		return err
	}
	if err := save(out, "fig8.csv", func(w io.Writer) error { return experiments.WriteFig8CSV(w, rs) }); err != nil {
		return err
	}
	fmt.Fprintf(summary, "%s\n", experiments.PlotFig8(rs))
	return nil
}

func runTimes(cfg experiments.Config, out string, summary *strings.Builder) error {
	rows, err := experiments.SolveTimes(cfg)
	if err != nil {
		return err
	}
	if err := save(out, "solve_times.csv", func(w io.Writer) error { return experiments.WriteSolveTimesCSV(w, rows) }); err != nil {
		return err
	}
	fmt.Fprintf(summary, "Mapping solve times (paper: < 1 min, ≈20 s, at 5%% gap):\n")
	for _, r := range rows {
		fmt.Fprintf(summary, "  %-24s %3d tasks %3d edges: %8v, %d nodes, gap %.3f, proved=%v\n",
			r.Graph, r.Tasks, r.Edges, r.Time.Round(1e6), r.Nodes, r.Gap, r.Proved)
	}
	summary.WriteByte('\n')
	return nil
}

func runAblate(cfg experiments.Config, out string, summary *strings.Builder) error {
	rows, err := experiments.Ablation(cfg)
	if err != nil {
		return err
	}
	if err := save(out, "ablation.csv", func(w io.Writer) error { return experiments.WriteAblationCSV(w, rows) }); err != nil {
		return err
	}
	fmt.Fprintf(summary, "Ablation — analytic LP speed-up when lifting each constraint family:\n")
	for _, r := range rows {
		fmt.Fprintf(summary, "  %-24s %-20s %.2fx\n", r.Graph, r.Variant, r.Speedup)
	}
	summary.WriteByte('\n')
	return nil
}

func runStrategies(cfg experiments.Config, out string, summary *strings.Builder) error {
	rows, err := experiments.CompareStrategies(cfg)
	if err != nil {
		return err
	}
	if err := save(out, "strategies.csv", func(w io.Writer) error { return experiments.WriteStrategiesCSV(w, rows) }); err != nil {
		return err
	}
	fmt.Fprintf(summary, "Strategy comparison — measured speed-up at 8 SPEs (extension of Fig. 7):\n")
	for _, r := range rows {
		fmt.Fprintf(summary, "  %-24s %-12s %6.2fx feasible=%v\n", r.Graph, r.Strategy, r.Speedup, r.Feasible)
	}
	summary.WriteByte('\n')
	return nil
}
