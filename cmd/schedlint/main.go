// Command schedlint is the multichecker enforcing the solver's
// machine-checked invariants. It bundles the five analyzers of
// internal/analysis — floatcmp, statuscmp, ctxflow, detsearch,
// statssync — with the production scoping (which packages each
// invariant binds) and runs them over the module:
//
//	go run ./cmd/schedlint ./...          # everything (the CI gate)
//	go run ./cmd/schedlint ./internal/lp  # one package
//	go run ./cmd/schedlint -only floatcmp,detsearch ./...
//
// Exit status: 0 clean, 1 findings, 2 operational error. Suppressions
// use //lint:allow <analyzer> <justification> on or directly above the
// flagged line; see internal/analysis for the directive's semantics.
// Test files are never analyzed — each invariant deliberately binds
// only production code.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cellstream/internal/analysis"
	"cellstream/internal/analysis/ctxflow"
	"cellstream/internal/analysis/detsearch"
	"cellstream/internal/analysis/floatcmp"
	"cellstream/internal/analysis/statssync"
	"cellstream/internal/analysis/statuscmp"
)

// analyzers builds the suite with the production scoping. The solver
// numerical kernel (lp, milp) carries the float and determinism
// invariants; every non-main package carries the context invariant;
// status and stats classification bind module-wide with the solver
// layers themselves allowed (the codes and counters are their inner
// protocol).
func analyzers() []*analysis.Analyzer {
	solverPkgs := []string{
		"cellstream/internal/lp",
		"cellstream/internal/milp",
	}
	return []*analysis.Analyzer{
		floatcmp.New(floatcmp.Config{Packages: solverPkgs}),
		statuscmp.New(statuscmp.Config{AllowPackages: []string{
			// The B&B layer dispatches on lp.Status as its inner
			// protocol; the differential harness asserts status
			// agreement between engines by design.
			"cellstream/internal/milp",
			"cellstream/internal/lptest",
		}}),
		ctxflow.New(ctxflow.Config{}),
		detsearch.New(detsearch.Config{Packages: solverPkgs}),
		statssync.New(statssync.Config{}),
	}
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: schedlint [-only a,b] [packages]\n\npackages default to ./... relative to the module root\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	suite := analyzers()
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fail(fmt.Errorf("unknown analyzer %q", n))
		}
		suite = filtered
	}

	cwd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fail(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fail(err)
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fail(err)
	}

	findings := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fail(err)
		}
		diags, err := analysis.Run(pkg, suite)
		if err != nil {
			fail(err)
		}
		for _, d := range diags {
			pos := d.Pos
			if rel, err := filepath.Rel(root, pos.Filename); err == nil {
				pos.Filename = rel
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedlint:", err)
	os.Exit(2)
}
