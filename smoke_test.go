package cellstream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"cellstream/internal/daggen"
)

// TestSmokeBinaries builds every executable of the repository (cmd/* and
// examples/*) and runs a tiny end-to-end invocation of each, so that a
// broken main package can never ship. The quick modes keep every run in
// the sub-second range.
func TestSmokeBinaries(t *testing.T) {
	bins := t.TempDir()
	outDir := t.TempDir()
	build := func(pkg string) string {
		t.Helper()
		bin := filepath.Join(bins, filepath.Base(pkg))
		cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
		return bin
	}

	runs := []struct {
		pkg  string
		args []string
		want string // substring expected on stdout/stderr
	}{
		{"cmd/daggen", []string{"-tasks", "8", "-seed", "3", "-o", filepath.Join(outDir, "g.json")}, "8 tasks"},
		{"cmd/daggen", []string{"-paper", "1"}, "50 tasks"},
		{"cmd/experiments", []string{"-quick", "-fig", "times", "-instances", "50", "-out", outDir}, "solve times"},
		{"examples/quickstart", nil, "speed-up vs PPE-only"},
		{"examples/videopipeline", nil, "steady state"},
		{"examples/audioencoder", nil, "frames/s"},
		{"examples/ccrsweep", []string{"-quick"}, "speed-up vs CCR"},
		{"examples/dualcell", []string{"-quick"}, "2 Cells"},
		// schedlint prints nothing on a clean package and exits 0; a
		// finding or a load failure makes the run non-zero, so the smoke
		// both builds the linter and proves its happy path.
		{"cmd/schedlint", []string{"-only", "floatcmp", "./internal/num"}, ""},
		// schedload self-hosts a schedd and replays a tiny mix against it,
		// smoking the whole serving stack in one invocation.
		{"cmd/schedload", []string{"-quick", "-requests", "24", "-clients", "4"}, "coalesce rate"},
	}
	built := map[string]string{}
	for _, r := range runs {
		if _, ok := built[r.pkg]; !ok {
			built[r.pkg] = build(r.pkg)
		}
	}
	// Under -short only the sub-second invocations run (the builds above
	// already prove every main package compiles); the full suite runs
	// everything end to end.
	slow := map[string]bool{"cmd/experiments": true, "examples/dualcell": true}
	for _, r := range runs {
		if testing.Short() && slow[r.pkg] {
			continue
		}
		name := strings.ReplaceAll(r.pkg, "/", "_") + "_" + strings.Join(r.args, "_")
		t.Run(name, func(t *testing.T) {
			out, err := exec.Command(built[r.pkg], r.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", r.pkg, r.args, err, out)
			}
			if !strings.Contains(strings.ToLower(string(out)), strings.ToLower(r.want)) {
				t.Errorf("%s %v: output missing %q:\n%s", r.pkg, r.args, r.want, out)
			}
		})
	}

	// schedd end to end: start the daemon on a free port, serve one map
	// request twice (the bodies must be byte-identical — the serving
	// determinism contract), check the metrics endpoint, and shut down
	// cleanly on SIGINT.
	t.Run("cmd_schedd_end_to_end", func(t *testing.T) {
		bin := build("cmd/schedd")
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-spes", "3")
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer cmd.Process.Kill() // no-op after a clean exit

		// The daemon announces its bound address on the listening line.
		sc := bufio.NewScanner(stderr)
		var addr string
		listenRE := regexp.MustCompile(`listening on (\S+)`)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				addr = m[1]
				break
			}
		}
		if addr == "" {
			t.Fatalf("schedd never announced a listening address: %v", sc.Err())
		}
		var rest bytes.Buffer
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for sc.Scan() {
				rest.WriteString(sc.Text() + "\n")
			}
		}()

		g := daggen.Generate(daggen.Params{Tasks: 8, Seed: 3, CCR: 1})
		gb, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		reqBody, err := json.Marshal(map[string]json.RawMessage{"graph": gb})
		if err != nil {
			t.Fatal(err)
		}
		post := func() []byte {
			resp, err := http.Post("http://"+addr+"/v1/map", "application/json", bytes.NewReader(reqBody))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != 200 {
				t.Fatalf("POST /v1/map: status %d err %v: %s", resp.StatusCode, err, b)
			}
			return b
		}
		b1, b2 := post(), post()
		if !bytes.Equal(b1, b2) {
			t.Errorf("identical requests returned different bodies:\n%s\n%s", b1, b2)
		}
		var res struct {
			Mapping []int `json:"mapping"`
		}
		if err := json.Unmarshal(b1, &res); err != nil || len(res.Mapping) != 8 {
			t.Errorf("implausible map response (err %v): %s", err, b1)
		}

		mresp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		mb, _ := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		if want := `schedd_requests_total{op="map",code="200"} 2`; !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q", want)
		}

		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatal(err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()
		select {
		case err := <-exited:
			if err != nil {
				t.Fatalf("schedd exited uncleanly: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("schedd did not exit within 15s of SIGINT")
		}
		<-drained
		if !strings.Contains(rest.String(), "shutting down") {
			t.Errorf("schedd shutdown log missing:\n%s", rest.String())
		}
	})

	// daggen round-trip: the generated graph must be loadable.
	if b, err := os.ReadFile(filepath.Join(outDir, "g.json")); err != nil || len(b) == 0 {
		t.Errorf("daggen wrote no graph JSON: %v", err)
	}
	// experiments must have written its summary.
	if !testing.Short() {
		if b, err := os.ReadFile(filepath.Join(outDir, "summary.txt")); err != nil || len(b) == 0 {
			t.Errorf("experiments wrote no summary: %v", err)
		}
	}
}
