package cellstream

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmokeBinaries builds every executable of the repository (cmd/* and
// examples/*) and runs a tiny end-to-end invocation of each, so that a
// broken main package can never ship. The quick modes keep every run in
// the sub-second range.
func TestSmokeBinaries(t *testing.T) {
	bins := t.TempDir()
	outDir := t.TempDir()
	build := func(pkg string) string {
		t.Helper()
		bin := filepath.Join(bins, filepath.Base(pkg))
		cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
		return bin
	}

	runs := []struct {
		pkg  string
		args []string
		want string // substring expected on stdout/stderr
	}{
		{"cmd/daggen", []string{"-tasks", "8", "-seed", "3", "-o", filepath.Join(outDir, "g.json")}, "8 tasks"},
		{"cmd/daggen", []string{"-paper", "1"}, "50 tasks"},
		{"cmd/experiments", []string{"-quick", "-fig", "times", "-instances", "50", "-out", outDir}, "solve times"},
		{"examples/quickstart", nil, "speed-up vs PPE-only"},
		{"examples/videopipeline", nil, "steady state"},
		{"examples/audioencoder", nil, "frames/s"},
		{"examples/ccrsweep", []string{"-quick"}, "speed-up vs CCR"},
		{"examples/dualcell", []string{"-quick"}, "2 Cells"},
		// schedlint prints nothing on a clean package and exits 0; a
		// finding or a load failure makes the run non-zero, so the smoke
		// both builds the linter and proves its happy path.
		{"cmd/schedlint", []string{"-only", "floatcmp", "./internal/num"}, ""},
	}
	built := map[string]string{}
	for _, r := range runs {
		if _, ok := built[r.pkg]; !ok {
			built[r.pkg] = build(r.pkg)
		}
	}
	// Under -short only the sub-second invocations run (the builds above
	// already prove every main package compiles); the full suite runs
	// everything end to end.
	slow := map[string]bool{"cmd/experiments": true, "examples/dualcell": true}
	for _, r := range runs {
		if testing.Short() && slow[r.pkg] {
			continue
		}
		name := strings.ReplaceAll(r.pkg, "/", "_") + "_" + strings.Join(r.args, "_")
		t.Run(name, func(t *testing.T) {
			out, err := exec.Command(built[r.pkg], r.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", r.pkg, r.args, err, out)
			}
			if !strings.Contains(strings.ToLower(string(out)), strings.ToLower(r.want)) {
				t.Errorf("%s %v: output missing %q:\n%s", r.pkg, r.args, r.want, out)
			}
		})
	}

	// daggen round-trip: the generated graph must be loadable.
	if b, err := os.ReadFile(filepath.Join(outDir, "g.json")); err != nil || len(b) == 0 {
		t.Errorf("daggen wrote no graph JSON: %v", err)
	}
	// experiments must have written its summary.
	if !testing.Short() {
		if b, err := os.ReadFile(filepath.Join(outDir, "summary.txt")); err != nil || len(b) == 0 {
			t.Errorf("experiments wrote no summary: %v", err)
		}
	}
}
